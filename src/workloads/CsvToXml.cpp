//===-- workloads/CsvToXml.cpp - CSV to XML converter -------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// Models CSVToXML v1.1: a converter whose per-character classification
/// depends on configuration state (delimiter code, quote mode) that is fixed
/// at construction — the "one distinct hot state" pattern the paper found in
/// the real applications. The private `conv` reference in RowParser is an
/// exact-type field whose delimiter/quote fields are object lifetime
/// constants, exercising specialization inlining (paper section 5).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/Builder.h"

namespace dchm {

namespace {

class CsvToXml final : public Workload {
public:
  std::string name() const override { return "CSVToXML"; }
  std::string description() const override {
    return "CSV to XML conversion with configuration-state converter";
  }

  void build(Program &P) override {
    // --- class CharBuffer ----------------------------------------------------
    ClassId Buf = P.defineClass("CharBuffer");
    FieldId Data = P.defineField(Buf, "data", Type::Ref, false, Access::Private);
    FieldId Len = P.defineField(Buf, "len", Type::I64, false, Access::Private);
    MethodId BufCtor = P.defineMethod(Buf, "<init>", Type::Void, {Type::I64},
                                      {.IsCtor = true});
    {
      FunctionBuilder B("CharBuffer.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg Cap = B.addArg(Type::I64);
      B.putField(This, Data, B.newArray(Type::I64, Cap));
      Reg Zero = B.constI(0);
      B.putField(This, Len, Zero);
      B.retVoid();
      P.setBody(BufCtor, B.finalize());
    }
    MethodId Append = P.defineMethod(Buf, "append", Type::Void, {Type::I64});
    {
      FunctionBuilder B("CharBuffer.append", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg C = B.addArg(Type::I64);
      Reg D = B.getField(This, Data, Type::Ref);
      Reg L = B.getField(This, Len, Type::I64);
      B.astore(Type::I64, D, L, C);
      Reg One = B.constI(1);
      B.putField(This, Len, B.add(L, One));
      B.retVoid();
      P.setBody(Append, B.finalize());
    }
    MethodId GetAt = P.defineMethod(Buf, "get", Type::I64, {Type::I64});
    {
      FunctionBuilder B("CharBuffer.get", Type::I64);
      Reg This = B.addArg(Type::Ref);
      Reg I = B.addArg(Type::I64);
      B.ret(B.aload(Type::I64, B.getField(This, Data, Type::Ref), I));
      P.setBody(GetAt, B.finalize());
    }
    MethodId Length = P.defineMethod(Buf, "length", Type::I64, {});
    {
      FunctionBuilder B("CharBuffer.length", Type::I64);
      Reg This = B.addArg(Type::Ref);
      B.ret(B.getField(This, Len, Type::I64));
      P.setBody(Length, B.finalize());
    }
    MethodId Clear = P.defineMethod(Buf, "clear", Type::Void, {});
    {
      FunctionBuilder B("CharBuffer.clear", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg Zero = B.constI(0);
      B.putField(This, Len, Zero);
      B.retVoid();
      P.setBody(Clear, B.finalize());
    }
    MethodId HashBuf = P.defineMethod(Buf, "hash", Type::I64, {});
    {
      FunctionBuilder B("CharBuffer.hash", Type::I64);
      Reg This = B.addArg(Type::Ref);
      Reg D = B.getField(This, Data, Type::Ref);
      Reg L = B.getField(This, Len, Type::I64);
      Reg I = B.newReg(Type::I64);
      Reg H = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      Reg M = B.constI(131);
      B.move(I, Zero);
      B.move(H, Zero);
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, I, L), LDone);
      B.move(H, B.add(B.mul(H, M), B.aload(Type::I64, D, I)));
      B.move(I, B.add(I, One));
      B.br(LHead);
      B.bind(LDone);
      B.ret(H);
      P.setBody(HashBuf, B.finalize());
    }

    // --- class Converter (mutable) --------------------------------------------
    ClassId Conv = P.defineClass("Converter");
    FieldId Delim =
        P.defineField(Conv, "delim", Type::I64, false, Access::Package);
    FieldId Quote =
        P.defineField(Conv, "quoteMode", Type::I64, false, Access::Package);
    MethodId ConvCtor =
        P.defineMethod(Conv, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder B("Converter.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg Comma = B.constI(44); // ','
      B.putField(This, Delim, Comma);
      Reg Zero = B.constI(0);
      B.putField(This, Quote, Zero);
      B.retVoid();
      P.setBody(ConvCtor, B.finalize());
    }
    // classify(c): 1 = delimiter, 2 = newline, 3 = quote char (only when
    // quote mode is on), 0 = ordinary text.
    MethodId Classify = P.defineMethod(Conv, "classify", Type::I64,
                                       {Type::I64});
    {
      FunctionBuilder B("Converter.classify", Type::I64);
      Reg This = B.addArg(Type::Ref);
      Reg C = B.addArg(Type::I64);
      auto LNl = B.makeLabel();
      auto LQ = B.makeLabel();
      auto LText = B.makeLabel();
      Reg D = B.getField(This, Delim, Type::I64);
      B.cbz(B.cmp(Opcode::CmpEQ, C, D), LNl);
      B.ret(B.constI(1));
      B.bind(LNl);
      Reg Nl = B.constI(10);
      B.cbz(B.cmp(Opcode::CmpEQ, C, Nl), LQ);
      B.ret(B.constI(2));
      B.bind(LQ);
      // Quote handling: the mode field is only consulted for quote chars.
      Reg Dq = B.constI(34); // '"'
      B.cbz(B.cmp(Opcode::CmpEQ, C, Dq), LText);
      Reg Q = B.getField(This, Quote, Type::I64);
      B.cbz(Q, LText);
      B.ret(B.constI(3));
      B.bind(LText);
      B.ret(B.constI(0));
      P.setBody(Classify, B.finalize());
    }

    // --- class XmlWriter -----------------------------------------------------
    ClassId Writer = P.defineClass("XmlWriter");
    FieldId WBuf =
        P.defineField(Writer, "out", Type::Ref, false, Access::Private);
    MethodId WCtor = P.defineMethod(Writer, "<init>", Type::Void, {Type::Ref},
                                    {.IsCtor = true});
    {
      FunctionBuilder B("XmlWriter.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg Out = B.addArg(Type::Ref);
      B.putField(This, WBuf, Out);
      B.retVoid();
      P.setBody(WCtor, B.finalize());
    }
    // field(c): wraps a cell character; cell/row boundaries emit tag chars.
    MethodId EmitChar = P.defineMethod(Writer, "emitChar", Type::Void,
                                       {Type::I64});
    {
      FunctionBuilder B("XmlWriter.emitChar", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg C = B.addArg(Type::I64);
      Reg Out = B.getField(This, WBuf, Type::Ref);
      // XML entity escaping: '<' and '&' expand; everything else verbatim.
      auto LAmp = B.makeLabel();
      auto LPlain = B.makeLabel();
      auto LDone = B.makeLabel();
      Reg Lt = B.constI(60);
      B.cbz(B.cmp(Opcode::CmpEQ, C, Lt), LAmp);
      {
        Reg Amp = B.constI(38);
        Reg Cl = B.constI(108);
        Reg Ct = B.constI(116);
        Reg Semi = B.constI(59);
        B.callVirtual(Append, {Out, Amp}, Type::Void);
        B.callVirtual(Append, {Out, Cl}, Type::Void);
        B.callVirtual(Append, {Out, Ct}, Type::Void);
        B.callVirtual(Append, {Out, Semi}, Type::Void);
        B.br(LDone);
      }
      B.bind(LAmp);
      Reg AmpC = B.constI(38);
      B.cbz(B.cmp(Opcode::CmpEQ, C, AmpC), LPlain);
      {
        Reg Ca = B.constI(97);
        Reg Mm = B.constI(109);
        Reg Pp = B.constI(112);
        Reg Semi2 = B.constI(59);
        B.callVirtual(Append, {Out, AmpC}, Type::Void);
        B.callVirtual(Append, {Out, Ca}, Type::Void);
        B.callVirtual(Append, {Out, Mm}, Type::Void);
        B.callVirtual(Append, {Out, Pp}, Type::Void);
        B.callVirtual(Append, {Out, Semi2}, Type::Void);
        B.br(LDone);
      }
      B.bind(LPlain);
      B.callVirtual(Append, {Out, C}, Type::Void);
      B.br(LDone);
      B.bind(LDone);
      B.retVoid();
      P.setBody(EmitChar, B.finalize());
    }
    MethodId EmitTag = P.defineMethod(Writer, "emitTag", Type::Void,
                                      {Type::I64});
    {
      FunctionBuilder B("XmlWriter.emitTag", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg Code = B.addArg(Type::I64);
      Reg Out = B.getField(This, WBuf, Type::Ref);
      Reg Lt = B.constI(60);
      Reg Gt = B.constI(62);
      B.callVirtual(Append, {Out, Lt}, Type::Void);
      B.callVirtual(Append, {Out, Code}, Type::Void);
      B.callVirtual(Append, {Out, Gt}, Type::Void);
      B.retVoid();
      P.setBody(EmitTag, B.finalize());
    }

    // --- class RowParser -------------------------------------------------------
    // Holds the converter in a private exact-type reference field: the
    // delimiter/quote fields are object lifetime constants through it.
    ClassId Parser = P.defineClass("RowParser");
    FieldId ConvRef =
        P.defineField(Parser, "conv", Type::Ref, false, Access::Private);
    FieldId ColHist =
        P.defineField(Parser, "colHist", Type::Ref, false, Access::Private);
    FieldId CellIdx =
        P.defineField(Parser, "cellIdx", Type::I64, false, Access::Private);
    MethodId ParCtor = P.defineMethod(Parser, "<init>", Type::Void, {},
                                      {.IsCtor = true});
    {
      FunctionBuilder B("RowParser.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg C = B.newObject(Conv);
      B.callSpecial(ConvCtor, {C}, Type::Void);
      B.putField(This, ConvRef, C);
      Reg C16 = B.constI(16);
      B.putField(This, ColHist, B.newArray(Type::I64, C16));
      Reg Zero = B.constI(0);
      B.putField(This, CellIdx, Zero);
      B.retVoid();
      P.setBody(ParCtor, B.finalize());
    }
    // parse(input, writer): the hot conversion loop, with the per-character
    // row/column statistics the real converter keeps.
    MethodId Parse = P.defineMethod(Parser, "parse", Type::Void,
                                    {Type::Ref, Type::Ref});
    {
      FunctionBuilder B("RowParser.parse", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg In = B.addArg(Type::Ref);
      Reg W = B.addArg(Type::Ref);
      Reg N = B.callVirtual(Length, {In}, Type::I64);
      Reg Hist = B.getField(This, ColHist, Type::Ref);
      Reg Cell = B.newReg(Type::I64);
      B.move(Cell, B.getField(This, CellIdx, Type::I64));
      Reg Mask15 = B.constI(15);
      // The converter reference is loop-invariant; load it once, as javac's
      // optimizer (or a programmer) would.
      Reg Conv2 = B.getField(This, ConvRef, Type::Ref);
      Reg RowLen = B.newReg(Type::I64);
      Reg MaxRow = B.newReg(Type::I64);
      Reg I = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      B.move(RowLen, Zero);
      B.move(MaxRow, Zero);
      B.move(I, Zero);
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      auto LCell = B.makeLabel();
      auto LRow = B.makeLabel();
      auto LText = B.makeLabel();
      auto LNext = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
      Reg C = B.callVirtual(GetAt, {In, I}, Type::I64);
      Reg K = B.callVirtual(Classify, {Conv2, C}, Type::I64);
      B.cbz(B.cmp(Opcode::CmpEQ, K, One), LCell);
      Reg TagC = B.constI(99); // 'c'
      B.callVirtual(EmitTag, {W, TagC}, Type::Void);
      B.br(LNext);
      B.bind(LCell);
      Reg Two = B.constI(2);
      B.cbz(B.cmp(Opcode::CmpEQ, K, Two), LRow);
      Reg TagR = B.constI(114); // 'r'
      B.callVirtual(EmitTag, {W, TagR}, Type::Void);
      B.br(LNext);
      B.bind(LRow);
      Reg Three = B.constI(3);
      B.cbz(B.cmp(Opcode::CmpEQ, K, Three), LText);
      B.br(LNext); // quotes are swallowed
      B.bind(LText);
      B.callVirtual(EmitChar, {W, C}, Type::Void);
      B.br(LNext);
      B.bind(LNext);
      // Column statistics: histogram of cell positions plus row-width
      // tracking (the real converter validates ragged rows).
      Reg HIdx = B.andI(Cell, Mask15);
      Reg HV = B.aload(Type::I64, Hist, HIdx);
      B.astore(Type::I64, Hist, HIdx, B.add(HV, One));
      B.move(Cell, B.add(Cell, B.cmp(Opcode::CmpEQ, K, One)));
      Reg IsNl = B.cmp(Opcode::CmpEQ, K, Two);
      // rowLen = (rowLen + 1) * (1 - isNl); maxRow = max(maxRow, rowLen)
      Reg RL1 = B.add(RowLen, One);
      B.move(RowLen, B.mul(RL1, B.sub(One, IsNl)));
      auto LNoMax = B.makeLabel();
      B.cbz(B.cmp(Opcode::CmpGT, RowLen, MaxRow), LNoMax);
      B.move(MaxRow, RowLen);
      B.bind(LNoMax);
      B.move(I, B.add(I, One));
      B.br(LHead);
      B.bind(LDone);
      B.putField(This, CellIdx, B.add(Cell, MaxRow));
      B.retVoid();
      P.setBody(Parse, B.finalize());
    }

    // --- class CsvMain ----------------------------------------------------------
    ClassId Main = P.defineClass("CsvMain");
    FieldId FIn = P.defineField(Main, "input", Type::Ref, true, Access::Private);
    FieldId FOut =
        P.defineField(Main, "output", Type::Ref, true, Access::Private);
    FieldId FParser =
        P.defineField(Main, "parser", Type::Ref, true, Access::Private);
    FieldId FWriter =
        P.defineField(Main, "writer", Type::Ref, true, Access::Private);
    FieldId FSeed = P.defineField(Main, "seed", Type::I64, true);

    MethodId NextRand = P.defineMethod(Main, "nextRand", Type::I64, {},
                                       {.IsStatic = true});
    {
      FunctionBuilder B("CsvMain.nextRand", Type::I64);
      Reg S = B.getStatic(FSeed, Type::I64);
      Reg Mul = B.constI(1103515245);
      Reg Add = B.constI(12345);
      Reg S2 = B.add(B.mul(S, Mul), Add);
      B.putStatic(FSeed, S2);
      Reg Sh = B.constI(16);
      Reg Mask = B.constI(0x7FFF);
      B.ret(B.andI(B.shr(S2, Sh), Mask));
      P.setBody(NextRand, B.finalize());
    }

    // init(n): synthesize an n-character CSV document.
    MethodId Init = P.defineMethod(Main, "init", Type::Void, {Type::I64},
                                   {.IsStatic = true});
    {
      FunctionBuilder B("CsvMain.init", Type::Void);
      Reg N = B.addArg(Type::I64);
      Reg In = B.newObject(Buf);
      B.callSpecial(BufCtor, {In, N}, Type::Void);
      B.putStatic(FIn, In);
      Reg OutCap = B.newReg(Type::I64);
      Reg Six = B.constI(6);
      B.move(OutCap, B.mul(N, Six));
      Reg Out = B.newObject(Buf);
      B.callSpecial(BufCtor, {Out, OutCap}, Type::Void);
      B.putStatic(FOut, Out);
      Reg Par = B.newObject(Parser);
      B.callSpecial(ParCtor, {Par}, Type::Void);
      B.putStatic(FParser, Par);
      Reg W = B.newObject(Writer);
      B.callSpecial(WCtor, {W, Out}, Type::Void);
      B.putStatic(FWriter, W);
      // Fill: mostly letters, ~1/8 commas, ~1/24 newlines.
      Reg I = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      B.move(I, Zero);
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      auto LComma = B.makeLabel();
      auto LNl = B.makeLabel();
      auto LAppend = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
      Reg R = B.callStatic(NextRand, {}, Type::I64);
      Reg C24 = B.constI(24);
      Reg Bucket = B.rem(R, C24);
      Reg Ch = B.newReg(Type::I64);
      Reg C3 = B.constI(3);
      B.cbz(B.cmp(Opcode::CmpLT, Bucket, C3), LComma);
      Reg Comma = B.constI(44);
      B.move(Ch, Comma);
      B.br(LAppend);
      B.bind(LComma);
      B.cbz(B.cmp(Opcode::CmpEQ, Bucket, C3), LNl);
      Reg Nl = B.constI(10);
      B.move(Ch, Nl);
      B.br(LAppend);
      B.bind(LNl);
      Reg C26 = B.constI(26);
      Reg CA = B.constI(97);
      B.move(Ch, B.add(CA, B.rem(R, C26)));
      B.br(LAppend);
      B.bind(LAppend);
      Reg InB = B.getStatic(FIn, Type::Ref);
      B.callVirtual(Append, {InB, Ch}, Type::Void);
      B.move(I, B.add(I, One));
      B.br(LHead);
      B.bind(LDone);
      B.retVoid();
      P.setBody(Init, B.finalize());
    }

    MethodId Convert = P.defineMethod(Main, "convert", Type::Void, {},
                                      {.IsStatic = true});
    {
      FunctionBuilder B("CsvMain.convert", Type::Void);
      Reg Out = B.getStatic(FOut, Type::Ref);
      B.callVirtual(Clear, {Out}, Type::Void);
      Reg Par = B.getStatic(FParser, Type::Ref);
      Reg In = B.getStatic(FIn, Type::Ref);
      Reg W = B.getStatic(FWriter, Type::Ref);
      B.callVirtual(Parse, {Par, In, W}, Type::Void);
      B.retVoid();
      P.setBody(Convert, B.finalize());
    }

    MethodId CheckSum = P.defineMethod(Main, "checkSum", Type::Void, {},
                                       {.IsStatic = true});
    {
      FunctionBuilder B("CsvMain.checkSum", Type::Void);
      Reg Out = B.getStatic(FOut, Type::Ref);
      Reg H = B.callVirtual(HashBuf, {Out}, Type::I64);
      B.printNum(H, Type::I64);
      B.retVoid();
      P.setBody(CheckSum, B.finalize());
    }
  }

  void driveScaled(VirtualMachine &VM, double Scale) override {
    ProgramIds Ids(VM.program());
    VM.program().setStaticSlot(
        VM.program().field(Ids.field("CsvMain", "seed")).Slot, valueI(777));
    VM.call(Ids.method("CsvMain", "init"), {valueI(2000)});
    long Batches = static_cast<long>(160 * Scale);
    if (Batches < 6)
      Batches = 6;
    MethodId Convert = Ids.method("CsvMain", "convert");
    for (long I = 0; I < Batches; ++I)
      VM.call(Convert, {});
    VM.call(Ids.method("CsvMain", "checkSum"), {});
  }
};

} // namespace

std::unique_ptr<Workload> makeCsvToXml() {
  return std::make_unique<CsvToXml>();
}

} // namespace dchm
