//===-- workloads/Common.cpp - Shared workload utilities ----------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Debug.h"

namespace dchm {

ClassId ProgramIds::cls(const std::string &Name) const {
  ClassId C = P.findClass(Name);
  DCHM_CHECK(C != NoClassId, "unknown class name");
  return C;
}

MethodId ProgramIds::method(const std::string &Cls,
                            const std::string &Name) const {
  MethodId M = P.findMethod(cls(Cls), Name);
  DCHM_CHECK(M != NoMethodId, "unknown method name");
  return M;
}

FieldId ProgramIds::field(const std::string &Cls,
                          const std::string &Name) const {
  FieldId F = P.findField(cls(Cls), Name);
  DCHM_CHECK(F != NoFieldId, "unknown field name");
  return F;
}

std::vector<std::unique_ptr<Workload>> makeAllWorkloads() {
  std::vector<std::unique_ptr<Workload>> W;
  W.push_back(makeSalaryDb());
  W.push_back(makeSimLogic());
  W.push_back(makeCsvToXml());
  W.push_back(makeJava2Xhtml());
  W.push_back(makeWekaMini());
  W.push_back(makeJbb(JbbVariant::Jbb2000));
  W.push_back(makeJbb(JbbVariant::Jbb2005));
  return W;
}

} // namespace dchm
