//===-- workloads/WekaMini.cpp - Data mining tool set -------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// Models Weka 3.2.3: a small classifier tool set evaluated over a synthetic
/// dataset. The NaiveBayesLite classifier's scoring mode and smoothing are
/// configuration state fixed at construction (one distinct hot state); its
/// score() loop is the hot mutable method. The Evaluator holds the
/// classifier in a private exact-type reference field, so the configuration
/// fields are object lifetime constants (specialization inlining).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/Builder.h"

namespace dchm {

namespace {

class WekaMini final : public Workload {
public:
  std::string name() const override { return "Weka"; }
  std::string description() const override {
    return "Data mining algorithm tool set (classifier evaluation)";
  }

  void build(Program &P) override {
    // --- class Dataset: flattened feature matrix + labels --------------------
    ClassId Data = P.defineClass("Dataset");
    FieldId Features =
        P.defineField(Data, "featArr", Type::Ref, true, Access::Private);
    FieldId Labels =
        P.defineField(Data, "labels", Type::Ref, true, Access::Private);
    FieldId NumAttrs = P.defineField(Data, "numAttrs", Type::I64, true);
    FieldId NumInst = P.defineField(Data, "numInst", Type::I64, true);
    FieldId Seed = P.defineField(Data, "seed", Type::I64, true);

    MethodId NextRand = P.defineMethod(Data, "nextRand", Type::I64, {},
                                       {.IsStatic = true});
    {
      FunctionBuilder B("Dataset.nextRand", Type::I64);
      Reg S = B.getStatic(Seed, Type::I64);
      Reg Mul = B.constI(48271);
      Reg S2 = B.mul(S, Mul);
      Reg Mod = B.constI(2147483647);
      Reg S3 = B.rem(S2, Mod);
      B.putStatic(Seed, S3);
      B.ret(S3);
      P.setBody(NextRand, B.finalize());
    }

    MethodId InitData = P.defineMethod(
        Data, "init", Type::Void, {Type::I64, Type::I64}, {.IsStatic = true});
    {
      FunctionBuilder B("Dataset.init", Type::Void);
      Reg NInst = B.addArg(Type::I64);
      Reg NAttr = B.addArg(Type::I64);
      B.putStatic(NumInst, NInst);
      B.putStatic(NumAttrs, NAttr);
      Reg Total = B.mul(NInst, NAttr);
      Reg F = B.newArray(Type::F64, Total);
      B.putStatic(Features, F);
      Reg L = B.newArray(Type::I64, NInst);
      B.putStatic(Labels, L);
      Reg I = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      B.move(I, Zero);
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, I, Total), LDone);
      Reg R = B.callStatic(NextRand, {}, Type::I64);
      Reg C1000 = B.constI(1000);
      Reg V = B.rem(R, C1000);
      Reg FV = B.i2f(V);
      Reg Scale = B.constF(0.001);
      B.astore(Type::F64, F, I, B.fmul(FV, Scale));
      B.move(I, B.add(I, One));
      B.br(LHead);
      B.bind(LDone);
      Reg J = B.newReg(Type::I64);
      B.move(J, Zero);
      auto LH2 = B.makeLabel();
      auto LD2 = B.makeLabel();
      B.bind(LH2);
      B.cbz(B.cmp(Opcode::CmpLT, J, NInst), LD2);
      Reg R2 = B.callStatic(NextRand, {}, Type::I64);
      Reg Two = B.constI(2);
      B.astore(Type::I64, L, J, B.rem(R2, Two));
      B.move(J, B.add(J, One));
      B.br(LH2);
      B.bind(LD2);
      B.retVoid();
      P.setBody(InitData, B.finalize());
    }

    // --- class Classifier (abstract-ish base) --------------------------------
    ClassId Clf = P.defineClass("Classifier");
    MethodId ClfCtor =
        P.defineMethod(Clf, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder B("Classifier.<init>", Type::Void);
      B.addArg(Type::Ref);
      B.retVoid();
      P.setBody(ClfCtor, B.finalize());
    }
    // score(instIdx): base implementation returns 0.5 (uninformative).
    MethodId Score = P.defineMethod(Clf, "score", Type::F64, {Type::I64});
    {
      FunctionBuilder B("Classifier.score", Type::F64);
      B.addArg(Type::Ref);
      B.addArg(Type::I64);
      B.ret(B.constF(0.5));
      P.setBody(Score, B.finalize());
    }

    // --- class NaiveBayesLite extends Classifier (mutable) --------------------
    ClassId Nb = P.defineClass("NaiveBayesLite", Clf);
    FieldId Mode =
        P.defineField(Nb, "mode", Type::I64, false, Access::Private);
    FieldId Laplace =
        P.defineField(Nb, "laplace", Type::I64, false, Access::Private);
    MethodId NbCtor =
        P.defineMethod(Nb, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder B("NaiveBayesLite.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      B.callSpecial(ClfCtor, {This}, Type::Void);
      Reg One = B.constI(1);
      B.putField(This, Mode, One);
      Reg Zero = B.constI(0);
      B.putField(This, Laplace, Zero);
      B.retVoid();
      P.setBody(NbCtor, B.finalize());
    }
    // score(i): walk the instance's attributes; branch on mode/laplace state
    // inside the hot loop.
    MethodId NbScore = P.defineMethod(Nb, "score", Type::F64, {Type::I64});
    {
      FunctionBuilder B("NaiveBayesLite.score", Type::F64);
      Reg This = B.addArg(Type::Ref);
      Reg Idx = B.addArg(Type::I64);
      Reg F = B.getStatic(Features, Type::Ref);
      Reg NAttr = B.getStatic(NumAttrs, Type::I64);
      Reg Base = B.mul(Idx, NAttr);
      Reg A = B.newReg(Type::I64);
      Reg Acc = B.newReg(Type::F64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      Reg FOne = B.constF(1.0);
      B.move(A, Zero);
      B.move(Acc, FOne);
      // Estimator coefficients selected once per call from the mode state
      // field (the loop kernel itself is mode-independent).
      Reg K1 = B.newReg(Type::F64);
      Reg K2 = B.newReg(Type::F64);
      {
        Reg M = B.getField(This, Mode, Type::I64);
        auto LRawMode = B.makeLabel();
        auto LModeDone = B.makeLabel();
        B.cbz(M, LRawMode);
        Reg Half = B.constF(0.45);
        B.move(K1, Half);
        Reg Quarter = B.constF(0.275);
        B.move(K2, Quarter);
        B.br(LModeDone);
        B.bind(LRawMode);
        Reg RawK1 = B.constF(0.9);
        B.move(K1, RawK1);
        Reg RawK2 = B.constF(0.05);
        B.move(K2, RawK2);
        B.br(LModeDone);
        B.bind(LModeDone);
      }
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, A, NAttr), LDone);
      Reg V = B.aload(Type::F64, F, B.add(Base, A));
      B.move(Acc, B.fmul(Acc, B.fadd(B.fmul(V, K1), K2)));
      B.move(A, B.add(A, One));
      B.br(LHead);
      B.bind(LDone);
      // if (laplace != 0) acc = acc + 0.001 (post-loop smoothing).
      Reg Lap = B.getField(This, Laplace, Type::I64);
      auto LNext = B.makeLabel();
      B.cbz(Lap, LNext);
      Reg Eps = B.constF(0.001);
      B.move(Acc, B.fadd(Acc, Eps));
      B.bind(LNext);
      B.ret(Acc);
      P.setBody(NbScore, B.finalize());
    }

    // --- class Evaluator -------------------------------------------------------
    ClassId Eval = P.defineClass("Evaluator");
    FieldId ClfRef =
        P.defineField(Eval, "clf", Type::Ref, false, Access::Private);
    FieldId Correct =
        P.defineField(Eval, "correct", Type::I64, false, Access::Package);
    MethodId EvalCtor =
        P.defineMethod(Eval, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder B("Evaluator.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg C = B.newObject(Nb);
      B.callSpecial(NbCtor, {C}, Type::Void);
      B.putField(This, ClfRef, C);
      Reg Zero = B.constI(0);
      B.putField(This, Correct, Zero);
      B.retVoid();
      P.setBody(EvalCtor, B.finalize());
    }
    // evalAll(): score every instance, compare against its label.
    MethodId EvalAll = P.defineMethod(Eval, "evalAll", Type::Void, {});
    {
      FunctionBuilder B("Evaluator.evalAll", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg NInst = B.getStatic(NumInst, Type::I64);
      Reg L = B.getStatic(Labels, Type::Ref);
      Reg I = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      B.move(I, Zero);
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      auto LSkip = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, I, NInst), LDone);
      Reg C = B.getField(This, ClfRef, Type::Ref);
      Reg S = B.callVirtual(Score, {C, I}, Type::F64);
      Reg Thresh = B.constF(0.08);
      Reg Pred = B.cmp(Opcode::FCmpLT, Thresh, S);
      Reg Lab = B.aload(Type::I64, L, I);
      B.cbz(B.cmp(Opcode::CmpEQ, Pred, Lab), LSkip);
      Reg Cor = B.getField(This, Correct, Type::I64);
      B.putField(This, Correct, B.add(Cor, One));
      B.bind(LSkip);
      B.move(I, B.add(I, One));
      B.br(LHead);
      B.bind(LDone);
      B.retVoid();
      P.setBody(EvalAll, B.finalize());
    }

    // --- class WekaMain ---------------------------------------------------------
    ClassId Main = P.defineClass("WekaMain");
    FieldId FEval =
        P.defineField(Main, "evaluator", Type::Ref, true, Access::Private);
    MethodId InitMain = P.defineMethod(Main, "init", Type::Void,
                                       {Type::I64, Type::I64},
                                       {.IsStatic = true});
    {
      FunctionBuilder B("WekaMain.init", Type::Void);
      Reg NInst = B.addArg(Type::I64);
      Reg NAttr = B.addArg(Type::I64);
      B.callStatic(InitData, {NInst, NAttr}, Type::Void);
      Reg E = B.newObject(Eval);
      B.callSpecial(EvalCtor, {E}, Type::Void);
      B.putStatic(FEval, E);
      B.retVoid();
      P.setBody(InitMain, B.finalize());
    }
    MethodId RunMain = P.defineMethod(Main, "run", Type::Void, {},
                                      {.IsStatic = true});
    {
      FunctionBuilder B("WekaMain.run", Type::Void);
      Reg E = B.getStatic(FEval, Type::Ref);
      B.callVirtual(EvalAll, {E}, Type::Void);
      B.retVoid();
      P.setBody(RunMain, B.finalize());
    }
    MethodId CheckSum = P.defineMethod(Main, "checkSum", Type::Void, {},
                                       {.IsStatic = true});
    {
      FunctionBuilder B("WekaMain.checkSum", Type::Void);
      Reg E = B.getStatic(FEval, Type::Ref);
      Reg Cor = B.getField(E, Correct, Type::I64);
      B.printNum(Cor, Type::I64);
      B.retVoid();
      P.setBody(CheckSum, B.finalize());
    }
  }

  void driveScaled(VirtualMachine &VM, double Scale) override {
    ProgramIds Ids(VM.program());
    VM.program().setStaticSlot(
        VM.program().field(Ids.field("Dataset", "seed")).Slot, valueI(20060325));
    VM.call(Ids.method("WekaMain", "init"), {valueI(300), valueI(24)});
    long Batches = static_cast<long>(130 * Scale);
    if (Batches < 6)
      Batches = 6;
    MethodId Run = Ids.method("WekaMain", "run");
    for (long I = 0; I < Batches; ++I)
      VM.call(Run, {});
    VM.call(Ids.method("WekaMain", "checkSum"), {});
  }
};

} // namespace

std::unique_ptr<Workload> makeWekaMini() {
  return std::make_unique<WekaMini>();
}

} // namespace dchm
