//===-- workloads/SalaryDb.cpp - The Figure 2 microbenchmark ------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// SalaryDB (paper Figure 2): an employee database whose raise() method
/// branches on the SalaryEmployee grade field (0..3). Each grade is a hot
/// state; specialization collapses raise() to a single salary update, which
/// is where the paper's 31.4% speedup comes from.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/Builder.h"

namespace dchm {

namespace {

class SalaryDb final : public Workload {
public:
  std::string name() const override { return "SalaryDB"; }
  std::string description() const override {
    return "Microbenchmark: grade-state employee salary raises";
  }

  void build(Program &P) override {
    // --- class Employee ----------------------------------------------------
    ClassId Employee = P.defineClass("Employee");
    FieldId Salary =
        P.defineField(Employee, "salary", Type::F64, false, Access::Package);
    MethodId EmpCtor = P.defineMethod(Employee, "<init>", Type::Void, {},
                                      {.IsCtor = true});
    {
      FunctionBuilder B("Employee.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg Zero = B.constF(0.0);
      B.putField(This, Salary, Zero);
      B.retVoid();
      P.setBody(EmpCtor, B.finalize());
    }
    MethodId EmpRaise = P.defineMethod(Employee, "raise", Type::Void, {});
    {
      FunctionBuilder B("Employee.raise", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg S = B.getField(This, Salary, Type::F64);
      Reg Inc = B.constF(0.25);
      B.putField(This, Salary, B.fadd(S, Inc));
      B.retVoid();
      P.setBody(EmpRaise, B.finalize());
    }
    MethodId GetSalary = P.defineMethod(Employee, "getSalary", Type::F64, {});
    {
      FunctionBuilder B("Employee.getSalary", Type::F64);
      Reg This = B.addArg(Type::Ref);
      B.ret(B.getField(This, Salary, Type::F64));
      P.setBody(GetSalary, B.finalize());
    }

    // --- class HourlyEmployee extends Employee ------------------------------
    ClassId Hourly = P.defineClass("HourlyEmployee", Employee);
    MethodId HourlyCtor = P.defineMethod(Hourly, "<init>", Type::Void, {},
                                         {.IsCtor = true});
    {
      FunctionBuilder B("HourlyEmployee.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      B.callSpecial(EmpCtor, {This}, Type::Void);
      B.retVoid();
      P.setBody(HourlyCtor, B.finalize());
    }
    MethodId HourlyRaise = P.defineMethod(Hourly, "raise", Type::Void, {});
    {
      FunctionBuilder B("HourlyEmployee.raise", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg S = B.getField(This, Salary, Type::F64);
      Reg Inc = B.constF(0.5);
      B.putField(This, Salary, B.fadd(S, Inc));
      B.retVoid();
      P.setBody(HourlyRaise, B.finalize());
    }

    // --- class SalaryEmployee extends Employee -------------------------------
    ClassId SalaryEmp = P.defineClass("SalaryEmployee", Employee);
    FieldId Grade =
        P.defineField(SalaryEmp, "grade", Type::I64, false, Access::Private);
    MethodId SalCtor = P.defineMethod(SalaryEmp, "<init>", Type::Void,
                                      {Type::I64}, {.IsCtor = true});
    {
      FunctionBuilder B("SalaryEmployee.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg G = B.addArg(Type::I64);
      B.callSpecial(EmpCtor, {This}, Type::Void);
      B.putField(This, Grade, G);
      B.retVoid();
      P.setBody(SalCtor, B.finalize());
    }

    // --- class TestDriver ----------------------------------------------------
    ClassId Driver = P.defineClass("TestDriver");
    FieldId SalEmps =
        P.defineField(Driver, "salEmps", Type::Ref, true, Access::Private);
    FieldId ErrCount =
        P.defineField(Driver, "errCount", Type::I64, true, Access::Private);
    MethodId ReportError = P.defineMethod(Driver, "reportError", Type::Void,
                                          {}, {.IsStatic = true});
    {
      FunctionBuilder B("TestDriver.reportError", Type::Void);
      Reg E = B.getStatic(ErrCount, Type::I64);
      Reg One = B.constI(1);
      B.putStatic(ErrCount, B.add(E, One));
      B.retVoid();
      P.setBody(ReportError, B.finalize());
    }

    // SalaryEmployee.raise: the grade if-chain of Figure 2.
    MethodId SalRaise = P.defineMethod(SalaryEmp, "raise", Type::Void, {});
    {
      FunctionBuilder B("SalaryEmployee.raise", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg G = B.getField(This, Grade, Type::I64);
      auto LErr = B.makeLabel();
      auto LG1 = B.makeLabel();
      auto LG2 = B.makeLabel();
      auto LG3 = B.makeLabel();
      auto LEnd = B.makeLabel();
      // if (grade < 0 || grade > 3) reportError();
      Reg C0 = B.constI(0);
      B.cbnz(B.cmp(Opcode::CmpLT, G, C0), LErr);
      Reg C3 = B.constI(3);
      B.cbnz(B.cmp(Opcode::CmpGT, G, C3), LErr);
      // if (grade == 0) salary += 1;
      B.cbnz(B.cmp(Opcode::CmpNE, G, C0), LG1);
      {
        Reg S = B.getField(This, Salary, Type::F64);
        B.putField(This, Salary, B.fadd(S, B.constF(1.0)));
        B.br(LEnd);
      }
      // else if (grade == 1) salary += 2;
      B.bind(LG1);
      Reg C1 = B.constI(1);
      B.cbnz(B.cmp(Opcode::CmpNE, G, C1), LG2);
      {
        Reg S = B.getField(This, Salary, Type::F64);
        B.putField(This, Salary, B.fadd(S, B.constF(2.0)));
        B.br(LEnd);
      }
      // else if (grade == 2) salary *= 1.01;
      B.bind(LG2);
      Reg C2 = B.constI(2);
      B.cbnz(B.cmp(Opcode::CmpNE, G, C2), LG3);
      {
        Reg S = B.getField(This, Salary, Type::F64);
        B.putField(This, Salary, B.fmul(S, B.constF(1.01)));
        B.br(LEnd);
      }
      // else salary *= 1.02;
      B.bind(LG3);
      {
        Reg S = B.getField(This, Salary, Type::F64);
        B.putField(This, Salary, B.fmul(S, B.constF(1.02)));
        B.br(LEnd);
      }
      B.bind(LErr);
      B.callStatic(ReportError, {}, Type::Void);
      B.bind(LEnd);
      B.retVoid();
      P.setBody(SalRaise, B.finalize());
    }

    // TestDriver.init(n): build the employee database. Every eighth
    // employee is hourly; salary employees cycle through grades 0..3.
    MethodId Init = P.defineMethod(Driver, "init", Type::Void, {Type::I64},
                                   {.IsStatic = true});
    {
      FunctionBuilder B("TestDriver.init", Type::Void);
      Reg N = B.addArg(Type::I64);
      Reg Arr = B.newArray(Type::Ref, N);
      B.putStatic(SalEmps, Arr);
      Reg J = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      B.move(J, Zero);
      auto LHead = B.makeLabel();
      auto LBody = B.makeLabel();
      auto LHourly = B.makeLabel();
      auto LStore = B.makeLabel();
      auto LDone = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, J, N), LDone);
      B.br(LBody);
      B.bind(LBody);
      Reg Obj = B.newReg(Type::Ref);
      Reg C8 = B.constI(8);
      Reg M8 = B.rem(J, C8);
      Reg C7 = B.constI(7);
      B.cbnz(B.cmp(Opcode::CmpEQ, M8, C7), LHourly);
      {
        Reg S = B.newObject(SalaryEmp);
        Reg C4 = B.constI(4);
        Reg G = B.rem(J, C4);
        B.callSpecial(SalCtor, {S, G}, Type::Void);
        B.move(Obj, S);
        B.br(LStore);
      }
      B.bind(LHourly);
      {
        Reg Hr = B.newObject(Hourly);
        B.callSpecial(HourlyCtor, {Hr}, Type::Void);
        B.move(Obj, Hr);
        B.br(LStore);
      }
      B.bind(LStore);
      B.astore(Type::Ref, Arr, J, Obj);
      Reg One = B.constI(1);
      B.move(J, B.add(J, One));
      B.br(LHead);
      B.bind(LDone);
      B.retVoid();
      P.setBody(Init, B.finalize());
    }

    // TestDriver.runBatch(iters): the Figure 2 main loop, plus the audit
    // bookkeeping a database driver does per record (keeps the mutable
    // method's share of the run realistic).
    FieldId Audit =
        P.defineField(Driver, "auditAcc", Type::I64, true, Access::Private);
    MethodId RunBatch = P.defineMethod(Driver, "runBatch", Type::Void,
                                       {Type::I64}, {.IsStatic = true});
    {
      FunctionBuilder B("TestDriver.runBatch", Type::Void);
      Reg Iters = B.addArg(Type::I64);
      Reg Arr = B.getStatic(SalEmps, Type::Ref);
      Reg Len = B.alen(Arr);
      Reg I = B.newReg(Type::I64);
      Reg J = B.newReg(Type::I64);
      Reg Acc = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      Reg C31 = B.constI(31);
      Reg Two = B.constI(2);
      B.move(I, Zero);
      B.move(Acc, Zero);
      auto LOut = B.makeLabel();
      auto LIn = B.makeLabel();
      auto LInDone = B.makeLabel();
      auto LDone = B.makeLabel();
      B.bind(LOut);
      B.cbz(B.cmp(Opcode::CmpLT, I, Iters), LDone);
      B.move(J, Zero);
      B.bind(LIn);
      B.cbz(B.cmp(Opcode::CmpLT, J, Len), LInDone);
      Reg E = B.aload(Type::Ref, Arr, J);
      B.callVirtual(EmpRaise, {E}, Type::Void);
      // Audit trail: record-id hashing per processed employee.
      B.move(Acc, B.add(B.mul(Acc, C31), B.xorI(B.shl(J, Two), I)));
      B.move(J, B.add(J, One));
      B.br(LIn);
      B.bind(LInDone);
      B.move(I, B.add(I, One));
      B.br(LOut);
      B.bind(LDone);
      Reg Prev = B.getStatic(Audit, Type::I64);
      B.putStatic(Audit, B.add(Prev, Acc));
      B.retVoid();
      P.setBody(RunBatch, B.finalize());
    }

    // TestDriver.checkSum(): print the total salary (semantic witness).
    MethodId CheckSum = P.defineMethod(Driver, "checkSum", Type::Void, {},
                                       {.IsStatic = true});
    {
      FunctionBuilder B("TestDriver.checkSum", Type::Void);
      Reg Arr = B.getStatic(SalEmps, Type::Ref);
      Reg Len = B.alen(Arr);
      Reg J = B.newReg(Type::I64);
      Reg Sum = B.newReg(Type::F64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      Reg FZero = B.constF(0.0);
      B.move(J, Zero);
      B.move(Sum, FZero);
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, J, Len), LDone);
      Reg E = B.aload(Type::Ref, Arr, J);
      Reg S = B.callVirtual(GetSalary, {E}, Type::F64);
      B.move(Sum, B.fadd(Sum, S));
      B.move(J, B.add(J, One));
      B.br(LHead);
      B.bind(LDone);
      B.printNum(Sum, Type::F64);
      Reg Err = B.getStatic(ErrCount, Type::I64);
      B.printNum(Err, Type::I64);
      B.retVoid();
      P.setBody(CheckSum, B.finalize());
    }
  }

  void driveScaled(VirtualMachine &VM, double Scale) override {
    ProgramIds Ids(VM.program());
    MethodId Init = Ids.method("TestDriver", "init");
    MethodId RunBatch = Ids.method("TestDriver", "runBatch");
    MethodId CheckSum = Ids.method("TestDriver", "checkSum");
    VM.call(Init, {valueI(400)});
    long Batches = static_cast<long>(600 * Scale);
    if (Batches < 10)
      Batches = 10;
    for (long B = 0; B < Batches; ++B)
      VM.call(RunBatch, {valueI(4)});
    VM.call(CheckSum, {});
  }
};

} // namespace

std::unique_ptr<Workload> makeSalaryDb() { return std::make_unique<SalaryDb>(); }

} // namespace dchm
