//===-- workloads/Java2Xhtml.cpp - Java source to XHTML -----------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// Models Java2XHTML v2.0 (2 classes in Table 1): a formatter walking Java
/// source characters and emitting XHTML. The Formatter's style options
/// (styleMode, tabSize) are configuration state fixed at construction — a
/// single distinct hot state; specializing the per-character format method
/// folds the style branches and the tab-expansion loop bound.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/Builder.h"

namespace dchm {

namespace {

class Java2Xhtml final : public Workload {
public:
  std::string name() const override { return "Java2XHTML"; }
  std::string description() const override {
    return "Java to XHTML conversion with style-state formatter";
  }

  void build(Program &P) override {
    // --- class Formatter (mutable) --------------------------------------------
    ClassId Fmt = P.defineClass("Formatter");
    FieldId Style =
        P.defineField(Fmt, "styleMode", Type::I64, false, Access::Private);
    FieldId TabSize =
        P.defineField(Fmt, "tabSize", Type::I64, false, Access::Private);
    MethodId FmtCtor =
        P.defineMethod(Fmt, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder B("Formatter.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg One = B.constI(1);
      B.putField(This, Style, One);
      Reg Four = B.constI(4);
      B.putField(This, TabSize, Four);
      B.retVoid();
      P.setBody(FmtCtor, B.finalize());
    }

    // formatChar(c, out, pos): append the XHTML rendering of c to out
    // (an i64 array), returning the new position.
    MethodId FormatChar = P.defineMethod(
        Fmt, "formatChar", Type::I64, {Type::I64, Type::Ref, Type::I64});
    {
      FunctionBuilder B("Formatter.formatChar", Type::I64);
      Reg This = B.addArg(Type::Ref);
      Reg C = B.addArg(Type::I64);
      Reg Out = B.addArg(Type::Ref);
      Reg PosArg = B.addArg(Type::I64);
      Reg Pos = B.newReg(Type::I64);
      B.move(Pos, PosArg);
      Reg One = B.constI(1);
      auto LTab = B.makeLabel();
      auto LLt = B.makeLabel();
      auto LAmp = B.makeLabel();
      auto LKw = B.makeLabel();
      auto LPlain = B.makeLabel();
      auto LDone = B.makeLabel();
      // Tab: expand to tabSize spaces.
      Reg Tab = B.constI(9);
      B.cbz(B.cmp(Opcode::CmpEQ, C, Tab), LLt);
      B.br(LTab);
      B.bind(LTab);
      {
        Reg I = B.newReg(Type::I64);
        Reg Zero = B.constI(0);
        Reg Space = B.constI(32);
        B.move(I, Zero);
        auto LH = B.makeLabel();
        auto LE = B.makeLabel();
        B.bind(LH);
        // Field read in the loop bound, as javac emits for
        // `for (i = 0; i < tabSize; i++)`.
        Reg T = B.getField(This, TabSize, Type::I64);
        B.cbz(B.cmp(Opcode::CmpLT, I, T), LE);
        B.astore(Type::I64, Out, Pos, Space);
        B.move(Pos, B.add(Pos, One));
        B.move(I, B.add(I, One));
        B.br(LH);
        B.bind(LE);
        B.br(LDone);
      }
      // '<' escapes to &lt; (4 chars).
      B.bind(LLt);
      Reg Lt = B.constI(60);
      B.cbz(B.cmp(Opcode::CmpEQ, C, Lt), LAmp);
      {
        Reg Amp = B.constI(38);
        Reg Cl = B.constI(108);
        Reg Ct = B.constI(116);
        Reg Semi = B.constI(59);
        B.astore(Type::I64, Out, Pos, Amp);
        B.move(Pos, B.add(Pos, One));
        B.astore(Type::I64, Out, Pos, Cl);
        B.move(Pos, B.add(Pos, One));
        B.astore(Type::I64, Out, Pos, Ct);
        B.move(Pos, B.add(Pos, One));
        B.astore(Type::I64, Out, Pos, Semi);
        B.move(Pos, B.add(Pos, One));
        B.br(LDone);
      }
      // '&' escapes to &amp; — folded into one branch chain.
      B.bind(LAmp);
      Reg AmpC = B.constI(38);
      B.cbz(B.cmp(Opcode::CmpEQ, C, AmpC), LKw);
      {
        Reg Ca = B.constI(97);
        B.astore(Type::I64, Out, Pos, AmpC);
        B.move(Pos, B.add(Pos, One));
        B.astore(Type::I64, Out, Pos, Ca);
        B.move(Pos, B.add(Pos, One));
        B.br(LDone);
      }
      // Keyword-ish uppercase start: styled span when styleMode != 0.
      B.bind(LKw);
      Reg CA = B.constI(65);
      Reg CZ = B.constI(90);
      B.cbz(B.cmp(Opcode::CmpGE, C, CA), LPlain);
      B.cbz(B.cmp(Opcode::CmpLE, C, CZ), LPlain);
      {
        Reg S = B.getField(This, Style, Type::I64);
        auto LNoStyle = B.makeLabel();
        B.cbz(S, LNoStyle);
        // Emit a style marker '*' before the character.
        Reg Star = B.constI(42);
        B.astore(Type::I64, Out, Pos, Star);
        B.move(Pos, B.add(Pos, One));
        B.bind(LNoStyle);
        B.astore(Type::I64, Out, Pos, C);
        B.move(Pos, B.add(Pos, One));
        B.br(LDone);
      }
      B.bind(LPlain);
      B.astore(Type::I64, Out, Pos, C);
      B.move(Pos, B.add(Pos, One));
      B.br(LDone);
      B.bind(LDone);
      B.ret(Pos);
      P.setBody(FormatChar, B.finalize());
    }

    // --- class J2xMain ------------------------------------------------------
    ClassId Main = P.defineClass("J2xMain");
    FieldId FIn = P.defineField(Main, "input", Type::Ref, true, Access::Private);
    FieldId FOut =
        P.defineField(Main, "output", Type::Ref, true, Access::Private);
    FieldId FFmt =
        P.defineField(Main, "fmt", Type::Ref, true, Access::Private);
    FieldId FSeed = P.defineField(Main, "seed", Type::I64, true);
    FieldId FHash = P.defineField(Main, "outHash", Type::I64, true);

    MethodId NextRand = P.defineMethod(Main, "nextRand", Type::I64, {},
                                       {.IsStatic = true});
    {
      FunctionBuilder B("J2xMain.nextRand", Type::I64);
      Reg S = B.getStatic(FSeed, Type::I64);
      Reg Mul = B.constI(22695477);
      Reg Add = B.constI(1);
      Reg S2 = B.add(B.mul(S, Mul), Add);
      B.putStatic(FSeed, S2);
      Reg Sh = B.constI(15);
      Reg Mask = B.constI(0xFFFF);
      B.ret(B.andI(B.shr(S2, Sh), Mask));
      P.setBody(NextRand, B.finalize());
    }

    // init(n): synthesize Java-ish source: letters, tabs, '<', '&', capitals.
    MethodId Init = P.defineMethod(Main, "init", Type::Void, {Type::I64},
                                   {.IsStatic = true});
    {
      FunctionBuilder B("J2xMain.init", Type::Void);
      Reg N = B.addArg(Type::I64);
      Reg In = B.newArray(Type::I64, N);
      B.putStatic(FIn, In);
      Reg Cap = B.newReg(Type::I64);
      Reg Six = B.constI(6);
      B.move(Cap, B.mul(N, Six));
      B.putStatic(FOut, B.newArray(Type::I64, Cap));
      Reg F = B.newObject(Fmt);
      B.callSpecial(FmtCtor, {F}, Type::Void);
      B.putStatic(FFmt, F);
      Reg I = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      B.move(I, Zero);
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      auto LTab = B.makeLabel();
      auto LLt = B.makeLabel();
      auto LAmp = B.makeLabel();
      auto LCap = B.makeLabel();
      auto LStore = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
      Reg R = B.callStatic(NextRand, {}, Type::I64);
      Reg C20 = B.constI(20);
      Reg Bucket = B.rem(R, C20);
      Reg Ch = B.newReg(Type::I64);
      Reg Two = B.constI(2);
      B.cbz(B.cmp(Opcode::CmpLT, Bucket, Two), LTab);
      Reg Tab = B.constI(9);
      B.move(Ch, Tab);
      B.br(LStore);
      B.bind(LTab);
      B.cbz(B.cmp(Opcode::CmpEQ, Bucket, Two), LLt);
      Reg Lt = B.constI(60);
      B.move(Ch, Lt);
      B.br(LStore);
      B.bind(LLt);
      Reg Three = B.constI(3);
      B.cbz(B.cmp(Opcode::CmpEQ, Bucket, Three), LAmp);
      Reg Amp = B.constI(38);
      B.move(Ch, Amp);
      B.br(LStore);
      B.bind(LAmp);
      Reg Nine = B.constI(9);
      B.cbz(B.cmp(Opcode::CmpLT, Bucket, Nine), LCap);
      Reg C26 = B.constI(26);
      Reg CA = B.constI(65);
      B.move(Ch, B.add(CA, B.rem(R, C26)));
      B.br(LStore);
      B.bind(LCap);
      Reg C26b = B.constI(26);
      Reg Ca = B.constI(97);
      B.move(Ch, B.add(Ca, B.rem(R, C26b)));
      B.br(LStore);
      B.bind(LStore);
      B.astore(Type::I64, In, I, Ch);
      B.move(I, B.add(I, One));
      B.br(LHead);
      B.bind(LDone);
      B.retVoid();
      P.setBody(Init, B.finalize());
    }

    // format(): run the formatter over the whole input once.
    MethodId Format = P.defineMethod(Main, "format", Type::Void, {},
                                     {.IsStatic = true});
    {
      FunctionBuilder B("J2xMain.format", Type::Void);
      Reg In = B.getStatic(FIn, Type::Ref);
      Reg Out = B.getStatic(FOut, Type::Ref);
      Reg F = B.getStatic(FFmt, Type::Ref);
      Reg N = B.alen(In);
      Reg I = B.newReg(Type::I64);
      Reg Pos = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      B.move(I, Zero);
      B.move(Pos, Zero);
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
      Reg C = B.aload(Type::I64, In, I);
      Reg NewPos = B.callVirtual(FormatChar, {F, C, Out, Pos}, Type::I64);
      B.move(Pos, NewPos);
      B.move(I, B.add(I, One));
      B.br(LHead);
      B.bind(LDone);
      // Fold the output into a running hash (the semantic witness).
      Reg H = B.getStatic(FHash, Type::I64);
      Reg J = B.newReg(Type::I64);
      B.move(J, Zero);
      Reg M = B.constI(1000003);
      auto LH2 = B.makeLabel();
      auto LD2 = B.makeLabel();
      B.bind(LH2);
      B.cbz(B.cmp(Opcode::CmpLT, J, Pos), LD2);
      B.move(H, B.add(B.mul(H, M), B.aload(Type::I64, Out, J)));
      B.move(J, B.add(J, One));
      B.br(LH2);
      B.bind(LD2);
      B.putStatic(FHash, H);
      B.retVoid();
      P.setBody(Format, B.finalize());
    }

    MethodId CheckSum = P.defineMethod(Main, "checkSum", Type::Void, {},
                                       {.IsStatic = true});
    {
      FunctionBuilder B("J2xMain.checkSum", Type::Void);
      Reg H = B.getStatic(FHash, Type::I64);
      B.printNum(H, Type::I64);
      B.retVoid();
      P.setBody(CheckSum, B.finalize());
    }
  }

  void driveScaled(VirtualMachine &VM, double Scale) override {
    ProgramIds Ids(VM.program());
    VM.program().setStaticSlot(
        VM.program().field(Ids.field("J2xMain", "seed")).Slot, valueI(4242));
    VM.call(Ids.method("J2xMain", "init"), {valueI(2500)});
    long Batches = static_cast<long>(140 * Scale);
    if (Batches < 6)
      Batches = 6;
    MethodId Format = Ids.method("J2xMain", "format");
    for (long I = 0; I < Batches; ++I)
      VM.call(Format, {});
    VM.call(Ids.method("J2xMain", "checkSum"), {});
  }
};

} // namespace

std::unique_ptr<Workload> makeJava2Xhtml() {
  return std::make_unique<Java2Xhtml>();
}

} // namespace dchm
