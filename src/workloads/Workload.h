//===-- workloads/Workload.h - Benchmark program interface ----*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seven benchmark programs of the paper's Table 1, re-expressed as
/// MiniVM IR programs. Every workload can rebuild its Program from scratch
/// deterministically (so profiling runs, baseline runs, and mutation runs
/// never share compiled state) and can drive a run at a configurable scale.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_WORKLOADS_WORKLOAD_H
#define DCHM_WORKLOADS_WORKLOAD_H

#include "analysis/OfflinePipeline.h"
#include "core/VM.h"

#include <memory>
#include <string>
#include <vector>

namespace dchm {

/// One benchmark program.
class Workload : public ProgramSource {
public:
  ~Workload() override = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  /// Drives a run at the given scale (1.0 = the full benchmark; profiling
  /// runs use a fraction). The driver resolves entity ids by name from
  /// VM.program(), so it works on any Program built by this workload.
  virtual void driveScaled(VirtualMachine &VM, double Scale) = 0;

  /// Full-scale run.
  void drive(VirtualMachine &VM) { driveScaled(VM, 1.0); }

  // --- ProgramSource ---------------------------------------------------------
  std::unique_ptr<Program> buildProgram() override {
    auto P = std::make_unique<Program>();
    build(*P);
    P->link();
    return P;
  }
  void driveProfile(VirtualMachine &VM) override {
    driveScaled(VM, ProfileScale);
  }

protected:
  /// Defines the classes, fields, and methods (without linking).
  virtual void build(Program &P) = 0;

  /// Fraction of the full run used for offline profiling.
  double ProfileScale = 0.2;
};

/// Convenience name-based resolution for drivers and tests (aborts on
/// missing names — a typo in a driver is a bug, not a condition).
class ProgramIds {
public:
  explicit ProgramIds(Program &P) : P(P) {}
  ClassId cls(const std::string &Name) const;
  MethodId method(const std::string &Cls, const std::string &Name) const;
  FieldId field(const std::string &Cls, const std::string &Name) const;

private:
  Program &P;
};

// --- Factories (Table 1) ------------------------------------------------
std::unique_ptr<Workload> makeSalaryDb();
std::unique_ptr<Workload> makeSimLogic();
std::unique_ptr<Workload> makeCsvToXml();
std::unique_ptr<Workload> makeJava2Xhtml();
std::unique_ptr<Workload> makeWekaMini();

/// SPECjbb-like transaction-processing workload.
enum class JbbVariant { Jbb2000, Jbb2005 };

/// One measurement window ("warehouse") of a SPECjbb-like run.
struct JbbWindow {
  double Throughput = 0.0; ///< transactions per simulated second
  uint64_t Cycles = 0;
  uint64_t Transactions = 0;
};

/// Extended driver API for the SPECjbb-like workloads: Figures 13-15 need
/// per-warehouse throughput, not just end-to-end cycles.
class JbbWorkload : public Workload {
public:
  /// Builds the warehouse database on a fresh VM (seeds, init transaction).
  virtual void initVm(VirtualMachine &VM) = 0;
  /// Runs Count transactions; returns the number actually run.
  virtual uint64_t runTransactions(VirtualMachine &VM, uint64_t Count) = 0;
  /// Runs NumWindows back-to-back measurement windows of WindowCycles
  /// simulated cycles each, after a WarmupCycles ramp.
  virtual std::vector<JbbWindow> runWarehouseWindows(VirtualMachine &VM,
                                                     int NumWindows,
                                                     uint64_t WindowCycles,
                                                     uint64_t WarmupCycles) = 0;
};

std::unique_ptr<JbbWorkload> makeJbb(JbbVariant V);

/// All seven, in Table 1 order.
std::vector<std::unique_ptr<Workload>> makeAllWorkloads();

} // namespace dchm

#endif // DCHM_WORKLOADS_WORKLOAD_H
