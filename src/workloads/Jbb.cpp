//===-- workloads/Jbb.cpp - SPECjbb-like transaction processing ---------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// A warehouse transaction-processing workload modeled on SPECjbb2000 and
/// SPECjbb2005 (ported versions per the paper's methodology):
///
///  - DisplayScreen reproduces the paper's Figure 7: rows/cols assigned the
///    constants 24/80 in the constructor, reachable through *private*
///    reference fields of the Delivery and Payment transactions — object
///    lifetime constants enabling specialization inlining.
///  - Terminal is a mutable class with three hot states (terse / normal /
///    verbose logging mode), exercising multi-state special TIBs.
///  - TxLogger is a mutable class depending only on a *static* state field
///    (logLevel), exercising JTOC/class-TIB mutation for static methods.
///  - The 2005 variant adds the heavyweight CustomerReport transaction and
///    larger order sizes: less relative time in mutable methods and much
///    more allocation (GC pressure), which is why its mutation speedup is
///    smaller (paper: 1.9% vs 4.5%).
///
/// Measurement: runWarehouseWindows() executes back-to-back "warehouses"
/// (fixed simulated-cycle windows) and reports each window's throughput in
/// transactions per simulated second, the paper's Figures 13-15 metric.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/Builder.h"
#include "runtime/CostModel.h"

#include <algorithm>

namespace dchm {

namespace {

class JbbImpl final : public JbbWorkload {
public:
  explicit JbbImpl(JbbVariant V) : Variant(V) {}

  std::string name() const override {
    return Variant == JbbVariant::Jbb2000 ? "SPECjbb2000" : "SPECjbb2005";
  }
  std::string description() const override {
    return "SPEC transaction processing benchmark (warehouse model)";
  }

  void build(Program &P) override;
  void driveScaled(VirtualMachine &VM, double Scale) override;

  void initVm(VirtualMachine &VM) override;
  uint64_t runTransactions(VirtualMachine &VM, uint64_t Count) override;
  std::vector<JbbWindow>
  runWarehouseWindows(VirtualMachine &VM, int NumWindows,
                      uint64_t WindowCycles, uint64_t WarmupCycles) override;

private:
  JbbVariant Variant;
};

void JbbImpl::build(Program &P) {
  const bool Is2005 = Variant == JbbVariant::Jbb2005;

  // --- class TxLogger (mutable on a static state field) ---------------------
  ClassId Logger = P.defineClass("TxLogger");
  FieldId LogLevel =
      P.defineField(Logger, "logLevel", Type::I64, true, Access::Private);
  FieldId LogCount = P.defineField(Logger, "logCount", Type::I64, true);
  MethodId LogSet = P.defineMethod(Logger, "setLevel", Type::Void, {Type::I64},
                                   {.IsStatic = true});
  {
    FunctionBuilder B("TxLogger.setLevel", Type::Void);
    Reg L = B.addArg(Type::I64);
    B.putStatic(LogLevel, L);
    B.retVoid();
    P.setBody(LogSet, B.finalize());
  }
  MethodId Log = P.defineMethod(Logger, "log", Type::Void, {Type::I64},
                                {.IsStatic = true});
  {
    FunctionBuilder B("TxLogger.log", Type::Void);
    B.addArg(Type::I64); // logged value: consumed only at higher log levels
    Reg L = B.getStatic(LogLevel, Type::I64);
    auto LSkip = B.makeLabel();
    auto LFull = B.makeLabel();
    B.cbz(L, LSkip);
    // level >= 2: detailed accounting (cold in the hot state).
    Reg Two = B.constI(2);
    B.cbz(B.cmp(Opcode::CmpGE, L, Two), LFull);
    Reg C = B.getStatic(LogCount, Type::I64);
    Reg Three = B.constI(3);
    B.putStatic(LogCount, B.add(C, Three));
    B.retVoid();
    B.bind(LFull);
    Reg C2 = B.getStatic(LogCount, Type::I64);
    Reg One = B.constI(1);
    B.putStatic(LogCount, B.add(C2, One));
    B.retVoid();
    B.bind(LSkip);
    B.retVoid();
    P.setBody(Log, B.finalize());
  }

  // --- class DisplayScreen (paper Figure 7) -----------------------------------
  ClassId Screen = P.defineClass("DisplayScreen");
  FieldId Rows =
      P.defineField(Screen, "rows", Type::I64, false, Access::Package);
  FieldId Cols =
      P.defineField(Screen, "cols", Type::I64, false, Access::Package);
  FieldId SBuf =
      P.defineField(Screen, "buf", Type::Ref, false, Access::Private);
  MethodId ScrCtor =
      P.defineMethod(Screen, "<init>", Type::Void, {}, {.IsCtor = true});
  {
    FunctionBuilder B("DisplayScreen.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg R24 = B.constI(24);
    B.putField(This, Rows, R24);
    Reg C80 = B.constI(80);
    B.putField(This, Cols, C80);
    Reg N = B.mul(B.getField(This, Rows, Type::I64),
                  B.getField(This, Cols, Type::I64));
    B.putField(This, SBuf, B.newArray(Type::I64, N));
    B.retVoid();
    P.setBody(ScrCtor, B.finalize());
  }
  // putText(row, seed): fill one row with generated characters. The cols
  // field is read in the loop bound — a branch use of a state field.
  MethodId PutText =
      P.defineMethod(Screen, "putText", Type::Void, {Type::I64, Type::I64});
  {
    FunctionBuilder B("DisplayScreen.putText", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg Row = B.addArg(Type::I64);
    Reg SeedV = B.addArg(Type::I64);
    Reg Buf = B.getField(This, SBuf, Type::Ref);
    Reg C = B.newReg(Type::I64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    Reg Mask = B.constI(15);
    Reg CA = B.constI(65);
    B.move(C, Zero);
    auto LHead = B.makeLabel();
    auto LDone = B.makeLabel();
    B.bind(LHead);
    Reg Width = B.getField(This, Cols, Type::I64);
    B.cbz(B.cmp(Opcode::CmpLT, C, Width), LDone);
    Reg Idx = B.add(B.mul(Row, Width), C);
    Reg Ch = B.add(CA, B.andI(B.add(SeedV, C), Mask));
    B.astore(Type::I64, Buf, Idx, Ch);
    B.move(C, B.add(C, One));
    B.br(LHead);
    B.bind(LDone);
    B.retVoid();
    P.setBody(PutText, B.finalize());
  }
  // clear(): blank the whole screen (rows x cols).
  MethodId Clear = P.defineMethod(Screen, "clear", Type::Void, {});
  {
    FunctionBuilder B("DisplayScreen.clear", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg Buf = B.getField(This, SBuf, Type::Ref);
    Reg R = B.newReg(Type::I64);
    Reg C = B.newReg(Type::I64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    Reg Space = B.constI(32);
    B.move(R, Zero);
    auto LR = B.makeLabel();
    auto LRD = B.makeLabel();
    auto LC = B.makeLabel();
    auto LCD = B.makeLabel();
    B.bind(LR);
    Reg Height = B.getField(This, Rows, Type::I64);
    B.cbz(B.cmp(Opcode::CmpLT, R, Height), LRD);
    B.move(C, Zero);
    B.bind(LC);
    Reg Width = B.getField(This, Cols, Type::I64);
    B.cbz(B.cmp(Opcode::CmpLT, C, Width), LCD);
    B.astore(Type::I64, Buf, B.add(B.mul(R, Width), C), Space);
    B.move(C, B.add(C, One));
    B.br(LC);
    B.bind(LCD);
    B.move(R, B.add(R, One));
    B.br(LR);
    B.bind(LRD);
    B.retVoid();
    P.setBody(Clear, B.finalize());
  }

  // --- class Terminal (mutable, three hot states) -----------------------------
  ClassId Term = P.defineClass("Terminal");
  FieldId Mode =
      P.defineField(Term, "mode", Type::I64, false, Access::Private);
  FieldId TBuf = P.defineField(Term, "lineBuf", Type::Ref, false,
                               Access::Private);
  FieldId TPos = P.defineField(Term, "pos", Type::I64, false, Access::Private);
  MethodId TermCtor = P.defineMethod(Term, "<init>", Type::Void, {Type::I64},
                                     {.IsCtor = true});
  {
    FunctionBuilder B("Terminal.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg M = B.addArg(Type::I64);
    B.putField(This, Mode, M);
    Reg Cap = B.constI(4096);
    B.putField(This, TBuf, B.newArray(Type::I64, Cap));
    Reg Zero = B.constI(0);
    B.putField(This, TPos, Zero);
    B.retVoid();
    P.setBody(TermCtor, B.finalize());
  }
  // logLine(v): emit 1 / 4 / 9 words depending on the mode state field.
  MethodId LogLine = P.defineMethod(Term, "logLine", Type::Void, {Type::I64});
  {
    FunctionBuilder B("Terminal.logLine", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg V = B.addArg(Type::I64);
    Reg M = B.getField(This, Mode, Type::I64);
    Reg Buf = B.getField(This, TBuf, Type::Ref);
    Reg Pos = B.newReg(Type::I64);
    B.move(Pos, B.getField(This, TPos, Type::I64));
    Reg One = B.constI(1);
    Reg Mask = B.constI(4095);
    auto LNormal = B.makeLabel();
    auto LVerbose = B.makeLabel();
    auto LDone = B.makeLabel();
    B.cbnz(M, LNormal);
    { // terse: one word
      B.astore(Type::I64, Buf, B.andI(Pos, Mask), V);
      B.move(Pos, B.add(Pos, One));
      B.br(LDone);
    }
    B.bind(LNormal);
    Reg Two = B.constI(2);
    B.cbz(B.cmp(Opcode::CmpLT, M, Two), LVerbose);
    { // normal: four words
      Reg I = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg Four = B.constI(4);
      B.move(I, Zero);
      auto LH = B.makeLabel();
      auto LE = B.makeLabel();
      B.bind(LH);
      B.cbz(B.cmp(Opcode::CmpLT, I, Four), LE);
      B.astore(Type::I64, Buf, B.andI(Pos, Mask), B.add(V, I));
      B.move(Pos, B.add(Pos, One));
      B.move(I, B.add(I, One));
      B.br(LH);
      B.bind(LE);
      B.br(LDone);
    }
    B.bind(LVerbose);
    { // verbose: nine words
      Reg I = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg Nine = B.constI(9);
      B.move(I, Zero);
      auto LH = B.makeLabel();
      auto LE = B.makeLabel();
      B.bind(LH);
      B.cbz(B.cmp(Opcode::CmpLT, I, Nine), LE);
      B.astore(Type::I64, Buf, B.andI(Pos, Mask), B.mul(V, I));
      B.move(Pos, B.add(Pos, One));
      B.move(I, B.add(I, One));
      B.br(LH);
      B.bind(LE);
      B.br(LDone);
    }
    B.bind(LDone);
    B.putField(This, TPos, Pos);
    B.retVoid();
    P.setBody(LogLine, B.finalize());
  }

  // --- Simple data classes -----------------------------------------------------
  ClassId Item = P.defineClass("Item");
  FieldId ItemId = P.defineField(Item, "id", Type::I64, false);
  FieldId Price = P.defineField(Item, "price", Type::F64, false);
  MethodId ItemCtor = P.defineMethod(Item, "<init>", Type::Void,
                                     {Type::I64, Type::F64}, {.IsCtor = true});
  {
    FunctionBuilder B("Item.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg Id = B.addArg(Type::I64);
    Reg Pr = B.addArg(Type::F64);
    B.putField(This, ItemId, Id);
    B.putField(This, Price, Pr);
    B.retVoid();
    P.setBody(ItemCtor, B.finalize());
  }

  ClassId Cust = P.defineClass("Customer");
  FieldId CustId = P.defineField(Cust, "id", Type::I64, false);
  FieldId Balance = P.defineField(Cust, "balance", Type::F64, false);
  MethodId CustCtor = P.defineMethod(Cust, "<init>", Type::Void, {Type::I64},
                                     {.IsCtor = true});
  {
    FunctionBuilder B("Customer.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg Id = B.addArg(Type::I64);
    B.putField(This, CustId, Id);
    Reg Z = B.constF(0.0);
    B.putField(This, Balance, Z);
    B.retVoid();
    P.setBody(CustCtor, B.finalize());
  }
  MethodId Pay = P.defineMethod(Cust, "pay", Type::Void, {Type::F64});
  {
    FunctionBuilder B("Customer.pay", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg Amt = B.addArg(Type::F64);
    Reg Bal = B.getField(This, Balance, Type::F64);
    B.putField(This, Balance, B.fadd(Bal, Amt));
    B.retVoid();
    P.setBody(Pay, B.finalize());
  }

  ClassId OrderLine = P.defineClass("OrderLine");
  FieldId OlItem = P.defineField(OrderLine, "item", Type::I64, false);
  FieldId OlQty = P.defineField(OrderLine, "qty", Type::I64, false);
  FieldId OlAmt = P.defineField(OrderLine, "amount", Type::F64, false);
  MethodId OlCtor =
      P.defineMethod(OrderLine, "<init>", Type::Void,
                     {Type::I64, Type::I64, Type::F64}, {.IsCtor = true});
  {
    FunctionBuilder B("OrderLine.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg It = B.addArg(Type::I64);
    Reg Q = B.addArg(Type::I64);
    Reg A = B.addArg(Type::F64);
    B.putField(This, OlItem, It);
    B.putField(This, OlQty, Q);
    B.putField(This, OlAmt, A);
    B.retVoid();
    P.setBody(OlCtor, B.finalize());
  }

  ClassId Order = P.defineClass("Order");
  FieldId OrdId = P.defineField(Order, "id", Type::I64, false);
  FieldId OrdCust = P.defineField(Order, "cust", Type::Ref, false);
  FieldId OrdLines = P.defineField(Order, "lines", Type::Ref, false);
  FieldId OrdN = P.defineField(Order, "numLines", Type::I64, false);
  MethodId OrdCtor =
      P.defineMethod(Order, "<init>", Type::Void,
                     {Type::I64, Type::Ref, Type::I64}, {.IsCtor = true});
  {
    FunctionBuilder B("Order.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg Id = B.addArg(Type::I64);
    Reg C = B.addArg(Type::Ref);
    Reg N = B.addArg(Type::I64);
    B.putField(This, OrdId, Id);
    B.putField(This, OrdCust, C);
    B.putField(This, OrdLines, B.newArray(Type::Ref, N));
    B.putField(This, OrdN, N);
    B.retVoid();
    P.setBody(OrdCtor, B.finalize());
  }

  ClassId District = P.defineClass("District");
  FieldId DistId = P.defineField(District, "id", Type::I64, false);
  FieldId NextOrd = P.defineField(District, "nextOrderId", Type::I64, false);
  MethodId DistCtor = P.defineMethod(District, "<init>", Type::Void,
                                     {Type::I64}, {.IsCtor = true});
  {
    FunctionBuilder B("District.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg Id = B.addArg(Type::I64);
    B.putField(This, DistId, Id);
    Reg One = B.constI(1);
    B.putField(This, NextOrd, One);
    B.retVoid();
    P.setBody(DistCtor, B.finalize());
  }
  MethodId NextOrder = P.defineMethod(District, "nextOrder", Type::I64, {});
  {
    FunctionBuilder B("District.nextOrder", Type::I64);
    Reg This = B.addArg(Type::Ref);
    Reg N = B.getField(This, NextOrd, Type::I64);
    Reg One = B.constI(1);
    B.putField(This, NextOrd, B.add(N, One));
    B.ret(N);
    P.setBody(NextOrder, B.finalize());
  }

  ClassId Wh = P.defineClass("Warehouse");
  FieldId WhId = P.defineField(Wh, "id", Type::I64, false);
  FieldId WhStock = P.defineField(Wh, "stock", Type::Ref, false);
  FieldId WhItems = P.defineField(Wh, "items", Type::Ref, false);
  FieldId WhDists = P.defineField(Wh, "districts", Type::Ref, false);
  FieldId WhCusts = P.defineField(Wh, "customers", Type::Ref, false);
  MethodId WhCtor = P.defineMethod(
      Wh, "<init>", Type::Void, {Type::I64, Type::I64, Type::I64, Type::I64},
      {.IsCtor = true});
  {
    FunctionBuilder B("Warehouse.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg Id = B.addArg(Type::I64);
    Reg NItems = B.addArg(Type::I64);
    Reg NDists = B.addArg(Type::I64);
    Reg NCusts = B.addArg(Type::I64);
    B.putField(This, WhId, Id);
    B.putField(This, WhStock, B.newArray(Type::I64, NItems));
    B.putField(This, WhItems, B.newArray(Type::Ref, NItems));
    B.putField(This, WhDists, B.newArray(Type::Ref, NDists));
    B.putField(This, WhCusts, B.newArray(Type::Ref, NCusts));
    B.retVoid();
    P.setBody(WhCtor, B.finalize());
  }

  // --- Transactions ------------------------------------------------------------
  // Shared statics live on TxManager (declared below, ids forward-captured).
  ClassId Mgr = P.defineClass("TxManager");
  FieldId MSeed = P.defineField(Mgr, "seed", Type::I64, true);
  FieldId MWh = P.defineField(Mgr, "warehouse", Type::Ref, true);
  FieldId MTerms = P.defineField(Mgr, "terminals", Type::Ref, true);
  FieldId MLastOrder = P.defineField(Mgr, "lastOrder", Type::Ref, true);
  FieldId MVariant = P.defineField(Mgr, "variant", Type::I64, true);
  FieldId MTxDone = P.defineField(Mgr, "txDone", Type::I64, true);
  FieldId MCheck = P.defineField(Mgr, "check", Type::I64, true);

  MethodId NextRand = P.defineMethod(Mgr, "nextRand", Type::I64, {},
                                     {.IsStatic = true});
  {
    FunctionBuilder B("TxManager.nextRand", Type::I64);
    Reg S = B.getStatic(MSeed, Type::I64);
    Reg Mul = B.constI(2862933555777941757ll);
    Reg Add = B.constI(3037000493ll);
    Reg S2 = B.add(B.mul(S, Mul), Add);
    B.putStatic(MSeed, S2);
    Reg Sh = B.constI(35);
    Reg Mask = B.constI(0x3FFFFFFF);
    B.ret(B.andI(B.shr(S2, Sh), Mask));
    P.setBody(NextRand, B.finalize());
  }

  // class NewOrderTx.
  ClassId NewOrd = P.defineClass("NewOrderTx");
  MethodId NoCtor =
      P.defineMethod(NewOrd, "<init>", Type::Void, {}, {.IsCtor = true});
  {
    FunctionBuilder B("NewOrderTx.<init>", Type::Void);
    B.addArg(Type::Ref);
    B.retVoid();
    P.setBody(NoCtor, B.finalize());
  }
  MethodId NoProcess =
      P.defineMethod(NewOrd, "process", Type::Void, {Type::Ref, Type::Ref});
  {
    FunctionBuilder B("NewOrderTx.process", Type::Void);
    B.addArg(Type::Ref); // this
    Reg W = B.addArg(Type::Ref);
    Reg T = B.addArg(Type::Ref); // terminal
    Reg Custs = B.getField(W, WhCusts, Type::Ref);
    Reg NCust = B.alen(Custs);
    Reg RC = B.callStatic(NextRand, {}, Type::I64);
    Reg C = B.aload(Type::Ref, Custs, B.rem(RC, NCust));
    Reg Dists = B.getField(W, WhDists, Type::Ref);
    Reg NDist = B.alen(Dists);
    Reg RD = B.callStatic(NextRand, {}, Type::I64);
    Reg D = B.aload(Type::Ref, Dists, B.rem(RD, NDist));
    Reg OId = B.callVirtual(NextOrder, {D}, Type::I64);
    // Order size: 4 + rand%4 lines (2005: 6 + rand%6).
    Reg RL = B.callStatic(NextRand, {}, Type::I64);
    Reg BaseN = B.constI(Is2005 ? 6 : 4);
    Reg ModN = B.constI(Is2005 ? 6 : 4);
    Reg NLines = B.add(BaseN, B.rem(RL, ModN));
    Reg O = B.newObject(Order);
    B.callSpecial(OrdCtor, {O, OId, C, NLines}, Type::Void);
    Reg Lines = B.getField(O, OrdLines, Type::Ref);
    Reg Items = B.getField(W, WhItems, Type::Ref);
    Reg Stock = B.getField(W, WhStock, Type::Ref);
    Reg NItems = B.alen(Items);
    Reg L = B.newReg(Type::I64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    B.move(L, Zero);
    auto LHead = B.makeLabel();
    auto LDone = B.makeLabel();
    auto LNoRestock = B.makeLabel();
    B.bind(LHead);
    B.cbz(B.cmp(Opcode::CmpLT, L, NLines), LDone);
    Reg RI = B.callStatic(NextRand, {}, Type::I64);
    Reg ItIdx = B.rem(RI, NItems);
    Reg It = B.aload(Type::Ref, Items, ItIdx);
    Reg Pr = B.getField(It, Price, Type::F64);
    Reg RQ = B.callStatic(NextRand, {}, Type::I64);
    Reg C5 = B.constI(5);
    Reg Qty = B.add(One, B.rem(RQ, C5));
    Reg Amt = B.fmul(Pr, B.i2f(Qty));
    Reg Ol = B.newObject(OrderLine);
    B.callSpecial(OlCtor, {Ol, ItIdx, Qty, Amt}, Type::Void);
    B.astore(Type::Ref, Lines, L, Ol);
    // stock[item] -= qty; restock when low.
    Reg Sq = B.aload(Type::I64, Stock, ItIdx);
    Reg Sq2 = B.sub(Sq, Qty);
    Reg C10 = B.constI(10);
    B.cbz(B.cmp(Opcode::CmpLT, Sq2, C10), LNoRestock);
    Reg C100 = B.constI(100);
    B.move(Sq2, B.add(Sq2, C100));
    B.bind(LNoRestock);
    B.astore(Type::I64, Stock, ItIdx, Sq2);
    B.move(L, B.add(L, One));
    B.br(LHead);
    B.bind(LDone);
    B.putStatic(MLastOrder, O);
    B.callVirtual(LogLine, {T, OId}, Type::Void);
    B.callStatic(Log, {OId}, Type::Void);
    B.retVoid();
    P.setBody(NoProcess, B.finalize());
  }

  // class PaymentTx: private DisplayScreen (OLC) + balance update.
  ClassId PayTx = P.defineClass("PaymentTx");
  FieldId PayScreen =
      P.defineField(PayTx, "paymentScreen", Type::Ref, false, Access::Private);
  FieldId PayHist =
      P.defineField(PayTx, "history", Type::Ref, false, Access::Private);
  FieldId PayPos =
      P.defineField(PayTx, "histPos", Type::I64, false, Access::Private);
  MethodId PayCtor =
      P.defineMethod(PayTx, "<init>", Type::Void, {}, {.IsCtor = true});
  {
    FunctionBuilder B("PaymentTx.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg S = B.newObject(Screen);
    B.callSpecial(ScrCtor, {S}, Type::Void);
    B.putField(This, PayScreen, S);
    Reg C64 = B.constI(64);
    B.putField(This, PayHist, B.newArray(Type::F64, C64));
    Reg Zero = B.constI(0);
    B.putField(This, PayPos, Zero);
    B.retVoid();
    P.setBody(PayCtor, B.finalize());
  }
  MethodId PayProcess =
      P.defineMethod(PayTx, "process", Type::Void, {Type::Ref, Type::Ref});
  {
    FunctionBuilder B("PaymentTx.process", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg W = B.addArg(Type::Ref);
    Reg T = B.addArg(Type::Ref);
    Reg Custs = B.getField(W, WhCusts, Type::Ref);
    Reg NCust = B.alen(Custs);
    Reg RC = B.callStatic(NextRand, {}, Type::I64);
    Reg C = B.aload(Type::Ref, Custs, B.rem(RC, NCust));
    Reg RA = B.callStatic(NextRand, {}, Type::I64);
    Reg C500 = B.constI(500);
    Reg Amt = B.fmul(B.i2f(B.rem(RA, C500)), B.constF(0.01));
    B.callVirtual(Pay, {C, Amt}, Type::Void);
    // District bookkeeping: the paying customer's district order counter
    // advances (payment touches the district row, as in TPC-C).
    Reg Dists2 = B.getField(W, WhDists, Type::Ref);
    Reg NDist2 = B.alen(Dists2);
    Reg RD2 = B.callStatic(NextRand, {}, Type::I64);
    Reg D2 = B.aload(Type::Ref, Dists2, B.rem(RD2, NDist2));
    B.callVirtual(NextOrder, {D2}, Type::I64);
    // Payment history: running mean over a 64-entry ring buffer.
    Reg Hist = B.getField(This, PayHist, Type::Ref);
    Reg Pos = B.getField(This, PayPos, Type::I64);
    Reg Mask = B.constI(63);
    Reg Slot = B.andI(Pos, Mask);
    Reg Prev = B.aload(Type::F64, Hist, Slot);
    Reg Half = B.constF(0.5);
    B.astore(Type::F64, Hist, Slot,
             B.fadd(B.fmul(Prev, Half), B.fmul(Amt, Half)));
    Reg One2 = B.constI(1);
    B.putField(This, PayPos, B.add(Pos, One2));
    // Receipt line number cycles through the screen body rows.
    Reg C20 = B.constI(20);
    Reg RowSel = B.add(B.rem(Pos, C20), One2);
    Reg S = B.getField(This, PayScreen, Type::Ref);
    B.callVirtual(PutText, {S, RowSel, RA}, Type::Void);
    B.callVirtual(LogLine, {T, RA}, Type::Void);
    B.retVoid();
    P.setBody(PayProcess, B.finalize());
  }

  // class OrderStatusTx: read-only scan of the last order.
  ClassId OsTx = P.defineClass("OrderStatusTx");
  MethodId OsCtor =
      P.defineMethod(OsTx, "<init>", Type::Void, {}, {.IsCtor = true});
  {
    FunctionBuilder B("OrderStatusTx.<init>", Type::Void);
    B.addArg(Type::Ref);
    B.retVoid();
    P.setBody(OsCtor, B.finalize());
  }
  MethodId OsProcess =
      P.defineMethod(OsTx, "process", Type::Void, {Type::Ref, Type::Ref});
  {
    FunctionBuilder B("OrderStatusTx.process", Type::Void);
    B.addArg(Type::Ref);
    B.addArg(Type::Ref); // warehouse unused
    Reg T = B.addArg(Type::Ref);
    Reg O = B.getStatic(MLastOrder, Type::Ref);
    auto LNone = B.makeLabel();
    Reg HasOrder = B.instanceOf(O, Order);
    B.cbz(HasOrder, LNone);
    Reg Lines = B.getField(O, OrdLines, Type::Ref);
    Reg N = B.getField(O, OrdN, Type::I64);
    Reg I = B.newReg(Type::I64);
    Reg Sum = B.newReg(Type::F64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    Reg FZ = B.constF(0.0);
    B.move(I, Zero);
    B.move(Sum, FZ);
    auto LH = B.makeLabel();
    auto LE = B.makeLabel();
    B.bind(LH);
    B.cbz(B.cmp(Opcode::CmpLT, I, N), LE);
    Reg Ol = B.aload(Type::Ref, Lines, I);
    B.move(Sum, B.fadd(Sum, B.getField(Ol, OlAmt, Type::F64)));
    B.move(I, B.add(I, One));
    B.br(LH);
    B.bind(LE);
    Reg SumI = B.f2i(Sum);
    B.callVirtual(LogLine, {T, SumI}, Type::Void);
    B.bind(LNone);
    B.retVoid();
    P.setBody(OsProcess, B.finalize());
  }

  // class DeliveryTx: the paper's DeliveryTransaction with its private
  // deliveryScreen (Figure 7).
  ClassId DelTx = P.defineClass("DeliveryTx");
  FieldId DelScreen = P.defineField(DelTx, "deliveryScreen", Type::Ref, false,
                                    Access::Private);
  FieldId DelCount =
      P.defineField(DelTx, "delivered", Type::I64, false, Access::Private);
  MethodId DelCtor =
      P.defineMethod(DelTx, "<init>", Type::Void, {}, {.IsCtor = true});
  {
    FunctionBuilder B("DeliveryTx.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg S = B.newObject(Screen);
    B.callSpecial(ScrCtor, {S}, Type::Void);
    B.putField(This, DelScreen, S);
    B.retVoid();
    P.setBody(DelCtor, B.finalize());
  }
  MethodId DelProcess =
      P.defineMethod(DelTx, "process", Type::Void, {Type::Ref, Type::Ref});
  {
    FunctionBuilder B("DeliveryTx.process", Type::Void);
    Reg This = B.addArg(Type::Ref);
    B.addArg(Type::Ref); // warehouse (delivery note is screen-bound)
    Reg T = B.addArg(Type::Ref);
    Reg S = B.getField(This, DelScreen, Type::Ref);
    B.callVirtual(Clear, {S}, Type::Void);
    Reg R = B.callStatic(NextRand, {}, Type::I64);
    Reg Row = B.newReg(Type::I64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    Reg Six = B.constI(6);
    B.move(Row, Zero);
    auto LH = B.makeLabel();
    auto LE = B.makeLabel();
    B.bind(LH);
    B.cbz(B.cmp(Opcode::CmpLT, Row, Six), LE);
    B.callVirtual(PutText, {S, Row, B.add(R, Row)}, Type::Void);
    B.move(Row, B.add(Row, One));
    B.br(LH);
    B.bind(LE);
    // Sum the last order's line amounts onto the delivery note.
    Reg O2 = B.getStatic(MLastOrder, Type::Ref);
    Reg Amt = B.newReg(Type::F64);
    Reg FZ2 = B.constF(0.0);
    B.move(Amt, FZ2);
    auto LNoOrd = B.makeLabel();
    Reg HasOrd = B.instanceOf(O2, Order);
    B.cbz(HasOrd, LNoOrd);
    {
      Reg Lines2 = B.getField(O2, OrdLines, Type::Ref);
      Reg NL2 = B.getField(O2, OrdN, Type::I64);
      Reg J2 = B.newReg(Type::I64);
      B.move(J2, Zero);
      auto LJH = B.makeLabel();
      auto LJE = B.makeLabel();
      B.bind(LJH);
      B.cbz(B.cmp(Opcode::CmpLT, J2, NL2), LJE);
      Reg Ol2 = B.aload(Type::Ref, Lines2, J2);
      B.move(Amt, B.fadd(Amt, B.getField(Ol2, OlAmt, Type::F64)));
      B.move(J2, B.add(J2, One));
      B.br(LJH);
      B.bind(LJE);
    }
    B.bind(LNoOrd);
    Reg AmtI = B.f2i(Amt);
    B.callVirtual(LogLine, {T, AmtI}, Type::Void);
    // Delivered-order accounting and the delivery note footer.
    Reg Cnt = B.getField(This, DelCount, Type::I64);
    Reg Cnt2 = B.add(Cnt, One);
    B.putField(This, DelCount, Cnt2);
    Reg Footer = B.constI(23);
    B.callVirtual(PutText, {S, Footer, B.add(R, Cnt2)}, Type::Void);
    B.callVirtual(LogLine, {T, R}, Type::Void);
    B.retVoid();
    P.setBody(DelProcess, B.finalize());
  }

  // class StockLevelTx: scan the stock table.
  ClassId SlTx = P.defineClass("StockLevelTx");
  MethodId SlCtor =
      P.defineMethod(SlTx, "<init>", Type::Void, {}, {.IsCtor = true});
  {
    FunctionBuilder B("StockLevelTx.<init>", Type::Void);
    B.addArg(Type::Ref);
    B.retVoid();
    P.setBody(SlCtor, B.finalize());
  }
  MethodId SlProcess =
      P.defineMethod(SlTx, "process", Type::Void, {Type::Ref, Type::Ref});
  {
    FunctionBuilder B("StockLevelTx.process", Type::Void);
    B.addArg(Type::Ref);
    Reg W = B.addArg(Type::Ref);
    Reg T = B.addArg(Type::Ref);
    Reg Stock = B.getField(W, WhStock, Type::Ref);
    Reg N = B.alen(Stock);
    Reg I = B.newReg(Type::I64);
    Reg Low = B.newReg(Type::I64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    Reg C50 = B.constI(50);
    B.move(I, Zero);
    B.move(Low, Zero);
    auto LH = B.makeLabel();
    auto LE = B.makeLabel();
    auto LSkip = B.makeLabel();
    B.bind(LH);
    B.cbz(B.cmp(Opcode::CmpLT, I, N), LE);
    Reg Q = B.aload(Type::I64, Stock, I);
    B.cbz(B.cmp(Opcode::CmpLT, Q, C50), LSkip);
    B.move(Low, B.add(Low, One));
    B.bind(LSkip);
    B.move(I, B.add(I, One));
    B.br(LH);
    B.bind(LE);
    B.callVirtual(LogLine, {T, Low}, Type::Void);
    B.retVoid();
    P.setBody(SlProcess, B.finalize());
  }

  // class CustomerReportTx (2005 only in the mix; defined in both variants
  // so the class inventory difference comes from the mix, like the ported
  // benchmark): heavyweight, allocation-intensive, no mutable-state use.
  ClassId CrTx = P.defineClass("CustomerReportTx");
  MethodId CrCtor =
      P.defineMethod(CrTx, "<init>", Type::Void, {}, {.IsCtor = true});
  {
    FunctionBuilder B("CustomerReportTx.<init>", Type::Void);
    B.addArg(Type::Ref);
    B.retVoid();
    P.setBody(CrCtor, B.finalize());
  }
  MethodId CrProcess =
      P.defineMethod(CrTx, "process", Type::Void, {Type::Ref, Type::Ref});
  {
    FunctionBuilder B("CustomerReportTx.process", Type::Void);
    B.addArg(Type::Ref);
    Reg W = B.addArg(Type::Ref);
    Reg T = B.addArg(Type::Ref);
    Reg Custs = B.getField(W, WhCusts, Type::Ref);
    Reg N = B.alen(Custs);
    // Report buffer: one slot per customer plus history padding.
    Reg Pad = B.constI(4608);
    Reg Rep = B.newArray(Type::F64, B.add(N, Pad));
    Reg I = B.newReg(Type::I64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    B.move(I, Zero);
    auto LH = B.makeLabel();
    auto LE = B.makeLabel();
    B.bind(LH);
    B.cbz(B.cmp(Opcode::CmpLT, I, N), LE);
    Reg C = B.aload(Type::Ref, Custs, I);
    Reg Bal = B.getField(C, Balance, Type::F64);
    // Weighted running aggregate with history smoothing.
    Reg Prev = B.aload(Type::F64, Rep, I);
    Reg W1 = B.constF(0.875);
    Reg W2 = B.constF(0.125);
    B.astore(Type::F64, Rep, I,
             B.fadd(B.fmul(Prev, W1), B.fmul(Bal, W2)));
    B.move(I, B.add(I, One));
    B.br(LH);
    B.bind(LE);
    // Report summary: full pass over the report buffer (history included).
    Reg Total = B.alen(Rep);
    Reg J = B.newReg(Type::I64);
    Reg Agg = B.newReg(Type::F64);
    Reg FZ = B.constF(0.0);
    B.move(J, Zero);
    B.move(Agg, FZ);
    auto LS = B.makeLabel();
    auto LSE = B.makeLabel();
    B.bind(LS);
    B.cbz(B.cmp(Opcode::CmpLT, J, Total), LSE);
    B.move(Agg, B.fadd(Agg, B.aload(Type::F64, Rep, J)));
    B.move(J, B.add(J, One));
    B.br(LS);
    B.bind(LSE);
    Reg NI = B.f2i(Agg);
    B.callVirtual(LogLine, {T, NI}, Type::Void);
    B.retVoid();
    P.setBody(CrProcess, B.finalize());
  }

  // --- TxManager: setup and dispatch loop -----------------------------------
  FieldId MNo = P.defineField(Mgr, "txNewOrder", Type::Ref, true);
  FieldId MPay = P.defineField(Mgr, "txPayment", Type::Ref, true);
  FieldId MOs = P.defineField(Mgr, "txOrderStatus", Type::Ref, true);
  FieldId MDel = P.defineField(Mgr, "txDelivery", Type::Ref, true);
  FieldId MSl = P.defineField(Mgr, "txStockLevel", Type::Ref, true);
  FieldId MCr = P.defineField(Mgr, "txCustReport", Type::Ref, true);

  MethodId MInit = P.defineMethod(Mgr, "init", Type::Void,
                                  {Type::I64, Type::I64, Type::I64, Type::I64},
                                  {.IsStatic = true});
  {
    FunctionBuilder B("TxManager.init", Type::Void);
    Reg VariantArg = B.addArg(Type::I64);
    Reg NItems = B.addArg(Type::I64);
    Reg NDists = B.addArg(Type::I64);
    Reg NCusts = B.addArg(Type::I64);
    B.putStatic(MVariant, VariantArg);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    B.callStatic(LogSet, {Zero}, Type::Void);
    Reg W = B.newObject(Wh);
    B.callSpecial(WhCtor, {W, One, NItems, NDists, NCusts}, Type::Void);
    B.putStatic(MWh, W);
    // Populate items + stock.
    Reg Items = B.getField(W, WhItems, Type::Ref);
    Reg Stock = B.getField(W, WhStock, Type::Ref);
    Reg I = B.newReg(Type::I64);
    B.move(I, Zero);
    auto LI = B.makeLabel();
    auto LID = B.makeLabel();
    B.bind(LI);
    B.cbz(B.cmp(Opcode::CmpLT, I, NItems), LID);
    Reg R = B.callStatic(NextRand, {}, Type::I64);
    Reg C900 = B.constI(900);
    Reg Pr = B.fadd(B.fmul(B.i2f(B.rem(R, C900)), B.constF(0.01)),
                    B.constF(1.0));
    Reg It = B.newObject(Item);
    B.callSpecial(ItemCtor, {It, I, Pr}, Type::Void);
    B.astore(Type::Ref, Items, I, It);
    Reg C200 = B.constI(200);
    B.astore(Type::I64, Stock, I, C200);
    B.move(I, B.add(I, One));
    B.br(LI);
    B.bind(LID);
    // Districts.
    Reg Dists = B.getField(W, WhDists, Type::Ref);
    Reg J = B.newReg(Type::I64);
    B.move(J, Zero);
    auto LJ = B.makeLabel();
    auto LJD = B.makeLabel();
    B.bind(LJ);
    B.cbz(B.cmp(Opcode::CmpLT, J, NDists), LJD);
    Reg D = B.newObject(District);
    B.callSpecial(DistCtor, {D, J}, Type::Void);
    B.astore(Type::Ref, Dists, J, D);
    B.move(J, B.add(J, One));
    B.br(LJ);
    B.bind(LJD);
    // Customers.
    Reg Custs = B.getField(W, WhCusts, Type::Ref);
    Reg K = B.newReg(Type::I64);
    B.move(K, Zero);
    auto LK = B.makeLabel();
    auto LKD = B.makeLabel();
    B.bind(LK);
    B.cbz(B.cmp(Opcode::CmpLT, K, NCusts), LKD);
    Reg C = B.newObject(Cust);
    B.callSpecial(CustCtor, {C, K}, Type::Void);
    B.astore(Type::Ref, Custs, K, C);
    B.move(K, B.add(K, One));
    B.br(LK);
    B.bind(LKD);
    // Terminals: ten, modes skewed 7 terse / 2 normal / 1 verbose.
    Reg C10 = B.constI(10);
    Reg Terms = B.newArray(Type::Ref, C10);
    B.putStatic(MTerms, Terms);
    Reg M = B.newReg(Type::I64);
    B.move(M, Zero);
    auto LM = B.makeLabel();
    auto LMD = B.makeLabel();
    auto LMode1 = B.makeLabel();
    auto LMode2 = B.makeLabel();
    auto LMake = B.makeLabel();
    B.bind(LM);
    B.cbz(B.cmp(Opcode::CmpLT, M, C10), LMD);
    Reg ModeV = B.newReg(Type::I64);
    Reg C7 = B.constI(7);
    B.cbz(B.cmp(Opcode::CmpLT, M, C7), LMode1);
    B.move(ModeV, Zero);
    B.br(LMake);
    B.bind(LMode1);
    Reg C9 = B.constI(9);
    B.cbz(B.cmp(Opcode::CmpLT, M, C9), LMode2);
    B.move(ModeV, One);
    B.br(LMake);
    B.bind(LMode2);
    Reg Two = B.constI(2);
    B.move(ModeV, Two);
    B.br(LMake);
    B.bind(LMake);
    Reg T = B.newObject(Term);
    B.callSpecial(TermCtor, {T, ModeV}, Type::Void);
    B.astore(Type::Ref, Terms, M, T);
    B.move(M, B.add(M, One));
    B.br(LM);
    B.bind(LMD);
    // Transaction objects.
    Reg No = B.newObject(NewOrd);
    B.callSpecial(NoCtor, {No}, Type::Void);
    B.putStatic(MNo, No);
    Reg Pa = B.newObject(PayTx);
    B.callSpecial(PayCtor, {Pa}, Type::Void);
    B.putStatic(MPay, Pa);
    Reg Os = B.newObject(OsTx);
    B.callSpecial(OsCtor, {Os}, Type::Void);
    B.putStatic(MOs, Os);
    Reg De = B.newObject(DelTx);
    B.callSpecial(DelCtor, {De}, Type::Void);
    B.putStatic(MDel, De);
    Reg Sl = B.newObject(SlTx);
    B.callSpecial(SlCtor, {Sl}, Type::Void);
    B.putStatic(MSl, Sl);
    Reg Cr = B.newObject(CrTx);
    B.callSpecial(CrCtor, {Cr}, Type::Void);
    B.putStatic(MCr, Cr);
    B.retVoid();
    P.setBody(MInit, B.finalize());
  }

  // runOne(): pick a transaction per the variant's mix and run it.
  MethodId RunOne = P.defineMethod(Mgr, "runOne", Type::Void, {},
                                   {.IsStatic = true});
  {
    FunctionBuilder B("TxManager.runOne", Type::Void);
    Reg W = B.getStatic(MWh, Type::Ref);
    Reg Terms = B.getStatic(MTerms, Type::Ref);
    Reg RT = B.callStatic(NextRand, {}, Type::I64);
    Reg C10 = B.constI(10);
    Reg T = B.aload(Type::Ref, Terms, B.rem(RT, C10));
    Reg R = B.callStatic(NextRand, {}, Type::I64);
    Reg C100 = B.constI(100);
    Reg Pick = B.rem(R, C100);
    Reg Var = B.getStatic(MVariant, Type::I64);
    auto LPay = B.makeLabel();
    auto LOs = B.makeLabel();
    auto LDel = B.makeLabel();
    auto LSl = B.makeLabel();
    auto LCr = B.makeLabel();
    auto LDone = B.makeLabel();
    // Thresholds: 2000 mix 45/43/4/4/4; 2005 mix 40/35/4/4/4/13.
    Reg NoCut = B.newReg(Type::I64);
    Reg PayCut = B.newReg(Type::I64);
    auto L2005 = B.makeLabel();
    auto LCuts = B.makeLabel();
    B.cbnz(Var, L2005);
    Reg C45 = B.constI(45);
    B.move(NoCut, C45);
    Reg C88 = B.constI(88);
    B.move(PayCut, C88);
    B.br(LCuts);
    B.bind(L2005);
    Reg C40 = B.constI(40);
    B.move(NoCut, C40);
    Reg C75 = B.constI(75);
    B.move(PayCut, C75);
    B.br(LCuts);
    B.bind(LCuts);
    B.cbz(B.cmp(Opcode::CmpLT, Pick, NoCut), LPay);
    {
      Reg Tx = B.getStatic(MNo, Type::Ref);
      B.callVirtual(NoProcess, {Tx, W, T}, Type::Void);
      B.br(LDone);
    }
    B.bind(LPay);
    B.cbz(B.cmp(Opcode::CmpLT, Pick, PayCut), LOs);
    {
      Reg Tx = B.getStatic(MPay, Type::Ref);
      B.callVirtual(PayProcess, {Tx, W, T}, Type::Void);
      B.br(LDone);
    }
    B.bind(LOs);
    Reg OsCut = B.add(PayCut, B.constI(4));
    B.cbz(B.cmp(Opcode::CmpLT, Pick, OsCut), LDel);
    {
      Reg Tx = B.getStatic(MOs, Type::Ref);
      B.callVirtual(OsProcess, {Tx, W, T}, Type::Void);
      B.br(LDone);
    }
    B.bind(LDel);
    Reg DelCut = B.add(OsCut, B.constI(4));
    B.cbz(B.cmp(Opcode::CmpLT, Pick, DelCut), LSl);
    {
      Reg Tx = B.getStatic(MDel, Type::Ref);
      B.callVirtual(DelProcess, {Tx, W, T}, Type::Void);
      B.br(LDone);
    }
    B.bind(LSl);
    Reg SlCut = B.add(DelCut, B.constI(4));
    // 2000: StockLevel takes the rest; 2005: the rest goes to CustomerReport
    // beyond the StockLevel share.
    B.cbz(B.cmp(Opcode::CmpLT, Pick, SlCut), LCr);
    {
      Reg Tx = B.getStatic(MSl, Type::Ref);
      B.callVirtual(SlProcess, {Tx, W, T}, Type::Void);
      B.br(LDone);
    }
    B.bind(LCr);
    {
      auto LSl2 = B.makeLabel();
      B.cbnz(Var, LSl2);
      // 2000: no CustomerReport; everything else is StockLevel.
      Reg Tx0 = B.getStatic(MSl, Type::Ref);
      B.callVirtual(SlProcess, {Tx0, W, T}, Type::Void);
      B.br(LDone);
      B.bind(LSl2);
      Reg Tx = B.getStatic(MCr, Type::Ref);
      B.callVirtual(CrProcess, {Tx, W, T}, Type::Void);
      B.br(LDone);
    }
    B.bind(LDone);
    Reg Done = B.getStatic(MTxDone, Type::I64);
    Reg One = B.constI(1);
    B.putStatic(MTxDone, B.add(Done, One));
    B.retVoid();
    P.setBody(RunOne, B.finalize());
  }

  // runBatch(n): n transactions back to back.
  MethodId RunBatch = P.defineMethod(Mgr, "runBatch", Type::Void, {Type::I64},
                                     {.IsStatic = true});
  {
    FunctionBuilder B("TxManager.runBatch", Type::Void);
    Reg N = B.addArg(Type::I64);
    Reg I = B.newReg(Type::I64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    B.move(I, Zero);
    auto LH = B.makeLabel();
    auto LE = B.makeLabel();
    B.bind(LH);
    B.cbz(B.cmp(Opcode::CmpLT, I, N), LE);
    B.callStatic(RunOne, {}, Type::Void);
    B.move(I, B.add(I, One));
    B.br(LH);
    B.bind(LE);
    B.retVoid();
    P.setBody(RunBatch, B.finalize());
  }

  // checkSum(): fold customer balances and counters into one printed value.
  MethodId CheckSum = P.defineMethod(Mgr, "checkSum", Type::Void, {},
                                     {.IsStatic = true});
  {
    FunctionBuilder B("TxManager.checkSum", Type::Void);
    Reg W = B.getStatic(MWh, Type::Ref);
    Reg Custs = B.getField(W, WhCusts, Type::Ref);
    Reg N = B.alen(Custs);
    Reg I = B.newReg(Type::I64);
    Reg Sum = B.newReg(Type::F64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    Reg FZ = B.constF(0.0);
    B.move(I, Zero);
    B.move(Sum, FZ);
    auto LH = B.makeLabel();
    auto LE = B.makeLabel();
    B.bind(LH);
    B.cbz(B.cmp(Opcode::CmpLT, I, N), LE);
    Reg C = B.aload(Type::Ref, Custs, I);
    B.move(Sum, B.fadd(Sum, B.getField(C, Balance, Type::F64)));
    B.move(I, B.add(I, One));
    B.br(LH);
    B.bind(LE);
    B.printNum(Sum, Type::F64);
    Reg Done = B.getStatic(MTxDone, Type::I64);
    B.printNum(Done, Type::I64);
    Reg Lc = B.getStatic(LogCount, Type::I64);
    B.printNum(Lc, Type::I64);
    Reg Chk = B.getStatic(MCheck, Type::I64);
    B.printNum(Chk, Type::I64);
    B.retVoid();
    P.setBody(CheckSum, B.finalize());
  }
}

void JbbImpl::initVm(VirtualMachine &VM) {
  ProgramIds Ids(VM.program());
  VM.program().setStaticSlot(
      VM.program().field(Ids.field("TxManager", "seed")).Slot,
      valueI(0x5EC5EC5EC5ll));
  int64_t Var = Variant == JbbVariant::Jbb2005 ? 1 : 0;
  VM.call(Ids.method("TxManager", "init"),
          {valueI(Var), valueI(200), valueI(10), valueI(300)});
}

uint64_t JbbImpl::runTransactions(VirtualMachine &VM, uint64_t Count) {
  ProgramIds Ids(VM.program());
  MethodId RunBatch = Ids.method("TxManager", "runBatch");
  constexpr uint64_t Batch = 50;
  uint64_t Done = 0;
  while (Done < Count) {
    uint64_t N = std::min(Batch, Count - Done);
    VM.call(RunBatch, {valueI(static_cast<int64_t>(N))});
    Done += N;
  }
  return Done;
}

std::vector<JbbWindow> JbbImpl::runWarehouseWindows(VirtualMachine &VM,
                                                    int NumWindows,
                                                    uint64_t WindowCycles,
                                                    uint64_t WarmupCycles) {
  ProgramIds Ids(VM.program());
  MethodId RunBatch = Ids.method("TxManager", "runBatch");
  std::vector<JbbWindow> Out;
  // Warm-up (the paper's 30 s ramp before measurement).
  uint64_t WarmEnd = VM.totalCycles() + WarmupCycles;
  while (VM.totalCycles() < WarmEnd)
    VM.call(RunBatch, {valueI(20)});
  for (int Wd = 0; Wd < NumWindows; ++Wd) {
    JbbWindow Win;
    uint64_t Start = VM.totalCycles();
    uint64_t End = Start + WindowCycles;
    uint64_t Tx = 0;
    while (VM.totalCycles() < End) {
      VM.call(RunBatch, {valueI(20)});
      Tx += 20;
    }
    Win.Transactions = Tx;
    Win.Cycles = VM.totalCycles() - Start;
    Win.Throughput = static_cast<double>(Tx) /
                     (static_cast<double>(Win.Cycles) /
                      static_cast<double>(CyclesPerSecond));
    Out.push_back(Win);
  }
  return Out;
}

void JbbImpl::driveScaled(VirtualMachine &VM, double Scale) {
  initVm(VM);
  uint64_t Tx = static_cast<uint64_t>(16000 * Scale);
  if (Tx < 800)
    Tx = 800;
  runTransactions(VM, Tx);
  ProgramIds Ids(VM.program());
  VM.call(Ids.method("TxManager", "checkSum"), {});
}

} // namespace

std::unique_ptr<JbbWorkload> makeJbb(JbbVariant V) {
  return std::make_unique<JbbImpl>(V);
}

} // namespace dchm
