//===-- workloads/SimLogic.cpp - Metamorphic logic simulator ------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// A gate-level logic simulator in the style of Maurer's metamorphic
/// programming example [24]: each Gate's behavior is governed by its `kind`
/// state field (AND/OR/XOR/NAND), dispatched in the hot eval() method.
/// Mutation gives each kind a special TIB with eval() specialized to a
/// single boolean operation.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "ir/Builder.h"

namespace dchm {

namespace {

class SimLogic final : public Workload {
public:
  std::string name() const override { return "SimLogic"; }
  std::string description() const override {
    return "Simple logic simulator with state-kind gates";
  }

  void build(Program &P) override {
    // Event counter shared by all gates (declared on its own bookkeeping
    // class so Gate stays 'pure').
    ClassId Stats = P.defineClass("SimStats");
    FieldId EventsF = P.defineField(Stats, "events", Type::I64, true);

    // --- class Gate ----------------------------------------------------------
    ClassId Gate = P.defineClass("Gate");
    FieldId Kind =
        P.defineField(Gate, "kind", Type::I64, false, Access::Private);
    FieldId InA = P.defineField(Gate, "inA", Type::I64, false);
    FieldId InB = P.defineField(Gate, "inB", Type::I64, false);
    FieldId InC = P.defineField(Gate, "inC", Type::I64, false);
    FieldId Out = P.defineField(Gate, "out", Type::I64, false);
    MethodId GateCtor = P.defineMethod(
        Gate, "<init>", Type::Void,
        {Type::I64, Type::I64, Type::I64, Type::I64, Type::I64},
        {.IsCtor = true});
    {
      FunctionBuilder B("Gate.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg K = B.addArg(Type::I64);
      Reg A = B.addArg(Type::I64);
      Reg Bb = B.addArg(Type::I64);
      Reg Cc = B.addArg(Type::I64);
      Reg O = B.addArg(Type::I64);
      B.putField(This, Kind, K);
      B.putField(This, InA, A);
      B.putField(This, InB, Bb);
      B.putField(This, InC, Cc);
      B.putField(This, Out, O);
      B.retVoid();
      P.setBody(GateCtor, B.finalize());
    }

    // Gate.eval(nets): nets[out] = op(nets[inA], nets[inB], nets[inC]) where
    // op is selected by the kind state field (0 AND3, 1 OR3, 2 parity,
    // 3 majority). The body is deliberately large (like a real simulator's
    // gate kernel), past the inliner's size bound, so baseline and mutated
    // runs both dispatch through the TIB.
    MethodId Eval =
        P.defineMethod(Gate, "eval", Type::Void, {Type::Ref});
    {
      FunctionBuilder B("Gate.eval", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg Nets = B.addArg(Type::Ref);
      Reg K = B.getField(This, Kind, Type::I64);
      Reg A = B.aload(Type::I64, Nets, B.getField(This, InA, Type::I64));
      Reg Bv = B.aload(Type::I64, Nets, B.getField(This, InB, Type::I64));
      Reg Cv = B.aload(Type::I64, Nets, B.getField(This, InC, Type::I64));
      Reg Res = B.newReg(Type::I64);
      auto L1 = B.makeLabel();
      auto L2 = B.makeLabel();
      auto L3 = B.makeLabel();
      auto LStore = B.makeLabel();
      Reg C0 = B.constI(0);
      B.cbnz(B.cmp(Opcode::CmpNE, K, C0), L1);
      B.move(Res, B.andI(B.andI(A, Bv), Cv));
      B.br(LStore);
      B.bind(L1);
      Reg C1 = B.constI(1);
      B.cbnz(B.cmp(Opcode::CmpNE, K, C1), L2);
      B.move(Res, B.orI(B.orI(A, Bv), Cv));
      B.br(LStore);
      B.bind(L2);
      Reg C2 = B.constI(2);
      B.cbnz(B.cmp(Opcode::CmpNE, K, C2), L3);
      B.move(Res, B.xorI(B.xorI(A, Bv), Cv));
      B.br(LStore);
      B.bind(L3);
      // Majority of three 1-bit nets: (a&b) | (a&c) | (b&c).
      B.move(Res, B.orI(B.orI(B.andI(A, Bv), B.andI(A, Cv)),
                        B.andI(Bv, Cv)));
      B.br(LStore);
      B.bind(LStore);
      // Event accounting: every simulator tracks toggles per net.
      Reg OutIdx = B.getField(This, Out, Type::I64);
      Reg Prev = B.aload(Type::I64, Nets, OutIdx);
      Reg Toggled = B.xorI(Prev, Res);
      Reg Ev = B.getStatic(EventsF, Type::I64);
      B.putStatic(EventsF, B.add(Ev, Toggled));
      B.astore(Type::I64, Nets, OutIdx, Res);
      B.retVoid();
      P.setBody(Eval, B.finalize());
    }

    // --- class Circuit ---------------------------------------------------------
    ClassId Circuit = P.defineClass("Circuit");
    FieldId Gates =
        P.defineField(Circuit, "gates", Type::Ref, true, Access::Private);
    FieldId Nets =
        P.defineField(Circuit, "nets", Type::Ref, true, Access::Private);
    FieldId NumIn = P.defineField(Circuit, "numInputs", Type::I64, true);
    FieldId Seed = P.defineField(Circuit, "seed", Type::I64, true);

    // Circuit.nextRand(): LCG in IR, used for circuit topology and stimulus.
    MethodId NextRand = P.defineMethod(Circuit, "nextRand", Type::I64, {},
                                       {.IsStatic = true});
    {
      FunctionBuilder B("Circuit.nextRand", Type::I64);
      Reg S = B.getStatic(Seed, Type::I64);
      Reg Mul = B.constI(6364136223846793005ll);
      Reg Add = B.constI(1442695040888963407ll);
      Reg S2 = B.add(B.mul(S, Mul), Add);
      B.putStatic(Seed, S2);
      Reg Sh = B.constI(33);
      Reg Mask = B.constI(0x7FFFFFFF);
      B.ret(B.andI(B.shr(S2, Sh), Mask));
      P.setBody(NextRand, B.finalize());
    }

    // Circuit.init(numGates, numInputs): random DAG topology. Gate kinds are
    // skewed (AND-heavy) so the simulator has distinct hot states.
    MethodId Init = P.defineMethod(Circuit, "init", Type::Void,
                                   {Type::I64, Type::I64}, {.IsStatic = true});
    {
      FunctionBuilder B("Circuit.init", Type::Void);
      Reg NumGates = B.addArg(Type::I64);
      Reg NumInputs = B.addArg(Type::I64);
      B.putStatic(NumIn, NumInputs);
      Reg GatesArr = B.newArray(Type::Ref, NumGates);
      B.putStatic(Gates, GatesArr);
      Reg NetCount = B.add(NumInputs, NumGates);
      Reg NetsArr = B.newArray(Type::I64, NetCount);
      B.putStatic(Nets, NetsArr);
      Reg G = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      B.move(G, Zero);
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      auto LK1 = B.makeLabel();
      auto LK2 = B.makeLabel();
      auto LK3 = B.makeLabel();
      auto LKDone = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, G, NumGates), LDone);
      // Inputs come from earlier nets only (a DAG): net index in
      // [0, numInputs + g).
      Reg Avail = B.add(NumInputs, G);
      Reg RA = B.callStatic(NextRand, {}, Type::I64);
      Reg A = B.rem(RA, Avail);
      Reg RB = B.callStatic(NextRand, {}, Type::I64);
      Reg Bn = B.rem(RB, Avail);
      Reg RCc = B.callStatic(NextRand, {}, Type::I64);
      Reg Cn = B.rem(RCc, Avail);
      // Kind distribution: 0..9 -> 50% AND, 25% OR, 15% XOR, 10% NAND.
      Reg RK = B.callStatic(NextRand, {}, Type::I64);
      Reg C10 = B.constI(10);
      Reg Bucket = B.rem(RK, C10);
      Reg KindR = B.newReg(Type::I64);
      Reg C5 = B.constI(5);
      B.cbz(B.cmp(Opcode::CmpLT, Bucket, C5), LK1);
      B.move(KindR, Zero);
      B.br(LKDone);
      B.bind(LK1);
      Reg C8 = B.constI(8);
      B.cbz(B.cmp(Opcode::CmpLT, Bucket, C8), LK2);
      B.move(KindR, One);
      B.br(LKDone);
      B.bind(LK2);
      Reg C9 = B.constI(9);
      B.cbz(B.cmp(Opcode::CmpLT, Bucket, C9), LK3);
      Reg Two = B.constI(2);
      B.move(KindR, Two);
      B.br(LKDone);
      B.bind(LK3);
      Reg Three = B.constI(3);
      B.move(KindR, Three);
      B.br(LKDone);
      B.bind(LKDone);
      Reg OutNet = B.add(NumInputs, G);
      Reg GObj = B.newObject(Gate);
      B.callSpecial(GateCtor, {GObj, KindR, A, Bn, Cn, OutNet}, Type::Void);
      B.astore(Type::Ref, GatesArr, G, GObj);
      B.move(G, B.add(G, One));
      B.br(LHead);
      B.bind(LDone);
      B.retVoid();
      P.setBody(Init, B.finalize());
    }

    // Circuit.step(): new random stimulus on the input nets, then evaluate
    // every gate in topological order.
    MethodId Step =
        P.defineMethod(Circuit, "step", Type::Void, {}, {.IsStatic = true});
    {
      FunctionBuilder B("Circuit.step", Type::Void);
      Reg NetsArr = B.getStatic(Nets, Type::Ref);
      Reg NumInputs = B.getStatic(NumIn, Type::I64);
      Reg I = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      Reg Two = B.constI(2);
      B.move(I, Zero);
      auto LIn = B.makeLabel();
      auto LInDone = B.makeLabel();
      B.bind(LIn);
      B.cbz(B.cmp(Opcode::CmpLT, I, NumInputs), LInDone);
      Reg R = B.callStatic(NextRand, {}, Type::I64);
      B.astore(Type::I64, NetsArr, I, B.rem(R, Two));
      B.move(I, B.add(I, One));
      B.br(LIn);
      B.bind(LInDone);
      Reg GatesArr = B.getStatic(Gates, Type::Ref);
      Reg NumGates = B.alen(GatesArr);
      Reg G = B.newReg(Type::I64);
      B.move(G, Zero);
      auto LG = B.makeLabel();
      auto LGDone = B.makeLabel();
      B.bind(LG);
      B.cbz(B.cmp(Opcode::CmpLT, G, NumGates), LGDone);
      Reg GObj = B.aload(Type::Ref, GatesArr, G);
      B.callVirtual(Eval, {GObj, NetsArr}, Type::Void);
      B.move(G, B.add(G, One));
      B.br(LG);
      B.bind(LGDone);
      B.retVoid();
      P.setBody(Step, B.finalize());
    }

    // --- class SimMain -----------------------------------------------------
    ClassId Main = P.defineClass("SimMain");
    MethodId Run = P.defineMethod(Main, "run", Type::Void, {Type::I64},
                                  {.IsStatic = true});
    {
      FunctionBuilder B("SimMain.run", Type::Void);
      Reg Steps = B.addArg(Type::I64);
      Reg T = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      B.move(T, Zero);
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, T, Steps), LDone);
      B.callStatic(Step, {}, Type::Void);
      B.move(T, B.add(T, One));
      B.br(LHead);
      B.bind(LDone);
      B.retVoid();
      P.setBody(Run, B.finalize());
    }
    MethodId CheckSum = P.defineMethod(Main, "checkSum", Type::Void, {},
                                       {.IsStatic = true});
    {
      FunctionBuilder B("SimMain.checkSum", Type::Void);
      Reg NetsArr = B.getStatic(Nets, Type::Ref);
      Reg Len = B.alen(NetsArr);
      Reg I = B.newReg(Type::I64);
      Reg Sum = B.newReg(Type::I64);
      Reg Zero = B.constI(0);
      Reg One = B.constI(1);
      B.move(I, Zero);
      B.move(Sum, Zero);
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, I, Len), LDone);
      Reg V = B.aload(Type::I64, NetsArr, I);
      Reg Mul = B.constI(31);
      B.move(Sum, B.add(B.mul(Sum, Mul), V));
      B.move(I, B.add(I, One));
      B.br(LHead);
      B.bind(LDone);
      B.printNum(Sum, Type::I64);
      Reg Ev = B.getStatic(EventsF, Type::I64);
      B.printNum(Ev, Type::I64);
      B.retVoid();
      P.setBody(CheckSum, B.finalize());
    }
  }

  void driveScaled(VirtualMachine &VM, double Scale) override {
    ProgramIds Ids(VM.program());
    // Seed the LCG deterministically.
    VM.program().setStaticSlot(
        VM.program().field(Ids.field("Circuit", "seed")).Slot,
        valueI(0x1234567));
    VM.call(Ids.method("Circuit", "init"), {valueI(96), valueI(16)});
    long Batches = static_cast<long>(220 * Scale);
    if (Batches < 8)
      Batches = 8;
    MethodId Run = Ids.method("SimMain", "run");
    for (long I = 0; I < Batches; ++I)
      VM.call(Run, {valueI(24)});
    VM.call(Ids.method("SimMain", "checkSum"), {});
  }
};

} // namespace

std::unique_ptr<Workload> makeSimLogic() { return std::make_unique<SimLogic>(); }

} // namespace dchm
