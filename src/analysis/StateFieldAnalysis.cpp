//===-- analysis/StateFieldAnalysis.cpp - EQ 1 field scoring -----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/StateFieldAnalysis.h"

#include "ir/CFG.h"

#include <algorithm>
#include <map>

namespace dchm {

namespace {

/// Per-field accumulators for EQ 1.
struct FieldScore {
  double BranchUses = 0.0;  ///< sum of Li * Hi
  double Assignments = 0.0; ///< sum of lj * hj
  /// Assignment-relaxation tracking: true while all assignments seen store
  /// one identical constant (paper: such fields keep their score).
  bool AllAssignSameConst = true;
  bool HaveConst = false;
  int64_t ConstBits = 0;
};

/// Registers transitively derived from a field load, used to connect loads
/// to the branch conditions they feed. One forward pass is enough for
/// builder-produced code (compare chains are emitted after the load).
void taintClosure(const IRFunction &F, size_t LoadIdx,
                  std::vector<bool> &Tainted) {
  Tainted.assign(F.RegTypes.size(), false);
  Tainted[F.Insts[LoadIdx].Dst] = true;
  for (size_t I = LoadIdx + 1; I < F.Insts.size(); ++I) {
    const Instruction &Inst = F.Insts[I];
    if (!Inst.hasDst())
      continue;
    bool UsesTainted = (Inst.A != NoReg && Tainted[Inst.A]) ||
                       (Inst.B != NoReg && Tainted[Inst.B]) ||
                       (Inst.C != NoReg && Tainted[Inst.C]);
    if (UsesTainted)
      Tainted[Inst.Dst] = true;
    else if (Tainted[Inst.Dst] && Inst.Op != Opcode::Move)
      Tainted[Inst.Dst] = false; // redefined from untainted sources
  }
}

/// The constant stored by an assignment, when the stored register has a
/// unique Const definition. Returns false otherwise.
bool storedConstant(const IRFunction &F, Reg ValueReg, int64_t &Bits) {
  int Defs = 0;
  size_t DefIdx = 0;
  for (size_t I = 0; I < F.Insts.size(); ++I) {
    if (F.Insts[I].hasDst() && F.Insts[I].Dst == ValueReg) {
      ++Defs;
      DefIdx = I;
    }
  }
  if (Defs != 1)
    return false;
  const Instruction &Def = F.Insts[DefIdx];
  if (Def.Op == Opcode::ConstI) {
    Bits = Def.Imm;
    return true;
  }
  if (Def.Op == Opcode::ConstF) {
    Value V = valueF(Def.FImm);
    Bits = V.I;
    return true;
  }
  return false;
}

} // namespace

std::vector<ClassStateFields>
analyzeStateFields(const Program &P, const HotMethodProfile &Prof,
                   const StateFieldConfig &Cfg) {
  // Score accumulation is global per field; attribution to classes happens
  // afterwards (a field declared by a parent can be the state field of a
  // hot derived class, like grade on SalaryEmployee).
  std::map<FieldId, FieldScore> Scores;

  for (size_t MIdx = 0; MIdx < P.numMethods(); ++MIdx) {
    const MethodInfo &M = P.method(static_cast<MethodId>(MIdx));
    if (!M.HasBody)
      continue;
    double H = Prof.hotness(M.Id);
    const IRFunction &F = M.Bytecode;
    CFG G(F);
    std::vector<bool> Tainted;

    for (size_t I = 0; I < F.Insts.size(); ++I) {
      const Instruction &Inst = F.Insts[I];
      if (Inst.Op == Opcode::GetField || Inst.Op == Opcode::GetStatic) {
        // A use only matters in a hot function (assumption 2).
        if (H < Cfg.HotMethodThreshold)
          continue;
        FieldId Fld = static_cast<FieldId>(Inst.Imm);
        if (P.field(Fld).Ty == Type::Ref)
          continue; // states are primitive values
        taintClosure(F, I, Tainted);
        for (size_t J = I + 1; J < F.Insts.size(); ++J) {
          const Instruction &Br = F.Insts[J];
          if ((Br.Op == Opcode::Cbnz || Br.Op == Opcode::Cbz) &&
              Tainted[Br.A]) {
            double Li = 1.0 + G.loopDepthOfInst(static_cast<uint32_t>(J));
            Scores[Fld].BranchUses += Li * H;
          }
        }
      } else if (Inst.Op == Opcode::PutField || Inst.Op == Opcode::PutStatic) {
        FieldId Fld = static_cast<FieldId>(Inst.Imm);
        if (P.field(Fld).Ty == Type::Ref)
          continue;
        FieldScore &S = Scores[Fld];
        double Lj = 1.0 + G.loopDepthOfInst(static_cast<uint32_t>(I));
        S.Assignments += Lj * H;
        Reg ValueReg = Inst.Op == Opcode::PutField ? Inst.B : Inst.A;
        int64_t Bits;
        if (storedConstant(F, ValueReg, Bits)) {
          if (!S.HaveConst) {
            S.HaveConst = true;
            S.ConstBits = Bits;
          } else if (S.ConstBits != Bits) {
            S.AllAssignSameConst = false;
          }
        } else {
          S.AllAssignSameConst = false;
        }
      }
    }
  }

  // Attribute scored fields to hot classes: a class qualifies when it
  // declares a hot method; its candidate fields are the scored fields it
  // declares or inherits.
  std::vector<ClassStateFields> Out;
  for (size_t CIdx = 0; CIdx < P.numClasses(); ++CIdx) {
    const ClassInfo &C = P.cls(static_cast<ClassId>(CIdx));
    if (C.IsInterface)
      continue;
    bool HasHotMethod = false;
    for (MethodId MId : C.Methods)
      if (Prof.hotness(MId) >= Cfg.HotMethodThreshold)
        HasHotMethod = true;
    if (!HasHotMethod)
      continue;

    ClassStateFields CSF;
    CSF.Cls = C.Id;
    for (auto &[Fld, S] : Scores) {
      const FieldInfo &FI = P.field(Fld);
      bool DeclaredOrInherited =
          std::find(C.Ancestors.begin(), C.Ancestors.end(), FI.Owner) !=
          C.Ancestors.end();
      if (!DeclaredOrInherited)
        continue;
      // EQ 1, with the relaxation: same-constant assignments in hot
      // functions do not count against the field.
      double Penalty = S.AllAssignSameConst ? 0.0 : Cfg.R * S.Assignments;
      double V = S.BranchUses - Penalty;
      if (V >= Cfg.FieldScoreThreshold)
        CSF.Candidates.push_back({Fld, V});
    }
    if (CSF.Candidates.empty())
      continue;
    std::sort(CSF.Candidates.begin(), CSF.Candidates.end(),
              [](const StateFieldCandidate &A, const StateFieldCandidate &B) {
                return A.Score > B.Score;
              });
    Out.push_back(std::move(CSF));
  }
  return Out;
}

} // namespace dchm
