//===-- analysis/OlcAnalysis.cpp - Object lifetime constants -----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/OlcAnalysis.h"

#include <algorithm>
#include <map>

namespace dchm {

namespace {

/// Unique defining instruction of R in F, or SIZE_MAX.
size_t uniqueDefOf(const IRFunction &F, Reg R) {
  size_t Def = SIZE_MAX;
  for (size_t I = 0; I < F.Insts.size(); ++I) {
    if (F.Insts[I].hasDst() && F.Insts[I].Dst == R) {
      if (Def != SIZE_MAX)
        return SIZE_MAX;
      Def = I;
    }
  }
  return Def;
}

/// Constant stored by value register R in F (unique Const def), as bits.
bool constStored(const IRFunction &F, Reg R, Value &Out, Type &Ty) {
  size_t Def = uniqueDefOf(F, R);
  if (Def == SIZE_MAX)
    return false;
  const Instruction &D = F.Insts[Def];
  if (D.Op == Opcode::ConstI) {
    Out = valueI(D.Imm);
    Ty = Type::I64;
    return true;
  }
  if (D.Op == Opcode::ConstF) {
    Out = valueF(D.FImm);
    Ty = Type::F64;
    return true;
  }
  return false;
}

/// <field, constructor> -> constant value (step 1 tuples).
using CtorTuples = std::map<std::pair<FieldId, MethodId>, Value>;

/// True if field F is assigned anywhere outside constructors.
bool assignedOutsideCtors(const Program &P, FieldId F) {
  for (size_t MIdx = 0; MIdx < P.numMethods(); ++MIdx) {
    const MethodInfo &M = P.method(static_cast<MethodId>(MIdx));
    if (!M.HasBody || M.Flags.IsCtor)
      continue;
    for (const Instruction &I : M.Bytecode.Insts)
      if (I.Op == Opcode::PutField && static_cast<FieldId>(I.Imm) == F)
        return true;
  }
  return false;
}

/// Registers holding (copies of) the value loaded by instruction LoadIdx.
std::vector<bool> refTaint(const IRFunction &F, size_t LoadIdx) {
  std::vector<bool> T(F.RegTypes.size(), false);
  T[F.Insts[LoadIdx].Dst] = true;
  for (size_t I = LoadIdx + 1; I < F.Insts.size(); ++I) {
    const Instruction &Inst = F.Insts[I];
    if (!Inst.hasDst())
      continue;
    if (Inst.Op == Opcode::Move && Inst.A != NoReg && T[Inst.A])
      T[Inst.Dst] = true;
    else if (T[Inst.Dst])
      T[Inst.Dst] = false; // redefined
  }
  return T;
}

/// Escape check for one load of the reference field: the loaded value may
/// only be used as a call receiver, in field loads off it, or in type
/// tests. Conservative over Moves via refTaint.
bool loadEscapes(const IRFunction &F, size_t LoadIdx) {
  std::vector<bool> T = refTaint(F, LoadIdx);
  for (size_t I = LoadIdx + 1; I < F.Insts.size(); ++I) {
    const Instruction &Inst = F.Insts[I];
    auto Tainted = [&](Reg R) { return R != NoReg && R < T.size() && T[R]; };
    switch (Inst.Op) {
    case Opcode::PutField:
    case Opcode::PutStatic:
      // Storing the reference into another field escapes. (PutField's B is
      // the stored value; its A — the base object — is a receiver-like use.)
      if (Inst.Op == Opcode::PutField ? Tainted(Inst.B) : Tainted(Inst.A))
        return true;
      break;
    case Opcode::AStore:
      if (Tainted(Inst.C))
        return true;
      break;
    case Opcode::Ret:
      if (Tainted(Inst.A))
        return true;
      break;
    case Opcode::CallStatic:
      for (Reg R : Inst.Args)
        if (Tainted(R))
          return true;
      break;
    case Opcode::CallVirtual:
    case Opcode::CallSpecial:
    case Opcode::CallInterface:
      // Receiver position (Args[0]) is the intended use; any other argument
      // position escapes.
      for (size_t A = 1; A < Inst.Args.size(); ++A)
        if (Tainted(Inst.Args[A]))
          return true;
      break;
    default:
      break;
    }
  }
  return false;
}

} // namespace

OlcDatabase analyzeObjectLifetimeConstants(const Program &P,
                                           const MutationPlan &Plan) {
  OlcDatabase Db;

  // --- Step 1: ctor-constant tuples for instance fields of mutable classes.
  CtorTuples Tuples;
  for (const MutableClassPlan &CP : Plan.Classes) {
    const ClassInfo &C = P.cls(CP.Cls);
    for (MethodId MId : C.Methods) {
      const MethodInfo &M = P.method(MId);
      if (!M.Flags.IsCtor || !M.HasBody)
        continue;
      // Count assignments per field within this ctor; accept single
      // constant stores to the receiver.
      std::map<FieldId, unsigned> StoreCount;
      for (const Instruction &I : M.Bytecode.Insts)
        if (I.Op == Opcode::PutField)
          StoreCount[static_cast<FieldId>(I.Imm)]++;
      for (const Instruction &I : M.Bytecode.Insts) {
        if (I.Op != Opcode::PutField || I.A != 0)
          continue;
        FieldId F = static_cast<FieldId>(I.Imm);
        const FieldInfo &FI = P.field(F);
        if (FI.IsStatic || FI.Ty == Type::Ref)
          continue;
        if (StoreCount[F] != 1)
          continue;
        Value V;
        Type Ty;
        if (!constStored(M.Bytecode, I.B, V, Ty))
          continue;
        if (assignedOutsideCtors(P, F))
          continue;
        Tuples[{F, MId}] = V;
      }
    }
  }
  if (Tuples.empty())
    return Db;

  // --- Step 2: private exact-type reference fields referring to mutable
  // classes.
  for (size_t FIdx = 0; FIdx < P.numFields(); ++FIdx) {
    const FieldInfo &RF = P.field(static_cast<FieldId>(FIdx));
    if (RF.Ty != Type::Ref || RF.IsStatic || RF.Acc != Access::Private)
      continue;

    ClassId TargetCls = NoClassId;
    MethodId TargetCtor = NoMethodId;
    bool Valid = true;
    bool AnyAssign = false;

    for (size_t MIdx = 0; MIdx < P.numMethods() && Valid; ++MIdx) {
      const MethodInfo &M = P.method(static_cast<MethodId>(MIdx));
      if (!M.HasBody)
        continue;
      const IRFunction &F = M.Bytecode;
      for (size_t I = 0; I < F.Insts.size() && Valid; ++I) {
        const Instruction &Inst = F.Insts[I];
        if (Inst.Op != Opcode::PutField ||
            static_cast<FieldId>(Inst.Imm) != RF.Id)
          continue;
        AnyAssign = true;
        // "Always assigned by new using the same constructor."
        size_t Def = uniqueDefOf(F, Inst.B);
        if (Def == SIZE_MAX || F.Insts[Def].Op != Opcode::New) {
          Valid = false;
          break;
        }
        ClassId NewCls = static_cast<ClassId>(F.Insts[Def].Imm);
        // Find the single constructor call on the freshly built object.
        MethodId Ctor = NoMethodId;
        unsigned CtorCalls = 0;
        for (const Instruction &CI : F.Insts) {
          if (CI.Op != Opcode::CallSpecial || CI.Args.empty() ||
              CI.Args[0] != Inst.B)
            continue;
          const MethodInfo &Callee = P.method(static_cast<MethodId>(CI.Imm));
          if (Callee.Flags.IsCtor && Callee.Owner == NewCls) {
            Ctor = Callee.Id;
            CtorCalls++;
          }
        }
        if (CtorCalls != 1) {
          Valid = false;
          break;
        }
        if (TargetCls == NoClassId) {
          TargetCls = NewCls;
          TargetCtor = Ctor;
        } else if (TargetCls != NewCls || TargetCtor != Ctor) {
          Valid = false;
        }
      }
    }
    if (!Valid || !AnyAssign || TargetCls == NoClassId)
      continue;
    // Paper scope: the target must be a mutable class.
    if (!Plan.planFor(TargetCls))
      continue;

    // Escape-like analysis over every load of the field.
    bool Escapes = false;
    for (size_t MIdx = 0; MIdx < P.numMethods() && !Escapes; ++MIdx) {
      const MethodInfo &M = P.method(static_cast<MethodId>(MIdx));
      if (!M.HasBody)
        continue;
      const IRFunction &F = M.Bytecode;
      for (size_t I = 0; I < F.Insts.size() && !Escapes; ++I)
        if (F.Insts[I].Op == Opcode::GetField &&
            static_cast<FieldId>(F.Insts[I].Imm) == RF.Id)
          Escapes = loadEscapes(F, I);
    }
    if (Escapes)
      continue;

    OlcEntry E;
    E.RefField = RF.Id;
    E.TargetClass = TargetCls;
    E.Ctor = TargetCtor;
    for (auto &[Key, V] : Tuples)
      if (Key.second == TargetCtor)
        E.Constants.push_back({Key.first, V});
    if (!E.Constants.empty())
      Db.Entries.push_back(std::move(E));
  }
  return Db;
}

} // namespace dchm
