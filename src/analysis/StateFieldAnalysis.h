//===-- analysis/StateFieldAnalysis.h - EQ 1 field scoring ----*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static analysis that derives candidate *state fields* for hot classes
/// (paper section 3.1). A field's importance is scored by equation 1:
///
///     V = sum_i (Li * Hi)  -  R * sum_j (lj * hj)
///
/// where the first sum ranges over the field's uses in branch conditions
/// (Li = loop nesting level of the branch, Hi = hotness of the enclosing
/// function) and the second over its assignments (lj, hj likewise; R is a
/// tunable weight). Assignments that always store the same constant in a
/// hot function are exempt from the penalty (the paper's relaxation).
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_ANALYSIS_STATEFIELDANALYSIS_H
#define DCHM_ANALYSIS_STATEFIELDANALYSIS_H

#include "analysis/HotMethodProfile.h"
#include "runtime/Program.h"

#include <vector>

namespace dchm {

/// Tunables of the EQ 1 scoring.
struct StateFieldConfig {
  double R = 2.0;                  ///< assignment penalty weight
  double HotMethodThreshold = 0.01; ///< hotness for a method to count as hot
  double FieldScoreThreshold = 0.005; ///< minimum V to accept a field
};

/// A scored candidate state field.
struct StateFieldCandidate {
  FieldId Field = NoFieldId;
  double Score = 0.0;
};

/// Candidate state fields for one hot class.
struct ClassStateFields {
  ClassId Cls = NoClassId;
  std::vector<StateFieldCandidate> Candidates;
};

/// Runs EQ 1 over every class that declares at least one hot method and
/// returns, per such class, the primitive fields (declared by the class or
/// its parents, instance or static) whose score clears the threshold,
/// highest score first.
std::vector<ClassStateFields>
analyzeStateFields(const Program &P, const HotMethodProfile &Prof,
                   const StateFieldConfig &Cfg);

} // namespace dchm

#endif // DCHM_ANALYSIS_STATEFIELDANALYSIS_H
