//===-- analysis/OlcAnalysis.h - Object lifetime constants ----*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The object-lifetime-constant analysis of paper section 4 (Figure 8):
///
///  Step 1 — field assignment analysis: for every mutable class, collect
///  <field, constructor, value> tuples for instance fields assigned exactly
///  one constant in a constructor and never assigned outside constructors
///  anywhere in the program (a global scan, stronger than the paper's
///  accessibility argument).
///
///  Step 2 — for every private instance reference field in other classes:
///  prove that every assignment stores a fresh `new C(...)` built with one
///  and the same constructor of a mutable class C, and that the field never
///  escapes its declaring class (its loaded value is used only as a call
///  receiver or in type tests: never stored, never passed as a non-receiver
///  argument, never returned). When both proofs succeed, the step-1 tuples
///  of that constructor are object lifetime constants for the field.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_ANALYSIS_OLCANALYSIS_H
#define DCHM_ANALYSIS_OLCANALYSIS_H

#include "compiler/Olc.h"
#include "mutation/MutationPlan.h"
#include "runtime/Program.h"

namespace dchm {

/// Runs the OLC analysis over the program, scoped (as in the paper) to
/// reference fields whose target is a mutable class of the plan.
OlcDatabase analyzeObjectLifetimeConstants(const Program &P,
                                           const MutationPlan &Plan);

} // namespace dchm

#endif // DCHM_ANALYSIS_OLCANALYSIS_H
