//===-- analysis/ValueProfiler.h - Hot-state mining -----------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second offline profiling step of Figure 3: "the Jikes RVM is
/// augmented to generate the possible values for each field and the
/// distribution of the values of a field over time". The ValueProfiler
/// marks the candidate state fields on its Program instance so the
/// interpreter reports their stores, samples the *joint* value tuple of a
/// class's candidate fields at every store and constructor exit, and mines
/// the tuples whose sample share clears a threshold — the hot states.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_ANALYSIS_VALUEPROFILER_H
#define DCHM_ANALYSIS_VALUEPROFILER_H

#include "analysis/StateFieldAnalysis.h"
#include "core/VM.h"
#include "mutation/MutationPlan.h"

#include <map>
#include <vector>

namespace dchm {

/// Samples state-field value tuples during a profiling run.
class ValueProfiler : public StateObserver {
public:
  /// Takes the candidate fields from the EQ 1 analysis; at most
  /// MaxFieldsPerClass (highest score first) are profiled per class.
  ValueProfiler(Program &P, const std::vector<ClassStateFields> &Candidates,
                size_t MaxFieldsPerClass = 3);

  /// Marks the candidate fields IsStateField on the Program so the
  /// interpreter fires store events. Call before driving the VM.
  void prepare();

  // --- StateObserver --------------------------------------------------------
  void observeInstanceStore(Object *O, FieldInfo &F) override;
  void observeStaticStore(FieldInfo &F) override;
  void observeConstructorExit(Object *O, MethodInfo &Ctor) override;

  /// One mined hot state: the joint field values and their sample share.
  struct MinedState {
    std::vector<Value> InstanceVals;
    std::vector<Value> StaticVals;
    double Weight = 0.0;
  };

  /// Mined result for one class.
  struct ClassStates {
    ClassId Cls = NoClassId;
    std::vector<FieldId> InstanceFields;
    std::vector<FieldId> StaticFields;
    std::vector<MinedState> Hot;
    uint64_t Samples = 0;
  };

  /// Heap census: samples every live instance of a candidate class. The
  /// online pipeline uses this to see objects whose state was set before
  /// the profiling window opened (store sampling alone misses them).
  void censusHeap(const Heap &H);

  /// Returns, per class, the value tuples covering at least MinFraction of
  /// the class's samples (at most MaxStates, heaviest first).
  std::vector<ClassStates> mine(double MinFraction, size_t MaxStates) const;

private:
  struct PerClass {
    ClassId Cls = NoClassId;
    std::vector<FieldId> InstanceFields; ///< score order
    std::vector<FieldId> StaticFields;
    std::map<std::vector<int64_t>, uint64_t> Histogram;
    uint64_t Samples = 0;
  };

  PerClass *classEntry(ClassId C);
  void sampleObject(Object *O, PerClass &PC);
  void sampleStaticOnly(PerClass &PC);

  Program &P;
  std::vector<PerClass> Classes;
};

} // namespace dchm

#endif // DCHM_ANALYSIS_VALUEPROFILER_H
