//===-- analysis/OfflinePipeline.h - The Figure 3 pipeline ----*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glues the offline steps of Figure 3 into one pipeline:
///
///   identify a list of hot methods        (profiling run #1)
///   -> derive state fields for hot classes (EQ 1 static analysis)
///   -> find hot states for hot classes     (value-profiling run #2)
///   -> hot state information               (the MutationPlan)
///
/// The pipeline builds fresh Program instances through a ProgramSource so
/// profiling never contaminates the measured run; entity ids are stable
/// because the source builds the identical program each time.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_ANALYSIS_OFFLINEPIPELINE_H
#define DCHM_ANALYSIS_OFFLINEPIPELINE_H

#include "analysis/HotMethodProfile.h"
#include "analysis/StateFieldAnalysis.h"
#include "analysis/ValueProfiler.h"
#include "core/VM.h"
#include "mutation/MutationPlan.h"

#include <memory>

namespace dchm {

/// Builds identical Program instances and drives profiling runs on them.
/// Implemented by every workload.
class ProgramSource {
public:
  virtual ~ProgramSource() = default;
  /// Builds a fresh, linked Program. Must be deterministic: repeated calls
  /// produce identical entity ids.
  virtual std::unique_ptr<Program> buildProgram() = 0;
  /// Drives a profiling-scale run (a fraction of the full workload).
  virtual void driveProfile(VirtualMachine &VM) = 0;
};

/// Pipeline tunables.
struct OfflineConfig {
  StateFieldConfig StateFields;
  size_t MaxFieldsPerClass = 3;
  double HotStateMinFraction = 0.10;
  size_t MaxHotStates = 8;
  /// Minimum hotness for a method to become a *mutable method*.
  double MutableMethodHotness = 0.002;
};

/// Pipeline artifacts (the plan plus the intermediate results, for tools
/// and tests).
struct OfflineResult {
  MutationPlan Plan;
  HotMethodProfile Profile;
  std::vector<ClassStateFields> Candidates;
};

/// Runs the full offline pipeline.
OfflineResult runOfflinePipeline(ProgramSource &Source,
                                 const OfflineConfig &Cfg);

/// Final assembly step shared by the offline pipeline and the online
/// controller: turns mined hot states plus the hot-method profile into a
/// MutationPlan (hot state tuples + the mutable methods that read them).
MutationPlan assembleMutationPlan(
    const Program &P, const HotMethodProfile &Profile,
    const std::vector<ValueProfiler::ClassStates> &Mined,
    const OfflineConfig &Cfg);

} // namespace dchm

#endif // DCHM_ANALYSIS_OFFLINEPIPELINE_H
