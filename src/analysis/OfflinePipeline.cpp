//===-- analysis/OfflinePipeline.cpp - The Figure 3 pipeline ------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/OfflinePipeline.h"

#include "support/Debug.h"

#include <algorithm>

namespace dchm {

OfflineResult runOfflinePipeline(ProgramSource &Source,
                                 const OfflineConfig &Cfg) {
  OfflineResult R;

  // --- Run 1: hot methods (the VTune stand-in). ---------------------------
  std::unique_ptr<Program> P1 = Source.buildProgram();
  {
    VMOptions Opts;
    Opts.EnableMutation = false;
    VirtualMachine VM(*P1, Opts);
    VM.interp().setProfiling(true);
    Source.driveProfile(VM);
    R.Profile = HotMethodProfile::fromInterpreter(VM.interp(), *P1);
  }

  // --- Static analysis: EQ 1 state-field scoring. --------------------------
  R.Candidates = analyzeStateFields(*P1, R.Profile, Cfg.StateFields);
  if (R.Candidates.empty())
    return R;

  // --- Run 2: joint value profiling of the candidate fields. ---------------
  std::unique_ptr<Program> P2 = Source.buildProgram();
  DCHM_CHECK(P2->numMethods() == P1->numMethods() &&
                 P2->numFields() == P1->numFields(),
             "ProgramSource is not deterministic");
  ValueProfiler VP(*P2, R.Candidates, Cfg.MaxFieldsPerClass);
  VP.prepare();
  {
    VMOptions Opts;
    Opts.EnableMutation = false;
    VirtualMachine VM(*P2, Opts);
    VM.setStateObserver(&VP);
    Source.driveProfile(VM);
  }
  auto Mined = VP.mine(Cfg.HotStateMinFraction, Cfg.MaxHotStates);
  R.Plan = assembleMutationPlan(*P1, R.Profile, Mined, Cfg);
  return R;
}

MutationPlan assembleMutationPlan(
    const Program &P, const HotMethodProfile &Profile,
    const std::vector<ValueProfiler::ClassStates> &Mined,
    const OfflineConfig &Cfg) {
  MutationPlan Plan;
  for (const ValueProfiler::ClassStates &CS : Mined) {
    MutableClassPlan CP;
    CP.Cls = CS.Cls;
    CP.InstanceStateFields = CS.InstanceFields;
    CP.StaticStateFields = CS.StaticFields;
    for (const ValueProfiler::MinedState &MS : CS.Hot) {
      HotState HS;
      HS.InstanceVals = MS.InstanceVals;
      HS.StaticVals = MS.StaticVals;
      HS.Weight = MS.Weight;
      CP.HotStates.push_back(std::move(HS));
    }

    // Mutable methods: hot methods *declared by* the class that read at
    // least one of its state fields.
    const ClassInfo &C = P.cls(CS.Cls);
    for (MethodId MId : C.Methods) {
      const MethodInfo &M = P.method(MId);
      if (!M.HasBody || M.Flags.IsCtor)
        continue;
      if (Profile.hotness(MId) < Cfg.MutableMethodHotness)
        continue;
      bool ReadsState = false;
      for (const Instruction &I : M.Bytecode.Insts) {
        if (I.Op != Opcode::GetField && I.Op != Opcode::GetStatic)
          continue;
        FieldId F = static_cast<FieldId>(I.Imm);
        bool IsState =
            std::find(CP.InstanceStateFields.begin(),
                      CP.InstanceStateFields.end(),
                      F) != CP.InstanceStateFields.end() ||
            std::find(CP.StaticStateFields.begin(), CP.StaticStateFields.end(),
                      F) != CP.StaticStateFields.end();
        if (IsState) {
          ReadsState = true;
          break;
        }
      }
      if (ReadsState)
        CP.MutableMethods.push_back(MId);
    }
    if (!CP.MutableMethods.empty() && !CP.HotStates.empty())
      Plan.Classes.push_back(std::move(CP));
  }
  return Plan;
}

} // namespace dchm
