//===-- analysis/HotMethodProfile.h - Hot-function profile ----*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper obtains its list of hot functions (call frequency + execution
/// time per function) from Intel VTune. Our stand-in gathers the same
/// artifact from an instrumented profiling run: the interpreter attributes
/// simulated cycles and invocation counts to each method.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_ANALYSIS_HOTMETHODPROFILE_H
#define DCHM_ANALYSIS_HOTMETHODPROFILE_H

#include "exec/Interpreter.h"
#include "runtime/Program.h"

#include <algorithm>
#include <vector>

namespace dchm {

/// Per-method hotness derived from a profiling run.
struct HotMethodProfile {
  /// Fraction of total application cycles per method id (sums to ~1).
  std::vector<double> Hotness;
  /// Invocation counts per method id.
  std::vector<uint64_t> Invocations;
  /// Method ids ranked by hotness, hottest first.
  std::vector<MethodId> Ranked;

  double hotness(MethodId M) const {
    return M < Hotness.size() ? Hotness[M] : 0.0;
  }

  /// Builds a profile from an interpreter that ran with setProfiling(true).
  static HotMethodProfile fromInterpreter(const Interpreter &I,
                                          const Program &P) {
    HotMethodProfile Prof;
    const auto &Cycles = I.methodCycles();
    Prof.Invocations = I.methodInvocations();
    uint64_t Total = 0;
    for (uint64_t C : Cycles)
      Total += C;
    Prof.Hotness.assign(P.numMethods(), 0.0);
    for (size_t M = 0; M < Cycles.size(); ++M)
      Prof.Hotness[M] =
          Total == 0 ? 0.0
                     : static_cast<double>(Cycles[M]) / static_cast<double>(Total);
    for (size_t M = 0; M < P.numMethods(); ++M)
      Prof.Ranked.push_back(static_cast<MethodId>(M));
    std::sort(Prof.Ranked.begin(), Prof.Ranked.end(),
              [&](MethodId A, MethodId B) {
                return Prof.Hotness[A] > Prof.Hotness[B];
              });
    return Prof;
  }
};

} // namespace dchm

#endif // DCHM_ANALYSIS_HOTMETHODPROFILE_H
