//===-- analysis/ValueProfiler.cpp - Hot-state mining ------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "analysis/ValueProfiler.h"

#include <algorithm>

namespace dchm {

ValueProfiler::ValueProfiler(Program &P,
                             const std::vector<ClassStateFields> &Candidates,
                             size_t MaxFieldsPerClass)
    : P(P) {
  for (const ClassStateFields &CSF : Candidates) {
    PerClass PC;
    PC.Cls = CSF.Cls;
    size_t Take = std::min(MaxFieldsPerClass, CSF.Candidates.size());
    for (size_t I = 0; I < Take; ++I) {
      FieldId F = CSF.Candidates[I].Field;
      if (P.field(F).IsStatic)
        PC.StaticFields.push_back(F);
      else
        PC.InstanceFields.push_back(F);
    }
    if (!PC.InstanceFields.empty() || !PC.StaticFields.empty())
      Classes.push_back(std::move(PC));
  }
}

void ValueProfiler::prepare() {
  for (const PerClass &PC : Classes) {
    for (FieldId F : PC.InstanceFields)
      P.field(F).IsStateField = true;
    for (FieldId F : PC.StaticFields)
      P.field(F).IsStateField = true;
  }
}

ValueProfiler::PerClass *ValueProfiler::classEntry(ClassId C) {
  for (PerClass &PC : Classes)
    if (PC.Cls == C)
      return &PC;
  return nullptr;
}

void ValueProfiler::sampleObject(Object *O, PerClass &PC) {
  std::vector<int64_t> Tuple;
  Tuple.reserve(PC.InstanceFields.size() + PC.StaticFields.size());
  for (FieldId F : PC.InstanceFields)
    Tuple.push_back(O->get(P.field(F).Slot).I);
  for (FieldId F : PC.StaticFields)
    Tuple.push_back(P.getStaticSlot(P.field(F).Slot).I);
  PC.Histogram[Tuple]++;
  PC.Samples++;
}

void ValueProfiler::sampleStaticOnly(PerClass &PC) {
  if (!PC.InstanceFields.empty())
    return; // instance-part unknown without an object in hand
  std::vector<int64_t> Tuple;
  for (FieldId F : PC.StaticFields)
    Tuple.push_back(P.getStaticSlot(P.field(F).Slot).I);
  PC.Histogram[Tuple]++;
  PC.Samples++;
}

void ValueProfiler::observeInstanceStore(Object *O, FieldInfo &F) {
  // Sample against the object's *exact* class: mutation never applies to
  // subclasses of a mutable class.
  if (PerClass *PC = classEntry(O->Tib->Cls->Id))
    sampleObject(O, *PC);
}

void ValueProfiler::observeStaticStore(FieldInfo &F) {
  for (PerClass &PC : Classes) {
    bool Tracks = std::find(PC.StaticFields.begin(), PC.StaticFields.end(),
                            F.Id) != PC.StaticFields.end();
    if (Tracks)
      sampleStaticOnly(PC);
  }
}

void ValueProfiler::observeConstructorExit(Object *O, MethodInfo &Ctor) {
  if (!O)
    return;
  if (PerClass *PC = classEntry(O->Tib->Cls->Id))
    sampleObject(O, *PC);
}

void ValueProfiler::censusHeap(const Heap &H) {
  H.forEachObject([&](Object *O) {
    if (O->IsArray || !O->Tib)
      return;
    if (PerClass *PC = classEntry(O->Tib->Cls->Id))
      sampleObject(O, *PC);
  });
}

std::vector<ValueProfiler::ClassStates>
ValueProfiler::mine(double MinFraction, size_t MaxStates) const {
  std::vector<ClassStates> Out;
  for (const PerClass &PC : Classes) {
    if (PC.Samples == 0)
      continue;
    ClassStates CS;
    CS.Cls = PC.Cls;
    CS.InstanceFields = PC.InstanceFields;
    CS.StaticFields = PC.StaticFields;
    CS.Samples = PC.Samples;

    std::vector<std::pair<const std::vector<int64_t> *, uint64_t>> Ranked;
    for (auto &[Tuple, Count] : PC.Histogram)
      Ranked.emplace_back(&Tuple, Count);
    std::sort(Ranked.begin(), Ranked.end(),
              [](auto &A, auto &B) { return A.second > B.second; });

    for (auto &[Tuple, Count] : Ranked) {
      double Share =
          static_cast<double>(Count) / static_cast<double>(PC.Samples);
      if (Share < MinFraction || CS.Hot.size() >= MaxStates)
        break;
      MinedState MS;
      MS.Weight = Share;
      size_t NI = PC.InstanceFields.size();
      for (size_t I = 0; I < Tuple->size(); ++I) {
        Value V;
        V.I = (*Tuple)[I];
        if (I < NI)
          MS.InstanceVals.push_back(V);
        else
          MS.StaticVals.push_back(V);
      }
      CS.Hot.push_back(std::move(MS));
    }
    if (!CS.Hot.empty())
      Out.push_back(std::move(CS));
  }
  return Out;
}

} // namespace dchm
