//===-- runtime/Safepoint.cpp - Mutator rendezvous protocol -------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "runtime/Safepoint.h"

#include "support/Debug.h"

#include <algorithm>

namespace dchm {

//===----------------------------------------------------------------------===//
// SafepointSlot
//===----------------------------------------------------------------------===//

void SafepointSlot::park() {
  SafepointManager &M = *Mgr;
  std::unique_lock<std::mutex> L(M.Mu);
  // The flag can already be clear again (the rendezvous ended between the
  // relaxed fast-path load and acquiring the mutex); the loop also covers a
  // back-to-back rendezvous re-raising the flag before this thread resumed.
  while (PollFlag.load(std::memory_order_relaxed)) {
    St = State::Parked;
    M.ParkCv.notify_all();
    M.ResumeCv.wait(
        L, [&] { return !PollFlag.load(std::memory_order_relaxed); });
  }
  St = State::Running;
}

void SafepointSlot::enterBlocked() {
  SafepointManager &M = *Mgr;
  std::lock_guard<std::mutex> L(M.Mu);
  St = State::Blocked;
  M.ParkCv.notify_all();
}

void SafepointSlot::leaveBlocked() {
  SafepointManager &M = *Mgr;
  std::unique_lock<std::mutex> L(M.Mu);
  // Re-check the poll flag before running guest code again: a rendezvous
  // that counted this thread as Blocked may still be holding the world.
  // The leader's own slot never has its flag raised, so a leader passing
  // through a blocked scope inside its closure falls straight through.
  M.ResumeCv.wait(L,
                  [&] { return !PollFlag.load(std::memory_order_relaxed); });
  St = State::Running;
}

//===----------------------------------------------------------------------===//
// SafepointManager
//===----------------------------------------------------------------------===//

SafepointSlot *SafepointManager::registerThread() {
  std::unique_lock<std::mutex> L(Mu);
  // A new mutator must not appear under a stopped world.
  LeaderCv.wait(L, [&] { return !Active; });
  auto *S = new SafepointSlot();
  S->Mgr = this;
  S->Index = static_cast<unsigned>(Slots.size());
  S->Tid = std::this_thread::get_id();
  Slots.push_back(S);
  return S;
}

void SafepointManager::unregisterThread(SafepointSlot *S) {
  std::lock_guard<std::mutex> L(Mu);
  // Vanishing satisfies a leader currently waiting for this thread: the
  // caller guarantees it touches nothing shared after unregistering (the
  // VM folds the thread's heap cache under a rendezvous first).
  Slots.erase(std::remove(Slots.begin(), Slots.end(), S), Slots.end());
  delete S;
  ParkCv.notify_all();
}

SafepointSlot *SafepointManager::selfLocked() const {
  std::thread::id Me = std::this_thread::get_id();
  for (SafepointSlot *S : Slots)
    if (S->Tid == Me)
      return S;
  return nullptr;
}

bool SafepointManager::allOthersStopped(const SafepointSlot *Leader) const {
  for (const SafepointSlot *S : Slots)
    if (S != Leader && S->St == SafepointSlot::State::Running)
      return false;
  return true;
}

void SafepointManager::beginLocked(std::unique_lock<std::mutex> &L,
                                   SafepointSlot *Self) {
  // Queue for leadership. While queued, this mutator counts as stopped —
  // otherwise two threads requesting a rendezvous would deadlock, each
  // waiting for the other to park.
  if (Self) {
    Self->St = SafepointSlot::State::Blocked;
    ParkCv.notify_all();
  }
  LeaderCv.wait(L, [&] { return !Active; });
  Active = true;
  LeaderThread = std::this_thread::get_id();
  Rendezvous.fetch_add(1, std::memory_order_relaxed);
  for (SafepointSlot *S : Slots)
    if (S != Self)
      S->PollFlag.store(true, std::memory_order_relaxed);
  ParkCv.wait(L, [&] { return allOthersStopped(Self); });
  if (Self)
    Self->St = SafepointSlot::State::Running; // the leader runs the closure
}

void SafepointManager::endLocked(std::unique_lock<std::mutex> &L) {
  (void)L;
  DCHM_CHECK(Active, "endRendezvous without an open rendezvous");
  for (SafepointSlot *S : Slots)
    S->PollFlag.store(false, std::memory_order_relaxed);
  Active = false;
  LeaderThread = std::thread::id();
  ResumeCv.notify_all();
  LeaderCv.notify_all();
}

void SafepointManager::run(const std::function<void()> &Fn) {
  {
    std::unique_lock<std::mutex> L(Mu);
    if (Active && LeaderThread == std::this_thread::get_id()) {
      // Re-entrant request from inside a closure: the world is already
      // stopped by this thread, so the nested closure runs inline.
      L.unlock();
      Fn();
      return;
    }
    beginLocked(L, selfLocked());
  }
  Fn();
  std::unique_lock<std::mutex> L(Mu);
  endLocked(L);
}

bool SafepointManager::beginRendezvous() {
  std::unique_lock<std::mutex> L(Mu);
  if (Active && LeaderThread == std::this_thread::get_id())
    return false; // nested explicit request: rejected, not queued
  beginLocked(L, selfLocked());
  return true;
}

void SafepointManager::endRendezvous() {
  std::unique_lock<std::mutex> L(Mu);
  endLocked(L);
}

bool SafepointManager::currentThreadLeads() const {
  std::lock_guard<std::mutex> L(Mu);
  return Active && LeaderThread == std::this_thread::get_id();
}

size_t SafepointManager::registered() const {
  std::lock_guard<std::mutex> L(Mu);
  return Slots.size();
}

} // namespace dchm
