//===-- runtime/Heap.h - Allocator and mark-sweep collector ---*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM heap: a bounded allocator with a stop-the-world, non-moving
/// mark-sweep collector. The paper's algorithm deliberately avoids keeping a
/// registry of mutable-class instances because the Jikes GC can move objects
/// (section 3.2.2); our collector is non-moving, but the mutation engine
/// still follows the paper's design and only touches objects at the field
/// assignments where a pointer is in hand. GC cost is charged to the run in
/// simulated cycles, which is what gives the SPECjbb2005 variant its extra
/// memory pressure relative to SPECjbb2000 (Figure 9's 1.9% vs 4.5%).
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_RUNTIME_HEAP_H
#define DCHM_RUNTIME_HEAP_H

#include "runtime/Entities.h"
#include "runtime/Object.h"
#include "runtime/TIB.h"
#include "support/Error.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace dchm {

/// Supplies the GC's root set. Implemented by the interpreter (frame
/// registers), the VM facade (JTOC static reference slots), and tests.
class RootProvider {
public:
  virtual ~RootProvider() = default;
  /// Appends every root object pointer to Roots (nulls are tolerated).
  virtual void enumerateRoots(std::vector<Object *> &Roots) = 0;
};

/// Heap statistics reported by the experiment harness.
struct HeapStats {
  uint64_t GcCount = 0;
  uint64_t GcCycles = 0; ///< Simulated cycles spent collecting.
  uint64_t BytesAllocated = 0;
  uint64_t ObjectsAllocated = 0;
  size_t UsedBytes = 0;
  size_t PeakBytes = 0;
};

/// Bounded mark-sweep heap.
class Heap {
public:
  explicit Heap(size_t BudgetBytes);
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Must be set before the first allocation that can exceed the budget.
  void setRootProvider(RootProvider *P) { Roots = P; }

  /// Registers an additional root provider consulted by every collection,
  /// on top of the primary one. This is the supported way for host code
  /// (tests, tools, embedders) to pin objects it holds in C++ storage the
  /// VM cannot see; see LocalRootScope for the RAII wrapper.
  void addRootProvider(RootProvider *P) { ExtraRoots.push_back(P); }
  void removeRootProvider(RootProvider *P) {
    for (size_t I = ExtraRoots.size(); I > 0; --I)
      if (ExtraRoots[I - 1] == P) {
        ExtraRoots.erase(ExtraRoots.begin() + static_cast<long>(I - 1));
        return;
      }
  }

  /// Allocates an instance of C with zeroed fields and the given TIB
  /// (normally C's class TIB; a constructor-exit mutation may re-point it).
  Object *allocateInstance(const ClassInfo &C, TIB *Tib);

  /// Allocates an array of Len elements of ElemTy, zero-initialized.
  Object *allocateArray(Type ElemTy, int64_t Len);

  /// Forces a collection (also triggered automatically by allocation). In
  /// concurrent mode the collection is routed through the safepoint
  /// executor so it runs with every mutator stopped.
  void collect();

  // --- Multi-mutator support ----------------------------------------------
  /// Per-mutator-thread allocation buffer. Objects are linked onto a
  /// thread-local list with thread-local byte accounting; both fold into
  /// the global list/stats at safepoints (GC, unregister), so the hot
  /// allocation path takes no lock.
  struct ThreadCache {
    Heap *Owner = nullptr;
    Object *Head = nullptr;     ///< newest-first local allocation list
    Object **TailLink = nullptr; ///< &oldest->NextAlloc, for O(1) splicing
    uint64_t BytesAllocated = 0;
    uint64_t ObjectsAllocated = 0;
    size_t UsedBytes = 0;
  };

  /// Runs whole-heap work (GC) with the world stopped; wired by the VM to
  /// the safepoint rendezvous in multi-mutator mode.
  using SafepointExecutor =
      std::function<void(const std::function<void()> &)>;
  void setSafepointExecutor(SafepointExecutor E) { SafeExec = std::move(E); }

  /// Enables the concurrent allocation path (per-thread buffers + atomic
  /// budget accounting + GC through the safepoint executor). Single-mutator
  /// runs never call this; their allocator is byte-identical to before.
  void setConcurrent(bool On);
  bool concurrent() const { return Concurrent; }

  /// Creates a cache slot for one mutator thread. Call from the host thread
  /// before the mutators start (or with the world stopped).
  ThreadCache *registerMutator();
  /// Binds the calling thread to its cache; subsequent allocations on this
  /// thread go through it lock-free.
  void bindMutator(ThreadCache *C);
  /// Folds and removes a cache. Must run with the world stopped (the VM
  /// wraps this in a rendezvous closure at mutator exit).
  void unregisterMutator(ThreadCache *C);

  /// Visits every allocated object (live or not-yet-collected garbage).
  /// Used by the online value profiler's heap census; a stop-the-world
  /// walk, like a collection without the sweep. In concurrent mode this is
  /// only safe at a safepoint (caches are walked unsynchronized).
  void forEachObject(const std::function<void(Object *)> &Fn) const {
    for (Object *O = AllObjects; O; O = O->NextAlloc)
      Fn(O);
    for (const auto &C : Caches)
      for (Object *O = C->Head; O; O = O->NextAlloc)
        Fn(O);
  }

  const HeapStats &stats() const { return Stats; }
  size_t budgetBytes() const { return Budget; }

  /// Sticky recoverable error recorded the first time an allocation is
  /// still over budget after a collection (the allocator is soft: it
  /// proceeds so the run stays deterministic, but the overrun is no longer
  /// silent). Surfaced by VirtualMachine::run(); tools treat it as a
  /// recoverable failure rather than aborting.
  const VMError &budgetError() const { return BudgetErr; }
  void clearBudgetError() { BudgetErr = VMError(); }

private:
  Object *allocateRaw(uint32_t NumSlots);
  Object *allocateRawConcurrent(uint32_t NumSlots, size_t Bytes);
  /// The collection proper; caller guarantees the world is stopped (trivially
  /// true single-mutator).
  void collectStopped();
  void foldCaches();
  void recordBudgetError(size_t Used, size_t Requested);
  void mark(Object *O, std::vector<Object *> &Work);

  size_t Budget;
  RootProvider *Roots = nullptr;
  std::vector<RootProvider *> ExtraRoots;
  Object *AllObjects = nullptr;
  HeapStats Stats;
  VMError BudgetErr;

  // Multi-mutator state. Quiescent (empty/false) in single-mutator runs.
  bool Concurrent = false;
  SafepointExecutor SafeExec;
  std::vector<std::unique_ptr<ThreadCache>> Caches;
  /// Approximate live-byte watermark for the concurrent budget trigger:
  /// bumped on every allocation, re-synced to exact UsedBytes at each GC.
  std::atomic<size_t> UsedApprox{0};
  std::mutex SlowMu; ///< guards BudgetErr and unbuffered-thread allocation
};

/// RAII root registration for objects held in host (C++) storage: anything
/// add()ed stays alive across collections for the scope's lifetime. This
/// replaces the old test idiom of sizing the heap large enough that no GC
/// could run while a test-local vector held unrooted pointers.
class LocalRootScope : public RootProvider {
public:
  explicit LocalRootScope(Heap &H) : H(H) { H.addRootProvider(this); }
  ~LocalRootScope() override { H.removeRootProvider(this); }
  LocalRootScope(const LocalRootScope &) = delete;
  LocalRootScope &operator=(const LocalRootScope &) = delete;

  void add(Object *O) { Pinned.push_back(O); }
  Object *operator[](size_t I) const { return Pinned[I]; }
  size_t size() const { return Pinned.size(); }
  bool empty() const { return Pinned.empty(); }
  const std::vector<Object *> &objects() const { return Pinned; }

  void enumerateRoots(std::vector<Object *> &Roots) override {
    Roots.insert(Roots.end(), Pinned.begin(), Pinned.end());
  }

private:
  Heap &H;
  std::vector<Object *> Pinned;
};

} // namespace dchm

#endif // DCHM_RUNTIME_HEAP_H
