//===-- runtime/Value.h - Runtime value slots ------------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A runtime value is one 64-bit slot whose interpretation (int, float, or
/// reference) is given by static type information: register types in IR
/// functions, field layouts in classes, element types in arrays. This is
/// the same untagged-slot model Jikes uses.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_RUNTIME_VALUE_H
#define DCHM_RUNTIME_VALUE_H

#include <cstdint>

namespace dchm {

struct Object;

/// One untagged 64-bit value slot.
union Value {
  int64_t I;
  double F;
  Object *R;
};

inline Value valueI(int64_t V) {
  Value X;
  X.I = V;
  return X;
}

inline Value valueF(double V) {
  Value X;
  X.F = V;
  return X;
}

inline Value valueR(Object *V) {
  Value X;
  X.R = V;
  return X;
}

/// The all-zero value used to initialize fields, array elements, and
/// registers (0 / 0.0 / null).
inline Value zeroValue() {
  Value X;
  X.I = 0;
  return X;
}

} // namespace dchm

#endif // DCHM_RUNTIME_VALUE_H
