//===-- runtime/Object.h - Heap object layout ------------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heap object layout. Every instance carries its own TIB pointer (the Jikes
/// object model); mutation re-points it between the class TIB and special
/// TIBs as the object's state changes. Arrays reuse the same header with a
/// null TIB and an element type.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_RUNTIME_OBJECT_H
#define DCHM_RUNTIME_OBJECT_H

#include "ir/Type.h"
#include "runtime/Value.h"

#include <cstdint>

namespace dchm {

struct TIB;

/// Header + inline slots of a heap object or array.
struct Object {
  /// The object's current virtual function table. For a mutated object this
  /// is one of the class's special TIBs. Null for arrays.
  TIB *Tib = nullptr;
  /// Intrusive list of all allocations, used by the sweep phase.
  Object *NextAlloc = nullptr;
  /// Instance: number of field slots. Array: element count.
  uint32_t NumSlots = 0;
  uint8_t Mark = 0;
  bool IsArray = false;
  /// Set by the VM when the outermost constructor for this object exits
  /// (the point where algorithm part I first classifies it). The
  /// consistency auditor uses it to tell "not yet classified" apart from
  /// "must match its state": before the ctor-exit action an object
  /// legitimately sits on its class TIB whatever its fields hold.
  bool CtorDone = false;
  /// Element type for arrays (drives GC reference scanning).
  Type ElemTy = Type::I64;

  /// Inline value slots (fields or elements).
  Value *slots() { return reinterpret_cast<Value *>(this + 1); }
  const Value *slots() const { return reinterpret_cast<const Value *>(this + 1); }

  Value get(uint32_t Slot) const { return slots()[Slot]; }
  void set(uint32_t Slot, Value V) { slots()[Slot] = V; }

  /// Allocation size in bytes for an object with N slots.
  static size_t allocBytes(uint32_t NSlots) {
    return sizeof(Object) + static_cast<size_t>(NSlots) * sizeof(Value);
  }
};

} // namespace dchm

#endif // DCHM_RUNTIME_OBJECT_H
