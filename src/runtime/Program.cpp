//===-- runtime/Program.cpp - Class registry and linker --------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "runtime/Program.h"

#include "ir/Verifier.h"
#include "runtime/CompiledMethod.h"
#include "support/Debug.h"

#include <algorithm>
#include <cstdio>

namespace dchm {

namespace {

/// Link failures are recoverable: phases return the first diagnostic up
/// through tryLink(); link() turns it into the traditional abort.
VMError linkError(const std::string &Msg) { return VMError::error(Msg); }

bool sameSignature(const MethodInfo &A, const MethodInfo &B) {
  return A.Name == B.Name && A.RetTy == B.RetTy && A.ParamTys == B.ParamTys;
}

} // namespace

Program::Program() = default;

ClassId Program::defineClass(const std::string &Name, ClassId Super,
                             uint32_t Package) {
  DCHM_CHECK(!Linked, "cannot define classes after link()");
  DCHM_CHECK(ClassByName.find(Name) == ClassByName.end(),
             "duplicate class name");
  DCHM_CHECK(Super == NoClassId || Super < Classes.size(),
             "superclass must be defined first");
  if (Super != NoClassId)
    DCHM_CHECK(!Classes[Super].IsInterface, "superclass cannot be interface");
  ClassInfo C;
  C.Id = static_cast<ClassId>(Classes.size());
  C.Name = Name;
  C.Super = Super;
  C.Package = Package;
  Classes.push_back(std::move(C));
  ClassByName.emplace(Name, Classes.back().Id);
  return Classes.back().Id;
}

ClassId Program::defineInterface(const std::string &Name, uint32_t Package) {
  ClassId Id = defineClass(Name, NoClassId, Package);
  Classes[Id].IsInterface = true;
  return Id;
}

void Program::addInterface(ClassId Cls, ClassId Iface) {
  DCHM_CHECK(!Linked, "cannot modify classes after link()");
  DCHM_CHECK(Cls < Classes.size() && Iface < Classes.size(), "bad class id");
  DCHM_CHECK(Classes[Iface].IsInterface, "addInterface target not interface");
  Classes[Cls].Interfaces.push_back(Iface);
}

FieldId Program::defineField(ClassId Owner, const std::string &Name, Type Ty,
                             bool IsStatic, Access Acc) {
  DCHM_CHECK(!Linked, "cannot define fields after link()");
  DCHM_CHECK(Owner < Classes.size(), "bad owner class");
  DCHM_CHECK(Ty != Type::Void, "field cannot be void");
  DCHM_CHECK(!Classes[Owner].IsInterface || IsStatic,
             "interfaces may only declare static fields");
  FieldInfo F;
  F.Id = static_cast<FieldId>(Fields.size());
  F.Owner = Owner;
  F.Name = Name;
  F.Ty = Ty;
  F.IsStatic = IsStatic;
  F.Acc = Acc;
  Fields.push_back(std::move(F));
  Classes[Owner].Fields.push_back(Fields.back().Id);
  return Fields.back().Id;
}

MethodId Program::defineMethod(ClassId Owner, const std::string &Name,
                               Type RetTy, std::vector<Type> ParamTys,
                               MethodFlags Flags) {
  DCHM_CHECK(!Linked, "cannot define methods after link()");
  DCHM_CHECK(Owner < Classes.size(), "bad owner class");
  if (Classes[Owner].IsInterface) {
    DCHM_CHECK(!Flags.IsStatic && !Flags.IsCtor && !Flags.IsPrivate,
               "interface methods are public abstract instance methods");
    Flags.IsAbstract = true;
  }
  // Built in place: MethodInfo carries atomic counters and cannot be moved.
  MethodInfo &M = Methods.emplace_back();
  M.Id = static_cast<MethodId>(Methods.size() - 1);
  M.Owner = Owner;
  M.Name = Name;
  M.RetTy = RetTy;
  M.ParamTys = std::move(ParamTys);
  M.Flags = Flags;
  Classes[Owner].Methods.push_back(M.Id);
  return M.Id;
}

void Program::setBody(MethodId Id, IRFunction F) {
  DCHM_CHECK(!Linked, "cannot set bodies after link()");
  MethodInfo &M = method(Id);
  DCHM_CHECK(!M.Flags.IsAbstract, "abstract method cannot have a body");
  M.Bytecode = std::move(F);
  M.HasBody = true;
}

ClassInfo &Program::cls(ClassId Id) {
  DCHM_CHECK(Id < Classes.size(), "bad class id");
  return Classes[Id];
}
const ClassInfo &Program::cls(ClassId Id) const {
  DCHM_CHECK(Id < Classes.size(), "bad class id");
  return Classes[Id];
}
FieldInfo &Program::field(FieldId Id) {
  DCHM_CHECK(Id < Fields.size(), "bad field id");
  return Fields[Id];
}
const FieldInfo &Program::field(FieldId Id) const {
  DCHM_CHECK(Id < Fields.size(), "bad field id");
  return Fields[Id];
}
MethodInfo &Program::method(MethodId Id) {
  DCHM_CHECK(Id < Methods.size(), "bad method id");
  return Methods[Id];
}
const MethodInfo &Program::method(MethodId Id) const {
  DCHM_CHECK(Id < Methods.size(), "bad method id");
  return Methods[Id];
}

ClassId Program::findClass(const std::string &Name) const {
  auto It = ClassByName.find(Name);
  return It == ClassByName.end() ? NoClassId : It->second;
}

MethodId Program::findMethod(ClassId Cls, const std::string &Name) const {
  for (MethodId M : Classes[Cls].Methods)
    if (Methods[M].Name == Name)
      return M;
  return NoMethodId;
}

FieldId Program::findField(ClassId Cls, const std::string &Name) const {
  for (FieldId F : Classes[Cls].Fields)
    if (Fields[F].Name == Name)
      return F;
  return NoFieldId;
}

bool Program::isSubtype(ClassId Sub, ClassId Sup) const {
  if (Sub == Sup)
    return true;
  const ClassInfo &C = cls(Sub);
  if (cls(Sup).IsInterface)
    return std::find(C.AllInterfaces.begin(), C.AllInterfaces.end(), Sup) !=
           C.AllInterfaces.end();
  return std::find(C.Ancestors.begin(), C.Ancestors.end(), Sup) !=
         C.Ancestors.end();
}

VMError Program::computeAncestry() {
  for (ClassInfo &C : Classes) {
    C.Ancestors.clear();
    ClassId Cur = C.Id;
    size_t Guard = 0;
    while (Cur != NoClassId) {
      C.Ancestors.push_back(Cur);
      Cur = Classes[Cur].Super;
      if (++Guard > Classes.size())
        return linkError("class hierarchy cycle involving " + C.Name);
    }
    // Transitive interface closure: own interfaces, their super-interfaces
    // (interfaces may list Interfaces too), and everything inherited.
    C.AllInterfaces.clear();
    std::vector<ClassId> Work;
    for (ClassId A : C.Ancestors)
      for (ClassId I : Classes[A].Interfaces)
        Work.push_back(I);
    while (!Work.empty()) {
      ClassId I = Work.back();
      Work.pop_back();
      if (std::find(C.AllInterfaces.begin(), C.AllInterfaces.end(), I) !=
          C.AllInterfaces.end())
        continue;
      C.AllInterfaces.push_back(I);
      for (ClassId Sup : Classes[I].Interfaces)
        Work.push_back(Sup);
    }
  }
  return VMError::success();
}

void Program::layoutFields() {
  StaticSlots.clear();
  StaticSlotTypes.clear();
  // Classes are defined supers-first (defineClass enforces it), so a single
  // in-order pass sees each superclass before its subclasses.
  for (ClassInfo &C : Classes) {
    C.SlotTypes =
        C.Super == NoClassId ? std::vector<Type>{} : Classes[C.Super].SlotTypes;
    for (FieldId FId : C.Fields) {
      FieldInfo &F = Fields[FId];
      if (F.IsStatic) {
        F.Slot = static_cast<uint32_t>(StaticSlots.size());
        StaticSlots.push_back(zeroValue());
        StaticSlotTypes.push_back(F.Ty);
      } else {
        F.Slot = static_cast<uint32_t>(C.SlotTypes.size());
        C.SlotTypes.push_back(F.Ty);
      }
    }
  }
}

const MethodInfo *Program::findVirtualBySignature(const ClassInfo &C,
                                                  const MethodInfo &Sig) const {
  for (MethodId MId : C.Methods) {
    const MethodInfo &M = Methods[MId];
    if (M.isVirtualDispatch() && sameSignature(M, Sig))
      return &M;
  }
  return nullptr;
}

void Program::buildVTables() {
  for (ClassInfo &C : Classes) {
    if (C.IsInterface)
      continue;
    C.VTable =
        C.Super == NoClassId ? std::vector<MethodId>{} : Classes[C.Super].VTable;
    for (MethodId MId : C.Methods) {
      MethodInfo &M = Methods[MId];
      if (M.Flags.IsStatic)
        continue;
      if (M.isVirtualDispatch()) {
        // Override resolution: reuse the slot of a matching virtual method
        // on the superclass chain, otherwise allocate a new slot.
        const MethodInfo *Overridden = nullptr;
        for (ClassId A : C.Ancestors) {
          if (A == C.Id)
            continue;
          if ((Overridden = findVirtualBySignature(Classes[A], M)))
            break;
        }
        if (Overridden) {
          M.VSlot = Overridden->VSlot;
          M.SlotRoot = Overridden->SlotRoot;
          C.VTable[M.VSlot] = M.Id;
          continue;
        }
      }
      // New virtual slot, or a per-class slot for private/ctor methods
      // (invokespecial binds through the declaring class TIB).
      M.VSlot = static_cast<uint32_t>(C.VTable.size());
      M.SlotRoot = M.Id;
      C.VTable.push_back(M.Id);
    }
  }
}

VMError Program::buildImts() {
  for (ClassInfo &C : Classes) {
    if (C.IsInterface || C.AllInterfaces.empty())
      continue;
    OwnedImts.push_back(std::make_unique<IMT>());
    C.Imt = OwnedImts.back().get();
    // Gather (interface method, implementation) pairs per hashed IMT slot.
    std::vector<std::vector<std::pair<MethodId, const MethodInfo *>>> PerSlot(
        NumImtSlots);
    for (ClassId IfId : C.AllInterfaces) {
      for (MethodId IMId : Classes[IfId].Methods) {
        const MethodInfo &IM = Methods[IMId];
        const MethodInfo *Impl = nullptr;
        for (ClassId A : C.Ancestors)
          if ((Impl = findVirtualBySignature(Classes[A], IM)))
            break;
        if (!Impl)
          return linkError("class " + C.Name + " does not implement " + IM.Name +
                    " of interface " + Classes[IfId].Name);
        PerSlot[IMId % NumImtSlots].emplace_back(IMId, Impl);
      }
    }
    for (uint32_t S = 0; S < NumImtSlots; ++S) {
      ImtEntry &E = C.Imt->Slots[S];
      if (PerSlot[S].empty())
        continue;
      if (PerSlot[S].size() == 1) {
        E.K = ImtEntry::Kind::Direct;
        E.DirectImpl = PerSlot[S][0].second->Id;
        E.VSlot = PerSlot[S][0].second->VSlot;
        continue;
      }
      E.K = ImtEntry::Kind::Conflict;
      for (auto &[IMId, Impl] : PerSlot[S])
        E.Table.emplace_back(IMId, Impl->VSlot);
    }
  }
  return VMError::success();
}

void Program::createTibs() {
  StaticEntries.assign(Methods.size(), nullptr);
  for (ClassInfo &C : Classes) {
    if (C.IsInterface)
      continue;
    OwnedTibs.push_back(std::make_unique<TIB>());
    TIB *T = OwnedTibs.back().get();
    T->Cls = &C;
    T->StateIndex = -1;
    // Lazy compilation: slots start null; the interpreter's dispatch path
    // asks the compile broker for opt0 code on first use.
    T->Slots.assign(C.VTable.size(), nullptr);
    T->Imt = C.Imt;
    C.ClassTib = T;
  }
}

VMError Program::resolveBodies() {
  for (MethodInfo &M : Methods) {
    if (M.Flags.IsAbstract) {
      if (M.HasBody)
        return linkError("abstract method " + M.Name + " has a body");
      continue;
    }
    if (!M.HasBody)
      return linkError("method " + Classes[M.Owner].Name + "." + M.Name +
                " has no body");
    std::string Err = verifyFunction(M.Bytecode);
    if (!Err.empty())
      return linkError("verifier: " + Err);
    if (M.Bytecode.NumArgs != M.numArgsWithReceiver())
      return linkError("method " + M.Name + ": body argument count mismatch");
    if (M.Bytecode.RetTy != M.RetTy)
      return linkError("method " + M.Name + ": body return type mismatch");

    for (size_t Idx = 0; Idx < M.Bytecode.Insts.size(); ++Idx) {
      Instruction &I = M.Bytecode.Insts[Idx];
      switch (I.Op) {
      case Opcode::GetField:
      case Opcode::PutField: {
        if (static_cast<size_t>(I.Imm) >= Fields.size())
          return linkError(M.Name + ": bad field id");
        const FieldInfo &F = Fields[static_cast<FieldId>(I.Imm)];
        if (F.IsStatic)
          return linkError(M.Name + ": instance access to static field " + F.Name);
        if (I.Op == Opcode::GetField && I.Ty != F.Ty)
          return linkError(M.Name + ": getfield type mismatch on " + F.Name);
        if (I.Op == Opcode::PutField &&
            M.Bytecode.RegTypes[I.B] != F.Ty)
          return linkError(M.Name + ": putfield type mismatch on " + F.Name);
        I.Aux = F.Slot;
        break;
      }
      case Opcode::GetStatic:
      case Opcode::PutStatic: {
        if (static_cast<size_t>(I.Imm) >= Fields.size())
          return linkError(M.Name + ": bad field id");
        const FieldInfo &F = Fields[static_cast<FieldId>(I.Imm)];
        if (!F.IsStatic)
          return linkError(M.Name + ": static access to instance field " + F.Name);
        if (I.Op == Opcode::GetStatic && I.Ty != F.Ty)
          return linkError(M.Name + ": getstatic type mismatch on " + F.Name);
        if (I.Op == Opcode::PutStatic && M.Bytecode.RegTypes[I.A] != F.Ty)
          return linkError(M.Name + ": putstatic type mismatch on " + F.Name);
        I.Aux = F.Slot;
        break;
      }
      case Opcode::CallStatic:
      case Opcode::CallVirtual:
      case Opcode::CallSpecial:
      case Opcode::CallInterface: {
        if (static_cast<size_t>(I.Imm) >= Methods.size())
          return linkError(M.Name + ": bad method id");
        const MethodInfo &Callee = Methods[static_cast<MethodId>(I.Imm)];
        if (I.Args.size() != Callee.numArgsWithReceiver())
          return linkError(M.Name + ": wrong argument count calling " + Callee.Name);
        if (I.Ty != Callee.RetTy)
          return linkError(M.Name + ": return type mismatch calling " + Callee.Name);
        size_t ParamBase = Callee.Flags.IsStatic ? 0 : 1;
        for (size_t P = 0; P < Callee.ParamTys.size(); ++P)
          if (M.Bytecode.RegTypes[I.Args[ParamBase + P]] != Callee.ParamTys[P])
            return linkError(M.Name + ": argument type mismatch calling " +
                      Callee.Name);
        switch (I.Op) {
        case Opcode::CallStatic:
          if (!Callee.Flags.IsStatic)
            return linkError(M.Name + ": callstatic to instance method " +
                      Callee.Name);
          break;
        case Opcode::CallVirtual:
          if (!Callee.isVirtualDispatch())
            return linkError(M.Name + ": callvirtual needs a virtual method, got " +
                      Callee.Name);
          if (Classes[Callee.Owner].IsInterface)
            return linkError(M.Name + ": callvirtual to interface method " +
                      Callee.Name + " (use callinterface)");
          I.Aux = Callee.VSlot;
          break;
        case Opcode::CallSpecial:
          if (Callee.Flags.IsStatic)
            return linkError(M.Name + ": callspecial to static method " +
                      Callee.Name);
          if (Classes[Callee.Owner].IsInterface)
            return linkError(M.Name + ": callspecial to interface method");
          I.Aux = Callee.VSlot;
          break;
        case Opcode::CallInterface:
          if (!Classes[Callee.Owner].IsInterface)
            return linkError(M.Name + ": callinterface to class method " +
                      Callee.Name);
          I.Aux = static_cast<uint32_t>(Callee.Id % NumImtSlots);
          break;
        default:
          DCHM_UNREACHABLE("not a call");
        }
        break;
      }
      case Opcode::New: {
        if (static_cast<size_t>(I.Imm) >= Classes.size())
          return linkError(M.Name + ": bad class id in new");
        if (Classes[static_cast<ClassId>(I.Imm)].IsInterface)
          return linkError(M.Name + ": cannot instantiate interface");
        break;
      }
      case Opcode::InstanceOf:
      case Opcode::CheckCast:
      case Opcode::ClassEq:
        if (static_cast<size_t>(I.Imm) >= Classes.size())
          return linkError(M.Name + ": bad class id in type test");
        break;
      default:
        break;
      }
    }
  }
  return VMError::success();
}

void Program::link() {
  if (VMError E = tryLink()) {
    std::fprintf(stderr, "dchm link error: %s\n", E.message().c_str());
    std::abort();
  }
}

VMError Program::tryLink() {
  DCHM_CHECK(!Linked, "link() called twice");
  if (VMError E = computeAncestry())
    return E;
  layoutFields();
  buildVTables();
  if (VMError E = buildImts())
    return E;
  createTibs();
  if (VMError E = resolveBodies())
    return E;
  Linked = true;
  return VMError::success();
}

void Program::installCode(MethodInfo &M, CompiledMethod *CM) {
  DCHM_CHECK(Linked, "installCode before link()");
  // Every install rewrites dispatch structures: invalidate inline caches.
  bumpCodeEpoch();
  M.General = CM;
  if (M.Flags.IsStatic) {
    // "The replacement occurs in the JTOC if the method is static."
    StaticEntries[M.Id] = CM;
    return;
  }
  ClassInfo &D = Classes[M.Owner];
  auto InstallInto = [&](ClassInfo &C) {
    C.ClassTib->Slots[M.VSlot] = CM;
    for (TIB *ST : C.SpecialTibs)
      if (ST) // null = hot state evicted under code-budget pressure
        ST->Slots[M.VSlot] = CM;
    if (C.Imt) {
      for (ImtEntry &E : C.Imt->Slots)
        if (E.K == ImtEntry::Kind::Direct && E.DirectImpl == M.Id)
          E.DirectCode = CM;
    }
  };
  InstallInto(D);
  // "...or in the class TIB and the subclasses' class TIBs (if the method is
  // not private or overridden by the subclasses) if the method is
  // non-static." Constructor slots behave like private ones.
  if (!M.isVirtualDispatch())
    return;
  for (ClassInfo &C : Classes) {
    if (C.Id == M.Owner || C.IsInterface || C.VTable.size() <= M.VSlot)
      continue;
    if (C.VTable[M.VSlot] != M.Id) // overridden below D, or unrelated class
      continue;
    if (!isSubtype(C.Id, M.Owner))
      continue;
    InstallInto(C);
  }
}

TIB *Program::createSpecialTib(ClassId ClsId, int StateIndex) {
  DCHM_CHECK(Linked, "createSpecialTib before link()");
  ClassInfo &C = cls(ClsId);
  DCHM_CHECK(!C.IsInterface, "special TIB for interface");
  OwnedTibs.push_back(std::make_unique<TIB>());
  TIB *T = OwnedTibs.back().get();
  // "The special TIB is a replicant of the class TIB": same type-information
  // entry, same IMT, same code pointers until mutation redirects them.
  T->Cls = &C;
  T->StateIndex = StateIndex;
  T->Slots = C.ClassTib->Slots;
  T->Imt = C.Imt;
  C.SpecialTibs.push_back(T);
  return T;
}

size_t Program::classTibBytes() const {
  size_t Total = 0;
  for (const auto &T : OwnedTibs)
    if (!T->isSpecial())
      Total += T->sizeBytes();
  return Total;
}

size_t Program::specialTibBytes() const {
  size_t Total = 0;
  for (const auto &T : OwnedTibs)
    if (T->isSpecial())
      Total += T->sizeBytes();
  return Total;
}

void Program::retireSpecialTib(TIB *T) {
  DCHM_CHECK(T && T->isSpecial(), "retireSpecialTib needs a special TIB");
  for (auto It = OwnedTibs.begin(); It != OwnedTibs.end(); ++It) {
    if (It->get() == T) {
      RetiredTibs.push_back({std::move(*It), CodeEpoch});
      OwnedTibs.erase(It);
      return;
    }
  }
  DCHM_UNREACHABLE("retired TIB not owned by this Program");
}

void Program::retireCompiledBody(CompiledMethod *CM) {
  DCHM_CHECK(CM, "retireCompiledBody(null)");
  RetiredBodies.push_back({CM, CodeEpoch});
}

void Program::drainReclaimList(const std::unordered_set<const TIB *> &InUse) {
  // A retired entry is reclaimable once the code epoch has moved past its
  // stamp (every dispatch structure was rewritten since, so no inline cache
  // can still yield it) and, for TIBs, no heap object still points at it
  // (partial-retire faults can strand objects on a retired TIB; freeing it
  // then would leave dangling Object::Tib pointers).
  for (size_t I = 0; I < RetiredTibs.size();) {
    if (RetiredTibs[I].Epoch < CodeEpoch &&
        InUse.find(RetiredTibs[I].T.get()) == InUse.end()) {
      RetiredTibs[I] = std::move(RetiredTibs.back());
      RetiredTibs.pop_back();
      ++ReclaimedTibs;
    } else {
      ++I;
    }
  }
  // Bodies are only safe to release once no retired TIB is heap-referenced
  // at all: a stranded object (partial-retire fault) can still dispatch
  // through its retired TIB's slots straight into any retired body.
  bool TibStranded = false;
  for (const RetiredTib &RT : RetiredTibs)
    if (InUse.count(RT.T.get()))
      TibStranded = true;
  if (TibStranded)
    return;
  for (size_t I = 0; I < RetiredBodies.size();) {
    CompiledMethod *CM = RetiredBodies[I].CM;
    // A pending shell may still be in flight in the compile pipeline; leave
    // it queued until finalizeCode publishes the body.
    if (RetiredBodies[I].Epoch < CodeEpoch && CM->ready()) {
      CM->releaseBody();
      RetiredBodies[I] = RetiredBodies.back();
      RetiredBodies.pop_back();
      ++ReclaimedBodies;
    } else {
      ++I;
    }
  }
}

} // namespace dchm
