//===-- runtime/Heap.cpp - Allocator and mark-sweep collector --------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include "support/Debug.h"

#include <cstdio>
#include <new>

namespace dchm {

namespace {
// Simulated-cycle cost model for collection: a pause constant plus per-object
// mark and sweep work. Chosen so GC is a visible but secondary cost for the
// 50 MB-heap applications and a first-order cost for the allocation-heavy
// SPECjbb-like workloads, matching the paper's observation that jbb2005 is
// much more memory-aggressive than jbb2000.
constexpr uint64_t GcPauseCycles = 20000;
constexpr uint64_t GcMarkCyclesPerObject = 24;
constexpr uint64_t GcSweepCyclesPerObject = 6;
} // namespace

namespace {
/// The cache the current thread allocates through, if any. Validated against
/// the owning heap so multiple heaps (tests) never cross wires.
thread_local Heap::ThreadCache *TlsCache = nullptr;
} // namespace

Heap::Heap(size_t BudgetBytes) : Budget(BudgetBytes) {
  DCHM_CHECK(Budget >= 4096, "heap budget too small");
}

Heap::~Heap() {
  foldCaches();
  Object *O = AllObjects;
  while (O) {
    Object *Next = O->NextAlloc;
    ::operator delete(static_cast<void *>(O));
    O = Next;
  }
}

void Heap::setConcurrent(bool On) {
  Concurrent = On;
  UsedApprox.store(Stats.UsedBytes, std::memory_order_relaxed);
}

Heap::ThreadCache *Heap::registerMutator() {
  Caches.push_back(std::make_unique<ThreadCache>());
  Caches.back()->Owner = this;
  return Caches.back().get();
}

void Heap::bindMutator(ThreadCache *C) { TlsCache = C; }

void Heap::unregisterMutator(ThreadCache *C) {
  if (TlsCache == C)
    TlsCache = nullptr;
  // Splice the cache's objects and counters into the global state, then
  // drop the slot. World-stopped: nothing else walks Caches concurrently.
  if (C->Head) {
    *C->TailLink = AllObjects;
    AllObjects = C->Head;
  }
  Stats.UsedBytes += C->UsedBytes;
  Stats.BytesAllocated += C->BytesAllocated;
  Stats.ObjectsAllocated += C->ObjectsAllocated;
  Stats.PeakBytes = std::max(Stats.PeakBytes, Stats.UsedBytes);
  for (size_t I = 0; I < Caches.size(); ++I)
    if (Caches[I].get() == C) {
      Caches.erase(Caches.begin() + static_cast<long>(I));
      break;
    }
}

void Heap::foldCaches() {
  for (auto &C : Caches) {
    if (C->Head) {
      *C->TailLink = AllObjects;
      AllObjects = C->Head;
      C->Head = nullptr;
      C->TailLink = nullptr;
    }
    Stats.UsedBytes += C->UsedBytes;
    Stats.BytesAllocated += C->BytesAllocated;
    Stats.ObjectsAllocated += C->ObjectsAllocated;
    C->UsedBytes = 0;
    C->BytesAllocated = 0;
    C->ObjectsAllocated = 0;
  }
  Stats.PeakBytes = std::max(Stats.PeakBytes, Stats.UsedBytes);
}

void Heap::recordBudgetError(size_t Used, size_t Requested) {
  if (BudgetErr)
    return;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "heap budget exhausted: %zu bytes live + %zu requested "
                "exceeds budget of %zu bytes%s",
                Used, Requested, Budget,
                Roots ? " after collection" : " (no GC roots registered)");
  BudgetErr = VMError::error(Buf);
}

Object *Heap::allocateRaw(uint32_t NumSlots) {
  size_t Bytes = Object::allocBytes(NumSlots);
  if (Concurrent)
    return allocateRawConcurrent(NumSlots, Bytes);
  if (Stats.UsedBytes + Bytes > Budget && Roots)
    collectStopped();
  // Soft budget: proceed even when the collection did not free enough (the
  // run stays deterministic; cycles for the attempted GC were charged), but
  // record the overrun as a sticky recoverable error the embedder can
  // surface instead of silently pretending the heap fit.
  if (Stats.UsedBytes + Bytes > Budget)
    recordBudgetError(Stats.UsedBytes, Bytes);
  void *Mem = ::operator new(Bytes);
  Object *O = new (Mem) Object();
  O->NumSlots = NumSlots;
  O->NextAlloc = AllObjects;
  AllObjects = O;
  Stats.UsedBytes += Bytes;
  Stats.PeakBytes = std::max(Stats.PeakBytes, Stats.UsedBytes);
  Stats.BytesAllocated += Bytes;
  Stats.ObjectsAllocated++;
  for (uint32_t I = 0; I < NumSlots; ++I)
    O->slots()[I] = zeroValue();
  return O;
}

Object *Heap::allocateRawConcurrent(uint32_t NumSlots, size_t Bytes) {
  ThreadCache *TC =
      (TlsCache && TlsCache->Owner == this) ? TlsCache : nullptr;
  // Budget trigger on the approximate watermark: one GC rendezvous at a
  // time; the closure re-checks so a thread that lost the race to a
  // just-finished collection does not immediately run another.
  if (UsedApprox.load(std::memory_order_relaxed) + Bytes > Budget && Roots &&
      SafeExec)
    SafeExec([&] {
      if (UsedApprox.load(std::memory_order_relaxed) + Bytes > Budget)
        collectStopped();
    });
  if (UsedApprox.load(std::memory_order_relaxed) + Bytes > Budget) {
    std::lock_guard<std::mutex> L(SlowMu);
    recordBudgetError(UsedApprox.load(std::memory_order_relaxed), Bytes);
  }
  void *Mem = ::operator new(Bytes);
  Object *O = new (Mem) Object();
  O->NumSlots = NumSlots;
  for (uint32_t I = 0; I < NumSlots; ++I)
    O->slots()[I] = zeroValue();
  if (TC) {
    O->NextAlloc = TC->Head;
    if (!TC->Head)
      TC->TailLink = &O->NextAlloc;
    TC->Head = O;
    TC->UsedBytes += Bytes;
    TC->BytesAllocated += Bytes;
    TC->ObjectsAllocated++;
  } else {
    // Host thread without a cache (setup code before the mutators spawn,
    // or a test): fall back to the global list under the slow-path lock.
    std::lock_guard<std::mutex> L(SlowMu);
    O->NextAlloc = AllObjects;
    AllObjects = O;
    Stats.UsedBytes += Bytes;
    Stats.PeakBytes = std::max(Stats.PeakBytes, Stats.UsedBytes);
    Stats.BytesAllocated += Bytes;
    Stats.ObjectsAllocated++;
  }
  UsedApprox.fetch_add(Bytes, std::memory_order_relaxed);
  return O;
}

Object *Heap::allocateInstance(const ClassInfo &C, TIB *Tib) {
  DCHM_CHECK(Tib != nullptr, "instance needs a TIB");
  Object *O = allocateRaw(static_cast<uint32_t>(C.SlotTypes.size()));
  O->Tib = Tib;
  O->IsArray = false;
  return O;
}

Object *Heap::allocateArray(Type ElemTy, int64_t Len) {
  DCHM_CHECK(Len >= 0, "negative array length");
  DCHM_CHECK(Len <= 0x7FFFFFFF, "array too large");
  Object *O = allocateRaw(static_cast<uint32_t>(Len));
  O->Tib = nullptr;
  O->IsArray = true;
  O->ElemTy = ElemTy;
  return O;
}

void Heap::mark(Object *O, std::vector<Object *> &Work) {
  if (!O || O->Mark)
    return;
  O->Mark = 1;
  Work.push_back(O);
}

void Heap::collect() {
  // Concurrent mode: the world must stop before roots are enumerated and
  // caches folded; route through the VM-installed rendezvous executor.
  if (Concurrent && SafeExec) {
    SafeExec([this] { collectStopped(); });
    return;
  }
  collectStopped();
}

void Heap::collectStopped() {
  DCHM_CHECK(Roots, "collect() without a root provider");
  foldCaches();
  Stats.GcCount++;
  uint64_t Marked = 0, Swept = 0;

  std::vector<Object *> Work;
  std::vector<Object *> RootSet;
  Roots->enumerateRoots(RootSet);
  for (RootProvider *Extra : ExtraRoots)
    Extra->enumerateRoots(RootSet);
  for (Object *O : RootSet)
    mark(O, Work);

  while (!Work.empty()) {
    Object *O = Work.back();
    Work.pop_back();
    ++Marked;
    if (O->IsArray) {
      if (O->ElemTy == Type::Ref)
        for (uint32_t I = 0; I < O->NumSlots; ++I)
          mark(O->slots()[I].R, Work);
      continue;
    }
    const std::vector<Type> &Layout = O->Tib->Cls->SlotTypes;
    for (uint32_t I = 0; I < O->NumSlots; ++I)
      if (Layout[I] == Type::Ref)
        mark(O->slots()[I].R, Work);
  }

  Object **Link = &AllObjects;
  while (*Link) {
    Object *O = *Link;
    if (O->Mark) {
      O->Mark = 0;
      Link = &O->NextAlloc;
      continue;
    }
    *Link = O->NextAlloc;
    Stats.UsedBytes -= Object::allocBytes(O->NumSlots);
    ::operator delete(static_cast<void *>(O));
    ++Swept;
  }

  Stats.GcCycles += GcPauseCycles + GcMarkCyclesPerObject * Marked +
                    GcSweepCyclesPerObject * Swept;
  UsedApprox.store(Stats.UsedBytes, std::memory_order_relaxed);
}

} // namespace dchm
