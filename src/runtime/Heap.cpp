//===-- runtime/Heap.cpp - Allocator and mark-sweep collector --------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include "support/Debug.h"

#include <cstdio>
#include <new>

namespace dchm {

namespace {
// Simulated-cycle cost model for collection: a pause constant plus per-object
// mark and sweep work. Chosen so GC is a visible but secondary cost for the
// 50 MB-heap applications and a first-order cost for the allocation-heavy
// SPECjbb-like workloads, matching the paper's observation that jbb2005 is
// much more memory-aggressive than jbb2000.
constexpr uint64_t GcPauseCycles = 20000;
constexpr uint64_t GcMarkCyclesPerObject = 24;
constexpr uint64_t GcSweepCyclesPerObject = 6;
} // namespace

Heap::Heap(size_t BudgetBytes) : Budget(BudgetBytes) {
  DCHM_CHECK(Budget >= 4096, "heap budget too small");
}

Heap::~Heap() {
  Object *O = AllObjects;
  while (O) {
    Object *Next = O->NextAlloc;
    ::operator delete(static_cast<void *>(O));
    O = Next;
  }
}

Object *Heap::allocateRaw(uint32_t NumSlots) {
  size_t Bytes = Object::allocBytes(NumSlots);
  if (Stats.UsedBytes + Bytes > Budget && Roots)
    collect();
  // Soft budget: proceed even when the collection did not free enough (the
  // run stays deterministic; cycles for the attempted GC were charged), but
  // record the overrun as a sticky recoverable error the embedder can
  // surface instead of silently pretending the heap fit.
  if (Stats.UsedBytes + Bytes > Budget && !BudgetErr) {
    char Buf[160];
    std::snprintf(Buf, sizeof(Buf),
                  "heap budget exhausted: %zu bytes live + %zu requested "
                  "exceeds budget of %zu bytes%s",
                  Stats.UsedBytes, Bytes, Budget,
                  Roots ? " after collection" : " (no GC roots registered)");
    BudgetErr = VMError::error(Buf);
  }
  void *Mem = ::operator new(Bytes);
  Object *O = new (Mem) Object();
  O->NumSlots = NumSlots;
  O->NextAlloc = AllObjects;
  AllObjects = O;
  Stats.UsedBytes += Bytes;
  Stats.PeakBytes = std::max(Stats.PeakBytes, Stats.UsedBytes);
  Stats.BytesAllocated += Bytes;
  Stats.ObjectsAllocated++;
  for (uint32_t I = 0; I < NumSlots; ++I)
    O->slots()[I] = zeroValue();
  return O;
}

Object *Heap::allocateInstance(const ClassInfo &C, TIB *Tib) {
  DCHM_CHECK(Tib != nullptr, "instance needs a TIB");
  Object *O = allocateRaw(static_cast<uint32_t>(C.SlotTypes.size()));
  O->Tib = Tib;
  O->IsArray = false;
  return O;
}

Object *Heap::allocateArray(Type ElemTy, int64_t Len) {
  DCHM_CHECK(Len >= 0, "negative array length");
  DCHM_CHECK(Len <= 0x7FFFFFFF, "array too large");
  Object *O = allocateRaw(static_cast<uint32_t>(Len));
  O->Tib = nullptr;
  O->IsArray = true;
  O->ElemTy = ElemTy;
  return O;
}

void Heap::mark(Object *O, std::vector<Object *> &Work) {
  if (!O || O->Mark)
    return;
  O->Mark = 1;
  Work.push_back(O);
}

void Heap::collect() {
  DCHM_CHECK(Roots, "collect() without a root provider");
  Stats.GcCount++;
  uint64_t Marked = 0, Swept = 0;

  std::vector<Object *> Work;
  std::vector<Object *> RootSet;
  Roots->enumerateRoots(RootSet);
  for (RootProvider *Extra : ExtraRoots)
    Extra->enumerateRoots(RootSet);
  for (Object *O : RootSet)
    mark(O, Work);

  while (!Work.empty()) {
    Object *O = Work.back();
    Work.pop_back();
    ++Marked;
    if (O->IsArray) {
      if (O->ElemTy == Type::Ref)
        for (uint32_t I = 0; I < O->NumSlots; ++I)
          mark(O->slots()[I].R, Work);
      continue;
    }
    const std::vector<Type> &Layout = O->Tib->Cls->SlotTypes;
    for (uint32_t I = 0; I < O->NumSlots; ++I)
      if (Layout[I] == Type::Ref)
        mark(O->slots()[I].R, Work);
  }

  Object **Link = &AllObjects;
  while (*Link) {
    Object *O = *Link;
    if (O->Mark) {
      O->Mark = 0;
      Link = &O->NextAlloc;
      continue;
    }
    *Link = O->NextAlloc;
    Stats.UsedBytes -= Object::allocBytes(O->NumSlots);
    ::operator delete(static_cast<void *>(O));
    ++Swept;
  }

  Stats.GcCycles += GcPauseCycles + GcMarkCyclesPerObject * Marked +
                    GcSweepCyclesPerObject * Swept;
}

} // namespace dchm
