//===-- runtime/CompiledMethod.h - Compiled code artifact ------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compiled method: the MiniVM analogue of Jikes' VM_CompiledMethod. The
/// "machine code" is optimized IR executed by the costed interpreter; the
/// code-size and compile-time figures of the paper (Figures 10 and 11) are
/// modeled from the emitted instruction count and the optimization work done.
/// A mutable method has one *general* compiled method plus one *special*
/// compiled method per hot state (StateIndex >= 0), generated together when
/// the method is recompiled at a high optimization level (paper Figure 5).
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_RUNTIME_COMPILEDMETHOD_H
#define DCHM_RUNTIME_COMPILEDMETHOD_H

#include "ir/Function.h"
#include "ir/Ids.h"
#include "runtime/InlineCache.h"

#include <cstdint>
#include <vector>

namespace dchm {

struct MethodInfo;

/// One compiled version of a method.
class CompiledMethod {
public:
  CompiledMethod(MethodInfo &M, IRFunction CodeIn, int OptLevel,
                 int StateIndex, uint64_t CompileCycles)
      : Method(&M), Code(std::move(CodeIn)), OptLevel(OptLevel),
        StateIndex(StateIndex), CompileCycles(CompileCycles) {
    // Modeled machine-code footprint: a fixed header plus bytes per emitted
    // instruction. The baseline-ish opt0 translation is less dense than
    // optimized code, mirroring Jikes' baseline-vs-opt code size ratio.
    CodeBytes = 32 + Code.Insts.size() * (OptLevel == 0 ? 14 : 10);
    // Assign one inline-cache site per call instruction in this version's
    // body. Sites belong to the compiled code, not the method: recompiling
    // produces fresh (cold) sites, like a JIT emitting fresh cache stubs.
    uint32_t NumSites = 0;
    for (Instruction &I : Code.Insts)
      I.IcSlot = isCall(I.Op) ? NumSites++ : NoIcSlot;
    IcSites.resize(NumSites);
  }

  MethodInfo &method() const { return *Method; }
  const IRFunction &code() const { return Code; }
  int optLevel() const { return OptLevel; }
  /// Hot state this code is specialized for, or -1 for the general version.
  int stateIndex() const { return StateIndex; }
  bool isSpecialized() const { return StateIndex >= 0; }
  size_t codeBytes() const { return CodeBytes; }
  uint64_t compileCycles() const { return CompileCycles; }

  /// Invalidation marker (the replaced version stays allocated because
  /// active frames may still execute it, as in Jikes).
  bool isInvalidated() const { return Invalidated; }
  void invalidate() { Invalidated = true; }

  /// Inline-cache site for a call instruction (indexed by Instruction::
  /// IcSlot). Mutated by the interpreter during execution; guarded against
  /// dispatch-structure changes by the Program's code epoch.
  InlineCacheSite &icSite(uint32_t Slot) { return IcSites[Slot]; }
  size_t numIcSites() const { return IcSites.size(); }

private:
  MethodInfo *Method;
  IRFunction Code;
  int OptLevel;
  int StateIndex;
  uint64_t CompileCycles;
  size_t CodeBytes;
  bool Invalidated = false;
  std::vector<InlineCacheSite> IcSites; ///< one per call site in Code
};

} // namespace dchm

#endif // DCHM_RUNTIME_COMPILEDMETHOD_H
