//===-- runtime/CompiledMethod.h - Compiled code artifact ------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compiled method: the MiniVM analogue of Jikes' VM_CompiledMethod. The
/// "machine code" is optimized IR executed by the costed interpreter; the
/// code-size and compile-time figures of the paper (Figures 10 and 11) are
/// modeled from the emitted instruction count and the optimization work done.
/// A mutable method has one *general* compiled method plus one *special*
/// compiled method per hot state (StateIndex >= 0), generated together when
/// the method is recompiled at a high optimization level (paper Figure 5).
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_RUNTIME_COMPILEDMETHOD_H
#define DCHM_RUNTIME_COMPILEDMETHOD_H

#include "ir/Function.h"
#include "ir/Ids.h"
#include "runtime/InlineCache.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace dchm {

struct MethodInfo;

/// One compiled version of a method.
///
/// A CompiledMethod may be created as a *pending shell*: installable in
/// dispatch structures immediately (its modeled compile cycles are already
/// charged), while the host-side optimization work that produces the body
/// runs on a CompilePipeline worker. finalizeCode() publishes the body with
/// a release store on ReadyFlag; the interpreter checks ready() (acquire) at
/// its invocation safepoint and blocks until the body lands. A sync-created
/// CompiledMethod is born ready, so the check is a single always-true load.
class CompiledMethod {
public:
  CompiledMethod(MethodInfo &M, IRFunction CodeIn, int OptLevel,
                 int StateIndex, uint64_t CompileCycles)
      : CompiledMethod(M, OptLevel, StateIndex, CompileCycles) {
    finalizeCode(std::move(CodeIn));
  }

  /// Pending-shell constructor: no body yet; finalizeCode() must follow.
  CompiledMethod(MethodInfo &M, int OptLevel, int StateIndex,
                 uint64_t CompileCycles)
      : Method(&M), OptLevel(OptLevel), StateIndex(StateIndex),
        CompileCycles(CompileCycles) {}

  /// Publishes the finished body. Called exactly once, either inline from
  /// the sync constructor or from a pipeline worker thread; every other
  /// thread observes the body only through a ready() acquire.
  void finalizeCode(IRFunction CodeIn) {
    Code = std::move(CodeIn);
    // Modeled machine-code footprint: a fixed header plus bytes per emitted
    // instruction. The baseline-ish opt0 translation is less dense than
    // optimized code, mirroring Jikes' baseline-vs-opt code size ratio.
    CodeBytes = 32 + Code.Insts.size() * (OptLevel == 0 ? 14 : 10);
    // Assign one inline-cache site per call instruction in this version's
    // body. Sites belong to the compiled code, not the method: recompiling
    // produces fresh (cold) sites, like a JIT emitting fresh cache stubs.
    uint32_t NumSites = 0;
    for (Instruction &I : Code.Insts)
      I.IcSlot = isCall(I.Op) ? NumSites++ : NoIcSlot;
    IcSites.resize(NumSites);
    ReadyFlag.store(true, std::memory_order_release);
  }

  /// True once the body is published. Pairs with finalizeCode()'s release.
  bool ready() const { return ReadyFlag.load(std::memory_order_acquire); }

  MethodInfo &method() const { return *Method; }
  const IRFunction &code() const { return Code; }
  int optLevel() const { return OptLevel; }
  /// Hot state this code is specialized for, or -1 for the general version.
  /// A cache-shared specialized version keeps the index it was first
  /// compiled for; routing goes by Specials slot / TIB, never this field.
  int stateIndex() const { return StateIndex; }
  bool isSpecialized() const { return StateIndex >= 0; }
  size_t codeBytes() const { return CodeBytes; }
  uint64_t compileCycles() const { return CompileCycles; }

  /// Deterministic size estimate charged against the code budget at compile
  /// *request* time (CodeBytes only exists once an async body finalizes, so
  /// budget accounting cannot use it without diverging between sync and
  /// async hosts). Set by the compiler when the shell is created.
  size_t budgetBytes() const { return BudgetBytes; }
  void setBudgetBytes(size_t N) { BudgetBytes = N; }

  /// Drops the body IR of a retired version (epoch-based reclamation after
  /// plan retirement / budget eviction). The CompiledMethod object itself
  /// stays allocated forever, Jikes-style; CodeBytes is kept so code-size
  /// metrics remain stable. Only legal once no dispatch structure or frame
  /// can reach this version.
  void releaseBody() {
    Code = IRFunction();
    IcSites.clear();
    IcSites.shrink_to_fit();
    BodyReleased = true;
  }
  bool bodyReleased() const { return BodyReleased; }

  /// Number of Specials slots this version serves: 1, or more when the
  /// specialization cache found hot states indistinguishable to the method.
  unsigned shareCount() const { return ShareCount; }
  void addShare() { ++ShareCount; }

  /// Invalidation marker (the replaced version stays allocated because
  /// active frames may still execute it, as in Jikes).
  bool isInvalidated() const { return Invalidated; }
  void invalidate() { Invalidated = true; }

  /// Inline-cache site for a call instruction (indexed by Instruction::
  /// IcSlot). Mutated by the interpreter during execution; guarded against
  /// dispatch-structure changes by the Program's code epoch.
  InlineCacheSite &icSite(uint32_t Slot) { return IcSites[Slot]; }
  size_t numIcSites() const { return IcSites.size(); }

private:
  MethodInfo *Method;
  IRFunction Code;
  int OptLevel;
  int StateIndex;
  uint64_t CompileCycles;
  size_t CodeBytes = 0;
  size_t BudgetBytes = 0;
  unsigned ShareCount = 1;
  bool Invalidated = false;
  bool BodyReleased = false;
  std::atomic<bool> ReadyFlag{false};
  std::vector<InlineCacheSite> IcSites; ///< one per call site in Code
};

} // namespace dchm

#endif // DCHM_RUNTIME_COMPILEDMETHOD_H
