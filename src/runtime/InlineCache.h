//===-- runtime/InlineCache.h - Mutation-safe inline caches ---*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-call-site inline caches for the interpreter's dispatch fast path,
/// memoizing the (receiver TIB -> compiled code) resolution of virtual and
/// interface calls and the JTOC / declaring-class-TIB lookup of static and
/// special calls.
///
/// Correctness under dynamic class hierarchy mutation rests on two rules:
///
///  1. Caches are keyed on the receiver's *TIB pointer*, never its class.
///     Part I of the distributed mutation algorithm re-points an object's
///     TIB between the class TIB and special TIBs; a swung object simply
///     keys a different cache entry, so no invalidation is needed for
///     object TIB swings (mirroring the paper's "zero dispatch overhead"
///     property of TIB swapping).
///
///  2. Any write to a dispatch structure — a TIB or JTOC code-pointer
///     patch (part I static branch, part II recompilation routing), a
///     lazy/adaptive code installation, or an IMT rewiring at plan install
///     — bumps Program::codeEpoch(). A cache site stamped with an older
///     epoch is treated as empty, so a stale cache can never bypass a
///     freshly installed special (or general) TIB entry.
///
/// Interface-call entries additionally carry the simulated extra cycles of
/// the seed resolution path (TIB-offset extra load, conflict-stub search),
/// so the CostModel accounting is bit-identical with caching on or off.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_RUNTIME_INLINECACHE_H
#define DCHM_RUNTIME_INLINECACHE_H

#include <cstdint>

namespace dchm {

class CompiledMethod;

/// Cache associativity: a monomorphic site uses one way; megamorphic sites
/// rotate through the ways (classic polymorphic-inline-cache depth).
constexpr unsigned IcWays = 4;

/// One (key -> target) entry of a polymorphic inline cache.
struct IcEntry {
  /// Receiver TIB for virtual/interface sites; the site itself for
  /// static/special sites (whose resolution has no receiver component).
  const void *Key = nullptr;
  CompiledMethod *Target = nullptr;
  /// Simulated cycles the seed resolution would charge beyond the base
  /// dispatch cost (interface TIB-offset load or conflict-stub search).
  uint64_t ExtraCycles = 0;
};

/// One call site's cache: a few ways plus the code epoch it was filled in.
struct InlineCacheSite {
  uint64_t Epoch = 0; ///< valid only while == Program::codeEpoch()
  uint8_t NextVictim = 0;
  IcEntry Ways[IcWays];

  /// Looks up Key; returns the entry or null. A site stamped with a stale
  /// epoch always misses (the caller refills it via the slow path).
  const IcEntry *lookup(const void *Key, uint64_t CurEpoch) const {
    if (Epoch != CurEpoch)
      return nullptr;
    for (const IcEntry &E : Ways)
      if (E.Key == Key)
        return &E;
    return nullptr;
  }

  /// Installs (Key -> Target) after a slow-path resolution. Entries from an
  /// older epoch are discarded wholesale first.
  void insert(const void *Key, CompiledMethod *Target, uint64_t ExtraCycles,
              uint64_t CurEpoch) {
    if (Epoch != CurEpoch) {
      for (IcEntry &E : Ways)
        E = IcEntry{};
      Epoch = CurEpoch;
      NextVictim = 0;
    }
    IcEntry &E = Ways[NextVictim];
    NextVictim = static_cast<uint8_t>((NextVictim + 1) % IcWays);
    E.Key = Key;
    E.Target = Target;
    E.ExtraCycles = ExtraCycles;
  }
};

} // namespace dchm

#endif // DCHM_RUNTIME_INLINECACHE_H
