//===-- runtime/Program.h - Class registry and linker ----------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program is the MiniVM's class universe: users define classes, fields, and
/// methods (with IRFunction bodies) through it, then link() resolves field
/// slots, builds vtables with override resolution, lays out IMTs, creates
/// class TIBs and the JTOC, and resolves every symbolic reference in every
/// method body. After linking, the Program also provides the compiled-code
/// installation primitive (`installCode`) with the exact Jikes semantics the
/// paper builds on: a new compiled method replaces the old one in the JTOC
/// if static, or in the class TIB and the subclasses' TIBs if virtual.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_RUNTIME_PROGRAM_H
#define DCHM_RUNTIME_PROGRAM_H

#include "runtime/Entities.h"
#include "runtime/TIB.h"
#include "runtime/Value.h"
#include "support/Error.h"

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dchm {

/// The class universe plus its linked runtime structures (TIBs, JTOC).
class Program {
public:
  Program();
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  // --- Definition API (before link) ---------------------------------------
  /// Defines a class. Super == NoClassId makes it a root class.
  ClassId defineClass(const std::string &Name, ClassId Super = NoClassId,
                      uint32_t Package = 0);
  /// Defines an interface (methods added to it must be abstract).
  ClassId defineInterface(const std::string &Name, uint32_t Package = 0);
  /// Declares that Cls implements Iface.
  void addInterface(ClassId Cls, ClassId Iface);
  FieldId defineField(ClassId Owner, const std::string &Name, Type Ty,
                      bool IsStatic, Access Acc = Access::Public);
  MethodId defineMethod(ClassId Owner, const std::string &Name, Type RetTy,
                        std::vector<Type> ParamTys, MethodFlags Flags = {});
  /// Attaches the bytecode body built with FunctionBuilder.
  void setBody(MethodId M, IRFunction F);

  /// Resolves everything. Aborts with a diagnostic on ill-formed input
  /// (the library is exception-free; a bad program is a caller bug).
  void link();
  /// Recoverable variant of link(): returns a VMError diagnostic instead of
  /// aborting on ill-formed input. On failure the Program stays unlinked
  /// (and must be discarded). The assembler and tools use this so malformed
  /// .mvm input never kills the process.
  VMError tryLink();
  bool isLinked() const { return Linked; }

  // --- Accessors -----------------------------------------------------------
  ClassInfo &cls(ClassId Id);
  const ClassInfo &cls(ClassId Id) const;
  FieldInfo &field(FieldId Id);
  const FieldInfo &field(FieldId Id) const;
  MethodInfo &method(MethodId Id);
  const MethodInfo &method(MethodId Id) const;
  size_t numClasses() const { return Classes.size(); }
  size_t numFields() const { return Fields.size(); }
  size_t numMethods() const { return Methods.size(); }

  /// Name lookups (linear; intended for tests, tools, and workload setup).
  ClassId findClass(const std::string &Name) const;
  MethodId findMethod(ClassId Cls, const std::string &Name) const;
  FieldId findField(ClassId Cls, const std::string &Name) const;

  /// Subtype test used by InstanceOf/CheckCast. Goes through class metadata
  /// (the TIB type-information entry), never TIB identity.
  bool isSubtype(ClassId Sub, ClassId Sup) const;

  // --- JTOC ---------------------------------------------------------------
  Value getStaticSlot(uint32_t Slot) const { return StaticSlots[Slot]; }
  void setStaticSlot(uint32_t Slot, Value V) { StaticSlots[Slot] = V; }
  size_t numStaticSlots() const { return StaticSlots.size(); }
  Type staticSlotType(uint32_t Slot) const { return StaticSlotTypes[Slot]; }

  /// JTOC compiled-code entry for a static method (null = not yet compiled).
  CompiledMethod *staticEntry(MethodId M) const { return StaticEntries[M]; }
  void setStaticEntry(MethodId M, CompiledMethod *CM) {
    StaticEntries[M] = CM;
    bumpCodeEpoch();
  }

  // --- Dispatch-structure epoch (inline-cache invalidation) ----------------
  /// Monotonic counter bumped on every write to a dispatch structure (TIB
  /// slot, JTOC entry, IMT entry): code installation, mutation code-pointer
  /// routing, and IMT rewiring. Inline caches stamped with an older epoch
  /// are stale and must re-resolve, so a cached target can never bypass a
  /// freshly installed special (or general) code pointer. Starts at 1 so a
  /// zero-initialized cache site is never spuriously valid.
  uint64_t codeEpoch() const {
    return CodeEpoch.load(std::memory_order_acquire);
  }
  void bumpCodeEpoch() { CodeEpoch.fetch_add(1, std::memory_order_release); }

  // --- Code installation (Jikes default semantics) -------------------------
  /// Installs CM as the current general compiled code of M: JTOC entry for
  /// statics; for non-statics the declaring class TIB slot, the declaring
  /// class's special TIBs, non-overriding subclasses' TIBs (class + special),
  /// and any Direct IMT entries that dispatch to M. The mutation engine
  /// overwrites special-TIB entries afterwards per algorithm part II.
  void installCode(MethodInfo &M, CompiledMethod *CM);

  // --- TIB management ------------------------------------------------------
  /// Clones the class TIB of Cls into a new special TIB for hot state
  /// StateIndex and registers it on the class. Used by the mutation engine.
  TIB *createSpecialTib(ClassId Cls, int StateIndex);

  /// Total bytes of all class TIBs / all special TIBs (Figure 12 metric).
  size_t classTibBytes() const;
  size_t specialTibBytes() const;

  // --- Epoch-based reclamation (plan retirement / eviction) ----------------
  /// Moves a special TIB created by createSpecialTib onto the retired list,
  /// stamped with the current code epoch. The TIB stops counting toward
  /// specialTibBytes() immediately but stays allocated until
  /// drainReclaimList proves no stale reference can reach it.
  void retireSpecialTib(TIB *T);
  /// Queues a specialized compiled body for release (the CompiledMethod
  /// object itself stays owned by its MethodInfo forever, Jikes-style; only
  /// the body IR is dropped).
  void retireCompiledBody(CompiledMethod *CM);
  /// Frees retired TIBs whose epoch stamp predates the current code epoch
  /// and that no live object still points at (InUse = TIBs reachable from
  /// the heap), and releases retired bodies once finalized. Call only when
  /// no interpreter frame is live.
  void drainReclaimList(const std::unordered_set<const TIB *> &InUse);
  size_t retiredTibCount() const { return RetiredTibs.size(); }
  size_t reclaimedTibCount() const { return ReclaimedTibs; }
  size_t reclaimedBodyCount() const { return ReclaimedBodies; }

private:
  VMError computeAncestry();
  void layoutFields();
  void buildVTables();
  VMError buildImts();
  void createTibs();
  VMError resolveBodies();
  const MethodInfo *findVirtualBySignature(const ClassInfo &C,
                                           const MethodInfo &Sig) const;

  std::deque<ClassInfo> Classes;
  std::deque<FieldInfo> Fields;
  std::deque<MethodInfo> Methods;
  std::unordered_map<std::string, ClassId> ClassByName;

  std::vector<Value> StaticSlots;
  std::vector<Type> StaticSlotTypes;
  std::vector<CompiledMethod *> StaticEntries;

  std::vector<std::unique_ptr<TIB>> OwnedTibs;
  std::vector<std::unique_ptr<IMT>> OwnedImts;

  /// Retired-but-not-yet-reclaimed special TIBs / specialized bodies, each
  /// stamped with the code epoch at retirement time.
  struct RetiredTib {
    std::unique_ptr<TIB> T;
    uint64_t Epoch;
  };
  struct RetiredBody {
    CompiledMethod *CM;
    uint64_t Epoch;
  };
  std::vector<RetiredTib> RetiredTibs;
  std::vector<RetiredBody> RetiredBodies;
  size_t ReclaimedTibs = 0;
  size_t ReclaimedBodies = 0;

  /// Atomic: mutator threads stamp inline caches with the current epoch
  /// while rendezvous closures bump it.
  std::atomic<uint64_t> CodeEpoch{1};
  bool Linked = false;
};

} // namespace dchm

#endif // DCHM_RUNTIME_PROGRAM_H
