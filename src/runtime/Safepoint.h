//===-- runtime/Safepoint.h - Mutator rendezvous protocol ---------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// The paper's distributed mutation algorithm assumes the runtime can pause
// the world before swinging TIB pointers, JTOC entries and IMT slots. With
// one mutator that pause is implicit — any host call out of the interpreter
// is "the world stopped". With N mutators it has to be an explicit protocol:
//
//   * every mutator thread registers a SafepointSlot carrying its poll flag;
//   * the interpreter polls the flag at invocation boundaries and backedges
//     (one relaxed load on the fast path);
//   * a thread that wants the world stopped becomes the *leader*: it raises
//     every other slot's flag, waits until each peer is parked at its poll
//     site (or blocked in a host wait, which counts as safe), runs a closure,
//     and releases the world.
//
// Leadership is exclusive and queued; a parked mutator can be the next
// leader. The closure runs with every other registered thread either parked
// or blocked, so it may walk the heap, swing dispatch structures and free
// code with single-threaded reasoning.
//
//===----------------------------------------------------------------------===//

#ifndef DCHM_RUNTIME_SAFEPOINT_H
#define DCHM_RUNTIME_SAFEPOINT_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dchm {

class SafepointManager;

/// Per-mutator-thread rendezvous state. The interpreter holds a pointer to
/// its thread's slot and calls poll() at safepoint sites.
class SafepointSlot {
public:
  /// True when a leader wants this thread parked. One relaxed load; the
  /// acquire ordering mutators need is established inside park().
  bool pollRequested() const {
    return PollFlag.load(std::memory_order_relaxed);
  }

  /// Fast-path poll: parks iff a rendezvous is pending.
  void poll() {
    if (pollRequested())
      park();
  }

  /// Slow path: blocks until the leader releases the world.
  void park();

  /// Marks this thread safe while it waits on a host primitive (compile
  /// waitFor, thread join). A blocked thread counts as stopped for
  /// rendezvous purposes; leaveBlocked() re-parks if a rendezvous is still
  /// active so the thread never runs guest code with the world stopped.
  void enterBlocked();
  void leaveBlocked();

  unsigned threadIndex() const { return Index; }

private:
  friend class SafepointManager;

  enum class State : uint8_t { Running, Parked, Blocked };

  SafepointManager *Mgr = nullptr;
  unsigned Index = 0;
  std::thread::id Tid;       ///< registering thread; identifies the leader
  std::atomic<bool> PollFlag{false};
  State St = State::Running; ///< guarded by the manager's mutex
};

/// RAII guard for host waits: marks the slot Blocked for the scope. Null
/// slot (single-mutator mode) is a no-op.
class SafepointBlockedScope {
public:
  explicit SafepointBlockedScope(SafepointSlot *S) : Slot(S) {
    if (Slot)
      Slot->enterBlocked();
  }
  ~SafepointBlockedScope() {
    if (Slot)
      Slot->leaveBlocked();
  }
  SafepointBlockedScope(const SafepointBlockedScope &) = delete;
  SafepointBlockedScope &operator=(const SafepointBlockedScope &) = delete;

private:
  SafepointSlot *Slot;
};

/// The thread registry plus the request/park/resume rendezvous.
class SafepointManager {
public:
  SafepointManager() = default;
  SafepointManager(const SafepointManager &) = delete;
  SafepointManager &operator=(const SafepointManager &) = delete;

  /// Registers the calling thread as a mutator. Blocks while a rendezvous
  /// is in progress (a new mutator must not appear under a stopped world).
  SafepointSlot *registerThread();

  /// Removes the calling thread's slot. Any leader waiting on this thread
  /// is re-notified. The slot pointer is dead after this returns.
  void unregisterThread(SafepointSlot *S);

  /// Runs Fn with every *other* registered mutator parked or blocked.
  /// Callable from a registered mutator (which becomes the leader), from an
  /// unregistered host thread, and — re-entrantly — from inside a running
  /// closure (Fn then executes inline; the world is already stopped).
  void run(const std::function<void()> &Fn);

  /// Explicit begin/end form used by tests. beginRendezvous() returns false
  /// — the nested-request rejection — when the calling thread already leads
  /// an open rendezvous; run() instead treats that case as re-entrant.
  bool beginRendezvous();
  void endRendezvous();

  /// True while a closure is running with the world stopped and the calling
  /// thread is the leader.
  bool currentThreadLeads() const;

  /// Number of currently registered mutator threads.
  size_t registered() const;

  /// Total rendezvous served (leadership grants). Host-side telemetry.
  uint64_t rendezvousCount() const {
    return Rendezvous.load(std::memory_order_relaxed);
  }

private:
  friend class SafepointSlot;

  bool allOthersStopped(const SafepointSlot *Leader) const;
  void beginLocked(std::unique_lock<std::mutex> &L, SafepointSlot *Self);
  void endLocked(std::unique_lock<std::mutex> &L);
  SafepointSlot *selfLocked() const;

  mutable std::mutex Mu;
  std::condition_variable ParkCv;   ///< leader waits for peers to stop
  std::condition_variable ResumeCv; ///< parked peers wait for release
  std::condition_variable LeaderCv; ///< queued leaders / registrations wait
  std::vector<SafepointSlot *> Slots;
  bool Active = false;                   ///< a rendezvous holds the world
  std::thread::id LeaderThread;          ///< valid while Active
  std::atomic<uint64_t> Rendezvous{0};
};

} // namespace dchm

#endif // DCHM_RUNTIME_SAFEPOINT_H
