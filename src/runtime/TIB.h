//===-- runtime/TIB.h - Type information blocks and the IMT ---*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TIB (Type Information Block) is Jikes' virtual function table: per
/// class, an array of compiled-code pointers plus a type-information entry.
/// Dynamic class hierarchy mutation works by cloning a class TIB into one
/// "special TIB" per hot state and re-pointing object TIB pointers between
/// them. Type tests (`instanceof`/`checkcast`) must consult the TIB's
/// type-information entry (`Cls`), never TIB identity, because a mutated
/// object's TIB is not the class TIB (paper section 3.2.3).
///
/// The IMT (Interface Method Table) is the fixed-size hashed dispatch table
/// for interface calls. A single class TIB and all of its special TIBs share
/// one IMT; to make interface dispatch respect mutation, single-method slots
/// of mutable classes store a *TIB slot offset* (one extra load through the
/// object's current TIB) instead of a direct code pointer.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_RUNTIME_TIB_H
#define DCHM_RUNTIME_TIB_H

#include "ir/Ids.h"

#include <cstdint>
#include <vector>

namespace dchm {

class CompiledMethod;
struct ClassInfo;

/// Number of IMT slots; a fixed static compilation constant in Jikes.
constexpr uint32_t NumImtSlots = 8;

/// One IMT slot.
struct ImtEntry {
  enum class Kind : uint8_t {
    Empty,     ///< No interface method hashes here.
    Direct,    ///< One method; slot holds the compiled-code pointer.
    TibOffset, ///< One method of a *mutable* class; slot holds a TIB offset
               ///< so dispatch sees the object's current (special) TIB.
    Conflict,  ///< Multiple methods; a stub searches by interface method id.
  };
  Kind K = Kind::Empty;

  /// Direct: the implementing method (for code-pointer updates on
  /// recompilation) and its current compiled code.
  MethodId DirectImpl = NoMethodId;
  CompiledMethod *DirectCode = nullptr;

  /// TibOffset: virtual slot index to read through the receiver's TIB.
  uint32_t VSlot = 0;

  /// Conflict: (interface method id, TIB slot of the implementation) pairs,
  /// searched linearly by the conflict stub.
  std::vector<std::pair<MethodId, uint32_t>> Table;
};

/// Interface method table, shared by a class TIB and its special TIBs.
struct IMT {
  ImtEntry Slots[NumImtSlots];
};

/// A virtual function table: the class TIB (StateIndex == -1) or a special
/// TIB corresponding to one hot state of a mutable class.
struct TIB {
  /// Type-information entry: the class this TIB describes. Identical across
  /// a class TIB and all of its special TIBs.
  ClassInfo *Cls = nullptr;
  /// Which hot state this TIB matches, or -1 for the class TIB.
  int StateIndex = -1;
  /// Compiled-code pointer per method slot.
  std::vector<CompiledMethod *> Slots;
  /// Shared interface method table (null for classes implementing nothing).
  IMT *Imt = nullptr;

  bool isSpecial() const { return StateIndex >= 0; }

  /// Modeled memory footprint in bytes. The paper reports TIB space on a
  /// 32-bit VM: a handful of header words (type information, superclass ids,
  /// IMT pointer, GC metadata) plus one word per method slot.
  size_t sizeBytes() const { return (6 + Slots.size()) * 4; }
};

} // namespace dchm

#endif // DCHM_RUNTIME_TIB_H
