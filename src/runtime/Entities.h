//===-- runtime/Entities.h - Classes, fields, methods ----------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metadata records for the program entities the VM manages. These mirror
/// the Jikes structures the paper manipulates: each class owns a class TIB
/// (plus special TIBs once mutated), each method owns its bytecode and the
/// set of compiled methods produced for it (one general version and, for
/// mutable methods, one specialized version per hot state, sharing a single
/// hotness sample count per paper section 3.2.3).
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_RUNTIME_ENTITIES_H
#define DCHM_RUNTIME_ENTITIES_H

#include "ir/Function.h"
#include "ir/Ids.h"
#include "runtime/CompiledMethod.h"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

namespace dchm {

struct TIB;
struct IMT;

/// Java-style accessibility, consumed by the object-lifetime-constant
/// analysis (a field that is private or package-scoped cannot be modified by
/// classes outside its package; see paper section 4).
enum class Access : uint8_t { Private, Package, Public };

/// Metadata for one (static or instance) field.
struct FieldInfo {
  FieldId Id = NoFieldId;
  ClassId Owner = NoClassId;
  std::string Name;
  Type Ty = Type::I64;
  bool IsStatic = false;
  Access Acc = Access::Public;

  /// Set by the mutation engine when the installed MutationPlan names this
  /// field a state field; the interpreter's PutField/PutStatic fast path
  /// checks this flag to fire the distributed mutation algorithm (part I).
  bool IsStateField = false;

  /// Instance fields: slot index in the object. Static fields: JTOC slot.
  uint32_t Slot = 0;
};

/// Behavioral flags for a method declaration.
struct MethodFlags {
  bool IsStatic = false;
  bool IsPrivate = false;
  bool IsCtor = false;
  /// Declared abstract (interface methods; no body).
  bool IsAbstract = false;
};

/// Metadata plus runtime compilation state for one method.
struct MethodInfo {
  MethodId Id = NoMethodId;
  ClassId Owner = NoClassId;
  std::string Name;
  Type RetTy = Type::Void;
  /// Parameter types excluding the receiver.
  std::vector<Type> ParamTys;
  MethodFlags Flags;

  /// The "bytecode": the source-of-truth body every compilation starts from.
  IRFunction Bytecode;
  bool HasBody = false;

  /// TIB slot for non-static methods (virtual slot, or the per-class slot
  /// used by invokespecial static binding for private/ctor methods).
  /// Unused (0) for statics.
  uint32_t VSlot = 0;
  /// For virtual (overridable) methods: the method id whose slot this shares
  /// (the root declaration). Used to propagate compiled code to subclasses.
  MethodId SlotRoot = NoMethodId;

  // --- Runtime compilation state -----------------------------------------
  /// All compiled versions ever produced, owned here. Replaced versions stay
  /// allocated (frames may still reference them), matching Jikes' behavior
  /// of invalidating but not freeing compiled methods.
  std::vector<std::unique_ptr<CompiledMethod>> CompiledVersions;
  /// Current general (unspecialized) compiled code, or the lazy stub.
  CompiledMethod *General = nullptr;
  /// Current specialized code per hot state of the owning mutable class
  /// (empty when the method is not mutable or not yet opt2-compiled).
  std::vector<CompiledMethod *> Specials;
  /// Highest optimization level compiled so far (-1: only the stub exists).
  /// Atomic: concurrent mutators read it in the sampling pre-check while a
  /// rendezvous leader promotes; stores happen with the world stopped.
  std::atomic<int> CurOptLevel{-1};

  /// Hotness samples, shared between the general and all special compiled
  /// methods so specialization does not dilute hotness (paper section 3.2.3).
  /// Relaxed increments from every mutator thread; exact totals are only
  /// meaningful single-threaded or at a safepoint.
  std::atomic<uint64_t> SampleCount{0};
  /// Marked by the mutation engine: this method is a mutable method of a
  /// mutable class (candidate for per-state specialization).
  bool IsMutable = false;

  bool isVirtualDispatch() const {
    return !Flags.IsStatic && !Flags.IsPrivate && !Flags.IsCtor;
  }
  unsigned numArgsWithReceiver() const {
    return static_cast<unsigned>(ParamTys.size()) + (Flags.IsStatic ? 0 : 1);
  }
};

/// Metadata plus runtime dispatch structures for one class or interface.
struct ClassInfo {
  ClassId Id = NoClassId;
  std::string Name;
  ClassId Super = NoClassId;
  std::vector<ClassId> Interfaces; ///< Directly implemented interfaces.
  bool IsInterface = false;
  /// Package tag: two entities share a package iff tags match (models Java
  /// package-private accessibility for the OLC analysis).
  uint32_t Package = 0;

  std::vector<FieldId> Fields;   ///< Fields declared by this class.
  std::vector<MethodId> Methods; ///< Methods declared by this class.

  // --- Link products ------------------------------------------------------
  /// Types of all instance slots, superclass slots first (GC reference map).
  std::vector<Type> SlotTypes;
  /// Method occupying each TIB slot (inherited slots first).
  std::vector<MethodId> VTable;
  /// Superclass chain, self first, java.lang.Object-equivalent last.
  std::vector<ClassId> Ancestors;
  /// All interfaces implemented transitively (including super-interfaces).
  std::vector<ClassId> AllInterfaces;

  /// The class TIB (the "general VFT" of the paper). Owned by the Program.
  TIB *ClassTib = nullptr;
  /// Special TIBs, one per hot state, created by the mutation engine when
  /// the class has instance state fields. Owned by the Program.
  std::vector<TIB *> SpecialTibs;
  /// Interface method table shared by the class TIB and all special TIBs.
  IMT *Imt = nullptr;

  /// Set when the installed MutationPlan names this class mutable; index
  /// into the plan's mutable-class list.
  int MutableIndex = -1;
};

} // namespace dchm

#endif // DCHM_RUNTIME_ENTITIES_H
