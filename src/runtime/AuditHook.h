//===-- runtime/AuditHook.h - Runtime consistency audit hook --*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A narrow observer interface the interpreter and the mutation engine call
/// at the points where the dynamically mutated hierarchy is supposed to be
/// consistent: the interpreter's invocation-boundary safepoint, and the end
/// of every part I/II transition in the MutationManager. The production
/// implementation is testing/ConsistencyAuditor, which walks the heap and
/// the Program asserting the paper's invariants; the hook lives down here in
/// runtime/ so exec/ and mutation/ can call it without depending on the
/// testing library.
///
/// Implementations must be read-only with respect to simulated state: they
/// run on the app thread between instructions, and charging cycles or
/// touching stats from an audit would make audited and unaudited runs
/// diverge, destroying the determinism the auditor exists to protect.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_RUNTIME_AUDITHOOK_H
#define DCHM_RUNTIME_AUDITHOOK_H

namespace dchm {

/// Observer of runtime consistency checkpoints.
class AuditHook {
public:
  virtual ~AuditHook() = default;

  /// Called at the interpreter's invocation-boundary safepoint (the same
  /// point that blocks on pending background compiles): all dispatch
  /// structures are quiescent here. Fired on every method entry, so
  /// implementations are expected to sample (see ConsistencyAuditor's
  /// stride).
  virtual void onSafepoint() = 0;

  /// Called by the MutationManager after it finishes one transition of the
  /// distributed mutation algorithm (a part I store/ctor-exit action, a
  /// part II recompilation routing, or an online object migration). Where
  /// names the transition for diagnostics.
  virtual void onMutationTransition(const char *Where) = 0;
};

} // namespace dchm

#endif // DCHM_RUNTIME_AUDITHOOK_H
