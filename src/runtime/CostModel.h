//===-- runtime/CostModel.h - Simulated cycle cost model ------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic cycle costs standing in for the paper's 2.4 GHz Pentium 4.
/// Execution cost is charged per interpreted instruction plus dispatch
/// overheads; compilation cost is charged per compiled instruction per
/// optimization level. Absolute values are calibrated so the *relative*
/// behavior matches the paper: virtual dispatch through a special TIB costs
/// exactly the same as through the class TIB (the paper's "without any extra
/// overhead" property), state-field writes pay a small patch-code charge,
/// interface dispatch through a mutable class's IMT slot pays one extra
/// load, and opt2 compilation is an order of magnitude more expensive than
/// opt0 (Figure 11's compile-time story).
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_RUNTIME_COSTMODEL_H
#define DCHM_RUNTIME_COSTMODEL_H

#include "ir/Opcode.h"

#include <cstdint>

namespace dchm {

/// Simulated clock frequency: cycles per simulated second. Used by the
/// SPECjbb-like workloads to convert cycle windows into "seconds" and
/// throughput figures.
constexpr uint64_t CyclesPerSecond = 100'000'000;

namespace detail {
/// Per-opcode execution cost by exhaustive switch; the public opcodeCycles
/// reads the table precomputed from this at compile time (the lookup sits on
/// the interpreter's per-instruction fetch path).
constexpr uint64_t opcodeCyclesSwitch(Opcode Op) {
  switch (Op) {
  case Opcode::ConstI:
  case Opcode::ConstF:
  case Opcode::ConstNull:
  case Opcode::Move:
    return 1;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Neg:
    return 1;
  case Opcode::Mul:
    return 3;
  case Opcode::Div:
  case Opcode::Rem:
    return 20;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FNeg:
    return 2;
  case Opcode::FMul:
    return 4;
  case Opcode::FDiv:
    return 20;
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
  case Opcode::FCmpEQ:
  case Opcode::FCmpLT:
  case Opcode::FCmpLE:
    return 1;
  case Opcode::I2F:
  case Opcode::F2I:
    return 2;
  case Opcode::Br:
  case Opcode::Cbnz:
  case Opcode::Cbz:
    return 1;
  case Opcode::Ret:
    return 2;
  case Opcode::New:
    return 40; // allocation path: size lookup, bump, zeroing amortized
  case Opcode::NewArray:
    return 40;
  case Opcode::ALoad:
  case Opcode::AStore:
    return 2; // includes bounds check
  case Opcode::ALen:
    return 1;
  case Opcode::GetField:
  case Opcode::PutField:
  case Opcode::GetStatic:
  case Opcode::PutStatic:
    return 2;
  case Opcode::CallStatic:
  case Opcode::CallSpecial:
  case Opcode::CallVirtual:
  case Opcode::CallInterface:
    return 0; // charged via the dispatch costs below
  case Opcode::InstanceOf:
  case Opcode::CheckCast:
    return 4;
  case Opcode::ClassEq:
    return 2; // TIB load + id compare (the guard of a guarded inline)
  case Opcode::Print:
    return 10;
  }
  return 1;
}

struct OpcodeCycleTable {
  uint64_t Cycles[NumOpcodes] = {};
  constexpr OpcodeCycleTable() {
    for (unsigned I = 0; I < NumOpcodes; ++I)
      Cycles[I] = opcodeCyclesSwitch(static_cast<Opcode>(I));
  }
};
inline constexpr OpcodeCycleTable CycleTable{};
} // namespace detail

/// Per-opcode execution cost in cycles (dispatch overheads excluded).
inline uint64_t opcodeCycles(Opcode Op) {
  return detail::CycleTable.Cycles[static_cast<unsigned>(Op)];
}

/// Call and dispatch overheads (frame setup + the dispatch loads).
struct DispatchCost {
  static constexpr uint64_t StaticCall = 10;    ///< JTOC load + call
  static constexpr uint64_t SpecialCall = 10;   ///< class TIB slot + call
  static constexpr uint64_t VirtualCall = 13;   ///< object TIB + slot + call
  static constexpr uint64_t InterfaceCall = 16; ///< TIB + IMT + slot + call
  /// Extra load when a single-method IMT slot of a *mutable* class holds a
  /// TIB offset instead of a code pointer (paper section 3.2.3).
  static constexpr uint64_t ImtMutableExtraLoad = 2;
  /// Conflict-stub search when multiple interface methods share an IMT slot.
  static constexpr uint64_t ImtConflictStub = 12;
  /// Patch code run at an assignment of a state field: gather the state
  /// fields, compare against the hot states (algorithm part I entry).
  static constexpr uint64_t StateFieldPatchBase = 6;
  static constexpr uint64_t StateFieldPatchPerField = 3;
  /// Swinging an object TIB pointer or a TIB/JTOC code pointer.
  static constexpr uint64_t PointerSwing = 2;
};

/// Compilation cost per *input* (bytecode, post-inlining) instruction for
/// each optimization level. Recompiling a mutable method at opt2 generates
/// the general version plus every specialized version, so each hot state
/// adds roughly one more Opt2PerInst * size charge (Figure 11).
struct CompileCost {
  // Calibrated against the paper's Figure 11 bar labels (compilation is
  // 0.3%-3.1% of total execution time across the benchmark set).
  static constexpr uint64_t Opt0PerInst = 64;
  static constexpr uint64_t Opt1PerInst = 480;
  static constexpr uint64_t Opt2PerInst = 1100;
  static constexpr uint64_t PerCompile = 3000; ///< fixed plan/IR setup charge
  /// Specialized versions are generated "at the same time" as the opt2
  /// general compile (Figure 5) and reuse its compilation plan and inlining
  /// decisions; only constant substitution and final lowering re-run, so
  /// each extra version is much cheaper than a from-scratch opt2 compile.
  static constexpr uint64_t SpecialPerInst = 320;
  static constexpr uint64_t SpecialPerCompile = 800;

  static uint64_t perInst(int Level) {
    switch (Level) {
    case 0:
      return Opt0PerInst;
    case 1:
      return Opt1PerInst;
    default:
      return Opt2PerInst;
    }
  }
};

} // namespace dchm

#endif // DCHM_RUNTIME_COSTMODEL_H
