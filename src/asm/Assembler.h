//===-- asm/Assembler.h - MiniVM textual assembler ------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A textual front end for MiniVM programs, so workloads and experiments can
/// be authored without writing C++ builder code. The format mirrors the
/// FunctionBuilder API one-to-one:
///
/// \code
///   # SalaryDB, abbreviated
///   class Employee {
///     field salary: f64
///     method raise() -> void {
///       %s = getfield %this, Employee.salary
///       %i = constf 0.25
///       %n = fadd %s, %i
///       putfield %this, Employee.salary, %n
///       ret
///     }
///   }
///   class SalaryEmployee extends Employee {
///     field grade: i64 private
///     ctor init(%g: i64) {
///       putfield %this, SalaryEmployee.grade, %g
///       ret
///     }
///     method raise() -> void {
///       %g = getfield %this, SalaryEmployee.grade
///       %c = consti 2
///       %t = cmpeq %g, %c
///       cbz %t, @other
///       ...
///     @other:
///       ret
///     }
///   }
/// \endcode
///
/// Declarations are processed in a first pass (so forward references
/// between classes work), bodies in a second. Errors are reported with
/// line numbers; the assembler never aborts on bad input.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_ASM_ASSEMBLER_H
#define DCHM_ASM_ASSEMBLER_H

#include "runtime/Program.h"

#include <memory>
#include <string>

namespace dchm {

/// Result of assembling a source text.
struct AssemblyResult {
  /// The linked program, or null on error.
  std::unique_ptr<Program> P;
  /// First error, with a 1-based line number prefix ("line 12: ...").
  std::string Error;

  bool ok() const { return P != nullptr; }
};

/// Assembles MiniVM assembly source into a linked Program.
AssemblyResult assembleProgram(const std::string &Source);

} // namespace dchm

#endif // DCHM_ASM_ASSEMBLER_H
