//===-- asm/Assembler.cpp - MiniVM textual assembler ---------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"

#include "ir/Builder.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <optional>
#include <vector>

namespace dchm {

namespace {

// --- Lexer -------------------------------------------------------------

enum class Tok : uint8_t {
  Ident,   // class, field, foo, i64, ...
  Reg,     // %name
  Label,   // @name
  Int,     // 123, -4
  Float,   // 1.5, -0.25
  LBrace,
  RBrace,
  LParen,
  RParen,
  Comma,
  Colon,
  Dot,
  Arrow, // ->
  Eq,    // =
  End,
};

struct Token {
  Tok K = Tok::End;
  std::string Text;   // identifier / reg / label spelling
  int64_t IntVal = 0;
  double FloatVal = 0.0;
  int Line = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string &Src) : Src(Src) { advance(); }

  const Token &cur() const { return Cur; }
  Token take() {
    Token T = Cur;
    advance();
    return T;
  }

private:
  void advance() {
    skipSpace();
    Cur = Token{};
    Cur.Line = Line;
    if (Pos >= Src.size()) {
      Cur.K = Tok::End;
      return;
    }
    char C = Src[Pos];
    auto Single = [&](Tok K) {
      Cur.K = K;
      ++Pos;
    };
    switch (C) {
    case '{':
      return Single(Tok::LBrace);
    case '}':
      return Single(Tok::RBrace);
    case '(':
      return Single(Tok::LParen);
    case ')':
      return Single(Tok::RParen);
    case ',':
      return Single(Tok::Comma);
    case ':':
      return Single(Tok::Colon);
    case '.':
      return Single(Tok::Dot);
    case '=':
      return Single(Tok::Eq);
    default:
      break;
    }
    if (C == '-' && Pos + 1 < Src.size() && Src[Pos + 1] == '>') {
      Cur.K = Tok::Arrow;
      Pos += 2;
      return;
    }
    if (C == '%' || C == '@') {
      size_t Start = ++Pos;
      while (Pos < Src.size() && (std::isalnum(static_cast<unsigned char>(Src[Pos])) || Src[Pos] == '_'))
        ++Pos;
      Cur.K = C == '%' ? Tok::Reg : Tok::Label;
      Cur.Text = Src.substr(Start, Pos - Start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && Pos + 1 < Src.size() &&
         std::isdigit(static_cast<unsigned char>(Src[Pos + 1])))) {
      size_t Start = Pos;
      if (C == '-')
        ++Pos;
      bool IsFloat = false;
      while (Pos < Src.size() &&
             (std::isdigit(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '.' || Src[Pos] == 'e' ||
              Src[Pos] == 'E' ||
              ((Src[Pos] == '+' || Src[Pos] == '-') &&
               (Src[Pos - 1] == 'e' || Src[Pos - 1] == 'E')))) {
        if (Src[Pos] == '.' || Src[Pos] == 'e' || Src[Pos] == 'E')
          IsFloat = true;
        ++Pos;
      }
      std::string Num = Src.substr(Start, Pos - Start);
      if (IsFloat) {
        Cur.K = Tok::Float;
        Cur.FloatVal = std::stod(Num);
      } else {
        Cur.K = Tok::Int;
        Cur.IntVal = std::stoll(Num);
      }
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '<') {
      size_t Start = Pos;
      // Allow <init>-style names.
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_' || Src[Pos] == '<' || Src[Pos] == '>'))
        ++Pos;
      Cur.K = Tok::Ident;
      Cur.Text = Src.substr(Start, Pos - Start);
      return;
    }
    // Unknown character: surface it as an identifier token so the parser's
    // error message names it.
    Cur.K = Tok::Ident;
    Cur.Text = std::string(1, C);
    ++Pos;
  }

  void skipSpace() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '#') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  int Line = 1;
  Token Cur;
};

// --- Parser ---------------------------------------------------------------

/// A method body captured as raw tokens during pass 1, assembled in pass 2.
struct PendingBody {
  MethodId Method = NoMethodId;
  std::vector<Token> Tokens; // body tokens, brace-balanced, without braces
};

class Parser {
public:
  explicit Parser(const std::string &Src) : Lex(Src) {}

  AssemblyResult run() {
    P = std::make_unique<Program>();
    while (Lex.cur().K != Tok::End && Err.empty())
      parseTopLevel();
    if (Err.empty() && P->numClasses() == 0) {
      Token T;
      T.Line = 1;
      error(T, "empty program (no classes)");
    }
    if (Err.empty())
      for (PendingBody &B : Bodies)
        assembleBody(B);
    AssemblyResult R;
    if (!Err.empty()) {
      R.Error = Err;
      return R;
    }
    if (VMError E = P->tryLink()) {
      R.Error = "link error: " + E.message();
      return R;
    }
    R.P = std::move(P);
    return R;
  }

private:
  // --- Error handling -----------------------------------------------------
  void error(const Token &At, const std::string &Msg) {
    if (!Err.empty())
      return;
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf), "line %d: %s", At.Line, Msg.c_str());
    Err = Buf;
  }
  bool failed() const { return !Err.empty(); }

  Token expect(Tok K, const char *What) {
    Token T = Lex.take();
    if (T.K != K && Err.empty())
      error(T, std::string("expected ") + What);
    return T;
  }
  bool accept(Tok K) {
    if (Lex.cur().K == K) {
      Lex.take();
      return true;
    }
    return false;
  }
  bool acceptIdent(const char *S) {
    if (Lex.cur().K == Tok::Ident && Lex.cur().Text == S) {
      Lex.take();
      return true;
    }
    return false;
  }

  std::optional<Type> parseType(bool AllowVoid) {
    Token T = expect(Tok::Ident, "a type (i64/f64/ref)");
    if (failed())
      return std::nullopt;
    if (T.Text == "i64")
      return Type::I64;
    if (T.Text == "f64")
      return Type::F64;
    if (T.Text == "ref")
      return Type::Ref;
    if (AllowVoid && T.Text == "void")
      return Type::Void;
    error(T, "unknown type '" + T.Text + "'");
    return std::nullopt;
  }

  // --- Pass 1: declarations -------------------------------------------------
  void parseTopLevel() {
    Token T = Lex.take();
    if (T.K != Tok::Ident) {
      error(T, "expected 'class' or 'interface'");
      return;
    }
    if (T.Text == "class")
      parseClass(false);
    else if (T.Text == "interface")
      parseClass(true);
    else
      error(T, "expected 'class' or 'interface', got '" + T.Text + "'");
  }

  void parseClass(bool IsInterface) {
    Token Name = expect(Tok::Ident, "a class name");
    if (failed())
      return;
    ClassId Super = NoClassId;
    std::vector<std::string> Ifaces;
    uint32_t Package = 0;
    while (Lex.cur().K == Tok::Ident && Err.empty()) {
      if (acceptIdent("extends")) {
        Token S = expect(Tok::Ident, "a superclass name");
        if (failed())
          return;
        Super = P->findClass(S.Text);
        if (Super == NoClassId)
          return error(S, "unknown superclass '" + S.Text +
                              "' (classes must be declared before use)");
      } else if (acceptIdent("implements")) {
        do {
          Token I = expect(Tok::Ident, "an interface name");
          if (failed())
            return;
          Ifaces.push_back(I.Text);
        } while (accept(Tok::Comma));
      } else if (acceptIdent("package")) {
        Token N = expect(Tok::Int, "a package number");
        if (failed())
          return;
        Package = static_cast<uint32_t>(N.IntVal);
      } else {
        break;
      }
    }
    if (P->findClass(Name.Text) != NoClassId)
      return error(Name, "duplicate class '" + Name.Text + "'");
    ClassId Cls = IsInterface ? P->defineInterface(Name.Text, Package)
                              : P->defineClass(Name.Text, Super, Package);
    for (const std::string &I : Ifaces) {
      ClassId IC = P->findClass(I);
      if (IC == NoClassId)
        return error(Name, "unknown interface '" + I + "'");
      P->addInterface(Cls, IC);
    }
    expect(Tok::LBrace, "'{'");
    while (!failed() && !accept(Tok::RBrace)) {
      Token M = Lex.take();
      if (M.K != Tok::Ident)
        return error(M, "expected 'field', 'method', or 'ctor'");
      if (M.Text == "field")
        parseField(Cls);
      else if (M.Text == "method")
        parseMethod(Cls, /*IsCtor=*/false, IsInterface);
      else if (M.Text == "ctor")
        parseMethod(Cls, /*IsCtor=*/true, IsInterface);
      else
        return error(M, "expected 'field', 'method', or 'ctor', got '" +
                            M.Text + "'");
    }
  }

  void parseField(ClassId Cls) {
    Token Name = expect(Tok::Ident, "a field name");
    expect(Tok::Colon, "':'");
    auto Ty = parseType(/*AllowVoid=*/false);
    if (failed())
      return;
    bool IsStatic = false;
    Access Acc = Access::Public;
    while (Lex.cur().K == Tok::Ident && Err.empty()) {
      if (acceptIdent("static"))
        IsStatic = true;
      else if (acceptIdent("private"))
        Acc = Access::Private;
      else if (acceptIdent("package_private"))
        Acc = Access::Package;
      else if (acceptIdent("public"))
        Acc = Access::Public;
      else
        break;
    }
    P->defineField(Cls, Name.Text, *Ty, IsStatic, Acc);
  }

  void parseMethod(ClassId Cls, bool IsCtor, bool IsInterface) {
    Token Name = expect(Tok::Ident, "a method name");
    expect(Tok::LParen, "'('");
    std::vector<std::pair<std::string, Type>> Params;
    if (!accept(Tok::RParen)) {
      do {
        Token R = expect(Tok::Reg, "a parameter register (%name)");
        expect(Tok::Colon, "':'");
        auto Ty = parseType(false);
        if (failed())
          return;
        Params.emplace_back(R.Text, *Ty);
      } while (accept(Tok::Comma));
      expect(Tok::RParen, "')'");
    }
    Type RetTy = Type::Void;
    if (accept(Tok::Arrow)) {
      auto Ty = parseType(/*AllowVoid=*/true);
      if (failed())
        return;
      RetTy = *Ty;
    }
    MethodFlags Flags;
    Flags.IsCtor = IsCtor;
    while (Lex.cur().K == Tok::Ident && Err.empty()) {
      if (acceptIdent("static"))
        Flags.IsStatic = true;
      else if (acceptIdent("private"))
        Flags.IsPrivate = true;
      else
        break;
    }
    if (IsCtor && (Flags.IsStatic || RetTy != Type::Void))
      return error(Name, "constructors are instance methods returning void");

    std::vector<Type> ParamTys;
    for (auto &[Nm, Ty] : Params)
      ParamTys.push_back(Ty);
    MethodId M = P->defineMethod(Cls, Name.Text, RetTy, ParamTys, Flags);

    if (IsInterface) {
      if (Lex.cur().K == Tok::LBrace)
        error(Lex.cur(), "interface methods cannot have bodies");
      return;
    }
    expect(Tok::LBrace, "'{'");
    if (failed())
      return;
    // Capture the body tokens (brace-balanced) for pass 2.
    PendingBody B;
    B.Method = M;
    for (auto &[Nm, Ty] : Params)
      ParamNames[M].emplace_back(Nm, Ty);
    int Depth = 1;
    while (Depth > 0 && Err.empty()) {
      Token T = Lex.take();
      if (T.K == Tok::End)
        return error(T, "unterminated method body");
      if (T.K == Tok::LBrace)
        ++Depth;
      else if (T.K == Tok::RBrace) {
        if (--Depth == 0)
          break;
      }
      if (Depth > 0)
        B.Tokens.push_back(T);
    }
    Bodies.push_back(std::move(B));
  }

  // --- Pass 2: bodies -------------------------------------------------------
  struct BodyCtx {
    FunctionBuilder *B = nullptr;
    std::map<std::string, Reg> Regs;
    std::map<std::string, FunctionBuilder::Label> Labels;
    std::map<std::string, bool> LabelBound;
    const std::vector<Token> *Toks = nullptr;
    size_t Pos = 0;
    bool LastWasTerminator = false;
  };

  Token btake(BodyCtx &C) {
    if (C.Pos >= C.Toks->size()) {
      Token T;
      T.K = Tok::End;
      T.Line = C.Toks->empty() ? 0 : C.Toks->back().Line;
      return T;
    }
    return (*C.Toks)[C.Pos++];
  }
  const Token &bpeek(BodyCtx &C) {
    static Token EndTok;
    EndTok.K = Tok::End;
    return C.Pos < C.Toks->size() ? (*C.Toks)[C.Pos] : EndTok;
  }
  bool baccept(BodyCtx &C, Tok K) {
    if (bpeek(C).K == K) {
      ++C.Pos;
      return true;
    }
    return false;
  }
  Token bexpect(BodyCtx &C, Tok K, const char *What) {
    Token T = btake(C);
    if (T.K != K)
      error(T, std::string("expected ") + What);
    return T;
  }

  Reg useReg(BodyCtx &C, const Token &T) {
    auto It = C.Regs.find(T.Text);
    if (It == C.Regs.end()) {
      error(T, "use of undefined register %" + T.Text);
      return 0;
    }
    return It->second;
  }
  Reg readReg(BodyCtx &C) {
    Token T = bexpect(C, Tok::Reg, "a register");
    if (failed())
      return 0;
    return useReg(C, T);
  }
  FunctionBuilder::Label useLabel(BodyCtx &C, const Token &T) {
    auto It = C.Labels.find(T.Text);
    if (It != C.Labels.end())
      return It->second;
    auto L = C.B->makeLabel();
    C.Labels.emplace(T.Text, L);
    C.LabelBound.emplace(T.Text, false);
    return L;
  }

  /// Binds the destination register: a fresh name binds the produced
  /// register; an existing name gets a Move (so loop variables work).
  void bindDst(BodyCtx &C, const Token &DstTok, Reg Produced) {
    auto It = C.Regs.find(DstTok.Text);
    if (It == C.Regs.end()) {
      C.Regs.emplace(DstTok.Text, Produced);
      return;
    }
    C.B->move(It->second, Produced);
  }

  std::optional<std::pair<ClassId, std::string>> readQualified(BodyCtx &C) {
    Token Cls = bexpect(C, Tok::Ident, "Class.member");
    bexpect(C, Tok::Dot, "'.'");
    Token Mem = bexpect(C, Tok::Ident, "a member name");
    if (failed())
      return std::nullopt;
    ClassId CId = P->findClass(Cls.Text);
    if (CId == NoClassId) {
      error(Cls, "unknown class '" + Cls.Text + "'");
      return std::nullopt;
    }
    return std::make_pair(CId, Mem.Text);
  }

  std::optional<FieldId> readFieldRef(BodyCtx &C) {
    Token At = bpeek(C);
    auto Q = readQualified(C);
    if (!Q)
      return std::nullopt;
    FieldId F = P->findField(Q->first, Q->second);
    if (F == NoFieldId) {
      error(At, "unknown field '" + Q->second + "'");
      return std::nullopt;
    }
    return F;
  }

  std::optional<MethodId> readMethodRef(BodyCtx &C) {
    Token At = bpeek(C);
    auto Q = readQualified(C);
    if (!Q)
      return std::nullopt;
    MethodId M = P->findMethod(Q->first, Q->second);
    if (M == NoMethodId) {
      error(At, "unknown method '" + Q->second + "'");
      return std::nullopt;
    }
    return M;
  }

  std::optional<ClassId> readClassRef(BodyCtx &C) {
    Token T = bexpect(C, Tok::Ident, "a class name");
    if (failed())
      return std::nullopt;
    ClassId Cls = P->findClass(T.Text);
    if (Cls == NoClassId) {
      error(T, "unknown class '" + T.Text + "'");
      return std::nullopt;
    }
    return Cls;
  }

  void assembleBody(PendingBody &Body) {
    if (failed())
      return;
    MethodInfo &M = P->method(Body.Method);
    FunctionBuilder B(P->cls(M.Owner).Name + "." + M.Name, M.RetTy);
    BodyCtx C;
    C.B = &B;
    C.Toks = &Body.Tokens;
    if (!M.Flags.IsStatic)
      C.Regs.emplace("this", B.addArg(Type::Ref));
    for (auto &[Nm, Ty] : ParamNames[Body.Method]) {
      if (C.Regs.count(Nm)) {
        Token T;
        T.Line = Body.Tokens.empty() ? 0 : Body.Tokens.front().Line;
        error(T, "duplicate parameter %" + Nm);
        return;
      }
      C.Regs.emplace(Nm, B.addArg(Ty));
    }

    while (bpeek(C).K != Tok::End && !failed())
      assembleStatement(C);
    if (failed())
      return;
    Token EndTok;
    EndTok.Line = Body.Tokens.empty() ? 0 : Body.Tokens.back().Line;
    for (auto &[Name, Bound] : C.LabelBound)
      if (!Bound)
        return error(EndTok, "label @" + Name + " is referenced but never "
                                                "defined");
    if (B.size() == 0 || !C.LastWasTerminator)
      return error(EndTok, "method body must end with 'ret' or 'br'");
    P->setBody(Body.Method, B.finalize());
  }

  void assembleStatement(BodyCtx &C) {
    Token T = btake(C);
    if (T.K == Tok::Label) {
      bexpect(C, Tok::Colon, "':' after label");
      if (C.LabelBound.count(T.Text) && C.LabelBound[T.Text]) {
        error(T, "label @" + T.Text + " bound twice");
        return;
      }
      auto L = useLabel(C, T);
      C.LabelBound[T.Text] = true;
      C.B->bind(L);
      C.LastWasTerminator = false;
      return;
    }
    if (T.K == Tok::Reg) {
      bexpect(C, Tok::Eq, "'=' after destination register");
      Token Op = bexpect(C, Tok::Ident, "an opcode");
      if (failed())
        return;
      assembleValueOp(C, T, Op);
      return;
    }
    if (T.K == Tok::Ident) {
      assembleVoidOp(C, T);
      return;
    }
    error(T, "expected a statement");
  }

  void assembleValueOp(BodyCtx &C, const Token &Dst, const Token &Op) {
    const std::string &N = Op.Text;
    FunctionBuilder &B = *C.B;
    auto Bind = [&](Reg R) { bindDst(C, Dst, R); };

    static const std::map<std::string, Opcode> Binops = {
        {"add", Opcode::Add},       {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},       {"div", Opcode::Div},
        {"rem", Opcode::Rem},       {"and", Opcode::And},
        {"or", Opcode::Or},         {"xor", Opcode::Xor},
        {"shl", Opcode::Shl},       {"shr", Opcode::Shr},
        {"fadd", Opcode::FAdd},     {"fsub", Opcode::FSub},
        {"fmul", Opcode::FMul},     {"fdiv", Opcode::FDiv}};
    static const std::map<std::string, Opcode> Cmps = {
        {"cmpeq", Opcode::CmpEQ},   {"cmpne", Opcode::CmpNE},
        {"cmplt", Opcode::CmpLT},   {"cmple", Opcode::CmpLE},
        {"cmpgt", Opcode::CmpGT},   {"cmpge", Opcode::CmpGE},
        {"fcmpeq", Opcode::FCmpEQ}, {"fcmplt", Opcode::FCmpLT},
        {"fcmple", Opcode::FCmpLE}};

    if (N == "consti") {
      Token V = bexpect(C, Tok::Int, "an integer");
      if (!failed())
        Bind(B.constI(V.IntVal));
    } else if (N == "constf") {
      Token V = btake(C);
      if (V.K == Tok::Float)
        Bind(B.constF(V.FloatVal));
      else if (V.K == Tok::Int)
        Bind(B.constF(static_cast<double>(V.IntVal)));
      else
        error(V, "expected a number");
    } else if (N == "constnull") {
      Bind(B.constNull());
    } else if (auto It = Binops.find(N); It != Binops.end()) {
      Reg A = readReg(C);
      bexpect(C, Tok::Comma, "','");
      Reg Bv = readReg(C);
      if (!failed())
        Bind(B.arith(It->second, A, Bv));
    } else if (auto It2 = Cmps.find(N); It2 != Cmps.end()) {
      Reg A = readReg(C);
      bexpect(C, Tok::Comma, "','");
      Reg Bv = readReg(C);
      if (!failed())
        Bind(B.cmp(It2->second, A, Bv));
    } else if (N == "neg") {
      Bind(B.neg(readReg(C)));
    } else if (N == "fneg") {
      Bind(B.fneg(readReg(C)));
    } else if (N == "i2f") {
      Bind(B.i2f(readReg(C)));
    } else if (N == "f2i") {
      Bind(B.f2i(readReg(C)));
    } else if (N == "move") {
      Reg Src = readReg(C);
      if (!failed())
        Bind(Src); // fresh name aliases; existing name gets a Move
    } else if (N == "getfield") {
      Reg Obj = readReg(C);
      bexpect(C, Tok::Comma, "','");
      auto F = readFieldRef(C);
      if (F && !failed())
        Bind(B.getField(Obj, *F, P->field(*F).Ty));
    } else if (N == "getstatic") {
      auto F = readFieldRef(C);
      if (F && !failed())
        Bind(B.getStatic(*F, P->field(*F).Ty));
    } else if (N == "new") {
      auto Cls = readClassRef(C);
      if (Cls && !failed())
        Bind(B.newObject(*Cls));
    } else if (N == "newarray") {
      auto Ty = parseBodyType(C);
      bexpect(C, Tok::Comma, "','");
      Reg Len = readReg(C);
      if (Ty && !failed())
        Bind(B.newArray(*Ty, Len));
    } else if (N == "aload") {
      auto Ty = parseBodyType(C);
      bexpect(C, Tok::Comma, "','");
      Reg Arr = readReg(C);
      bexpect(C, Tok::Comma, "','");
      Reg Idx = readReg(C);
      if (Ty && !failed())
        Bind(B.aload(*Ty, Arr, Idx));
    } else if (N == "alen") {
      Bind(B.alen(readReg(C)));
    } else if (N == "instanceof") {
      Reg O = readReg(C);
      bexpect(C, Tok::Comma, "','");
      auto Cls = readClassRef(C);
      if (Cls && !failed())
        Bind(B.instanceOf(O, *Cls));
    } else if (N == "callvirtual" || N == "callstatic" ||
               N == "callspecial" || N == "callinterface") {
      assembleCall(C, N, &Dst);
    } else {
      error(Op, "unknown value-producing opcode '" + N + "'");
    }
    C.LastWasTerminator = false;
  }

  void assembleVoidOp(BodyCtx &C, const Token &Op) {
    const std::string &N = Op.Text;
    FunctionBuilder &B = *C.B;
    if (N == "putfield") {
      Reg Obj = readReg(C);
      bexpect(C, Tok::Comma, "','");
      auto F = readFieldRef(C);
      bexpect(C, Tok::Comma, "','");
      Reg V = readReg(C);
      if (F && !failed())
        B.putField(Obj, *F, V);
    } else if (N == "putstatic") {
      auto F = readFieldRef(C);
      bexpect(C, Tok::Comma, "','");
      Reg V = readReg(C);
      if (F && !failed())
        B.putStatic(*F, V);
    } else if (N == "astore") {
      auto Ty = parseBodyType(C);
      bexpect(C, Tok::Comma, "','");
      Reg Arr = readReg(C);
      bexpect(C, Tok::Comma, "','");
      Reg Idx = readReg(C);
      bexpect(C, Tok::Comma, "','");
      Reg V = readReg(C);
      if (Ty && !failed())
        B.astore(*Ty, Arr, Idx, V);
    } else if (N == "checkcast") {
      Reg O = readReg(C);
      bexpect(C, Tok::Comma, "','");
      auto Cls = readClassRef(C);
      if (Cls && !failed())
        B.checkCast(O, *Cls);
    } else if (N == "print") {
      Token RT = bexpect(C, Tok::Reg, "a register");
      if (!failed()) {
        Reg R = useReg(C, RT);
        // Print type follows the register's declared type.
        B.printNum(R, regType(C, R));
      }
    } else if (N == "printchar") {
      B.printChar(readReg(C));
    } else if (N == "br") {
      Token L = bexpect(C, Tok::Label, "a label");
      if (!failed())
        B.br(useLabel(C, L));
    } else if (N == "cbnz") {
      Reg R = readReg(C);
      bexpect(C, Tok::Comma, "','");
      Token L = bexpect(C, Tok::Label, "a label");
      if (!failed())
        B.cbnz(R, useLabel(C, L));
    } else if (N == "cbz") {
      Reg R = readReg(C);
      bexpect(C, Tok::Comma, "','");
      Token L = bexpect(C, Tok::Label, "a label");
      if (!failed())
        B.cbz(R, useLabel(C, L));
    } else if (N == "ret") {
      if (bpeek(C).K == Tok::Reg) {
        Reg V = readReg(C);
        if (B.retTy() == Type::Void)
          error(Op, "value return from void method");
        else
          B.ret(V);
      } else if (B.retTy() != Type::Void) {
        error(Op, "void return from non-void method");
      } else {
        B.retVoid();
      }
    } else if (N == "callvirtual" || N == "callstatic" ||
               N == "callspecial" || N == "callinterface") {
      assembleCall(C, N, nullptr);
    } else {
      error(Op, "unknown statement opcode '" + N + "'");
    }
    C.LastWasTerminator = N == "ret" || N == "br";
  }

  void assembleCall(BodyCtx &C, const std::string &Kind, const Token *Dst) {
    auto M = readMethodRef(C);
    bexpect(C, Tok::LParen, "'('");
    std::vector<Reg> Args;
    if (!baccept(C, Tok::RParen)) {
      do {
        Args.push_back(readReg(C));
      } while (baccept(C, Tok::Comma) && !failed());
      bexpect(C, Tok::RParen, "')'");
    }
    if (!M || failed())
      return;
    Opcode Op = Kind == "callvirtual"     ? Opcode::CallVirtual
                : Kind == "callstatic"    ? Opcode::CallStatic
                : Kind == "callspecial"   ? Opcode::CallSpecial
                                          : Opcode::CallInterface;
    Type RetTy = P->method(*M).RetTy;
    if (Dst && RetTy == Type::Void) {
      error(*Dst, "void call cannot produce a value");
      return;
    }
    Reg R = C.B->call(Op, *M, Args, RetTy);
    if (Dst) {
      if (R == NoReg) {
        error(*Dst, "void call cannot produce a value");
        return;
      }
      bindDst(C, *Dst, R);
    }
  }

  std::optional<Type> parseBodyType(BodyCtx &C) {
    Token T = bexpect(C, Tok::Ident, "a type (i64/f64/ref)");
    if (failed())
      return std::nullopt;
    if (T.Text == "i64")
      return Type::I64;
    if (T.Text == "f64")
      return Type::F64;
    if (T.Text == "ref")
      return Type::Ref;
    error(T, "unknown type '" + T.Text + "'");
    return std::nullopt;
  }

  /// Declared type of a register in the function being built.
  Type regType(BodyCtx &C, Reg R) { return C.B->regType(R); }

  Lexer Lex;
  std::unique_ptr<Program> P;
  std::string Err;
  std::vector<PendingBody> Bodies;
  std::map<MethodId, std::vector<std::pair<std::string, Type>>> ParamNames;
};

} // namespace

AssemblyResult assembleProgram(const std::string &Source) {
  Parser Ps(Source);
  return Ps.run();
}

} // namespace dchm
