//===-- compiler/Inliner.cpp - Method inlining -------------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "compiler/Inliner.h"

#include "compiler/Specializer.h"
#include "ir/CFG.h"
#include "support/Debug.h"

#include <algorithm>

namespace dchm {

namespace {

/// Register defined exactly once in F by instruction *DefIdx; NoReg-safe.
/// Returns true and sets DefIdx when R has a unique defining instruction.
bool uniqueDef(const IRFunction &F, Reg R, size_t &DefIdx) {
  bool Found = false;
  for (size_t I = 0; I < F.Insts.size(); ++I) {
    if (F.Insts[I].hasDst() && F.Insts[I].Dst == R) {
      if (Found)
        return false;
      Found = true;
      DefIdx = I;
    }
  }
  return Found;
}

/// Number of call arguments whose value is a compile-time constant at the
/// site (unique Const definition) — the "N" of the trade-off heuristic.
unsigned countConstantArgs(const IRFunction &F, const Instruction &Call) {
  unsigned N = 0;
  for (Reg R : Call.Args) {
    size_t Def;
    if (!uniqueDef(F, R, Def))
      continue;
    Opcode Op = F.Insts[Def].Op;
    if (Op == Opcode::ConstI || Op == Opcode::ConstF ||
        Op == Opcode::ConstNull)
      ++N;
  }
  return N;
}

/// Callee registers that might be read before written on some path; these
/// must be explicitly zero-initialized at the splice point because a fresh
/// frame would have zeroed them but a loop around the inlined region would
/// not. A register is provably safe when its single defining instruction
/// dominates every use.
std::vector<bool> regsNeedingInit(const IRFunction &Callee) {
  std::vector<bool> NeedsInit(Callee.RegTypes.size(), false);
  CFG G(Callee);
  for (Reg R = Callee.NumArgs; R < Callee.RegTypes.size(); ++R) {
    size_t DefIdx = 0;
    if (!uniqueDef(Callee, R, DefIdx)) {
      // Zero or multiple defs: conservatively initialize (zero defs means
      // any use reads the implicit zero; multiple defs are hard to prove).
      for (const Instruction &I : Callee.Insts) {
        bool Uses = I.A == R || I.B == R || I.C == R ||
                    std::find(I.Args.begin(), I.Args.end(), R) != I.Args.end();
        if (Uses) {
          NeedsInit[R] = true;
          break;
        }
      }
      continue;
    }
    uint32_t DefBlock = G.blockOfInst(static_cast<uint32_t>(DefIdx));
    for (size_t I = 0; I < Callee.Insts.size(); ++I) {
      const Instruction &Inst = Callee.Insts[I];
      bool Uses = Inst.A == R || Inst.B == R || Inst.C == R ||
                  std::find(Inst.Args.begin(), Inst.Args.end(), R) !=
                      Inst.Args.end();
      if (!Uses)
        continue;
      uint32_t UseBlock = G.blockOfInst(static_cast<uint32_t>(I));
      bool Dominated = DefBlock == UseBlock ? DefIdx < I
                                            : G.dominates(DefBlock, UseBlock);
      if (!Dominated) {
        NeedsInit[R] = true;
        break;
      }
    }
  }
  return NeedsInit;
}

} // namespace

Inliner::Inliner(Program &P, const InlinerConfig &Cfg, const OlcDatabase *Olc,
                 const MutationPlan *Plan)
    : P(P), Cfg(Cfg), Olc(Olc), Plan(Plan) {
  ImplCountBySlotRoot.assign(P.numMethods(), 0);
  for (size_t M = 0; M < P.numMethods(); ++M) {
    const MethodInfo &MI = P.method(static_cast<MethodId>(M));
    if (MI.isVirtualDispatch() && MI.SlotRoot != NoMethodId && MI.HasBody)
      ImplCountBySlotRoot[MI.SlotRoot]++;
  }
}

const MethodInfo *Inliner::resolveExactTarget(const IRFunction &F,
                                              const Instruction &Call,
                                              const MethodInfo &Root,
                                              const OlcEntry **OlcOut) const {
  *OlcOut = nullptr;
  const MethodInfo &Named = P.method(static_cast<MethodId>(Call.Imm));
  switch (Call.Op) {
  case Opcode::CallStatic:
  case Opcode::CallSpecial:
    return &Named;
  case Opcode::CallVirtual:
  case Opcode::CallInterface: {
    // Specialization inlining: receiver loaded from a private exact-type
    // reference field of the root's class with OLC results devirtualizes
    // the call through the exact type.
    if (Cfg.EnableSpecializationInlining && Olc && !Call.Args.empty() &&
        !Root.Flags.IsStatic) {
      Reg Recv = Call.Args[0];
      size_t Def;
      if (uniqueDef(F, Recv, Def)) {
        const Instruction &DefInst = F.Insts[Def];
        if (DefInst.Op == Opcode::GetField && DefInst.A == 0) {
          const OlcEntry *E =
              Olc->forRefField(static_cast<FieldId>(DefInst.Imm));
          if (E && P.field(E->RefField).Owner == Root.Owner) {
            const ClassInfo &Exact = P.cls(E->TargetClass);
            uint32_t Slot;
            if (Call.Op == Opcode::CallVirtual) {
              Slot = Call.Aux;
            } else {
              // Interface call: find the implementation slot via signature.
              const MethodInfo *Impl = nullptr;
              for (ClassId A : Exact.Ancestors) {
                for (MethodId MId : P.cls(A).Methods) {
                  const MethodInfo &M = P.method(MId);
                  if (M.isVirtualDispatch() && M.Name == Named.Name &&
                      M.ParamTys == Named.ParamTys && M.RetTy == Named.RetTy) {
                    Impl = &M;
                    break;
                  }
                }
                if (Impl)
                  break;
              }
              if (!Impl)
                return nullptr;
              Slot = Impl->VSlot;
            }
            if (Slot < Exact.VTable.size()) {
              *OlcOut = E;
              return &P.method(Exact.VTable[Slot]);
            }
          }
        }
      }
    }
    if (Call.Op == Opcode::CallInterface)
      return nullptr;
    // Effectively-final virtual call: sole implementation of its slot root.
    if (Named.SlotRoot != NoMethodId &&
        ImplCountBySlotRoot[Named.SlotRoot] == 1 && Named.HasBody)
      return &Named;
    return nullptr;
  }
  default:
    DCHM_UNREACHABLE("not a call");
  }
}

bool Inliner::shouldInline(const IRFunction &F, const Instruction &Call,
                           const MethodInfo &Callee, const OlcEntry *OlcE,
                           unsigned Budget, InlineStats &Stats) const {
  if (!Callee.HasBody || Callee.Flags.IsAbstract)
    return false;
  size_t Size = Callee.Bytecode.Insts.size();
  // OLC substitutions make the callee cheaper after folding; credit them
  // against the size bound (paper: OLCs "lower the inlining cost of a
  // method when the inlining decision is being made").
  size_t Credit = OlcE ? OlcE->Constants.size() * Cfg.OlcSizeCredit : 0;
  size_t Effective = Size > Credit ? Size - Credit : 0;
  if (Effective > Cfg.MaxCalleeInsts)
    return false;
  if (Size > Budget)
    return false;

  // Inline-vs-specialize trade-off for mutable methods. OLC-substituting
  // inlines skip the trade-off: they need no guards and keep the constants.
  if (!OlcE && Plan && Callee.IsMutable) {
    const MutableClassPlan *CP = Plan->planFor(Callee.Owner);
    if (CP) {
      unsigned N = countConstantArgs(F, Call);
      unsigned M = countSpecializableReads(Callee.Bytecode, Callee, *CP);
      if (static_cast<int>(N) <= static_cast<int>(M) + Cfg.TradeoffK) {
        Stats.TradeoffRejections++;
        return false;
      }
    }
  }
  return true;
}

unsigned Inliner::spliceCall(IRFunction &F, size_t CallIdx,
                             const MethodInfo &Callee, const OlcEntry *OlcE,
                             bool Guarded) {
  const Instruction Call = F.Insts[CallIdx]; // copy; we rebuild F.Insts
  const IRFunction &CB = Callee.Bytecode;
  DCHM_CHECK(Call.Args.size() == CB.NumArgs, "inline arg count mismatch");

  // Map callee registers: arguments to the caller's argument registers,
  // locals to freshly allocated caller registers.
  std::vector<Reg> RegMap(CB.RegTypes.size());
  for (Reg R = 0; R < CB.NumArgs; ++R)
    RegMap[R] = Call.Args[R];
  for (size_t R = CB.NumArgs; R < CB.RegTypes.size(); ++R) {
    DCHM_CHECK(F.RegTypes.size() < NoReg, "register overflow while inlining");
    F.RegTypes.push_back(CB.RegTypes[R]);
    RegMap[R] = static_cast<Reg>(F.RegTypes.size() - 1);
  }

  std::vector<bool> NeedsInit = regsNeedingInit(CB);

  // Build the replacement sequence: [guard], local inits, the remapped
  // body, and (when guarded) the original call as the slow path.
  std::vector<Instruction> Splice;
  Splice.reserve(CB.Insts.size() + 6);
  if (Guarded) {
    // GuardTmp = (recv's exact class == Callee.Owner); if not, slow path.
    DCHM_CHECK(F.RegTypes.size() < NoReg, "register overflow while inlining");
    F.RegTypes.push_back(Type::I64);
    Reg GuardTmp = static_cast<Reg>(F.RegTypes.size() - 1);
    Instruction Test{};
    Test.Op = Opcode::ClassEq;
    Test.Dst = GuardTmp;
    Test.A = Call.Args[0];
    Test.Imm = Callee.Owner;
    Splice.push_back(Test);
    Instruction Br{};
    Br.Op = Opcode::Cbz;
    Br.A = GuardTmp;
    Br.Imm = -2; // patched below to the slow-path call
    Splice.push_back(Br);
  }
  for (size_t R = CB.NumArgs; R < CB.RegTypes.size(); ++R) {
    if (!NeedsInit[R])
      continue;
    Instruction Init{};
    Init.Dst = RegMap[R];
    switch (CB.RegTypes[R]) {
    case Type::I64:
      Init.Op = Opcode::ConstI;
      Init.Ty = Type::I64;
      break;
    case Type::F64:
      Init.Op = Opcode::ConstF;
      Init.Ty = Type::F64;
      break;
    default:
      Init.Op = Opcode::ConstNull;
      Init.Ty = Type::Ref;
      break;
    }
    Splice.push_back(Init);
  }

  // Body target mapping filled after we know each body instruction's
  // position (returns expand to up to two instructions).
  std::vector<uint32_t> BodyPos(CB.Insts.size());
  for (size_t I = 0; I < CB.Insts.size(); ++I) {
    BodyPos[I] = static_cast<uint32_t>(Splice.size());
    Instruction Inst = CB.Insts[I];
    auto Remap = [&](Reg &R) {
      if (R != NoReg)
        R = RegMap[R];
    };
    if (Inst.Op == Opcode::Ret) {
      // return V  =>  Dst = V; goto end
      if (Call.Dst != NoReg) {
        Instruction Mv{};
        Mv.Op = Opcode::Move;
        Mv.Ty = F.RegTypes[Call.Dst];
        Mv.Dst = Call.Dst;
        Mv.A = RegMap[Inst.A];
        Splice.push_back(Mv);
      }
      Instruction Jmp{};
      Jmp.Op = Opcode::Br;
      Jmp.Imm = -1; // patched below to the post-call position
      Splice.push_back(Jmp);
      continue;
    }
    Remap(Inst.Dst);
    Remap(Inst.A);
    Remap(Inst.B);
    Remap(Inst.C);
    for (Reg &R : Inst.Args)
      Remap(R);

    // OLC substitution: loads of proven-constant fields off the inlined
    // receiver fold to constants (guard-free; paper section 5).
    if (OlcE && Inst.Op == Opcode::GetField && Inst.A == RegMap[0]) {
      for (const OlcConstant &OC : OlcE->Constants) {
        if (OC.TargetField != static_cast<FieldId>(Inst.Imm))
          continue;
        Reg Dst = Inst.Dst;
        Type Ty = Inst.Ty;
        Inst = Instruction{};
        Inst.Dst = Dst;
        Inst.Ty = Ty;
        if (Ty == Type::F64) {
          Inst.Op = Opcode::ConstF;
          Inst.FImm = OC.V.F;
        } else {
          Inst.Op = Opcode::ConstI;
          Inst.Imm = OC.V.I;
        }
        break;
      }
    }
    Splice.push_back(Inst);
  }

  if (Guarded) {
    // Slow path: the original virtual call (re-executed only when the
    // guard fails). Return jumps skip it; it must never be re-inlined.
    Instruction Slow = Call;
    Slow.NoInline = true;
    Splice.push_back(Slow);
  }

  // Rebuild the caller around the splice.
  const size_t OldN = F.Insts.size();
  const size_t SpliceLen = Splice.size();
  const size_t SlowIdx = SpliceLen - 1; // only meaningful when Guarded
  std::vector<Instruction> Out;
  Out.reserve(OldN - 1 + SpliceLen);
  // Old caller index -> new index.
  std::vector<uint32_t> CallerPos(OldN + 1);
  for (size_t I = 0; I < CallIdx; ++I)
    CallerPos[I] = static_cast<uint32_t>(I);
  CallerPos[CallIdx] = static_cast<uint32_t>(CallIdx); // splice start
  for (size_t I = CallIdx + 1; I <= OldN; ++I)
    CallerPos[I] = static_cast<uint32_t>(I - 1 + SpliceLen);

  for (size_t I = 0; I < CallIdx; ++I)
    Out.push_back(std::move(F.Insts[I]));
  const uint32_t SpliceBase = static_cast<uint32_t>(CallIdx);
  const uint32_t AfterCall = CallerPos[CallIdx + 1];
  for (size_t I = 0; I < SpliceLen; ++I) {
    Instruction Inst = std::move(Splice[I]);
    if (Guarded && I == SlowIdx) {
      Out.push_back(std::move(Inst)); // the slow-path call; no fixup
      continue;
    }
    if (isBranch(Inst.Op)) {
      if (Inst.Imm == -2) // guard failure -> slow-path call
        Inst.Imm = SpliceBase + static_cast<int64_t>(SlowIdx);
      else if (Inst.Imm < 0) // return jump
        Inst.Imm = AfterCall;
      else // body-internal target (body indices start after the inits)
        Inst.Imm = SpliceBase + BodyPos[static_cast<size_t>(Inst.Imm)];
    }
    Out.push_back(std::move(Inst));
  }
  for (size_t I = CallIdx + 1; I < OldN; ++I)
    Out.push_back(std::move(F.Insts[I]));

  // Retarget the caller's own branches across the splice.
  for (size_t I = 0; I < Out.size(); ++I) {
    // Skip the spliced region: its targets are already final.
    if (I >= SpliceBase && I < SpliceBase + SpliceLen)
      continue;
    Instruction &Inst = Out[I];
    if (isBranch(Inst.Op))
      Inst.Imm = CallerPos[static_cast<size_t>(Inst.Imm)];
  }

  // A trailing "goto end" jump at the very end of the splice would target
  // one past the function end when the call was the last instruction; the
  // builder guarantees a terminator after the call, so AfterCall < size.
  DCHM_CHECK(static_cast<size_t>(AfterCall) < Out.size() ||
                 Out.back().Op == Opcode::Ret,
             "inline splice at function end");

  F.Insts = std::move(Out);
  return static_cast<unsigned>(SpliceLen - 1);
}

InlineStats Inliner::run(IRFunction &F, const MethodInfo &Root) {
  InlineStats Stats;
  unsigned Budget = Cfg.MaxFunctionGrowth;
  // Depth rounds: round D inlines calls exposed by round D-1's splices.
  for (unsigned Depth = 0; Depth < Cfg.MaxDepth; ++Depth) {
    bool AnyThisRound = false;
    for (size_t I = 0; I < F.Insts.size(); ++I) {
      if (!isCall(F.Insts[I].Op) || F.Insts[I].NoInline)
        continue;
      const OlcEntry *OlcE = nullptr;
      const MethodInfo *Target = resolveExactTarget(F, F.Insts[I], Root, &OlcE);
      bool Guarded = false;
      if (!Target && Cfg.EnableGuardedInlining &&
          F.Insts[I].Op == Opcode::CallVirtual) {
        // Polymorphic site: predict the statically-named target and inline
        // it under an exact-class test (Jikes' guarded inlining).
        const MethodInfo &Named =
            P.method(static_cast<MethodId>(F.Insts[I].Imm));
        if (Named.HasBody && !Named.Flags.IsAbstract) {
          Target = &Named;
          Guarded = true;
        }
      }
      if (!Target || Target->Id == Root.Id) // no self-inlining
        continue;
      if (Target->Flags.IsCtor)
        continue; // constructors stay out-of-line: the mutation engine's
                  // constructor-exit hook fires on their return
      if (!shouldInline(F, F.Insts[I], *Target, OlcE, Budget, Stats))
        continue;
      unsigned Added = spliceCall(F, I, *Target, OlcE, Guarded);
      Budget = Added > Budget ? 0 : Budget - Added;
      Stats.SitesInlined++;
      Stats.InstsAdded += Added;
      if (OlcE)
        Stats.SpecializationInlines++;
      if (Guarded)
        Stats.GuardedInlines++;
      AnyThisRound = true;
    }
    if (!AnyThisRound)
      break;
  }
  return Stats;
}

} // namespace dchm
