//===-- compiler/Eval.h - Shared operation semantics ----------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One definition of the arithmetic semantics, shared by the interpreter and
/// the constant folder so that folding provably preserves behavior (the
/// property tests compare optimized against unoptimized execution).
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_COMPILER_EVAL_H
#define DCHM_COMPILER_EVAL_H

#include "ir/Opcode.h"
#include "runtime/Value.h"
#include "support/Debug.h"

#include <cstdint>
#include <limits>

namespace dchm {

/// True if the binary integer/float operation can be evaluated at compile
/// time with the given operands (rules out trapping division and the
/// INT64_MIN / -1 overflow case).
inline bool canFoldBinop(Opcode Op, Value A, Value B) {
  switch (Op) {
  case Opcode::Div:
  case Opcode::Rem:
    return B.I != 0 &&
           !(A.I == std::numeric_limits<int64_t>::min() && B.I == -1);
  default:
    return true;
  }
}

/// Evaluates a binary operation. Shifts mask their count to 6 bits; integer
/// overflow wraps (two's complement), matching Java semantics closely enough
/// for the modeled workloads.
inline Value evalBinop(Opcode Op, Value A, Value B) {
  auto WrapAdd = [](int64_t X, int64_t Y) {
    return static_cast<int64_t>(static_cast<uint64_t>(X) +
                                static_cast<uint64_t>(Y));
  };
  switch (Op) {
  case Opcode::Add:
    return valueI(WrapAdd(A.I, B.I));
  case Opcode::Sub:
    return valueI(static_cast<int64_t>(static_cast<uint64_t>(A.I) -
                                       static_cast<uint64_t>(B.I)));
  case Opcode::Mul:
    return valueI(static_cast<int64_t>(static_cast<uint64_t>(A.I) *
                                       static_cast<uint64_t>(B.I)));
  case Opcode::Div:
    DCHM_CHECK(B.I != 0, "division by zero");
    return valueI(A.I / B.I);
  case Opcode::Rem:
    DCHM_CHECK(B.I != 0, "remainder by zero");
    return valueI(A.I % B.I);
  case Opcode::And:
    return valueI(A.I & B.I);
  case Opcode::Or:
    return valueI(A.I | B.I);
  case Opcode::Xor:
    return valueI(A.I ^ B.I);
  case Opcode::Shl:
    return valueI(static_cast<int64_t>(static_cast<uint64_t>(A.I)
                                       << (B.I & 63)));
  case Opcode::Shr:
    return valueI(A.I >> (B.I & 63));
  case Opcode::FAdd:
    return valueF(A.F + B.F);
  case Opcode::FSub:
    return valueF(A.F - B.F);
  case Opcode::FMul:
    return valueF(A.F * B.F);
  case Opcode::FDiv:
    return valueF(A.F / B.F);
  case Opcode::CmpEQ:
    return valueI(A.I == B.I);
  case Opcode::CmpNE:
    return valueI(A.I != B.I);
  case Opcode::CmpLT:
    return valueI(A.I < B.I);
  case Opcode::CmpLE:
    return valueI(A.I <= B.I);
  case Opcode::CmpGT:
    return valueI(A.I > B.I);
  case Opcode::CmpGE:
    return valueI(A.I >= B.I);
  case Opcode::FCmpEQ:
    return valueI(A.F == B.F);
  case Opcode::FCmpLT:
    return valueI(A.F < B.F);
  case Opcode::FCmpLE:
    return valueI(A.F <= B.F);
  default:
    DCHM_UNREACHABLE("not a binary operation");
  }
}

/// True if the opcode is a binary operation evalBinop understands.
inline bool isBinop(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
  case Opcode::FCmpEQ:
  case Opcode::FCmpLT:
  case Opcode::FCmpLE:
    return true;
  default:
    return false;
  }
}

/// Evaluates a unary operation (Neg/FNeg/I2F/F2I).
inline Value evalUnop(Opcode Op, Value A) {
  switch (Op) {
  case Opcode::Neg:
    return valueI(static_cast<int64_t>(0 - static_cast<uint64_t>(A.I)));
  case Opcode::FNeg:
    return valueF(-A.F);
  case Opcode::I2F:
    return valueF(static_cast<double>(A.I));
  case Opcode::F2I:
    return valueI(static_cast<int64_t>(A.F));
  default:
    DCHM_UNREACHABLE("not a unary operation");
  }
}

inline bool isUnop(Opcode Op) {
  return Op == Opcode::Neg || Op == Opcode::FNeg || Op == Opcode::I2F ||
         Op == Opcode::F2I;
}

} // namespace dchm

#endif // DCHM_COMPILER_EVAL_H
