//===-- compiler/Passes.h - Optimization passes ---------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scalar optimization passes of the MiniVM optimizing compiler. These
/// are the "conventional optimizations" the paper's class mutation unlocks:
/// once the Specializer replaces state-field loads with constants, constant
/// propagation, branch folding, dead-code elimination, and strength
/// reduction collapse the state-dependent control flow (SalaryDB's grade
/// if-chain reduces to a single update).
///
/// Every pass edits the function in place and returns true when it changed
/// something. runOptPipeline() iterates them to a fixed point.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_COMPILER_PASSES_H
#define DCHM_COMPILER_PASSES_H

#include "ir/Function.h"

namespace dchm {

/// Flow-sensitive constant propagation and folding over the CFG. Non-argument
/// registers start as Const(0) at entry, matching the interpreter's
/// zero-initialized frames. Folds arithmetic with constant operands and
/// rewrites conditional branches whose condition is constant.
bool runConstantPropagation(IRFunction &F);

/// Block-local copy propagation (forwards Move sources into uses).
bool runCopyPropagation(IRFunction &F);

/// Algebraic simplification and strength reduction using block-local
/// constant knowledge: x*2^k -> shl, x*1 -> move, x*0 -> 0, x+0 -> move,
/// x&0 -> 0, x|0 -> move, x%1 -> 0, etc. Only semantics-preserving rewrites.
bool runStrengthReduction(IRFunction &F);

/// Removes branches to the textually next instruction and threads chains of
/// unconditional branches.
bool runBranchFolding(IRFunction &F);

/// Removes side-effect-free instructions whose results are never used and
/// instructions in unreachable blocks, then compacts the instruction list
/// (renumbering branch targets).
bool runDeadCodeElimination(IRFunction &F);

/// Runs the full opt1+ pipeline to a fixed point (bounded iteration count).
/// Returns the number of pass iterations that made progress.
unsigned runOptPipeline(IRFunction &F);

/// Shared helper: deletes the instructions flagged in Dead and remaps all
/// branch targets. The final terminator must not be marked dead.
void eraseDeadInstructions(IRFunction &F, const std::vector<bool> &Dead);

} // namespace dchm

#endif // DCHM_COMPILER_PASSES_H
