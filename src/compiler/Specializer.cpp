//===-- compiler/Specializer.cpp - State-field specialization ---------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "compiler/Specializer.h"

#include "support/Debug.h"

#include <algorithm>

namespace dchm {

namespace {

/// Looks up the value bound to field FId in state StateIdx, if any.
/// Static fields match unconditionally; instance fields require ReceiverOk.
bool lookupBinding(const MutableClassPlan &Plan, size_t StateIdx, FieldId FId,
                   bool ReceiverOk, Value &Out) {
  const HotState &HS = Plan.HotStates[StateIdx];
  for (size_t I = 0; I < Plan.InstanceStateFields.size(); ++I) {
    if (Plan.InstanceStateFields[I] == FId) {
      if (!ReceiverOk)
        return false;
      Out = HS.InstanceVals[I];
      return true;
    }
  }
  for (size_t I = 0; I < Plan.StaticStateFields.size(); ++I) {
    if (Plan.StaticStateFields[I] == FId) {
      Out = HS.StaticVals[I];
      return true;
    }
  }
  return false;
}

bool isStateFieldRead(const Instruction &I) {
  return I.Op == Opcode::GetField || I.Op == Opcode::GetStatic;
}

/// True when a GetField reads off the receiver. Argument registers are
/// immutable (enforced by the verifier), so register 0 of an instance
/// method is always `this`.
bool readsReceiver(const Instruction &I, const MethodInfo &M) {
  if (I.Op != Opcode::GetField)
    return true; // GetStatic: receiver irrelevant
  return !M.Flags.IsStatic && I.A == 0;
}

} // namespace

unsigned specializeForState(IRFunction &F, const MethodInfo &M,
                            const MutableClassPlan &Plan, size_t StateIdx,
                            std::vector<ConsumedBinding> *Consumed) {
  DCHM_CHECK(StateIdx < Plan.HotStates.size(), "bad hot state index");
  unsigned Folded = 0;
  for (Instruction &I : F.Insts) {
    if (!isStateFieldRead(I))
      continue;
    FieldId FId = static_cast<FieldId>(I.Imm);
    Value V;
    if (!lookupBinding(Plan, StateIdx, FId, readsReceiver(I, M), V))
      continue;
    DCHM_CHECK(I.Ty == Type::I64 || I.Ty == Type::F64,
               "state fields must be primitive");
    Reg Dst = I.Dst;
    Type Ty = I.Ty;
    I = Instruction{};
    I.Dst = Dst;
    I.Ty = Ty;
    if (Ty == Type::I64) {
      I.Op = Opcode::ConstI;
      I.Imm = V.I;
    } else {
      I.Op = Opcode::ConstF;
      I.FImm = V.F;
    }
    if (Consumed)
      Consumed->push_back(
          {FId, static_cast<uint64_t>(V.I)}); // F64 aliases the same bits
    ++Folded;
  }
  if (Consumed) {
    std::sort(Consumed->begin(), Consumed->end(),
              [](const ConsumedBinding &A, const ConsumedBinding &B) {
                return A.Field < B.Field;
              });
    Consumed->erase(std::unique(Consumed->begin(), Consumed->end()),
                    Consumed->end());
  }
  return Folded;
}

unsigned countSpecializableReads(const IRFunction &F, const MethodInfo &M,
                                 const MutableClassPlan &Plan) {
  if (Plan.HotStates.empty())
    return 0;
  unsigned Count = 0;
  for (const Instruction &I : F.Insts) {
    if (!isStateFieldRead(I))
      continue;
    Value V;
    if (lookupBinding(Plan, 0, static_cast<FieldId>(I.Imm),
                      readsReceiver(I, M), V))
      ++Count;
  }
  return Count;
}

} // namespace dchm
