//===-- compiler/OptCompiler.cpp - The MiniVM compiler ----------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "compiler/OptCompiler.h"

#include "compiler/Passes.h"
#include "compiler/Specializer.h"
#include "runtime/CostModel.h"
#include "support/Debug.h"

namespace dchm {

CompiledMethod *OptCompiler::finish(MethodInfo &M, IRFunction Code, int Level,
                                    int StateIdx) {
  // Compile cost scales with the unit size the optimizer actually processed
  // (post-inlining instruction count).
  size_t UnitSize = Code.Insts.size();
  if (Level >= 1)
    runOptPipeline(Code);
  uint64_t Cycles =
      StateIdx >= 0
          ? CompileCost::SpecialPerCompile + CompileCost::SpecialPerInst * UnitSize
          : CompileCost::PerCompile + CompileCost::perInst(Level) * UnitSize;

  M.CompiledVersions.push_back(std::make_unique<CompiledMethod>(
      M, std::move(Code), Level, StateIdx, Cycles));
  CompiledMethod *CM = M.CompiledVersions.back().get();

  Stats.TotalCompileCycles += Cycles;
  Stats.TotalCodeBytes += CM->codeBytes();
  if (StateIdx >= 0) {
    Stats.SpecialCompileCycles += Cycles;
    Stats.SpecialCodeBytes += CM->codeBytes();
    Stats.SpecialCompiles++;
  } else {
    Stats.CompilesAtLevel[Level < 0 ? 0 : (Level > 2 ? 2 : Level)]++;
  }
  return CM;
}

CompiledMethod *OptCompiler::compileGeneral(MethodInfo &M, int Level) {
  DCHM_CHECK(M.HasBody, "compiling a method without a body");
  IRFunction Code = M.Bytecode;
  if (Level >= 2) {
    Inliner Inl(P, InlineCfg, Olc, Plan);
    InlineStats IS = Inl.run(Code, M);
    Stats.Inlining.SitesInlined += IS.SitesInlined;
    Stats.Inlining.SpecializationInlines += IS.SpecializationInlines;
    Stats.Inlining.TradeoffRejections += IS.TradeoffRejections;
    Stats.Inlining.InstsAdded += IS.InstsAdded;
  }
  CompiledMethod *CM = finish(M, std::move(Code), Level, -1);
  if (Level > M.CurOptLevel)
    M.CurOptLevel = Level;
  return CM;
}

CompiledMethod *OptCompiler::compileSpecial(MethodInfo &M, int Level,
                                            const MutableClassPlan &CP,
                                            size_t StateIdx) {
  DCHM_CHECK(M.HasBody, "compiling a method without a body");
  IRFunction Code = M.Bytecode;
  specializeForState(Code, M, CP, StateIdx);
  if (Level >= 2) {
    Inliner Inl(P, InlineCfg, Olc, Plan);
    Inl.run(Code, M);
  }
  return finish(M, std::move(Code), Level, static_cast<int>(StateIdx));
}

} // namespace dchm
