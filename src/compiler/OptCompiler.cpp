//===-- compiler/OptCompiler.cpp - The MiniVM compiler ----------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "compiler/OptCompiler.h"

#include "compiler/Passes.h"
#include "compiler/Specializer.h"
#include "runtime/CostModel.h"
#include "support/Debug.h"

#include <cstdio>

namespace dchm {

void OptCompiler::setOlcDatabase(const OlcDatabase *Db) {
  Olc = Db;
  SpecCache.clear();
}

void OptCompiler::setPlan(const MutationPlan *Pl) {
  Plan = Pl;
  SpecCache.clear();
}

void OptCompiler::configure(bool Async, unsigned Threads,
                            bool SpecializationCache) {
  // Fault-tolerance knobs (retry limits, deadlines, fault injection) come
  // from the environment; async/threads were already resolved by the caller
  // through VMOptions, so they override whatever the env helper read.
  CompilePipeline::Config C = CompilePipeline::configFromEnv({});
  C.Async = Async;
  C.Threads = Threads;
  Pipeline.configure(C);
  CacheEnabled = SpecializationCache;
}

void OptCompiler::foldBytes(CompiledMethod *CM) {
  Stats.TotalCodeBytes += CM->codeBytes();
  if (CM->isSpecialized())
    Stats.SpecialCodeBytes += CM->codeBytes();
}

void OptCompiler::sync() {
  Pipeline.drain();
  for (CompiledMethod *CM : PendingBytes)
    foldBytes(CM);
  PendingBytes.clear();
}

CompiledMethod *OptCompiler::finish(MethodInfo &M, IRFunction Code, int Level,
                                    int StateIdx, CompilePriority Pr) {
  // Compile cost scales with the unit size the optimizer actually processes
  // (post-inlining instruction count). Charged here, at request time in
  // program order — the pipeline's determinism hinge.
  size_t UnitSize = Code.Insts.size();
  uint64_t Cycles =
      StateIdx >= 0
          ? CompileCost::SpecialPerCompile + CompileCost::SpecialPerInst * UnitSize
          : CompileCost::PerCompile + CompileCost::perInst(Level) * UnitSize;

  M.CompiledVersions.push_back(
      std::make_unique<CompiledMethod>(M, Level, StateIdx, Cycles));
  CompiledMethod *CM = M.CompiledVersions.back().get();
  // Budget accounting needs a size before the (possibly async) body exists;
  // estimate from the request-time unit size with the finalizeCode density
  // model so sync and async hosts charge identical budget bytes.
  CM->setBudgetBytes(32 + UnitSize * (Level == 0 ? 14 : 10));

  Stats.TotalCompileCycles += Cycles;
  if (StateIdx >= 0) {
    Stats.SpecialCompileCycles += Cycles;
    Stats.SpecialCompiles++;
  } else {
    Stats.CompilesAtLevel[Level < 0 ? 0 : (Level > 2 ? 2 : Level)]++;
  }

  if (!Pipeline.async() || Level < 1) {
    // Synchronous back half: opt passes now, body ready on return, bytes
    // folded immediately (the seed-identical bookkeeping order).
    if (Level >= 1)
      runOptPipeline(Code);
    CM->finalizeCode(std::move(Code));
    foldBytes(CM);
  } else {
    PendingBytes.push_back(CM);
    Pipeline.enqueue(CM, std::move(Code), Level, Pr);
  }
  return CM;
}

CompiledMethod *OptCompiler::compileGeneral(MethodInfo &M, int Level) {
  DCHM_CHECK(M.HasBody, "compiling a method without a body");
  IRFunction Code = M.Bytecode;
  if (Level >= 2) {
    Inliner Inl(P, InlineCfg, Olc, Plan);
    InlineStats IS = Inl.run(Code, M);
    Stats.Inlining.SitesInlined += IS.SitesInlined;
    Stats.Inlining.SpecializationInlines += IS.SpecializationInlines;
    Stats.Inlining.TradeoffRejections += IS.TradeoffRejections;
    Stats.Inlining.InstsAdded += IS.InstsAdded;
  }
  CompiledMethod *CM =
      finish(M, std::move(Code), Level, -1, CompilePriority::General);
  if (Level > M.CurOptLevel)
    M.CurOptLevel = Level;
  return CM;
}

CompiledMethod *OptCompiler::compileSpecial(MethodInfo &M, int Level,
                                            const MutableClassPlan &CP,
                                            size_t StateIdx) {
  DCHM_CHECK(M.HasBody, "compiling a method without a body");
  IRFunction Code = M.Bytecode;
  std::vector<ConsumedBinding> Consumed;
  specializeForState(Code, M, CP, StateIdx,
                     CacheEnabled ? &Consumed : nullptr);
  Stats.SpecialCompileRequests++;

  std::string Key;
  if (CacheEnabled) {
    // Content key: method + level + exactly the bindings the body consumed.
    // Fields the method never reads are excluded, so hot states that are
    // indistinguishable to this method collide — which is the point.
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "m%u|l%d", M.Id, Level);
    Key = Buf;
    for (const ConsumedBinding &B : Consumed) {
      std::snprintf(Buf, sizeof(Buf), "|f%u:%llx", B.Field,
                    static_cast<unsigned long long>(B.Bits));
      Key += Buf;
    }
    auto It = SpecCache.find(Key);
    if (It != SpecCache.end() && !It->second.CM->isInvalidated()) {
      // Identical consumed bindings mean an identical specialized body and
      // (since plan, OLC, and inliner config are fixed for the run)
      // identical post-inlining size, so charging from the cached unit size
      // reproduces a recompile's cycles bit-for-bit.
      uint64_t Cycles = CompileCost::SpecialPerCompile +
                        CompileCost::SpecialPerInst * It->second.UnitSize;
      Stats.TotalCompileCycles += Cycles;
      Stats.SpecialCompileCycles += Cycles;
      Stats.SpecialCacheHits++;
      Stats.SpecialCyclesSharedWork += Cycles;
      It->second.CM->addShare();
      return It->second.CM;
    }
  }

  if (Level >= 2) {
    Inliner Inl(P, InlineCfg, Olc, Plan);
    Inl.run(Code, M);
  }
  size_t UnitSize = Code.Insts.size();
  CompiledMethod *CM = finish(M, std::move(Code), Level,
                              static_cast<int>(StateIdx),
                              CompilePriority::Special);
  if (CacheEnabled)
    SpecCache[Key] = {CM, UnitSize};
  return CM;
}

} // namespace dchm
