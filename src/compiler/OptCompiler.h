//===-- compiler/OptCompiler.h - The MiniVM compiler ----------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-only execution model of Jikes, in miniature. Methods are
/// compiled at opt0 (a direct bytecode translation) on first invocation and
/// recompiled at opt1/opt2 when hot. opt1 runs the scalar pipeline; opt2
/// additionally inlines. Mutable methods recompiled at opt2 also get one
/// specialized compiled version per hot state (the Specializer substitutes
/// state-field constants and the pipeline collapses the residue).
/// Compile-cycle and code-byte accounting feeds Figures 10 and 11.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_COMPILER_OPTCOMPILER_H
#define DCHM_COMPILER_OPTCOMPILER_H

#include "compiler/Inliner.h"
#include "compiler/Olc.h"
#include "mutation/MutationPlan.h"
#include "runtime/CompiledMethod.h"
#include "runtime/Program.h"

namespace dchm {

/// Cumulative compiler activity over a run.
struct CompilerStats {
  uint64_t TotalCompileCycles = 0;
  uint64_t SpecialCompileCycles = 0; ///< spent on specialized versions only
  size_t TotalCodeBytes = 0;         ///< all compiled code ever generated
  size_t SpecialCodeBytes = 0;       ///< specialized versions only
  unsigned CompilesAtLevel[3] = {0, 0, 0};
  unsigned SpecialCompiles = 0;
  InlineStats Inlining;
};

/// Compiles MethodInfo bytecode into CompiledMethod artifacts.
class OptCompiler {
public:
  explicit OptCompiler(Program &P) : P(P) {}

  InlinerConfig &inlinerConfig() { return InlineCfg; }
  /// Wires in OLC analysis results (enables specialization inlining).
  void setOlcDatabase(const OlcDatabase *Db) { Olc = Db; }
  /// Wires in the mutation plan (enables the trade-off heuristic and
  /// specialized compilation).
  void setPlan(const MutationPlan *Pl) { Plan = Pl; }

  /// Compiles the general (unspecialized) version at the given level.
  /// The returned object is owned by M; the caller installs it.
  CompiledMethod *compileGeneral(MethodInfo &M, int Level);

  /// Compiles the version specialized for hot state StateIdx of CP.
  CompiledMethod *compileSpecial(MethodInfo &M, int Level,
                                 const MutableClassPlan &CP, size_t StateIdx);

  const CompilerStats &stats() const { return Stats; }

private:
  CompiledMethod *finish(MethodInfo &M, IRFunction Code, int Level,
                         int StateIdx);

  Program &P;
  InlinerConfig InlineCfg;
  const OlcDatabase *Olc = nullptr;
  const MutationPlan *Plan = nullptr;
  CompilerStats Stats;
};

} // namespace dchm

#endif // DCHM_COMPILER_OPTCOMPILER_H
