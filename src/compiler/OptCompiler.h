//===-- compiler/OptCompiler.h - The MiniVM compiler ----------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-only execution model of Jikes, in miniature. Methods are
/// compiled at opt0 (a direct bytecode translation) on first invocation and
/// recompiled at opt1/opt2 when hot. opt1 runs the scalar pipeline; opt2
/// additionally inlines. Mutable methods recompiled at opt2 also get one
/// specialized compiled version per hot state (the Specializer substitutes
/// state-field constants and the pipeline collapses the residue).
/// Compile-cycle and code-byte accounting feeds Figures 10 and 11.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_COMPILER_OPTCOMPILER_H
#define DCHM_COMPILER_OPTCOMPILER_H

#include "compiler/CompilePipeline.h"
#include "compiler/Inliner.h"
#include "compiler/Olc.h"
#include "mutation/MutationPlan.h"
#include "runtime/CompiledMethod.h"
#include "runtime/Program.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace dchm {

/// Cumulative compiler activity over a run.
///
/// The cycle fields are part of the simulated machine and are charged
/// deterministically at request time on the application thread, regardless
/// of where (or whether yet) the host-side work ran: async mode and the
/// specialization cache change wall time, compile counts, and code bytes,
/// never cycles. The byte fields of in-flight async jobs are folded in by
/// sync(); cycle fields are always current.
struct CompilerStats {
  uint64_t TotalCompileCycles = 0;
  uint64_t SpecialCompileCycles = 0; ///< spent on specialized versions only
  size_t TotalCodeBytes = 0;         ///< all compiled code ever generated
  size_t SpecialCodeBytes = 0;       ///< specialized versions only
  unsigned CompilesAtLevel[3] = {0, 0, 0};
  unsigned SpecialCompiles = 0; ///< specialized bodies actually compiled
  /// Specialized versions requested (compiles + cache hits). With the cache
  /// off this equals SpecialCompiles.
  unsigned SpecialCompileRequests = 0;
  /// Requests served by the content-keyed specialization cache: another hot
  /// state was indistinguishable to the method, so its CompiledMethod is
  /// shared across Specials slots.
  unsigned SpecialCacheHits = 0;
  /// Counterfactual: modeled cycles a hit *would* have cost to recompile.
  /// Diagnostic only — the same cycles are still charged on hits so that
  /// simulated time is bit-identical with the cache off.
  uint64_t SpecialCyclesSharedWork = 0;
  InlineStats Inlining;
};

/// Compiles MethodInfo bytecode into CompiledMethod artifacts.
///
/// Compilation is split in two: the *front half* (bytecode copy,
/// specialization, inlining, modeled-cost charging, shell creation) always
/// runs synchronously on the calling thread, so everything the simulated
/// machine can observe is fixed in program order; the *back half* (the
/// optimization pipeline and body publication) runs on the CompilePipeline,
/// possibly on a worker thread. See docs/compile_pipeline.md.
class OptCompiler {
public:
  explicit OptCompiler(Program &P) : P(P) {}

  InlinerConfig &inlinerConfig() { return InlineCfg; }
  /// Wires in OLC analysis results (enables specialization inlining).
  /// Invalidates the specialization cache: inlining decisions feed it.
  void setOlcDatabase(const OlcDatabase *Db);
  /// Wires in the mutation plan (enables the trade-off heuristic and
  /// specialized compilation). Invalidates the specialization cache.
  void setPlan(const MutationPlan *Pl);

  /// Configures background compilation and the specialization cache. The
  /// default is fully synchronous with the cache off — the seed behavior —
  /// so standalone OptCompiler users (tests, analysis tools) see code
  /// immediately; the VM opts in per VMOptions / environment.
  void configure(bool Async, unsigned Threads, bool SpecializationCache);

  /// Compiles the general (unspecialized) version at the given level.
  /// The returned object is owned by M; the caller installs it.
  CompiledMethod *compileGeneral(MethodInfo &M, int Level);

  /// Compiles the version specialized for hot state StateIdx of CP, or
  /// returns a cache-shared version another hot state already produced.
  CompiledMethod *compileSpecial(MethodInfo &M, int Level,
                                 const MutableClassPlan &CP, size_t StateIdx);

  /// Blocks until all background compilation has finished and folds the
  /// deferred byte accounting into stats(). Call before reading code bodies
  /// or byte counters; cycle counters never need it.
  void sync();

  /// Blocks until CM's body is published (no-op if it already is).
  void waitFor(CompiledMethod &CM) { Pipeline.waitFor(CM); }

  CompilePipeline &pipeline() { return Pipeline; }

  const CompilerStats &stats() const { return Stats; }

private:
  /// A specialization the cache can serve again: the compiled body plus the
  /// unit size its modeled cost was computed from (hits must charge the
  /// exact cycles a recompile would have).
  struct CacheEntry {
    CompiledMethod *CM = nullptr;
    size_t UnitSize = 0;
  };

  CompiledMethod *finish(MethodInfo &M, IRFunction Code, int Level,
                         int StateIdx, CompilePriority Pr);
  void foldBytes(CompiledMethod *CM);

  Program &P;
  InlinerConfig InlineCfg;
  const OlcDatabase *Olc = nullptr;
  const MutationPlan *Plan = nullptr;
  CompilerStats Stats;
  CompilePipeline Pipeline;
  bool CacheEnabled = false;
  /// Content key (method, level, consumed bindings) -> shared special.
  std::unordered_map<std::string, CacheEntry> SpecCache;
  /// Shells whose bodies are still in flight; byte accounting is folded by
  /// sync() once the sizes exist. Application-thread only.
  std::vector<CompiledMethod *> PendingBytes;
};

} // namespace dchm

#endif // DCHM_COMPILER_OPTCOMPILER_H
