//===-- compiler/Olc.h - Object lifetime constant database ----*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Results of the object-lifetime-constant analysis (paper section 4,
/// Figure 8), in the form the specialization inliner consumes: for each
/// private exact-type reference field (e.g. DeliveryTransaction's
/// `deliveryScreen`), the fields of the referenced object that are provably
/// constant for the object's whole lifetime (e.g. DisplayScreen's
/// rows == 24, cols == 80), with their values. The analysis itself lives in
/// analysis/OlcAnalysis; this header only defines the database so the
/// compiler does not depend on the analysis module.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_COMPILER_OLC_H
#define DCHM_COMPILER_OLC_H

#include "ir/Ids.h"
#include "runtime/Value.h"

#include <vector>

namespace dchm {

/// One proven object lifetime constant: field TargetField of the object
/// referenced by the owning entry's RefField always holds V.
struct OlcConstant {
  FieldId TargetField = NoFieldId;
  Value V = zeroValue();
};

/// All object lifetime constants reachable through one private reference
/// field of exact type TargetClass.
struct OlcEntry {
  FieldId RefField = NoFieldId;
  ClassId TargetClass = NoClassId;
  /// The constructor every assignment of RefField uses.
  MethodId Ctor = NoMethodId;
  std::vector<OlcConstant> Constants;
};

/// Database of OLC results for a program.
struct OlcDatabase {
  std::vector<OlcEntry> Entries;

  const OlcEntry *forRefField(FieldId F) const {
    for (const OlcEntry &E : Entries)
      if (E.RefField == F)
        return &E;
    return nullptr;
  }
};

} // namespace dchm

#endif // DCHM_COMPILER_OLC_H
