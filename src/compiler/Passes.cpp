//===-- compiler/Passes.cpp - Optimization passes ---------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "compiler/Passes.h"

#include "compiler/Eval.h"
#include "ir/CFG.h"
#include "support/Debug.h"

#include <algorithm>

namespace dchm {

namespace {

/// Constant lattice value for one register.
struct Lat {
  enum Kind : uint8_t { Top, Const, Bottom } K = Top;
  Value V = zeroValue();

  static Lat top() { return Lat{}; }
  static Lat constant(Value V) { return Lat{Const, V}; }
  static Lat bottom() { return Lat{Bottom, zeroValue()}; }

  bool isConst() const { return K == Const; }

  /// Lattice meet; returns true if *this changed.
  bool meet(const Lat &O) {
    if (O.K == Top)
      return false;
    if (K == Top) {
      *this = O;
      return true;
    }
    if (K == Bottom)
      return false;
    if (O.K == Bottom || O.V.I != V.I) {
      K = Bottom;
      return true;
    }
    return false;
  }
};

using State = std::vector<Lat>;

/// Applies one instruction to the running state. Returns the lattice value
/// of the destination (Bottom for unknown producers).
Lat transfer(const Instruction &I, const State &S) {
  if (!I.hasDst())
    return Lat::bottom();
  switch (I.Op) {
  case Opcode::ConstI:
    return Lat::constant(valueI(I.Imm));
  case Opcode::ConstF:
    return Lat::constant(valueF(I.FImm));
  case Opcode::ConstNull:
    return Lat::constant(valueR(nullptr));
  case Opcode::Move:
    return S[I.A];
  default:
    break;
  }
  if (isBinop(I.Op)) {
    const Lat &A = S[I.A], &B = S[I.B];
    if (A.isConst() && B.isConst() && canFoldBinop(I.Op, A.V, B.V))
      return Lat::constant(evalBinop(I.Op, A.V, B.V));
    if (A.K == Lat::Top || B.K == Lat::Top)
      return Lat::top();
    return Lat::bottom();
  }
  if (isUnop(I.Op)) {
    const Lat &A = S[I.A];
    if (A.isConst())
      return Lat::constant(evalUnop(I.Op, A.V));
    return A.K == Lat::Top ? Lat::top() : Lat::bottom();
  }
  return Lat::bottom();
}

/// True if the register's lattice constant can replace it with a Const
/// instruction of the register's type.
bool materializable(Type Ty) { return Ty == Type::I64 || Ty == Type::F64; }

} // namespace

void eraseDeadInstructions(IRFunction &F, const std::vector<bool> &Dead) {
  DCHM_CHECK(Dead.size() == F.Insts.size(), "dead vector size mismatch");
  DCHM_CHECK(!Dead.back(), "cannot erase the final terminator");
  const size_t N = F.Insts.size();
  // NewIndexAtOrAfter[i]: new index of the first surviving instruction at or
  // after old index i (branch targets always resolve to a survivor because
  // the final terminator survives).
  std::vector<uint32_t> NewIndexAtOrAfter(N + 1, 0);
  uint32_t Live = 0;
  for (size_t I = 0; I < N; ++I)
    if (!Dead[I])
      ++Live;
  uint32_t Remaining = Live;
  NewIndexAtOrAfter[N] = Live; // out of range; never used by valid targets
  for (size_t I = N; I-- > 0;) {
    if (!Dead[I])
      --Remaining;
    NewIndexAtOrAfter[I] = Remaining;
  }
  std::vector<Instruction> Out;
  Out.reserve(Live);
  for (size_t I = 0; I < N; ++I) {
    if (Dead[I])
      continue;
    Instruction Inst = std::move(F.Insts[I]);
    if (isBranch(Inst.Op))
      Inst.Imm = NewIndexAtOrAfter[static_cast<size_t>(Inst.Imm)];
    Out.push_back(std::move(Inst));
  }
  F.Insts = std::move(Out);
}

bool runConstantPropagation(IRFunction &F) {
  CFG G(F);
  const auto &Blocks = G.blocks();
  const size_t NB = Blocks.size();
  const size_t NR = F.RegTypes.size();

  // Entry state: arguments unknown, all other registers zero (frames are
  // zero-initialized by the interpreter).
  State Entry(NR);
  for (size_t R = 0; R < NR; ++R)
    Entry[R] = R < F.NumArgs ? Lat::bottom() : Lat::constant(zeroValue());

  std::vector<State> In(NB, State(NR, Lat::top()));
  In[0] = Entry;
  std::vector<bool> InWork(NB, false);
  std::vector<uint32_t> Work{0};
  InWork[0] = true;

  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    InWork[B] = false;
    State S = In[B];
    for (uint32_t I = Blocks[B].Begin; I < Blocks[B].End; ++I) {
      const Instruction &Inst = F.Insts[I];
      if (Inst.hasDst())
        S[Inst.Dst] = transfer(Inst, S);
    }
    for (uint32_t Succ : Blocks[B].Succs) {
      bool Changed = false;
      for (size_t R = 0; R < NR; ++R)
        Changed |= In[Succ][R].meet(S[R]);
      if (Changed && !InWork[Succ]) {
        InWork[Succ] = true;
        Work.push_back(Succ);
      }
    }
  }

  // Rewrite using per-block running states.
  bool Changed = false;
  for (size_t B = 0; B < NB; ++B) {
    if (!G.isReachable(static_cast<uint32_t>(B)))
      continue;
    State S = In[B];
    for (uint32_t I = Blocks[B].Begin; I < Blocks[B].End; ++I) {
      Instruction &Inst = F.Insts[I];
      Lat DstVal = Inst.hasDst() ? transfer(Inst, S) : Lat::bottom();

      // Fold a computed constant into a Const instruction.
      if (Inst.hasDst() && DstVal.isConst() && Inst.Op != Opcode::ConstI &&
          Inst.Op != Opcode::ConstF && Inst.Op != Opcode::ConstNull &&
          (isBinop(Inst.Op) || isUnop(Inst.Op) || Inst.Op == Opcode::Move) &&
          materializable(F.RegTypes[Inst.Dst])) {
        Reg Dst = Inst.Dst;
        Instruction NewInst{};
        if (F.RegTypes[Dst] == Type::I64) {
          NewInst.Op = Opcode::ConstI;
          NewInst.Ty = Type::I64;
          NewInst.Imm = DstVal.V.I;
        } else {
          NewInst.Op = Opcode::ConstF;
          NewInst.Ty = Type::F64;
          NewInst.FImm = DstVal.V.F;
        }
        NewInst.Dst = Dst;
        Inst = NewInst;
        Changed = true;
      }

      // Fold conditional branches on constant conditions.
      if ((Inst.Op == Opcode::Cbnz || Inst.Op == Opcode::Cbz) &&
          S[Inst.A].isConst()) {
        bool Taken = Inst.Op == Opcode::Cbnz ? S[Inst.A].V.I != 0
                                             : S[Inst.A].V.I == 0;
        if (Taken) {
          Inst.Op = Opcode::Br;
          Inst.A = NoReg;
        } else {
          // Fall through: rewrite into a branch to the next instruction,
          // which branch folding then deletes.
          Inst.Op = Opcode::Br;
          Inst.A = NoReg;
          Inst.Imm = static_cast<int64_t>(I) + 1;
          DCHM_CHECK(static_cast<size_t>(Inst.Imm) < F.Insts.size(),
                     "conditional fall-through at function end");
        }
        Changed = true;
      }

      if (Inst.hasDst())
        S[Inst.Dst] = DstVal;
    }
  }
  return Changed;
}

bool runCopyPropagation(IRFunction &F) {
  CFG G(F);
  bool Changed = false;
  for (const BasicBlock &B : G.blocks()) {
    // CopyOf[r] = s when r currently holds a copy of s within this block.
    std::vector<Reg> CopyOf(F.RegTypes.size(), NoReg);
    auto Resolve = [&](Reg R) {
      while (R != NoReg && CopyOf[R] != NoReg)
        R = CopyOf[R];
      return R;
    };
    auto Kill = [&](Reg Dst) {
      CopyOf[Dst] = NoReg;
      for (Reg &Src : CopyOf)
        if (Src == Dst)
          Src = NoReg;
    };
    for (uint32_t I = B.Begin; I < B.End; ++I) {
      Instruction &Inst = F.Insts[I];
      auto Fwd = [&](Reg &R) {
        Reg NewR = Resolve(R);
        if (NewR != R) {
          R = NewR;
          Changed = true;
        }
      };
      if (Inst.A != NoReg)
        Fwd(Inst.A);
      if (Inst.B != NoReg)
        Fwd(Inst.B);
      if (Inst.C != NoReg)
        Fwd(Inst.C);
      for (Reg &R : Inst.Args)
        Fwd(R);
      if (Inst.hasDst()) {
        Kill(Inst.Dst);
        if (Inst.Op == Opcode::Move && Inst.A != Inst.Dst)
          CopyOf[Inst.Dst] = Inst.A;
      }
    }
  }
  return Changed;
}

bool runStrengthReduction(IRFunction &F) {
  CFG G(F);
  bool Changed = false;
  for (const BasicBlock &B : G.blocks()) {
    // Block-local constant tracking (flow-insensitive across blocks; the
    // global pass already handled cross-block constants).
    std::vector<Lat> S(F.RegTypes.size(), Lat::bottom());
    for (uint32_t I = B.Begin; I < B.End; ++I) {
      Instruction &Inst = F.Insts[I];
      auto ConstOf = [&](Reg R) -> const Lat & { return S[R]; };
      auto ToMove = [&](Reg Src) {
        Inst.Op = Opcode::Move;
        Inst.A = Src;
        Inst.B = NoReg;
        Changed = true;
      };
      auto ToConstI = [&](int64_t V) {
        Reg Dst = Inst.Dst;
        Inst = Instruction{};
        Inst.Op = Opcode::ConstI;
        Inst.Ty = Type::I64;
        Inst.Dst = Dst;
        Inst.Imm = V;
        Changed = true;
      };
      switch (Inst.Op) {
      case Opcode::Add:
      case Opcode::Or:
      case Opcode::Xor: {
        if (ConstOf(Inst.B).isConst() && ConstOf(Inst.B).V.I == 0)
          ToMove(Inst.A);
        else if (ConstOf(Inst.A).isConst() && ConstOf(Inst.A).V.I == 0)
          ToMove(Inst.B);
        break;
      }
      case Opcode::Sub:
      case Opcode::Shl:
      case Opcode::Shr: {
        if (ConstOf(Inst.B).isConst() && ConstOf(Inst.B).V.I == 0)
          ToMove(Inst.A);
        break;
      }
      case Opcode::Mul: {
        Reg Other = NoReg;
        int64_t C = 0;
        if (ConstOf(Inst.B).isConst()) {
          Other = Inst.A;
          C = ConstOf(Inst.B).V.I;
        } else if (ConstOf(Inst.A).isConst()) {
          Other = Inst.B;
          C = ConstOf(Inst.A).V.I;
        }
        if (Other == NoReg)
          break;
        if (C == 0) {
          ToConstI(0);
        } else if (C == 1) {
          ToMove(Other);
        } else if (C > 1 && (C & (C - 1)) == 0) {
          // x * 2^k -> x << k (wrapping multiply == wrapping shift).
          int64_t K = 0;
          while ((int64_t(1) << K) != C)
            ++K;
          // Need the shift count in a register; reuse the constant operand's
          // register only if it held exactly C... simpler: emit via Imm is
          // impossible (binops take registers), so only rewrite when a
          // register already holding K is not available; skip the rewrite
          // and let the cost stand. Mul-by-power-of-two strength reduction
          // is applied when the constant operand register can be repurposed:
          // it cannot (other uses may exist), so keep the multiply when K
          // cannot be encoded. Rewrite only C == 2 as x + x.
          if (C == 2) {
            Inst.Op = Opcode::Add;
            Inst.A = Other;
            Inst.B = Other;
            Changed = true;
          }
        }
        break;
      }
      case Opcode::Div: {
        if (ConstOf(Inst.B).isConst() && ConstOf(Inst.B).V.I == 1)
          ToMove(Inst.A);
        break;
      }
      case Opcode::Rem: {
        if (ConstOf(Inst.B).isConst() && (ConstOf(Inst.B).V.I == 1 ||
                                          ConstOf(Inst.B).V.I == -1))
          ToConstI(0);
        break;
      }
      case Opcode::And: {
        if ((ConstOf(Inst.A).isConst() && ConstOf(Inst.A).V.I == 0) ||
            (ConstOf(Inst.B).isConst() && ConstOf(Inst.B).V.I == 0))
          ToConstI(0);
        break;
      }
      default:
        break;
      }
      if (Inst.hasDst())
        S[Inst.Dst] = transfer(Inst, S);
    }
  }
  return Changed;
}

bool runBranchFolding(IRFunction &F) {
  bool Changed = false;
  const size_t N = F.Insts.size();

  // Thread Br -> Br chains.
  for (size_t I = 0; I < N; ++I) {
    Instruction &Inst = F.Insts[I];
    if (!isBranch(Inst.Op))
      continue;
    size_t Target = static_cast<size_t>(Inst.Imm);
    size_t Hops = 0;
    while (F.Insts[Target].Op == Opcode::Br &&
           static_cast<size_t>(F.Insts[Target].Imm) != Target && Hops < N) {
      Target = static_cast<size_t>(F.Insts[Target].Imm);
      ++Hops;
    }
    if (Target != static_cast<size_t>(Inst.Imm)) {
      Inst.Imm = static_cast<int64_t>(Target);
      Changed = true;
    }
  }

  // Delete branches (conditional or not) to the next instruction.
  std::vector<bool> Dead(N, false);
  for (size_t I = 0; I + 1 < N; ++I) {
    const Instruction &Inst = F.Insts[I];
    if (isBranch(Inst.Op) && static_cast<size_t>(Inst.Imm) == I + 1) {
      Dead[I] = true;
      Changed = true;
    }
  }
  if (Changed)
    eraseDeadInstructions(F, Dead);
  return Changed;
}

bool runDeadCodeElimination(IRFunction &F) {
  const size_t N = F.Insts.size();
  CFG G(F);

  std::vector<bool> Keep(N, false);
  std::vector<bool> LiveReg(F.RegTypes.size(), false);

  // Seed: reachable instructions with side effects (or that direct control
  // flow). The final terminator is always kept.
  for (size_t I = 0; I < N; ++I) {
    if (!G.isReachable(G.blockOfInst(static_cast<uint32_t>(I))))
      continue;
    const Instruction &Inst = F.Insts[I];
    if (!isRemovableWhenDead(Inst.Op) || isBranch(Inst.Op))
      Keep[I] = true;
  }
  Keep[N - 1] = true;

  // Fixpoint: operands of kept instructions are live; instructions defining
  // live registers are kept.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = N; I-- > 0;) {
      const Instruction &Inst = F.Insts[I];
      if (!Keep[I] && Inst.hasDst() && LiveReg[Inst.Dst] &&
          G.isReachable(G.blockOfInst(static_cast<uint32_t>(I)))) {
        Keep[I] = true;
        Changed = true;
      }
      if (!Keep[I])
        continue;
      auto MarkLive = [&](Reg R) {
        if (R != NoReg && !LiveReg[R]) {
          LiveReg[R] = true;
          Changed = true;
        }
      };
      MarkLive(Inst.A);
      MarkLive(Inst.B);
      MarkLive(Inst.C);
      for (Reg R : Inst.Args)
        MarkLive(R);
    }
  }

  std::vector<bool> Dead(N, false);
  bool Any = false;
  for (size_t I = 0; I + 1 < N; ++I) {
    if (!Keep[I]) {
      Dead[I] = true;
      Any = true;
    }
  }
  if (Any)
    eraseDeadInstructions(F, Dead);
  return Any;
}

unsigned runOptPipeline(IRFunction &F) {
  unsigned Rounds = 0;
  for (unsigned Iter = 0; Iter < 6; ++Iter) {
    bool Changed = false;
    Changed |= runConstantPropagation(F);
    Changed |= runCopyPropagation(F);
    Changed |= runStrengthReduction(F);
    Changed |= runBranchFolding(F);
    Changed |= runDeadCodeElimination(F);
    if (!Changed)
      break;
    ++Rounds;
  }
  return Rounds;
}

} // namespace dchm
