//===-- compiler/Specializer.h - State-field specialization ---*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Specializer produces the body of a mutable method's specialized
/// compiled code: every read of a state field is replaced by the hot state's
/// constant value, after which the conventional pipeline (constant
/// propagation, branch folding, DCE, strength reduction) collapses the
/// state-dependent code. No value guards are emitted — correctness comes
/// from dispatch: the specialized code is only reachable through the special
/// TIB that the mutation engine points at objects *in* that state.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_COMPILER_SPECIALIZER_H
#define DCHM_COMPILER_SPECIALIZER_H

#include "ir/Function.h"
#include "mutation/MutationPlan.h"
#include "runtime/Program.h"

#include <vector>

namespace dchm {

/// One state binding the specializer actually consumed: the field and the
/// bit pattern of the constant folded for it (I64 value or F64 bits). The
/// sorted, deduplicated list of these is the content key of the
/// specialization cache: it names exactly the part of a hot state a given
/// method's specialized body can depend on, so two hot states that differ
/// only in fields the method never reads produce identical signatures — and
/// identical specialized code.
struct ConsumedBinding {
  FieldId Field;
  uint64_t Bits;
  bool operator==(const ConsumedBinding &O) const {
    return Field == O.Field && Bits == O.Bits;
  }
};

/// Rewrites state-field reads in F (the bytecode of method M) to the
/// constants of hot state StateIdx of Plan. Instance state fields are only
/// folded when loaded from the receiver (`this`, register 0): the special
/// TIB encodes the *receiver's* state, nothing is known about other objects.
/// Static state fields fold everywhere. Returns the number of loads folded.
/// When Consumed is non-null, the folded (field, value) bindings are
/// appended to it, deduplicated and sorted by field id.
unsigned specializeForState(IRFunction &F, const MethodInfo &M,
                            const MutableClassPlan &Plan, size_t StateIdx,
                            std::vector<ConsumedBinding> *Consumed = nullptr);

/// Number of state-field reads in F that specializeForState would fold —
/// the "M" of the paper's N > M + k inline-vs-specialize trade-off.
unsigned countSpecializableReads(const IRFunction &F, const MethodInfo &M,
                                 const MutableClassPlan &Plan);

} // namespace dchm

#endif // DCHM_COMPILER_SPECIALIZER_H
