//===-- compiler/CompilePipeline.h - Background compilation ---*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A worker-thread pool that runs the optimization pipeline for pending
/// CompiledMethod shells off the application thread. The determinism
/// contract (docs/compile_pipeline.md): everything observable in the
/// *simulated* machine — modeled compile cycles, instruction counts,
/// program output — is decided synchronously at enqueue time, in program
/// order, by OptCompiler. Workers only perform host-side optimization work
/// and publish the body via CompiledMethod::finalizeCode; scheduling can
/// therefore change wall time but never results.
///
/// Requests are prioritized: a request the application thread is blocked on
/// (waitFor) jumps the queue, general recompiles run before specialized
/// versions, and the mutation engine boosts a pending special when an object
/// actually swings into its hot state. Ties are broken by enqueue order, so
/// a single-threaded pool degrades to exactly the synchronous schedule.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_COMPILER_COMPILEPIPELINE_H
#define DCHM_COMPILER_COMPILEPIPELINE_H

#include "ir/Function.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

namespace dchm {

class CompiledMethod;
struct MethodInfo;

/// Relative urgency of a queued compile. Lower value = served first.
enum class CompilePriority : unsigned {
  Urgent = 0,  ///< the application thread is (about to be) blocked on it
  General = 1, ///< general recompile: the method's only executable version
  Special = 2, ///< specialized version: general code covers until it lands
};

/// Host-side activity counters (wall-time diagnostics; never part of the
/// simulated metrics).
struct PipelineStats {
  uint64_t Enqueued = 0;      ///< jobs handed to workers
  uint64_t InlineRuns = 0;    ///< jobs run synchronously (sync mode / opt0)
  uint64_t UrgentWaits = 0;   ///< waitFor calls that found the code pending
  uint64_t Boosts = 0;        ///< priority raises on queued jobs
  uint64_t FailedAttempts = 0; ///< attempts that faulted or missed a deadline
  uint64_t Retries = 0;        ///< failed attempts requeued with backoff
  uint64_t Quarantines = 0;    ///< methods permanently demoted to general code
};

/// Background compiler for pending CompiledMethod shells.
class CompilePipeline {
public:
  struct Config {
    bool Async = false;   ///< off: every enqueue() runs the job inline
    unsigned Threads = 1; ///< worker count when async
    /// Fault tolerance: a failed attempt (fault hook, injected fault, or
    /// deadline overrun) is retried with capped exponential backoff; after
    /// MaxAttempts failures the method is quarantined to general code
    /// permanently and the held body is published so safepoint waiters
    /// never wedge. Faults apply only to async queued jobs — inline/sync
    /// runs never fault, keeping sync hosts deterministic.
    unsigned MaxAttempts = 3;   ///< attempts per job before quarantine
    unsigned BackoffBaseMs = 1; ///< first retry delay
    unsigned BackoffCapMs = 50; ///< backoff ceiling
    unsigned DeadlineMs = 0;    ///< per-attempt opt-work deadline (0 = none)
    unsigned FaultEvery = 0;    ///< inject a failure every Nth job (0 = off)
    bool FaultPersist = false;  ///< injected faults persist across retries
  };

  /// Host-test fault hook: return true to fail this attempt of a job for M.
  using FaultHook =
      std::function<bool(const MethodInfo &M, int Level, unsigned Attempt)>;

  CompilePipeline() = default;
  ~CompilePipeline();
  CompilePipeline(const CompilePipeline &) = delete;
  CompilePipeline &operator=(const CompilePipeline &) = delete;

  /// (Re)configures the pool. Drains and stops existing workers first; must
  /// not race enqueue/waitFor (the VM configures once, at construction).
  void configure(const Config &C);
  bool async() const { return Cfg.Async; }
  unsigned threads() const { return Cfg.Threads; }

  /// Environment override helper: reads DCHM_ASYNC_COMPILE (ON/OFF/1/0) and
  /// DCHM_COMPILE_THREADS on top of the given defaults.
  static Config configFromEnv(Config Defaults);

  /// Submits the optimization work for CM's body. The shell's modeled cost
  /// is already charged and its pointer already installable; this only
  /// schedules the host-side work. In sync mode (or for jobs with no
  /// optimization pipeline to run, Level < 1) the job runs inline and CM is
  /// ready on return.
  void enqueue(CompiledMethod *CM, IRFunction Body, int Level,
               CompilePriority Pr);

  /// Blocks until CM is ready, boosting its queued job to Urgent so an idle
  /// worker picks it next. No-op if CM is already ready.
  void waitFor(CompiledMethod &CM);

  /// Raises the priority of CM's queued job (e.g. an object just swung into
  /// the hot state this special serves). Non-blocking; no-op if the job is
  /// not queued.
  void boost(CompiledMethod &CM);

  /// Blocks until every queued and in-flight job has finished.
  void drain();

  /// Installs a fault hook consulted before every async job attempt. Set it
  /// before driving the VM (or after a drain); it is read under the queue
  /// mutex, so no attempt races the installation.
  void setFaultHook(FaultHook H);

  /// True when M has exhausted its compile attempts and is pinned to
  /// general code. The adaptive system stops promoting quarantined methods.
  bool quarantined(const MethodInfo &M) const;
  uint64_t quarantineCount() const {
    return QuarantineCount.load(std::memory_order_acquire);
  }

  /// True while any job is queued or in flight. Lock-free; callers use it
  /// to skip boost bookkeeping on the hot path.
  bool hasPending() const {
    return Pending.load(std::memory_order_relaxed) != 0;
  }

  const PipelineStats &stats() const { return Stats; }

private:
  struct Job {
    CompiledMethod *CM = nullptr;
    IRFunction Body;
    int Level = 0;
    CompilePriority Pr = CompilePriority::General;
    uint64_t Seq = 0;
    unsigned Attempts = 0; ///< failed attempts so far
    uint64_t FaultId = 0;  ///< stable id for deterministic fault injection
    std::chrono::steady_clock::time_point NotBefore{}; ///< backoff gate
  };

  /// One optimization attempt; false = the attempt failed (fault hook,
  /// injected fault, or deadline overrun) and J.Body is intact for a retry.
  bool attemptJob(Job &J, const FaultHook &Hook) const;
  void workerLoop();
  void stopWorkers();

  Config Cfg;
  std::vector<std::thread> Workers;
  mutable std::mutex Mu;
  std::condition_variable WorkCv; ///< queue became non-empty / shutdown
  std::condition_variable DoneCv; ///< a job finished
  std::deque<Job> Queue;
  size_t InFlight = 0;
  uint64_t NextSeq = 0;
  bool ShuttingDown = false;
  std::atomic<size_t> Pending{0}; ///< Queue.size() + InFlight
  PipelineStats Stats;            ///< app-thread fields except via mutex
  FaultHook Hook;                 ///< guarded by Mu
  std::unordered_set<const MethodInfo *> Quarantined; ///< guarded by Mu
  std::atomic<uint64_t> QuarantineCount{0};
};

} // namespace dchm

#endif // DCHM_COMPILER_COMPILEPIPELINE_H
