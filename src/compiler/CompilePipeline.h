//===-- compiler/CompilePipeline.h - Background compilation ---*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A worker-thread pool that runs the optimization pipeline for pending
/// CompiledMethod shells off the application thread. The determinism
/// contract (docs/compile_pipeline.md): everything observable in the
/// *simulated* machine — modeled compile cycles, instruction counts,
/// program output — is decided synchronously at enqueue time, in program
/// order, by OptCompiler. Workers only perform host-side optimization work
/// and publish the body via CompiledMethod::finalizeCode; scheduling can
/// therefore change wall time but never results.
///
/// Requests are prioritized: a request the application thread is blocked on
/// (waitFor) jumps the queue, general recompiles run before specialized
/// versions, and the mutation engine boosts a pending special when an object
/// actually swings into its hot state. Ties are broken by enqueue order, so
/// a single-threaded pool degrades to exactly the synchronous schedule.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_COMPILER_COMPILEPIPELINE_H
#define DCHM_COMPILER_COMPILEPIPELINE_H

#include "ir/Function.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace dchm {

class CompiledMethod;

/// Relative urgency of a queued compile. Lower value = served first.
enum class CompilePriority : unsigned {
  Urgent = 0,  ///< the application thread is (about to be) blocked on it
  General = 1, ///< general recompile: the method's only executable version
  Special = 2, ///< specialized version: general code covers until it lands
};

/// Host-side activity counters (wall-time diagnostics; never part of the
/// simulated metrics).
struct PipelineStats {
  uint64_t Enqueued = 0;      ///< jobs handed to workers
  uint64_t InlineRuns = 0;    ///< jobs run synchronously (sync mode / opt0)
  uint64_t UrgentWaits = 0;   ///< waitFor calls that found the code pending
  uint64_t Boosts = 0;        ///< priority raises on queued jobs
};

/// Background compiler for pending CompiledMethod shells.
class CompilePipeline {
public:
  struct Config {
    bool Async = false;   ///< off: every enqueue() runs the job inline
    unsigned Threads = 1; ///< worker count when async
  };

  CompilePipeline() = default;
  ~CompilePipeline();
  CompilePipeline(const CompilePipeline &) = delete;
  CompilePipeline &operator=(const CompilePipeline &) = delete;

  /// (Re)configures the pool. Drains and stops existing workers first; must
  /// not race enqueue/waitFor (the VM configures once, at construction).
  void configure(const Config &C);
  bool async() const { return Cfg.Async; }
  unsigned threads() const { return Cfg.Threads; }

  /// Environment override helper: reads DCHM_ASYNC_COMPILE (ON/OFF/1/0) and
  /// DCHM_COMPILE_THREADS on top of the given defaults.
  static Config configFromEnv(Config Defaults);

  /// Submits the optimization work for CM's body. The shell's modeled cost
  /// is already charged and its pointer already installable; this only
  /// schedules the host-side work. In sync mode (or for jobs with no
  /// optimization pipeline to run, Level < 1) the job runs inline and CM is
  /// ready on return.
  void enqueue(CompiledMethod *CM, IRFunction Body, int Level,
               CompilePriority Pr);

  /// Blocks until CM is ready, boosting its queued job to Urgent so an idle
  /// worker picks it next. No-op if CM is already ready.
  void waitFor(CompiledMethod &CM);

  /// Raises the priority of CM's queued job (e.g. an object just swung into
  /// the hot state this special serves). Non-blocking; no-op if the job is
  /// not queued.
  void boost(CompiledMethod &CM);

  /// Blocks until every queued and in-flight job has finished.
  void drain();

  /// True while any job is queued or in flight. Lock-free; callers use it
  /// to skip boost bookkeeping on the hot path.
  bool hasPending() const {
    return Pending.load(std::memory_order_relaxed) != 0;
  }

  const PipelineStats &stats() const { return Stats; }

private:
  struct Job {
    CompiledMethod *CM = nullptr;
    IRFunction Body;
    int Level = 0;
    CompilePriority Pr = CompilePriority::General;
    uint64_t Seq = 0;
  };

  static void runJob(Job &J);
  void workerLoop();
  void stopWorkers();

  Config Cfg;
  std::vector<std::thread> Workers;
  mutable std::mutex Mu;
  std::condition_variable WorkCv; ///< queue became non-empty / shutdown
  std::condition_variable DoneCv; ///< a job finished
  std::deque<Job> Queue;
  size_t InFlight = 0;
  uint64_t NextSeq = 0;
  bool ShuttingDown = false;
  std::atomic<size_t> Pending{0}; ///< Queue.size() + InFlight
  PipelineStats Stats;            ///< app-thread fields except via mutex
};

} // namespace dchm

#endif // DCHM_COMPILER_COMPILEPIPELINE_H
