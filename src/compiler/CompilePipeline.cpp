//===-- compiler/CompilePipeline.cpp - Background compilation ----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "compiler/CompilePipeline.h"

#include "compiler/Passes.h"
#include "runtime/CompiledMethod.h"
#include "support/Debug.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/resource.h>
#endif

namespace dchm {

CompilePipeline::~CompilePipeline() {
  // Let in-flight work publish rather than tearing threads down mid-job:
  // pending shells are owned by MethodInfo objects that outlive the VM.
  drain();
  stopWorkers();
}

void CompilePipeline::configure(const Config &C) {
  drain();
  stopWorkers();
  Cfg = C;
  if (Cfg.Async) {
    Cfg.Threads = std::max(1u, Cfg.Threads);
    ShuttingDown = false;
    Workers.reserve(Cfg.Threads);
    for (unsigned I = 0; I < Cfg.Threads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }
}

CompilePipeline::Config CompilePipeline::configFromEnv(Config Defaults) {
  Config C = Defaults;
  if (const char *E = std::getenv("DCHM_ASYNC_COMPILE")) {
    C.Async = !(std::strcmp(E, "OFF") == 0 || std::strcmp(E, "off") == 0 ||
                std::strcmp(E, "0") == 0 || std::strcmp(E, "false") == 0);
  }
  if (const char *E = std::getenv("DCHM_COMPILE_THREADS")) {
    long N = std::strtol(E, nullptr, 10);
    if (N >= 1 && N <= 64)
      C.Threads = static_cast<unsigned>(N);
  }
  return C;
}

void CompilePipeline::runJob(Job &J) {
  if (J.Level >= 1)
    runOptPipeline(J.Body);
  J.CM->finalizeCode(std::move(J.Body));
}

void CompilePipeline::enqueue(CompiledMethod *CM, IRFunction Body, int Level,
                              CompilePriority Pr) {
  DCHM_CHECK(!CM->ready(), "enqueue of an already-finalized compiled method");
  Job J;
  J.CM = CM;
  J.Body = std::move(Body);
  J.Level = Level;
  J.Pr = Pr;
  // Level-0 code is a direct translation — there is no optimization work to
  // offload, and lazy first compiles sit on the application's critical path
  // anyway. Run those inline even in async mode.
  if (!Cfg.Async || Level < 1) {
    Stats.InlineRuns++;
    runJob(J);
    return;
  }
  Stats.Enqueued++;
  {
    std::lock_guard<std::mutex> L(Mu);
    J.Seq = NextSeq++;
    Queue.push_back(std::move(J));
    Pending.store(Queue.size() + InFlight, std::memory_order_relaxed);
  }
  WorkCv.notify_one();
}

void CompilePipeline::waitFor(CompiledMethod &CM) {
  if (CM.ready())
    return;
  DCHM_CHECK(Cfg.Async, "pending compiled method with a synchronous pipeline");
  Stats.UrgentWaits++;
  std::unique_lock<std::mutex> L(Mu);
  for (Job &J : Queue)
    if (J.CM == &CM)
      J.Pr = CompilePriority::Urgent;
  WorkCv.notify_all();
  DoneCv.wait(L, [&] { return CM.ready(); });
}

void CompilePipeline::boost(CompiledMethod &CM) {
  if (CM.ready())
    return;
  bool Changed = false;
  {
    std::lock_guard<std::mutex> L(Mu);
    for (Job &J : Queue)
      if (J.CM == &CM && J.Pr > CompilePriority::Urgent) {
        J.Pr = CompilePriority::Urgent;
        Stats.Boosts++;
        Changed = true;
      }
  }
  // Only kick the workers when a priority actually moved: boosts arrive in
  // bursts (one per migrated object) and re-waking the pool on each would
  // let compilation preempt the application mid-burst on small hosts.
  if (Changed)
    WorkCv.notify_all();
}

void CompilePipeline::drain() {
  // Acquire pairs with the worker's release on completion, so a fast-path
  // return still orders the caller after every finished job's writes.
  if (Pending.load(std::memory_order_acquire) == 0)
    return;
  std::unique_lock<std::mutex> L(Mu);
  DoneCv.wait(L, [&] { return Queue.empty() && InFlight == 0; });
}

void CompilePipeline::workerLoop() {
#if defined(__linux__)
  // Compiler threads yield to the application thread, like the background
  // recompilation threads of a production VM. On Linux setpriority() with
  // who == 0 applies to the calling thread only, which is exactly what we
  // want; best-effort elsewhere.
  setpriority(PRIO_PROCESS, 0, 19);
#endif
  std::unique_lock<std::mutex> L(Mu);
  for (;;) {
    WorkCv.wait(L, [&] { return ShuttingDown || !Queue.empty(); });
    if (ShuttingDown && Queue.empty())
      return;
    // Pick the best (priority, enqueue order) job. Queues stay small — at
    // most one activation burst of |mutable methods| x |hot states| — so a
    // linear scan beats maintaining a heap under the boost mutations.
    size_t Best = 0;
    for (size_t I = 1; I < Queue.size(); ++I)
      if (Queue[I].Pr < Queue[Best].Pr ||
          (Queue[I].Pr == Queue[Best].Pr && Queue[I].Seq < Queue[Best].Seq))
        Best = I;
    Job J = std::move(Queue[Best]);
    Queue.erase(Queue.begin() + static_cast<std::ptrdiff_t>(Best));
    ++InFlight;
    L.unlock();

    runJob(J);

    L.lock();
    --InFlight;
    Pending.store(Queue.size() + InFlight, std::memory_order_release);
    DoneCv.notify_all();
  }
}

void CompilePipeline::stopWorkers() {
  if (Workers.empty())
    return;
  {
    std::lock_guard<std::mutex> L(Mu);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
  Workers.clear();
}

} // namespace dchm
