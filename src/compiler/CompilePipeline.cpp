//===-- compiler/CompilePipeline.cpp - Background compilation ----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "compiler/CompilePipeline.h"

#include "compiler/Passes.h"
#include "runtime/CompiledMethod.h"
#include "support/Debug.h"
#include "support/Env.h"

#include <algorithm>

#if defined(__linux__)
#include <sys/resource.h>
#endif

namespace dchm {

CompilePipeline::~CompilePipeline() {
  // Let in-flight work publish rather than tearing threads down mid-job:
  // pending shells are owned by MethodInfo objects that outlive the VM.
  drain();
  stopWorkers();
}

void CompilePipeline::configure(const Config &C) {
  drain();
  stopWorkers();
  Cfg = C;
  if (Cfg.Async) {
    Cfg.Threads = std::max(1u, Cfg.Threads);
    ShuttingDown = false;
    Workers.reserve(Cfg.Threads);
    for (unsigned I = 0; I < Cfg.Threads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }
}

CompilePipeline::Config CompilePipeline::configFromEnv(Config Defaults) {
  // All knobs come from the support/Env.h registry (one table, one parser;
  // ranges like 1..64 compile threads live in the table too).
  Config C = Defaults;
  C.Async = env::boolOr("DCHM_ASYNC_COMPILE", C.Async);
  C.Threads =
      static_cast<unsigned>(env::intOr("DCHM_COMPILE_THREADS", C.Threads));
  C.FaultEvery = static_cast<unsigned>(
      env::intOr("DCHM_COMPILE_FAULT_EVERY", C.FaultEvery));
  C.FaultPersist = env::boolOr("DCHM_COMPILE_FAULT_PERSIST", C.FaultPersist);
  C.MaxAttempts = static_cast<unsigned>(
      env::intOr("DCHM_COMPILE_MAX_ATTEMPTS", C.MaxAttempts));
  C.DeadlineMs = static_cast<unsigned>(
      env::intOr("DCHM_COMPILE_DEADLINE_MS", C.DeadlineMs));
  return C;
}

void CompilePipeline::setFaultHook(FaultHook H) {
  std::lock_guard<std::mutex> L(Mu);
  Hook = std::move(H);
}

bool CompilePipeline::quarantined(const MethodInfo &M) const {
  if (QuarantineCount.load(std::memory_order_acquire) == 0)
    return false;
  std::lock_guard<std::mutex> L(Mu);
  return Quarantined.count(&M) != 0;
}

bool CompilePipeline::attemptJob(Job &J, const FaultHook &H) const {
  if (H && H(J.CM->method(), J.Level, J.Attempts))
    return false;
  // Deterministic count-based injection: job k fails when k is a multiple
  // of FaultEvery. Transient faults heal on the last allowed attempt so the
  // retry path is exercised without quarantining; persistent faults drive
  // the job all the way to quarantine.
  if (Cfg.FaultEvery && J.FaultId % Cfg.FaultEvery == 0 &&
      (Cfg.FaultPersist || J.Attempts + 1 < Cfg.MaxAttempts))
    return false;
  auto Start = std::chrono::steady_clock::now();
  IRFunction Body = J.Body; // keep the original for a possible retry
  if (J.Level >= 1)
    runOptPipeline(Body);
  if (Cfg.DeadlineMs &&
      std::chrono::steady_clock::now() - Start >
          std::chrono::milliseconds(Cfg.DeadlineMs))
    return false;
  J.CM->finalizeCode(std::move(Body));
  return true;
}

void CompilePipeline::enqueue(CompiledMethod *CM, IRFunction Body, int Level,
                              CompilePriority Pr) {
  DCHM_CHECK(!CM->ready(), "enqueue of an already-finalized compiled method");
  Job J;
  J.CM = CM;
  J.Body = std::move(Body);
  J.Level = Level;
  J.Pr = Pr;
  // Level-0 code is a direct translation — there is no optimization work to
  // offload, and lazy first compiles sit on the application's critical path
  // anyway. Run those inline even in async mode. Inline runs never fault:
  // sync hosts must stay deterministic, so fault tolerance is strictly an
  // async-queue property.
  if (!Cfg.Async || Level < 1) {
    Stats.InlineRuns++;
    if (J.Level >= 1)
      runOptPipeline(J.Body);
    J.CM->finalizeCode(std::move(J.Body));
    return;
  }
  J.FaultId = Stats.Enqueued;
  Stats.Enqueued++;
  {
    std::lock_guard<std::mutex> L(Mu);
    J.Seq = NextSeq++;
    Queue.push_back(std::move(J));
    Pending.store(Queue.size() + InFlight, std::memory_order_relaxed);
  }
  WorkCv.notify_one();
}

void CompilePipeline::waitFor(CompiledMethod &CM) {
  if (CM.ready())
    return;
  DCHM_CHECK(Cfg.Async, "pending compiled method with a synchronous pipeline");
  std::unique_lock<std::mutex> L(Mu);
  // Counted under Mu: several blocked mutators may arrive here concurrently.
  Stats.UrgentWaits++;
  for (Job &J : Queue)
    if (J.CM == &CM) {
      J.Pr = CompilePriority::Urgent;
      // The application thread is blocked on this code: skip any backoff
      // delay so a retry (or the quarantine decision) happens immediately.
      J.NotBefore = {};
    }
  WorkCv.notify_all();
  DoneCv.wait(L, [&] { return CM.ready(); });
}

void CompilePipeline::boost(CompiledMethod &CM) {
  if (CM.ready())
    return;
  bool Changed = false;
  {
    std::lock_guard<std::mutex> L(Mu);
    for (Job &J : Queue)
      if (J.CM == &CM && J.Pr > CompilePriority::Urgent) {
        J.Pr = CompilePriority::Urgent;
        Stats.Boosts++;
        Changed = true;
      }
  }
  // Only kick the workers when a priority actually moved: boosts arrive in
  // bursts (one per migrated object) and re-waking the pool on each would
  // let compilation preempt the application mid-burst on small hosts.
  if (Changed)
    WorkCv.notify_all();
}

void CompilePipeline::drain() {
  // Acquire pairs with the worker's release on completion, so a fast-path
  // return still orders the caller after every finished job's writes.
  if (Pending.load(std::memory_order_acquire) == 0)
    return;
  std::unique_lock<std::mutex> L(Mu);
  DoneCv.wait(L, [&] { return Queue.empty() && InFlight == 0; });
}

void CompilePipeline::workerLoop() {
#if defined(__linux__)
  // Compiler threads yield to the application thread, like the background
  // recompilation threads of a production VM. On Linux setpriority() with
  // who == 0 applies to the calling thread only, which is exactly what we
  // want; best-effort elsewhere.
  setpriority(PRIO_PROCESS, 0, 19);
#endif
  std::unique_lock<std::mutex> L(Mu);
  for (;;) {
    WorkCv.wait(L, [&] { return ShuttingDown || !Queue.empty(); });
    if (ShuttingDown && Queue.empty())
      return;
    // Pick the best (priority, enqueue order) job among the runnable ones
    // (backoff gates may hold some back; on shutdown every job is runnable
    // so the drain cannot hang on a retry delay). Queues stay small — at
    // most one activation burst of |mutable methods| x |hot states| — so a
    // linear scan beats maintaining a heap under the boost mutations.
    auto Now = std::chrono::steady_clock::now();
    size_t Best = Queue.size();
    auto Earliest = std::chrono::steady_clock::time_point::max();
    for (size_t I = 0; I < Queue.size(); ++I) {
      if (!ShuttingDown && Queue[I].NotBefore > Now) {
        Earliest = std::min(Earliest, Queue[I].NotBefore);
        continue;
      }
      if (Best == Queue.size() || Queue[I].Pr < Queue[Best].Pr ||
          (Queue[I].Pr == Queue[Best].Pr && Queue[I].Seq < Queue[Best].Seq))
        Best = I;
    }
    if (Best == Queue.size()) {
      // Everything queued is backing off; sleep until the earliest retry
      // (or a notify: shutdown, a new job, or waitFor clearing a gate).
      WorkCv.wait_until(L, Earliest);
      continue;
    }
    Job J = std::move(Queue[Best]);
    Queue.erase(Queue.begin() + static_cast<std::ptrdiff_t>(Best));
    ++InFlight;
    FaultHook HookCopy = Hook;
    L.unlock();

    bool Ok = attemptJob(J, HookCopy);

    L.lock();
    if (!Ok) {
      ++Stats.FailedAttempts;
      ++J.Attempts;
      if (J.Attempts >= Cfg.MaxAttempts) {
        // Quarantine: pin the method to general code permanently and
        // publish the held (unoptimized, semantics-preserving) body so
        // waitFor callers and the interpreter's pending-shell safepoint
        // are released — a failed compile must never wedge the app thread.
        ++Stats.Quarantines;
        Quarantined.insert(&J.CM->method());
        QuarantineCount.fetch_add(1, std::memory_order_release);
        L.unlock();
        J.CM->finalizeCode(std::move(J.Body));
        L.lock();
      } else {
        ++Stats.Retries;
        unsigned Shift = J.Attempts - 1 < 16 ? J.Attempts - 1 : 16;
        unsigned DelayMs = std::min(Cfg.BackoffBaseMs << Shift,
                                    Cfg.BackoffCapMs);
        J.NotBefore = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(DelayMs);
        Queue.push_back(std::move(J));
      }
    }
    --InFlight;
    Pending.store(Queue.size() + InFlight, std::memory_order_release);
    DoneCv.notify_all();
  }
}

void CompilePipeline::stopWorkers() {
  if (Workers.empty())
    return;
  {
    std::lock_guard<std::mutex> L(Mu);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
  Workers.clear();
}

} // namespace dchm
