//===-- compiler/Inliner.h - Method inlining ------------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opt2 inliner. Reproduces the three inlining behaviors the paper
/// depends on:
///
///  1. Conventional heuristic inlining of exact-target calls (static,
///     special, and effectively-final virtual calls), bounded by callee
///     size, depth, and total growth — Jikes' static size heuristics.
///  2. *Specialization inlining* (paper section 5): when the receiver is a
///     private exact-type reference field with object lifetime constants,
///     the callee is devirtualized through the exact type, inlined, and the
///     OLC fields are substituted with their constants — no value guards.
///     Fields without OLC proofs stay as loads (partial specialization).
///  3. The inline-vs-specialize trade-off for mutable methods: with N
///     constant arguments at the call site and M specializable state fields
///     in the callee, inline only when N > M + k (tunable k); otherwise
///     leave the virtual dispatch in place so the special-TIB mechanism can
///     bind the call to specialized code.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_COMPILER_INLINER_H
#define DCHM_COMPILER_INLINER_H

#include "compiler/Olc.h"
#include "mutation/MutationPlan.h"
#include "runtime/Program.h"

namespace dchm {

/// Tunables for the inliner (paper defaults in comments).
struct InlinerConfig {
  unsigned MaxCalleeInsts = 36;     ///< callee bytecode size bound
  unsigned MaxDepth = 3;            ///< inlining depth bound
  unsigned MaxFunctionGrowth = 400; ///< total instructions added per root
  int TradeoffK = 0;                ///< k of the N > M + k heuristic
  bool EnableSpecializationInlining = true;
  /// Jikes-style guarded inlining for polymorphic virtual calls: inline the
  /// statically-named target under an exact-class test, with the original
  /// virtual call as the slow path. Off by default (the paper's system
  /// relies on specialization instead; this exists for the ablation study).
  bool EnableGuardedInlining = false;
  /// OLC presence lowers the modeled inlining cost of a callee: each OLC
  /// substitution credits this many instructions against the size bound.
  unsigned OlcSizeCredit = 2;
};

/// Per-run inlining statistics (Figure 10/11 inputs).
struct InlineStats {
  unsigned SitesInlined = 0;
  unsigned SpecializationInlines = 0; ///< OLC-substituting inlines
  unsigned GuardedInlines = 0;        ///< class-test-guarded inlines
  unsigned TradeoffRejections = 0;    ///< sites left to specialization
  unsigned InstsAdded = 0;
};

/// Inlines call sites of F (the body of Root) in place.
class Inliner {
public:
  Inliner(Program &P, const InlinerConfig &Cfg, const OlcDatabase *Olc,
          const MutationPlan *Plan);

  /// Runs inlining rounds up to the configured depth. Returns statistics.
  InlineStats run(IRFunction &F, const MethodInfo &Root);

private:
  /// Exact dispatch target of the call at F.Insts[Idx], or null when the
  /// target cannot be proven (polymorphic virtual call, interface call
  /// without exact receiver type).
  const MethodInfo *resolveExactTarget(const IRFunction &F,
                                       const Instruction &Call,
                                       const MethodInfo &Root,
                                       const OlcEntry **OlcOut) const;

  bool shouldInline(const IRFunction &F, const Instruction &Call,
                    const MethodInfo &Callee, const OlcEntry *Olc,
                    unsigned Budget, InlineStats &Stats) const;

  /// Splices Callee's bytecode over the call at CallIdx. When Guarded, the
  /// body runs under an exact-class test with the original virtual call as
  /// the slow path. Returns the number of instructions the function grew by.
  unsigned spliceCall(IRFunction &F, size_t CallIdx, const MethodInfo &Callee,
                      const OlcEntry *Olc, bool Guarded = false);

  Program &P;
  InlinerConfig Cfg;
  const OlcDatabase *Olc;
  const MutationPlan *Plan;
  /// SlotRoot -> number of implementations (for effectively-final tests).
  std::vector<uint32_t> ImplCountBySlotRoot;
};

} // namespace dchm

#endif // DCHM_COMPILER_INLINER_H
