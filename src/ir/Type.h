//===-- ir/Type.h - MiniVM value types ------------------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM IR is typed with a deliberately small lattice: 64-bit signed
/// integers, 64-bit floats, and object references. This is enough to express
/// every benchmark in the paper (Java's narrower primitive types are modeled
/// as I64; `double salary` maps to F64; objects and arrays map to Ref).
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_IR_TYPE_H
#define DCHM_IR_TYPE_H

#include <cstdint>

namespace dchm {

/// Value type of an IR register, field, or array element.
enum class Type : uint8_t {
  Void, ///< No value (method return type only).
  I64,  ///< 64-bit signed integer (also used for booleans and chars).
  F64,  ///< 64-bit IEEE double.
  Ref,  ///< Reference to a heap object or array (nullable).
};

/// Human-readable name for a type, for printers and diagnostics.
inline const char *typeName(Type Ty) {
  switch (Ty) {
  case Type::Void:
    return "void";
  case Type::I64:
    return "i64";
  case Type::F64:
    return "f64";
  case Type::Ref:
    return "ref";
  }
  return "<bad-type>";
}

} // namespace dchm

#endif // DCHM_IR_TYPE_H
