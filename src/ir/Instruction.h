//===-- ir/Instruction.h - MiniVM IR instruction --------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single flat instruction record. The IR is a linear list of these per
/// function; branch targets are instruction indices, so "basic blocks" are
/// derived views (see CFG.h) rather than owning containers. This keeps the
/// interpreter a simple indexed loop and makes cloning for specialization
/// (the core mutation operation) a plain vector copy.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_IR_INSTRUCTION_H
#define DCHM_IR_INSTRUCTION_H

#include "ir/Opcode.h"
#include "ir/Type.h"

#include <cstdint>
#include <limits>
#include <vector>

namespace dchm {

/// Virtual register index within a function.
using Reg = uint16_t;

/// Sentinel meaning "no register" (e.g. void Ret, no destination).
constexpr Reg NoReg = std::numeric_limits<Reg>::max();

/// Sentinel meaning "no inline-cache slot assigned" (see Instruction::IcSlot).
constexpr uint32_t NoIcSlot = std::numeric_limits<uint32_t>::max();

/// One MiniVM IR instruction.
///
/// Field usage by opcode family:
///  - arithmetic/compare: Dst, A, B (Neg/FNeg/Move/conversions use A only)
///  - ConstI: Dst, Imm; ConstF: Dst, FImm
///  - branches: Imm = target instruction index; Cbnz/Cbz also read A
///  - field ops: Imm = FieldId, Aux = resolved slot; A = object, B = value
///  - calls: Imm = MethodId, Aux = resolved dispatch slot, Args = arguments
///  - New/InstanceOf/CheckCast: Imm = ClassId
///  - NewArray/ALoad/AStore: Ty = element type
struct Instruction {
  Opcode Op;
  Type Ty = Type::I64; ///< Result type, or element type for array ops.
  Reg Dst = NoReg;
  Reg A = NoReg;
  Reg B = NoReg;
  Reg C = NoReg;
  int64_t Imm = 0;
  double FImm = 0.0;
  uint32_t Aux = 0;
  /// Set by the guarded inliner on its slow-path call: this site must never
  /// be considered for inlining again (it would be re-guarded forever).
  bool NoInline = false;
  /// Call opcodes only: index into the owning CompiledMethod's inline-cache
  /// table, assigned when the compiled code is created. NoIcSlot in bytecode
  /// bodies and any IR not installed as compiled code.
  uint32_t IcSlot = NoIcSlot;
  std::vector<Reg> Args; ///< Call arguments; empty for non-calls.

  /// True if this instruction writes a register.
  bool hasDst() const { return Dst != NoReg; }
};

} // namespace dchm

#endif // DCHM_IR_INSTRUCTION_H
