//===-- ir/Function.cpp - IR printing --------------------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include <cstdio>

namespace dchm {

std::string IRFunction::toString() const {
  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "func %s(%u args) -> %s, %zu regs\n",
                Name.c_str(), NumArgs, typeName(RetTy), RegTypes.size());
  Out += Buf;
  for (size_t I = 0; I < Insts.size(); ++I) {
    const Instruction &Inst = Insts[I];
    std::snprintf(Buf, sizeof(Buf), "  %4zu: %-12s", I, opcodeName(Inst.Op));
    Out += Buf;
    auto AppendReg = [&](const char *Prefix, Reg R) {
      if (R == NoReg)
        return;
      std::snprintf(Buf, sizeof(Buf), " %s r%u", Prefix, R);
      Out += Buf;
    };
    AppendReg("dst", Inst.Dst);
    AppendReg("a", Inst.A);
    AppendReg("b", Inst.B);
    AppendReg("c", Inst.C);
    if (Inst.Op == Opcode::ConstF) {
      std::snprintf(Buf, sizeof(Buf), " fimm %g", Inst.FImm);
      Out += Buf;
    } else if (Inst.Imm != 0 || Inst.Op == Opcode::ConstI ||
               isBranch(Inst.Op) || isCall(Inst.Op)) {
      std::snprintf(Buf, sizeof(Buf), " imm %lld",
                    static_cast<long long>(Inst.Imm));
      Out += Buf;
    }
    if (!Inst.Args.empty()) {
      Out += " args(";
      for (size_t J = 0; J < Inst.Args.size(); ++J) {
        std::snprintf(Buf, sizeof(Buf), "%sr%u", J ? "," : "", Inst.Args[J]);
        Out += Buf;
      }
      Out += ")";
    }
    Out += "\n";
  }
  return Out;
}

} // namespace dchm
