//===-- ir/Ids.h - Symbolic program entity ids -----------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense integer ids naming classes, fields, and methods. The IR references
/// program entities symbolically through these (like constant-pool indices
/// in Java bytecode); the runtime linker resolves them to slots and offsets.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_IR_IDS_H
#define DCHM_IR_IDS_H

#include <cstdint>
#include <limits>

namespace dchm {

using ClassId = uint32_t;
using FieldId = uint32_t;
using MethodId = uint32_t;

constexpr ClassId NoClassId = std::numeric_limits<ClassId>::max();
constexpr FieldId NoFieldId = std::numeric_limits<FieldId>::max();
constexpr MethodId NoMethodId = std::numeric_limits<MethodId>::max();

} // namespace dchm

#endif // DCHM_IR_IDS_H
