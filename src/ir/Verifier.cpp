//===-- ir/Verifier.cpp - IR structural verifier ---------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include <cstdio>

namespace dchm {

namespace {

/// Accumulates the first verification error.
class Checker {
public:
  explicit Checker(const IRFunction &F) : F(F) {}

  bool failed() const { return !Error.empty(); }
  std::string takeError() { return std::move(Error); }

  void fail(size_t InstIdx, const char *Msg) {
    if (failed())
      return;
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf), "%s: inst %zu: %s", F.Name.c_str(),
                  InstIdx, Msg);
    Error = Buf;
  }

  /// Checks that R is a valid register of type Ty.
  void reg(size_t I, Reg R, Type Ty, const char *What) {
    if (failed())
      return;
    if (R >= F.RegTypes.size()) {
      fail(I, "register out of range");
      return;
    }
    if (F.RegTypes[R] != Ty) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf), "%s: expected %s register, got %s", What,
                    typeName(Ty), typeName(F.RegTypes[R]));
      fail(I, Buf);
    }
  }

  void regAnyType(size_t I, Reg R) {
    if (!failed() && R >= F.RegTypes.size())
      fail(I, "register out of range");
  }

private:
  const IRFunction &F;
  std::string Error;
};

} // namespace

std::string verifyFunction(const IRFunction &F) {
  Checker C(F);
  if (F.Insts.empty())
    return F.Name + ": empty function";
  if (F.NumArgs > F.RegTypes.size())
    return F.Name + ": more args than registers";
  if (!isTerminator(F.Insts.back().Op))
    return F.Name + ": function does not end with a terminator";

  for (size_t I = 0; I < F.Insts.size() && !C.failed(); ++I) {
    const Instruction &Inst = F.Insts[I];
    // Argument registers are immutable by construction.
    if (Inst.hasDst() && Inst.Dst < F.NumArgs)
      C.fail(I, "writes an argument register");

    switch (Inst.Op) {
    case Opcode::ConstI:
      C.reg(I, Inst.Dst, Type::I64, "dst");
      break;
    case Opcode::ConstF:
      C.reg(I, Inst.Dst, Type::F64, "dst");
      break;
    case Opcode::ConstNull:
      C.reg(I, Inst.Dst, Type::Ref, "dst");
      break;
    case Opcode::Move:
      C.regAnyType(I, Inst.Dst);
      C.regAnyType(I, Inst.A);
      if (!C.failed() && F.RegTypes[Inst.Dst] != F.RegTypes[Inst.A])
        C.fail(I, "move between different types");
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::CmpEQ:
    case Opcode::CmpNE:
    case Opcode::CmpLT:
    case Opcode::CmpLE:
    case Opcode::CmpGT:
    case Opcode::CmpGE:
      C.reg(I, Inst.Dst, Type::I64, "dst");
      C.reg(I, Inst.A, Type::I64, "a");
      C.reg(I, Inst.B, Type::I64, "b");
      break;
    case Opcode::Neg:
      C.reg(I, Inst.Dst, Type::I64, "dst");
      C.reg(I, Inst.A, Type::I64, "a");
      break;
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
      C.reg(I, Inst.Dst, Type::F64, "dst");
      C.reg(I, Inst.A, Type::F64, "a");
      C.reg(I, Inst.B, Type::F64, "b");
      break;
    case Opcode::FNeg:
      C.reg(I, Inst.Dst, Type::F64, "dst");
      C.reg(I, Inst.A, Type::F64, "a");
      break;
    case Opcode::FCmpEQ:
    case Opcode::FCmpLT:
    case Opcode::FCmpLE:
      C.reg(I, Inst.Dst, Type::I64, "dst");
      C.reg(I, Inst.A, Type::F64, "a");
      C.reg(I, Inst.B, Type::F64, "b");
      break;
    case Opcode::I2F:
      C.reg(I, Inst.Dst, Type::F64, "dst");
      C.reg(I, Inst.A, Type::I64, "a");
      break;
    case Opcode::F2I:
      C.reg(I, Inst.Dst, Type::I64, "dst");
      C.reg(I, Inst.A, Type::F64, "a");
      break;
    case Opcode::Br:
      if (static_cast<size_t>(Inst.Imm) >= F.Insts.size())
        C.fail(I, "branch target out of range");
      break;
    case Opcode::Cbnz:
    case Opcode::Cbz:
      C.reg(I, Inst.A, Type::I64, "cond");
      if (static_cast<size_t>(Inst.Imm) >= F.Insts.size())
        C.fail(I, "branch target out of range");
      break;
    case Opcode::Ret:
      if (F.RetTy == Type::Void) {
        if (Inst.A != NoReg)
          C.fail(I, "value return from void function");
      } else {
        C.reg(I, Inst.A, F.RetTy, "return value");
      }
      break;
    case Opcode::New:
      C.reg(I, Inst.Dst, Type::Ref, "dst");
      break;
    case Opcode::NewArray:
      C.reg(I, Inst.Dst, Type::Ref, "dst");
      C.reg(I, Inst.A, Type::I64, "length");
      if (Inst.Ty == Type::Void)
        C.fail(I, "array of void");
      break;
    case Opcode::ALoad:
      C.reg(I, Inst.Dst, Inst.Ty, "dst");
      C.reg(I, Inst.A, Type::Ref, "array");
      C.reg(I, Inst.B, Type::I64, "index");
      break;
    case Opcode::AStore:
      C.reg(I, Inst.A, Type::Ref, "array");
      C.reg(I, Inst.B, Type::I64, "index");
      C.reg(I, Inst.C, Inst.Ty, "value");
      break;
    case Opcode::ALen:
      C.reg(I, Inst.Dst, Type::I64, "dst");
      C.reg(I, Inst.A, Type::Ref, "array");
      break;
    case Opcode::GetField:
      C.reg(I, Inst.Dst, Inst.Ty, "dst");
      C.reg(I, Inst.A, Type::Ref, "object");
      break;
    case Opcode::PutField:
      C.reg(I, Inst.A, Type::Ref, "object");
      C.regAnyType(I, Inst.B);
      break;
    case Opcode::GetStatic:
      C.reg(I, Inst.Dst, Inst.Ty, "dst");
      break;
    case Opcode::PutStatic:
      C.regAnyType(I, Inst.A);
      break;
    case Opcode::CallStatic:
    case Opcode::CallVirtual:
    case Opcode::CallSpecial:
    case Opcode::CallInterface:
      if (Inst.Ty != Type::Void)
        C.reg(I, Inst.Dst, Inst.Ty, "dst");
      else if (Inst.Dst != NoReg)
        C.fail(I, "void call with destination");
      for (Reg R : Inst.Args)
        C.regAnyType(I, R);
      if (Inst.Op != Opcode::CallStatic && !Inst.Args.empty() && !C.failed() &&
          F.RegTypes[Inst.Args[0]] != Type::Ref)
        C.fail(I, "instance call receiver must be a reference");
      break;
    case Opcode::InstanceOf:
    case Opcode::ClassEq:
      C.reg(I, Inst.Dst, Type::I64, "dst");
      C.reg(I, Inst.A, Type::Ref, "object");
      break;
    case Opcode::CheckCast:
      C.reg(I, Inst.A, Type::Ref, "object");
      break;
    case Opcode::Print:
      C.regAnyType(I, Inst.A);
      break;
    }
  }
  return C.takeError();
}

} // namespace dchm
