//===-- ir/Opcode.h - MiniVM IR opcodes -----------------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcode set of the MiniVM register IR, together with the static traits the
/// optimizer and interpreter need (purity, terminator-ness, call-ness).
/// The set mirrors the subset of Java bytecode the paper's mechanisms touch:
/// field access (the mutation hooks live on PutField/PutStatic), the four
/// invoke flavors (virtual/static/special/interface map to the TIB, JTOC,
/// direct-entry, and IMT dispatch paths of Jikes), allocation, type tests,
/// and plain arithmetic/control flow.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_IR_OPCODE_H
#define DCHM_IR_OPCODE_H

#include <cstdint>

namespace dchm {

/// Opcodes of the MiniVM register IR.
enum class Opcode : uint8_t {
  // Constants and moves.
  ConstI,    ///< Dst = Imm (i64)
  ConstF,    ///< Dst = FImm (f64)
  ConstNull, ///< Dst = null (ref)
  Move,      ///< Dst = A (type in Ty)

  // Integer arithmetic (Dst = A op B unless noted).
  Add,
  Sub,
  Mul,
  Div, ///< Traps (VM error) on division by zero.
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Neg, ///< Dst = -A

  // Floating-point arithmetic.
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,

  // Integer comparisons producing 0/1 in an i64 register.
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,

  // Floating-point comparisons producing 0/1.
  FCmpEQ,
  FCmpLT,
  FCmpLE,

  // Conversions.
  I2F, ///< Dst(f64) = (double)A
  F2I, ///< Dst(i64) = (int64)A, truncating

  // Control flow. Branch targets are instruction indices in Imm.
  Br,   ///< goto Imm
  Cbnz, ///< if (A != 0) goto Imm
  Cbz,  ///< if (A == 0) goto Imm
  Ret,  ///< return A (A == NoReg for void)

  // Object and array operations.
  New,      ///< Dst = new instance of class Imm
  NewArray, ///< Dst = new array of element type Ty, length A
  ALoad,    ///< Dst = A[B] (element type in Ty)
  AStore,   ///< A[B] = C (element type in Ty)
  ALen,     ///< Dst = A.length

  // Field access. Imm = FieldId; Aux = resolved slot (filled by the linker).
  GetField,  ///< Dst = A.field(Imm)
  PutField,  ///< A.field(Imm) = B   [mutation hook: algorithm part I]
  GetStatic, ///< Dst = static field Imm
  PutStatic, ///< static field Imm = A   [mutation hook: algorithm part I]

  // Calls. Imm = MethodId; Args holds the argument registers (receiver
  // first for instance calls). Aux = resolved vtable/IMT slot after linking.
  CallStatic,    ///< Dispatch through the JTOC entry.
  CallVirtual,   ///< Dispatch through the receiver's TIB (object TIB pointer).
  CallSpecial,   ///< Static binding via the declaring class (ctor/private/super).
  CallInterface, ///< Dispatch through the IMT.

  // Type tests against class Imm, via the TIB type-information entry.
  InstanceOf, ///< Dst = (A instanceof class Imm) ? 1 : 0
  CheckCast,  ///< Traps unless A is null or an instance of class Imm.
  ClassEq,    ///< Dst = (A's exact class == class Imm) ? 1 : 0. Emitted by
              ///< the guarded inliner (Jikes' class-test guard); never
              ///< written by FunctionBuilder users directly.

  // Program output (models System.out): appends to the VM output stream.
  // Aux == 0 prints the number, Aux == 1 prints A as a character.
  Print,
};

/// Total number of opcodes (for cost tables).
constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::Print) + 1;

/// Mnemonic for an opcode.
const char *opcodeName(Opcode Op);

/// True for instructions that end or redirect control flow.
inline bool isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::Ret;
}

/// True for conditional or unconditional branches (have a target in Imm).
inline bool isBranch(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::Cbnz || Op == Opcode::Cbz;
}

/// True for the four invoke flavors.
inline bool isCall(Opcode Op) {
  return Op == Opcode::CallStatic || Op == Opcode::CallVirtual ||
         Op == Opcode::CallSpecial || Op == Opcode::CallInterface;
}

/// True if the instruction has no side effect and its result may be removed
/// when dead. Div/Rem are impure because they can trap; loads from fields,
/// array loads, and ALen are pure-but-trapping (null deref) and are treated
/// as removable when dead, matching what an aggressive JIT proves with
/// null-check elimination.
bool isRemovableWhenDead(Opcode Op);

} // namespace dchm

#endif // DCHM_IR_OPCODE_H
