//===-- ir/CFG.h - Control-flow analysis over MiniVM IR -------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic-block view, dominator tree, and natural-loop nesting computed over
/// the linear instruction list. The paper's EQ 1 weighs a state field's
/// branch uses and assignments by their loop nesting level Li/li; the loop
/// depths come from this analysis. The optimizer's dataflow passes also run
/// over this block view.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_IR_CFG_H
#define DCHM_IR_CFG_H

#include "ir/Function.h"

#include <cstdint>
#include <vector>

namespace dchm {

/// A half-open range of instructions forming a basic block.
struct BasicBlock {
  uint32_t Begin = 0; ///< Index of the first instruction.
  uint32_t End = 0;   ///< One past the last instruction.
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;
};

/// Control-flow graph with dominators and loop nesting for one IRFunction.
/// The CFG is a snapshot: it does not track later edits to the function.
class CFG {
public:
  explicit CFG(const IRFunction &F);

  const std::vector<BasicBlock> &blocks() const { return Blocks; }
  size_t numBlocks() const { return Blocks.size(); }

  /// Block containing instruction I.
  uint32_t blockOfInst(uint32_t InstIdx) const { return InstToBlock[InstIdx]; }

  /// Immediate dominator of block B (entry block maps to itself).
  uint32_t idom(uint32_t B) const { return Idom[B]; }

  /// True if block A dominates block B.
  bool dominates(uint32_t A, uint32_t B) const;

  /// Loop nesting depth of a block (0 = not in any loop).
  uint32_t loopDepth(uint32_t B) const { return LoopDepthOfBlock[B]; }

  /// Loop nesting depth of an instruction.
  uint32_t loopDepthOfInst(uint32_t InstIdx) const {
    return LoopDepthOfBlock[InstToBlock[InstIdx]];
  }

  /// True if block B is reachable from the entry.
  bool isReachable(uint32_t B) const { return Reachable[B]; }

  /// Number of natural loops found.
  size_t numLoops() const { return NumLoops; }

private:
  void buildBlocks(const IRFunction &F);
  void computeDominators();
  void computeLoops();

  std::vector<BasicBlock> Blocks;
  std::vector<uint32_t> InstToBlock;
  std::vector<uint32_t> Idom;
  std::vector<uint32_t> RpoNumber; ///< Reverse-postorder index per block.
  std::vector<bool> Reachable;
  std::vector<uint32_t> LoopDepthOfBlock;
  size_t NumLoops = 0;
};

} // namespace dchm

#endif // DCHM_IR_CFG_H
