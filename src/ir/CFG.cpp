//===-- ir/CFG.cpp - Control-flow analysis ---------------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"

#include "support/Debug.h"

#include <algorithm>

namespace dchm {

CFG::CFG(const IRFunction &F) {
  buildBlocks(F);
  computeDominators();
  computeLoops();
}

void CFG::buildBlocks(const IRFunction &F) {
  const size_t N = F.Insts.size();
  DCHM_CHECK(N > 0, "CFG over empty function");

  // Mark leaders: entry, branch targets, and fall-through successors of
  // branches/terminators.
  std::vector<bool> Leader(N, false);
  Leader[0] = true;
  for (size_t I = 0; I < N; ++I) {
    const Instruction &Inst = F.Insts[I];
    if (isBranch(Inst.Op)) {
      DCHM_CHECK(static_cast<size_t>(Inst.Imm) < N, "branch target range");
      Leader[static_cast<size_t>(Inst.Imm)] = true;
    }
    if ((isBranch(Inst.Op) || isTerminator(Inst.Op)) && I + 1 < N)
      Leader[I + 1] = true;
  }

  InstToBlock.assign(N, 0);
  for (size_t I = 0; I < N; ++I) {
    if (Leader[I]) {
      BasicBlock BB;
      BB.Begin = static_cast<uint32_t>(I);
      Blocks.push_back(BB);
    }
    InstToBlock[I] = static_cast<uint32_t>(Blocks.size() - 1);
  }
  for (size_t B = 0; B < Blocks.size(); ++B)
    Blocks[B].End = B + 1 < Blocks.size() ? Blocks[B + 1].Begin
                                          : static_cast<uint32_t>(N);

  // Successor edges from each block's final instruction.
  for (size_t B = 0; B < Blocks.size(); ++B) {
    const Instruction &Last = F.Insts[Blocks[B].End - 1];
    auto AddEdge = [&](uint32_t To) {
      Blocks[B].Succs.push_back(To);
      Blocks[To].Preds.push_back(static_cast<uint32_t>(B));
    };
    switch (Last.Op) {
    case Opcode::Br:
      AddEdge(InstToBlock[static_cast<size_t>(Last.Imm)]);
      break;
    case Opcode::Cbnz:
    case Opcode::Cbz:
      AddEdge(InstToBlock[static_cast<size_t>(Last.Imm)]);
      if (Blocks[B].End < N)
        AddEdge(InstToBlock[Blocks[B].End]);
      break;
    case Opcode::Ret:
      break;
    default:
      // Fall-through into the next block.
      DCHM_CHECK(Blocks[B].End < N, "function falls off the end");
      AddEdge(InstToBlock[Blocks[B].End]);
      break;
    }
  }
}

void CFG::computeDominators() {
  const size_t NB = Blocks.size();
  // Reverse postorder over reachable blocks.
  std::vector<uint32_t> Postorder;
  Postorder.reserve(NB);
  std::vector<uint8_t> State(NB, 0); // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.emplace_back(0, 0);
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    if (NextSucc < Blocks[B].Succs.size()) {
      uint32_t S = Blocks[B].Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    State[B] = 2;
    Postorder.push_back(B);
    Stack.pop_back();
  }

  Reachable.assign(NB, false);
  for (uint32_t B : Postorder)
    Reachable[B] = true;

  RpoNumber.assign(NB, 0);
  std::vector<uint32_t> Rpo(Postorder.rbegin(), Postorder.rend());
  for (size_t I = 0; I < Rpo.size(); ++I)
    RpoNumber[Rpo[I]] = static_cast<uint32_t>(I);

  // Cooper-Harvey-Kennedy iterative dominance.
  constexpr uint32_t Undef = 0xFFFFFFFF;
  Idom.assign(NB, Undef);
  Idom[0] = 0;
  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RpoNumber[A] > RpoNumber[B])
        A = Idom[A];
      while (RpoNumber[B] > RpoNumber[A])
        B = Idom[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : Rpo) {
      if (B == 0)
        continue;
      uint32_t NewIdom = Undef;
      for (uint32_t P : Blocks[B].Preds) {
        if (!Reachable[P] || Idom[P] == Undef)
          continue;
        NewIdom = NewIdom == Undef ? P : Intersect(NewIdom, P);
      }
      if (NewIdom != Undef && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
  // Unreachable blocks: park their idom at the entry so queries stay safe.
  for (size_t B = 0; B < NB; ++B)
    if (Idom[B] == Undef)
      Idom[B] = 0;
}

bool CFG::dominates(uint32_t A, uint32_t B) const {
  if (!Reachable[B])
    return false;
  while (true) {
    if (A == B)
      return true;
    if (B == 0)
      return false;
    uint32_t Next = Idom[B];
    if (Next == B)
      return false;
    B = Next;
  }
}

void CFG::computeLoops() {
  const size_t NB = Blocks.size();
  LoopDepthOfBlock.assign(NB, 0);
  // Natural loop of each back edge U -> H (H dominates U): flood backwards
  // from U until H; each block's depth counts the distinct loop headers
  // whose loops contain it.
  std::vector<std::vector<uint32_t>> LoopHeadersOfBlock(NB);
  for (uint32_t U = 0; U < NB; ++U) {
    if (!Reachable[U])
      continue;
    for (uint32_t H : Blocks[U].Succs) {
      if (!dominates(H, U))
        continue;
      ++NumLoops;
      std::vector<uint32_t> Work{U};
      std::vector<bool> InLoop(NB, false);
      InLoop[H] = true;
      InLoop[U] = true;
      while (!Work.empty()) {
        uint32_t B = Work.back();
        Work.pop_back();
        if (B == H)
          continue;
        for (uint32_t P : Blocks[B].Preds) {
          if (!InLoop[P] && Reachable[P]) {
            InLoop[P] = true;
            Work.push_back(P);
          }
        }
      }
      for (uint32_t B = 0; B < NB; ++B) {
        if (!InLoop[B])
          continue;
        auto &Hdrs = LoopHeadersOfBlock[B];
        if (std::find(Hdrs.begin(), Hdrs.end(), H) == Hdrs.end())
          Hdrs.push_back(H);
      }
    }
  }
  for (uint32_t B = 0; B < NB; ++B)
    LoopDepthOfBlock[B] = static_cast<uint32_t>(LoopHeadersOfBlock[B].size());
}

} // namespace dchm
