//===-- ir/Builder.h - IR function builder --------------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FunctionBuilder is the public API for authoring MiniVM "bytecode": the
/// workloads (Table 1 programs) and the tests express method bodies through
/// it. It is a linear emitter with forward-referencable labels; finalize()
/// patches branch targets and hands back an IRFunction.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_IR_BUILDER_H
#define DCHM_IR_BUILDER_H

#include "ir/Function.h"
#include "ir/Ids.h"

#include <initializer_list>
#include <string>
#include <vector>

namespace dchm {

/// Incremental builder for one IRFunction.
class FunctionBuilder {
public:
  /// Branch label handle; create with makeLabel(), place with bind().
  using Label = uint32_t;

  FunctionBuilder(std::string Name, Type RetTy);

  /// Declares the next argument register. All arguments must be declared
  /// before any instruction is emitted. Returns the argument's register.
  Reg addArg(Type Ty);

  /// Allocates a fresh (non-argument) register of the given type.
  Reg newReg(Type Ty);

  // --- Labels -------------------------------------------------------------
  Label makeLabel();
  /// Binds a label to the position of the next emitted instruction.
  void bind(Label L);

  // --- Constants and moves -------------------------------------------------
  Reg constI(int64_t V);
  Reg constF(double V);
  Reg constNull();
  void move(Reg Dst, Reg Src);

  // --- Arithmetic / logic ---------------------------------------------------
  Reg arith(Opcode Op, Reg A, Reg B); ///< Binary int/float op by opcode.
  Reg add(Reg A, Reg B) { return arith(Opcode::Add, A, B); }
  Reg sub(Reg A, Reg B) { return arith(Opcode::Sub, A, B); }
  Reg mul(Reg A, Reg B) { return arith(Opcode::Mul, A, B); }
  Reg div(Reg A, Reg B) { return arith(Opcode::Div, A, B); }
  Reg rem(Reg A, Reg B) { return arith(Opcode::Rem, A, B); }
  Reg andI(Reg A, Reg B) { return arith(Opcode::And, A, B); }
  Reg orI(Reg A, Reg B) { return arith(Opcode::Or, A, B); }
  Reg xorI(Reg A, Reg B) { return arith(Opcode::Xor, A, B); }
  Reg shl(Reg A, Reg B) { return arith(Opcode::Shl, A, B); }
  Reg shr(Reg A, Reg B) { return arith(Opcode::Shr, A, B); }
  Reg fadd(Reg A, Reg B) { return arith(Opcode::FAdd, A, B); }
  Reg fsub(Reg A, Reg B) { return arith(Opcode::FSub, A, B); }
  Reg fmul(Reg A, Reg B) { return arith(Opcode::FMul, A, B); }
  Reg fdiv(Reg A, Reg B) { return arith(Opcode::FDiv, A, B); }
  Reg neg(Reg A);
  Reg fneg(Reg A);
  Reg i2f(Reg A);
  Reg f2i(Reg A);

  /// Comparison producing 0/1; Op must be one of the Cmp*/FCmp* opcodes.
  Reg cmp(Opcode Op, Reg A, Reg B);

  // --- Control flow ---------------------------------------------------------
  void br(Label L);
  void cbnz(Reg Cond, Label L);
  void cbz(Reg Cond, Label L);
  void ret(Reg V);
  void retVoid();

  // --- Objects, arrays, fields ----------------------------------------------
  Reg newObject(ClassId Cls);
  Reg newArray(Type ElemTy, Reg Len);
  Reg aload(Type ElemTy, Reg Arr, Reg Idx);
  void astore(Type ElemTy, Reg Arr, Reg Idx, Reg Val);
  Reg alen(Reg Arr);
  Reg getField(Reg Obj, FieldId F, Type Ty);
  void putField(Reg Obj, FieldId F, Reg Val);
  Reg getStatic(FieldId F, Type Ty);
  void putStatic(FieldId F, Reg Val);
  Reg instanceOf(Reg Obj, ClassId Cls);
  void checkCast(Reg Obj, ClassId Cls);

  // --- Calls ------------------------------------------------------------
  /// Emit a call; RetTy types the destination register (NoReg result for
  /// void). For instance calls the receiver is Args[0].
  Reg call(Opcode Kind, MethodId M, std::initializer_list<Reg> Args,
           Type RetTy);
  Reg call(Opcode Kind, MethodId M, const std::vector<Reg> &Args, Type RetTy);
  Reg callStatic(MethodId M, std::initializer_list<Reg> Args, Type RetTy) {
    return call(Opcode::CallStatic, M, Args, RetTy);
  }
  Reg callVirtual(MethodId M, std::initializer_list<Reg> Args, Type RetTy) {
    return call(Opcode::CallVirtual, M, Args, RetTy);
  }
  Reg callSpecial(MethodId M, std::initializer_list<Reg> Args, Type RetTy) {
    return call(Opcode::CallSpecial, M, Args, RetTy);
  }
  Reg callInterface(MethodId M, std::initializer_list<Reg> Args, Type RetTy) {
    return call(Opcode::CallInterface, M, Args, RetTy);
  }

  // --- Output -----------------------------------------------------------
  void printNum(Reg V, Type Ty); ///< Append number to the VM output stream.
  void printChar(Reg V);         ///< Append (char)V to the VM output stream.

  /// Number of instructions emitted so far.
  size_t size() const { return F.Insts.size(); }

  /// Declared type of an allocated register.
  Type regType(Reg R) const { return F.RegTypes.at(R); }

  /// Declared return type of the function under construction.
  Type retTy() const { return F.RetTy; }

  /// Patches labels and returns the finished function. The builder must not
  /// be used afterwards. All labels must be bound and the last instruction
  /// must be a terminator.
  IRFunction finalize();

private:
  Instruction &emit(Opcode Op);
  void useLabel(Label L, size_t InstIdx);

  IRFunction F;
  bool SealedArgs = false;
  bool Finalized = false;
  static constexpr uint32_t UnboundLabel = 0xFFFFFFFF;
  std::vector<uint32_t> LabelPos;                    // label -> inst index
  std::vector<std::pair<size_t, Label>> PatchSites;  // inst -> label
};

} // namespace dchm

#endif // DCHM_IR_BUILDER_H
