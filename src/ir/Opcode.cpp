//===-- ir/Opcode.cpp - Opcode traits -------------------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include "support/Debug.h"

namespace dchm {

const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::ConstI:
    return "consti";
  case Opcode::ConstF:
    return "constf";
  case Opcode::ConstNull:
    return "constnull";
  case Opcode::Move:
    return "move";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Neg:
    return "neg";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FNeg:
    return "fneg";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::CmpGT:
    return "cmpgt";
  case Opcode::CmpGE:
    return "cmpge";
  case Opcode::FCmpEQ:
    return "fcmpeq";
  case Opcode::FCmpLT:
    return "fcmplt";
  case Opcode::FCmpLE:
    return "fcmple";
  case Opcode::I2F:
    return "i2f";
  case Opcode::F2I:
    return "f2i";
  case Opcode::Br:
    return "br";
  case Opcode::Cbnz:
    return "cbnz";
  case Opcode::Cbz:
    return "cbz";
  case Opcode::Ret:
    return "ret";
  case Opcode::New:
    return "new";
  case Opcode::NewArray:
    return "newarray";
  case Opcode::ALoad:
    return "aload";
  case Opcode::AStore:
    return "astore";
  case Opcode::ALen:
    return "alen";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::GetStatic:
    return "getstatic";
  case Opcode::PutStatic:
    return "putstatic";
  case Opcode::CallStatic:
    return "callstatic";
  case Opcode::CallVirtual:
    return "callvirtual";
  case Opcode::CallSpecial:
    return "callspecial";
  case Opcode::CallInterface:
    return "callinterface";
  case Opcode::InstanceOf:
    return "instanceof";
  case Opcode::CheckCast:
    return "checkcast";
  case Opcode::ClassEq:
    return "classeq";
  case Opcode::Print:
    return "print";
  }
  DCHM_UNREACHABLE("unknown opcode");
}

bool isRemovableWhenDead(Opcode Op) {
  switch (Op) {
  case Opcode::ConstI:
  case Opcode::ConstF:
  case Opcode::ConstNull:
  case Opcode::Move:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Neg:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FNeg:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
  case Opcode::FCmpEQ:
  case Opcode::FCmpLT:
  case Opcode::FCmpLE:
  case Opcode::I2F:
  case Opcode::F2I:
  case Opcode::GetField:
  case Opcode::GetStatic:
  case Opcode::ALoad:
  case Opcode::ALen:
  case Opcode::InstanceOf:
  case Opcode::ClassEq:
    return true;
  default:
    return false;
  }
}

} // namespace dchm
