//===-- ir/Function.h - MiniVM IR function --------------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRFunction is the unit of compilation: the "bytecode" attached to a
/// MethodInfo, and also the body of every CompiledMethod the optimizer
/// produces (the MiniVM "machine code" is optimized IR executed by a
/// costed interpreter; see exec/Interpreter.h).
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_IR_FUNCTION_H
#define DCHM_IR_FUNCTION_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace dchm {

/// A function body in MiniVM IR.
struct IRFunction {
  std::string Name;
  Type RetTy = Type::Void;
  /// Number of leading registers that are arguments (receiver first for
  /// instance methods). Argument registers are never reassigned by
  /// FunctionBuilder-produced code; the Specializer relies on register 0
  /// (`this`) being immutable.
  uint16_t NumArgs = 0;
  /// Types of all registers, arguments included.
  std::vector<Type> RegTypes;
  std::vector<Instruction> Insts;

  uint16_t numRegs() const { return static_cast<uint16_t>(RegTypes.size()); }

  /// Render the function as text for debugging and golden tests.
  std::string toString() const;
};

} // namespace dchm

#endif // DCHM_IR_FUNCTION_H
