//===-- ir/Builder.cpp - IR function builder -------------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include "support/Debug.h"

namespace dchm {

FunctionBuilder::FunctionBuilder(std::string Name, Type RetTy) {
  F.Name = std::move(Name);
  F.RetTy = RetTy;
}

Reg FunctionBuilder::addArg(Type Ty) {
  DCHM_CHECK(!SealedArgs, "arguments must be declared before instructions");
  DCHM_CHECK(Ty != Type::Void, "argument cannot be void");
  F.RegTypes.push_back(Ty);
  F.NumArgs++;
  return static_cast<Reg>(F.RegTypes.size() - 1);
}

Reg FunctionBuilder::newReg(Type Ty) {
  DCHM_CHECK(Ty != Type::Void, "register cannot be void");
  DCHM_CHECK(F.RegTypes.size() < NoReg, "too many registers");
  F.RegTypes.push_back(Ty);
  return static_cast<Reg>(F.RegTypes.size() - 1);
}

FunctionBuilder::Label FunctionBuilder::makeLabel() {
  LabelPos.push_back(UnboundLabel);
  return static_cast<Label>(LabelPos.size() - 1);
}

void FunctionBuilder::bind(Label L) {
  DCHM_CHECK(L < LabelPos.size(), "unknown label");
  DCHM_CHECK(LabelPos[L] == UnboundLabel, "label bound twice");
  LabelPos[L] = static_cast<uint32_t>(F.Insts.size());
}

Instruction &FunctionBuilder::emit(Opcode Op) {
  DCHM_CHECK(!Finalized, "builder already finalized");
  SealedArgs = true;
  F.Insts.push_back(Instruction{});
  F.Insts.back().Op = Op;
  return F.Insts.back();
}

void FunctionBuilder::useLabel(Label L, size_t InstIdx) {
  DCHM_CHECK(L < LabelPos.size(), "unknown label");
  PatchSites.emplace_back(InstIdx, L);
}

Reg FunctionBuilder::constI(int64_t V) {
  Reg Dst = newReg(Type::I64);
  Instruction &I = emit(Opcode::ConstI);
  I.Ty = Type::I64;
  I.Dst = Dst;
  I.Imm = V;
  return Dst;
}

Reg FunctionBuilder::constF(double V) {
  Reg Dst = newReg(Type::F64);
  Instruction &I = emit(Opcode::ConstF);
  I.Ty = Type::F64;
  I.Dst = Dst;
  I.FImm = V;
  return Dst;
}

Reg FunctionBuilder::constNull() {
  Reg Dst = newReg(Type::Ref);
  Instruction &I = emit(Opcode::ConstNull);
  I.Ty = Type::Ref;
  I.Dst = Dst;
  return Dst;
}

void FunctionBuilder::move(Reg Dst, Reg Src) {
  DCHM_CHECK(Dst < F.RegTypes.size() && Src < F.RegTypes.size(),
             "move operand out of range");
  Instruction &I = emit(Opcode::Move);
  I.Ty = F.RegTypes[Dst];
  I.Dst = Dst;
  I.A = Src;
}

Reg FunctionBuilder::arith(Opcode Op, Reg A, Reg B) {
  bool IsFloat = Op == Opcode::FAdd || Op == Opcode::FSub ||
                 Op == Opcode::FMul || Op == Opcode::FDiv;
  Reg Dst = newReg(IsFloat ? Type::F64 : Type::I64);
  Instruction &I = emit(Op);
  I.Ty = IsFloat ? Type::F64 : Type::I64;
  I.Dst = Dst;
  I.A = A;
  I.B = B;
  return Dst;
}

Reg FunctionBuilder::neg(Reg A) {
  Reg Dst = newReg(Type::I64);
  Instruction &I = emit(Opcode::Neg);
  I.Dst = Dst;
  I.A = A;
  return Dst;
}

Reg FunctionBuilder::fneg(Reg A) {
  Reg Dst = newReg(Type::F64);
  Instruction &I = emit(Opcode::FNeg);
  I.Ty = Type::F64;
  I.Dst = Dst;
  I.A = A;
  return Dst;
}

Reg FunctionBuilder::i2f(Reg A) {
  Reg Dst = newReg(Type::F64);
  Instruction &I = emit(Opcode::I2F);
  I.Ty = Type::F64;
  I.Dst = Dst;
  I.A = A;
  return Dst;
}

Reg FunctionBuilder::f2i(Reg A) {
  Reg Dst = newReg(Type::I64);
  Instruction &I = emit(Opcode::F2I);
  I.Dst = Dst;
  I.A = A;
  return Dst;
}

Reg FunctionBuilder::cmp(Opcode Op, Reg A, Reg B) {
  Reg Dst = newReg(Type::I64);
  Instruction &I = emit(Op);
  I.Dst = Dst;
  I.A = A;
  I.B = B;
  return Dst;
}

void FunctionBuilder::br(Label L) {
  Instruction &I = emit(Opcode::Br);
  useLabel(L, F.Insts.size() - 1);
  (void)I;
}

void FunctionBuilder::cbnz(Reg Cond, Label L) {
  Instruction &I = emit(Opcode::Cbnz);
  I.A = Cond;
  useLabel(L, F.Insts.size() - 1);
}

void FunctionBuilder::cbz(Reg Cond, Label L) {
  Instruction &I = emit(Opcode::Cbz);
  I.A = Cond;
  useLabel(L, F.Insts.size() - 1);
}

void FunctionBuilder::ret(Reg V) {
  DCHM_CHECK(F.RetTy != Type::Void, "value return from void function");
  Instruction &I = emit(Opcode::Ret);
  I.Ty = F.RetTy;
  I.A = V;
}

void FunctionBuilder::retVoid() {
  DCHM_CHECK(F.RetTy == Type::Void, "void return from non-void function");
  emit(Opcode::Ret);
}

Reg FunctionBuilder::newObject(ClassId Cls) {
  Reg Dst = newReg(Type::Ref);
  Instruction &I = emit(Opcode::New);
  I.Ty = Type::Ref;
  I.Dst = Dst;
  I.Imm = Cls;
  return Dst;
}

Reg FunctionBuilder::newArray(Type ElemTy, Reg Len) {
  Reg Dst = newReg(Type::Ref);
  Instruction &I = emit(Opcode::NewArray);
  I.Ty = ElemTy;
  I.Dst = Dst;
  I.A = Len;
  return Dst;
}

Reg FunctionBuilder::aload(Type ElemTy, Reg Arr, Reg Idx) {
  Reg Dst = newReg(ElemTy);
  Instruction &I = emit(Opcode::ALoad);
  I.Ty = ElemTy;
  I.Dst = Dst;
  I.A = Arr;
  I.B = Idx;
  return Dst;
}

void FunctionBuilder::astore(Type ElemTy, Reg Arr, Reg Idx, Reg Val) {
  Instruction &I = emit(Opcode::AStore);
  I.Ty = ElemTy;
  I.A = Arr;
  I.B = Idx;
  I.C = Val;
}

Reg FunctionBuilder::alen(Reg Arr) {
  Reg Dst = newReg(Type::I64);
  Instruction &I = emit(Opcode::ALen);
  I.Dst = Dst;
  I.A = Arr;
  return Dst;
}

Reg FunctionBuilder::getField(Reg Obj, FieldId Fld, Type Ty) {
  Reg Dst = newReg(Ty);
  Instruction &I = emit(Opcode::GetField);
  I.Ty = Ty;
  I.Dst = Dst;
  I.A = Obj;
  I.Imm = Fld;
  return Dst;
}

void FunctionBuilder::putField(Reg Obj, FieldId Fld, Reg Val) {
  Instruction &I = emit(Opcode::PutField);
  I.A = Obj;
  I.B = Val;
  I.Imm = Fld;
}

Reg FunctionBuilder::getStatic(FieldId Fld, Type Ty) {
  Reg Dst = newReg(Ty);
  Instruction &I = emit(Opcode::GetStatic);
  I.Ty = Ty;
  I.Dst = Dst;
  I.Imm = Fld;
  return Dst;
}

void FunctionBuilder::putStatic(FieldId Fld, Reg Val) {
  Instruction &I = emit(Opcode::PutStatic);
  I.A = Val;
  I.Imm = Fld;
}

Reg FunctionBuilder::instanceOf(Reg Obj, ClassId Cls) {
  Reg Dst = newReg(Type::I64);
  Instruction &I = emit(Opcode::InstanceOf);
  I.Dst = Dst;
  I.A = Obj;
  I.Imm = Cls;
  return Dst;
}

void FunctionBuilder::checkCast(Reg Obj, ClassId Cls) {
  Instruction &I = emit(Opcode::CheckCast);
  I.A = Obj;
  I.Imm = Cls;
}

Reg FunctionBuilder::call(Opcode Kind, MethodId M,
                          const std::vector<Reg> &Args, Type RetTy) {
  DCHM_CHECK(isCall(Kind), "call() requires a call opcode");
  Reg Dst = RetTy == Type::Void ? NoReg : newReg(RetTy);
  Instruction &I = emit(Kind);
  I.Ty = RetTy;
  I.Dst = Dst;
  I.Imm = M;
  I.Args = Args;
  return Dst;
}

Reg FunctionBuilder::call(Opcode Kind, MethodId M,
                          std::initializer_list<Reg> Args, Type RetTy) {
  return call(Kind, M, std::vector<Reg>(Args), RetTy);
}

void FunctionBuilder::printNum(Reg V, Type Ty) {
  Instruction &I = emit(Opcode::Print);
  I.Ty = Ty;
  I.A = V;
  I.Aux = 0;
}

void FunctionBuilder::printChar(Reg V) {
  Instruction &I = emit(Opcode::Print);
  I.Ty = Type::I64;
  I.A = V;
  I.Aux = 1;
}

IRFunction FunctionBuilder::finalize() {
  DCHM_CHECK(!Finalized, "builder already finalized");
  DCHM_CHECK(!F.Insts.empty(), "empty function");
  DCHM_CHECK(isTerminator(F.Insts.back().Op),
             "function must end with a terminator");
  for (auto [InstIdx, L] : PatchSites) {
    DCHM_CHECK(LabelPos[L] != UnboundLabel, "branch to unbound label");
    DCHM_CHECK(LabelPos[L] <= F.Insts.size(), "label out of range");
    // A label bound after the last instruction is only legal if every branch
    // to it is dead; point it at the terminator to stay in range.
    F.Insts[InstIdx].Imm =
        LabelPos[L] == F.Insts.size() ? LabelPos[L] - 1 : LabelPos[L];
  }
  Finalized = true;
  return std::move(F);
}

} // namespace dchm
