//===-- ir/Verifier.h - IR structural verifier ----------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and type checks over a single IRFunction. Run on every
/// user-built method body when a Program is linked, and (in tests) on the
/// output of every optimizer pass. Cross-entity checks (field/method ids,
/// argument counts against signatures) live in runtime/Program.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_IR_VERIFIER_H
#define DCHM_IR_VERIFIER_H

#include "ir/Function.h"

#include <string>

namespace dchm {

/// Verifies one function. Returns an empty string when the function is
/// well-formed, otherwise a description of the first problem found.
///
/// Checks: register indices and types per opcode, branch targets in range,
/// final instruction is a terminator, and that argument registers are never
/// reassigned (the Specializer folds `this`-relative field loads and relies
/// on register 0 staying bound to the receiver).
std::string verifyFunction(const IRFunction &F);

} // namespace dchm

#endif // DCHM_IR_VERIFIER_H
