//===-- testing/ProgramGen.h - Random MVM program generator ---*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generator of MVM programs exercising everything the
/// mutation engine touches: class families with mutable base classes
/// (instance and static state fields, constructors assigning hot and cold
/// states, an optional object-lifetime-constant field), subclasses
/// overriding a subset of the mutable methods through invokespecial super
/// constructors, interfaces dispatched through the IMT (including a wide
/// interface that forces conflict stubs), instanceof/checkcast, and a
/// random driver method that creates objects, swings their states, and
/// calls through every dispatch kind while accumulating a printed checksum.
///
/// Programs render to `.mvm` text (docs/mvm-format.md) with `#!` plan
/// directives in comments, so any failure replays byte-for-byte under
/// tools/dchm_run and shrinks with the greedy delta-minimizer here. See
/// docs/fuzzing.md.
///
/// Besides `Main.main`, every program renders a `Main.tmain` driver obeying
/// the guest thread-safety contract (docs/threads.md): it allocates its own
/// objects and never stores to a static field, so N mutator threads can run
/// it concurrently against one Program/Heap and each thread's output stream
/// must equal a single-mutator run of the same method (the fuzzer's
/// --threads dimension).
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_TESTING_PROGRAMGEN_H
#define DCHM_TESTING_PROGRAMGEN_H

#include "mutation/MutationPlan.h"
#include "runtime/Program.h"
#include "support/Random.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dchm {

/// One generated class family: a mutable base class `C<i>` (fields mode
/// [, mode2], acc, optionally lim and static gmode) and optionally a
/// subclass `C<i>S` overriding a subset of the mutable methods.
struct GenFamily {
  bool HasMode2 = false;       ///< second instance state field
  bool HasStaticState = false; ///< static state field gmode + scale() method
  /// Plan lists no instance state fields: the class TIB itself is
  /// specialized (the paper's static-only mutable class flavor).
  bool StaticOnlyPlan = false;
  bool HasLim = false;         ///< private ctor-assigned OLC candidate field
  bool HasSub = false;
  bool SubOverridesTick = false;
  bool SubOverridesGet = false;
  bool ImplementsWork = false; ///< single-method interface (Direct IMT entry)
  bool ImplementsWide = false; ///< 9-method interface (Conflict IMT entries)
  bool GetMutable = false;     ///< get() joins tick() in the mutable set
  bool ScaleMutable = false;   ///< scale() mutable (static method in JTOC)
  int64_t Mode2Init = 0;
  int64_t LimVal = 0;
  int64_t K2 = 0, K3 = 0;          ///< mode2 / gmode contribution factors
  std::vector<int64_t> TickAdd;    ///< per-arm constants (arms 0..2 + default)
  std::vector<int64_t> SubTickAdd; ///< override's per-arm constants
  int64_t SubGetBias = 0;
  /// Hot-state tuples: [mode (, mode2)] instance part, [gmode] static part.
  std::vector<std::vector<int64_t>> HotInstance;
  std::vector<int64_t> HotStatic; ///< aligned with HotInstance when static
};

/// One driver operation. Ops referencing a never-initialized variable are
/// silently skipped at render time, which keeps delta-minimization trivial.
struct GenOp {
  enum Kind {
    New,        ///< allocate + invokespecial ctor into variable Var
    SetMode,    ///< virtual setMode(Val) — part I instance trigger
    SetMode2,   ///< virtual setMode2(Val)
    SetStatic,  ///< putstatic gmode = Val — part I static trigger
    CallTick,   ///< Count virtual tick() calls
    CallIface,  ///< Count interface Work.tick() calls (IMT)
    CallWide,   ///< Count interface Wide.w<Val>() calls (conflict stub)
    CallStatic, ///< Count static scale() calls (JTOC)
    CallGet,    ///< one virtual get(), accumulated + printed
    TypeTest,   ///< instanceof + guarded checkcast to the subclass
    PrintAcc    ///< print the running accumulator
  } K = PrintAcc;
  int Fam = 0;
  int Var = 0;       ///< variable index within the family's slot range
  bool Sub = false;  ///< New: allocate the subclass
  int64_t Val = 0;   ///< mode value / static value / wide method index
  int64_t Count = 1; ///< loop trip count for Call* ops
};

/// The generator's model of one program: everything needed to render the
/// `.mvm` text, and the unit the shrinker edits.
struct GenModel {
  uint64_t Seed = 0;
  uint64_t Opt1 = 30, Opt2 = 120; ///< adaptive promotion thresholds
  /// With Segments > 1 the driver ops are split across `Main.seg<k>()`
  /// static methods communicating through static fields, and `Main.main()`
  /// calls them in order. A harness can instead invoke the segments one by
  /// one and retire / re-install the mutation plan between them (the
  /// `#!segments` directive says after which segment to do what) —
  /// exercising plan retirement at a genuinely quiescent point. Output is
  /// identical either way.
  int Segments = 1;
  int RetireAfterSeg = 0;    ///< retire the plan after this segment
  int ReinstallAfterSeg = 1; ///< re-install it after this (later) segment
  std::vector<GenFamily> Families;
  std::vector<GenOp> Ops;
  /// Ops of the thread-safe `Main.tmain` driver: same op language minus
  /// SetStatic (statics must be read-only once mutators run), over variables
  /// the method allocates itself (thread-confined objects).
  std::vector<GenOp> TOps;
};

/// Plan directives parsed back out of a generated (or hand-edited) `.mvm`
/// file: the mutation plan plus adaptive thresholds.
struct GenPlanInfo {
  MutationPlan Plan;
  uint64_t Opt1 = 0, Opt2 = 0; ///< 0 = directive absent, keep defaults
  /// From `#!segments <n> retire=<k> reinstall=<m>`: drive Main.seg0..n-1
  /// instead of Main.main, retiring the plan after segment k and
  /// re-installing it after segment m. Segments == 1 means no directive.
  int Segments = 1;
  int RetireAfter = -1;
  int ReinstallAfter = -1;
};

/// Seeded random MVM program generator with greedy shrinking.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed);

  /// Generates a fresh random model (replacing any previous one) and
  /// returns the rendered `.mvm` source.
  std::string generate();

  /// Renders the current model (generate() must have run).
  std::string render() const;
  const GenModel &model() const { return Model; }
  GenModel &model() { return Model; }

  /// Greedy delta-minimization: repeatedly drops driver ops, whole
  /// families, hot states, and feature flags while StillFails(render())
  /// holds, until a fixpoint. Returns the minimized source and leaves the
  /// model in the minimized state.
  std::string
  minimize(const std::function<bool(const std::string &)> &StillFails);

  /// Renders just the `#!` plan directives for the current model.
  std::string renderDirectives() const;

  /// Parses the `#!adaptive` / `#!mutable` / `#!hot` comment directives of
  /// Source against an assembled-and-linked Program, resolving class,
  /// field, and method names. Returns false (with Err set) on malformed
  /// directives or names the program does not define.
  static bool parsePlanDirectives(const std::string &Source, Program &P,
                                  GenPlanInfo &Out, std::string &Err);

private:
  void generateFamily(GenFamily &F);
  void generateOps();
  void generateThreadOps();
  void renderFamily(std::string &S, size_t FamIdx) const;
  void renderDriver(std::string &S) const;

  Rng R;
  GenModel Model;
};

} // namespace dchm

#endif // DCHM_TESTING_PROGRAMGEN_H
