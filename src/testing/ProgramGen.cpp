//===-- testing/ProgramGen.cpp - Random MVM program generator -----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "testing/ProgramGen.h"

#include <algorithm>
#include <sstream>

namespace dchm {

namespace {
std::string itos(int64_t V) { return std::to_string(V); }

/// Variables live in fixed per-family slots so ops stay valid (or become
/// render-time no-ops) as the shrinker deletes things around them.
constexpr int VarsPerFamily = 3;
} // namespace

ProgramGen::ProgramGen(uint64_t Seed) : R(Seed) { Model.Seed = Seed; }

void ProgramGen::generateFamily(GenFamily &F) {
  F.HasMode2 = R.nextBool(0.35);
  F.HasStaticState = R.nextBool(0.5);
  F.StaticOnlyPlan = F.HasStaticState && R.nextBool(0.25);
  F.HasLim = R.nextBool(0.4);
  F.HasSub = R.nextBool(0.6);
  F.SubOverridesTick = F.HasSub && R.nextBool(0.7);
  F.SubOverridesGet = F.HasSub && R.nextBool(0.5);
  F.ImplementsWork = R.nextBool(0.7);
  F.ImplementsWide = R.nextBool(0.3);
  F.GetMutable = R.nextBool(0.5);
  F.ScaleMutable = F.HasStaticState && R.nextBool(0.7);
  F.Mode2Init = R.nextInRange(0, 2);
  F.LimVal = R.nextInRange(1, 9);
  F.K2 = R.nextInRange(1, 5);
  F.K3 = R.nextInRange(1, 5);
  F.TickAdd.clear();
  F.SubTickAdd.clear();
  for (int I = 0; I < 4; ++I) {
    F.TickAdd.push_back(R.nextInRange(1, 50));
    F.SubTickAdd.push_back(R.nextInRange(1, 50));
  }
  F.SubGetBias = R.nextInRange(1, 20);

  F.HotInstance.clear();
  F.HotStatic.clear();
  size_t NumHot = static_cast<size_t>(R.nextInRange(1, 3));
  for (size_t S = 0; S < NumHot; ++S) {
    std::vector<int64_t> Tuple;
    if (!F.StaticOnlyPlan) {
      Tuple.push_back(R.nextInRange(0, 3));
      if (F.HasMode2)
        Tuple.push_back(R.nextBool(0.6) ? F.Mode2Init : R.nextInRange(0, 2));
    }
    int64_t SV = F.HasStaticState ? R.nextInRange(0, 2) : 0;
    bool Dup = false;
    for (size_t T = 0; T < F.HotInstance.size(); ++T)
      if (F.HotInstance[T] == Tuple &&
          (!F.HasStaticState || F.HotStatic[T] == SV))
        Dup = true;
    if (Dup)
      continue;
    F.HotInstance.push_back(std::move(Tuple));
    F.HotStatic.push_back(SV);
  }
}

void ProgramGen::generateOps() {
  Model.Ops.clear();
  auto Push = [&](GenOp O) { Model.Ops.push_back(O); };
  const GenFamily &F0 = Model.Families[0];
  int64_t Hot0 =
      F0.HotInstance.empty() || F0.HotInstance[0].empty()
          ? 0
          : F0.HotInstance[0][0];

  // Guaranteed prelude: construct cold, get hot past the opt2 threshold,
  // swing into the first hot state, keep calling, observe. This ensures
  // every seed reaches specialized code even if the random tail is timid.
  Push({GenOp::New, 0, 0, false, 3, 1});
  Push({GenOp::CallTick, 0, 0, false, 0, 130});
  Push({GenOp::SetMode, 0, 0, false, Hot0, 1});
  if (F0.HasMode2 && !F0.StaticOnlyPlan && F0.HotInstance[0].size() > 1)
    Push({GenOp::SetMode2, 0, 0, false, F0.HotInstance[0][1], 1});
  Push({GenOp::CallTick, 0, 0, false, 0, 40});
  Push({GenOp::CallGet, 0, 0, false, 0, 1});
  if (F0.HasStaticState) {
    Push({GenOp::SetStatic, 0, 0, false, F0.HotStatic[0], 1});
    Push({GenOp::CallStatic, 0, 0, false, 0, 25});
  }
  Push({GenOp::PrintAcc, 0, 0, false, 0, 1});

  size_t NumRandom = static_cast<size_t>(R.nextInRange(10, 30));
  for (size_t I = 0; I < NumRandom; ++I) {
    GenOp O;
    int Fam = static_cast<int>(R.nextBelow(Model.Families.size()));
    const GenFamily &F = Model.Families[static_cast<size_t>(Fam)];
    O.Fam = Fam;
    O.Var = Fam * VarsPerFamily +
            static_cast<int>(R.nextBelow(VarsPerFamily));
    // Bias mode values toward hot tuples so swings actually hit them.
    auto ModeVal = [&]() -> int64_t {
      if (!F.HotInstance.empty() && !F.HotInstance[0].empty() &&
          R.nextBool(0.5)) {
        const auto &T = F.HotInstance[R.nextBelow(F.HotInstance.size())];
        if (!T.empty())
          return T[0];
      }
      return R.nextInRange(0, 3);
    };
    uint64_t Roll = R.nextBelow(100);
    if (Roll < 10) {
      O.K = GenOp::New;
      O.Sub = F.HasSub && R.nextBool(0.5);
      O.Val = ModeVal();
    } else if (Roll < 25) {
      O.K = GenOp::SetMode;
      O.Val = ModeVal();
    } else if (Roll < 30) {
      O.K = GenOp::SetMode2;
      O.Val = R.nextInRange(0, 2);
    } else if (Roll < 40) {
      O.K = GenOp::SetStatic;
      O.Val = R.nextBool(0.6) && !F.HotStatic.empty()
                  ? F.HotStatic[R.nextBelow(F.HotStatic.size())]
                  : R.nextInRange(0, 2);
    } else if (Roll < 60) {
      O.K = GenOp::CallTick;
      O.Count = R.nextInRange(1, 50);
    } else if (Roll < 68) {
      O.K = GenOp::CallIface;
      O.Count = R.nextInRange(1, 40);
    } else if (Roll < 73) {
      O.K = GenOp::CallWide;
      O.Val = R.nextInRange(0, 8);
      O.Count = R.nextInRange(1, 20);
    } else if (Roll < 80) {
      O.K = GenOp::CallStatic;
      O.Count = R.nextInRange(1, 40);
    } else if (Roll < 88) {
      O.K = GenOp::CallGet;
    } else if (Roll < 94) {
      O.K = GenOp::TypeTest;
    } else {
      O.K = GenOp::PrintAcc;
    }
    Push(O);
  }
  Push({GenOp::PrintAcc, 0, 0, false, 0, 1});
}

void ProgramGen::generateThreadOps() {
  // The tmain driver: thread-confined objects only, no static stores. Every
  // op kind except SetStatic is fair game — SetStatic would race other
  // mutators under the guest threading contract (docs/threads.md), so its
  // probability band re-rolls as extra tick calls.
  Model.TOps.clear();
  auto Push = [&](GenOp O) { Model.TOps.push_back(O); };
  for (size_t FI = 0; FI < Model.Families.size(); ++FI) {
    const GenFamily &F = Model.Families[FI];
    int64_t Hot = F.HotInstance.empty() || F.HotInstance[0].empty()
                      ? 0
                      : F.HotInstance[0][0];
    int Fam = static_cast<int>(FI);
    int Base = Fam * VarsPerFamily;
    // Prelude per family: reach specialized code from inside the thread —
    // construct cold, run hot, swing to a hot state, keep running.
    Push({GenOp::New, Fam, Base, false, 3, 1});
    Push({GenOp::CallTick, Fam, Base, false, 0, 60});
    Push({GenOp::SetMode, Fam, Base, false, Hot, 1});
    Push({GenOp::CallTick, Fam, Base, false, 0, 30});
    Push({GenOp::CallGet, Fam, Base, false, 0, 1});
  }
  size_t NumRandom = static_cast<size_t>(R.nextInRange(8, 20));
  for (size_t I = 0; I < NumRandom; ++I) {
    GenOp O;
    int Fam = static_cast<int>(R.nextBelow(Model.Families.size()));
    const GenFamily &F = Model.Families[static_cast<size_t>(Fam)];
    O.Fam = Fam;
    O.Var = Fam * VarsPerFamily +
            static_cast<int>(R.nextBelow(VarsPerFamily));
    auto ModeVal = [&]() -> int64_t {
      if (!F.HotInstance.empty() && !F.HotInstance[0].empty() &&
          R.nextBool(0.5)) {
        const auto &T = F.HotInstance[R.nextBelow(F.HotInstance.size())];
        if (!T.empty())
          return T[0];
      }
      return R.nextInRange(0, 3);
    };
    uint64_t Roll = R.nextBelow(100);
    if (Roll < 10) {
      O.K = GenOp::New;
      O.Sub = F.HasSub && R.nextBool(0.5);
      O.Val = ModeVal();
    } else if (Roll < 25) {
      O.K = GenOp::SetMode;
      O.Val = ModeVal();
    } else if (Roll < 30) {
      O.K = GenOp::SetMode2;
      O.Val = R.nextInRange(0, 2);
    } else if (Roll < 60) { // absorbs the SetStatic band
      O.K = GenOp::CallTick;
      O.Count = R.nextInRange(1, 50);
    } else if (Roll < 68) {
      O.K = GenOp::CallIface;
      O.Count = R.nextInRange(1, 40);
    } else if (Roll < 73) {
      O.K = GenOp::CallWide;
      O.Val = R.nextInRange(0, 8);
      O.Count = R.nextInRange(1, 20);
    } else if (Roll < 80) {
      O.K = GenOp::CallStatic; // reads statics only: race-free
      O.Count = R.nextInRange(1, 40);
    } else if (Roll < 88) {
      O.K = GenOp::CallGet;
    } else if (Roll < 94) {
      O.K = GenOp::TypeTest;
    } else {
      O.K = GenOp::PrintAcc;
    }
    Push(O);
  }
  Push({GenOp::PrintAcc, 0, 0, false, 0, 1});
}

std::string ProgramGen::generate() {
  Model.Families.clear();
  Model.Opt1 = 30;
  Model.Opt2 = 120;
  Model.Segments = 1;
  Model.RetireAfterSeg = 0;
  Model.ReinstallAfterSeg = 1;
  size_t NumFam = R.nextBool(0.6) ? 2 : 1;
  Model.Families.resize(NumFam);
  for (GenFamily &F : Model.Families)
    generateFamily(F);
  generateOps();
  // Drawn last so the family/op stream for a given seed is unchanged from
  // pre-segment corpora. Three segments = plan active, retired, re-installed.
  if (R.nextBool(0.35))
    Model.Segments = 3;
  // Likewise drawn after everything else: a seed's main() is byte-identical
  // to pre-tmain corpora.
  generateThreadOps();
  return render();
}

std::string ProgramGen::renderDirectives() const {
  std::string S;
  S += "#!adaptive " + itos(static_cast<int64_t>(Model.Opt1)) + " " +
       itos(static_cast<int64_t>(Model.Opt2)) + "\n";
  if (Model.Segments > 1)
    S += "#!segments " + itos(Model.Segments) + " retire=" +
         itos(Model.RetireAfterSeg) + " reinstall=" +
         itos(Model.ReinstallAfterSeg) + "\n";
  for (size_t FI = 0; FI < Model.Families.size(); ++FI) {
    const GenFamily &F = Model.Families[FI];
    std::string CN = "C" + itos(static_cast<int64_t>(FI));
    std::string Inst = F.StaticOnlyPlan
                           ? "-"
                           : (F.HasMode2 ? "mode,mode2" : "mode");
    std::string Stat = F.HasStaticState ? "gmode" : "-";
    std::string Methods = "tick";
    if (F.GetMutable)
      Methods += ",get";
    if (F.HasStaticState && F.ScaleMutable)
      Methods += ",scale";
    S += "#!mutable " + CN + " instance=" + Inst + " static=" + Stat +
         " methods=" + Methods + "\n";
    for (size_t HS = 0; HS < F.HotInstance.size(); ++HS) {
      std::string IV;
      for (size_t I = 0; I < F.HotInstance[HS].size(); ++I)
        IV += (I ? "," : "") + itos(F.HotInstance[HS][I]);
      if (IV.empty())
        IV = "-";
      std::string SV = F.HasStaticState ? itos(F.HotStatic[HS]) : "-";
      S += "#!hot " + CN + " " + IV + " : " + SV + "\n";
    }
  }
  return S;
}

void ProgramGen::renderFamily(std::string &S, size_t FamIdx) const {
  const GenFamily &F = Model.Families[FamIdx];
  std::string CN = "C" + itos(static_cast<int64_t>(FamIdx));

  std::string Ifaces;
  if (F.ImplementsWork)
    Ifaces += "Work";
  if (F.ImplementsWide)
    Ifaces += std::string(Ifaces.empty() ? "" : ", ") + "Wide";
  S += "class " + CN + (Ifaces.empty() ? "" : " implements " + Ifaces) +
       " {\n";
  S += "  field mode: i64\n";
  if (F.HasMode2)
    S += "  field mode2: i64\n";
  S += "  field acc: i64\n";
  if (F.HasLim)
    S += "  field lim: i64 private\n";
  if (F.HasStaticState)
    S += "  field gmode: i64 static\n";

  // Constructor: assigns the state fields (hot or cold per the ctor
  // argument) so part I's constructor-exit action classifies the object.
  S += "  ctor <init>(%m: i64) {\n";
  S += "    putfield %this, " + CN + ".mode, %m\n";
  if (F.HasMode2) {
    S += "    %m2 = consti " + itos(F.Mode2Init) + "\n";
    S += "    putfield %this, " + CN + ".mode2, %m2\n";
  }
  S += "    %z = consti 0\n";
  S += "    putfield %this, " + CN + ".acc, %z\n";
  if (F.HasLim) {
    S += "    %lv = consti " + itos(F.LimVal) + "\n";
    S += "    putfield %this, " + CN + ".lim, %lv\n";
  }
  S += "    ret\n  }\n";

  // tick: branch on mode, accumulate a per-arm constant plus contributions
  // from every other kind of field, so specialization has stores to fold.
  auto RenderTick = [&](const std::vector<int64_t> &Adds) {
    S += "  method tick() -> void {\n";
    S += "    %m = getfield %this, " + CN + ".mode\n";
    S += "    %a = getfield %this, " + CN + ".acc\n";
    S += "    %x = consti 0\n";
    if (F.HasMode2) {
      S += "    %q = getfield %this, " + CN + ".mode2\n";
      S += "    %k2 = consti " + itos(F.K2) + "\n";
      S += "    %p2 = mul %q, %k2\n";
      S += "    %x = add %x, %p2\n";
    }
    if (F.HasStaticState) {
      S += "    %g = getstatic " + CN + ".gmode\n";
      S += "    %k3 = consti " + itos(F.K3) + "\n";
      S += "    %p3 = mul %g, %k3\n";
      S += "    %x = add %x, %p3\n";
    }
    if (F.HasLim) {
      S += "    %l = getfield %this, " + CN + ".lim\n";
      S += "    %x = add %x, %l\n";
    }
    for (int Arm = 0; Arm < 3; ++Arm) {
      S += "    %c" + itos(Arm) + " = consti " + itos(Arm) + "\n";
      S += "    %e" + itos(Arm) + " = cmpeq %m, %c" + itos(Arm) + "\n";
      S += "    cbnz %e" + itos(Arm) + ", @arm" + itos(Arm) + "\n";
    }
    auto Arm = [&](const std::string &Tag, int64_t Add) {
      S += "    %k" + Tag + " = consti " + itos(Add) + "\n";
      S += "    %s" + Tag + " = add %a, %k" + Tag + "\n";
      S += "    %s" + Tag + " = add %s" + Tag + ", %x\n";
      S += "    putfield %this, " + CN + ".acc, %s" + Tag + "\n";
      S += "    ret\n";
    };
    Arm("d", Adds[3]);
    for (int A = 0; A < 3; ++A) {
      S += "  @arm" + itos(A) + ":\n";
      Arm(itos(A), Adds[static_cast<size_t>(A)]);
    }
    S += "  }\n";
  };
  RenderTick(F.TickAdd);

  S += "  method get() -> i64 {\n";
  S += "    %a = getfield %this, " + CN + ".acc\n";
  S += "    ret %a\n  }\n";

  S += "  method setMode(%v: i64) -> void {\n";
  S += "    putfield %this, " + CN + ".mode, %v\n";
  S += "    ret\n  }\n";
  if (F.HasMode2) {
    S += "  method setMode2(%v: i64) -> void {\n";
    S += "    putfield %this, " + CN + ".mode2, %v\n";
    S += "    ret\n  }\n";
  }
  if (F.HasStaticState) {
    S += "  method scale() -> i64 static {\n";
    S += "    %g = getstatic " + CN + ".gmode\n";
    S += "    %k = consti " + itos(F.K3) + "\n";
    S += "    %r = mul %g, %k\n";
    S += "    ret %r\n  }\n";
  }
  if (F.ImplementsWide) {
    for (int W = 0; W < 9; ++W) {
      S += "  method w" + itos(W) + "() -> i64 {\n";
      S += "    %a = getfield %this, " + CN + ".acc\n";
      S += "    %k = consti " + itos(W + 1) + "\n";
      S += "    %r = add %a, %k\n";
      S += "    ret %r\n  }\n";
    }
  }
  S += "}\n\n";

  if (!F.HasSub)
    return;
  S += "class " + CN + "S extends " + CN + " {\n";
  S += "  ctor <init>(%m: i64) {\n";
  S += "    callspecial " + CN + ".<init>(%this, %m)\n";
  S += "    ret\n  }\n";
  if (F.SubOverridesTick)
    RenderTick(F.SubTickAdd);
  if (F.SubOverridesGet) {
    S += "  method get() -> i64 {\n";
    S += "    %a = getfield %this, " + CN + ".acc\n";
    S += "    %b = consti " + itos(F.SubGetBias) + "\n";
    S += "    %r = add %a, %b\n";
    S += "    ret %r\n  }\n";
  }
  S += "}\n\n";
}

void ProgramGen::renderDriver(std::string &S) const {
  const size_t NumVars = Model.Families.size() * VarsPerFamily;
  const int Segs = Model.Segments < 1 ? 1 : Model.Segments;

  S += "class Main {\n";
  if (Segs > 1) {
    // Segments communicate through statics: the accumulator and every
    // object variable slot round-trip the JTOC between seg<k>() calls, so
    // invoking the segments back-to-back is identical to main()'s inlined
    // sequence.
    S += "  field acc: i64 static\n";
    for (size_t V = 0; V < NumVars; ++V)
      S += "  field o" + itos(static_cast<int64_t>(V)) + ": ref static\n";
  }

  struct VarState {
    bool Init = false;
  };
  std::vector<VarState> Vars(NumVars);

  int N = 0; // unique suffix for temporaries and labels
  auto Loop = [&](int64_t Count, const std::string &Body) {
    std::string T = itos(N);
    S += "    %i" + T + " = consti 0\n";
    S += "    %n" + T + " = consti " + itos(Count) + "\n";
    S += "  @h" + T + ":\n";
    S += "    %c" + T + " = cmplt %i" + T + ", %n" + T + "\n";
    S += "    cbz %c" + T + ", @d" + T + "\n";
    S += Body;
    S += "    %i" + T + " = add %i" + T + ", %one\n";
    S += "    br @h" + T + "\n";
    S += "  @d" + T + ":\n";
  };

  auto RenderOp = [&](const GenOp &O) {
    if (O.Fam >= static_cast<int>(Model.Families.size()))
      return; // family shrunk away
    const GenFamily &F = Model.Families[static_cast<size_t>(O.Fam)];
    std::string CN = "C" + itos(O.Fam);
    std::string OV = "%o" + itos(O.Var);
    std::string T = itos(N);
    bool VarOk = Vars[static_cast<size_t>(O.Var)].Init;
    switch (O.K) {
    case GenOp::New: {
      std::string Cls = (O.Sub && F.HasSub) ? CN + "S" : CN;
      S += "    %t" + T + " = consti " + itos(O.Val) + "\n";
      S += "    " + OV + " = new " + Cls + "\n";
      S += "    callspecial " + Cls + ".<init>(" + OV + ", %t" + T + ")\n";
      Vars[static_cast<size_t>(O.Var)].Init = true;
      break;
    }
    case GenOp::SetMode:
      if (!VarOk)
        return;
      S += "    %t" + T + " = consti " + itos(O.Val) + "\n";
      S += "    callvirtual " + CN + ".setMode(" + OV + ", %t" + T + ")\n";
      break;
    case GenOp::SetMode2:
      if (!VarOk || !F.HasMode2)
        return;
      S += "    %t" + T + " = consti " + itos(O.Val) + "\n";
      S += "    callvirtual " + CN + ".setMode2(" + OV + ", %t" + T + ")\n";
      break;
    case GenOp::SetStatic:
      if (!F.HasStaticState)
        return;
      S += "    %t" + T + " = consti " + itos(O.Val) + "\n";
      S += "    putstatic " + CN + ".gmode, %t" + T + "\n";
      break;
    case GenOp::CallTick:
      if (!VarOk)
        return;
      Loop(O.Count, "    callvirtual " + CN + ".tick(" + OV + ")\n");
      break;
    case GenOp::CallIface:
      if (!VarOk || !F.ImplementsWork)
        return;
      Loop(O.Count, "    callinterface Work.tick(" + OV + ")\n");
      break;
    case GenOp::CallWide:
      if (!VarOk || !F.ImplementsWide)
        return;
      Loop(O.Count, "    %r" + T + " = callinterface Wide.w" + itos(O.Val) +
                        "(" + OV + ")\n    %acc = add %acc, %r" + T + "\n");
      break;
    case GenOp::CallStatic:
      if (!F.HasStaticState)
        return;
      Loop(O.Count, "    %r" + T + " = callstatic " + CN +
                        ".scale()\n    %acc = add %acc, %r" + T + "\n");
      break;
    case GenOp::CallGet:
      if (!VarOk)
        return;
      S += "    %r" + T + " = callvirtual " + CN + ".get(" + OV + ")\n";
      S += "    %acc = add %acc, %r" + T + "\n";
      S += "    print %r" + T + "\n";
      S += "    %nl" + T + " = consti 10\n";
      S += "    printchar %nl" + T + "\n";
      break;
    case GenOp::TypeTest:
      if (!VarOk || !F.HasSub)
        return;
      S += "    %t" + T + " = instanceof " + OV + ", " + CN + "S\n";
      S += "    print %t" + T + "\n";
      S += "    cbz %t" + T + ", @sk" + T + "\n";
      S += "    checkcast " + OV + ", " + CN + "S\n";
      S += "    %r" + T + " = callvirtual " + CN + ".get(" + OV + ")\n";
      S += "    %acc = add %acc, %r" + T + "\n";
      S += "  @sk" + T + ":\n";
      break;
    case GenOp::PrintAcc:
      S += "    print %acc\n";
      S += "    %nl" + T + " = consti 10\n";
      S += "    printchar %nl" + T + "\n";
      break;
    }
    ++N;
  };

  // The thread-safe driver: fresh variables (thread-confined objects), no
  // static stores, a local accumulator. N mutators run this concurrently in
  // the fuzzer's --threads mode; Vars resets so ops only see objects tmain
  // itself allocated.
  auto RenderTmain = [&] {
    for (VarState &V : Vars)
      V.Init = false;
    S += "  method tmain() -> i64 static {\n";
    S += "    %acc = consti 0\n";
    S += "    %one = consti 1\n";
    for (const GenOp &O : Model.TOps)
      RenderOp(O);
    S += "    print %acc\n";
    S += "    ret %acc\n";
    S += "  }\n";
  };

  if (Segs == 1) {
    S += "  method main() -> i64 static {\n";
    S += "    %acc = consti 0\n";
    S += "    %one = consti 1\n";
    for (const GenOp &O : Model.Ops)
      RenderOp(O);
    S += "    print %acc\n";
    S += "    ret %acc\n";
    S += "  }\n";
    RenderTmain();
    S += "}\n";
    return;
  }

  // Segmented driver: contiguous op chunks per segment, state carried in
  // the Main statics. VarOk tracking spans segments (Vars is shared), so an
  // op may use an object allocated two segments earlier.
  const size_t PerSeg = (Model.Ops.size() + static_cast<size_t>(Segs) - 1) /
                        static_cast<size_t>(Segs);
  for (int K = 0; K < Segs; ++K) {
    S += "  method seg" + itos(K) + "() -> i64 static {\n";
    S += "    %acc = getstatic Main.acc\n";
    S += "    %one = consti 1\n";
    for (size_t V = 0; V < NumVars; ++V)
      S += "    %o" + itos(static_cast<int64_t>(V)) + " = getstatic Main.o" +
           itos(static_cast<int64_t>(V)) + "\n";
    for (size_t I = static_cast<size_t>(K) * PerSeg;
         I < (static_cast<size_t>(K) + 1) * PerSeg && I < Model.Ops.size();
         ++I)
      RenderOp(Model.Ops[I]);
    if (K == Segs - 1)
      S += "    print %acc\n";
    S += "    putstatic Main.acc, %acc\n";
    for (size_t V = 0; V < NumVars; ++V)
      S += "    putstatic Main.o" + itos(static_cast<int64_t>(V)) + ", %o" +
           itos(static_cast<int64_t>(V)) + "\n";
    S += "    ret %acc\n  }\n";
  }
  // main() calls every segment in order, so a plain `dchm_run exec` of the
  // rendered file reproduces the harness's segment-by-segment output.
  S += "  method main() -> i64 static {\n";
  std::string Last;
  for (int K = 0; K < Segs; ++K) {
    Last = "%r" + itos(K);
    S += "    " + Last + " = callstatic Main.seg" + itos(K) + "()\n";
  }
  S += "    ret " + Last + "\n  }\n";
  RenderTmain();
  S += "}\n";
}

std::string ProgramGen::render() const {
  std::string S;
  S += "# generated by ProgramGen seed=" +
       itos(static_cast<int64_t>(Model.Seed)) + "\n";
  S += "# replay: dchm_run exec <this-file> --entry=Main.main --mutate "
       "--audit\n";
  S += renderDirectives();
  S += "\n";

  bool AnyWork = false, AnyWide = false;
  for (const GenFamily &F : Model.Families) {
    AnyWork |= F.ImplementsWork;
    AnyWide |= F.ImplementsWide;
  }
  if (AnyWork)
    S += "interface Work {\n  method tick() -> void\n}\n\n";
  if (AnyWide) {
    S += "interface Wide {\n";
    for (int W = 0; W < 9; ++W)
      S += "  method w" + itos(W) + "() -> i64\n";
    S += "}\n\n";
  }
  for (size_t FI = 0; FI < Model.Families.size(); ++FI)
    renderFamily(S, FI);
  renderDriver(S);
  return S;
}

std::string ProgramGen::minimize(
    const std::function<bool(const std::string &)> &StillFails) {
  // Greedy delta-minimization to a fixpoint: an edit is kept only when the
  // re-rendered program still fails. Ops first (cheapest wins), then whole
  // families, then hot states, then feature flags.
  bool Changed = true;
  int Rounds = 0;
  while (Changed && Rounds++ < 24) {
    Changed = false;
    // Collapse a segmented driver first: one method is far easier to read,
    // and most failures do not need the retire/re-install cycle.
    if (Model.Segments > 1) {
      int Saved = Model.Segments;
      Model.Segments = 1;
      if (StillFails(render()))
        Changed = true;
      else
        Model.Segments = Saved;
    }
    // Drop driver ops, largest index first so loops vanish before the News
    // they depend on. Same treatment for both drivers.
    for (std::vector<GenOp> *Ops : {&Model.Ops, &Model.TOps}) {
      for (size_t I = Ops->size(); I > 0; --I) {
        GenOp Saved = (*Ops)[I - 1];
        Ops->erase(Ops->begin() + static_cast<long>(I - 1));
        if (StillFails(render()))
          Changed = true;
        else
          Ops->insert(Ops->begin() + static_cast<long>(I - 1), Saved);
      }
    }
    // Drop whole families (ops referencing them become render no-ops).
    for (size_t FI = Model.Families.size(); FI > 1; --FI) {
      GenModel Saved = Model;
      Model.Families.erase(Model.Families.begin() + static_cast<long>(FI - 1));
      if (StillFails(render()))
        Changed = true;
      else
        Model = std::move(Saved);
    }
    // Drop hot states and feature flags.
    for (GenFamily &F : Model.Families) {
      for (size_t HS = F.HotInstance.size(); HS > 1; --HS) {
        GenFamily Saved = F;
        F.HotInstance.erase(F.HotInstance.begin() + static_cast<long>(HS - 1));
        F.HotStatic.erase(F.HotStatic.begin() + static_cast<long>(HS - 1));
        if (StillFails(render()))
          Changed = true;
        else
          F = std::move(Saved);
      }
      bool *Flags[] = {&F.HasSub,         &F.ImplementsWide,
                       &F.ImplementsWork, &F.HasLim,
                       &F.GetMutable,     &F.ScaleMutable,
                       &F.HasMode2};
      for (bool *Flag : Flags) {
        if (!*Flag)
          continue;
        GenFamily Saved = F;
        *Flag = false;
        if (Flag == &F.HasMode2 && !F.StaticOnlyPlan)
          for (auto &T : F.HotInstance)
            if (T.size() > 1)
              T.resize(1);
        if (Flag == &F.HasSub) {
          F.SubOverridesTick = F.SubOverridesGet = false;
        }
        if (StillFails(render()))
          Changed = true;
        else
          F = std::move(Saved);
      }
    }
  }
  return render();
}

bool ProgramGen::parsePlanDirectives(const std::string &Source, Program &P,
                                     GenPlanInfo &Out, std::string &Err) {
  auto Fail = [&](const std::string &E) {
    Err = E;
    return false;
  };
  auto SplitCsv = [](const std::string &S) {
    std::vector<std::string> Parts;
    if (S == "-" || S.empty())
      return Parts;
    std::string Cur;
    for (char C : S) {
      if (C == ',') {
        Parts.push_back(Cur);
        Cur.clear();
      } else {
        Cur += C;
      }
    }
    Parts.push_back(Cur);
    return Parts;
  };

  std::istringstream In(Source);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("#!", 0) != 0)
      continue;
    std::istringstream LS(Line.substr(2));
    std::string Kind;
    LS >> Kind;
    if (Kind == "adaptive") {
      if (!(LS >> Out.Opt1 >> Out.Opt2))
        return Fail("#!adaptive wants two thresholds: " + Line);
    } else if (Kind == "segments") {
      int Segs = 0;
      if (!(LS >> Segs) || Segs < 2 || Segs > 64)
        return Fail("#!segments wants a count in [2,64]: " + Line);
      Out.Segments = Segs;
      std::string KV;
      while (LS >> KV) {
        size_t Eq = KV.find('=');
        if (Eq == std::string::npos)
          return Fail("#!segments wants retire=<k> reinstall=<m>: " + KV);
        std::string Key = KV.substr(0, Eq);
        int V = -1;
        try {
          V = std::stoi(KV.substr(Eq + 1));
        } catch (...) {
          return Fail("#!segments wants integer values: " + KV);
        }
        if (V < 0 || V >= Segs)
          return Fail("#!segments index out of range: " + KV);
        if (Key == "retire")
          Out.RetireAfter = V;
        else if (Key == "reinstall")
          Out.ReinstallAfter = V;
        else
          return Fail("#!segments key must be retire/reinstall: " + Key);
      }
      if (Out.RetireAfter >= 0 && Out.ReinstallAfter >= 0 &&
          Out.ReinstallAfter <= Out.RetireAfter)
        return Fail("#!segments reinstall must come after retire: " + Line);
    } else if (Kind == "mutable") {
      std::string ClsName;
      LS >> ClsName;
      ClassId Cls = P.findClass(ClsName);
      if (Cls == NoClassId)
        return Fail("#!mutable names unknown class " + ClsName);
      MutableClassPlan CP;
      CP.Cls = Cls;
      std::string KV;
      while (LS >> KV) {
        size_t Eq = KV.find('=');
        if (Eq == std::string::npos)
          return Fail("#!mutable wants key=value pairs: " + KV);
        std::string Key = KV.substr(0, Eq);
        std::vector<std::string> Names = SplitCsv(KV.substr(Eq + 1));
        for (const std::string &Nm : Names) {
          if (Key == "instance" || Key == "static") {
            FieldId F = P.findField(Cls, Nm);
            if (F == NoFieldId)
              return Fail(ClsName + " has no field " + Nm);
            (Key == "instance" ? CP.InstanceStateFields
                               : CP.StaticStateFields)
                .push_back(F);
          } else if (Key == "methods") {
            MethodId M = P.findMethod(Cls, Nm);
            if (M == NoMethodId)
              return Fail(ClsName + " has no method " + Nm);
            CP.MutableMethods.push_back(M);
          } else {
            return Fail("#!mutable key must be instance/static/methods: " +
                        Key);
          }
        }
      }
      Out.Plan.Classes.push_back(std::move(CP));
    } else if (Kind == "hot") {
      std::string ClsName, IPart, Colon, SPart;
      if (!(LS >> ClsName >> IPart >> Colon >> SPart) || Colon != ":")
        return Fail("#!hot wants '<class> <ivals|-> : <svals|->': " + Line);
      ClassId Cls = P.findClass(ClsName);
      if (Cls == NoClassId)
        return Fail("#!hot names unknown class " + ClsName);
      MutableClassPlan *CP = nullptr;
      for (MutableClassPlan &C : Out.Plan.Classes)
        if (C.Cls == Cls)
          CP = &C;
      if (!CP)
        return Fail("#!hot before #!mutable for " + ClsName);
      HotState HS;
      try {
        for (const std::string &V : SplitCsv(IPart))
          HS.InstanceVals.push_back(valueI(std::stoll(V)));
        for (const std::string &V : SplitCsv(SPart))
          HS.StaticVals.push_back(valueI(std::stoll(V)));
      } catch (...) {
        return Fail("#!hot wants integer tuples: " + Line);
      }
      if (HS.InstanceVals.size() != CP->InstanceStateFields.size() ||
          HS.StaticVals.size() != CP->StaticStateFields.size())
        return Fail("#!hot tuple sizes do not match the state fields: " +
                    Line);
      CP->HotStates.push_back(std::move(HS));
    } else {
      return Fail("unknown directive #!" + Kind);
    }
  }
  for (const MutableClassPlan &CP : Out.Plan.Classes)
    if (CP.HotStates.empty())
      return Fail("#!mutable class has no #!hot states");
  return true;
}

} // namespace dchm
