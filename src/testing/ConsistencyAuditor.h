//===-- testing/ConsistencyAuditor.h - Runtime invariant audits -*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime consistency auditor: an AuditHook implementation that walks
/// the heap and the Program's dispatch structures asserting the invariants
/// the distributed dynamic class mutation algorithm (parts I and II) is
/// supposed to maintain at every quiescent point:
///
///  - every mutable-class object whose constructor has finished sits on the
///    TIB matching its current instance state (class TIB when no hot state
///    matches);
///  - special TIBs agree with the class TIB on every non-mutable slot, and
///    hold special code in mutable slots exactly when the static part of
///    their hot state matches the current static field values;
///  - JTOC entries of static methods point at the code selected by the
///    current static field state;
///  - IMT entries route interface calls to the same code virtual dispatch
///    would pick (mutable classes must have no Direct entries left);
///  - subclasses of mutable classes saw general-code propagation only.
///
/// The auditor is strictly read-only with respect to simulated state: it
/// never charges cycles, never compiles, and never touches a TIB, so an
/// audited run is bit-identical to an unaudited one. State matching is
/// reimplemented here (not delegated to MutationManager) precisely because
/// the manager's matcher charges ExtraCycles.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_TESTING_CONSISTENCYAUDITOR_H
#define DCHM_TESTING_CONSISTENCYAUDITOR_H

#include "core/VM.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dchm {

/// One invariant violation found by an audit pass.
struct AuditViolation {
  std::string Check;   ///< which invariant (short identifier)
  std::string Detail;  ///< human-readable specifics (class/method/object)
  std::string Trigger; ///< what ran the audit ("safepoint", a transition, ...)
};

/// Walks heap + dispatch structures at safepoints and after mutation
/// transitions, recording invariant violations. Attach with
/// VM.setAuditHook(&Auditor) (gated by VMOptions::AuditConsistency).
///
/// Thread safety (multi-mutator mode): the tick/audit/violation counters are
/// atomic so any mutator may hit onSafepoint concurrently, and the audit walk
/// itself runs under VM.atSafepoint() — i.e. with every other mutator parked —
/// so Recorded and CurTrigger are only ever written world-stopped. Transition
/// audits fired from inside a mutation closure re-enter the open rendezvous
/// inline rather than deadlocking on a nested request.
class ConsistencyAuditor : public AuditHook {
public:
  /// Stride N audits every Nth safepoint (transitions always audit).
  explicit ConsistencyAuditor(VirtualMachine &VM, uint64_t Stride = 1)
      : VM(VM), Stride(Stride ? Stride : 1) {}

  void setStride(uint64_t N) { Stride = N ? N : 1; }

  // --- AuditHook -----------------------------------------------------------
  void onSafepoint() override {
    if ((SafepointTick.fetch_add(1, std::memory_order_relaxed) + 1) % Stride ==
        0)
      auditNow("safepoint");
  }
  void onMutationTransition(const char *Where) override { auditNow(Where); }

  /// Runs one full audit pass immediately (world-stopped at N>1).
  void auditNow(const char *Trigger);

  uint64_t auditsRun() const { return Audits.load(std::memory_order_relaxed); }
  uint64_t safepointsSeen() const {
    return SafepointTick.load(std::memory_order_relaxed);
  }
  /// Total violations found (keeps counting past the recording cap).
  uint64_t violationCount() const {
    return TotalViolations.load(std::memory_order_relaxed);
  }
  bool clean() const { return violationCount() == 0; }
  /// Recorded violations (capped at MaxRecorded to keep broken runs cheap).
  const std::vector<AuditViolation> &violations() const { return Recorded; }
  void reset() {
    Recorded.clear();
    TotalViolations.store(0, std::memory_order_relaxed);
    Audits.store(0, std::memory_order_relaxed);
    SafepointTick.store(0, std::memory_order_relaxed);
  }

  /// Multi-line human-readable summary of the recorded violations.
  std::string report() const;

  static constexpr size_t MaxRecorded = 64;

private:
  /// The audit walk proper. Only runs world-stopped (see auditNow).
  void auditStopped(const char *Trigger);

  void addViolation(const char *Check, const std::string &Detail);

  // Read-only re-implementations of the mutation engine's state matching
  // (MutationManager's versions charge simulated cycles).
  bool staticPartMatches(const MutableClassPlan &CP, size_t S) const;
  int anyStaticMatch(const MutableClassPlan &CP) const;
  int matchInstanceState(const MutableClassPlan &CP, const Object *O) const;
  /// The code pointer algorithm part I/II should have routed for mutable
  /// method M in hot-state context S (S < 0 selects the class-TIB /
  /// static-only rule using anyStaticMatch).
  CompiledMethod *expectedMutableCode(const MutableClassPlan &CP,
                                      const MethodInfo &M, int S) const;

  void auditHeap(const std::vector<Object *> &UnderCtor);
  void auditTibs();
  void auditJtoc();
  void auditImts();

  VirtualMachine &VM;
  uint64_t Stride;
  std::atomic<uint64_t> SafepointTick{0};
  std::atomic<uint64_t> Audits{0};
  std::atomic<uint64_t> TotalViolations{0};
  // Written only world-stopped (inside auditStopped).
  const char *CurTrigger = "";
  std::vector<AuditViolation> Recorded;
};

} // namespace dchm

#endif // DCHM_TESTING_CONSISTENCYAUDITOR_H
