//===-- testing/ConsistencyAuditor.cpp - Runtime invariant audits -------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "testing/ConsistencyAuditor.h"

#include <algorithm>

namespace dchm {

void ConsistencyAuditor::addViolation(const char *Check,
                                      const std::string &Detail) {
  ++TotalViolations;
  if (Recorded.size() < MaxRecorded)
    Recorded.push_back({Check, Detail, CurTrigger});
}

bool ConsistencyAuditor::staticPartMatches(const MutableClassPlan &CP,
                                           size_t S) const {
  const Program &P = VM.program();
  const HotState &HS = CP.HotStates[S];
  for (size_t F = 0; F < CP.StaticStateFields.size(); ++F) {
    const FieldInfo &Fld = P.field(CP.StaticStateFields[F]);
    if (P.getStaticSlot(Fld.Slot).I != HS.StaticVals[F].I)
      return false;
  }
  return true;
}

int ConsistencyAuditor::anyStaticMatch(const MutableClassPlan &CP) const {
  for (size_t S = 0; S < CP.HotStates.size(); ++S)
    if (staticPartMatches(CP, S))
      return static_cast<int>(S);
  return -1;
}

int ConsistencyAuditor::matchInstanceState(const MutableClassPlan &CP,
                                           const Object *O) const {
  const Program &P = VM.program();
  for (size_t S = 0; S < CP.HotStates.size(); ++S) {
    const HotState &HS = CP.HotStates[S];
    bool Match = true;
    for (size_t F = 0; F < CP.InstanceStateFields.size(); ++F) {
      const FieldInfo &Fld = P.field(CP.InstanceStateFields[F]);
      if (O->get(Fld.Slot).I != HS.InstanceVals[F].I) {
        Match = false;
        break;
      }
    }
    if (Match)
      return static_cast<int>(S);
  }
  return -1;
}

CompiledMethod *
ConsistencyAuditor::expectedMutableCode(const MutableClassPlan &CP,
                                        const MethodInfo &M, int S) const {
  if (M.Specials.empty())
    return M.General; // not yet opt2-compiled; only general code exists
  if (S >= 0)
    return (staticPartMatches(CP, static_cast<size_t>(S)) &&
            M.Specials[static_cast<size_t>(S)])
               ? M.Specials[static_cast<size_t>(S)]
               : M.General;
  int A = anyStaticMatch(CP);
  return (A >= 0 && M.Specials[static_cast<size_t>(A)])
             ? M.Specials[static_cast<size_t>(A)]
             : M.General;
}

void ConsistencyAuditor::auditNow(const char *Trigger) {
  // The walk reads the heap, every interpreter's frames, and the dispatch
  // structures, so it must not race with other mutators. atSafepoint is a
  // plain call at N=1 and re-entrant from inside an open rendezvous, so
  // transition audits fired within a mutation closure run inline.
  VM.atSafepoint([&] { auditStopped(Trigger); });
}

void ConsistencyAuditor::auditStopped(const char *Trigger) {
  Audits.fetch_add(1, std::memory_order_relaxed);
  CurTrigger = Trigger;

  // Objects whose constructor frames are still live are exempt from the
  // strict TIB-matches-state check: an inner constructor in a callspecial
  // chain exits (and stamps CtorDone) while the outer one is still filling
  // in fields. Every mutator context can hold such frames.
  std::vector<Object *> UnderCtor;
  for (unsigned T = 0; T < VM.mutatorThreads(); ++T)
    VM.interp(T).collectActiveCtorReceivers(UnderCtor);

  auditHeap(UnderCtor);
  auditTibs();
  auditJtoc();
  auditImts();
}

void ConsistencyAuditor::auditHeap(const std::vector<Object *> &UnderCtor) {
  const MutationPlan *Plan = VM.mutation().plan();
  VM.heap().forEachObject([&](Object *O) {
    if (O->IsArray)
      return;
    if (!O->Tib) {
      addViolation("heap.tib-null", "non-array object with null TIB");
      return;
    }
    ClassInfo *C = O->Tib->Cls;
    // Membership: the TIB must be the class TIB or one of its special TIBs.
    if (O->Tib != C->ClassTib &&
        std::find(C->SpecialTibs.begin(), C->SpecialTibs.end(), O->Tib) ==
            C->SpecialTibs.end()) {
      addViolation("heap.tib-foreign",
                   "object of " + C->Name + " on a TIB the class does not own");
      return;
    }
    if (C->MutableIndex < 0 || !Plan) {
      if (O->Tib->isSpecial())
        addViolation("heap.special-non-mutable",
                     "object of non-mutable " + C->Name + " on a special TIB");
      return;
    }
    const MutableClassPlan &CP = Plan->Classes[C->MutableIndex];
    if (!CP.dependsOnInstanceFields()) {
      if (O->Tib->isSpecial())
        addViolation("heap.special-static-only",
                     "object of static-only mutable " + C->Name +
                         " on a special TIB");
      return;
    }
    int S = matchInstanceState(CP, O);
    // A null special-TIB slot means the hot state was evicted under
    // code-budget pressure; the class TIB is then the legitimate resting
    // place for objects in that state.
    TIB *Expected = C->ClassTib;
    if (S >= 0 && C->SpecialTibs[static_cast<size_t>(S)])
      Expected = C->SpecialTibs[static_cast<size_t>(S)];
    if (std::find(UnderCtor.begin(), UnderCtor.end(), O) != UnderCtor.end())
      return; // constructor still running; part I has not classified it yet
    if (!O->CtorDone) {
      // Unclassified object: class TIB is the normal resting place, but an
      // online migration pass may already have swung it to its match.
      if (O->Tib != C->ClassTib && O->Tib != Expected)
        addViolation("heap.preclass-tib",
                     "unclassified object of " + C->Name +
                         " on a TIB matching neither class nor state");
      return;
    }
    if (O->Tib != Expected)
      addViolation(
          "heap.tib-state",
          "object of " + C->Name + " on " +
              (O->Tib->isSpecial()
                   ? "special TIB " + std::to_string(O->Tib->StateIndex)
                   : std::string("class TIB")) +
              " but state matches " +
              (S >= 0 ? "hot state " + std::to_string(S)
                      : std::string("no hot state")));
  });
}

void ConsistencyAuditor::auditTibs() {
  Program &P = VM.program();
  const MutationPlan *Plan = VM.mutation().plan();
  for (size_t CId = 0; CId < P.numClasses(); ++CId) {
    ClassInfo &C = P.cls(static_cast<ClassId>(CId));
    if (C.IsInterface || !C.ClassTib)
      continue;
    const MutableClassPlan *CP =
        (Plan && C.MutableIndex >= 0) ? &Plan->Classes[C.MutableIndex]
                                      : nullptr;
    for (size_t I = 0; I < C.VTable.size(); ++I) {
      const MethodInfo &M = P.method(C.VTable[I]);
      // Inherited private/ctor slots are dead: invokespecial binds through
      // the *declaring* class TIB, so the installer never writes them.
      if (!M.isVirtualDispatch() && M.Owner != C.Id)
        continue;
      CompiledMethod *Slot = C.ClassTib->Slots[I];
      // Expected class-TIB code: always the general code, except mutable
      // methods of a static-only mutable class (the class TIB itself is
      // specialized there). Inherited mutable methods also expect general
      // code — the general-code-only subclass propagation of Figure 6.
      CompiledMethod *Want = M.General;
      if (CP && M.IsMutable && M.Owner == CP->Cls &&
          !CP->dependsOnInstanceFields() && !M.Flags.IsStatic)
        Want = expectedMutableCode(*CP, M, -1);
      if (Slot != Want)
        addViolation("tib.class-slot",
                     C.Name + " class TIB slot " + std::to_string(I) + " (" +
                         M.Name + ") does not hold the selected code");
    }
    // Special TIBs: same Cls/Imt, state index = position, non-mutable slots
    // agree with the class TIB, mutable slots follow the static-part rule.
    for (size_t S = 0; S < C.SpecialTibs.size(); ++S) {
      TIB *ST = C.SpecialTibs[S];
      if (!ST)
        continue; // hot state evicted under budget pressure (slot retired)
      if (ST->Cls != &C || ST->Imt != C.Imt ||
          ST->StateIndex != static_cast<int>(S)) {
        addViolation("tib.special-identity",
                     C.Name + " special TIB " + std::to_string(S) +
                         " has wrong class/IMT/state identity");
        continue;
      }
      for (size_t I = 0; I < C.VTable.size(); ++I) {
        const MethodInfo &M = P.method(C.VTable[I]);
        bool Mut = CP && M.IsMutable && M.Owner == CP->Cls &&
                   CP->dependsOnInstanceFields() && !M.Flags.IsStatic;
        if (Mut) {
          CompiledMethod *Want =
              expectedMutableCode(*CP, M, static_cast<int>(S));
          if (ST->Slots[I] != Want)
            addViolation("tib.special-slot",
                         C.Name + " special TIB " + std::to_string(S) +
                             " slot " + std::to_string(I) + " (" + M.Name +
                             ") does not hold the state-selected code");
        } else if (ST->Slots[I] != C.ClassTib->Slots[I]) {
          addViolation("tib.special-agree",
                       C.Name + " special TIB " + std::to_string(S) +
                           " disagrees with class TIB on non-mutable slot " +
                           std::to_string(I) + " (" + M.Name + ")");
        }
      }
    }
    if (CP && CP->dependsOnInstanceFields() &&
        C.SpecialTibs.size() != CP->HotStates.size())
      addViolation("tib.special-count",
                   C.Name + " has " + std::to_string(C.SpecialTibs.size()) +
                       " special TIBs for " +
                       std::to_string(CP->HotStates.size()) + " hot states");
  }
}

void ConsistencyAuditor::auditJtoc() {
  Program &P = VM.program();
  const MutationPlan *Plan = VM.mutation().plan();
  for (size_t MId = 0; MId < P.numMethods(); ++MId) {
    const MethodInfo &M = P.method(static_cast<MethodId>(MId));
    if (!M.Flags.IsStatic)
      continue;
    CompiledMethod *Entry = P.staticEntry(M.Id);
    const MutableClassPlan *CP =
        (Plan && M.IsMutable) ? Plan->planFor(M.Owner) : nullptr;
    CompiledMethod *Want =
        CP ? expectedMutableCode(*CP, M, -1) : M.General;
    if (Entry != Want)
      addViolation("jtoc.entry",
                   "JTOC entry for " + P.cls(M.Owner).Name + "." + M.Name +
                       " does not hold the state-selected code");
  }
}

void ConsistencyAuditor::auditImts() {
  Program &P = VM.program();
  for (size_t CId = 0; CId < P.numClasses(); ++CId) {
    ClassInfo &C = P.cls(static_cast<ClassId>(CId));
    if (C.IsInterface || !C.Imt)
      continue;
    bool Mutable = C.MutableIndex >= 0;
    for (size_t SlotIdx = 0; SlotIdx < NumImtSlots; ++SlotIdx) {
      const ImtEntry &E = C.Imt->Slots[SlotIdx];
      switch (E.K) {
      case ImtEntry::Kind::Empty:
        break;
      case ImtEntry::Kind::Direct: {
        if (Mutable) {
          addViolation("imt.direct-mutable",
                       "mutable " + C.Name + " still has a Direct IMT entry " +
                           "in slot " + std::to_string(SlotIdx));
          break;
        }
        const MethodInfo &Impl = P.method(E.DirectImpl);
        if (E.VSlot != Impl.VSlot)
          addViolation("imt.direct-vslot",
                       C.Name + " Direct IMT slot " + std::to_string(SlotIdx) +
                           " VSlot disagrees with " + Impl.Name);
        else if (E.DirectCode &&
                 E.DirectCode != C.ClassTib->Slots[Impl.VSlot])
          addViolation("imt.direct-route",
                       C.Name + " Direct IMT slot " + std::to_string(SlotIdx) +
                           " (" + Impl.Name +
                           ") routes differently than virtual dispatch");
        break;
      }
      case ImtEntry::Kind::TibOffset: {
        const MethodInfo &Impl = P.method(E.DirectImpl);
        if (E.VSlot != Impl.VSlot)
          addViolation("imt.tiboffset-vslot",
                       C.Name + " TibOffset IMT slot " +
                           std::to_string(SlotIdx) +
                           " VSlot disagrees with " + Impl.Name);
        if (E.DirectCode)
          addViolation("imt.tiboffset-code",
                       C.Name + " TibOffset IMT slot " +
                           std::to_string(SlotIdx) +
                           " kept a stale direct code pointer");
        break;
      }
      case ImtEntry::Kind::Conflict:
        for (const auto &[IfaceM, VSlot] : E.Table) {
          if (VSlot >= C.VTable.size()) {
            addViolation("imt.conflict-range",
                         C.Name + " conflict stub routes past the vtable");
            continue;
          }
          if (P.method(C.VTable[VSlot]).Name != P.method(IfaceM).Name)
            addViolation("imt.conflict-route",
                         C.Name + " conflict stub routes " +
                             P.method(IfaceM).Name + " to " +
                             P.method(C.VTable[VSlot]).Name);
        }
        break;
      }
    }
  }
}

std::string ConsistencyAuditor::report() const {
  if (clean())
    return "consistency auditor: " + std::to_string(auditsRun()) +
           " audits, no violations\n";
  std::string R = "consistency auditor: " + std::to_string(violationCount()) +
                  " violation(s) across " + std::to_string(auditsRun()) +
                  " audits";
  if (violationCount() > Recorded.size())
    R += " (first " + std::to_string(Recorded.size()) + " recorded)";
  R += "\n";
  for (const AuditViolation &V : Recorded)
    R += "  [" + V.Check + "] " + V.Detail + " (at " + V.Trigger + ")\n";
  return R;
}

} // namespace dchm
