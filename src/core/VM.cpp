//===-- core/VM.cpp - The MiniVM facade ---------------------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/VM.h"

#include "support/Debug.h"

#include <cstdlib>
#include <cstring>

namespace dchm {

namespace {
/// Resolves a HostToggle: Auto defers to the named environment variable,
/// falling back to Default when it is unset.
bool resolveToggle(HostToggle T, const char *EnvVar, bool Default) {
  if (T == HostToggle::On)
    return true;
  if (T == HostToggle::Off)
    return false;
  if (const char *E = std::getenv(EnvVar))
    return !(std::strcmp(E, "OFF") == 0 || std::strcmp(E, "off") == 0 ||
             std::strcmp(E, "0") == 0 || std::strcmp(E, "false") == 0);
  return Default;
}
} // namespace

VirtualMachine::VirtualMachine(Program &P, const VMOptions &Opts)
    : P(P), Opts(Opts), TheHeap(Opts.HeapBytes), Compiler(P),
      Adaptive(P, Compiler, Opts.Adaptive), Mutation(P) {
  DCHM_CHECK(P.isLinked(), "VirtualMachine requires a linked program");
  Compiler.inlinerConfig() = Opts.Inline;
  // Background compilation and the specialization cache default on; the
  // environment (DCHM_ASYNC_COMPILE / DCHM_COMPILE_THREADS / DCHM_SPEC_CACHE)
  // overrides Auto settings, explicit VMOptions override everything (so the
  // determinism harnesses can pin configurations).
  bool Async = resolveToggle(Opts.AsyncCompile, "DCHM_ASYNC_COMPILE", true);
  bool Cache =
      resolveToggle(Opts.SpecializationCache, "DCHM_SPEC_CACHE", true);
  unsigned Threads = Opts.CompileThreads;
  if (Threads == 0) {
    CompilePipeline::Config C = CompilePipeline::configFromEnv({true, 2});
    Threads = C.Threads;
  }
  Compiler.configure(Async, Threads, Cache);
  Mutation.setCompiler(&Compiler);
  Interp = std::make_unique<Interpreter>(P, TheHeap, *this, Opts.Dispatch,
                                         Opts.InlineCaches, Opts.FrameArena);
  Interp->setInlineSampling(Opts.Adaptive.SampleInterval == 1);
  TheHeap.setRootProvider(this);
  AuditOn = resolveToggle(Opts.AuditConsistency, "DCHM_AUDIT", false);
}

void VirtualMachine::setAuditHook(AuditHook *H) {
  if (!AuditOn && H)
    return;
  Interp->setAuditHook(H);
  Mutation.setAuditHook(H);
}

void VirtualMachine::setMutationPlan(const MutationPlan *Plan) {
  if (!Opts.EnableMutation || !Plan || Plan->empty())
    return;
  Mutation.installPlan(*Plan);
  Adaptive.setPlan(Plan);
  Adaptive.setRecompileListener(&Mutation);
  Compiler.setPlan(Plan);
  MutationActive = true;
  // Online installation: methods that got hot before the plan existed need
  // their specialized versions generated now.
  Adaptive.refreshMutableMethods();
}

void VirtualMachine::setOlcDatabase(const OlcDatabase *Db) {
  Compiler.setOlcDatabase(Db);
}

Value VirtualMachine::call(MethodId M, const std::vector<Value> &Args) {
  return Interp->invoke(M, Args);
}

uint64_t VirtualMachine::totalCycles() const {
  return Interp->stats().Cycles + Compiler.stats().TotalCompileCycles +
         TheHeap.stats().GcCycles + Mutation.stats().ExtraCycles;
}

RunMetrics VirtualMachine::metrics() {
  // Finalize in-flight background compiles so byte counters are complete.
  Compiler.sync();
  RunMetrics M;
  M.ExecCycles = Interp->stats().Cycles;
  M.CompileCycles = Compiler.stats().TotalCompileCycles;
  M.SpecialCompileCycles = Compiler.stats().SpecialCompileCycles;
  M.GcCycles = TheHeap.stats().GcCycles;
  M.MutationCycles = Mutation.stats().ExtraCycles;
  M.TotalCycles = totalCycles();
  M.CodeBytes = Compiler.stats().TotalCodeBytes;
  M.SpecialCodeBytes = Compiler.stats().SpecialCodeBytes;
  M.ClassTibBytes = P.classTibBytes();
  M.SpecialTibBytes = P.specialTibBytes();
  M.SpecialCompiles = Compiler.stats().SpecialCompiles;
  M.SpecialCompileRequests = Compiler.stats().SpecialCompileRequests;
  M.SpecialCacheHits = Compiler.stats().SpecialCacheHits;
  M.GcCount = TheHeap.stats().GcCount;
  M.Insts = Interp->stats().Insts;
  M.Invocations = Interp->stats().Invocations;
  M.OutputHash = Interp->outputHash();
  M.Mutation = Mutation.stats();
  M.Adaptive = Adaptive.stats();
  M.Inlining = Compiler.stats().Inlining;
  return M;
}

CompiledMethod *VirtualMachine::ensureCompiled(MethodInfo &M) {
  return Adaptive.ensureCompiled(M);
}

void VirtualMachine::waitForCode(CompiledMethod &CM) { Compiler.waitFor(CM); }

void VirtualMachine::onMethodEntry(MethodInfo &M) { Adaptive.onMethodEntry(M); }

void VirtualMachine::onBackedge(MethodInfo &M) { Adaptive.onBackedge(M); }

void VirtualMachine::onInstanceStateStore(Object *O, FieldInfo &F,
                                          bool DuringConstruction) {
  // Construction-time stores are handled by the constructor-exit action
  // (Figure 4); acting on them would mutate half-initialized objects and
  // pollute the value profile with partial tuples.
  if (DuringConstruction)
    return;
  if (MutationActive)
    Mutation.onInstanceStateStore(O, F);
  if (Observer)
    Observer->observeInstanceStore(O, F);
}

void VirtualMachine::onStaticStateStore(FieldInfo &F) {
  if (MutationActive)
    Mutation.onStaticStateStore(F);
  if (Observer)
    Observer->observeStaticStore(F);
}

void VirtualMachine::onConstructorExit(Object *O, MethodInfo &Ctor) {
  // Stamp before the mutation engine runs (and audits): once part I has
  // classified the object, the strict TIB-matches-state invariant applies.
  if (O)
    O->CtorDone = true;
  if (MutationActive)
    Mutation.onConstructorExit(O, Ctor);
  if (Observer)
    Observer->observeConstructorExit(O, Ctor);
}

void VirtualMachine::enumerateRoots(std::vector<Object *> &Roots) {
  Interp->enumerateRoots(Roots);
  for (uint32_t S = 0; S < P.numStaticSlots(); ++S)
    if (P.staticSlotType(S) == Type::Ref && P.getStaticSlot(S).R)
      Roots.push_back(P.getStaticSlot(S).R);
}

} // namespace dchm
