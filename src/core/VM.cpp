//===-- core/VM.cpp - The MiniVM facade ---------------------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/VM.h"

#include "support/Debug.h"

namespace dchm {

VirtualMachine::VirtualMachine(Program &P, const VMOptions &Opts)
    : P(P), Opts(Opts), TheHeap(Opts.HeapBytes), Compiler(P),
      Adaptive(P, Compiler, Opts.Adaptive), Mutation(P) {
  DCHM_CHECK(P.isLinked(), "VirtualMachine requires a linked program");
  Compiler.inlinerConfig() = Opts.Inline;
  Interp = std::make_unique<Interpreter>(P, TheHeap, *this, Opts.Dispatch,
                                         Opts.InlineCaches, Opts.FrameArena);
  Interp->setInlineSampling(Opts.Adaptive.SampleInterval == 1);
  TheHeap.setRootProvider(this);
}

void VirtualMachine::setMutationPlan(const MutationPlan *Plan) {
  if (!Opts.EnableMutation || !Plan || Plan->empty())
    return;
  Mutation.installPlan(*Plan);
  Adaptive.setPlan(Plan);
  Adaptive.setRecompileListener(&Mutation);
  Compiler.setPlan(Plan);
  MutationActive = true;
  // Online installation: methods that got hot before the plan existed need
  // their specialized versions generated now.
  Adaptive.refreshMutableMethods();
}

void VirtualMachine::setOlcDatabase(const OlcDatabase *Db) {
  Compiler.setOlcDatabase(Db);
}

Value VirtualMachine::call(MethodId M, const std::vector<Value> &Args) {
  return Interp->invoke(M, Args);
}

uint64_t VirtualMachine::totalCycles() const {
  return Interp->stats().Cycles + Compiler.stats().TotalCompileCycles +
         TheHeap.stats().GcCycles + Mutation.stats().ExtraCycles;
}

RunMetrics VirtualMachine::metrics() const {
  RunMetrics M;
  M.ExecCycles = Interp->stats().Cycles;
  M.CompileCycles = Compiler.stats().TotalCompileCycles;
  M.SpecialCompileCycles = Compiler.stats().SpecialCompileCycles;
  M.GcCycles = TheHeap.stats().GcCycles;
  M.MutationCycles = Mutation.stats().ExtraCycles;
  M.TotalCycles = totalCycles();
  M.CodeBytes = Compiler.stats().TotalCodeBytes;
  M.SpecialCodeBytes = Compiler.stats().SpecialCodeBytes;
  M.ClassTibBytes = P.classTibBytes();
  M.SpecialTibBytes = P.specialTibBytes();
  M.GcCount = TheHeap.stats().GcCount;
  M.Insts = Interp->stats().Insts;
  M.Invocations = Interp->stats().Invocations;
  M.OutputHash = Interp->outputHash();
  M.Mutation = Mutation.stats();
  M.Adaptive = Adaptive.stats();
  M.Inlining = Compiler.stats().Inlining;
  return M;
}

CompiledMethod *VirtualMachine::ensureCompiled(MethodInfo &M) {
  return Adaptive.ensureCompiled(M);
}

void VirtualMachine::onMethodEntry(MethodInfo &M) { Adaptive.onMethodEntry(M); }

void VirtualMachine::onBackedge(MethodInfo &M) { Adaptive.onBackedge(M); }

void VirtualMachine::onInstanceStateStore(Object *O, FieldInfo &F,
                                          bool DuringConstruction) {
  // Construction-time stores are handled by the constructor-exit action
  // (Figure 4); acting on them would mutate half-initialized objects and
  // pollute the value profile with partial tuples.
  if (DuringConstruction)
    return;
  if (MutationActive)
    Mutation.onInstanceStateStore(O, F);
  if (Observer)
    Observer->observeInstanceStore(O, F);
}

void VirtualMachine::onStaticStateStore(FieldInfo &F) {
  if (MutationActive)
    Mutation.onStaticStateStore(F);
  if (Observer)
    Observer->observeStaticStore(F);
}

void VirtualMachine::onConstructorExit(Object *O, MethodInfo &Ctor) {
  if (MutationActive)
    Mutation.onConstructorExit(O, Ctor);
  if (Observer)
    Observer->observeConstructorExit(O, Ctor);
}

void VirtualMachine::enumerateRoots(std::vector<Object *> &Roots) {
  Interp->enumerateRoots(Roots);
  for (uint32_t S = 0; S < P.numStaticSlots(); ++S)
    if (P.staticSlotType(S) == Type::Ref && P.getStaticSlot(S).R)
      Roots.push_back(P.getStaticSlot(S).R);
}

} // namespace dchm
