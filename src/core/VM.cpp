//===-- core/VM.cpp - The MiniVM facade ---------------------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/VM.h"

#include "support/Debug.h"

#include <cstdlib>
#include <cstring>
#include <unordered_set>

namespace dchm {

namespace {
/// Resolves a HostToggle: Auto defers to the named environment variable,
/// falling back to Default when it is unset.
bool resolveToggle(HostToggle T, const char *EnvVar, bool Default) {
  if (T == HostToggle::On)
    return true;
  if (T == HostToggle::Off)
    return false;
  if (const char *E = std::getenv(EnvVar))
    return !(std::strcmp(E, "OFF") == 0 || std::strcmp(E, "off") == 0 ||
             std::strcmp(E, "0") == 0 || std::strcmp(E, "false") == 0);
  return Default;
}
} // namespace

VirtualMachine::VirtualMachine(Program &P, const VMOptions &Opts)
    : P(P), Opts(Opts), TheHeap(Opts.HeapBytes), Compiler(P),
      Adaptive(P, Compiler, Opts.Adaptive), Mutation(P) {
  DCHM_CHECK(P.isLinked(), "VirtualMachine requires a linked program");
  Compiler.inlinerConfig() = Opts.Inline;
  // Background compilation and the specialization cache default on; the
  // environment (DCHM_ASYNC_COMPILE / DCHM_COMPILE_THREADS / DCHM_SPEC_CACHE)
  // overrides Auto settings, explicit VMOptions override everything (so the
  // determinism harnesses can pin configurations).
  bool Async = resolveToggle(Opts.AsyncCompile, "DCHM_ASYNC_COMPILE", true);
  bool Cache =
      resolveToggle(Opts.SpecializationCache, "DCHM_SPEC_CACHE", true);
  unsigned Threads = Opts.CompileThreads;
  if (Threads == 0) {
    CompilePipeline::Config C = CompilePipeline::configFromEnv({true, 2});
    Threads = C.Threads;
  }
  Compiler.configure(Async, Threads, Cache);
  Mutation.setCompiler(&Compiler);
  Mutation.setHeap(&TheHeap);
  // Code/TIB budget for graceful degradation: explicit option wins, then
  // DCHM_CODE_BUDGET (bytes), else unlimited.
  size_t Budget = Opts.CodeBudgetBytes;
  if (Budget == 0)
    if (const char *E = std::getenv("DCHM_CODE_BUDGET")) {
      long long N = std::strtoll(E, nullptr, 10);
      if (N > 0)
        Budget = static_cast<size_t>(N);
    }
  Mutation.setCodeBudget(Budget);
  Interp = std::make_unique<Interpreter>(P, TheHeap, *this, Opts.Dispatch,
                                         Opts.InlineCaches, Opts.FrameArena);
  Interp->setInlineSampling(Opts.Adaptive.SampleInterval == 1);
  TheHeap.setRootProvider(this);
  AuditOn = resolveToggle(Opts.AuditConsistency, "DCHM_AUDIT", false);
}

void VirtualMachine::setAuditHook(AuditHook *H) {
  if (!AuditOn && H)
    return;
  Interp->setAuditHook(H);
  Mutation.setAuditHook(H);
}

void VirtualMachine::setMutationPlan(const MutationPlan *Plan) {
  if (!Opts.EnableMutation || !Plan || Plan->empty())
    return;
  Mutation.installPlan(*Plan);
  Adaptive.setPlan(Plan);
  Adaptive.setRecompileListener(&Mutation);
  Compiler.setPlan(Plan);
  MutationActive = true;
  // Installation is stop-the-world and includes re-classing objects that
  // already exist (mid-run activation or re-install after retirement). It
  // must happen before the budget check and the recompilation refresh so
  // their audit notifications never observe a half-installed heap.
  Mutation.migrateExistingObjects(TheHeap);
  Mutation.enforceBudget();
  // Online installation: methods that got hot before the plan existed need
  // their specialized versions generated now.
  Adaptive.refreshMutableMethods();
}

void VirtualMachine::setOlcDatabase(const OlcDatabase *Db) {
  Compiler.setOlcDatabase(Db);
}

bool VirtualMachine::retireMutationPlan() {
  if (!MutationActive || !Mutation.plan())
    return false;
  // Pending specialized shells must publish their bodies before they can be
  // handed to reclamation — the drain must never race a finalizeCode.
  Compiler.sync();
  Mutation.retirePlan(TheHeap);
  Adaptive.setPlan(nullptr);
  Adaptive.setRecompileListener(nullptr);
  Compiler.setPlan(nullptr);
  MutationActive = false;
  reclaimRetired();
  return true;
}

void VirtualMachine::reclaimRetired() {
  // Epoch-based safety: with a live frame, a return address may still point
  // into a retired body; wait for the next top-level quiescent call.
  if (Interp->liveFrames() != 0)
    return;
  std::unordered_set<const TIB *> InUse;
  TheHeap.forEachObject([&](Object *O) {
    if (O->Tib)
      InUse.insert(O->Tib);
  });
  P.drainReclaimList(InUse);
}

Value VirtualMachine::call(MethodId M, const std::vector<Value> &Args) {
  return Interp->invoke(M, Args);
}

Expected<Value> VirtualMachine::run(MethodId M, const std::vector<Value> &Args) {
  if (M >= P.numMethods())
    return VMError::error("run: no such method id " + std::to_string(M));
  MethodInfo &MI = P.method(M);
  if (!MI.HasBody)
    return VMError::error("run: method '" + MI.Name + "' has no body");
  size_t Want = MI.numArgsWithReceiver();
  if (Args.size() != Want)
    return VMError::error("run: method '" + MI.Name + "' takes " +
                          std::to_string(Want) + " argument(s), got " +
                          std::to_string(Args.size()));
  Value V = call(M, Args);
  // The heap budget is soft and sticky: execution completed deterministically
  // even past the budget, but the overrun surfaces as a recoverable error
  // instead of being dropped (or aborting).
  if (TheHeap.budgetError())
    return TheHeap.budgetError();
  return V;
}

uint64_t VirtualMachine::totalCycles() const {
  return Interp->stats().Cycles + Compiler.stats().TotalCompileCycles +
         TheHeap.stats().GcCycles + Mutation.stats().ExtraCycles;
}

RunMetrics VirtualMachine::metrics() {
  // Finalize in-flight background compiles so byte counters are complete.
  Compiler.sync();
  RunMetrics M;
  M.ExecCycles = Interp->stats().Cycles;
  M.CompileCycles = Compiler.stats().TotalCompileCycles;
  M.SpecialCompileCycles = Compiler.stats().SpecialCompileCycles;
  M.GcCycles = TheHeap.stats().GcCycles;
  M.MutationCycles = Mutation.stats().ExtraCycles;
  M.TotalCycles = totalCycles();
  M.CodeBytes = Compiler.stats().TotalCodeBytes;
  M.SpecialCodeBytes = Compiler.stats().SpecialCodeBytes;
  M.ClassTibBytes = P.classTibBytes();
  M.SpecialTibBytes = P.specialTibBytes();
  M.SpecialCompiles = Compiler.stats().SpecialCompiles;
  M.SpecialCompileRequests = Compiler.stats().SpecialCompileRequests;
  M.SpecialCacheHits = Compiler.stats().SpecialCacheHits;
  M.GcCount = TheHeap.stats().GcCount;
  M.Insts = Interp->stats().Insts;
  M.Invocations = Interp->stats().Invocations;
  M.OutputHash = Interp->outputHash();
  M.Mutation = Mutation.stats();
  M.Adaptive = Adaptive.stats();
  M.Inlining = Compiler.stats().Inlining;
  return M;
}

CompiledMethod *VirtualMachine::ensureCompiled(MethodInfo &M) {
  return Adaptive.ensureCompiled(M);
}

void VirtualMachine::waitForCode(CompiledMethod &CM) { Compiler.waitFor(CM); }

void VirtualMachine::onMethodEntry(MethodInfo &M) { Adaptive.onMethodEntry(M); }

void VirtualMachine::onBackedge(MethodInfo &M) { Adaptive.onBackedge(M); }

void VirtualMachine::onInstanceStateStore(Object *O, FieldInfo &F,
                                          bool DuringConstruction) {
  // Construction-time stores are handled by the constructor-exit action
  // (Figure 4); acting on them would mutate half-initialized objects and
  // pollute the value profile with partial tuples.
  if (DuringConstruction)
    return;
  if (MutationActive)
    Mutation.onInstanceStateStore(O, F);
  if (Observer)
    Observer->observeInstanceStore(O, F);
}

void VirtualMachine::onStaticStateStore(FieldInfo &F) {
  if (MutationActive)
    Mutation.onStaticStateStore(F);
  if (Observer)
    Observer->observeStaticStore(F);
}

void VirtualMachine::onConstructorExit(Object *O, MethodInfo &Ctor) {
  // Stamp before the mutation engine runs (and audits): once part I has
  // classified the object, the strict TIB-matches-state invariant applies.
  if (O)
    O->CtorDone = true;
  if (MutationActive)
    Mutation.onConstructorExit(O, Ctor);
  if (Observer)
    Observer->observeConstructorExit(O, Ctor);
}

void VirtualMachine::enumerateRoots(std::vector<Object *> &Roots) {
  Interp->enumerateRoots(Roots);
  for (uint32_t S = 0; S < P.numStaticSlots(); ++S)
    if (P.staticSlotType(S) == Type::Ref && P.getStaticSlot(S).R)
      Roots.push_back(P.getStaticSlot(S).R);
}

} // namespace dchm
