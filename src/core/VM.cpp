//===-- core/VM.cpp - The MiniVM facade ---------------------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "core/VM.h"

#include "support/Debug.h"
#include "support/Env.h"

#include <thread>
#include <unordered_set>

namespace dchm {

namespace {
/// Resolves a HostToggle: Auto defers to the named environment variable
/// (support/Env.h registry), falling back to Default when it is unset.
bool resolveToggle(HostToggle T, const char *EnvVar, bool Default) {
  if (T == HostToggle::On)
    return true;
  if (T == HostToggle::Off)
    return false;
  return env::boolOr(EnvVar, Default);
}

/// The safepoint slot of the current mutator thread, if runMutators bound
/// one. VMCallbacks carry no thread identity, so the blocked-scope wrappers
/// (waitForCode) find their slot here. Null single-mutator and on host
/// threads — all slot-dependent paths then compile down to the old code.
thread_local SafepointSlot *TlsSlot = nullptr;
} // namespace

VirtualMachine::VirtualMachine(Program &P, const VMOptions &Opts)
    : P(P), Opts(Opts), TheHeap(Opts.HeapBytes), Compiler(P),
      Adaptive(P, Compiler, Opts.Adaptive), Mutation(P) {
  DCHM_CHECK(P.isLinked(), "VirtualMachine requires a linked program");
  Compiler.inlinerConfig() = Opts.Inline;
  // Background compilation and the specialization cache default on; the
  // environment (DCHM_ASYNC_COMPILE / DCHM_COMPILE_THREADS / DCHM_SPEC_CACHE)
  // overrides Auto settings, explicit VMOptions override everything (so the
  // determinism harnesses can pin configurations).
  bool Async = resolveToggle(Opts.AsyncCompile, "DCHM_ASYNC_COMPILE", true);
  bool Cache =
      resolveToggle(Opts.SpecializationCache, "DCHM_SPEC_CACHE", true);
  unsigned Threads = Opts.CompileThreads;
  if (Threads == 0)
    Threads = static_cast<unsigned>(env::intOr("DCHM_COMPILE_THREADS", 2));
  Compiler.configure(Async, Threads, Cache);
  Mutation.setCompiler(&Compiler);
  Mutation.setHeap(&TheHeap);
  // Code/TIB budget for graceful degradation: explicit option wins, then
  // DCHM_CODE_BUDGET (bytes), else unlimited.
  size_t Budget = Opts.CodeBudgetBytes;
  if (Budget == 0)
    Budget = static_cast<size_t>(env::intOr("DCHM_CODE_BUDGET", 0));
  Mutation.setCodeBudget(Budget);
  // Mutator thread count: explicit option, then DCHM_THREADS, default 1.
  NThreads = Opts.MutatorThreads;
  if (NThreads == 0)
    NThreads = static_cast<unsigned>(env::intOr("DCHM_THREADS", 1));
  NThreads = std::max(1u, NThreads);
  // Inline caches live in shared CompiledMethod objects; with concurrent
  // mutators every site would be a cross-thread race, so N>1 forces them
  // off (docs/threads.md).
  bool ICs = Opts.InlineCaches && NThreads == 1;
  Interps.reserve(NThreads);
  for (unsigned T = 0; T < NThreads; ++T) {
    Interps.push_back(std::make_unique<Interpreter>(
        P, TheHeap, *this, Opts.Dispatch, ICs, Opts.FrameArena));
    Interps.back()->setInlineSampling(Opts.Adaptive.SampleInterval == 1);
  }
  TheHeap.setRootProvider(this);
  if (NThreads > 1) {
    TheHeap.setConcurrent(true);
    TheHeap.setSafepointExecutor(
        [this](const std::function<void()> &Fn) { Safepoints.run(Fn); });
  }
  AuditOn = resolveToggle(Opts.AuditConsistency, "DCHM_AUDIT", false);
}

void VirtualMachine::setAuditHook(AuditHook *H) {
  if (!AuditOn && H)
    return;
  for (auto &I : Interps)
    I->setAuditHook(H);
  Mutation.setAuditHook(H);
}

void VirtualMachine::atSafepoint(const std::function<void()> &Fn) {
  if (NThreads > 1)
    Safepoints.run(Fn);
  else
    Fn(); // one mutator: any host call out of the interpreter is the world
          // stopped, exactly the pre-refactor semantics
}

void VirtualMachine::setMutationPlan(const MutationPlan *Plan) {
  if (!Opts.EnableMutation || !Plan || Plan->empty())
    return;
  atSafepoint([&] {
    Mutation.installPlan(*Plan);
    Adaptive.setPlan(Plan);
    Adaptive.setRecompileListener(&Mutation);
    Compiler.setPlan(Plan);
    MutationActive = true;
    // Installation is stop-the-world and includes re-classing objects that
    // already exist (mid-run activation or re-install after retirement). It
    // must happen before the budget check and the recompilation refresh so
    // their audit notifications never observe a half-installed heap.
    Mutation.migrateExistingObjects(TheHeap);
    Mutation.enforceBudget();
    // Online installation: methods that got hot before the plan existed need
    // their specialized versions generated now.
    Adaptive.refreshMutableMethods();
  });
}

void VirtualMachine::setOlcDatabase(const OlcDatabase *Db) {
  Compiler.setOlcDatabase(Db);
}

bool VirtualMachine::retireMutationPlan() {
  if (!MutationActive || !Mutation.plan())
    return false;
  atSafepoint([&] {
    // Pending specialized shells must publish their bodies before they can
    // be handed to reclamation — the drain must never race a finalizeCode.
    Compiler.sync();
    Mutation.retirePlan(TheHeap);
    Adaptive.setPlan(nullptr);
    Adaptive.setRecompileListener(nullptr);
    Compiler.setPlan(nullptr);
    MutationActive = false;
    reclaimRetired(); // re-entrant atSafepoint: runs inline
  });
  return true;
}

void VirtualMachine::reclaimRetired() {
  atSafepoint([&] {
    // Epoch-based safety: with a live frame on any mutator, a return
    // address may still point into a retired body; wait for the next
    // quiescent call. A parked mutator mid-invocation keeps its frames, so
    // this naturally defers until every context is at top level.
    for (auto &I : Interps)
      if (I->liveFrames() != 0)
        return;
    std::unordered_set<const TIB *> InUse;
    TheHeap.forEachObject([&](Object *O) {
      if (O->Tib)
        InUse.insert(O->Tib);
    });
    P.drainReclaimList(InUse);
  });
}

Value VirtualMachine::call(MethodId M, const std::vector<Value> &Args) {
  return Interps[0]->invoke(M, Args);
}

Value VirtualMachine::callOn(unsigned T, MethodId M,
                             const std::vector<Value> &Args) {
  DCHM_CHECK(T < NThreads, "callOn: no such mutator context");
  return Interps[T]->invoke(M, Args);
}

void VirtualMachine::runMutators(const std::function<void(unsigned)> &Body) {
  if (NThreads == 1) {
    Body(0); // no threads, no protocol: the classic path
    return;
  }
  // Heap caches are created up front from this thread so the cache registry
  // never changes while mutators run (it is only walked world-stopped).
  std::vector<Heap::ThreadCache *> Caches(NThreads);
  for (unsigned T = 0; T < NThreads; ++T)
    Caches[T] = TheHeap.registerMutator();

  auto Mutator = [&](unsigned T) {
    TheHeap.bindMutator(Caches[T]);
    SafepointSlot *Slot = Safepoints.registerThread();
    Interps[T]->setSafepointSlot(Slot);
    TlsSlot = Slot;
    Body(T);
    TlsSlot = nullptr;
    Interps[T]->setSafepointSlot(nullptr);
    // Fold this thread's allocation buffer with the world stopped, then
    // leave the protocol. Order matters: after unregisterThread this thread
    // no longer polls, so it must not touch anything shared — it only
    // joins/exits — or a leader would wait on it forever.
    Safepoints.run([&] { TheHeap.unregisterMutator(Caches[T]); });
    Safepoints.unregisterThread(Slot);
  };

  std::vector<std::thread> Threads;
  Threads.reserve(NThreads - 1);
  for (unsigned T = 1; T < NThreads; ++T)
    Threads.emplace_back(Mutator, T);
  Mutator(0);
  for (std::thread &Th : Threads)
    Th.join();
}

Expected<Value> VirtualMachine::run(MethodId M, const std::vector<Value> &Args) {
  if (M >= P.numMethods())
    return VMError::error("run: no such method id " + std::to_string(M));
  MethodInfo &MI = P.method(M);
  if (!MI.HasBody)
    return VMError::error("run: method '" + MI.Name + "' has no body");
  size_t Want = MI.numArgsWithReceiver();
  if (Args.size() != Want)
    return VMError::error("run: method '" + MI.Name + "' takes " +
                          std::to_string(Want) + " argument(s), got " +
                          std::to_string(Args.size()));
  Value V = call(M, Args);
  // The heap budget is soft and sticky: execution completed deterministically
  // even past the budget, but the overrun surfaces as a recoverable error
  // instead of being dropped (or aborting).
  if (TheHeap.budgetError())
    return TheHeap.budgetError();
  return V;
}

uint64_t VirtualMachine::totalCycles() const {
  // Multi-mutator runs read this per-thread clock mid-run too; other
  // contexts' counters are only exact at joins/safepoints, which is fine
  // for pacing (docs/threads.md).
  uint64_t Exec = 0;
  for (const auto &I : Interps)
    Exec += I->stats().Cycles;
  return Exec + Compiler.stats().TotalCompileCycles +
         TheHeap.stats().GcCycles + Mutation.stats().ExtraCycles;
}

RunMetrics VirtualMachine::metrics() {
  // Finalize in-flight background compiles so byte counters are complete.
  Compiler.sync();
  RunMetrics M;
  // Per-thread counters merge deterministically: contexts are summed in
  // thread-index order after the mutators joined.
  for (const auto &I : Interps) {
    M.ExecCycles += I->stats().Cycles;
    M.Insts += I->stats().Insts;
    M.Invocations += I->stats().Invocations;
  }
  M.CompileCycles = Compiler.stats().TotalCompileCycles;
  M.SpecialCompileCycles = Compiler.stats().SpecialCompileCycles;
  M.GcCycles = TheHeap.stats().GcCycles;
  M.MutationCycles = Mutation.stats().ExtraCycles;
  M.TotalCycles = totalCycles();
  M.CodeBytes = Compiler.stats().TotalCodeBytes;
  M.SpecialCodeBytes = Compiler.stats().SpecialCodeBytes;
  M.ClassTibBytes = P.classTibBytes();
  M.SpecialTibBytes = P.specialTibBytes();
  M.SpecialCompiles = Compiler.stats().SpecialCompiles;
  M.SpecialCompileRequests = Compiler.stats().SpecialCompileRequests;
  M.SpecialCacheHits = Compiler.stats().SpecialCacheHits;
  M.GcCount = TheHeap.stats().GcCount;
  if (NThreads == 1) {
    M.OutputHash = Interps[0]->outputHash();
  } else {
    // Combined fingerprint: FNV-1a over the per-thread hashes in thread
    // order. Each per-thread hash is deterministic given the seed; the
    // combination is therefore deterministic too.
    uint64_t H = 1469598103934665603ull;
    for (const auto &I : Interps) {
      uint64_t X = I->outputHash();
      for (int B = 0; B < 8; ++B) {
        H ^= (X >> (8 * B)) & 0xFFu;
        H *= 1099511628211ull;
      }
    }
    M.OutputHash = H;
  }
  M.Mutation = Mutation.stats();
  M.Adaptive = Adaptive.stats();
  M.Inlining = Compiler.stats().Inlining;
  return M;
}

CompiledMethod *VirtualMachine::ensureCompiled(MethodInfo &M) {
  if (NThreads > 1) {
    // Already-compiled is the overwhelmingly common case after warmup; the
    // plain read is safe because General is only written under a rendezvous
    // (while this thread is parked), and a stale-by-one-promotion body is
    // legitimate code to run (frames keep executing replaced bodies anyway).
    if (CompiledMethod *CM = M.General)
      return CM;
    CompiledMethod *CM = nullptr;
    Safepoints.run([&] { CM = Adaptive.ensureCompiled(M); });
    return CM;
  }
  return Adaptive.ensureCompiled(M);
}

void VirtualMachine::waitForCode(CompiledMethod &CM) {
  // A thread waiting on the compile pipeline counts as stopped for a
  // rendezvous; the scope re-parks on exit if a leader still holds the
  // world. No-op single-mutator.
  SafepointBlockedScope Blocked(TlsSlot);
  Compiler.waitFor(CM);
}

void VirtualMachine::onMethodEntry(MethodInfo &M) {
  if (NThreads > 1) {
    // Lock-free sampling; promotion (a dispatch-structure write) re-checks
    // and runs with the world stopped.
    if (Adaptive.sampleConcurrent(M))
      Safepoints.run([&] { Adaptive.promoteStopped(M); });
    return;
  }
  Adaptive.onMethodEntry(M);
}

void VirtualMachine::onBackedge(MethodInfo &M) {
  if (NThreads > 1) {
    if (Adaptive.sampleConcurrent(M))
      Safepoints.run([&] { Adaptive.promoteStopped(M); });
    return;
  }
  Adaptive.onBackedge(M);
}

void VirtualMachine::onInstanceStateStore(Object *O, FieldInfo &F,
                                          bool DuringConstruction) {
  // Construction-time stores are handled by the constructor-exit action
  // (Figure 4); acting on them would mutate half-initialized objects and
  // pollute the value profile with partial tuples.
  if (DuringConstruction)
    return;
  // Part I's instance half runs concurrently in multi-mutator mode: it
  // touches only the receiver (thread-confined by the guest threading
  // contract, docs/threads.md) plus atomic counters.
  if (MutationActive)
    Mutation.onInstanceStateStore(O, F);
  if (Observer)
    Observer->observeInstanceStore(O, F);
}

void VirtualMachine::onStaticStateStore(FieldInfo &F) {
  if (MutationActive) {
    // The static half of part I re-points shared dispatch structures
    // (TIB/JTOC code pointers): stop the world first when there is one.
    if (NThreads > 1)
      Safepoints.run([&] { Mutation.onStaticStateStore(F); });
    else
      Mutation.onStaticStateStore(F);
  }
  if (Observer)
    Observer->observeStaticStore(F);
}

void VirtualMachine::onConstructorExit(Object *O, MethodInfo &Ctor) {
  // Stamp before the mutation engine runs (and audits): once part I has
  // classified the object, the strict TIB-matches-state invariant applies.
  if (O)
    O->CtorDone = true;
  if (MutationActive)
    Mutation.onConstructorExit(O, Ctor);
  if (Observer)
    Observer->observeConstructorExit(O, Ctor);
}

void VirtualMachine::enumerateRoots(std::vector<Object *> &Roots) {
  for (auto &I : Interps)
    I->enumerateRoots(Roots);
  for (uint32_t S = 0; S < P.numStaticSlots(); ++S)
    if (P.staticSlotType(S) == Type::Ref && P.getStaticSlot(S).R)
      Roots.push_back(P.getStaticSlot(S).R);
}

} // namespace dchm
