//===-- core/VM.h - The MiniVM facade -------------------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VirtualMachine wires the substrates together the way the paper's modified
/// Jikes RVM does: the interpreter executes compiled code and reports events;
/// the adaptive system compiles lazily and recompiles hot methods; the
/// mutation engine (when enabled and given a plan) maintains the dynamically
/// mutated class hierarchy; the heap collects with roots from the frames and
/// the JTOC. This is the primary public entry point of the library:
///
/// \code
///   Program P;            // build classes/methods with FunctionBuilder
///   ...
///   P.link();
///   VirtualMachine VM(P, Options);
///   VM.setMutationPlan(&Plan);            // from OfflinePipeline or by hand
///   VM.call(MainMethod, {});
///   RunMetrics M = VM.metrics();          // cycles, code bytes, TIB bytes
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_CORE_VM_H
#define DCHM_CORE_VM_H

#include "adaptive/AdaptiveSystem.h"
#include "compiler/OptCompiler.h"
#include "exec/Interpreter.h"
#include "mutation/MutationManager.h"
#include "runtime/Heap.h"
#include "runtime/Program.h"
#include "runtime/Safepoint.h"
#include "support/Error.h"

#include <functional>
#include <memory>
#include <vector>

namespace dchm {

/// Tri-state for host-side knobs: Auto defers to the environment variable
/// (and its built-in default), On/Off force the setting for this VM.
enum class HostToggle { Auto, On, Off };

/// VM configuration for one run.
struct VMOptions {
  /// Master switch for dynamic class hierarchy mutation. With it off the
  /// plan is ignored entirely — the baseline configuration of every
  /// "without mutation" bar in the paper's figures.
  bool EnableMutation = true;
  size_t HeapBytes = 50u << 20; ///< Jikes' default 50 MB heap
  AdaptiveConfig Adaptive;
  InlinerConfig Inline;
  /// Interpreter fast-path knobs (docs/dispatch.md). These change host wall
  /// time only; simulated cycle counts and program output are identical in
  /// every combination.
  DispatchMode Dispatch = DispatchMode::Default;
  bool InlineCaches = true; ///< per-call-site mutation-safe inline caches
  bool FrameArena = true;   ///< contiguous register arena vs per-frame files
  /// Background compilation knobs (docs/compile_pipeline.md). Like the
  /// dispatch knobs these change host wall time (and host-side compile/code
  /// counters) only: simulated cycles, instruction counts, and output are
  /// identical in every combination.
  HostToggle AsyncCompile = HostToggle::Auto; ///< DCHM_ASYNC_COMPILE, def. on
  unsigned CompileThreads = 0; ///< 0 = DCHM_COMPILE_THREADS, default 2
  HostToggle SpecializationCache = HostToggle::Auto; ///< DCHM_SPEC_CACHE, def. on
  /// Gates the runtime consistency auditor (testing/ConsistencyAuditor):
  /// with the toggle off, setAuditHook() is a no-op, so harnesses can leave
  /// the attachment code in place and flip only this option (or DCHM_AUDIT
  /// in the environment; default off). Auditing never changes simulated
  /// cycles, instruction counts, or output — it is host-side work only.
  HostToggle AuditConsistency = HostToggle::Auto; ///< DCHM_AUDIT, def. off
  /// Budget over specialized-code bytes + special-TIB bytes (graceful
  /// degradation, docs/degradation.md). 0 defers to DCHM_CODE_BUDGET in the
  /// environment; unset there too means unlimited. Under pressure the
  /// mutation engine demotes the coldest hot states to general code.
  size_t CodeBudgetBytes = 0;
  /// Number of application (mutator) threads (docs/threads.md). 0 defers to
  /// DCHM_THREADS in the environment (default 1). At 1 every code path is
  /// the single-mutator path — bit-identical output, cycle counters and
  /// fingerprints. At N>1 the safepoint rendezvous protocol activates,
  /// each mutator context gets its own interpreter and heap allocation
  /// buffer, and per-call-site inline caches are forced off (cache sites
  /// live in shared CompiledMethod objects).
  unsigned MutatorThreads = 0;
};

/// Everything the experiment harness reads after (or during) a run.
struct RunMetrics {
  uint64_t ExecCycles = 0;
  uint64_t CompileCycles = 0;
  uint64_t SpecialCompileCycles = 0;
  uint64_t GcCycles = 0;
  uint64_t MutationCycles = 0;
  uint64_t TotalCycles = 0; ///< sum of the above (the run's "time")
  size_t CodeBytes = 0;
  size_t SpecialCodeBytes = 0;
  size_t ClassTibBytes = 0;
  size_t SpecialTibBytes = 0;
  unsigned SpecialCompiles = 0;        ///< specialized bodies compiled
  unsigned SpecialCompileRequests = 0; ///< compiles + specialization-cache hits
  unsigned SpecialCacheHits = 0;
  uint64_t GcCount = 0;
  uint64_t Insts = 0;
  uint64_t Invocations = 0;
  uint64_t OutputHash = 0;
  MutationStats Mutation;
  AdaptiveStats Adaptive;
  InlineStats Inlining;
};

/// Passive observer of state-field events, used by the offline value
/// profiler (Figure 3's "find hot states" step): it sees the same triggers
/// the mutation engine would, without mutating anything.
class StateObserver {
public:
  virtual ~StateObserver() = default;
  virtual void observeInstanceStore(Object *O, FieldInfo &F) = 0;
  // (construction-time stores are filtered out before observers run)
  virtual void observeStaticStore(FieldInfo &F) = 0;
  virtual void observeConstructorExit(Object *O, MethodInfo &Ctor) = 0;
};

/// The assembled MiniVM.
class VirtualMachine : public VMCallbacks, public RootProvider {
public:
  VirtualMachine(Program &P, const VMOptions &Opts);

  /// Installs the mutation plan (marks state fields, creates special TIBs).
  /// Ignored when mutation is disabled. The plan must outlive the VM.
  void setMutationPlan(const MutationPlan *Plan);

  /// Wires OLC analysis results into the compiler (specialization inlining).
  void setOlcDatabase(const OlcDatabase *Db);

  /// Attaches a value-profiling observer. Fields must have IsStateField set
  /// for the interpreter to report their stores (the profiler marks its
  /// candidate fields on its own Program instance).
  void setStateObserver(StateObserver *Obs) { Observer = Obs; }

  /// Attaches a consistency-audit hook (normally a ConsistencyAuditor from
  /// the testing library) to the interpreter's safepoint and the mutation
  /// engine's transition points. Gated by VMOptions::AuditConsistency /
  /// DCHM_AUDIT: when auditing is disabled this is a no-op, so callers can
  /// attach unconditionally. Pass null to detach.
  void setAuditHook(AuditHook *H);

  /// True when VMOptions::AuditConsistency (or DCHM_AUDIT) resolved to on.
  bool auditEnabled() const { return AuditOn; }

  /// Stop-the-world reverse of setMutationPlan: retires the installed plan
  /// (MutationManager::retirePlan), detaches it from the adaptive system
  /// and the compiler, and drains the epoch-based reclamation list if no
  /// interpreter frame is live. Afterwards setMutationPlan can install a
  /// new plan (or the same one) again. Returns false when no plan is
  /// active.
  bool retireMutationPlan();

  /// Drains the Program's reclamation list of retired special TIBs and
  /// specialized bodies, but only at a quiescent point: no live interpreter
  /// frames, and only entries retired before the current code epoch whose
  /// TIBs no heap object references (stranded objects keep their TIB alive
  /// rather than dangling). Safe to call any time; no-op when unsafe.
  void reclaimRetired();

  /// Invokes a method (receiver first for instance methods) on mutator
  /// context 0.
  Value call(MethodId M, const std::vector<Value> &Args);

  // --- Multi-mutator mode (docs/threads.md) --------------------------------
  /// Resolved mutator thread count (>= 1).
  unsigned mutatorThreads() const { return NThreads; }
  bool multiMutator() const { return NThreads > 1; }

  /// Runs Body(t) for t in [0, mutatorThreads()): t=0 on the calling
  /// thread, the rest on freshly spawned threads, each bound to its own
  /// interpreter, heap allocation buffer, and safepoint slot. Returns after
  /// every mutator finished and folded its thread-local state. With one
  /// mutator this is exactly Body(0) — no threads, no protocol.
  ///
  /// Reference arguments passed to callOn() from inside Body must be rooted
  /// host-side (LocalRootScope registered before runMutators): the callee
  /// frame does not exist yet when a leader could collect.
  void runMutators(const std::function<void(unsigned)> &Body);

  /// call() on a specific mutator context. Only call T from the thread
  /// runMutators bound to T (context 0 also works outside runMutators).
  Value callOn(unsigned T, MethodId M, const std::vector<Value> &Args);

  /// Runs Fn with every mutator stopped: a plain call at N=1, a safepoint
  /// rendezvous (leader = calling thread) at N>1. Re-entrant from inside a
  /// closure. This is how every stop-the-world operation — plan install and
  /// retirement, budget eviction, GC, code reclamation, audits — is phrased
  /// now that "the world" can be more than one thread.
  void atSafepoint(const std::function<void()> &Fn);

  SafepointManager &safepoints() { return Safepoints; }

  /// Validating, recoverable-error front end to call(): rejects bad entry
  /// points and argument lists with a VMError instead of aborting, and
  /// surfaces a heap soft-budget overrun (Heap::budgetError) recorded
  /// during the run. Execution itself is identical to call().
  Expected<Value> run(MethodId M, const std::vector<Value> &Args);

  /// Total simulated cycles so far: execution + compilation + GC +
  /// mutation bookkeeping. The drivers use this as the clock. Safe mid-run
  /// with background compilation: compile cycles are charged at request
  /// time on this thread, never by workers.
  uint64_t totalCycles() const;

  /// Drains background compilation first (compiler().sync()), so the byte
  /// and code counters are final.
  RunMetrics metrics();

  Program &program() { return P; }
  Heap &heap() { return TheHeap; }
  Interpreter &interp() { return *Interps[0]; }
  /// Interpreter of mutator context T.
  Interpreter &interp(unsigned T) { return *Interps[T]; }
  OptCompiler &compiler() { return Compiler; }
  AdaptiveSystem &adaptive() { return Adaptive; }
  MutationManager &mutation() { return Mutation; }
  const VMOptions &options() const { return Opts; }

  // --- VMCallbacks (interpreter events) ------------------------------------
  CompiledMethod *ensureCompiled(MethodInfo &M) override;
  void waitForCode(CompiledMethod &CM) override;
  void onMethodEntry(MethodInfo &M) override;
  void onBackedge(MethodInfo &M) override;
  void onInstanceStateStore(Object *O, FieldInfo &F,
                            bool DuringConstruction) override;
  void onStaticStateStore(FieldInfo &F) override;
  void onConstructorExit(Object *O, MethodInfo &Ctor) override;

  // --- RootProvider (frames + JTOC static reference slots) -----------------
  void enumerateRoots(std::vector<Object *> &Roots) override;

private:
  Program &P;
  VMOptions Opts;
  Heap TheHeap;
  OptCompiler Compiler;
  AdaptiveSystem Adaptive;
  MutationManager Mutation;
  /// One interpreter per mutator context; [0] is the classic single-mutator
  /// interpreter every existing API routes through.
  std::vector<std::unique_ptr<Interpreter>> Interps;
  SafepointManager Safepoints;
  unsigned NThreads = 1; ///< resolved MutatorThreads / DCHM_THREADS
  StateObserver *Observer = nullptr;
  bool MutationActive = false;
  bool AuditOn = false;
};

} // namespace dchm

#endif // DCHM_CORE_VM_H
