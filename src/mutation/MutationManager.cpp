//===-- mutation/MutationManager.cpp - Dynamic class mutation ----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "mutation/MutationManager.h"

#include "runtime/CostModel.h"
#include "support/Debug.h"

#include <algorithm>
#include <unordered_set>

namespace dchm {

void MutationManager::installPlan(const MutationPlan &Plan) {
  DCHM_CHECK(!Installed, "mutation plan installed twice");
  DCHM_CHECK(P.isLinked(), "install plan after linking");
  Installed = &Plan;
  SwingIns.clear();
  SwingIns.resize(Plan.Classes.size());

  for (size_t Idx = 0; Idx < Plan.Classes.size(); ++Idx) {
    const MutableClassPlan &CP = Plan.Classes[Idx];
    ClassInfo &C = P.cls(CP.Cls);
    DCHM_CHECK(C.MutableIndex < 0, "class appears twice in the plan");
    C.MutableIndex = static_cast<int>(Idx);
    SwingIns[Idx] = std::vector<std::atomic<uint64_t>>(CP.HotStates.size());

    for (FieldId F : CP.InstanceStateFields) {
      DCHM_CHECK(!P.field(F).IsStatic, "instance state field is static");
      P.field(F).IsStateField = true;
    }
    for (FieldId F : CP.StaticStateFields) {
      DCHM_CHECK(P.field(F).IsStatic, "static state field is not static");
      P.field(F).IsStateField = true;
    }
    for (MethodId M : CP.MutableMethods) {
      DCHM_CHECK(P.method(M).Owner == CP.Cls,
                 "mutable method not declared by the mutable class");
      P.method(M).IsMutable = true;
    }
    for (const HotState &HS : CP.HotStates) {
      DCHM_CHECK(HS.InstanceVals.size() == CP.InstanceStateFields.size(),
                 "hot state instance tuple size mismatch");
      DCHM_CHECK(HS.StaticVals.size() == CP.StaticStateFields.size(),
                 "hot state static tuple size mismatch");
    }

    // "For mutable classes that are dependent on instance fields, a number
    // of special TIBs are created", one per hot state. Classes depending
    // only on static fields specialize the class TIB itself and need none.
    if (CP.dependsOnInstanceFields())
      for (size_t S = 0; S < CP.HotStates.size(); ++S)
        P.createSpecialTib(CP.Cls, static_cast<int>(S));

    // Interface dispatch support (paper section 3.2.3): single-method IMT
    // slots of a mutable class hold a TIB offset instead of a direct code
    // pointer, so the dispatch goes through the object's current TIB. All
    // special TIBs share the class's IMT.
    if (C.Imt) {
      for (ImtEntry &E : C.Imt->Slots) {
        if (E.K != ImtEntry::Kind::Direct)
          continue;
        E.K = ImtEntry::Kind::TibOffset;
        E.VSlot = P.method(E.DirectImpl).VSlot;
        E.DirectCode = nullptr;
      }
    }
  }

  // The IMT rewiring above (and the special-TIB creation) changed how the
  // same call sites must dispatch: interface sites that cached a Direct
  // code pointer would otherwise keep bypassing the object's current TIB.
  // (The caller enforces the code budget after existing objects migrate, so
  // audit hooks never observe a half-installed heap.)
  P.bumpCodeEpoch();
}

int MutationManager::matchInstanceState(const MutableClassPlan &CP,
                                        Object *O) {
  Stats.ExtraCycles += DispatchCost::StateFieldPatchPerField *
                       CP.InstanceStateFields.size();
  for (size_t S = 0; S < CP.HotStates.size(); ++S) {
    const HotState &HS = CP.HotStates[S];
    bool Match = true;
    for (size_t F = 0; F < CP.InstanceStateFields.size(); ++F) {
      const FieldInfo &Fld = P.field(CP.InstanceStateFields[F]);
      if (O->get(Fld.Slot).I != HS.InstanceVals[F].I) {
        Match = false;
        break;
      }
    }
    if (Match)
      return static_cast<int>(S);
  }
  return -1;
}

bool MutationManager::staticPartMatches(const MutableClassPlan &CP,
                                        size_t S) const {
  // "There are no static state fields affecting the hot state of the
  // mutable class and we assume this is a default match."
  const HotState &HS = CP.HotStates[S];
  for (size_t F = 0; F < CP.StaticStateFields.size(); ++F) {
    const FieldInfo &Fld = P.field(CP.StaticStateFields[F]);
    if (P.getStaticSlot(Fld.Slot).I != HS.StaticVals[F].I)
      return false;
  }
  return true;
}

int MutationManager::anyStaticMatch(const MutableClassPlan &CP) const {
  for (size_t S = 0; S < CP.HotStates.size(); ++S)
    if (staticPartMatches(CP, S))
      return static_cast<int>(S);
  return -1;
}

void MutationManager::swingObjectTib(Object *O, TIB *To) {
  if (Debug.SkipTibSwing)
    return; // injected fault: leave the stale TIB for the auditor to find
  if (O->Tib == To)
    return;
  O->Tib = To;
  Stats.ObjectTibSwings++;
  Stats.ExtraCycles += DispatchCost::PointerSwing;
}

void MutationManager::updateCodePointer(CompiledMethod *&SlotRef,
                                        CompiledMethod *To) {
  if (Debug.SkipCodePointerUpdate)
    return; // injected fault: leave the stale code pointer in place
  if (SlotRef == To)
    return;
  SlotRef = To;
  Stats.CodePointerUpdates++;
  Stats.ExtraCycles += DispatchCost::PointerSwing;
  // A TIB slot now routes differently (general <-> special code): any
  // inline cache holding the previous pointer for this TIB is stale.
  P.bumpCodeEpoch();
}

void MutationManager::boostPendingSpecials(const MutableClassPlan &CP,
                                           size_t S) {
  // Cheap gate: hasPending() is one relaxed load, so the common case (no
  // background compiles in flight) costs nothing on the store-hook path.
  if (!Compiler || !Compiler->pipeline().hasPending())
    return;
  for (MethodId MId : CP.MutableMethods) {
    MethodInfo &M = P.method(MId);
    if (S < M.Specials.size() && M.Specials[S])
      Compiler->pipeline().boost(*M.Specials[S]);
  }
}

void MutationManager::onInstanceStateStore(Object *O, FieldInfo &F) {
  // The receiver's *actual* class decides mutability: only instances of the
  // mutable class itself mutate (special code never propagates to
  // subclasses; Figure 6).
  ClassInfo *C = O->Tib->Cls;
  if (C->MutableIndex < 0)
    return;
  const MutableClassPlan &CP = Installed->Classes[C->MutableIndex];
  if (!CP.dependsOnInstanceFields())
    return;
  if (std::find(CP.InstanceStateFields.begin(), CP.InstanceStateFields.end(),
                F.Id) == CP.InstanceStateFields.end())
    return;
  int S = matchInstanceState(CP, O);
  if (S >= 0) {
    Stats.StateMatches++;
    SwingIns[static_cast<size_t>(C->MutableIndex)][static_cast<size_t>(S)]++;
    // A null slot means this hot state was evicted under code-budget
    // pressure; the class TIB (general code) is its resting place.
    TIB *To = C->SpecialTibs[static_cast<size_t>(S)];
    swingObjectTib(O, To ? To : C->ClassTib);
    if (To)
      boostPendingSpecials(CP, static_cast<size_t>(S));
  } else {
    Stats.StateMisses++;
    swingObjectTib(O, C->ClassTib);
  }
  noteTransition("part I: instance state store");
}

void MutationManager::onConstructorExit(Object *O, MethodInfo &Ctor) {
  if (!Installed || !O)
    return;
  ClassInfo *C = O->Tib->Cls;
  if (C->MutableIndex < 0)
    return;
  const MutableClassPlan &CP = Installed->Classes[C->MutableIndex];
  // "At the end of the constructors for a mutable class: if the object's
  // state is dependent on any instance field..." (Figure 4).
  if (!CP.dependsOnInstanceFields())
    return;
  Stats.ExtraCycles += DispatchCost::StateFieldPatchBase;
  int S = matchInstanceState(CP, O);
  if (S >= 0) {
    Stats.StateMatches++;
    SwingIns[static_cast<size_t>(C->MutableIndex)][static_cast<size_t>(S)]++;
    TIB *To = C->SpecialTibs[static_cast<size_t>(S)];
    swingObjectTib(O, To ? To : C->ClassTib);
    if (To)
      boostPendingSpecials(CP, static_cast<size_t>(S));
  } else {
    Stats.StateMisses++;
    swingObjectTib(O, C->ClassTib);
  }
  noteTransition("part I: constructor exit");
}

uint64_t MutationManager::migrateExistingObjects(Heap &H) {
  DCHM_CHECK(Installed, "migrate without a plan");
  uint64_t Migrated = 0;
  H.forEachObject([&](Object *O) {
    if (O->IsArray || !O->Tib)
      return;
    ClassInfo *C = O->Tib->Cls;
    if (C->MutableIndex < 0 || O->Tib->isSpecial())
      return;
    const MutableClassPlan &CP = Installed->Classes[C->MutableIndex];
    if (!CP.dependsOnInstanceFields())
      return;
    int S = matchInstanceState(CP, O);
    if (S >= 0) {
      Stats.StateMatches++;
      SwingIns[static_cast<size_t>(C->MutableIndex)][static_cast<size_t>(S)]++;
      if (TIB *To = C->SpecialTibs[static_cast<size_t>(S)]) {
        swingObjectTib(O, To);
        boostPendingSpecials(CP, static_cast<size_t>(S));
        ++Migrated;
      }
    }
  });
  noteTransition("online: object migration");
  return Migrated;
}

void MutationManager::refreshMethodPointers(const MutableClassPlan &CP,
                                            MethodInfo &M) {
  ClassInfo &C = P.cls(CP.Cls);
  if (M.Specials.empty())
    return; // not yet opt2-compiled; nothing to route

  if (M.Flags.IsStatic) {
    // Static methods can only use static fields; their pointer lives in the
    // JTOC.
    int S = anyStaticMatch(CP);
    CompiledMethod *Want =
        (S >= 0 && M.Specials[static_cast<size_t>(S)])
            ? M.Specials[static_cast<size_t>(S)]
            : M.General;
    CompiledMethod *Cur = P.staticEntry(M.Id);
    if (Debug.SkipCodePointerUpdate)
      return; // injected fault: leave the stale JTOC entry in place
    if (Cur != Want) {
      P.setStaticEntry(M.Id, Want);
      Stats.CodePointerUpdates++;
      Stats.ExtraCycles += DispatchCost::PointerSwing;
    }
    return;
  }

  if (CP.dependsOnInstanceFields()) {
    // Each special TIB holds special code iff the static part of its hot
    // state matches the current static field values; otherwise it must hold
    // the general code. The class TIB always holds general code.
    for (size_t S = 0; S < CP.HotStates.size(); ++S) {
      TIB *ST = C.SpecialTibs[S];
      if (!ST)
        continue; // evicted hot state: no TIB left to route code into
      CompiledMethod *Want = (staticPartMatches(CP, S) && M.Specials[S])
                                 ? M.Specials[S]
                                 : M.General;
      updateCodePointer(ST->Slots[M.VSlot], Want);
    }
    updateCodePointer(C.ClassTib->Slots[M.VSlot], M.General);
    return;
  }

  // Static-only mutable class: the class TIB itself is specialized. This is
  // also how private instance methods get mutated (invokespecial binds
  // through the declaring class TIB).
  int S = anyStaticMatch(CP);
  CompiledMethod *Want = (S >= 0 && M.Specials[static_cast<size_t>(S)])
                             ? M.Specials[static_cast<size_t>(S)]
                             : M.General;
  updateCodePointer(C.ClassTib->Slots[M.VSlot], Want);
}

void MutationManager::onStaticStateStore(FieldInfo &F) {
  if (!Installed)
    return;
  // "For each assignment of a static state field: foreach mutable classes
  // whose states are dependent on this static field ..." (Figure 4).
  for (const MutableClassPlan &CP : Installed->Classes) {
    if (std::find(CP.StaticStateFields.begin(), CP.StaticStateFields.end(),
                  F.Id) == CP.StaticStateFields.end())
      continue;
    Stats.ExtraCycles +=
        DispatchCost::StateFieldPatchPerField * CP.StaticStateFields.size();
    if (anyStaticMatch(CP) >= 0)
      Stats.StateMatches++;
    else
      Stats.StateMisses++;
    for (MethodId MId : CP.MutableMethods)
      refreshMethodPointers(CP, P.method(MId));
  }
  noteTransition("part I: static state store");
}

void MutationManager::onMutableMethodRecompiled(MethodInfo &M) {
  DCHM_CHECK(Installed, "recompile notification without a plan");
  const MutableClassPlan *CP = Installed->planFor(M.Owner);
  DCHM_CHECK(CP, "mutable method without a class plan");
  // The installer already placed the new general code in the class TIB, the
  // special TIBs, and non-overriding subclasses (general code only — "the
  // general compiled code instead of the special compiled code is
  // propagated to the sub classes"). Route the special code per Figure 5.
  refreshMethodPointers(*CP, M);
  noteTransition("part II: mutable method recompiled");
  // Fresh specialized bodies grew the footprint; demote cold states if that
  // pushed us over the code budget.
  enforceBudget();
}

uint64_t MutationManager::retirePlan(Heap &H) {
  DCHM_CHECK(Installed, "retirePlan without an installed plan");

  // Stop-the-world phase 1: swing every object sitting on a special TIB
  // back to its class TIB, so no dispatch can reach a retired structure.
  uint64_t OnSpecial = 0;
  H.forEachObject([&](Object *O) {
    if (O->IsArray || !O->Tib || !O->Tib->isSpecial())
      return;
    ++OnSpecial;
    if (Debug.SkipRetireSwing)
      return; // injected fault: strand the object on its retired TIB
    swingObjectTib(O, O->Tib->Cls->ClassTib);
  });

  // Phase 2: restore every dispatch structure to its pre-install shape.
  for (const MutableClassPlan &CP : Installed->Classes) {
    ClassInfo &C = P.cls(CP.Cls);
    // The content-keyed specialization cache can share one body across
    // several hot states of a method; retire each distinct body once.
    std::unordered_set<CompiledMethod *> Retired;
    for (MethodId MId : CP.MutableMethods) {
      MethodInfo &M = P.method(MId);
      if (M.Flags.IsStatic) {
        if (M.General && P.staticEntry(M.Id) != M.General &&
            !Debug.SkipCodePointerUpdate) {
          P.setStaticEntry(M.Id, M.General);
          Stats.CodePointerUpdates++;
          Stats.ExtraCycles += DispatchCost::PointerSwing;
        }
      } else if (!CP.dependsOnInstanceFields()) {
        // Static-only classes specialize the class TIB itself; put the
        // general code back.
        if (M.General)
          updateCodePointer(C.ClassTib->Slots[M.VSlot], M.General);
      }
      for (CompiledMethod *SP : M.Specials)
        if (SP && Retired.insert(SP).second) {
          SP->invalidate();
          P.retireCompiledBody(SP);
        }
      M.Specials.clear();
      M.IsMutable = false;
    }

    // Un-rewire the IMT: TibOffset entries go back to Direct, rebound to
    // the class TIB's (general) code — null when not yet compiled, exactly
    // the lazy pre-install state. Not charged as a code-pointer update:
    // installPlan's symmetric rewiring is uncharged structural work too, so
    // an install/retire/re-install prologue round trip stays cycle-exact.
    if (C.Imt)
      for (ImtEntry &E : C.Imt->Slots)
        if (E.K == ImtEntry::Kind::TibOffset) {
          E.K = ImtEntry::Kind::Direct;
          E.DirectCode = C.ClassTib->Slots[E.VSlot];
        }

    for (TIB *ST : C.SpecialTibs)
      if (ST)
        P.retireSpecialTib(ST);
    C.SpecialTibs.clear();

    for (FieldId F : CP.InstanceStateFields)
      P.field(F).IsStateField = false;
    for (FieldId F : CP.StaticStateFields)
      P.field(F).IsStateField = false;
    C.MutableIndex = -1;
  }

  Installed = nullptr;
  SwingIns.clear();
  Stats.PlanRetirements++;
  // Every dispatch structure above changed shape: stale inline caches must
  // miss from here on, and this epoch stamp is what gates the reclamation
  // drain for the TIBs and bodies retired above.
  P.bumpCodeEpoch();
  noteTransition("retire: plan retired");
  return OnSpecial;
}

bool MutationManager::evictState(size_t Idx, size_t S) {
  const MutableClassPlan &CP = Installed->Classes[Idx];
  if (!CP.dependsOnInstanceFields())
    return false; // static-only classes own no special TIBs to demote
  ClassInfo &C = P.cls(CP.Cls);
  TIB *ST = C.SpecialTibs[S];
  if (!ST)
    return false; // already evicted
  // Swing residents home to the class TIB (general code) before the TIB
  // goes on the reclamation list, so it is unreachable from the heap.
  if (TheHeap)
    TheHeap->forEachObject([&](Object *O) {
      if (!O->IsArray && O->Tib == ST)
        swingObjectTib(O, C.ClassTib);
    });
  // Null the slot first (vector size is preserved so state indices stay
  // stable); refreshMethodPointers then skips this state.
  C.SpecialTibs[S] = nullptr;
  for (MethodId MId : CP.MutableMethods) {
    MethodInfo &M = P.method(MId);
    if (S >= M.Specials.size() || !M.Specials[S])
      continue;
    CompiledMethod *SP = M.Specials[S];
    M.Specials[S] = nullptr;
    // The specialization cache can alias one body across states; only
    // retire it when no other state of this method still routes to it.
    bool StillUsed = false;
    for (CompiledMethod *Other : M.Specials)
      if (Other == SP)
        StillUsed = true;
    if (!StillUsed) {
      SP->invalidate();
      P.retireCompiledBody(SP);
    }
    // Re-route: a static method's JTOC entry may have pointed at the body
    // we just dropped.
    refreshMethodPointers(CP, M);
  }
  P.retireSpecialTib(ST);
  P.bumpCodeEpoch();
  Stats.StateEvictions++;
  noteTransition("degrade: state evicted");
  return true;
}

size_t MutationManager::specialFootprintBytes() const {
  if (!Installed)
    return 0;
  size_t Bytes = 0;
  std::unordered_set<const CompiledMethod *> Seen;
  for (const MutableClassPlan &CP : Installed->Classes) {
    const ClassInfo &C = P.cls(CP.Cls);
    for (const TIB *ST : C.SpecialTibs)
      if (ST)
        Bytes += ST->sizeBytes();
    for (MethodId MId : CP.MutableMethods)
      for (const CompiledMethod *SP : P.method(MId).Specials)
        if (SP && Seen.insert(SP).second)
          Bytes += SP->budgetBytes();
  }
  return Bytes;
}

uint64_t MutationManager::enforceBudget() {
  if (!CodeBudgetBytes || !Installed)
    return 0;
  uint64_t Evicted = 0;
  while (specialFootprintBytes() > CodeBudgetBytes) {
    if (!evictColdestState())
      break; // nothing left to demote; the remainder is irreducible
    ++Evicted;
  }
  return Evicted;
}

bool MutationManager::evictColdestState() {
  if (!Installed)
    return false;
  // Benefit-ranked: the state with the fewest part I swing-ins bought the
  // least specialization benefit. First-wins tie-break keeps the choice
  // deterministic across hosts (SwingIns is simulated data).
  size_t BestIdx = 0, BestS = 0;
  uint64_t BestCount = 0;
  bool Found = false;
  for (size_t Idx = 0; Idx < Installed->Classes.size(); ++Idx) {
    const MutableClassPlan &CP = Installed->Classes[Idx];
    if (!CP.dependsOnInstanceFields())
      continue;
    const ClassInfo &C = P.cls(CP.Cls);
    for (size_t S = 0; S < C.SpecialTibs.size(); ++S) {
      if (!C.SpecialTibs[S])
        continue;
      uint64_t N = SwingIns[Idx][S];
      if (!Found || N < BestCount) {
        Found = true;
        BestIdx = Idx;
        BestS = S;
        BestCount = N;
      }
    }
  }
  return Found && evictState(BestIdx, BestS);
}

} // namespace dchm
