//===-- mutation/MutationPlan.h - Hot-state mutation plan -----*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The artifact of the paper's offline step (Figure 3): for each *mutable
/// class*, the state fields that determine its mutation state, the hot
/// states (joint value tuples) worth specializing for, and the mutable
/// methods to generate specialized compiled code for. The plan is fed to
/// the VM at startup; the mutation engine turns each hot state into a
/// special TIB + specialized compiled methods.
///
/// Plans are produced automatically by analysis/OfflinePipeline, and can be
/// handwritten for tests and examples.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_MUTATION_MUTATIONPLAN_H
#define DCHM_MUTATION_MUTATIONPLAN_H

#include "ir/Ids.h"
#include "runtime/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dchm {

/// One hot state of a mutable class: a joint assignment of values to the
/// class's state fields. InstanceVals aligns with the owning plan's
/// InstanceStateFields, StaticVals with StaticStateFields.
struct HotState {
  std::vector<Value> InstanceVals;
  std::vector<Value> StaticVals;
  /// Fraction of profile samples in this state (diagnostic only).
  double Weight = 0.0;
};

/// Mutation plan for one mutable class.
struct MutableClassPlan {
  ClassId Cls = NoClassId;
  /// Instance (non-static) state fields, possibly declared by parents.
  std::vector<FieldId> InstanceStateFields;
  /// Static state fields.
  std::vector<FieldId> StaticStateFields;
  /// Hot states; each gets a special TIB (when instance fields exist) and
  /// one specialized compiled version of every mutable method.
  std::vector<HotState> HotStates;
  /// Mutable methods: hot methods *declared by this class* whose behavior
  /// depends on the state fields. Only declared methods are mutation
  /// candidates (paper Figure 6's class-B example).
  std::vector<MethodId> MutableMethods;

  bool dependsOnInstanceFields() const { return !InstanceStateFields.empty(); }
  bool dependsOnStaticFields() const { return !StaticStateFields.empty(); }
};

/// A full mutation plan for a program.
struct MutationPlan {
  std::vector<MutableClassPlan> Classes;

  bool empty() const { return Classes.empty(); }

  const MutableClassPlan *planFor(ClassId C) const {
    for (const MutableClassPlan &P : Classes)
      if (P.Cls == C)
        return &P;
    return nullptr;
  }

  /// Total number of (class, state) pairs — the number of dynamically
  /// mutated classes the hierarchy can contain.
  size_t numHotStates() const {
    size_t N = 0;
    for (const MutableClassPlan &P : Classes)
      N += P.HotStates.size();
    return N;
  }
};

} // namespace dchm

#endif // DCHM_MUTATION_MUTATIONPLAN_H
