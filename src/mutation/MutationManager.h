//===-- mutation/MutationManager.h - Dynamic class mutation ---*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core of the paper: the runtime engine that dynamically mutates the
/// class hierarchy. Installing a MutationPlan creates one special TIB per
/// hot state of every mutable class that depends on instance state fields
/// (a replicant of the class TIB) and rewires single-method IMT slots of
/// mutable classes to TIB offsets. At runtime it executes the *distributed
/// dynamic class mutation algorithm*:
///
///  - Part I (Figure 4), triggered at state-field assignments and
///    constructor exits: re-point an object's TIB pointer to the special
///    TIB matching its instance state (or back to the class TIB), and on
///    static state-field assignments re-point the compiled-code pointers in
///    special TIBs / the class TIB / the JTOC between general and special
///    code depending on whether the static state matches a hot state.
///
///  - Part II (Figure 5), triggered when the adaptive system recompiles a
///    mutable method at a high optimization level: route the fresh special
///    compiled code into the special TIBs (or the class TIB for classes
///    that depend only on static fields, which also covers private methods;
///    or the JTOC for static methods), with general code propagated to
///    subclasses by the installer.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_MUTATION_MUTATIONMANAGER_H
#define DCHM_MUTATION_MUTATIONMANAGER_H

#include "adaptive/AdaptiveSystem.h"
#include "mutation/MutationPlan.h"
#include "runtime/AuditHook.h"
#include "runtime/Heap.h"
#include "runtime/Object.h"
#include "runtime/Program.h"

namespace dchm {

/// Mutation activity counters (Figure 12's TIB accounting comes from the
/// Program; these feed the overhead discussion).
struct MutationStats {
  uint64_t ObjectTibSwings = 0;    ///< object TIB pointer re-points
  uint64_t CodePointerUpdates = 0; ///< TIB/JTOC code pointer re-points
  uint64_t StateMatches = 0;       ///< part I checks that matched a hot state
  uint64_t StateMisses = 0;        ///< part I checks that matched nothing
  uint64_t ExtraCycles = 0;        ///< simulated cost of all of the above
};

/// Fault-injection switches for the consistency auditor's self-test: each
/// one silently skips a step of the distributed mutation algorithm,
/// breaking an invariant the auditor must then catch. Never set outside
/// tests and the fuzz harness.
struct MutationDebugFlags {
  /// Part I: skip object TIB re-points (objects keep stale TIBs while
  /// their state fields change). Dispatch stays *correct* — general code
  /// computes the same results — which is exactly why only the auditor,
  /// not a differential oracle, can catch it.
  bool SkipTibSwing = false;
  /// Part I/II: skip TIB/JTOC code-pointer re-points on static state
  /// changes and recompilations (can leave specialized code live for a
  /// state it was not compiled for — a correctness bug, not just an
  /// invariant break).
  bool SkipCodePointerUpdate = false;
};

/// Runtime engine for dynamic class hierarchy mutation.
class MutationManager : public RecompileListener {
public:
  explicit MutationManager(Program &P) : P(P) {}

  /// Installs the plan: marks state fields and mutable methods, creates the
  /// special TIBs, and rewires mutable classes' IMT slots. Must run before
  /// execution starts (the paper feeds the plan to the JVM at startup).
  void installPlan(const MutationPlan &Plan);

  /// Wires in the compiler so part I can boost pending background compiles:
  /// when an object swings into a hot state whose specialized code is still
  /// in the pipeline, that compile jumps the queue (host-side latency only).
  void setCompiler(OptCompiler *OC) { Compiler = OC; }

  const MutationPlan *plan() const { return Installed; }

  /// Attaches a consistency-audit hook notified after every part I/II
  /// transition (null detaches). See runtime/AuditHook.h.
  void setAuditHook(AuditHook *H) { Audit = H; }

  /// Fault-injection switches (see MutationDebugFlags). Mutable on purpose:
  /// the fuzz harness flips them mid-run to prove the auditor catches the
  /// resulting invariant breaks.
  MutationDebugFlags &debugFlags() { return Debug; }

  // --- Algorithm part I triggers (called from the interpreter hooks) ------
  void onInstanceStateStore(Object *O, FieldInfo &F);
  void onStaticStateStore(FieldInfo &F);
  void onConstructorExit(Object *O, MethodInfo &Ctor);

  /// Online-activation support: when a plan is installed mid-run, objects
  /// constructed earlier are still on their class TIBs even if their state
  /// matches a hot state. This stop-the-world heap pass re-classes them —
  /// the online analogue of the constructor-exit action, piggybacking on
  /// the collector's object walk (the paper avoids a pointer registry
  /// because the Jikes GC moves objects; a walk at a safepoint is safe).
  /// Returns the number of objects migrated to special TIBs.
  uint64_t migrateExistingObjects(Heap &H);

  // --- Algorithm part II (RecompileListener) --------------------------------
  void onMutableMethodRecompiled(MethodInfo &M) override;

  const MutationStats &stats() const { return Stats; }

private:
  /// Index of the hot state whose *instance* part matches O's current field
  /// values, or -1.
  int matchInstanceState(const MutableClassPlan &CP, Object *O);
  /// True when the current static field values match hot state S's static
  /// part (vacuously true when the class has no static state fields).
  bool staticPartMatches(const MutableClassPlan &CP, size_t S) const;
  /// Index of some hot state whose static part matches, or -1.
  int anyStaticMatch(const MutableClassPlan &CP) const;
  /// Re-points every dispatch-structure entry for mutable method M of CP
  /// according to the current static state (the common core of part II and
  /// the static branch of part I).
  void refreshMethodPointers(const MutableClassPlan &CP, MethodInfo &M);
  void swingObjectTib(Object *O, TIB *To);
  void updateCodePointer(CompiledMethod *&SlotRef, CompiledMethod *To);
  /// Jumps still-queued compiles of CP's specials for hot state S ahead of
  /// the queue (an object is about to dispatch through them).
  void boostPendingSpecials(const MutableClassPlan &CP, size_t S);

  /// Notifies the audit hook, if any, that one transition finished.
  void noteTransition(const char *Where) {
    if (Audit)
      Audit->onMutationTransition(Where);
  }

  Program &P;
  const MutationPlan *Installed = nullptr;
  OptCompiler *Compiler = nullptr;
  AuditHook *Audit = nullptr;
  MutationDebugFlags Debug;
  MutationStats Stats;
};

} // namespace dchm

#endif // DCHM_MUTATION_MUTATIONMANAGER_H
