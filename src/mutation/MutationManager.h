//===-- mutation/MutationManager.h - Dynamic class mutation ---*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core of the paper: the runtime engine that dynamically mutates the
/// class hierarchy. Installing a MutationPlan creates one special TIB per
/// hot state of every mutable class that depends on instance state fields
/// (a replicant of the class TIB) and rewires single-method IMT slots of
/// mutable classes to TIB offsets. At runtime it executes the *distributed
/// dynamic class mutation algorithm*:
///
///  - Part I (Figure 4), triggered at state-field assignments and
///    constructor exits: re-point an object's TIB pointer to the special
///    TIB matching its instance state (or back to the class TIB), and on
///    static state-field assignments re-point the compiled-code pointers in
///    special TIBs / the class TIB / the JTOC between general and special
///    code depending on whether the static state matches a hot state.
///
///  - Part II (Figure 5), triggered when the adaptive system recompiles a
///    mutable method at a high optimization level: route the fresh special
///    compiled code into the special TIBs (or the class TIB for classes
///    that depend only on static fields, which also covers private methods;
///    or the JTOC for static methods), with general code propagated to
///    subclasses by the installer.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_MUTATION_MUTATIONMANAGER_H
#define DCHM_MUTATION_MUTATIONMANAGER_H

#include "adaptive/AdaptiveSystem.h"
#include "mutation/MutationPlan.h"
#include "runtime/AuditHook.h"
#include "runtime/Heap.h"
#include "runtime/Object.h"
#include "runtime/Program.h"

namespace dchm {

/// Mutation activity counters (Figure 12's TIB accounting comes from the
/// Program; these feed the overhead discussion).
struct MutationStats {
  uint64_t ObjectTibSwings = 0;    ///< object TIB pointer re-points
  uint64_t CodePointerUpdates = 0; ///< TIB/JTOC code pointer re-points
  uint64_t StateMatches = 0;       ///< part I checks that matched a hot state
  uint64_t StateMisses = 0;        ///< part I checks that matched nothing
  uint64_t ExtraCycles = 0;        ///< simulated cost of all of the above
  uint64_t PlanRetirements = 0;    ///< retirePlan() runs
  uint64_t StateEvictions = 0;     ///< hot states demoted to general code
};

/// Fault-injection switches for the consistency auditor's self-test: each
/// one silently skips a step of the distributed mutation algorithm,
/// breaking an invariant the auditor must then catch. Never set outside
/// tests and the fuzz harness.
struct MutationDebugFlags {
  /// Part I: skip object TIB re-points (objects keep stale TIBs while
  /// their state fields change). Dispatch stays *correct* — general code
  /// computes the same results — which is exactly why only the auditor,
  /// not a differential oracle, can catch it.
  bool SkipTibSwing = false;
  /// Part I/II: skip TIB/JTOC code-pointer re-points on static state
  /// changes and recompilations (can leave specialized code live for a
  /// state it was not compiled for — a correctness bug, not just an
  /// invariant break).
  bool SkipCodePointerUpdate = false;
  /// retirePlan(): skip the heap pass that swings objects off their special
  /// TIBs, stranding them on retired TIBs the dispatch structures no longer
  /// know about (heap.tib-foreign for the auditor to catch).
  bool SkipRetireSwing = false;
};

/// Runtime engine for dynamic class hierarchy mutation.
class MutationManager : public RecompileListener {
public:
  explicit MutationManager(Program &P) : P(P) {}

  /// Installs the plan: marks state fields and mutable methods, creates the
  /// special TIBs, and rewires mutable classes' IMT slots. Must run before
  /// execution starts (the paper feeds the plan to the JVM at startup).
  void installPlan(const MutationPlan &Plan);

  /// Stop-the-world reverse of installPlan: swings every object on a
  /// special TIB back to its class TIB, restores general code pointers in
  /// class TIBs and the JTOC, un-rewires IMT slots back to Direct entries,
  /// unmarks state fields and mutable methods, hands the special TIBs and
  /// specialized bodies to the Program's epoch-based reclamation list, and
  /// bumps the code epoch so every stale inline cache misses. After this
  /// the hierarchy is exactly as if no plan had ever been installed, and a
  /// new plan (or the same one) can be installed again. Returns the number
  /// of objects that sat on special TIBs (counted even when the
  /// SkipRetireSwing fault leaves them stranded).
  uint64_t retirePlan(Heap &H);

  // --- Code/TIB budget (graceful degradation) ------------------------------
  /// Wires in the heap so per-state eviction can swing residents off the
  /// TIB being retired (retirePlan takes the heap explicitly).
  void setHeap(Heap *H) { TheHeap = H; }
  /// Budget over specialized-code bytes + special-TIB bytes; 0 = unlimited.
  void setCodeBudget(size_t Bytes) { CodeBudgetBytes = Bytes; }
  size_t codeBudget() const { return CodeBudgetBytes; }
  /// Current specialized footprint: live special-TIB bytes plus the
  /// deterministic budget bytes of every distinct specialized body.
  size_t specialFootprintBytes() const;
  /// Evicts benefit-ranked-coldest hot states until the footprint fits the
  /// budget (no-op when unlimited). Returns the number of evictions.
  uint64_t enforceBudget();
  /// Evicts the single coldest evictable hot state (churn-triggered
  /// degradation). Returns false when nothing is evictable.
  bool evictColdestState();

  /// Wires in the compiler so part I can boost pending background compiles:
  /// when an object swings into a hot state whose specialized code is still
  /// in the pipeline, that compile jumps the queue (host-side latency only).
  void setCompiler(OptCompiler *OC) { Compiler = OC; }

  const MutationPlan *plan() const { return Installed; }

  /// Attaches a consistency-audit hook notified after every part I/II
  /// transition (null detaches). See runtime/AuditHook.h.
  void setAuditHook(AuditHook *H) { Audit = H; }

  /// Fault-injection switches (see MutationDebugFlags). Mutable on purpose:
  /// the fuzz harness flips them mid-run to prove the auditor catches the
  /// resulting invariant breaks.
  MutationDebugFlags &debugFlags() { return Debug; }

  // --- Algorithm part I triggers (called from the interpreter hooks) ------
  void onInstanceStateStore(Object *O, FieldInfo &F);
  void onStaticStateStore(FieldInfo &F);
  void onConstructorExit(Object *O, MethodInfo &Ctor);

  /// Online-activation support: when a plan is installed mid-run, objects
  /// constructed earlier are still on their class TIBs even if their state
  /// matches a hot state. This stop-the-world heap pass re-classes them —
  /// the online analogue of the constructor-exit action, piggybacking on
  /// the collector's object walk (the paper avoids a pointer registry
  /// because the Jikes GC moves objects; a walk at a safepoint is safe).
  /// Returns the number of objects migrated to special TIBs.
  uint64_t migrateExistingObjects(Heap &H);

  // --- Algorithm part II (RecompileListener) --------------------------------
  void onMutableMethodRecompiled(MethodInfo &M) override;

  /// Snapshot of the activity counters. By value: the internal counters are
  /// atomics (part I instance triggers run concurrently on every mutator
  /// thread), so callers get a plain consistent-enough copy. Exact totals
  /// at N=1 or with the world stopped.
  MutationStats stats() const {
    MutationStats S;
    S.ObjectTibSwings = Stats.ObjectTibSwings.load(std::memory_order_relaxed);
    S.CodePointerUpdates =
        Stats.CodePointerUpdates.load(std::memory_order_relaxed);
    S.StateMatches = Stats.StateMatches.load(std::memory_order_relaxed);
    S.StateMisses = Stats.StateMisses.load(std::memory_order_relaxed);
    S.ExtraCycles = Stats.ExtraCycles.load(std::memory_order_relaxed);
    S.PlanRetirements = Stats.PlanRetirements.load(std::memory_order_relaxed);
    S.StateEvictions = Stats.StateEvictions.load(std::memory_order_relaxed);
    return S;
  }

private:
  /// Index of the hot state whose *instance* part matches O's current field
  /// values, or -1.
  int matchInstanceState(const MutableClassPlan &CP, Object *O);
  /// True when the current static field values match hot state S's static
  /// part (vacuously true when the class has no static state fields).
  bool staticPartMatches(const MutableClassPlan &CP, size_t S) const;
  /// Index of some hot state whose static part matches, or -1.
  int anyStaticMatch(const MutableClassPlan &CP) const;
  /// Re-points every dispatch-structure entry for mutable method M of CP
  /// according to the current static state (the common core of part II and
  /// the static branch of part I).
  void refreshMethodPointers(const MutableClassPlan &CP, MethodInfo &M);
  void swingObjectTib(Object *O, TIB *To);
  void updateCodePointer(CompiledMethod *&SlotRef, CompiledMethod *To);
  /// Demotes hot state S of plan entry Idx to general code: swings its
  /// residents to the class TIB, retires its special TIB (slot goes null;
  /// vector size is preserved so state indices stay stable) and its
  /// no-longer-referenced specialized bodies, and re-routes method pointers.
  bool evictState(size_t Idx, size_t S);
  /// Jumps still-queued compiles of CP's specials for hot state S ahead of
  /// the queue (an object is about to dispatch through them).
  void boostPendingSpecials(const MutableClassPlan &CP, size_t S);

  /// Notifies the audit hook, if any, that one transition finished.
  void noteTransition(const char *Where) {
    if (Audit)
      Audit->onMutationTransition(Where);
  }

  /// MutationStats with atomic fields: the instance-state half of part I
  /// runs concurrently on every mutator thread (it touches only the
  /// receiver object plus these counters), while everything that writes a
  /// shared dispatch structure runs under a rendezvous.
  struct AtomicMutationStats {
    std::atomic<uint64_t> ObjectTibSwings{0};
    std::atomic<uint64_t> CodePointerUpdates{0};
    std::atomic<uint64_t> StateMatches{0};
    std::atomic<uint64_t> StateMisses{0};
    std::atomic<uint64_t> ExtraCycles{0};
    std::atomic<uint64_t> PlanRetirements{0};
    std::atomic<uint64_t> StateEvictions{0};
  };

  Program &P;
  const MutationPlan *Installed = nullptr;
  OptCompiler *Compiler = nullptr;
  Heap *TheHeap = nullptr;
  AuditHook *Audit = nullptr;
  MutationDebugFlags Debug;
  AtomicMutationStats Stats;
  size_t CodeBudgetBytes = 0; ///< 0 = unlimited
  /// Benefit signal for eviction ranking: per (plan entry, hot state)
  /// count of part I swings *into* the state. Simulated-deterministic at
  /// N=1; atomic because concurrent mutators bump it in part I.
  std::vector<std::vector<std::atomic<uint64_t>>> SwingIns;
};

} // namespace dchm

#endif // DCHM_MUTATION_MUTATIONMANAGER_H
