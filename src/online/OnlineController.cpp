//===-- online/OnlineController.cpp - Fully-online mutation --------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "online/OnlineController.h"

#include "support/Debug.h"

#include <unordered_set>

namespace dchm {

OnlineMutationController::OnlineMutationController(VirtualMachine &VM,
                                                   Config Cfg)
    : VM(VM), Cfg(Cfg) {
  DCHM_CHECK(VM.options().EnableMutation,
             "online controller needs a mutation-enabled VM");
  // Phase 1 begins immediately: per-method cycle attribution on.
  VM.interp().setProfiling(true);
  PhaseStartCycles = VM.totalCycles();
}

void OnlineMutationController::poll() {
  switch (CurPhase) {
  case Phase::HotProfiling:
    if (VM.totalCycles() - PhaseStartCycles >= Cfg.HotProfileCycles)
      finishHotProfiling();
    break;
  case Phase::ValueProfiling:
    if (VM.totalCycles() - PhaseStartCycles >= Cfg.ValueProfileCycles)
      activate();
    break;
  case Phase::Active:
  case Phase::Degrading:
    pollDegradation();
    break;
  case Phase::Inert:
    break;
  }
}

void OnlineMutationController::pollDegradation() {
  MutationManager &MM = VM.mutation();
  if (!MM.plan()) { // retired out from under us: nothing left to degrade
    CurPhase = Phase::Inert;
    return;
  }
  uint64_t Now = VM.totalCycles();
  if (Now - LastDegradeCheck < Cfg.DegradeCheckCycles)
    return;
  uint64_t WindowTotal = Now - LastDegradeCheck;
  uint64_t Mut = MM.stats().ExtraCycles;
  uint64_t WindowMut = Mut - LastMutationCycles;
  LastDegradeCheck = Now;
  LastMutationCycles = Mut;

  bool Degraded = false;
  // Pressure: specialized footprint over the configured code/TIB budget.
  // (The part II hooks also enforce this synchronously; the poll catches
  // budgets tightened after install and swing-driven footprint growth.)
  if (MM.codeBudget() && MM.specialFootprintBytes() > MM.codeBudget())
    Degraded = MM.enforceBudget() > 0;
  // Churn: mutation bookkeeping dominating the window means objects are
  // thrashing between states; demote the coldest state to stem the swings.
  if (WindowTotal > 0 &&
      static_cast<double>(WindowMut) >
          Cfg.ChurnFraction * static_cast<double>(WindowTotal))
    Degraded = MM.evictColdestState() || Degraded;
  CurPhase = Degraded ? Phase::Degrading : Phase::Active;
}

void OnlineMutationController::finishHotProfiling() {
  Program &P = VM.program();
  Profile = HotMethodProfile::fromInterpreter(VM.interp(), P);
  // Turn the (modeled-free, really-cheap) cycle attribution off; the value
  // profiler uses the state-store hooks instead.
  VM.interp().setProfiling(false);

  // Lightweight static analysis over the bytecode (EQ 1). Bytecode is
  // retained by every MethodInfo, so this works as well online as offline.
  Candidates = analyzeStateFields(P, Profile, Cfg.Analysis.StateFields);
  if (Candidates.empty()) {
    CurPhase = Phase::Inert; // nothing worth mutating; stand down
    return;
  }

  // Mark candidate fields and start sampling their joint values through
  // the same interpreter hooks algorithm part I will use later.
  VP = std::make_unique<ValueProfiler>(P, Candidates,
                                       Cfg.Analysis.MaxFieldsPerClass);
  VP->prepare();
  VM.setStateObserver(VP.get());
  CurPhase = Phase::ValueProfiling;
  PhaseStartCycles = VM.totalCycles();
}

void OnlineMutationController::activate() {
  Program &P = VM.program();
  VM.setStateObserver(nullptr);
  // Heap census: objects whose state was set before the value-profiling
  // window opened (e.g. a database populated at startup) would otherwise
  // be invisible to store sampling.
  VP->censusHeap(VM.heap());
  auto Mined = VP->mine(Cfg.Analysis.HotStateMinFraction,
                        Cfg.Analysis.MaxHotStates);
  Plan = assembleMutationPlan(P, Profile, Mined, Cfg.Analysis);

  // Candidate fields that did not make the plan keep no patch code: clear
  // their state-field marks (installPlan re-marks the plan's fields). One
  // set of every planned field keeps this linear in plans + candidates.
  std::unordered_set<FieldId> Planned;
  for (const MutableClassPlan &CP : Plan.Classes) {
    Planned.insert(CP.InstanceStateFields.begin(),
                   CP.InstanceStateFields.end());
    Planned.insert(CP.StaticStateFields.begin(), CP.StaticStateFields.end());
  }
  for (const ClassStateFields &CSF : Candidates)
    for (const StateFieldCandidate &Cand : CSF.Candidates)
      if (!Planned.count(Cand.Field))
        P.field(Cand.Field).IsStateField = false;

  if (Plan.empty()) {
    CurPhase = Phase::Inert;
    return;
  }
  if (Cfg.DeriveOlc) {
    Olc = analyzeObjectLifetimeConstants(P, Plan);
    VM.setOlcDatabase(&Olc);
  }
  // Mid-run installation: creates the special TIBs, marks mutable methods,
  // rewires IMT slots, migrates objects constructed before activation onto
  // the special TIBs matching their current state, and recompiles
  // already-hot mutable methods so their specialized versions exist
  // (VirtualMachine::setMutationPlan handles all of it stop-the-world).
  VM.setMutationPlan(&Plan);
  // Mid-run activation is the hardest case for the interpreter's inline
  // caches: every warm call site predates the special TIBs. installPlan and
  // the recompilation refresh above already bumped the code epoch; this
  // final bump pins the invariant even if the plan rewired nothing (e.g. a
  // plan with no mutable IMT slots and no already-hot methods).
  P.bumpCodeEpoch();
  ActivationCycle = VM.totalCycles();
  LastDegradeCheck = ActivationCycle;
  LastMutationCycles = VM.mutation().stats().ExtraCycles;
  CurPhase = Phase::Active;
}

} // namespace dchm
