//===-- online/OnlineController.h - Fully-online mutation -----*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future-work direction, implemented (section 9): "we will try
/// to move our offline profiling and static analysis to a JVM ... this will
/// require the development of efficient profiling schemes and light weight
/// static analysis algorithms."
///
/// OnlineMutationController runs the whole Figure 3 pipeline *inside* a
/// single VM run, in phases driven by the application's own execution:
///
///   HotProfiling     — the interpreter attributes cycles per method (the
///                      in-VM replacement for VTune) for a warm-up window.
///   ValueProfiling   — EQ 1 runs over the bytecode, candidate fields are
///                      marked, and the value profiler samples their joint
///                      values through the regular state-store hooks.
///   Active           — hot states are mined, the plan is assembled and
///                      installed mid-run: special TIBs appear, mutable
///                      methods that are already at opt2 are recompiled to
///                      generate their specialized versions, the OLC
///                      database is computed, and execution continues with
///                      the dynamically mutated hierarchy. Objects migrate
///                      to special TIBs at their next state-field store or
///                      construction.
///
/// The driver calls poll() at convenient boundaries (e.g., between
/// transaction batches); phase transitions happen there, so no extra thread
/// is needed — mirroring how Jikes' adaptive system piggybacks on yield
/// points.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_ONLINE_ONLINECONTROLLER_H
#define DCHM_ONLINE_ONLINECONTROLLER_H

#include "analysis/OfflinePipeline.h"
#include "analysis/OlcAnalysis.h"
#include "core/VM.h"

#include <memory>

namespace dchm {

/// Drives the in-VM (online) version of the Figure 3 pipeline.
class OnlineMutationController {
public:
  struct Config {
    /// Simulated cycles of hot-method profiling before the static analysis.
    uint64_t HotProfileCycles = 2'000'000;
    /// Simulated cycles of joint-value profiling before plan assembly.
    uint64_t ValueProfileCycles = 2'000'000;
    /// Analysis thresholds (shared with the offline pipeline).
    OfflineConfig Analysis;
    /// Also run the OLC analysis at activation (enables specialization
    /// inlining for methods compiled after that point).
    bool DeriveOlc = true;
    /// Simulated cycles between graceful-degradation checks once Active.
    uint64_t DegradeCheckCycles = 500'000;
    /// Degrade when mutation bookkeeping exceeds this fraction of the
    /// simulated cycles spent in the check window (state churn: the plan's
    /// hot states no longer match the program's behavior).
    double ChurnFraction = 0.25;
  };

  /// Degrading is Active under pressure: the code/TIB budget was exceeded
  /// or mutation churn dominated the last window, and the coldest hot
  /// states are being demoted to general code. The controller returns to
  /// Active when a check window passes without an eviction.
  enum class Phase { HotProfiling, ValueProfiling, Active, Degrading, Inert };

  /// The controller must outlive the VM's use of the derived plan.
  OnlineMutationController(VirtualMachine &VM, Config Cfg);

  /// Advances the phase machine; call between units of application work.
  /// Cheap when no phase boundary has been reached.
  void poll();

  Phase phase() const { return CurPhase; }
  /// The derived plan (empty until Active).
  const MutationPlan &plan() const { return Plan; }
  const OlcDatabase &olc() const { return Olc; }
  /// Cycle stamp at which mutation went live (0 until Active).
  uint64_t activationCycle() const { return ActivationCycle; }

private:
  void finishHotProfiling();
  void activate();
  void pollDegradation();

  VirtualMachine &VM;
  Config Cfg;
  Phase CurPhase = Phase::HotProfiling;
  uint64_t PhaseStartCycles = 0;
  HotMethodProfile Profile;
  std::vector<ClassStateFields> Candidates;
  std::unique_ptr<ValueProfiler> VP;
  MutationPlan Plan;
  OlcDatabase Olc;
  uint64_t ActivationCycle = 0;
  uint64_t LastDegradeCheck = 0;
  uint64_t LastMutationCycles = 0;
};

} // namespace dchm

#endif // DCHM_ONLINE_ONLINECONTROLLER_H
