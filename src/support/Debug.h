//===-- support/Debug.h - Assertions and unreachable markers --*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion helpers used throughout the library. The library is built
/// without exceptions (LLVM style); fatal conditions abort with a message.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_SUPPORT_DEBUG_H
#define DCHM_SUPPORT_DEBUG_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dchm {

/// Print a fatal error message and abort. Used for conditions that indicate
/// a bug in the library or an ill-formed program handed to the VM.
[[noreturn]] inline void reportFatalError(const char *Msg, const char *File,
                                          int Line) {
  std::fprintf(stderr, "dchm fatal error: %s (%s:%d)\n", Msg, File, Line);
  std::abort();
}

/// Formatted variant for runtime conditions whose diagnosis needs dynamic
/// context (method names, depths, indices). Still aborts: the library is
/// exception-free, but the message must let the user identify the culprit.
#if defined(__GNUC__) || defined(__clang__)
[[noreturn]] inline void reportFatalErrorf(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));
#endif

[[noreturn]] inline void reportFatalErrorf(const char *Fmt, ...) {
  std::va_list Args;
  va_start(Args, Fmt);
  std::fputs("dchm fatal error: ", stderr);
  std::vfprintf(stderr, Fmt, Args);
  std::fputc('\n', stderr);
  va_end(Args);
  std::abort();
}

} // namespace dchm

/// Marks a point that must never be executed (LLVM's llvm_unreachable).
#define DCHM_UNREACHABLE(Msg)                                                  \
  ::dchm::reportFatalError("unreachable: " Msg, __FILE__, __LINE__)

/// Assertion that stays enabled in all build types: the VM validates the
/// programs users construct, so these are semantic checks, not debug-only.
#define DCHM_CHECK(Cond, Msg)                                                  \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::dchm::reportFatalError(Msg, __FILE__, __LINE__);                       \
  } while (false)

#endif // DCHM_SUPPORT_DEBUG_H
