//===-- support/Error.h - Recoverable error channel -----------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recoverable error channel for input-validation and resource paths
/// (LLVM's Error/Expected, without the checked-discard machinery). The
/// library is exception-free; conditions a caller can reasonably handle —
/// ill-formed .mvm input, link failures, heap/code budget exhaustion —
/// travel through VMError/Expected<T> instead of aborting the process.
/// DCHM_CHECK (support/Debug.h) remains strictly for internal invariants
/// whose violation means a bug in the library itself.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_SUPPORT_ERROR_H
#define DCHM_SUPPORT_ERROR_H

#include "support/Debug.h"

#include <string>
#include <utility>

namespace dchm {

/// A recoverable error: either success or a diagnostic message. Follows the
/// LLVM convention that conversion to bool yields *true when an error is
/// present* ("if (VMError E = f()) handle(E);").
class VMError {
public:
  VMError() = default;

  static VMError success() { return VMError(); }
  static VMError error(std::string Msg) {
    VMError E;
    E.Failed = true;
    E.Msg = std::move(Msg);
    return E;
  }

  explicit operator bool() const { return Failed; }
  const std::string &message() const { return Msg; }

private:
  bool Failed = false;
  std::string Msg;
};

/// Either a value of type T or a VMError. Checking for the error state
/// before dereferencing is on the caller (the value accessors DCHM_CHECK).
template <typename T> class Expected {
public:
  Expected(T V) : Val(std::move(V)) {}
  Expected(VMError E) : Err(std::move(E)), HasVal(false) {
    DCHM_CHECK(static_cast<bool>(Err),
               "Expected<T> constructed from a success VMError");
  }

  /// True when a value is present (note: opposite polarity to VMError).
  explicit operator bool() const { return HasVal; }

  T &get() {
    DCHM_CHECK(HasVal, "Expected<T>::get() on an error value");
    return Val;
  }
  const T &get() const {
    DCHM_CHECK(HasVal, "Expected<T>::get() on an error value");
    return Val;
  }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }

  const VMError &takeError() const {
    DCHM_CHECK(!HasVal, "Expected<T>::takeError() on a success value");
    return Err;
  }

private:
  T Val{};
  VMError Err;
  bool HasVal = true;
};

} // namespace dchm

#endif // DCHM_SUPPORT_ERROR_H
