//===-- support/Timer.h - Wall-clock timing -------------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock timer. The primary performance metric in this repo is
/// the deterministic simulated cycle count; wall time is reported alongside
/// it as a secondary sanity check.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_SUPPORT_TIMER_H
#define DCHM_SUPPORT_TIMER_H

#include <chrono>

namespace dchm {

/// Wall-clock stopwatch started at construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Restart the stopwatch.
  void reset() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace dchm

#endif // DCHM_SUPPORT_TIMER_H
