//===-- support/Random.h - Deterministic PRNG -----------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic xorshift128+ generator. Workload generators and
/// property tests need run-to-run reproducible randomness; std::mt19937 is
/// avoided so seeds produce identical streams across platforms and stdlibs.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_SUPPORT_RANDOM_H
#define DCHM_SUPPORT_RANDOM_H

#include <cstdint>

namespace dchm {

/// Deterministic xorshift128+ pseudo-random generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding to decorrelate nearby seeds.
    auto Next = [&Seed]() {
      Seed += 0x9E3779B97F4A7C15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
      Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
      return Z ^ (Z >> 31);
    };
    S0 = Next();
    S1 = Next();
    if (S0 == 0 && S1 == 0)
      S1 = 1;
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t X = S0;
    const uint64_t Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Uniform value in [0, Bound). Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(nextBelow(
                    static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t S0, S1;
};

} // namespace dchm

#endif // DCHM_SUPPORT_RANDOM_H
