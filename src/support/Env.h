//===-- support/Env.h - DCHM_* environment knob registry ----------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
//
// Every host-side environment knob the runtime reads lives in one table here,
// with a shared parser, so adding a knob means adding a row instead of another
// copy-pasted std::getenv block. `dchm_run --print-env` renders the table.
//
//===----------------------------------------------------------------------===//

#ifndef DCHM_SUPPORT_ENV_H
#define DCHM_SUPPORT_ENV_H

#include <cstdlib>
#include <cstring>
#include <string>

namespace dchm {
namespace env {

enum class KnobType { Bool, Int };

/// One DCHM_* environment variable: name, shape, default (as the string the
/// --print-env listing shows), legal integer range, and a one-line doc.
struct Knob {
  const char *Name;
  KnobType Ty;
  const char *Default;
  long long Min; ///< Int knobs: values outside [Min, Max] are ignored
  long long Max;
  const char *Doc;
};

/// The registry. Order is the --print-env display order.
inline constexpr Knob Knobs[] = {
    {"DCHM_THREADS", KnobType::Int, "1", 1, 64,
     "number of mutator (application) threads the VM runs"},
    {"DCHM_AUDIT", KnobType::Bool, "off", 0, 0,
     "run the consistency auditor at safepoints and transitions"},
    {"DCHM_ASYNC_COMPILE", KnobType::Bool, "on", 0, 0,
     "compile on background threads instead of synchronously"},
    {"DCHM_COMPILE_THREADS", KnobType::Int, "2", 1, 64,
     "background compiler worker thread count"},
    {"DCHM_SPEC_CACHE", KnobType::Bool, "on", 0, 0,
     "content-keyed specialization cache for special-version compiles"},
    {"DCHM_CODE_BUDGET", KnobType::Int, "0", 1, (1ll << 62),
     "code/TIB byte budget for graceful degradation (0 = unlimited)"},
    {"DCHM_COMPILE_FAULT_EVERY", KnobType::Int, "0", 0, (1ll << 62),
     "inject a compile fault every N jobs (0 = never; testing only)"},
    {"DCHM_COMPILE_FAULT_PERSIST", KnobType::Bool, "off", 0, 0,
     "injected compile faults persist across retry attempts"},
    {"DCHM_COMPILE_MAX_ATTEMPTS", KnobType::Int, "3", 1, 100,
     "compile attempts before a method is quarantined"},
    {"DCHM_COMPILE_DEADLINE_MS", KnobType::Int, "0", 0, (1ll << 62),
     "per-job compile deadline in milliseconds (0 = none)"},
};

inline constexpr size_t NumKnobs = sizeof(Knobs) / sizeof(Knobs[0]);

/// Shared OFF spelling: "OFF", "off", "0" and "false" are false, anything
/// else set is true (the historical resolveToggle semantics).
inline bool parseBool(const char *E) {
  return !(std::strcmp(E, "OFF") == 0 || std::strcmp(E, "off") == 0 ||
           std::strcmp(E, "0") == 0 || std::strcmp(E, "false") == 0);
}

inline const Knob *find(const char *Name) {
  for (const Knob &K : Knobs)
    if (std::strcmp(K.Name, Name) == 0)
      return &K;
  return nullptr;
}

/// Reads a Bool knob, falling back to Default when unset.
inline bool boolOr(const char *Name, bool Default) {
  if (const char *E = std::getenv(Name))
    return parseBool(E);
  return Default;
}

/// Reads an Int knob; a value outside the registered [Min, Max] range is
/// ignored (the default survives), matching the historical per-site parses.
inline long long intOr(const char *Name, long long Default) {
  const Knob *K = find(Name);
  if (const char *E = std::getenv(Name)) {
    long long N = std::strtoll(E, nullptr, 10);
    if (!K || (N >= K->Min && N <= K->Max))
      return N;
  }
  return Default;
}

/// Renders the registry (one knob per line) for `dchm_run --print-env`.
/// Set values are annotated with their current environment override.
inline std::string printTable() {
  std::string Out;
  for (const Knob &K : Knobs) {
    std::string Line = "  ";
    Line += K.Name;
    while (Line.size() < 30)
      Line += ' ';
    Line += (K.Ty == KnobType::Bool) ? "bool " : "int  ";
    Line += "default=";
    Line += K.Default;
    const char *E = std::getenv(K.Name);
    if (E) {
      Line += "  [set: ";
      Line += E;
      Line += "]";
    }
    Line += "\n      ";
    Line += K.Doc;
    Line += "\n";
    Out += Line;
  }
  return Out;
}

} // namespace env
} // namespace dchm

#endif // DCHM_SUPPORT_ENV_H
