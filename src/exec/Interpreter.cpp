//===-- exec/Interpreter.cpp - Costed IR interpreter --------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"

#include "compiler/Eval.h"
#include "runtime/CostModel.h"
#include "support/Debug.h"

#include <cstdio>

namespace dchm {

Interpreter::Interpreter(Program &P, Heap &H, VMCallbacks &CB)
    : P(P), H(H), CB(CB) {
  Frames.resize(MaxFrames);
}

void Interpreter::setProfiling(bool On) {
  Profiling = On;
  if (On) {
    MethodCycles.assign(P.numMethods(), 0);
    MethodInvocations.assign(P.numMethods(), 0);
  }
}

void Interpreter::clearOutput() {
  Output.clear();
  OutHash = 1469598103934665603ull;
}

void Interpreter::appendOutput(const char *S, size_t Len) {
  Output.append(S, Len);
  for (size_t I = 0; I < Len; ++I) {
    OutHash ^= static_cast<unsigned char>(S[I]);
    OutHash *= 1099511628211ull;
  }
}

void Interpreter::printValue(const Instruction &I, Value V) {
  char Buf[64];
  int Len;
  if (I.Aux == 1) {
    Buf[0] = static_cast<char>(V.I);
    Len = 1;
  } else if (I.Ty == Type::F64) {
    Len = std::snprintf(Buf, sizeof(Buf), "%.6g", V.F);
  } else {
    Len = std::snprintf(Buf, sizeof(Buf), "%lld",
                        static_cast<long long>(V.I));
  }
  appendOutput(Buf, static_cast<size_t>(Len));
}

void Interpreter::enumerateRoots(std::vector<Object *> &Roots) {
  for (size_t D = 0; D < Depth; ++D) {
    const Frame &F = Frames[D];
    if (!F.Fn)
      continue;
    const auto &Types = F.Fn->RegTypes;
    for (size_t R = 0; R < Types.size(); ++R)
      if (Types[R] == Type::Ref && F.Regs[R].R)
        Roots.push_back(F.Regs[R].R);
  }
}

CompiledMethod *Interpreter::resolveInterface(TIB *T, MethodId IfaceMethod) {
  DCHM_CHECK(T->Imt, "interface call on class with no IMT");
  const ImtEntry &E = T->Imt->Slots[IfaceMethod % NumImtSlots];
  switch (E.K) {
  case ImtEntry::Kind::Direct: {
    if (E.DirectCode)
      return E.DirectCode;
    MethodInfo &Impl = P.method(E.DirectImpl);
    CB.ensureCompiled(Impl);
    return E.DirectCode ? E.DirectCode : T->Slots[Impl.VSlot];
  }
  case ImtEntry::Kind::TibOffset:
    return resolveAndEnsure(T, E.VSlot);
  case ImtEntry::Kind::Conflict:
    for (const auto &[IfaceM, Slot] : E.Table)
      if (IfaceM == IfaceMethod)
        return resolveAndEnsure(T, Slot);
    DCHM_UNREACHABLE("conflict stub: method not found");
  case ImtEntry::Kind::Empty:
    break;
  }
  DCHM_UNREACHABLE("interface dispatch through empty IMT slot");
}

CompiledMethod *Interpreter::resolveAndEnsure(TIB *T, uint32_t Slot) {
  CompiledMethod *CM = T->Slots[Slot];
  if (CM)
    return CM;
  // Lazy compilation: resolve the method occupying this slot for the
  // receiver's class and ask the broker; installation fills the TIBs.
  MethodInfo &Resolved = P.method(T->Cls->VTable[Slot]);
  CB.ensureCompiled(Resolved);
  CM = T->Slots[Slot];
  DCHM_CHECK(CM, "compile broker did not install code");
  return CM;
}

Value Interpreter::invoke(MethodId Mid, const std::vector<Value> &Args) {
  MethodInfo &M = P.method(Mid);
  DCHM_CHECK(Args.size() == M.numArgsWithReceiver(), "invoke arg count");
  CompiledMethod *CM;
  if (M.Flags.IsStatic) {
    CM = P.staticEntry(Mid);
    if (!CM)
      CM = CB.ensureCompiled(M);
  } else {
    Object *Recv = Args[0].R;
    DCHM_CHECK(Recv && Recv->Tib, "invoke on null/invalid receiver");
    if (P.cls(M.Owner).IsInterface) {
      CM = resolveInterface(Recv->Tib, M.Id);
    } else if (M.isVirtualDispatch()) {
      CM = resolveAndEnsure(Recv->Tib, M.VSlot);
    } else {
      TIB *DeclTib = P.cls(M.Owner).ClassTib;
      CM = DeclTib->Slots[M.VSlot];
      if (!CM) {
        CB.ensureCompiled(M);
        CM = DeclTib->Slots[M.VSlot];
      }
    }
  }
  Value Result = execute(CM, Args.data(), Args.size());
  if (M.Flags.IsCtor && !Args.empty())
    CB.onConstructorExit(Args[0].R, M);
  return Result;
}

Value Interpreter::execute(CompiledMethod *CM, const Value *Args,
                           size_t NumArgs) {
  DCHM_CHECK(Depth < MaxFrames, "VM stack overflow");
  Frame &F = Frames[Depth++];
  const IRFunction &Fn = CM->code();
  MethodInfo &M = CM->method();
  F.Fn = &Fn;
  F.Regs.assign(Fn.RegTypes.size(), zeroValue());
  DCHM_CHECK(NumArgs == Fn.NumArgs, "execute arg count mismatch");
  for (size_t I = 0; I < NumArgs; ++I)
    F.Regs[I] = Args[I];

  Stats.Invocations++;
  CB.onMethodEntry(M);
  if (Profiling)
    MethodInvocations[M.Id]++;

  uint64_t C = 0; // local cycle accumulator, flushed on return
  Value Ret = zeroValue();
  size_t PC = 0;
  const size_t N = Fn.Insts.size();

  auto ArgBufCall = [&](const Instruction &I, CompiledMethod *Target) {
    Value Buf[MaxArgs];
    DCHM_CHECK(I.Args.size() <= MaxArgs, "too many call arguments");
    for (size_t A = 0; A < I.Args.size(); ++A)
      Buf[A] = F.Regs[I.Args[A]];
    Value R = execute(Target, Buf, I.Args.size());
    // "At the end of the constructors for a mutable class" (Figure 4): the
    // ctor-exit trigger of the distributed mutation algorithm.
    if (Target->method().Flags.IsCtor)
      CB.onConstructorExit(Buf[0].R, Target->method());
    return R;
  };

  while (true) {
    DCHM_CHECK(PC < N, "PC out of range");
    const Instruction &I = Fn.Insts[PC];
    Stats.Insts++;
    C += opcodeCycles(I.Op);

    switch (I.Op) {
    case Opcode::ConstI:
      F.Regs[I.Dst] = valueI(I.Imm);
      break;
    case Opcode::ConstF:
      F.Regs[I.Dst] = valueF(I.FImm);
      break;
    case Opcode::ConstNull:
      F.Regs[I.Dst] = valueR(nullptr);
      break;
    case Opcode::Move:
      F.Regs[I.Dst] = F.Regs[I.A];
      break;

    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::CmpEQ:
    case Opcode::CmpNE:
    case Opcode::CmpLT:
    case Opcode::CmpLE:
    case Opcode::CmpGT:
    case Opcode::CmpGE:
    case Opcode::FCmpEQ:
    case Opcode::FCmpLT:
    case Opcode::FCmpLE:
      F.Regs[I.Dst] = evalBinop(I.Op, F.Regs[I.A], F.Regs[I.B]);
      break;

    case Opcode::Neg:
    case Opcode::FNeg:
    case Opcode::I2F:
    case Opcode::F2I:
      F.Regs[I.Dst] = evalUnop(I.Op, F.Regs[I.A]);
      break;

    case Opcode::Br:
      if (static_cast<size_t>(I.Imm) <= PC)
        CB.onBackedge(M);
      PC = static_cast<size_t>(I.Imm);
      continue;
    case Opcode::Cbnz:
      if (F.Regs[I.A].I != 0) {
        if (static_cast<size_t>(I.Imm) <= PC)
          CB.onBackedge(M);
        PC = static_cast<size_t>(I.Imm);
        continue;
      }
      break;
    case Opcode::Cbz:
      if (F.Regs[I.A].I == 0) {
        if (static_cast<size_t>(I.Imm) <= PC)
          CB.onBackedge(M);
        PC = static_cast<size_t>(I.Imm);
        continue;
      }
      break;
    case Opcode::Ret:
      if (I.A != NoReg)
        Ret = F.Regs[I.A];
      goto done;

    case Opcode::New: {
      ClassInfo &Cls = P.cls(static_cast<ClassId>(I.Imm));
      F.Regs[I.Dst] = valueR(H.allocateInstance(Cls, Cls.ClassTib));
      break;
    }
    case Opcode::NewArray:
      F.Regs[I.Dst] = valueR(H.allocateArray(I.Ty, F.Regs[I.A].I));
      break;
    case Opcode::ALoad: {
      Object *Arr = F.Regs[I.A].R;
      DCHM_CHECK(Arr && Arr->IsArray, "aload on non-array");
      int64_t Idx = F.Regs[I.B].I;
      DCHM_CHECK(Idx >= 0 && Idx < Arr->NumSlots, "array index out of bounds");
      F.Regs[I.Dst] = Arr->get(static_cast<uint32_t>(Idx));
      break;
    }
    case Opcode::AStore: {
      Object *Arr = F.Regs[I.A].R;
      DCHM_CHECK(Arr && Arr->IsArray, "astore on non-array");
      int64_t Idx = F.Regs[I.B].I;
      DCHM_CHECK(Idx >= 0 && Idx < Arr->NumSlots, "array index out of bounds");
      Arr->set(static_cast<uint32_t>(Idx), F.Regs[I.C]);
      break;
    }
    case Opcode::ALen: {
      Object *Arr = F.Regs[I.A].R;
      DCHM_CHECK(Arr && Arr->IsArray, "alen on non-array");
      F.Regs[I.Dst] = valueI(Arr->NumSlots);
      break;
    }

    case Opcode::GetField: {
      Object *O = F.Regs[I.A].R;
      DCHM_CHECK(O, "null pointer in getfield");
      F.Regs[I.Dst] = O->get(I.Aux);
      break;
    }
    case Opcode::PutField: {
      Object *O = F.Regs[I.A].R;
      DCHM_CHECK(O, "null pointer in putfield");
      O->set(I.Aux, F.Regs[I.B]);
      FieldInfo &Fld = P.field(static_cast<FieldId>(I.Imm));
      if (Fld.IsStateField) {
        // Patch code inserted at state-field assignments (algorithm part I).
        // Stores a constructor makes to its own object are deferred to the
        // constructor-exit action (Figure 4 patches "assignments in a
        // non-constructor method" plus the end of constructors).
        bool DuringCtor = M.Flags.IsCtor && O == F.Regs[0].R;
        if (!DuringCtor) {
          C += DispatchCost::StateFieldPatchBase;
          Stats.StatePatchHits++;
        }
        CB.onInstanceStateStore(O, Fld, DuringCtor);
      }
      break;
    }
    case Opcode::GetStatic:
      F.Regs[I.Dst] = P.getStaticSlot(I.Aux);
      break;
    case Opcode::PutStatic: {
      P.setStaticSlot(I.Aux, F.Regs[I.A]);
      FieldInfo &Fld = P.field(static_cast<FieldId>(I.Imm));
      if (Fld.IsStateField) {
        C += DispatchCost::StateFieldPatchBase;
        Stats.StatePatchHits++;
        CB.onStaticStateStore(Fld);
      }
      break;
    }

    case Opcode::CallStatic: {
      C += DispatchCost::StaticCall;
      MethodInfo &Callee = P.method(static_cast<MethodId>(I.Imm));
      CompiledMethod *Target = P.staticEntry(Callee.Id);
      if (!Target)
        Target = CB.ensureCompiled(Callee);
      Value R = ArgBufCall(I, Target);
      if (I.Dst != NoReg)
        F.Regs[I.Dst] = R;
      break;
    }
    case Opcode::CallVirtual: {
      C += DispatchCost::VirtualCall;
      Stats.VirtualCalls++;
      Object *Recv = F.Regs[I.Args[0]].R;
      DCHM_CHECK(Recv && Recv->Tib, "null receiver in callvirtual");
      CompiledMethod *Target = resolveAndEnsure(Recv->Tib, I.Aux);
      Value R = ArgBufCall(I, Target);
      if (I.Dst != NoReg)
        F.Regs[I.Dst] = R;
      break;
    }
    case Opcode::CallSpecial: {
      // Static binding through the *declaring class* TIB (invokespecial):
      // object state never affects this dispatch, but a static-only mutable
      // class may have specialized its class TIB entry itself.
      C += DispatchCost::SpecialCall;
      MethodInfo &Callee = P.method(static_cast<MethodId>(I.Imm));
      DCHM_CHECK(F.Regs[I.Args[0]].R, "null receiver in callspecial");
      TIB *DeclTib = P.cls(Callee.Owner).ClassTib;
      CompiledMethod *Target = DeclTib->Slots[I.Aux];
      if (!Target) {
        CB.ensureCompiled(Callee);
        Target = DeclTib->Slots[I.Aux];
        DCHM_CHECK(Target, "compile broker did not install code");
      }
      Value R = ArgBufCall(I, Target);
      if (I.Dst != NoReg)
        F.Regs[I.Dst] = R;
      break;
    }
    case Opcode::CallInterface: {
      C += DispatchCost::InterfaceCall;
      Stats.InterfaceCalls++;
      Object *Recv = F.Regs[I.Args[0]].R;
      DCHM_CHECK(Recv && Recv->Tib, "null receiver in callinterface");
      TIB *T = Recv->Tib;
      DCHM_CHECK(T->Imt, "interface call on class with no IMT");
      const ImtEntry &E = T->Imt->Slots[I.Aux];
      CompiledMethod *Target = nullptr;
      switch (E.K) {
      case ImtEntry::Kind::Direct:
        Target = E.DirectCode;
        if (!Target) {
          CB.ensureCompiled(P.method(E.DirectImpl));
          Target = E.DirectCode ? E.DirectCode
                                : T->Slots[P.method(E.DirectImpl).VSlot];
        }
        break;
      case ImtEntry::Kind::TibOffset:
        // Mutable-class slot: one extra load through the current TIB so the
        // dispatch honors the object's (special) TIB.
        C += DispatchCost::ImtMutableExtraLoad;
        Target = resolveAndEnsure(T, E.VSlot);
        break;
      case ImtEntry::Kind::Conflict: {
        C += DispatchCost::ImtConflictStub;
        uint32_t VSlot = UINT32_MAX;
        for (const auto &[IfaceM, Slot] : E.Table) {
          if (IfaceM == static_cast<MethodId>(I.Imm)) {
            VSlot = Slot;
            break;
          }
        }
        DCHM_CHECK(VSlot != UINT32_MAX, "conflict stub: method not found");
        Target = resolveAndEnsure(T, VSlot);
        break;
      }
      case ImtEntry::Kind::Empty:
        DCHM_UNREACHABLE("interface dispatch through empty IMT slot");
      }
      DCHM_CHECK(Target, "interface dispatch found no code");
      Value R = ArgBufCall(I, Target);
      if (I.Dst != NoReg)
        F.Regs[I.Dst] = R;
      break;
    }

    case Opcode::InstanceOf: {
      // Type test via the TIB's type-information entry, never TIB identity
      // (special TIBs share the class's type info; paper section 3.2.3).
      Object *O = F.Regs[I.A].R;
      bool Is = O && !O->IsArray &&
                P.isSubtype(O->Tib->Cls->Id, static_cast<ClassId>(I.Imm));
      F.Regs[I.Dst] = valueI(Is);
      break;
    }
    case Opcode::ClassEq: {
      // Exact-class guard (guarded inlining): type-information entry, so
      // special TIBs compare equal to their class.
      Object *O = F.Regs[I.A].R;
      F.Regs[I.Dst] = valueI(O && !O->IsArray &&
                             O->Tib->Cls->Id == static_cast<ClassId>(I.Imm));
      break;
    }
    case Opcode::CheckCast: {
      Object *O = F.Regs[I.A].R;
      if (O) {
        DCHM_CHECK(!O->IsArray, "checkcast on array");
        DCHM_CHECK(P.isSubtype(O->Tib->Cls->Id, static_cast<ClassId>(I.Imm)),
                   "ClassCastException");
      }
      break;
    }

    case Opcode::Print:
      printValue(I, F.Regs[I.A]);
      break;
    }
    ++PC;
  }

done:
  Stats.Cycles += C;
  if (Profiling)
    MethodCycles[M.Id] += C;
  F.Fn = nullptr;
  --Depth;
  return Ret;
}

} // namespace dchm
