//===-- exec/Interpreter.cpp - Costed IR interpreter --------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// The inner loop is written once (exec/InterpreterLoop.inc) and compiled
// twice: executeLoopThreaded dispatches with computed goto (threaded
// dispatch, one indirect branch per handler, plus fused fast paths for
// dominant instruction pairs) and executeLoopSwitch with the portable
// central switch. Both charge identical simulated cycles and produce
// identical output; only host wall time differs. See docs/dispatch.md.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"

#include "compiler/Eval.h"
#include "runtime/CostModel.h"
#include "support/Debug.h"

#include <algorithm>
#include <cstdio>

// Computed goto is a GNU extension available on GCC and Clang; elsewhere the
// threaded instantiation falls back to the switch loop.
#if defined(__GNUC__) || defined(__clang__)
#define DCHM_HAVE_COMPUTED_GOTO 1
#else
#define DCHM_HAVE_COMPUTED_GOTO 0
#endif

namespace dchm {

namespace {
/// Integer binops eligible for the threaded-mode fused fast paths: cheap,
/// non-trapping ops whose handler is a plain evalBinop.
inline bool isFusibleIntArith(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
    return true;
  default:
    return false;
  }
}
} // namespace

Interpreter::Interpreter(Program &P, Heap &H, VMCallbacks &CB,
                         DispatchMode Mode, bool InlineCaches, bool FrameArena)
    : P(P), H(H), CB(CB), UseICs(InlineCaches), UseArena(FrameArena) {
  Frames.resize(MaxFrames);
  RegArena.resize(InitialArenaSlots);
#if DCHM_HAVE_COMPUTED_GOTO
#ifdef DCHM_THREADED_DISPATCH
  constexpr bool DefaultThreaded = true;
#else
  constexpr bool DefaultThreaded = false;
#endif
  UseThreaded = Mode == DispatchMode::Threaded ||
                (Mode == DispatchMode::Default && DefaultThreaded);
#else
  (void)Mode;
  UseThreaded = false;
#endif
}

void Interpreter::setProfiling(bool On) {
  Profiling = On;
  if (On) {
    MethodCycles.assign(P.numMethods(), 0);
    MethodInvocations.assign(P.numMethods(), 0);
  }
}

void Interpreter::clearOutput() {
  Output.clear();
  OutHash = 1469598103934665603ull;
}

void Interpreter::appendOutput(const char *S, size_t Len) {
  Output.append(S, Len);
  for (size_t I = 0; I < Len; ++I) {
    OutHash ^= static_cast<unsigned char>(S[I]);
    OutHash *= 1099511628211ull;
  }
}

void Interpreter::printValue(const Instruction &I, Value V) {
  char Buf[64];
  int Len;
  if (I.Aux == 1) {
    Buf[0] = static_cast<char>(V.I);
    Len = 1;
  } else if (I.Ty == Type::F64) {
    Len = std::snprintf(Buf, sizeof(Buf), "%.6g", V.F);
  } else {
    Len = std::snprintf(Buf, sizeof(Buf), "%lld",
                        static_cast<long long>(V.I));
  }
  appendOutput(Buf, static_cast<size_t>(Len));
}

void Interpreter::enumerateRoots(std::vector<Object *> &Roots) {
  for (size_t D = 0; D < Depth; ++D) {
    const Frame &F = Frames[D];
    if (!F.Fn)
      continue;
    const auto &Types = F.Fn->RegTypes;
    const Value *Regs =
        UseArena ? RegArena.data() + F.RegBase : F.LegacyRegs.data();
    for (uint32_t R = 0; R < F.NumRegs; ++R)
      if (Types[R] == Type::Ref && Regs[R].R)
        Roots.push_back(Regs[R].R);
  }
}

void Interpreter::collectActiveCtorReceivers(std::vector<Object *> &Out) const {
  for (size_t D = 0; D < Depth; ++D) {
    const Frame &F = Frames[D];
    if (!F.Fn || !F.M || !F.M->Flags.IsCtor || F.NumRegs == 0)
      continue;
    const Value *Regs =
        UseArena ? RegArena.data() + F.RegBase : F.LegacyRegs.data();
    if (Regs[0].R)
      Out.push_back(Regs[0].R);
  }
}

CompiledMethod *Interpreter::resolveInterface(TIB *T, MethodId IfaceMethod) {
  uint64_t Ignored = 0;
  return resolveInterfaceSite(T, IfaceMethod % NumImtSlots, IfaceMethod,
                              Ignored);
}

CompiledMethod *Interpreter::resolveInterfaceSite(TIB *T, uint32_t ImtSlot,
                                                  MethodId IfaceMethod,
                                                  uint64_t &ExtraCost) {
  DCHM_CHECK(T->Imt, "interface call on class with no IMT");
  const ImtEntry &E = T->Imt->Slots[ImtSlot];
  switch (E.K) {
  case ImtEntry::Kind::Direct: {
    if (E.DirectCode)
      return E.DirectCode;
    MethodInfo &Impl = P.method(E.DirectImpl);
    CB.ensureCompiled(Impl);
    return E.DirectCode ? E.DirectCode : T->Slots[Impl.VSlot];
  }
  case ImtEntry::Kind::TibOffset:
    // Mutable-class slot: one extra load through the current TIB so the
    // dispatch honors the object's (special) TIB.
    ExtraCost += DispatchCost::ImtMutableExtraLoad;
    return resolveAndEnsure(T, E.VSlot);
  case ImtEntry::Kind::Conflict: {
    ExtraCost += DispatchCost::ImtConflictStub;
    for (const auto &[IfaceM, Slot] : E.Table)
      if (IfaceM == IfaceMethod)
        return resolveAndEnsure(T, Slot);
    DCHM_UNREACHABLE("conflict stub: method not found");
  }
  case ImtEntry::Kind::Empty:
    break;
  }
  DCHM_UNREACHABLE("interface dispatch through empty IMT slot");
}

CompiledMethod *Interpreter::resolveAndEnsure(TIB *T, uint32_t Slot) {
  CompiledMethod *CM = T->Slots[Slot];
  if (CM)
    return CM;
  // Lazy compilation: resolve the method occupying this slot for the
  // receiver's class and ask the broker; installation fills the TIBs.
  MethodInfo &Resolved = P.method(T->Cls->VTable[Slot]);
  CompiledMethod *General = CB.ensureCompiled(Resolved);
  CM = T->Slots[Slot];
  if (!CM) {
    // Installation only fills *live* TIBs. A receiver stranded on a retired
    // special TIB (partial plan retirement) still dispatches; fall back to
    // the general code the broker just produced rather than aborting.
    CM = General;
  }
  DCHM_CHECK(CM, "compile broker did not install code");
  return CM;
}

Value Interpreter::invoke(MethodId Mid, const std::vector<Value> &Args) {
  MethodInfo &M = P.method(Mid);
  DCHM_CHECK(Args.size() == M.numArgsWithReceiver(), "invoke arg count");
  CompiledMethod *CM;
  if (M.Flags.IsStatic) {
    CM = P.staticEntry(Mid);
    if (!CM)
      CM = CB.ensureCompiled(M);
  } else {
    Object *Recv = Args[0].R;
    DCHM_CHECK(Recv && Recv->Tib, "invoke on null/invalid receiver");
    if (P.cls(M.Owner).IsInterface) {
      CM = resolveInterface(Recv->Tib, M.Id);
    } else if (M.isVirtualDispatch()) {
      CM = resolveAndEnsure(Recv->Tib, M.VSlot);
    } else {
      TIB *DeclTib = P.cls(M.Owner).ClassTib;
      CM = DeclTib->Slots[M.VSlot];
      if (!CM) {
        CB.ensureCompiled(M);
        CM = DeclTib->Slots[M.VSlot];
      }
    }
  }
  Value Result = execute(CM, Args.data(), Args.size());
  if (M.Flags.IsCtor && !Args.empty())
    CB.onConstructorExit(Args[0].R, M);
  return Result;
}

Value Interpreter::execute(CompiledMethod *CM, const Value *Args,
                           size_t NumArgs) {
  if (UseThreaded)
    return executeLoopThreaded(CM, Args, NumArgs);
  return executeLoopSwitch(CM, Args, NumArgs);
}

// The shared inner-loop body, compiled once per dispatch strategy. Keeping
// the copies as separate functions (not a template over the flag) matters:
// see the header comment of InterpreterLoop.inc.
#define DCHM_LOOP_THREADED 0
#define DCHM_LOOP_NAME executeLoopSwitch
#include "exec/InterpreterLoop.inc"
#undef DCHM_LOOP_THREADED
#undef DCHM_LOOP_NAME

#if DCHM_HAVE_COMPUTED_GOTO
#define DCHM_LOOP_THREADED 1
#define DCHM_LOOP_NAME executeLoopThreaded
#include "exec/InterpreterLoop.inc"
#undef DCHM_LOOP_THREADED
#undef DCHM_LOOP_NAME
#else
// Without computed goto the constructor never selects threaded mode; keep
// the symbol defined for the header's sake.
Value Interpreter::executeLoopThreaded(CompiledMethod *CM, const Value *Args,
                                       size_t NumArgs) {
  return executeLoopSwitch(CM, Args, NumArgs);
}
#endif

} // namespace dchm
