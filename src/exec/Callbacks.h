//===-- exec/Callbacks.h - Runtime event callbacks ------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter reports the events the paper's machinery hangs off of:
/// lazy/adaptive compilation requests, hotness samples, and the three
/// trigger points of the distributed dynamic class mutation algorithm
/// (instance state-field assignments, static state-field assignments, and
/// constructor exits — Figure 4). The VM facade implements this interface
/// and fans out to the adaptive system and the mutation engine.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_EXEC_CALLBACKS_H
#define DCHM_EXEC_CALLBACKS_H

#include "runtime/Entities.h"
#include "runtime/Object.h"

namespace dchm {

/// Event sink for the interpreter.
class VMCallbacks {
public:
  virtual ~VMCallbacks() = default;

  /// Lazy compilation: make sure M has current general compiled code
  /// installed in its dispatch structures and return it.
  virtual CompiledMethod *ensureCompiled(MethodInfo &M) = 0;

  /// The interpreter is about to execute CM but its body is still being
  /// produced by a background compile (CompiledMethod::ready() is false).
  /// Block until the body is published. Host-side only: the simulated
  /// machine already charged this compile at request time, so the wait is
  /// invisible to cycle counts and output. The default is for callback
  /// implementations that never hand out pending code.
  virtual void waitForCode(CompiledMethod &CM) { (void)CM; }

  /// Hotness sample on method entry (may recompile synchronously).
  virtual void onMethodEntry(MethodInfo &M) = 0;

  /// Hotness sample on a loop back edge.
  virtual void onBackedge(MethodInfo &M) = 0;

  /// An instance state field of O was just assigned (algorithm part I).
  /// DuringConstruction is true when the assignment happens inside a
  /// constructor running on O itself; Figure 4 defers those to the
  /// constructor-exit action instead of patching every ctor store.
  virtual void onInstanceStateStore(Object *O, FieldInfo &F,
                                    bool DuringConstruction) = 0;

  /// A static state field was just assigned (algorithm part I).
  virtual void onStaticStateStore(FieldInfo &F) = 0;

  /// A constructor of a mutable class just returned for object O.
  virtual void onConstructorExit(Object *O, MethodInfo &Ctor) = 0;
};

} // namespace dchm

#endif // DCHM_EXEC_CALLBACKS_H
