//===-- exec/Interpreter.h - Costed IR interpreter ------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM execution engine. "Compiled code" is optimized IR; this
/// interpreter executes it while charging the deterministic cycle costs of
/// runtime/CostModel.h, so specialization's benefit (fewer instructions) and
/// mutation's overheads (state-field patch code, TIB-offset interface
/// dispatch) show up in the measured cycle counts exactly where the paper
/// describes them. Dispatch is faithful to Jikes: virtual calls through the
/// receiver's (possibly special) TIB slot, static calls through the JTOC,
/// invokespecial through the declaring class TIB, interface calls through
/// the IMT. The interpreter is also the GC's root provider (frame scan).
///
/// The host-side fast path (docs/dispatch.md) is independent of the
/// simulated cost accounting; every knob below changes only real wall
/// time, never simulated cycles or program output:
///
///  - computed-goto threaded dispatch (DispatchMode) with fused handler
///    pairs for dominant instruction sequences,
///  - a contiguous bump-allocated register arena replacing per-frame
///    heap-allocated register files,
///  - per-call-site mutation-safe inline caches (runtime/InlineCache.h)
///    keyed on the receiver's TIB pointer and guarded by the Program's
///    code epoch.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_EXEC_INTERPRETER_H
#define DCHM_EXEC_INTERPRETER_H

#include "exec/Callbacks.h"
#include "runtime/AuditHook.h"
#include "runtime/Heap.h"
#include "runtime/Program.h"
#include "runtime/Safepoint.h"

#include <string>
#include <vector>

namespace dchm {

/// Execution statistics for one interpreter lifetime.
struct ExecStats {
  uint64_t Cycles = 0;       ///< simulated application cycles
  uint64_t Insts = 0;        ///< interpreted instructions
  uint64_t Invocations = 0;  ///< method invocations
  uint64_t VirtualCalls = 0;
  uint64_t InterfaceCalls = 0;
  uint64_t StatePatchHits = 0; ///< state-field assignments intercepted
  uint64_t IcHits = 0;         ///< call sites resolved from an inline cache
  uint64_t IcMisses = 0;       ///< call sites resolved via the slow path
};

/// How the interpreter's inner loop dispatches opcodes. Default resolves to
/// Threaded when the build enables DCHM_THREADED_DISPATCH and the compiler
/// supports computed goto, otherwise to the portable Switch loop. Both
/// modes produce identical output and identical simulated cycle counts.
enum class DispatchMode : uint8_t { Default, Switch, Threaded };

/// Executes compiled methods against a Program and Heap.
class Interpreter : public RootProvider {
public:
  Interpreter(Program &P, Heap &H, VMCallbacks &CB,
              DispatchMode Mode = DispatchMode::Default,
              bool InlineCaches = true, bool FrameArena = true);

  /// Invokes method M with the given arguments (receiver first for instance
  /// methods), compiling lazily as needed, and returns its result.
  Value invoke(MethodId M, const std::vector<Value> &Args);

  const ExecStats &stats() const { return Stats; }

  /// Number of live activation records. Zero means no return address can
  /// point into compiled code — the safe point for draining the epoch-based
  /// reclamation list of retired TIBs and specialized bodies.
  size_t liveFrames() const { return Depth; }

  /// True when the inner loop runs on computed-goto threaded dispatch.
  bool threadedDispatch() const { return UseThreaded; }
  bool inlineCachesEnabled() const { return UseICs; }
  bool frameArenaEnabled() const { return UseArena; }

  /// Enables the inline hotness-sample fast path. Only valid when the
  /// adaptive system samples every entry/back-edge event (SampleInterval ==
  /// 1): in that regime a sample for a fully promoted method is exactly
  /// MethodInfo::SampleCount++ — promotion is a no-op at the top opt level
  /// and the decimation tick is untouched — so the interpreter takes the
  /// increment inline instead of walking the callback chain on its two
  /// hottest events.
  void setInlineSampling(bool On) { InlineSampling = On; }

  /// Attaches a consistency-audit hook fired at the invocation-boundary
  /// safepoint (right after the pending-compile check, where all dispatch
  /// structures are quiescent). Null detaches. The hook must not modify
  /// simulated state; see runtime/AuditHook.h.
  void setAuditHook(AuditHook *H) { Audit = H; }

  /// Attaches this interpreter (= this mutator thread) to its rendezvous
  /// slot. The inner loop then polls the slot's flag at invocation
  /// boundaries and backedges and parks when a leader holds the world.
  /// Null (the single-mutator default) compiles the polls away to nothing.
  void setSafepointSlot(SafepointSlot *S) { Sp = S; }
  SafepointSlot *safepointSlot() const { return Sp; }

  /// Appends the receiver of every constructor frame currently on the
  /// stack. The consistency auditor exempts these objects from the strict
  /// TIB-matches-state invariant: algorithm part I defers classification of
  /// an object to the exit of its constructors, so a half-constructed
  /// object's TIB legitimately lags its fields.
  void collectActiveCtorReceivers(std::vector<Object *> &Out) const;

  /// Per-method cycle attribution for the offline hot-method profiler.
  void setProfiling(bool On);
  const std::vector<uint64_t> &methodCycles() const { return MethodCycles; }
  const std::vector<uint64_t> &methodInvocations() const {
    return MethodInvocations;
  }

  /// Program output (Print opcode) and its FNV-1a hash; the hash is the
  /// semantic-equivalence witness for mutation-on vs mutation-off runs.
  const std::string &output() const { return Output; }
  uint64_t outputHash() const { return OutHash; }
  void clearOutput();

  // RootProvider: scans the reference-typed registers of all live frames.
  void enumerateRoots(std::vector<Object *> &Roots) override;

private:
  static constexpr size_t MaxArgs = 16;
  static constexpr size_t MaxFrames = 512;
  static constexpr size_t InitialArenaSlots = 4096;

  /// One activation record. Registers live in the shared arena window
  /// [RegBase, RegBase + NumRegs) unless the legacy per-frame mode is
  /// active (LegacyRegs), which exists as the seed-equivalent baseline for
  /// the dispatch microbenchmarks.
  struct Frame {
    const IRFunction *Fn = nullptr;
    const MethodInfo *M = nullptr;
    size_t RegBase = 0;
    uint32_t NumRegs = 0;
    std::vector<Value> LegacyRegs;
  };

  Value execute(CompiledMethod *CM, const Value *Args, size_t NumArgs);
  /// The two compilations of the shared inner-loop body
  /// (exec/InterpreterLoop.inc). They are separate functions, not a
  /// template over the dispatch flag, so the switch copy is compiled with
  /// no address-taken labels at all: a `&&label` table anywhere in a
  /// function pins every labelled block and costs the pure-switch loop
  /// measurable straight-line speed.
  Value executeLoopSwitch(CompiledMethod *CM, const Value *Args,
                          size_t NumArgs);
  Value executeLoopThreaded(CompiledMethod *CM, const Value *Args,
                            size_t NumArgs);
  CompiledMethod *resolveAndEnsure(TIB *T, uint32_t Slot);
  /// Resolves an interface method against T's IMT (for external invoke()).
  CompiledMethod *resolveInterface(TIB *T, MethodId IfaceMethod);
  /// Seed-path IMT resolution for a CallInterface site; adds the entry
  /// kind's extra simulated cycles to ExtraCost.
  CompiledMethod *resolveInterfaceSite(TIB *T, uint32_t ImtSlot,
                                       MethodId IfaceMethod,
                                       uint64_t &ExtraCost);
  void printValue(const Instruction &I, Value V);
  void appendOutput(const char *S, size_t Len);

  Program &P;
  Heap &H;
  VMCallbacks &CB;
  ExecStats Stats;
  std::vector<Frame> Frames; ///< pooled frame stack; Depth frames live
  size_t Depth = 0;
  /// Contiguous register stack: one slab, frame windows bump-allocated on
  /// invoke and released on return. Grows geometrically; raw register
  /// pointers are re-derived after any nested invocation (see executeLoop).
  std::vector<Value> RegArena;
  size_t ArenaTop = 0;
  AuditHook *Audit = nullptr;
  SafepointSlot *Sp = nullptr;
  bool UseThreaded = false;
  bool UseICs = true;
  bool UseArena = true;
  bool InlineSampling = false;
  bool Profiling = false;
  std::vector<uint64_t> MethodCycles;
  std::vector<uint64_t> MethodInvocations;
  std::string Output;
  uint64_t OutHash = 1469598103934665603ull; // FNV-1a offset basis
};

} // namespace dchm

#endif // DCHM_EXEC_INTERPRETER_H
