//===-- exec/Interpreter.h - Costed IR interpreter ------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM execution engine. "Compiled code" is optimized IR; this
/// interpreter executes it while charging the deterministic cycle costs of
/// runtime/CostModel.h, so specialization's benefit (fewer instructions) and
/// mutation's overheads (state-field patch code, TIB-offset interface
/// dispatch) show up in the measured cycle counts exactly where the paper
/// describes them. Dispatch is faithful to Jikes: virtual calls through the
/// receiver's (possibly special) TIB slot, static calls through the JTOC,
/// invokespecial through the declaring class TIB, interface calls through
/// the IMT. The interpreter is also the GC's root provider (frame scan).
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_EXEC_INTERPRETER_H
#define DCHM_EXEC_INTERPRETER_H

#include "exec/Callbacks.h"
#include "runtime/Heap.h"
#include "runtime/Program.h"

#include <string>
#include <vector>

namespace dchm {

/// Execution statistics for one interpreter lifetime.
struct ExecStats {
  uint64_t Cycles = 0;       ///< simulated application cycles
  uint64_t Insts = 0;        ///< interpreted instructions
  uint64_t Invocations = 0;  ///< method invocations
  uint64_t VirtualCalls = 0;
  uint64_t InterfaceCalls = 0;
  uint64_t StatePatchHits = 0; ///< state-field assignments intercepted
};

/// Executes compiled methods against a Program and Heap.
class Interpreter : public RootProvider {
public:
  Interpreter(Program &P, Heap &H, VMCallbacks &CB);

  /// Invokes method M with the given arguments (receiver first for instance
  /// methods), compiling lazily as needed, and returns its result.
  Value invoke(MethodId M, const std::vector<Value> &Args);

  const ExecStats &stats() const { return Stats; }

  /// Per-method cycle attribution for the offline hot-method profiler.
  void setProfiling(bool On);
  const std::vector<uint64_t> &methodCycles() const { return MethodCycles; }
  const std::vector<uint64_t> &methodInvocations() const {
    return MethodInvocations;
  }

  /// Program output (Print opcode) and its FNV-1a hash; the hash is the
  /// semantic-equivalence witness for mutation-on vs mutation-off runs.
  const std::string &output() const { return Output; }
  uint64_t outputHash() const { return OutHash; }
  void clearOutput();

  // RootProvider: scans the reference-typed registers of all live frames.
  void enumerateRoots(std::vector<Object *> &Roots) override;

private:
  static constexpr size_t MaxArgs = 16;
  static constexpr size_t MaxFrames = 512;

  struct Frame {
    const IRFunction *Fn = nullptr;
    std::vector<Value> Regs;
  };

  Value execute(CompiledMethod *CM, const Value *Args, size_t NumArgs);
  CompiledMethod *resolveAndEnsure(TIB *T, uint32_t Slot);
  /// Resolves an interface method against T's IMT (for external invoke()).
  CompiledMethod *resolveInterface(TIB *T, MethodId IfaceMethod);
  void printValue(const Instruction &I, Value V);
  void appendOutput(const char *S, size_t Len);

  Program &P;
  Heap &H;
  VMCallbacks &CB;
  ExecStats Stats;
  std::vector<Frame> Frames; ///< pooled frame stack; Depth frames live
  size_t Depth = 0;
  bool Profiling = false;
  std::vector<uint64_t> MethodCycles;
  std::vector<uint64_t> MethodInvocations;
  std::string Output;
  uint64_t OutHash = 1469598103934665603ull; // FNV-1a offset basis
};

} // namespace dchm

#endif // DCHM_EXEC_INTERPRETER_H
