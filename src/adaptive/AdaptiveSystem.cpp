//===-- adaptive/AdaptiveSystem.cpp - Adaptive optimization ------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "adaptive/AdaptiveSystem.h"

#include "support/Debug.h"

namespace dchm {

CompiledMethod *AdaptiveSystem::ensureCompiled(MethodInfo &M) {
  if (M.General)
    return M.General;
  CompiledMethod *CM = OC.compileGeneral(M, 0);
  P.installCode(M, CM);
  Stats.InitialCompiles++;
  if (Cfg.AcceleratedMutableHotness && M.IsMutable) {
    // Figure 14: opt1 and opt2 code for mutable methods is generated
    // immediately after their opt0 code.
    recompile(M, 1);
    recompile(M, 2);
  }
  return M.General;
}

void AdaptiveSystem::onMethodEntry(MethodInfo &M) {
  if (Cfg.SampleInterval > 1 && (++EventTick % Cfg.SampleInterval) != 0)
    return;
  M.SampleCount++;
  maybePromote(M);
}

void AdaptiveSystem::onBackedge(MethodInfo &M) {
  if (Cfg.SampleInterval > 1 && (++EventTick % Cfg.SampleInterval) != 0)
    return;
  M.SampleCount++;
  maybePromote(M);
}

bool AdaptiveSystem::sampleConcurrent(MethodInfo &M) {
  if (Cfg.SampleInterval > 1 &&
      (EventTick.fetch_add(1, std::memory_order_relaxed) + 1) %
              Cfg.SampleInterval !=
          0)
    return false;
  uint64_t Samples = M.SampleCount.fetch_add(1, std::memory_order_relaxed) + 1;
  int Level = M.CurOptLevel.load(std::memory_order_relaxed);
  return (Level == 0 && Samples >= Cfg.Opt1Threshold) ||
         (Level == 1 && Samples >= Cfg.Opt2Threshold);
}

void AdaptiveSystem::refreshMutableMethods() {
  if (!Plan)
    return;
  for (const MutableClassPlan &CP : Plan->Classes)
    for (MethodId MId : CP.MutableMethods) {
      MethodInfo &M = P.method(MId);
      if (M.IsMutable && M.CurOptLevel >= 2 && M.Specials.empty() &&
          !OC.pipeline().quarantined(M))
        recompile(M, 2);
    }
}

void AdaptiveSystem::maybePromote(MethodInfo &M) {
  if (InRecompile)
    return; // no nested recompilation from compile-time sampling
  bool WantOpt1 = M.CurOptLevel == 0 && M.SampleCount >= Cfg.Opt1Threshold;
  bool WantOpt2 = M.CurOptLevel == 1 && M.SampleCount >= Cfg.Opt2Threshold;
  if (!WantOpt1 && !WantOpt2)
    return;
  // A quarantined method exhausted its compile attempts; it stays on its
  // current general code permanently instead of re-entering the pipeline.
  if (OC.pipeline().quarantined(M))
    return;
  recompile(M, WantOpt1 ? 1 : 2);
}

void AdaptiveSystem::recompile(MethodInfo &M, int Level) {
  InRecompile = true;
  CompiledMethod *Old = M.General;
  CompiledMethod *CM = OC.compileGeneral(M, Level);
  if (Old)
    Old->invalidate();
  P.installCode(M, CM);
  Stats.Recompilations++;

  // "When a method is compiled at a high optimization level, the specialized
  // versions are generated at the same time" — mutation occurs at opt2.
  if (Level >= 2 && M.IsMutable && Plan) {
    const MutableClassPlan *CP = Plan->planFor(M.Owner);
    DCHM_CHECK(CP, "mutable method without a class plan");
    for (CompiledMethod *OldSpecial : M.Specials)
      if (OldSpecial)
        OldSpecial->invalidate();
    M.Specials.assign(CP->HotStates.size(), nullptr);
    const ClassInfo &Owner = P.cls(CP->Cls);
    for (size_t S = 0; S < CP->HotStates.size(); ++S) {
      // A hot state evicted under the code budget has no special TIB left
      // to dispatch through; compiling its special would only re-grow the
      // footprint the eviction just reclaimed.
      if (CP->dependsOnInstanceFields() && S < Owner.SpecialTibs.size() &&
          !Owner.SpecialTibs[S])
        continue;
      M.Specials[S] = OC.compileSpecial(M, Level, *CP, S);
    }
    if (Listener)
      Listener->onMutableMethodRecompiled(M);
  }
  InRecompile = false;
}

} // namespace dchm
