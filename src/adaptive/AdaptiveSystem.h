//===-- adaptive/AdaptiveSystem.h - Adaptive optimization -----*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Jikes adaptive optimization system in miniature: the compile-only
/// ladder. Methods are compiled at opt0 on first invocation; entry and
/// back-edge samples accumulate per *method* (shared across its general and
/// special compiled versions, so specialization does not dilute hotness —
/// paper section 3.2.3); crossing the opt1/opt2 thresholds triggers a
/// synchronous recompilation. Recompiling a mutable method at opt2 also
/// generates every specialized version and notifies the mutation engine to
/// run algorithm part II (Figure 5). The accelerated mode of Figure 14
/// compiles mutable methods straight to opt2 right after opt0.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_ADAPTIVE_ADAPTIVESYSTEM_H
#define DCHM_ADAPTIVE_ADAPTIVESYSTEM_H

#include "compiler/OptCompiler.h"
#include "mutation/MutationPlan.h"
#include "runtime/Program.h"

namespace dchm {

/// Notified after a mutable method's opt2 recompilation produced fresh
/// general + special code, so the TIB/JTOC pointers can be redirected.
/// Implemented by the mutation engine.
class RecompileListener {
public:
  virtual ~RecompileListener() = default;
  virtual void onMutableMethodRecompiled(MethodInfo &M) = 0;
};

/// Adaptive system tunables.
struct AdaptiveConfig {
  /// Samples (entries + back edges) promoting opt0 -> opt1.
  uint64_t Opt1Threshold = 300;
  /// Samples promoting opt1 -> opt2 (where mutation happens).
  uint64_t Opt2Threshold = 3000;
  /// Figure 14: compile mutable methods at opt1+opt2 immediately after opt0.
  bool AcceleratedMutableHotness = false;
  /// Sampling decimation: only every Nth entry/back-edge event counts as a
  /// sample. Jikes samples on timer ticks, so hotness detection is sparse;
  /// interval 1 (default) counts every event (fastest detection), larger
  /// intervals reproduce the paper's multi-warehouse warm-up (Figures 13-15).
  uint64_t SampleInterval = 1;
};

/// Counters for the experiment harness.
struct AdaptiveStats {
  unsigned InitialCompiles = 0;
  unsigned Recompilations = 0;
};

/// The recompilation ladder.
class AdaptiveSystem {
public:
  AdaptiveSystem(Program &P, OptCompiler &OC, AdaptiveConfig Cfg)
      : P(P), OC(OC), Cfg(Cfg) {}

  void setPlan(const MutationPlan *Pl) { Plan = Pl; }
  void setRecompileListener(RecompileListener *L) { Listener = L; }

  /// Lazy first compile at opt0 (the "initial compiler is the optimization
  /// compiler, default level opt0" configuration of the paper) + install.
  CompiledMethod *ensureCompiled(MethodInfo &M);

  /// Hotness sample on entry; may recompile synchronously.
  void onMethodEntry(MethodInfo &M);
  /// Hotness sample on a loop back edge.
  void onBackedge(MethodInfo &M);

  /// Multi-mutator sampling split: the lock-free half of a sample. Bumps
  /// the decimation tick and the method's sample count with relaxed atomics
  /// and returns true when the counts suggest a promotion — the caller then
  /// re-runs the decision under a rendezvous via promoteStopped(), which
  /// re-checks everything with the world stopped (the pre-check may be
  /// stale; promoteStopped() is the arbiter).
  bool sampleConcurrent(MethodInfo &M);
  /// The promotion half: call only with the world stopped.
  void promoteStopped(MethodInfo &M) { maybePromote(M); }

  /// For plans installed mid-run (the online pipeline): mutable methods that
  /// already reached a high opt level were compiled before the plan existed
  /// and have no specialized versions — recompile them at opt2 now so
  /// algorithm part II can route their special code.
  void refreshMutableMethods();

  const AdaptiveStats &stats() const { return Stats; }

private:
  void maybePromote(MethodInfo &M);
  void recompile(MethodInfo &M, int Level);

  Program &P;
  OptCompiler &OC;
  AdaptiveConfig Cfg;
  const MutationPlan *Plan = nullptr;
  RecompileListener *Listener = nullptr;
  AdaptiveStats Stats;
  /// Atomic for the multi-mutator sampling pre-check; single-mutator runs
  /// touch it from one thread only, preserving the exact decimation stream.
  std::atomic<uint64_t> EventTick{0};
  bool InRecompile = false;
};

} // namespace dchm

#endif // DCHM_ADAPTIVE_ADAPTIVESYSTEM_H
