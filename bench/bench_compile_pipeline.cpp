//===-- bench/bench_compile_pipeline.cpp - Background compilation bench -------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Host-side benchmark of the asynchronous compile pipeline and the
// content-keyed specialization cache (docs/compile_pipeline.md).
//
// Part A measures the *activation pause* of the fully-online pipeline on
// SalaryDB: the longest single OnlineMutationController::poll() call, which
// is the one that assembles the plan and recompiles the hot mutable methods
// with one specialized version per hot state. With background compilation
// the optimization work of those compiles leaves the pause and is paid
// later, off the application thread.
//
// Part B measures the specialization cache on a SPECjbb2000-like run with a
// DisplayScreen plan holding two hot states that differ only in `rows`:
// putText reads only `cols`, so its two specials collapse to one compiled
// body (paper Figure 7's screens, where distinct screen states are often
// indistinguishable to a given method).
//
// Like bench_micro_dispatch this measures *real* time: simulated cycle
// counts, instruction counts, and the output hash must be bit-identical in
// every configuration, and that invariant is checked on every run. Results
// go to stdout and, machine-readable, to BENCH_compile.json.
//
// Flags: --iters=N  (SalaryDB batches per online run, default 500)
//        --repeat=R (timing repetitions, min taken; default 5)
//        --check    (small CI-friendly mode; equivalence + cache-hit
//                    assertions only, no speedup expectations; for ctest)
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "core/VM.h"
#include "online/OnlineController.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace dchm;
using namespace dchm::bench;

namespace {

struct PipelineConfig {
  const char *Name;
  HostToggle Async;
  unsigned Threads;
  HostToggle Cache;
};

const PipelineConfig Configs[] = {
    {"sync", HostToggle::Off, 1, HostToggle::Off},
    {"sync+cache", HostToggle::Off, 1, HostToggle::On},
    {"async-1", HostToggle::On, 1, HostToggle::On},
    {"async-2-default", HostToggle::On, 2, HostToggle::On},
    {"async-4", HostToggle::On, 4, HostToggle::On},
    {"async-4-nocache", HostToggle::On, 4, HostToggle::Off},
};
constexpr size_t DefaultCfgIdx = 3; ///< async-2-default, the VM's default

VMOptions optionsFor(const PipelineConfig &C) {
  VMOptions Opts;
  Opts.AsyncCompile = C.Async;
  Opts.CompileThreads = C.Threads;
  Opts.SpecializationCache = C.Cache;
  return Opts;
}

//===----------------------------------------------------------------------===//
// Part A: SalaryDB online activation pause
//===----------------------------------------------------------------------===//

struct OnlineResult {
  RunMetrics Metrics;
  double ActivationPauseSec = 0.0; ///< longest single poll (the activation)
  double TotalWallSec = 0.0;
};

OnlineResult runSalaryDbOnline(const PipelineConfig &C, int Batches) {
  auto W = makeSalaryDb();
  auto P = W->buildProgram();
  VirtualMachine VM(*P, optionsFor(C));
  OnlineMutationController::Config Cfg;
  Cfg.Analysis.HotStateMinFraction = 0.05;
  OnlineMutationController Ctl(VM, Cfg);
  ProgramIds Ids(*P);

  Timer Total;
  VM.call(Ids.method("TestDriver", "init"), {valueI(400)});
  MethodId RunBatch = Ids.method("TestDriver", "runBatch");
  OnlineResult R;
  for (int B = 0; B < Batches; ++B) {
    VM.call(RunBatch, {valueI(4)});
    Timer Poll;
    Ctl.poll();
    R.ActivationPauseSec = std::max(R.ActivationPauseSec, Poll.seconds());
  }
  VM.call(Ids.method("TestDriver", "checkSum"), {});
  R.TotalWallSec = Total.seconds();
  R.Metrics = VM.metrics();
  return R;
}

//===----------------------------------------------------------------------===//
// Part B: SPECjbb2000-like run with a shared-screen specialization plan
//===----------------------------------------------------------------------===//

/// Two hot states that differ only in `rows`: putText (reads `cols` only)
/// cannot tell them apart, clear (reads both) can.
MutationPlan makeScreenPlan(Program &P) {
  ProgramIds Ids(P);
  MutableClassPlan CP;
  CP.Cls = Ids.cls("DisplayScreen");
  CP.InstanceStateFields = {Ids.field("DisplayScreen", "rows"),
                            Ids.field("DisplayScreen", "cols")};
  HotState S0, S1;
  S0.InstanceVals = {valueI(24), valueI(80)};
  S1.InstanceVals = {valueI(25), valueI(80)};
  CP.HotStates = {S0, S1};
  CP.MutableMethods = {Ids.method("DisplayScreen", "putText"),
                       Ids.method("DisplayScreen", "clear")};
  MutationPlan Plan;
  Plan.Classes.push_back(CP);
  return Plan;
}

RunMetrics runJbbScreens(const PipelineConfig &C, double Scale) {
  auto W = makeJbb(JbbVariant::Jbb2000);
  auto P = W->buildProgram();
  VMOptions Opts = optionsFor(C);
  Opts.HeapBytes = heapBytesFor(W->name());
  // Mutable methods go straight to opt2 on first call, so the specialized
  // versions exist regardless of the run's scale.
  Opts.Adaptive.AcceleratedMutableHotness = true;
  MutationPlan Plan = makeScreenPlan(*P);
  VirtualMachine VM(*P, Opts);
  VM.setMutationPlan(&Plan);
  W->driveScaled(VM, Scale);
  return VM.metrics();
}

//===----------------------------------------------------------------------===//

bool sameSimulatedRun(const RunMetrics &A, const RunMetrics &B) {
  return A.OutputHash == B.OutputHash && A.Insts == B.Insts &&
         A.Invocations == B.Invocations && A.ExecCycles == B.ExecCycles &&
         A.CompileCycles == B.CompileCycles &&
         A.SpecialCompileCycles == B.SpecialCompileCycles &&
         A.GcCycles == B.GcCycles && A.MutationCycles == B.MutationCycles &&
         A.TotalCycles == B.TotalCycles &&
         A.SpecialCompileRequests == B.SpecialCompileRequests;
}

} // namespace

int main(int argc, char **argv) {
  int Batches = 500;
  int Repeat = 5;
  bool CheckOnly = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--iters=", 8) == 0)
      Batches = std::atoi(argv[I] + 8);
    else if (std::strncmp(argv[I], "--repeat=", 9) == 0)
      Repeat = std::atoi(argv[I] + 9);
    else if (std::strcmp(argv[I], "--check") == 0)
      CheckOnly = true;
  }
  if (CheckOnly)
    Repeat = std::min(Repeat, 2);
  const double JbbScale = CheckOnly ? 0.05 : 0.25;

  printHeader("compile-pipeline",
              "Background compilation pipeline and specialization cache");
  bool Ok = true;

  // --- Part A: activation pause ------------------------------------------
  std::printf("SalaryDB fully-online, %d batches, best of %d runs:\n", Batches,
              Repeat);
  std::printf("  %-16s %14s %12s %10s %8s %8s\n", "config", "activation-us",
              "total-ms", "requests", "compiles", "hits");
  std::vector<OnlineResult> Best(std::size(Configs));
  for (size_t I = 0; I < std::size(Configs); ++I) {
    for (int R = 0; R < Repeat; ++R) {
      OnlineResult Res = runSalaryDbOnline(Configs[I], Batches);
      if (R == 0 || Res.ActivationPauseSec < Best[I].ActivationPauseSec)
        Best[I] = Res;
    }
    const RunMetrics &M = Best[I].Metrics;
    std::printf("  %-16s %14.1f %12.2f %10u %8u %8u\n", Configs[I].Name,
                Best[I].ActivationPauseSec * 1e6, Best[I].TotalWallSec * 1e3,
                M.SpecialCompileRequests, M.SpecialCompiles,
                M.SpecialCacheHits);
    if (!sameSimulatedRun(M, Best[0].Metrics)) {
      std::printf("  MISMATCH: %s diverges from sync simulated run\n",
                  Configs[I].Name);
      Ok = false;
    }
  }
  double PauseSync = Best[0].ActivationPauseSec;
  double PauseAsync = Best[DefaultCfgIdx].ActivationPauseSec;
  double PauseReduction =
      PauseSync > 0.0 ? 100.0 * (1.0 - PauseAsync / PauseSync) : 0.0;
  std::printf("  activation pause sync -> async-2 (default): %.1f us -> "
              "%.1f us (%+.1f%%)\n\n",
              PauseSync * 1e6, PauseAsync * 1e6, -PauseReduction);

  // --- Part B: specialization cache on jbb screens -------------------------
  RunMetrics JbbOff = runJbbScreens(Configs[0], JbbScale);       // sync
  RunMetrics JbbOn = runJbbScreens(Configs[1], JbbScale);        // sync+cache
  RunMetrics JbbAsyncOn = runJbbScreens(Configs[DefaultCfgIdx], JbbScale);
  double HitRate =
      JbbOn.SpecialCompileRequests
          ? 100.0 * JbbOn.SpecialCacheHits / JbbOn.SpecialCompileRequests
          : 0.0;
  std::printf("SPECjbb2000-like, shared-screen plan, scale %.2f:\n", JbbScale);
  std::printf("  cache off: %u requests -> %u compiled bodies, %zu special "
              "bytes\n",
              JbbOff.SpecialCompileRequests, JbbOff.SpecialCompiles,
              JbbOff.SpecialCodeBytes);
  std::printf("  cache on:  %u requests -> %u compiled bodies, %zu special "
              "bytes (%u deduped, %.1f%% hit rate)\n",
              JbbOn.SpecialCompileRequests, JbbOn.SpecialCompiles,
              JbbOn.SpecialCodeBytes, JbbOn.SpecialCacheHits, HitRate);
  if (!sameSimulatedRun(JbbOff, JbbOn) || !sameSimulatedRun(JbbOff, JbbAsyncOn)) {
    std::printf("  MISMATCH: cache/async changed the simulated jbb run\n");
    Ok = false;
  }
  if (JbbOn.SpecialCacheHits == 0) {
    std::printf("  MISMATCH: expected >0 specialization-cache hits\n");
    Ok = false;
  }
  if (JbbOn.SpecialCodeBytes >= JbbOff.SpecialCodeBytes) {
    std::printf("  MISMATCH: cache did not reduce special code bytes\n");
    Ok = false;
  }

  // --- BENCH_compile.json ---------------------------------------------------
  JsonWriter J;
  J.beginObject();
  J.field("benchmark", "compile_pipeline");
  J.field("batches", static_cast<int64_t>(Batches));
  J.field("repeat", static_cast<int64_t>(Repeat));
  J.beginArray("activation");
  for (size_t I = 0; I < std::size(Configs); ++I) {
    const RunMetrics &M = Best[I].Metrics;
    J.beginArrayObject();
    J.field("config", Configs[I].Name);
    J.field("async", Configs[I].Async == HostToggle::On);
    J.field("threads", static_cast<int64_t>(Configs[I].Threads));
    J.field("spec_cache", Configs[I].Cache == HostToggle::On);
    J.field("activation_pause_us", Best[I].ActivationPauseSec * 1e6);
    J.field("total_wall_ms", Best[I].TotalWallSec * 1e3);
    J.field("special_compile_requests",
            static_cast<uint64_t>(M.SpecialCompileRequests));
    J.field("special_compiles", static_cast<uint64_t>(M.SpecialCompiles));
    J.field("special_cache_hits", static_cast<uint64_t>(M.SpecialCacheHits));
    J.field("total_cycles", M.TotalCycles);
    J.field("output_hash", M.OutputHash);
    J.endObject();
  }
  J.endArray();
  J.field("activation_pause_reduction_percent", PauseReduction);
  J.beginArray("jbb_screen_cache");
  for (const RunMetrics *M : {&JbbOff, &JbbOn}) {
    J.beginArrayObject();
    J.field("spec_cache", M == &JbbOn);
    J.field("special_compile_requests",
            static_cast<uint64_t>(M->SpecialCompileRequests));
    J.field("special_compiles", static_cast<uint64_t>(M->SpecialCompiles));
    J.field("special_cache_hits", static_cast<uint64_t>(M->SpecialCacheHits));
    J.field("special_code_bytes", static_cast<uint64_t>(M->SpecialCodeBytes));
    J.field("total_cycles", M->TotalCycles);
    J.endObject();
  }
  J.endArray();
  J.field("cache_hit_rate_percent", HitRate);
  J.field("equivalent", Ok);
  J.endObject();
  J.writeFile("BENCH_compile.json");

  std::printf("\n%s (BENCH_compile.json written)\n",
              Ok ? "All configurations simulate identically."
                 : "EQUIVALENCE FAILURE");
  return Ok ? 0 : 1;
}
