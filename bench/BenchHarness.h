//===-- bench/BenchHarness.h - Experiment harness --------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared harness for the per-figure benchmark binaries: runs a workload's
/// full offline pipeline (Figure 3), then a baseline run (mutation off) and
/// a mutated run (plan + OLC database installed) on fresh Program instances,
/// and returns both metric sets. Heap budgets follow the paper's per-
/// benchmark heap sizes, scaled 1:16 with the scaled-down workloads
/// (128 MB -> 8 MB for SPECjbb2000, 384 MB -> 24 MB for SPECjbb2005,
/// 50 MB -> 50 MB default: the small applications never pressure it).
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_BENCH_BENCHHARNESS_H
#define DCHM_BENCH_BENCHHARNESS_H

#include "analysis/OlcAnalysis.h"
#include "workloads/Workload.h"

#include <string>

namespace dchm {
namespace bench {

/// Result of one baseline-vs-mutation comparison.
struct Comparison {
  std::string Name;
  RunMetrics Base;
  RunMetrics Mut;
  double WallBase = 0.0;
  double WallMut = 0.0;
  MutationPlan Plan;
  OlcDatabase Olc;

  double speedupPercent() const {
    return 100.0 * (static_cast<double>(Base.TotalCycles) /
                        static_cast<double>(Mut.TotalCycles) -
                    1.0);
  }
  double codeSizeIncreasePercent() const {
    return 100.0 * (static_cast<double>(Mut.CodeBytes) /
                        static_cast<double>(Base.CodeBytes) -
                    1.0);
  }
  double compileTimeIncreasePercent() const {
    return 100.0 * (static_cast<double>(Mut.CompileCycles) /
                        static_cast<double>(Base.CompileCycles) -
                    1.0);
  }
  /// Compile cycles as a fraction of the baseline run (the numbers above
  /// the bars in the paper's Figure 11).
  double compileFractionPercent() const {
    return 100.0 * static_cast<double>(Base.CompileCycles) /
           static_cast<double>(Base.TotalCycles);
  }
};

/// Minimal JSON emitter for the machine-readable BENCH_*.json artifacts the
/// benchmark binaries write next to their human-readable tables. Handles
/// comma placement across (possibly nested) objects and arrays; values are
/// numbers, booleans, and strings (escaped for quotes and backslashes).
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray(const char *Key);
  JsonWriter &endArray();
  /// Starts an anonymous object as the next array element.
  JsonWriter &beginArrayObject();
  JsonWriter &field(const char *Key, const std::string &V);
  JsonWriter &field(const char *Key, const char *V);
  JsonWriter &field(const char *Key, double V);
  JsonWriter &field(const char *Key, uint64_t V);
  JsonWriter &field(const char *Key, int64_t V);
  JsonWriter &field(const char *Key, bool V);

  const std::string &str() const { return Out; }
  /// Writes the accumulated document (plus a trailing newline) to Path.
  bool writeFile(const std::string &Path) const;

private:
  void comma();
  void key(const char *Key);
  std::string Out;
  bool NeedComma = false;
};

/// Heap budget used for a workload (paper heaps scaled 1:16 for the jbbs).
size_t heapBytesFor(const std::string &WorkloadName);

/// Derives the plan offline, then runs baseline and mutated full-scale runs.
Comparison compareRuns(Workload &W, double Scale = 1.0);

/// Runs all seven Table 1 workloads through compareRuns.
std::vector<Comparison> compareAll(double Scale = 1.0);

/// Prints the standard header naming the figure being regenerated.
void printHeader(const char *Figure, const char *Caption);

} // namespace bench
} // namespace dchm

#endif // DCHM_BENCH_BENCHHARNESS_H
