//===-- bench/bench_fig14_jbb2000_accel.cpp - Figure 14 -----------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Regenerates Figure 14: SPECjbb2000 with accelerated mutable-method hotness
// detection (opt1/opt2 code for mutable methods generated immediately after
// opt0). Expected shape vs Figure 13: a deeper warehouse-1 dip (all the
// specialized compilation lands up front) and an earlier steady state.
//
//===----------------------------------------------------------------------===//

#include "JbbFigure.h"

using namespace dchm;

int main() {
  bench::printHeader("Figure 14",
                     "SPECjbb2000 throughput change with accelerated mutable "
                     "method hotness detection.");
  bench::JbbFigureConfig Cfg;
  Cfg.Variant = JbbVariant::Jbb2000;
  Cfg.Accelerated = true;
  Cfg.SampleInterval = 70;
  bench::runJbbFigure(Cfg);
  return 0;
}
