//===-- bench/bench_degradation.cpp - Graceful degradation bench --------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Host-side benchmark of the graceful-degradation machinery
// (docs/degradation.md): plan retirement and the code/TIB budget.
//
// Part A measures *plan retirement* on SalaryDB. First the prologue
// round trip: installing, retiring, and re-installing the plan before the
// run starts must leave a simulated run bit-identical to plain
// installation (checked on every run — retirement is a true inverse of
// installation). Then the warmed retirement: after a full mutated run the
// plan is retired with the heap populated and every special compiled,
// and we record the stop-the-world pause (host wall time), the simulated
// mutation cycles it charged, the objects swung back to class TIBs, and
// what epoch-based reclamation then recovered.
//
// Part B measures the *code/TIB budget* on SalaryDB (offline-derived
// plan) and a SPECjbb2000-like run (shared-screen plan). An unlimited run
// establishes the natural specialized footprint; then runs at 100%, 50%,
// and 25% of that footprint show how many hot states the benefit-ranked
// eviction demotes, the steady-state footprint, and the simulated-cycle
// cost of degrading. Output hashes must match the unlimited run in every
// budget configuration: degradation trades speed for space, never
// correctness.
//
// Results go to stdout and, machine-readable, to BENCH_degrade.json.
//
// Flags: --scale=F  (workload scale, default 1.0)
//        --repeat=R (pause-timing repetitions, min taken; default 5)
//        --check    (small CI-friendly mode; equivalence assertions only)
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "core/VM.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace dchm;
using namespace dchm::bench;

namespace {

bool sameSimulatedRun(const RunMetrics &A, const RunMetrics &B) {
  return A.OutputHash == B.OutputHash && A.Insts == B.Insts &&
         A.Invocations == B.Invocations && A.ExecCycles == B.ExecCycles &&
         A.CompileCycles == B.CompileCycles &&
         A.SpecialCompileCycles == B.SpecialCompileCycles &&
         A.GcCycles == B.GcCycles && A.MutationCycles == B.MutationCycles &&
         A.TotalCycles == B.TotalCycles;
}

/// One SalaryDB run. RoundTrip installs, retires, and re-installs the plan
/// before driving (the prologue round trip); RetireAtEnd retires the plan
/// after the drive with the heap warm and records the pause.
struct SalaryRun {
  RunMetrics M;
  size_t FootprintBytes = 0;
  double RetirePauseSec = 0.0;
  uint64_t RetireMutationCycles = 0; ///< simulated cycles charged by retire
  uint64_t ObjectsSwungBack = 0;
  uint64_t ReclaimedTibs = 0;
  uint64_t ReclaimedBodies = 0;
};

SalaryRun runSalary(Workload &W, const MutationPlan &Plan,
                    const OlcDatabase &Olc, double Scale, size_t Budget,
                    bool RoundTrip, bool RetireAtEnd) {
  auto P = W.buildProgram();
  VMOptions Opts;
  Opts.HeapBytes = heapBytesFor(W.name());
  Opts.CodeBudgetBytes = Budget;
  VirtualMachine VM(*P, Opts);
  VM.setMutationPlan(&Plan);
  VM.setOlcDatabase(&Olc);
  if (RoundTrip) {
    VM.retireMutationPlan();
    VM.setMutationPlan(&Plan);
  }
  W.driveScaled(VM, Scale);

  SalaryRun R;
  R.M = VM.metrics(); // syncs background compilation first
  R.FootprintBytes = VM.mutation().specialFootprintBytes();
  if (RetireAtEnd) {
    uint64_t SwingsBefore = VM.mutation().stats().ObjectTibSwings;
    uint64_t MutBefore = VM.metrics().MutationCycles;
    Timer Pause;
    VM.retireMutationPlan();
    R.RetirePauseSec = Pause.seconds();
    R.ObjectsSwungBack = VM.mutation().stats().ObjectTibSwings - SwingsBefore;
    R.RetireMutationCycles = VM.metrics().MutationCycles - MutBefore;
    VM.reclaimRetired();
    R.ReclaimedTibs = P->reclaimedTibCount();
    R.ReclaimedBodies = P->reclaimedBodyCount();
  }
  return R;
}

/// Two hot screen states for the jbb-like run (as in bench_compile_pipeline):
/// both instance-dependent, so both are budget-evictable.
MutationPlan makeScreenPlan(Program &P) {
  ProgramIds Ids(P);
  MutableClassPlan CP;
  CP.Cls = Ids.cls("DisplayScreen");
  CP.InstanceStateFields = {Ids.field("DisplayScreen", "rows"),
                            Ids.field("DisplayScreen", "cols")};
  HotState S0, S1;
  S0.InstanceVals = {valueI(24), valueI(80)};
  S1.InstanceVals = {valueI(25), valueI(80)};
  CP.HotStates = {S0, S1};
  CP.MutableMethods = {Ids.method("DisplayScreen", "putText"),
                       Ids.method("DisplayScreen", "clear")};
  MutationPlan Plan;
  Plan.Classes.push_back(CP);
  return Plan;
}

struct BudgetPoint {
  const char *Name;
  size_t Budget = 0; ///< 0 = unlimited
  RunMetrics M;
  size_t FootprintBytes = 0;
  bool Fits = true;
};

RunMetrics runJbb(Workload &W, double Scale, size_t Budget,
                  size_t &FootprintOut) {
  auto P = W.buildProgram();
  // Resolve the plan against this run's own Program instance.
  MutationPlan Plan = makeScreenPlan(*P);
  VMOptions Opts;
  Opts.HeapBytes = heapBytesFor(W.name());
  Opts.Adaptive.AcceleratedMutableHotness = true;
  Opts.CodeBudgetBytes = Budget;
  VirtualMachine VM(*P, Opts);
  VM.setMutationPlan(&Plan);
  W.driveScaled(VM, Scale);
  RunMetrics M = VM.metrics();
  FootprintOut = VM.mutation().specialFootprintBytes();
  return M;
}

/// Budget points at 100%, 50%, and 25% of the unlimited footprint.
std::vector<BudgetPoint> budgetLadder(size_t Unlimited) {
  std::vector<BudgetPoint> Pts(4);
  Pts[0].Name = "unlimited";
  Pts[1].Name = "100%";
  Pts[1].Budget = std::max<size_t>(Unlimited, 1);
  Pts[2].Name = "50%";
  Pts[2].Budget = std::max<size_t>(Unlimited / 2, 1);
  Pts[3].Name = "25%";
  Pts[3].Budget = std::max<size_t>(Unlimited / 4, 1);
  return Pts;
}

void printBudgetTable(const char *Title, const std::vector<BudgetPoint> &Pts,
                      bool &Ok) {
  const RunMetrics &Ref = Pts[0].M;
  std::printf("%s\n", Title);
  std::printf("  %-10s %12s %12s %10s %12s %6s\n", "budget", "limit-B",
              "footprint-B", "evictions", "mut-cycles", "fits");
  for (const BudgetPoint &P : Pts) {
    std::printf("  %-10s %12zu %12zu %10llu %12llu %6s\n", P.Name, P.Budget,
                P.FootprintBytes,
                static_cast<unsigned long long>(P.M.Mutation.StateEvictions),
                static_cast<unsigned long long>(P.M.MutationCycles),
                P.Fits ? "yes" : "NO");
    if (P.M.OutputHash != Ref.OutputHash) {
      std::printf("  MISMATCH: %s budget changed program output\n", P.Name);
      Ok = false;
    }
    if (!P.Fits)
      Ok = false;
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char **argv) {
  double Scale = 1.0;
  int Repeat = 5;
  bool CheckOnly = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--scale=", 8) == 0)
      Scale = std::atof(argv[I] + 8);
    else if (std::strncmp(argv[I], "--repeat=", 9) == 0)
      Repeat = std::atoi(argv[I] + 9);
    else if (std::strcmp(argv[I], "--check") == 0)
      CheckOnly = true;
  }
  if (CheckOnly) {
    Repeat = std::min(Repeat, 2);
    Scale = std::min(Scale, 0.25);
  }
  const double JbbScale = CheckOnly ? 0.05 : 0.25;

  printHeader("degradation",
              "Plan retirement and code/TIB budget (graceful degradation)");
  bool Ok = true;

  // --- Part A: retirement on SalaryDB --------------------------------------
  auto Salary = makeSalaryDb();
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult Off = runOfflinePipeline(*Salary, Cfg);
  OlcDatabase Olc;
  {
    auto P = Salary->buildProgram();
    Olc = analyzeObjectLifetimeConstants(*P, Off.Plan);
  }

  SalaryRun Ref =
      runSalary(*Salary, Off.Plan, Olc, Scale, 0, false, false);
  SalaryRun Trip =
      runSalary(*Salary, Off.Plan, Olc, Scale, 0, true, false);
  std::printf("SalaryDB, scale %.2f:\n", Scale);
  if (!sameSimulatedRun(Ref.M, Trip.M)) {
    std::printf("  MISMATCH: install/retire/re-install prologue round trip "
                "diverged from plain installation\n");
    Ok = false;
  } else {
    std::printf("  prologue install->retire->re-install round trip: "
                "bit-identical (hash %016llx)\n",
                static_cast<unsigned long long>(Ref.M.OutputHash));
  }

  SalaryRun Warm;
  for (int R = 0; R < Repeat; ++R) {
    SalaryRun Res =
        runSalary(*Salary, Off.Plan, Olc, Scale, 0, false, true);
    if (R == 0 || Res.RetirePauseSec < Warm.RetirePauseSec)
      Warm = Res;
  }
  std::printf("  warmed retirement (best of %d): pause %.1f us "
              "(%llu simulated mutation cycles), %llu objects swung back, "
              "%llu TIBs + %llu bodies reclaimed\n\n",
              Repeat, Warm.RetirePauseSec * 1e6,
              static_cast<unsigned long long>(Warm.RetireMutationCycles),
              static_cast<unsigned long long>(Warm.ObjectsSwungBack),
              static_cast<unsigned long long>(Warm.ReclaimedTibs),
              static_cast<unsigned long long>(Warm.ReclaimedBodies));
  if (Warm.ObjectsSwungBack == 0 && Ref.M.Mutation.ObjectTibSwings > 0) {
    std::printf("  MISMATCH: warmed retirement swung no objects back\n");
    Ok = false;
  }

  // --- Part B: code/TIB budget ladder --------------------------------------
  std::vector<BudgetPoint> SalaryPts = budgetLadder(Ref.FootprintBytes);
  for (BudgetPoint &P : SalaryPts) {
    SalaryRun R = runSalary(*Salary, Off.Plan, Olc, Scale, P.Budget, false,
                            false);
    P.M = R.M;
    P.FootprintBytes = R.FootprintBytes;
    P.Fits = P.Budget == 0 || P.FootprintBytes <= P.Budget;
  }
  char Title[128];
  std::snprintf(Title, sizeof(Title),
                "SalaryDB budget ladder (unlimited footprint %zu B):",
                Ref.FootprintBytes);
  printBudgetTable(Title, SalaryPts, Ok);

  auto Jbb = makeJbb(JbbVariant::Jbb2000);
  size_t JbbFree = 0;
  RunMetrics JbbRef = runJbb(*Jbb, JbbScale, 0, JbbFree);
  std::vector<BudgetPoint> JbbPts = budgetLadder(JbbFree);
  JbbPts[0].M = JbbRef;
  JbbPts[0].FootprintBytes = JbbFree;
  for (size_t I = 1; I < JbbPts.size(); ++I) {
    size_t F = 0;
    JbbPts[I].M = runJbb(*Jbb, JbbScale, JbbPts[I].Budget, F);
    JbbPts[I].FootprintBytes = F;
    JbbPts[I].Fits = F <= JbbPts[I].Budget;
  }
  std::snprintf(Title, sizeof(Title),
                "SPECjbb2000-like shared-screen budget ladder (unlimited "
                "footprint %zu B, scale %.2f):",
                JbbFree, JbbScale);
  printBudgetTable(Title, JbbPts, Ok);

  // --- BENCH_degrade.json ---------------------------------------------------
  JsonWriter J;
  J.beginObject();
  J.field("benchmark", "degradation");
  J.field("scale", Scale);
  J.field("repeat", static_cast<int64_t>(Repeat));
  J.beginArray("retirement");
  J.beginArrayObject();
  J.field("workload", "SalaryDB");
  J.field("round_trip_identical", sameSimulatedRun(Ref.M, Trip.M));
  J.field("retire_pause_ns", Warm.RetirePauseSec * 1e9);
  J.field("retire_mutation_cycles", Warm.RetireMutationCycles);
  J.field("objects_swung_back", Warm.ObjectsSwungBack);
  J.field("reclaimed_tibs", Warm.ReclaimedTibs);
  J.field("reclaimed_bodies", Warm.ReclaimedBodies);
  J.field("plan_retirements",
          static_cast<uint64_t>(Warm.M.Mutation.PlanRetirements));
  J.field("output_hash", Ref.M.OutputHash);
  J.field("total_cycles", Ref.M.TotalCycles);
  J.endObject();
  J.endArray();
  for (const auto *Pts : {&SalaryPts, &JbbPts}) {
    J.beginArray(Pts == &SalaryPts ? "budget_salarydb" : "budget_jbb_screens");
    const RunMetrics &Base = (*Pts)[0].M;
    for (const BudgetPoint &P : *Pts) {
      J.beginArrayObject();
      J.field("budget", P.Name);
      J.field("budget_bytes", static_cast<uint64_t>(P.Budget));
      J.field("footprint_bytes", static_cast<uint64_t>(P.FootprintBytes));
      J.field("evictions",
              static_cast<uint64_t>(P.M.Mutation.StateEvictions));
      J.field("mutation_cycles", P.M.MutationCycles);
      J.field("total_cycles", P.M.TotalCycles);
      J.field("degrade_cycle_overhead_percent",
              Base.TotalCycles
                  ? 100.0 * (static_cast<double>(P.M.TotalCycles) /
                                 static_cast<double>(Base.TotalCycles) -
                             1.0)
                  : 0.0);
      J.field("fits_budget", P.Fits);
      J.field("output_matches", P.M.OutputHash == Base.OutputHash);
      J.endObject();
    }
    J.endArray();
  }
  J.field("equivalent", Ok);
  J.endObject();
  J.writeFile("BENCH_degrade.json");

  std::printf("%s (BENCH_degrade.json written)\n",
              Ok ? "Degradation preserved program semantics in every "
                   "configuration."
                 : "EQUIVALENCE FAILURE");
  return Ok ? 0 : 1;
}
