//===-- bench/JbbFigure.h - Figures 13-15 shared harness -------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The warehouse-throughput experiment behind Figures 13, 14, and 15: one
/// warehouse is run NumWindows times with and without mutation, and each
/// window's throughput is compared. Early windows absorb the (re)compilation
/// and mutation charges — the paper's warm-up dip — and later windows show
/// the steady-state gain.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_BENCH_JBBFIGURE_H
#define DCHM_BENCH_JBBFIGURE_H

#include "BenchHarness.h"

#include <cstdio>

namespace dchm {
namespace bench {

struct JbbFigureConfig {
  JbbVariant Variant = JbbVariant::Jbb2000;
  int NumWindows = 8;
  uint64_t WindowCycles = 3'000'000;
  bool Accelerated = false; ///< Figure 14's accelerated hotness detection
  /// Sparse (Jikes-like timer) sampling so hotness detection spans
  /// warehouses, reproducing the paper's warm-up dip.
  uint64_t SampleInterval = 150;
};

inline void runJbbFigure(const JbbFigureConfig &Cfg) {
  auto W = makeJbb(Cfg.Variant);

  OfflineConfig OC;
  OC.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(*W, OC);

  auto RunWindows = [&](bool Mutation) {
    auto P = W->buildProgram();
    VMOptions Opts;
    Opts.EnableMutation = Mutation;
    Opts.HeapBytes = heapBytesFor(W->name());
    Opts.Adaptive.AcceleratedMutableHotness = Mutation && Cfg.Accelerated;
    Opts.Adaptive.SampleInterval = Cfg.SampleInterval;
    VirtualMachine VM(*P, Opts);
    OlcDatabase Db;
    if (Mutation) {
      VM.setMutationPlan(&R.Plan);
      Db = analyzeObjectLifetimeConstants(*P, R.Plan);
      VM.setOlcDatabase(&Db);
    }
    W->initVm(VM);
    return W->runWarehouseWindows(VM, Cfg.NumWindows, Cfg.WindowCycles,
                                  /*WarmupCycles=*/0);
  };

  auto Base = RunWindows(false);
  auto Mut = RunWindows(true);

  std::printf("%-5s | %14s | %14s | %9s\n", "wh", "base tx/s", "mutated tx/s",
              "delta");
  std::printf("------+----------------+----------------+----------\n");
  for (int I = 0; I < Cfg.NumWindows; ++I) {
    double Delta = Mut[static_cast<size_t>(I)].Throughput /
                       Base[static_cast<size_t>(I)].Throughput -
                   1.0;
    std::printf("wh%-3d | %14.1f | %14.1f | %+8.3f%%\n", I + 1,
                Base[static_cast<size_t>(I)].Throughput,
                Mut[static_cast<size_t>(I)].Throughput, 100.0 * Delta);
  }
  // Steady state: mean of the last three windows.
  auto SteadyMean = [&](const std::vector<JbbWindow> &Ws) {
    double S = 0;
    for (size_t I = Ws.size() - 3; I < Ws.size(); ++I)
      S += Ws[I].Throughput;
    return S / 3.0;
  };
  std::printf("\nsteady-state throughput change: %+.2f%%\n",
              100.0 * (SteadyMean(Mut) / SteadyMean(Base) - 1.0));
}

} // namespace bench
} // namespace dchm

#endif // DCHM_BENCH_JBBFIGURE_H
