//===-- bench/bench_table1.cpp - Table 1: benchmark inventory -----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Regenerates Table 1: the benchmark set with per-program class and method
// counts. Paper counts are for the original Java applications; ours are for
// the MiniVM re-implementations (deliberately smaller, same structure).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdio>

using namespace dchm;

int main() {
  bench::printHeader("Table 1", "Benchmarks used in the empirical study.");
  struct PaperRow {
    const char *Name;
    int Classes, Methods;
  };
  const PaperRow Paper[] = {
      {"SalaryDB", 3, 8},      {"SimLogic", 3, 29},
      {"CSVToXML", 5, 32},     {"Java2XHTML", 2, 8},
      {"Weka", 22, 423},       {"SPECjbb2000", 81, 978},
      {"SPECjbb2005", 65, 702}};

  std::printf("%-12s | %-48s | %7s %7s | %7s %7s\n", "Program", "Description",
              "classes", "methods", "(paper)", "(paper)");
  std::printf("-------------+--------------------------------------------------"
              "+-----------------+----------------\n");
  auto All = makeAllWorkloads();
  for (size_t I = 0; I < All.size(); ++I) {
    auto P = All[I]->buildProgram();
    std::printf("%-12s | %-48s | %7zu %7zu | %7d %7d\n",
                All[I]->name().c_str(), All[I]->description().c_str(),
                P->numClasses(), P->numMethods(), Paper[I].Classes,
                Paper[I].Methods);
  }
  return 0;
}
