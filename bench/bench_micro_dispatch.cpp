//===-- bench/bench_micro_dispatch.cpp - Interpreter fast-path benchmark ------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Host-side throughput benchmark of the interpreter fast paths
// (docs/dispatch.md): computed-goto threaded dispatch with fused handler
// pairs, the contiguous frame/register arena, and the mutation-safe inline
// caches. Runs one dispatch-heavy kernel under the four interesting knob
// combinations — the seed-equivalent configuration (switch loop, per-frame
// register files, no caches) up to the current default (threaded + arena +
// caches) — and reports cold/warm wall time per configuration.
//
// Unlike the figure benchmarks this one measures *real* time: the simulated
// cycle counts and the output hash must be bit-identical in every
// configuration, and that invariant is checked here on every run. Results
// go to stdout and, machine-readable, to BENCH_dispatch.json.
//
// Flags: --iters=N (outer loop iterations, default 300000)
//        --check   (equivalence checks only: small CI-friendly mode that
//                   ignores the speedup target; used by ctest)
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "core/VM.h"
#include "ir/Builder.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

using namespace dchm;

namespace {

/// A dispatch-heavy kernel: an interface, a two-class hierarchy, a static
/// helper, and a static driver whose outer loop exercises every invoke
/// flavor plus a tight arithmetic inner loop (the fused-pair fast paths).
struct DispatchKernel {
  std::unique_ptr<Program> P;
  MethodId Run = NoMethodId;

  DispatchKernel() {
    P = std::make_unique<Program>();
    ClassId Work = P->defineInterface("Work");
    MethodId WorkStep = P->defineMethod(Work, "step", Type::Void, {});

    ClassId A = P->defineClass("A");
    P->addInterface(A, Work);
    FieldId X = P->defineField(A, "x", Type::I64, false);

    MethodId ACtor =
        P->defineMethod(A, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder B("A.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      B.putField(This, X, B.constI(0));
      B.retVoid();
      P->setBody(ACtor, B.finalize());
    }
    MethodId AStep = P->defineMethod(A, "step", Type::Void, {});
    {
      FunctionBuilder B("A.step", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg V = B.getField(This, X, Type::I64);
      B.putField(This, X, B.add(V, B.constI(1)));
      B.retVoid();
      P->setBody(AStep, B.finalize());
    }
    MethodId AGet = P->defineMethod(A, "get", Type::I64, {});
    {
      FunctionBuilder B("A.get", Type::I64);
      Reg This = B.addArg(Type::Ref);
      B.ret(B.getField(This, X, Type::I64));
      P->setBody(AGet, B.finalize());
    }

    ClassId BCls = P->defineClass("B", A);
    MethodId BCtor =
        P->defineMethod(BCls, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder B("B.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      B.callSpecial(ACtor, {This}, Type::Void);
      B.retVoid();
      P->setBody(BCtor, B.finalize());
    }
    MethodId BStep = P->defineMethod(BCls, "step", Type::Void, {});
    {
      FunctionBuilder B("B.step", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg V = B.getField(This, X, Type::I64);
      B.putField(This, X, B.add(V, B.constI(2)));
      B.retVoid();
      P->setBody(BStep, B.finalize());
    }

    ClassId Helper = P->defineClass("Helper");
    MethodId Scale = P->defineMethod(Helper, "scale", Type::I64, {Type::I64},
                                     {.IsStatic = true});
    {
      FunctionBuilder B("Helper.scale", Type::I64);
      Reg N = B.addArg(Type::I64);
      Reg T = B.mul(N, B.constI(3));
      B.ret(B.add(T, B.constI(1)));
      P->setBody(Scale, B.finalize());
    }

    ClassId Kernel = P->defineClass("Kernel");
    Run = P->defineMethod(Kernel, "run", Type::I64, {Type::I64},
                          {.IsStatic = true});
    {
      FunctionBuilder B("Kernel.run", Type::I64);
      Reg Iters = B.addArg(Type::I64);
      Reg AObj = B.newObject(A);
      B.callSpecial(ACtor, {AObj}, Type::Void);
      Reg BObj = B.newObject(BCls);
      B.callSpecial(BCtor, {BObj}, Type::Void);
      Reg One = B.constI(1);
      Reg InnerN = B.constI(64);
      Reg I = B.newReg(Type::I64);
      B.move(I, B.constI(0));
      Reg Acc = B.newReg(Type::I64);
      B.move(Acc, B.constI(0));
      Reg K = B.newReg(Type::I64);
      auto Head = B.makeLabel();
      auto Exit = B.makeLabel();
      auto Inner = B.makeLabel();
      auto InnerExit = B.makeLabel();
      B.bind(Head);
      B.cbz(B.cmp(Opcode::CmpLT, I, Iters), Exit); // fused CmpLT+Cbz
      // Every invoke flavor, monomorphic per site (what inline caches see
      // in steady state).
      B.callVirtual(AStep, {AObj}, Type::Void);
      B.callVirtual(AStep, {BObj}, Type::Void);
      B.callInterface(WorkStep, {AObj}, Type::Void);
      B.move(Acc, B.add(Acc, B.callStatic(Scale, {I}, Type::I64)));
      // Tight arithmetic inner loop: compare+branch and const+add pairs.
      B.move(K, B.constI(0));
      B.bind(Inner);
      B.cbz(B.cmp(Opcode::CmpLT, K, InnerN), InnerExit);
      B.move(Acc, B.add(Acc, B.constI(3))); // fused ConstI+Add
      B.move(Acc, B.xorI(Acc, K));
      B.move(K, B.add(K, One));
      B.br(Inner);
      B.bind(InnerExit);
      B.move(I, B.add(I, One));
      B.br(Head);
      B.bind(Exit);
      Reg GA = B.callVirtual(AGet, {AObj}, Type::I64);
      Reg GB = B.callVirtual(AGet, {BObj}, Type::I64);
      B.move(Acc, B.add(Acc, B.add(GA, GB)));
      B.printNum(Acc, Type::I64);
      B.ret(Acc);
      P->setBody(Run, B.finalize());
    }
    P->link();
  }
};

struct Config {
  const char *Name;
  DispatchMode Mode;
  bool ICs;
  bool Arena;
};

struct RunResult {
  double WallCold = 0.0; ///< first call: cold code, cold caches
  double WallWarm = 0.0; ///< second call on the same VM
  uint64_t Insts = 0;    ///< interpreted instructions in the warm call
  uint64_t Cycles = 0;   ///< simulated cycles in the warm call
  uint64_t IcHits = 0;
  uint64_t IcMisses = 0;
  uint64_t Hash = 0; ///< output hash of the warm call
  bool Threaded = false;
};

RunResult runConfig(const Config &Cfg, int64_t Iters) {
  DispatchKernel K; // fresh Program: cold compiled code and caches
  VMOptions Opts;
  Opts.EnableMutation = false;
  Opts.Dispatch = Cfg.Mode;
  Opts.InlineCaches = Cfg.ICs;
  Opts.FrameArena = Cfg.Arena;
  VirtualMachine VM(*K.P, Opts);

  RunResult R;
  R.Threaded = VM.interp().threadedDispatch();
  Timer Cold;
  VM.call(K.Run, {valueI(Iters)});
  R.WallCold = Cold.seconds();
  // One settling call so adaptive recompilation has fully converged, then
  // the warm time is the minimum over several identical calls (the
  // standard microbenchmark defense against scheduler noise).
  VM.call(K.Run, {valueI(Iters)});
  constexpr int WarmReps = 5;
  R.WallWarm = 1e30;
  const ExecStats &S = VM.interp().stats();
  for (int Rep = 0; Rep < WarmReps; ++Rep) {
    VM.interp().clearOutput();
    uint64_t Insts0 = S.Insts, Cycles0 = S.Cycles;
    uint64_t Hits0 = S.IcHits, Misses0 = S.IcMisses;
    Timer Warm;
    VM.call(K.Run, {valueI(Iters)});
    double Wall = Warm.seconds();
    if (Wall < R.WallWarm)
      R.WallWarm = Wall;
    R.Insts = S.Insts - Insts0;
    R.Cycles = S.Cycles - Cycles0;
    R.IcHits = S.IcHits - Hits0;
    R.IcMisses = S.IcMisses - Misses0;
    R.Hash = VM.interp().outputHash();
  }
  return R;
}

} // namespace

int main(int argc, char **argv) {
  int64_t Iters = 300000;
  bool CheckOnly = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--iters=", 8) == 0)
      Iters = std::atoll(argv[I] + 8);
    else if (std::strcmp(argv[I], "--check") == 0)
      CheckOnly = true;
  }

  // The seed-equivalent baseline first, the full fast path last.
  const Config Configs[] = {
      {"seed_switch", DispatchMode::Switch, false, false},
      {"switch_ic_arena", DispatchMode::Switch, true, true},
      {"threaded_only", DispatchMode::Threaded, false, false},
      {"threaded_ic_arena", DispatchMode::Threaded, true, true},
  };
  constexpr size_t NumConfigs = sizeof(Configs) / sizeof(Configs[0]);

  bench::printHeader(
      "dispatch microbenchmark",
      "Interpreter fast paths: threaded dispatch, frame arena, inline "
      "caches.\nWall time is the metric here; simulated cycles and output "
      "must not move.");

  RunResult Results[NumConfigs];
  for (size_t I = 0; I < NumConfigs; ++I)
    Results[I] = runConfig(Configs[I], Iters);

  // Equivalence gate: every configuration is semantically the seed
  // interpreter. Identical output hash AND identical simulated cycle and
  // instruction counts, cold-path compilation included.
  bool SameHash = true, SameCycles = true;
  for (size_t I = 1; I < NumConfigs; ++I) {
    SameHash &= Results[I].Hash == Results[0].Hash;
    SameCycles &= Results[I].Cycles == Results[0].Cycles &&
                  Results[I].Insts == Results[0].Insts;
  }

  std::printf("%-20s %10s %10s %14s %12s %10s\n", "config", "cold(ms)",
              "warm(ms)", "insts/s(warm)", "ic hit rate", "speedup");
  double SeedWarm = Results[0].WallWarm;
  for (size_t I = 0; I < NumConfigs; ++I) {
    const RunResult &R = Results[I];
    double HitRate = (R.IcHits + R.IcMisses)
                         ? static_cast<double>(R.IcHits) /
                               static_cast<double>(R.IcHits + R.IcMisses)
                         : 0.0;
    std::printf("%-20s %10.2f %10.2f %14.3g %11.1f%% %9.2fx\n",
                Configs[I].Name, R.WallCold * 1e3, R.WallWarm * 1e3,
                static_cast<double>(R.Insts) / (R.WallWarm > 0 ? R.WallWarm : 1),
                HitRate * 100.0, SeedWarm / (R.WallWarm > 0 ? R.WallWarm : 1));
  }

  const RunResult &Full = Results[NumConfigs - 1];
  double Speedup = SeedWarm / (Full.WallWarm > 0 ? Full.WallWarm : 1);
  std::printf("\nfull fast path vs seed interpreter: %.2fx (target 1.5x)\n",
              Speedup);
  std::printf("output hashes identical: %s; simulated accounting identical: "
              "%s\n",
              SameHash ? "yes" : "NO", SameCycles ? "yes" : "NO");
  if (!Full.Threaded)
    std::printf("note: threaded dispatch unavailable on this compiler; "
                "threaded configs ran on the switch loop\n");

  bench::JsonWriter J;
  J.beginObject()
      .field("bench", "dispatch")
      .field("iters", Iters)
      .field("threaded_available", Full.Threaded)
      .field("identical_output_hashes", SameHash)
      .field("identical_sim_accounting", SameCycles)
      .field("speedup_full_vs_seed_warm", Speedup)
      .field("target_speedup", 1.5);
  J.beginArray("configs");
  for (size_t I = 0; I < NumConfigs; ++I) {
    const RunResult &R = Results[I];
    char HashBuf[24];
    std::snprintf(HashBuf, sizeof(HashBuf), "0x%016llx",
                  static_cast<unsigned long long>(R.Hash));
    J.beginArrayObject()
        .field("name", Configs[I].Name)
        .field("threaded", R.Threaded)
        .field("inline_caches", Configs[I].ICs)
        .field("frame_arena", Configs[I].Arena)
        .field("wall_cold_s", R.WallCold)
        .field("wall_warm_s", R.WallWarm)
        .field("warm_insts", R.Insts)
        .field("warm_sim_cycles", R.Cycles)
        .field("ic_hits", R.IcHits)
        .field("ic_misses", R.IcMisses)
        .field("output_hash", HashBuf)
        .endObject();
  }
  J.endArray().endObject();
  if (!J.writeFile("BENCH_dispatch.json"))
    std::fprintf(stderr, "warning: could not write BENCH_dispatch.json\n");

  if (!SameHash || !SameCycles) {
    std::fprintf(stderr, "FAIL: configurations disagree semantically\n");
    return 1;
  }
  if (CheckOnly)
    return 0; // CI mode: equivalence only, wall time is machine-dependent
  return 0;
}
