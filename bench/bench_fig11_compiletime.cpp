//===-- bench/bench_fig11_compiletime.cpp - Figure 11: compile time -----------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Regenerates Figure 11: the optimization compiler's compilation time
// increase due to mutation, annotated (as in the paper) with the fraction of
// total execution time spent compiling.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdio>

using namespace dchm;

int main() {
  bench::printHeader(
      "Figure 11",
      "Opt compiler compilation time increase; the bracketed number is the "
      "compilation fraction of total execution time (paper's bar labels).");
  const double PaperInc[] = {6.0, 7.0, 4.0, 5.0, 2.0, 17.0, 12.0};
  const double PaperFrac[] = {0.5, 0.3, 0.3, 1.0, 2.5, 3.1, 2.3};

  std::printf("%-12s | %10s [%6s] | %10s [%6s]\n", "Program", "ours", "frac",
              "paper", "frac");
  std::printf("-------------+---------------------+--------------------\n");
  size_t I = 0;
  for (auto &W : makeAllWorkloads()) {
    bench::Comparison C = bench::compareRuns(*W);
    std::printf("%-12s | %9.2f%% [%4.1f%%] | %9.1f%% [%4.1f%%]\n",
                C.Name.c_str(), C.compileTimeIncreasePercent(),
                C.compileFractionPercent(), PaperInc[I], PaperFrac[I]);
    ++I;
  }
  std::printf("\nShape check: the SPECjbb pair shows the largest increases "
              "(many mutable methods + specialization inlining); compile "
              "fractions stay in the low single digits.\n");
  return 0;
}
