//===-- bench/bench_fig12_tibspace.cpp - Figure 12: TIB space -----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Regenerates Figure 12: the absolute TIB space increase from special TIBs
// (bytes), with the relative increase as the bar label. TIB memory is
// immortal in Jikes, which is why the paper tracks it separately.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdio>

using namespace dchm;

int main() {
  bench::printHeader("Figure 12",
                     "TIB space increase: bytes of special TIBs created by "
                     "mutation (relative increase in brackets).");
  std::printf("%-12s | %11s [%7s] | %12s\n", "Program", "extra bytes", "rel",
              "class TIBs");
  std::printf("-------------+-----------------------+-------------\n");
  for (auto &W : makeAllWorkloads()) {
    bench::Comparison C = bench::compareRuns(*W);
    double Rel = 100.0 * static_cast<double>(C.Mut.SpecialTibBytes) /
                 static_cast<double>(C.Mut.ClassTibBytes);
    std::printf("%-12s | %11zu [%5.1f%%] | %12zu\n", C.Name.c_str(),
                C.Mut.SpecialTibBytes, Rel, C.Mut.ClassTibBytes);
  }
  std::printf("\nPaper: at worst ~1 KB (SPECjbb2000), under 100 B for the "
              "small applications; TIBs are tens of bytes each.\n");
  return 0;
}
