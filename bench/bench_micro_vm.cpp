//===-- bench/bench_micro_vm.cpp - VM primitive microbenchmarks ---------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Google-benchmark microbenchmarks of the dispatch primitives backing the
// paper's overhead claims:
//  - virtual dispatch through a special TIB costs the same as through the
//    class TIB ("without any extra overhead"),
//  - the state-field patch code is a small per-store charge,
//  - interface dispatch through a TIB-offset IMT slot pays one extra load.
// Both real wall time per operation and the simulated cycle charge are
// reported (cycles as a counter).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <benchmark/benchmark.h>

using namespace dchm;

namespace {

/// Shared state: a Counter program warmed to opt2 with mutation on.
struct MicroState {
  test::CounterFixture Fx;
  std::unique_ptr<VirtualMachine> VM;
  Object *Hot;  ///< object in hot state 1 (special TIB)
  Object *Cold; ///< object in a cold state (class TIB)

  explicit MicroState(bool Mutation) {
    VMOptions Opts;
    Opts.EnableMutation = Mutation;
    VM = std::make_unique<VirtualMachine>(*Fx.P, Opts);
    VM->setMutationPlan(&Fx.Plan);
    Hot = Fx.makeCounter(*VM, 1);
    Cold = Fx.makeCounter(*VM, 5);
    for (int I = 0; I < 6000; ++I)
      VM->call(Fx.Bump, {valueR(Hot)});
  }
};

void BM_VirtualDispatchClassTib(benchmark::State &State) {
  MicroState S(/*Mutation=*/true);
  uint64_t C0 = S.VM->interp().stats().Cycles;
  uint64_t N = 0;
  std::vector<Value> Args{valueR(S.Cold)};
  for (auto _ : State) {
    S.VM->call(S.Fx.Bump, Args);
    ++N;
  }
  State.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(S.VM->interp().stats().Cycles - C0) /
      static_cast<double>(N ? N : 1));
}
BENCHMARK(BM_VirtualDispatchClassTib);

void BM_VirtualDispatchSpecialTib(benchmark::State &State) {
  MicroState S(/*Mutation=*/true);
  uint64_t C0 = S.VM->interp().stats().Cycles;
  uint64_t N = 0;
  std::vector<Value> Args{valueR(S.Hot)};
  for (auto _ : State) {
    S.VM->call(S.Fx.Bump, Args);
    ++N;
  }
  State.counters["sim_cycles/op"] = benchmark::Counter(
      static_cast<double>(S.VM->interp().stats().Cycles - C0) /
      static_cast<double>(N ? N : 1));
}
BENCHMARK(BM_VirtualDispatchSpecialTib);

void BM_InterfaceDispatchMutableClass(benchmark::State &State) {
  MicroState S(/*Mutation=*/true);
  std::vector<Value> Args{valueR(S.Hot)};
  for (auto _ : State)
    S.VM->call(S.Fx.IfaceBump, Args);
}
BENCHMARK(BM_InterfaceDispatchMutableClass);

void BM_StateFieldStoreWithPatchCode(benchmark::State &State) {
  MicroState S(/*Mutation=*/true);
  int64_t M = 0;
  for (auto _ : State) {
    // Alternating hot states: every store runs patch code + TIB swing.
    S.VM->call(S.Fx.SetMode, {valueR(S.Hot), valueI(M)});
    M = 1 - M;
  }
  State.counters["tib_swings"] = benchmark::Counter(
      static_cast<double>(S.VM->mutation().stats().ObjectTibSwings));
}
BENCHMARK(BM_StateFieldStoreWithPatchCode);

void BM_StateFieldStoreNoMutation(benchmark::State &State) {
  MicroState S(/*Mutation=*/false);
  int64_t M = 0;
  for (auto _ : State) {
    S.VM->call(S.Fx.SetMode, {valueR(S.Hot), valueI(M)});
    M = 1 - M;
  }
}
BENCHMARK(BM_StateFieldStoreNoMutation);

void BM_ConstructorWithCtorExitCheck(benchmark::State &State) {
  MicroState S(/*Mutation=*/true);
  for (auto _ : State)
    benchmark::DoNotOptimize(S.Fx.makeCounter(*S.VM, 0));
}
BENCHMARK(BM_ConstructorWithCtorExitCheck);

} // namespace

BENCHMARK_MAIN();
