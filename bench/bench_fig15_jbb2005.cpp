//===-- bench/bench_fig15_jbb2005.cpp - Figure 15 -----------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Regenerates Figure 15: SPECjbb2005's per-warehouse throughput change.
// Expected shape: the low-throughput period stretches further (mutable
// methods are detected hot more slowly than in jbb2000) and the steady-state
// gain is smaller (less time in mutable methods, more memory pressure).
//
//===----------------------------------------------------------------------===//

#include "JbbFigure.h"

using namespace dchm;

int main() {
  bench::printHeader("Figure 15",
                     "SPECjbb2005 throughput change due to mutation, per "
                     "warehouse window (8 windows).");
  bench::JbbFigureConfig Cfg;
  Cfg.Variant = JbbVariant::Jbb2005;
  Cfg.SampleInterval = 25;
  bench::runJbbFigure(Cfg);
  return 0;
}
