//===-- bench/BenchHarness.cpp - Experiment harness ---------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "support/Debug.h"
#include "support/Timer.h"

#include <cstdio>

namespace dchm {
namespace bench {

void JsonWriter::comma() {
  if (NeedComma)
    Out += ',';
  NeedComma = false;
}

void JsonWriter::key(const char *Key) {
  comma();
  Out += '"';
  Out += Key;
  Out += "\":";
}

JsonWriter &JsonWriter::beginObject() {
  comma();
  Out += '{';
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out += '}';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::beginArray(const char *Key) {
  this->key(Key);
  Out += '[';
  NeedComma = false;
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out += ']';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::beginArrayObject() {
  comma();
  Out += '{';
  return *this;
}

JsonWriter &JsonWriter::field(const char *Key, const std::string &V) {
  this->key(Key);
  Out += '"';
  for (char Ch : V) {
    if (Ch == '"' || Ch == '\\')
      Out += '\\';
    Out += Ch;
  }
  Out += '"';
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const char *Key, const char *V) {
  return field(Key, std::string(V));
}

JsonWriter &JsonWriter::field(const char *Key, double V) {
  this->key(Key);
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  Out += Buf;
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const char *Key, uint64_t V) {
  this->key(Key);
  Out += std::to_string(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const char *Key, int64_t V) {
  this->key(Key);
  Out += std::to_string(V);
  NeedComma = true;
  return *this;
}

JsonWriter &JsonWriter::field(const char *Key, bool V) {
  this->key(Key);
  Out += V ? "true" : "false";
  NeedComma = true;
  return *this;
}

bool JsonWriter::writeFile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fwrite(Out.data(), 1, Out.size(), F);
  std::fputc('\n', F);
  std::fclose(F);
  return true;
}

size_t heapBytesFor(const std::string &WorkloadName) {
  if (WorkloadName == "SPECjbb2000")
    return 8u << 20; // paper: 128 MB, scaled 1:16
  if (WorkloadName == "SPECjbb2005")
    return 24u << 20; // paper: 384 MB, scaled 1:16
  return 50u << 20;   // the Jikes default heap used by the small apps
}

Comparison compareRuns(Workload &W, double Scale) {
  Comparison C;
  C.Name = W.name();

  // Offline pipeline (Figure 3): hot methods -> state fields -> hot states.
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(W, Cfg);
  C.Plan = std::move(R.Plan);

  size_t Heap = heapBytesFor(C.Name);

  {
    auto P = W.buildProgram();
    VMOptions Opts;
    Opts.EnableMutation = false;
    Opts.HeapBytes = Heap;
    VirtualMachine VM(*P, Opts);
    Timer T;
    W.driveScaled(VM, Scale);
    C.WallBase = T.seconds();
    C.Base = VM.metrics();
  }
  {
    auto P = W.buildProgram();
    VMOptions Opts;
    Opts.EnableMutation = true;
    Opts.HeapBytes = Heap;
    VirtualMachine VM(*P, Opts);
    VM.setMutationPlan(&C.Plan);
    C.Olc = analyzeObjectLifetimeConstants(*P, C.Plan);
    VM.setOlcDatabase(&C.Olc);
    Timer T;
    W.driveScaled(VM, Scale);
    C.WallMut = T.seconds();
    C.Mut = VM.metrics();
  }
  DCHM_CHECK(C.Base.OutputHash == C.Mut.OutputHash,
             "mutation changed program output");
  return C;
}

std::vector<Comparison> compareAll(double Scale) {
  std::vector<Comparison> Out;
  for (auto &W : makeAllWorkloads())
    Out.push_back(compareRuns(*W, Scale));
  return Out;
}

void printHeader(const char *Figure, const char *Caption) {
  std::printf("=== DCHM reproduction: %s ===\n", Figure);
  std::printf("%s\n", Caption);
  std::printf("(simulated cycles; deterministic cost model; "
              "paper values for comparison)\n\n");
}

} // namespace bench
} // namespace dchm
