//===-- bench/BenchHarness.cpp - Experiment harness ---------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "support/Debug.h"
#include "support/Timer.h"

#include <cstdio>

namespace dchm {
namespace bench {

size_t heapBytesFor(const std::string &WorkloadName) {
  if (WorkloadName == "SPECjbb2000")
    return 8u << 20; // paper: 128 MB, scaled 1:16
  if (WorkloadName == "SPECjbb2005")
    return 24u << 20; // paper: 384 MB, scaled 1:16
  return 50u << 20;   // the Jikes default heap used by the small apps
}

Comparison compareRuns(Workload &W, double Scale) {
  Comparison C;
  C.Name = W.name();

  // Offline pipeline (Figure 3): hot methods -> state fields -> hot states.
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(W, Cfg);
  C.Plan = std::move(R.Plan);

  size_t Heap = heapBytesFor(C.Name);

  {
    auto P = W.buildProgram();
    VMOptions Opts;
    Opts.EnableMutation = false;
    Opts.HeapBytes = Heap;
    VirtualMachine VM(*P, Opts);
    Timer T;
    W.driveScaled(VM, Scale);
    C.WallBase = T.seconds();
    C.Base = VM.metrics();
  }
  {
    auto P = W.buildProgram();
    VMOptions Opts;
    Opts.EnableMutation = true;
    Opts.HeapBytes = Heap;
    VirtualMachine VM(*P, Opts);
    VM.setMutationPlan(&C.Plan);
    C.Olc = analyzeObjectLifetimeConstants(*P, C.Plan);
    VM.setOlcDatabase(&C.Olc);
    Timer T;
    W.driveScaled(VM, Scale);
    C.WallMut = T.seconds();
    C.Mut = VM.metrics();
  }
  DCHM_CHECK(C.Base.OutputHash == C.Mut.OutputHash,
             "mutation changed program output");
  return C;
}

std::vector<Comparison> compareAll(double Scale) {
  std::vector<Comparison> Out;
  for (auto &W : makeAllWorkloads())
    Out.push_back(compareRuns(*W, Scale));
  return Out;
}

void printHeader(const char *Figure, const char *Caption) {
  std::printf("=== DCHM reproduction: %s ===\n", Figure);
  std::printf("%s\n", Caption);
  std::printf("(simulated cycles; deterministic cost model; "
              "paper values for comparison)\n\n");
}

} // namespace bench
} // namespace dchm
