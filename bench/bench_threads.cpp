//===-- bench/bench_threads.cpp - Multi-mutator scaling bench -----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Host-side throughput benchmark of the multi-mutator VM (docs/threads.md):
// a jbb-style multi-warehouse run where every mutator thread drives its own
// warehouse — a thread-confined TxLogger swung between hot states while
// transactions accumulate — against one shared Program/Heap/CompilePipeline.
//
// For N in {1, 2, 4, 8} mutators, mutation off and on, the bench runs a
// fixed per-warehouse transaction count and reports wall-clock transactions
// per second plus the scaling factor over the single-mutator run. Weak
// scaling: every thread does the same work, so ideal scaling is N on N
// cores. Per-warehouse output hashes must equal the single-mutator
// reference in every configuration — the throughput numbers are only
// admissible because the work is provably the same work.
//
// Results go to stdout and, machine-readable, to BENCH_threads.json. The
// acceptance bar for the multi-mutator overhaul is >1.5x at 4 mutators;
// the bench reports it only when the host has >= 4 hardware threads
// (scaling is a property of the VM, not of a single-core CI container).
//
// Flags: --txns=N   (transactions per warehouse, default 600000)
//        --check    (CI mode: fingerprint equivalence assertions only —
//                    runMutators at N=1 must be bit-identical to the
//                    classic single-threaded path, and per-warehouse
//                    hashes at N=2 must match the N=1 reference with a
//                    clean auditor)
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include "asm/Assembler.h"
#include "core/VM.h"
#include "support/Timer.h"
#include "testing/ConsistencyAuditor.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace dchm;
using namespace dchm::bench;

namespace {

// The warehouse program. TxLogger is the mutable class: `mode` is the state
// field, log() branches on it (so specialization folds the branch), and the
// driver swings the logger between the hot states every 64 transactions —
// part I runs concurrently on thread-confined receivers. Warehouse.work is
// the per-mutator driver: it allocates everything it touches and never
// stores a static, per the guest threading contract of docs/threads.md.
const char *WarehouseSource = R"(
class TxLogger {
  field mode: i64
  field acc: i64
  ctor <init>(%m: i64) {
    putfield %this, TxLogger.mode, %m
    %z = consti 0
    putfield %this, TxLogger.acc, %z
    ret
  }
  method setMode(%m: i64) -> void {
    putfield %this, TxLogger.mode, %m
    ret
  }
  method log(%v: i64) -> void {
    %m = getfield %this, TxLogger.mode
    %a = getfield %this, TxLogger.acc
    %zero = consti 0
    %one = consti 1
    %t0 = cmpeq %m, %zero
    cbnz %t0, @m0
    %t1 = cmpeq %m, %one
    cbnz %t1, @m1
    %k2 = consti 7
    %v2 = mul %v, %k2
    %n2 = add %a, %v2
    putfield %this, TxLogger.acc, %n2
    ret
  @m0:
    %n0 = add %a, %v
    putfield %this, TxLogger.acc, %n0
    ret
  @m1:
    %k1 = consti 3
    %v1 = mul %v, %k1
    %n1 = add %a, %v1
    putfield %this, TxLogger.acc, %n1
    ret
  }
  method total() -> i64 {
    %a = getfield %this, TxLogger.acc
    ret %a
  }
}
class Warehouse {
  method work(%txns: i64) -> i64 static {
    %lg = new TxLogger
    %zero = consti 0
    callspecial TxLogger.<init>(%lg, %zero)
    %t = consti 0
    %one = consti 1
    %thirteen = consti 13
    %sixtyfour = consti 64
    %two = consti 2
  @head:
    %c = cmplt %t, %txns
    cbz %c, @done
    %v = rem %t, %thirteen
    callvirtual TxLogger.log(%lg, %v)
    %f = rem %t, %sixtyfour
    cbnz %f, @next
    %blk = div %t, %sixtyfour
    %m = rem %blk, %two
    callvirtual TxLogger.setMode(%lg, %m)
  @next:
    %t = add %t, %one
    br @head
  @done:
    %r = callvirtual TxLogger.total(%lg)
    print %r
    ret %r
  }
  method main() -> i64 static {
    %n = consti 2000
    %r = callstatic Warehouse.work(%n)
    ret %r
  }
}
)";

MutationPlan makeLoggerPlan(Program &P) {
  ProgramIds Ids(P);
  MutableClassPlan CP;
  CP.Cls = Ids.cls("TxLogger");
  CP.InstanceStateFields = {Ids.field("TxLogger", "mode")};
  HotState S0, S1;
  S0.InstanceVals = {valueI(0)};
  S1.InstanceVals = {valueI(1)};
  CP.HotStates = {S0, S1};
  CP.MutableMethods = {Ids.method("TxLogger", "log"),
                       Ids.method("TxLogger", "total")};
  MutationPlan Plan;
  Plan.Classes.push_back(CP);
  return Plan;
}

struct WarehouseRun {
  double WallSec = 0.0;
  std::vector<uint64_t> Hashes; ///< per-warehouse output hash
  uint64_t TotalCycles = 0;
  uint64_t AuditorViolations = 0;
};

/// One multi-warehouse run: classic warmup on context 0 (Warehouse.main —
/// compiles, promotes, installs specials), then Threads concurrent
/// warehouses of Txns transactions each, timed.
WarehouseRun runWarehouses(unsigned Threads, uint64_t Txns, bool Mutation,
                           bool Audit) {
  AssemblyResult R = assembleProgram(WarehouseSource);
  if (!R.ok()) {
    std::fprintf(stderr, "bench_threads: assembly failed: %s\n",
                 R.Error.c_str());
    std::exit(1);
  }
  Program &P = *R.P;
  MutationPlan Plan = makeLoggerPlan(P);

  VMOptions Opts;
  Opts.EnableMutation = Mutation;
  Opts.MutatorThreads = Threads;
  Opts.AuditConsistency = Audit ? HostToggle::On : HostToggle::Auto;
  VirtualMachine VM(P, Opts);
  if (Mutation)
    VM.setMutationPlan(&Plan);
  ConsistencyAuditor Auditor(VM);
  if (Audit)
    VM.setAuditHook(&Auditor);

  ProgramIds Ids(P);
  MethodId Main = Ids.method("Warehouse", "main");
  MethodId Work = Ids.method("Warehouse", "work");

  VM.call(Main, {});
  for (unsigned T = 0; T < Threads; ++T)
    VM.interp(T).clearOutput();

  Timer Wall;
  VM.runMutators([&](unsigned T) {
    VM.callOn(T, Work, {valueI(static_cast<int64_t>(Txns))});
  });
  WarehouseRun Out;
  Out.WallSec = Wall.seconds();
  for (unsigned T = 0; T < Threads; ++T)
    Out.Hashes.push_back(VM.interp(T).outputHash());
  Out.TotalCycles = VM.totalCycles();
  if (Audit) {
    Auditor.auditNow("end of warehouse run");
    Out.AuditorViolations = Auditor.violationCount();
  }
  return Out;
}

int check(uint64_t Txns) {
  // 1. The classic single-threaded path: plain call on context 0.
  uint64_t ClassicHash, ClassicCycles;
  {
    AssemblyResult R = assembleProgram(WarehouseSource);
    if (!R.ok()) {
      std::fprintf(stderr, "assembly failed: %s\n", R.Error.c_str());
      return 1;
    }
    MutationPlan Plan = makeLoggerPlan(*R.P);
    VMOptions Opts;
    VirtualMachine VM(*R.P, Opts);
    VM.setMutationPlan(&Plan);
    ProgramIds Ids(*R.P);
    VM.call(Ids.method("Warehouse", "main"), {});
    VM.interp().clearOutput();
    VM.call(Ids.method("Warehouse", "work"),
            {valueI(static_cast<int64_t>(Txns))});
    ClassicHash = VM.interp().outputHash();
    ClassicCycles = VM.totalCycles();
  }

  // 2. runMutators at N=1 must be that exact path (docs/threads.md §3).
  WarehouseRun One = runWarehouses(1, Txns, /*Mutation=*/true, /*Audit=*/true);
  if (One.Hashes[0] != ClassicHash || One.TotalCycles != ClassicCycles) {
    std::fprintf(stderr,
                 "FAIL: runMutators(1) diverged from the classic path "
                 "(hash %llx vs %llx, cycles %llu vs %llu)\n",
                 (unsigned long long)One.Hashes[0],
                 (unsigned long long)ClassicHash,
                 (unsigned long long)One.TotalCycles,
                 (unsigned long long)ClassicCycles);
    return 1;
  }

  // 3. Per-warehouse hashes at N=2, mutation off and on, must match the
  //    single-mutator reference; the auditor must stay clean.
  for (bool Mutation : {false, true}) {
    WarehouseRun Ref = runWarehouses(1, Txns, Mutation, /*Audit=*/true);
    WarehouseRun Two = runWarehouses(2, Txns, Mutation, /*Audit=*/true);
    for (unsigned T = 0; T < 2; ++T)
      if (Two.Hashes[T] != Ref.Hashes[0]) {
        std::fprintf(stderr,
                     "FAIL: warehouse %u hash diverged at N=2 (mutation %s)\n",
                     T, Mutation ? "on" : "off");
        return 1;
      }
    if (Ref.AuditorViolations || Two.AuditorViolations) {
      std::fprintf(stderr, "FAIL: auditor violations (mutation %s)\n",
                   Mutation ? "on" : "off");
      return 1;
    }
  }
  std::printf("bench_threads --check: classic-path identity at N=1, "
              "per-warehouse hashes stable at N=2, auditor clean\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Txns = 600000;
  bool Check = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--txns=", 0) == 0)
      Txns = std::stoull(A.substr(7));
    else if (A == "--check")
      Check = true;
    else {
      std::fprintf(stderr, "unknown flag %s\n", A.c_str());
      return 1;
    }
  }
  if (Check)
    return check(Txns / 10 ? Txns / 10 : 1);

  printHeader("threads", "Multi-mutator warehouse throughput (docs/threads.md)");
  unsigned HwThreads = std::thread::hardware_concurrency();
  std::printf("host hardware threads: %u, transactions/warehouse: %llu\n\n",
              HwThreads, (unsigned long long)Txns);
  std::printf("%-10s %-9s %12s %14s %9s\n", "mutators", "mutation", "wall (s)",
              "tx/sec", "scaling");

  JsonWriter J;
  J.beginObject();
  J.field("bench", "threads");
  J.field("txns_per_warehouse", (uint64_t)Txns);
  J.field("hardware_threads", (uint64_t)HwThreads);
  J.beginArray("runs");

  double Scaling4On = 0.0;
  for (bool Mutation : {false, true}) {
    double Tps1 = 0.0;
    uint64_t RefHash = 0;
    for (unsigned N : {1u, 2u, 4u, 8u}) {
      WarehouseRun Run = runWarehouses(N, Txns, Mutation, /*Audit=*/false);
      // Admissibility: every warehouse must have done the reference work.
      if (N == 1)
        RefHash = Run.Hashes[0];
      for (uint64_t H : Run.Hashes)
        if (H != RefHash) {
          std::fprintf(stderr, "FAIL: warehouse hash diverged at N=%u\n", N);
          return 1;
        }
      double Tps = static_cast<double>(N) * static_cast<double>(Txns) /
                   Run.WallSec;
      if (N == 1)
        Tps1 = Tps;
      double Scaling = Tps / Tps1;
      if (N == 4 && Mutation)
        Scaling4On = Scaling;
      std::printf("%-10u %-9s %12.3f %14.0f %8.2fx\n", N,
                  Mutation ? "on" : "off", Run.WallSec, Tps, Scaling);
      J.beginArrayObject();
      J.field("mutators", (uint64_t)N);
      J.field("mutation", Mutation);
      J.field("wall_sec", Run.WallSec);
      J.field("tx_per_sec", Tps);
      J.field("scaling_vs_1", Scaling);
      J.endObject();
    }
  }
  J.endArray();
  J.field("scaling_at_4_mutation_on", Scaling4On);
  bool ScalingMeasurable = HwThreads >= 4;
  J.field("scaling_measurable", ScalingMeasurable);
  J.endObject();
  J.writeFile("BENCH_threads.json");

  if (ScalingMeasurable) {
    std::printf("\nscaling at 4 mutators (mutation on): %.2fx (bar: >1.5x) — %s\n",
                Scaling4On, Scaling4On > 1.5 ? "PASS" : "FAIL");
    if (Scaling4On <= 1.5)
      return 1;
  } else {
    std::printf("\nscaling at 4 mutators (mutation on): %.2fx — not asserted, "
                "host has %u hardware thread(s)\n",
                Scaling4On, HwThreads);
  }
  std::printf("(BENCH_threads.json written)\n");
  return 0;
}
