//===-- bench/bench_fig09_speedup.cpp - Figure 9: overall speedups ------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Regenerates Figure 9: overall performance improvement of dynamic class
// hierarchy mutation over the unmodified VM for every benchmark.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"
#include "analysis/OlcAnalysis.h"

#include <cstdio>

using namespace dchm;

namespace {

/// The SPECjbb pair uses the paper's metric: steady-state warehouse
/// throughput (mean of the last three of eight windows), not end-to-end
/// cycles — warm-up compilation belongs to Figures 13-15, not Figure 9.
double jbbSteadyStateSpeedup(JbbVariant V) {
  auto W = makeJbb(V);
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(*W, Cfg);
  auto Run = [&](bool Mutation) {
    auto P = W->buildProgram();
    VMOptions Opts;
    Opts.EnableMutation = Mutation;
    Opts.HeapBytes = bench::heapBytesFor(W->name());
    // Same sparse (Jikes-timer-like) sampling as Figures 13/15, so this
    // bar and those curves come from identical configurations.
    Opts.Adaptive.SampleInterval = V == JbbVariant::Jbb2000 ? 70 : 25;
    VirtualMachine VM(*P, Opts);
    OlcDatabase Db;
    if (Mutation) {
      VM.setMutationPlan(&R.Plan);
      Db = analyzeObjectLifetimeConstants(*P, R.Plan);
      VM.setOlcDatabase(&Db);
    }
    W->initVm(VM);
    auto Ws = W->runWarehouseWindows(VM, 8, 3'000'000, 0);
    double S = 0;
    for (size_t I = Ws.size() - 3; I < Ws.size(); ++I)
      S += Ws[I].Throughput;
    return S / 3.0;
  };
  double Base = Run(false);
  double Mut = Run(true);
  return 100.0 * (Mut / Base - 1.0);
}

} // namespace

int main() {
  bench::printHeader("Figure 9",
                     "Overall performance improvement (speedup %, higher is "
                     "better; steady-state warehouse throughput for the "
                     "SPECjbb pair, as in the paper).");
  // Paper bar values (SalaryDB/jbb from the text; others read off Figure 9).
  const double Paper[] = {31.4, 15.0, 3.3, 2.9, 4.7, 4.5, 1.9};

  std::printf("%-12s | %9s | %9s | %s\n", "Program", "ours %", "paper %",
              "plan (classes/states, OLC fields)");
  std::printf("-------------+-----------+-----------+----------------------\n");
  size_t I = 0;
  for (auto &W : makeAllWorkloads()) {
    bench::Comparison C = bench::compareRuns(*W);
    double Ours = C.speedupPercent();
    if (C.Name == "SPECjbb2000")
      Ours = jbbSteadyStateSpeedup(JbbVariant::Jbb2000);
    else if (C.Name == "SPECjbb2005")
      Ours = jbbSteadyStateSpeedup(JbbVariant::Jbb2005);
    std::printf("%-12s | %9.2f | %9.1f | %zu/%zu, %zu\n", C.Name.c_str(),
                Ours, Paper[I++], C.Plan.Classes.size(),
                C.Plan.numHotStates(), C.Olc.Entries.size());
  }
  std::printf("\nShape check: SalaryDB largest; small apps single-digit; "
              "jbb2000 > jbb2005.\n");
  return 0;
}
