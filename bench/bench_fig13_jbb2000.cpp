//===-- bench/bench_fig13_jbb2000.cpp - Figure 13 -----------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Regenerates Figure 13: SPECjbb2000's per-warehouse throughput change due
// to mutation, one warehouse run eight times. Expected shape: warehouses 1-2
// dip (opt2 recompilation of mutable methods + specialized code generation),
// later warehouses show the steady-state gain.
//
//===----------------------------------------------------------------------===//

#include "JbbFigure.h"

using namespace dchm;

int main() {
  bench::printHeader("Figure 13",
                     "SPECjbb2000 throughput change due to mutation, per "
                     "warehouse window (8 windows).");
  bench::JbbFigureConfig Cfg;
  Cfg.Variant = JbbVariant::Jbb2000;
  Cfg.SampleInterval = 70;
  bench::runJbbFigure(Cfg);
  return 0;
}
