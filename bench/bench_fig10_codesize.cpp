//===-- bench/bench_fig10_codesize.cpp - Figure 10: code size increase --------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Regenerates Figure 10: increase of the code compiled by the optimization
// compiler when mutation is enabled (the extra specialized versions of
// mutable methods compiled at opt2).
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdio>

using namespace dchm;

int main() {
  bench::printHeader("Figure 10",
                     "Compiled code size increase due to mutation (the main "
                     "contribution is extra specialized versions at opt2).");
  std::printf("%-12s | %9s | %12s | %12s | %s\n", "Program", "increase",
              "base bytes", "extra bytes", "special versions");
  std::printf("-------------+-----------+--------------+--------------+------"
              "---\n");
  for (auto &W : makeAllWorkloads()) {
    bench::Comparison C = bench::compareRuns(*W);
    std::printf("%-12s | %8.2f%% | %12zu | %12zu | %u\n", C.Name.c_str(),
                C.codeSizeIncreasePercent(), C.Base.CodeBytes,
                C.Mut.CodeBytes - C.Base.CodeBytes,
                C.Mut.Adaptive.Recompilations);
  }
  std::printf("\nPaper: small everywhere (<8%% for the applications; our "
              "micro-scale programs have fewer methods, so the ratio runs a "
              "little higher on the microbenchmarks).\n");
  return 0;
}
