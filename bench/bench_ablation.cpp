//===-- bench/bench_ablation.cpp - Design-choice ablations ---------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Ablation study over the design choices DESIGN.md calls out:
//  - full system vs mutation without specialization inlining (OLC off),
//  - the k knob of the N > M + k inline-vs-specialize trade-off,
//  - accelerated vs sampled hotness detection.
// Run on SalaryDB (specialization-dominated) and SPECjbb2000 (inlining- and
// OLC-dominated), matching where the paper says each mechanism matters.
//
//===----------------------------------------------------------------------===//

#include "BenchHarness.h"

#include <cstdio>

using namespace dchm;

namespace {

struct AblationConfig {
  const char *Label;
  bool Mutation = true;
  bool SpecInlining = true;
  bool UseOlc = true;
  bool Accelerated = false;
  int TradeoffK = 0;
  bool GuardedInlining = false;
};

uint64_t runWith(Workload &W, const MutationPlan &Plan,
                 const AblationConfig &A) {
  auto P = W.buildProgram();
  VMOptions Opts;
  Opts.EnableMutation = A.Mutation;
  Opts.HeapBytes = bench::heapBytesFor(W.name());
  Opts.Inline.EnableSpecializationInlining = A.SpecInlining;
  Opts.Inline.TradeoffK = A.TradeoffK;
  Opts.Inline.EnableGuardedInlining = A.GuardedInlining;
  Opts.Adaptive.AcceleratedMutableHotness = A.Accelerated;
  VirtualMachine VM(*P, Opts);
  OlcDatabase Db;
  if (A.Mutation) {
    VM.setMutationPlan(&Plan);
    if (A.UseOlc) {
      Db = analyzeObjectLifetimeConstants(*P, Plan);
      VM.setOlcDatabase(&Db);
    }
  }
  W.drive(VM);
  return VM.metrics().TotalCycles;
}

void ablate(Workload &W) {
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(W, Cfg);

  const AblationConfig Configs[] = {
      {"baseline (no mutation)", false, false, false, false, 0},
      {"full system", true, true, true, false, 0},
      {"no OLC database", true, true, false, false, 0},
      {"no specialization inlining", true, false, false, false, 0},
      {"accelerated hotness", true, true, true, true, 0},
      {"trade-off k = -2 (inline-happy)", true, true, true, false, -2},
      {"trade-off k = +8 (specialize-happy)", true, true, true, false, 8},
      {"with guarded inlining", true, true, true, false, 0, true},
  };
  uint64_t Base = 0;
  std::printf("-- %s --\n", W.name().c_str());
  for (const AblationConfig &A : Configs) {
    uint64_t Cycles = runWith(W, R.Plan, A);
    if (Base == 0)
      Base = Cycles;
    std::printf("  %-38s %12llu cycles  (%+.2f%% vs baseline)\n", A.Label,
                static_cast<unsigned long long>(Cycles),
                100.0 * (static_cast<double>(Base) /
                             static_cast<double>(Cycles) -
                         1.0));
  }
  std::printf("\n");
}

} // namespace

int main() {
  bench::printHeader("Ablation",
                     "Contribution of each mechanism (positive = speedup over "
                     "the no-mutation baseline).");
  auto Salary = makeSalaryDb();
  ablate(*Salary);
  auto Jbb = makeJbb(JbbVariant::Jbb2000);
  ablate(*Jbb);
  return 0;
}
