#!/bin/sh
# Regenerates every table and figure of the paper and the repo's recorded
# outputs (test_output.txt, bench_output.txt).
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  case "$b" in *.a) continue;; esac
  echo "==== $(basename "$b") ===="
  "$b"
  echo
done 2>&1 | tee bench_output.txt
