#!/usr/bin/env bash
#===-- scripts/check_determinism.sh - Compile-pipeline determinism gate -----===#
#
# Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
# (Su & Lipasti, CGO 2006).
#
# Verifies the invariant of docs/compile_pipeline.md from the outside: the
# program output and every simulated counter printed by `dchm_run run` must
# be bit-identical across DCHM_ASYNC_COMPILE=ON/OFF and worker counts
# {1, 4}, and — modulo host-side code-byte accounting — across the
# specialization cache ON/OFF.
#
# Usage: scripts/check_determinism.sh [build-dir]
#   WORKLOADS="SalaryDB SPECjbb2000" SCALE=0.2 override the defaults.
#
#===---------------------------------------------------------------------===#
set -u

BUILD="${1:-build}"
RUN="$BUILD/tools/dchm_run"
if [ ! -x "$RUN" ]; then
  echo "error: $RUN not found or not executable (pass the build dir)" >&2
  exit 2
fi

WORKLOADS="${WORKLOADS:-SalaryDB SPECjbb2000}"
SCALE="${SCALE:-0.2}"
FAIL=0

# Wall time is the one legitimately nondeterministic line.
run_cfg() { # async threads cache workload extra-flags...
  local ASYNC="$1" THREADS="$2" CACHE="$3" W="$4"
  shift 4
  DCHM_ASYNC_COMPILE="$ASYNC" DCHM_COMPILE_THREADS="$THREADS" \
  DCHM_SPEC_CACHE="$CACHE" "$RUN" run "$W" --scale="$SCALE" "$@" |
    grep -v "wall time:"
}

check() { # label reference candidate
  if [ "$2" != "$3" ]; then
    echo "FAIL: $1 diverges"
    diff <(printf '%s\n' "$2") <(printf '%s\n' "$3") | head -20
    FAIL=1
  else
    echo "ok:   $1"
  fi
}

for W in $WORKLOADS; do
  for MODE in "" "--online"; do
    LABEL="$W${MODE:+ $MODE}"

    # Async/threads sweep, cache fixed on: everything must match, including
    # host-side code-byte accounting (async defers it, never changes it).
    REF="$(run_cfg OFF 1 ON "$W" $MODE)"
    for CFG in "ON 1" "ON 4"; do
      set -- $CFG
      OUT="$(run_cfg "$1" "$2" ON "$W" $MODE)"
      check "$LABEL async=$1 threads=$2" "$REF" "$OUT"
    done

    # Cache sweep, synchronous: simulated counters and output must match;
    # code bytes may legitimately shrink (deduplicated special bodies).
    REF_NOBYTES="$(printf '%s\n' "$REF" | grep -v "code bytes:")"
    OUT="$(run_cfg OFF 1 OFF "$W" $MODE | grep -v "code bytes:")"
    check "$LABEL spec-cache off" "$REF_NOBYTES" "$OUT"
  done
done

if [ "$FAIL" -ne 0 ]; then
  echo "determinism check FAILED" >&2
  exit 1
fi
echo "determinism check passed: output and simulated counts identical"
