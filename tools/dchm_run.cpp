//===-- tools/dchm_run.cpp - Command-line experiment runner -------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// A command-line driver for the library: list the Table 1 workloads, run any
// of them with mutation on/off/online, dump the derived mutation plan, or
// disassemble a method's bytecode and its compiled versions.
//
//   dchm_run list
//   dchm_run run <workload> [--no-mutation] [--online] [--scale=<f>]
//                           [--heap-mb=<n>] [--accelerated]
//   dchm_run plan <workload>
//   dchm_run disasm <workload> <Class.method> [--state=<k>]
//   dchm_run --print-env
//
//===----------------------------------------------------------------------===//

#include "analysis/OlcAnalysis.h"
#include "asm/Assembler.h"
#include "compiler/Passes.h"
#include "compiler/Specializer.h"
#include "online/OnlineController.h"
#include "support/Env.h"
#include "support/Timer.h"
#include "testing/ConsistencyAuditor.h"
#include "testing/ProgramGen.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <cstring>
#include <string>

using namespace dchm;

namespace {

std::unique_ptr<Workload> findWorkload(const std::string &Name) {
  for (auto &W : makeAllWorkloads())
    if (W->name() == Name)
      return std::move(W);
  return nullptr;
}

int cmdList() {
  std::printf("%-12s  %s\n", "name", "description");
  for (auto &W : makeAllWorkloads())
    std::printf("%-12s  %s\n", W->name().c_str(), W->description().c_str());
  return 0;
}

void printMetrics(const RunMetrics &M, double WallSec) {
  std::printf("  total cycles:      %llu\n",
              static_cast<unsigned long long>(M.TotalCycles));
  std::printf("    execution:       %llu\n",
              static_cast<unsigned long long>(M.ExecCycles));
  std::printf("    compilation:     %llu (special: %llu)\n",
              static_cast<unsigned long long>(M.CompileCycles),
              static_cast<unsigned long long>(M.SpecialCompileCycles));
  std::printf("    gc:              %llu (%llu collections)\n",
              static_cast<unsigned long long>(M.GcCycles),
              static_cast<unsigned long long>(M.GcCount));
  std::printf("    mutation:        %llu\n",
              static_cast<unsigned long long>(M.MutationCycles));
  std::printf("  code bytes:        %zu (special: %zu)\n", M.CodeBytes,
              M.SpecialCodeBytes);
  std::printf("  TIB bytes:         %zu class + %zu special\n",
              M.ClassTibBytes, M.SpecialTibBytes);
  std::printf("  TIB re-points:     %llu\n",
              static_cast<unsigned long long>(M.Mutation.ObjectTibSwings));
  std::printf("  interpreted insts: %llu in %llu invocations\n",
              static_cast<unsigned long long>(M.Insts),
              static_cast<unsigned long long>(M.Invocations));
  std::printf("  wall time:         %.3f s\n", WallSec);
}

int cmdRun(Workload &W, bool Mutation, bool Online, double Scale,
           size_t HeapMb, bool Accelerated) {
  auto P = W.buildProgram();
  VMOptions Opts;
  Opts.EnableMutation = Mutation;
  Opts.HeapBytes = HeapMb << 20;
  Opts.Adaptive.AcceleratedMutableHotness = Accelerated;
  VirtualMachine VM(*P, Opts);

  MutationPlan Plan;
  OlcDatabase Olc;
  std::unique_ptr<OnlineMutationController> Ctl;
  if (Mutation && Online) {
    OnlineMutationController::Config Cfg;
    Cfg.Analysis.HotStateMinFraction = 0.05;
    Ctl = std::make_unique<OnlineMutationController>(VM, Cfg);
    std::printf("running %s with ONLINE mutation (poll-driven)...\n",
                W.name().c_str());
    // The generic driver has no poll points; emulate them by splitting the
    // run into profile-scale slices.
    for (int Slice = 0; Slice < 10; ++Slice) {
      W.driveScaled(VM, Scale / 10.0);
      Ctl->poll();
    }
    std::printf("final phase: %s\n",
                Ctl->phase() == OnlineMutationController::Phase::Active
                    ? "active"
                    : "not activated");
  } else {
    if (Mutation) {
      OfflineConfig Cfg;
      Cfg.HotStateMinFraction = 0.05;
      OfflineResult R = runOfflinePipeline(W, Cfg);
      Plan = std::move(R.Plan);
      VM.setMutationPlan(&Plan);
      Olc = analyzeObjectLifetimeConstants(*P, Plan);
      VM.setOlcDatabase(&Olc);
      std::printf("running %s with mutation (plan: %zu classes, %zu hot "
                  "states, %zu OLC entries)...\n",
                  W.name().c_str(), Plan.Classes.size(), Plan.numHotStates(),
                  Olc.Entries.size());
    } else {
      std::printf("running %s without mutation...\n", W.name().c_str());
    }
    Timer T;
    W.driveScaled(VM, Scale);
    printMetrics(VM.metrics(), T.seconds());
    std::printf("  program output:    %s\n", VM.interp().output().c_str());
    return 0;
  }
  printMetrics(VM.metrics(), 0.0);
  std::printf("  program output:    %s\n", VM.interp().output().c_str());
  return 0;
}

int cmdPlan(Workload &W) {
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(W, Cfg);
  auto P = W.buildProgram();
  std::printf("mutation plan for %s:\n", W.name().c_str());
  for (const MutableClassPlan &CP : R.Plan.Classes) {
    std::printf("  mutable class %s\n", P->cls(CP.Cls).Name.c_str());
    std::printf("    instance state fields:");
    for (FieldId F : CP.InstanceStateFields)
      std::printf(" %s", P->field(F).Name.c_str());
    std::printf("\n    static state fields:");
    for (FieldId F : CP.StaticStateFields)
      std::printf(" %s", P->field(F).Name.c_str());
    std::printf("\n    mutable methods:");
    for (MethodId M : CP.MutableMethods)
      std::printf(" %s", P->method(M).Name.c_str());
    std::printf("\n    hot states:\n");
    for (const HotState &HS : CP.HotStates) {
      std::printf("      [%4.1f%%] ", 100.0 * HS.Weight);
      for (size_t I = 0; I < HS.InstanceVals.size(); ++I)
        std::printf("%s=%lld ",
                    P->field(CP.InstanceStateFields[I]).Name.c_str(),
                    static_cast<long long>(HS.InstanceVals[I].I));
      for (size_t I = 0; I < HS.StaticVals.size(); ++I)
        std::printf("%s=%lld ",
                    P->field(CP.StaticStateFields[I]).Name.c_str(),
                    static_cast<long long>(HS.StaticVals[I].I));
      std::printf("\n");
    }
  }
  OlcDatabase Db = analyzeObjectLifetimeConstants(*P, R.Plan);
  std::printf("object lifetime constants:\n");
  for (const OlcEntry &E : Db.Entries) {
    std::printf("  via %s.%s:",
                P->cls(P->field(E.RefField).Owner).Name.c_str(),
                P->field(E.RefField).Name.c_str());
    for (const OlcConstant &C : E.Constants)
      std::printf(" %s=%lld", P->field(C.TargetField).Name.c_str(),
                  static_cast<long long>(C.V.I));
    std::printf("\n");
  }
  return 0;
}

int cmdDisasm(Workload &W, const std::string &Spec, int State) {
  auto Dot = Spec.find('.');
  if (Dot == std::string::npos) {
    std::fprintf(stderr, "disasm expects Class.method\n");
    return 1;
  }
  auto P = W.buildProgram();
  ClassId C = P->findClass(Spec.substr(0, Dot));
  if (C == NoClassId) {
    std::fprintf(stderr, "no class named %s\n", Spec.substr(0, Dot).c_str());
    return 1;
  }
  MethodId M = P->findMethod(C, Spec.substr(Dot + 1));
  if (M == NoMethodId) {
    std::fprintf(stderr, "no method named %s\n", Spec.substr(Dot + 1).c_str());
    return 1;
  }
  const MethodInfo &MI = P->method(M);
  std::printf("bytecode:\n%s\n", MI.Bytecode.toString().c_str());
  IRFunction Opt = MI.Bytecode;
  runOptPipeline(Opt);
  std::printf("after the opt pipeline:\n%s\n", Opt.toString().c_str());
  if (State >= 0) {
    OfflineConfig Cfg;
    Cfg.HotStateMinFraction = 0.05;
    OfflineResult R = runOfflinePipeline(W, Cfg);
    const MutableClassPlan *CP = R.Plan.planFor(MI.Owner);
    if (!CP || static_cast<size_t>(State) >= CP->HotStates.size()) {
      std::fprintf(stderr, "no hot state %d for this class\n", State);
      return 1;
    }
    IRFunction Spec2 = MI.Bytecode;
    specializeForState(Spec2, MI, *CP, static_cast<size_t>(State));
    runOptPipeline(Spec2);
    std::printf("specialized for hot state %d:\n%s\n", State,
                Spec2.toString().c_str());
  }
  return 0;
}

} // namespace

/// exec: assemble a .mvm file and invoke a static entry method. With
/// --mutate the file's #! plan directives (testing/ProgramGen) are parsed
/// and installed; with --audit a ConsistencyAuditor rides along and the run
/// fails on any invariant violation — together these replay fuzzer
/// artifacts byte-for-byte (docs/fuzzing.md). Segmented artifacts
/// (#!segments) replay the retire / re-install harness. All failure paths
/// are recoverable diagnostics (exit 1), never aborts.
int cmdExec(const std::string &Path, const std::string &Entry,
            const std::vector<int64_t> &MainArgs, bool Mutate, bool AuditOn) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot open %s\n", Path.c_str());
    return 1;
  }
  std::stringstream Ss;
  Ss << In.rdbuf();
  AssemblyResult R = assembleProgram(Ss.str());
  if (!R.ok()) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), R.Error.c_str());
    return 1;
  }
  Program &P = *R.P;
  MethodId M = NoMethodId;
  if (auto Dot = Entry.find('.'); Dot != std::string::npos) {
    ClassId C = P.findClass(Entry.substr(0, Dot));
    if (C != NoClassId)
      M = P.findMethod(C, Entry.substr(Dot + 1));
  } else {
    for (size_t C = 0; C < P.numClasses() && M == NoMethodId; ++C)
      M = P.findMethod(static_cast<ClassId>(C), Entry);
  }
  if (M == NoMethodId) {
    std::fprintf(stderr, "no entry method '%s'\n", Entry.c_str());
    return 1;
  }
  if (!P.method(M).Flags.IsStatic) {
    std::fprintf(stderr, "entry method must be static\n");
    return 1;
  }
  std::vector<Value> Args;
  for (int64_t A : MainArgs)
    Args.push_back(valueI(A));
  if (Args.size() != P.method(M).ParamTys.size()) {
    std::fprintf(stderr, "entry expects %zu argument(s), got %zu\n",
                 P.method(M).ParamTys.size(), Args.size());
    return 1;
  }
  GenPlanInfo Gen;
  if (Mutate) {
    std::string Err;
    if (!ProgramGen::parsePlanDirectives(Ss.str(), P, Gen, Err)) {
      std::fprintf(stderr, "%s: %s\n", Path.c_str(), Err.c_str());
      return 1;
    }
  }
  VMOptions Opts;
  Opts.EnableMutation = Mutate && !Gen.Plan.empty();
  if (Gen.Opt1)
    Opts.Adaptive.Opt1Threshold = Gen.Opt1;
  if (Gen.Opt2)
    Opts.Adaptive.Opt2Threshold = Gen.Opt2;
  if (AuditOn)
    Opts.AuditConsistency = HostToggle::On;
  VirtualMachine VM(P, Opts);
  if (Opts.EnableMutation)
    VM.setMutationPlan(&Gen.Plan);
  ConsistencyAuditor Auditor(VM);
  if (AuditOn)
    VM.setAuditHook(&Auditor);
  Value Result = valueI(0);
  if (Mutate && Gen.Segments > 1 && Args.empty()) {
    // Segmented artifact: replay the fuzzer's harness exactly — drive the
    // segments one at a time, retiring the plan and re-installing it at the
    // #!segments boundaries instead of calling main().
    ClassId MainCls = P.findClass("Main");
    for (int K = 0; K < Gen.Segments; ++K) {
      MethodId Seg = MainCls != NoClassId
                         ? P.findMethod(MainCls, "seg" + std::to_string(K))
                         : NoMethodId;
      if (Seg == NoMethodId) {
        std::fprintf(stderr, "%s: no Main.seg%d for #!segments replay\n",
                     Path.c_str(), K);
        return 1;
      }
      Expected<Value> V = VM.run(Seg, {});
      if (!V) {
        std::fprintf(stderr, "%s: %s\n", Path.c_str(),
                     V.takeError().message().c_str());
        return 1;
      }
      Result = *V;
      if (!Opts.EnableMutation)
        continue;
      if (K == Gen.RetireAfter)
        VM.retireMutationPlan();
      if (K == Gen.ReinstallAfter)
        VM.setMutationPlan(&Gen.Plan); // re-install migrates live objects
    }
  } else {
    Expected<Value> V = VM.run(M, Args);
    if (!V) {
      std::fprintf(stderr, "%s: %s\n", Path.c_str(),
                   V.takeError().message().c_str());
      return 1;
    }
    Result = *V;
  }
  if (!VM.interp().output().empty())
    std::printf("output: %s\n", VM.interp().output().c_str());
  if (P.method(M).RetTy == Type::I64)
    std::printf("result: %lld\n", static_cast<long long>(Result.I));
  else if (P.method(M).RetTy == Type::F64)
    std::printf("result: %g\n", Result.F);
  std::printf("cycles: %llu\n",
              static_cast<unsigned long long>(VM.totalCycles()));
  if (AuditOn) {
    std::printf("%s", Auditor.report().c_str());
    if (!Auditor.clean())
      return 1;
  }
  return 0;
}

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr,
                 "usage: dchm_run list\n"
                 "       dchm_run run <workload> [--no-mutation] [--online]\n"
                 "                [--scale=<f>] [--heap-mb=<n>] [--accelerated]\n"
                 "       dchm_run plan <workload>\n"
                 "       dchm_run disasm <workload> <Class.method> [--state=<k>]\n"
                 "       dchm_run exec <file.mvm> [--entry=Class.method]\n"
                 "                [--mutate] [--audit] [int args...]\n"
                 "       dchm_run --print-env\n");
    return 1;
  }
  std::string Cmd = Argv[1];
  if (Cmd == "list")
    return cmdList();
  if (Cmd == "--print-env" || Cmd == "print-env") {
    std::printf("%s", env::printTable().c_str());
    return 0;
  }
  if (Cmd == "exec") {
    if (Argc < 3) {
      std::fprintf(stderr, "exec needs a .mvm file\n");
      return 1;
    }
    std::string Entry = "main";
    std::vector<int64_t> MainArgs;
    bool Mutate = false, AuditOn = false;
    for (int I = 3; I < Argc; ++I) {
      std::string A = Argv[I];
      if (A.rfind("--entry=", 0) == 0)
        Entry = A.substr(8);
      else if (A == "--mutate")
        Mutate = true;
      else if (A == "--audit")
        AuditOn = true;
      else
        MainArgs.push_back(std::stoll(A));
    }
    return cmdExec(Argv[2], Entry, MainArgs, Mutate, AuditOn);
  }
  if (Argc < 3) {
    std::fprintf(stderr, "%s needs a workload name (try 'list')\n",
                 Cmd.c_str());
    return 1;
  }
  auto W = findWorkload(Argv[2]);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s' (try 'list')\n", Argv[2]);
    return 1;
  }

  bool Mutation = true, Online = false, Accelerated = false;
  double Scale = 1.0;
  size_t HeapMb = 50;
  int State = -1;
  std::string Spec;
  for (int I = 3; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--no-mutation")
      Mutation = false;
    else if (A == "--online")
      Online = true;
    else if (A == "--accelerated")
      Accelerated = true;
    else if (A.rfind("--scale=", 0) == 0)
      Scale = std::stod(A.substr(8));
    else if (A.rfind("--heap-mb=", 0) == 0)
      HeapMb = static_cast<size_t>(std::stoul(A.substr(10)));
    else if (A.rfind("--state=", 0) == 0)
      State = std::stoi(A.substr(8));
    else if (A[0] != '-')
      Spec = A;
    else {
      std::fprintf(stderr, "unknown flag %s\n", A.c_str());
      return 1;
    }
  }

  if (Cmd == "run")
    return cmdRun(*W, Mutation, Online, Scale, HeapMb, Accelerated);
  if (Cmd == "plan")
    return cmdPlan(*W);
  if (Cmd == "disasm")
    return cmdDisasm(*W, Spec, State);
  std::fprintf(stderr, "unknown command '%s'\n", Cmd.c_str());
  return 1;
}
