//===-- tools/dchm_fuzz.cpp - Differential mutation fuzzer --------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Differential fuzzer over generated MVM programs (testing/ProgramGen):
// every program runs through a matrix of host configurations (dispatch
// strategy x background-compile workers x specialization cache), with
// mutation off and on, asserting
//
//  - bit-identical output and simulated cycle counters across every host
//    configuration within a mutation group (the PR 2 determinism contract),
//  - identical program output with mutation off and on (the paper's
//    transparency guarantee), and
//  - zero consistency-auditor violations in every run.
//
// Segmented programs (#!segments directive) are driven one segment at a
// time, retiring the mutation plan and later re-installing it at the
// directive-specified boundaries; output must still match the mutation-off
// run and the straight-line main() rendering.
//
// Failures serialize the offending program to fuzz-fail-<seed>.mvm, shrink
// it with the greedy delta-minimizer, and print a dchm_run replay line.
// Injection modes (--inject-skip-tib / --inject-skip-code /
// --inject-partial-retire) flip one MutationDebugFlags fault on and require
// the auditor to catch the break, replaying from the serialized artifact to
// prove reproduction. --malformed=<n> corrupts each generated program
// deterministically and asserts the toolchain returns diagnostics instead
// of aborting the process.
//
// --threads switches to the multi-mutator dimension: each program's
// Main.main runs once on context 0 (the classic phase), then Main.tmain —
// rendered by ProgramGen to obey the guest threading contract — runs on 1,
// 2, and 4 concurrent mutators against the same Program/Heap. Every
// mutator's output hash must equal the single-mutator reference, and the
// consistency auditor must stay clean in every run (docs/threads.md).
//
//   dchm_fuzz [--n=<programs>] [--seed=<base>] [--stride=<k>]
//             [--full-matrix] [--threads] [--inject-skip-tib]
//             [--inject-skip-code] [--inject-partial-retire]
//             [--malformed=<n>]
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "testing/ConsistencyAuditor.h"
#include "testing/ProgramGen.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

using namespace dchm;

namespace {

struct HostConfig {
  const char *Name;
  DispatchMode Dispatch;
  bool Async = false;
  unsigned Threads = 1;
  bool Cache = true;
  bool InlineCaches = true;
  bool FrameArena = true;
};

const HostConfig SmokeMatrix[] = {
    {"switch/sync/cache-off", DispatchMode::Switch, false, 1, false, true,
     true},
    {"threaded/sync/cache-on", DispatchMode::Threaded, false, 1, true, false,
     false},
    {"switch/async1/cache-on", DispatchMode::Switch, true, 1, true, true,
     false},
    {"threaded/async2/cache-off", DispatchMode::Threaded, true, 2, false,
     false, true},
    {"threaded/async4/cache-on", DispatchMode::Threaded, true, 4, true, true,
     true},
};

std::vector<HostConfig> fullMatrix() {
  std::vector<HostConfig> M;
  static std::vector<std::string> Names; // keep c_str()s alive
  Names.clear();
  Names.reserve(64);
  for (DispatchMode D : {DispatchMode::Switch, DispatchMode::Threaded})
    for (unsigned Workers : {0u, 1u, 2u, 4u})
      for (bool Cache : {false, true}) {
        Names.push_back(std::string(D == DispatchMode::Switch ? "switch"
                                                              : "threaded") +
                        "/async" + std::to_string(Workers) +
                        (Cache ? "/cache-on" : "/cache-off"));
        M.push_back({Names.back().c_str(), D, Workers != 0,
                     Workers ? Workers : 1, Cache, true, true});
      }
  return M;
}

struct RunOutcome {
  bool Ok = false;
  std::string Error;
  std::string Output;
  int64_t Result = 0;
  RunMetrics M;
  uint64_t Violations = 0;
  std::string AuditReport;
  /// Objects sitting on special TIBs at the moment retirePlan ran (0 when
  /// the program is not segmented). Injection modes use it to decide
  /// whether a skipped retirement swing could even strand anything.
  uint64_t OnSpecialAtRetire = 0;
};

struct InjectFlags {
  bool SkipTibSwing = false;
  bool SkipCodePointerUpdate = false;
  bool SkipRetireSwing = false;
  bool any() const {
    return SkipTibSwing || SkipCodePointerUpdate || SkipRetireSwing;
  }
};

RunOutcome runOne(const std::string &Source, const HostConfig &HC,
                  bool Mutate, uint64_t Stride, InjectFlags Inject) {
  RunOutcome Out;
  AssemblyResult R = assembleProgram(Source);
  if (!R.ok()) {
    Out.Error = "assembly failed: " + R.Error;
    return Out;
  }
  Program &P = *R.P;
  GenPlanInfo Gen;
  std::string Err;
  if (!ProgramGen::parsePlanDirectives(Source, P, Gen, Err)) {
    Out.Error = "plan directives failed: " + Err;
    return Out;
  }
  ClassId MainCls = P.findClass("Main");
  MethodId Entry =
      MainCls != NoClassId ? P.findMethod(MainCls, "main") : NoMethodId;
  if (Entry == NoMethodId) {
    Out.Error = "no Main.main";
    return Out;
  }

  VMOptions Opts;
  Opts.EnableMutation = Mutate && !Gen.Plan.empty();
  if (Gen.Opt1)
    Opts.Adaptive.Opt1Threshold = Gen.Opt1;
  if (Gen.Opt2)
    Opts.Adaptive.Opt2Threshold = Gen.Opt2;
  Opts.Dispatch = HC.Dispatch;
  Opts.AsyncCompile = HC.Async ? HostToggle::On : HostToggle::Off;
  Opts.CompileThreads = HC.Threads;
  Opts.SpecializationCache = HC.Cache ? HostToggle::On : HostToggle::Off;
  Opts.InlineCaches = HC.InlineCaches;
  Opts.FrameArena = HC.FrameArena;
  Opts.AuditConsistency = HostToggle::On;

  VirtualMachine VM(P, Opts);
  if (Opts.EnableMutation)
    VM.setMutationPlan(&Gen.Plan);
  VM.mutation().debugFlags().SkipTibSwing = Inject.SkipTibSwing;
  VM.mutation().debugFlags().SkipCodePointerUpdate =
      Inject.SkipCodePointerUpdate;
  VM.mutation().debugFlags().SkipRetireSwing = Inject.SkipRetireSwing;
  ConsistencyAuditor Auditor(VM, Stride);
  VM.setAuditHook(&Auditor);

  Value Result = valueI(0);
  if (Gen.Segments > 1) {
    // Drive the segments one by one (mutation off too, so both groups run
    // the same code path), retiring and re-installing the plan at the
    // directive boundaries when mutation is on. Segments communicate
    // through Main statics, so this is output-identical to main().
    std::vector<MethodId> Segs;
    for (int K = 0; K < Gen.Segments; ++K) {
      MethodId S = P.findMethod(MainCls, "seg" + std::to_string(K));
      if (S == NoMethodId) {
        Out.Error = "no Main.seg" + std::to_string(K);
        return Out;
      }
      Segs.push_back(S);
    }
    for (int K = 0; K < Gen.Segments; ++K) {
      Result = VM.call(Segs[static_cast<size_t>(K)], {});
      if (!Opts.EnableMutation)
        continue;
      if (K == Gen.RetireAfter) {
        VM.heap().forEachObject([&](Object *O) {
          if (!O->IsArray && O->Tib && O->Tib->isSpecial())
            ++Out.OnSpecialAtRetire;
        });
        VM.retireMutationPlan();
      }
      if (K == Gen.ReinstallAfter)
        VM.setMutationPlan(&Gen.Plan); // re-install migrates live objects
    }
  } else {
    Result = VM.call(Entry, {});
  }
  Auditor.auditNow("end of run"); // final pass after the last transition
  Out.M = VM.metrics();
  Out.Output = VM.interp().output();
  Out.Result = Result.I;
  Out.Violations = Auditor.violationCount();
  Out.AuditReport = Auditor.report();
  Out.Ok = true;
  return Out;
}

/// The simulated-state fingerprint that must be bit-identical across host
/// configurations (dispatch, workers, caches change wall time only).
std::string fingerprint(const RunOutcome &O) {
  std::ostringstream S;
  S << "result=" << O.Result << " hash=" << O.M.OutputHash
    << " insts=" << O.M.Insts << " invocations=" << O.M.Invocations
    << " exec=" << O.M.ExecCycles << " compile=" << O.M.CompileCycles
    << " special=" << O.M.SpecialCompileCycles << " gc=" << O.M.GcCycles
    << " gcN=" << O.M.GcCount << " mut=" << O.M.MutationCycles
    << " total=" << O.M.TotalCycles
    << " swings=" << O.M.Mutation.ObjectTibSwings
    << " repoints=" << O.M.Mutation.CodePointerUpdates
    << " requests=" << O.M.SpecialCompileRequests;
  return S.str();
}

void writeArtifact(const std::string &Path, const std::string &Source) {
  std::ofstream Out(Path);
  Out << Source;
}

/// Deterministically damages a well-formed program: the corruption kind and
/// position come from the seed, so failures replay. The result may still be
/// valid (duplicating a comment line, say) — the assertion is only that the
/// toolchain answers with a diagnostic or a program, never an abort.
std::string corruptSource(const std::string &Source, Rng &R) {
  std::string S = Source;
  auto LineBounds = [&](size_t Pos, size_t &B, size_t &E) {
    size_t Nl = S.rfind('\n', Pos);
    B = Nl == std::string::npos ? 0 : Nl + 1;
    Nl = S.find('\n', Pos);
    E = Nl == std::string::npos ? S.size() : Nl + 1;
  };
  switch (R.nextBelow(6)) {
  case 0: { // drop a whole line (missing ret, missing field, ...)
    size_t B, E;
    LineBounds(R.nextBelow(S.size()), B, E);
    S.erase(B, E - B);
    break;
  }
  case 1: // truncate mid-token
    S.resize(R.nextBelow(S.size()));
    break;
  case 2: { // duplicate a line (redefinitions, duplicate labels)
    size_t B, E;
    LineBounds(R.nextBelow(S.size()), B, E);
    S.insert(B, S.substr(B, E - B));
    break;
  }
  case 3: { // bogus type token
    size_t P = S.find("i64");
    if (P != std::string::npos)
      S.replace(P, 3, "i6F");
    break;
  }
  case 4: { // garble a plan directive (assembles; directive parse must fail)
    size_t P = S.find("#!");
    if (P != std::string::npos)
      S.insert(P + 2, "zz-");
    break;
  }
  case 5: { // splice random bytes into the middle
    size_t P = R.nextBelow(S.size());
    S.insert(P, "\x01%%\xff @");
    break;
  }
  }
  return S;
}

/// --malformed mode: corrupt N generated programs and require the
/// assembler / directive parser to reject or accept them gracefully.
/// Surviving the loop without SIGABRT *is* the property under test.
int runMalformed(uint64_t N, uint64_t SeedBase) {
  uint64_t Rejected = 0, Accepted = 0;
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t Seed = SeedBase + I;
    ProgramGen G(Seed);
    std::string Source = G.generate();
    Rng R(Seed * 2654435761ull + 17);
    std::string Corrupt = corruptSource(Source, R);
    AssemblyResult AR = assembleProgram(Corrupt);
    if (!AR.ok()) {
      if (AR.Error.empty()) {
        std::fprintf(stderr,
                     "FAIL seed=%llu: rejection carried no diagnostic\n",
                     static_cast<unsigned long long>(Seed));
        return 1;
      }
      ++Rejected;
      continue;
    }
    // Still assembled — the directive parser must also stay recoverable.
    GenPlanInfo Gen;
    std::string Err;
    ProgramGen::parsePlanDirectives(Corrupt, *AR.P, Gen, Err);
    ++Accepted;
  }
  std::printf("fuzz: %llu corrupted programs, %llu rejected with "
              "diagnostics, %llu still well-formed; no aborts\n",
              static_cast<unsigned long long>(N),
              static_cast<unsigned long long>(Rejected),
              static_cast<unsigned long long>(Accepted));
  return 0;
}

/// One multi-mutator run: Main.main on context 0, then Main.tmain on TN
/// concurrent mutators. Hashes[T] is mutator T's output hash over its own
/// tmain stream (context 0's main-phase output is cleared first).
struct ThreadedOutcome {
  bool Ok = false;
  std::string Error;
  std::vector<uint64_t> Hashes;
  uint64_t Violations = 0;
  std::string AuditReport;
};

ThreadedOutcome runThreaded(const std::string &Source, unsigned TN,
                            uint64_t Stride) {
  ThreadedOutcome Out;
  AssemblyResult R = assembleProgram(Source);
  if (!R.ok()) {
    Out.Error = "assembly failed: " + R.Error;
    return Out;
  }
  Program &P = *R.P;
  GenPlanInfo Gen;
  std::string Err;
  if (!ProgramGen::parsePlanDirectives(Source, P, Gen, Err)) {
    Out.Error = "plan directives failed: " + Err;
    return Out;
  }
  ClassId MainCls = P.findClass("Main");
  MethodId Entry =
      MainCls != NoClassId ? P.findMethod(MainCls, "main") : NoMethodId;
  MethodId TEntry =
      MainCls != NoClassId ? P.findMethod(MainCls, "tmain") : NoMethodId;
  if (Entry == NoMethodId || TEntry == NoMethodId) {
    Out.Error = "no Main.main / Main.tmain";
    return Out;
  }

  VMOptions Opts;
  Opts.EnableMutation = !Gen.Plan.empty();
  if (Gen.Opt1)
    Opts.Adaptive.Opt1Threshold = Gen.Opt1;
  if (Gen.Opt2)
    Opts.Adaptive.Opt2Threshold = Gen.Opt2;
  Opts.AuditConsistency = HostToggle::On;
  Opts.MutatorThreads = TN;

  VirtualMachine VM(P, Opts);
  if (Opts.EnableMutation)
    VM.setMutationPlan(&Gen.Plan);
  ConsistencyAuditor Auditor(VM, Stride);
  VM.setAuditHook(&Auditor);

  // Phase 1 — the classic workload on context 0, before any mutator thread
  // exists: swings states, compiles specials, sets the statics tmain may
  // read.
  VM.call(Entry, {});
  // Phase 2 — the thread-safe driver on TN concurrent mutators. Output
  // streams restart at the phase boundary so each hash covers tmain alone.
  for (unsigned T = 0; T < TN; ++T)
    VM.interp(T).clearOutput();
  VM.runMutators([&](unsigned T) { VM.callOn(T, TEntry, {}); });

  Out.Hashes.resize(TN);
  for (unsigned T = 0; T < TN; ++T)
    Out.Hashes[T] = VM.interp(T).outputHash();
  Auditor.auditNow("end of threaded run");
  Out.Violations = Auditor.violationCount();
  Out.AuditReport = Auditor.report();
  Out.Ok = true;
  return Out;
}

int reportFailure(ProgramGen &G, uint64_t Seed, const std::string &Source,
                  const std::string &Why,
                  const std::function<bool(const std::string &)> &StillFails);

/// --threads mode: per-thread hash equivalence against the single-mutator
/// reference at 2 and 4 mutators, auditor clean throughout.
int runThreadsDimension(uint64_t N, uint64_t SeedBase, uint64_t Stride) {
  uint64_t Runs = 0;
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t Seed = SeedBase + I;
    ProgramGen G(Seed);
    std::string Source = G.generate();

    ThreadedOutcome Ref = runThreaded(Source, 1, Stride);
    ++Runs;
    std::string Why;
    if (!Ref.Ok)
      Why = Ref.Error;
    else if (Ref.Violations)
      Why = "auditor violations (1 mutator):\n" + Ref.AuditReport;
    for (unsigned TN : {2u, 4u}) {
      if (!Why.empty())
        break;
      ThreadedOutcome O = runThreaded(Source, TN, Stride);
      ++Runs;
      if (!O.Ok) {
        Why = O.Error;
      } else if (O.Violations) {
        Why = "auditor violations (" + std::to_string(TN) +
              " mutators):\n" + O.AuditReport;
      } else {
        for (unsigned T = 0; T < TN; ++T)
          if (O.Hashes[T] != Ref.Hashes[0]) {
            Why = "mutator " + std::to_string(T) + " of " +
                  std::to_string(TN) +
                  " diverged from the single-mutator tmain stream";
            break;
          }
      }
    }
    if (!Why.empty()) {
      return reportFailure(G, Seed, Source, Why,
                           [&](const std::string &S) {
                             ThreadedOutcome A = runThreaded(S, 1, Stride);
                             if (!A.Ok || A.Violations)
                               return true;
                             for (unsigned TN : {2u, 4u}) {
                               ThreadedOutcome B = runThreaded(S, TN, Stride);
                               if (!B.Ok || B.Violations)
                                 return true;
                               for (uint64_t H : B.Hashes)
                                 if (H != A.Hashes[0])
                                   return true;
                             }
                             return false;
                           });
    }
  }
  std::printf("fuzz: %llu programs, %llu runs, threads dimension {1,2,4}: "
              "all per-thread streams deterministic, auditor clean\n",
              static_cast<unsigned long long>(N),
              static_cast<unsigned long long>(Runs));
  return 0;
}

int reportFailure(ProgramGen &G, uint64_t Seed, const std::string &Source,
                  const std::string &Why,
                  const std::function<bool(const std::string &)> &StillFails) {
  std::string Path = "fuzz-fail-" + std::to_string(Seed) + ".mvm";
  writeArtifact(Path, Source);
  std::fprintf(stderr, "FAIL seed=%llu: %s\n  artifact: %s\n",
               static_cast<unsigned long long>(Seed), Why.c_str(),
               Path.c_str());
  std::string Min = G.minimize(StillFails);
  std::string MinPath = "fuzz-fail-" + std::to_string(Seed) + ".min.mvm";
  writeArtifact(MinPath, Min);
  std::fprintf(stderr,
               "  minimized: %s\n  replay: dchm_run exec %s "
               "--entry=Main.main --mutate --audit\n",
               MinPath.c_str(), MinPath.c_str());
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t N = 50, SeedBase = 1, Stride = 4, Malformed = 0;
  bool FullMatrix = false, ThreadsDim = false;
  InjectFlags Inject;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--n=", 0) == 0)
      N = std::stoull(A.substr(4));
    else if (A.rfind("--seed=", 0) == 0)
      SeedBase = std::stoull(A.substr(7));
    else if (A.rfind("--stride=", 0) == 0)
      Stride = std::stoull(A.substr(9));
    else if (A.rfind("--malformed=", 0) == 0)
      Malformed = std::stoull(A.substr(12));
    else if (A == "--full-matrix")
      FullMatrix = true;
    else if (A == "--threads")
      ThreadsDim = true;
    else if (A == "--inject-skip-tib")
      Inject.SkipTibSwing = true;
    else if (A == "--inject-skip-code")
      Inject.SkipCodePointerUpdate = true;
    else if (A == "--inject-partial-retire")
      Inject.SkipRetireSwing = true;
    else {
      std::fprintf(stderr, "unknown flag %s\n", A.c_str());
      return 1;
    }
  }

  if (Malformed)
    return runMalformed(Malformed, SeedBase);
  if (ThreadsDim)
    return runThreadsDimension(N, SeedBase, Stride);

  std::vector<HostConfig> Matrix;
  if (FullMatrix)
    Matrix = fullMatrix();
  else
    Matrix.assign(std::begin(SmokeMatrix), std::end(SmokeMatrix));

  uint64_t Runs = 0;
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t Seed = SeedBase + I;
    ProgramGen G(Seed);
    std::string Source = G.generate();

    if (Inject.any()) {
      // Fault injection needs part I swings to actually happen, so skip
      // the static-only flavor for family 0 (no object ever swings there).
      if ((Inject.SkipTibSwing || Inject.SkipRetireSwing) &&
          G.model().Families[0].StaticOnlyPlan)
        continue;
      // A skipped retirement swing only strands something when the program
      // actually retires mid-run, i.e. is segmented.
      if (Inject.SkipRetireSwing && G.model().Segments <= 1)
        continue;
      // Prove the auditor catches the break *from the serialized artifact*:
      // write the program out, read it back, and run that byte stream.
      std::string Path = "fuzz-inject-" + std::to_string(Seed) + ".mvm";
      writeArtifact(Path, Source);
      std::ifstream In(Path);
      std::stringstream Ss;
      Ss << In.rdbuf();
      RunOutcome Broken = runOne(Ss.str(), SmokeMatrix[1], /*Mutate=*/true,
                                 Stride, Inject);
      ++Runs;
      if (!Broken.Ok) {
        std::fprintf(stderr, "FAIL seed=%llu: %s\n",
                     static_cast<unsigned long long>(Seed),
                     Broken.Error.c_str());
        return 1;
      }
      if (Inject.SkipRetireSwing && Broken.OnSpecialAtRetire == 0) {
        // Nothing was on a special TIB when the plan retired, so the
        // skipped swing had nothing to strand: no violation expected.
        std::remove(Path.c_str());
        continue;
      }
      if (Broken.Violations == 0) {
        std::fprintf(stderr,
                     "FAIL seed=%llu: injected fault not caught by the "
                     "auditor (artifact: %s)\n",
                     static_cast<unsigned long long>(Seed), Path.c_str());
        return 1;
      }
      std::remove(Path.c_str());
      continue;
    }

    std::vector<RunOutcome> Base(2); // [0] = mutation off, [1] = on
    for (int Mut = 0; Mut < 2; ++Mut) {
      for (size_t C = 0; C < Matrix.size(); ++C) {
        RunOutcome O = runOne(Source, Matrix[C], Mut == 1, Stride, {});
        ++Runs;
        std::string Why;
        if (!O.Ok)
          Why = O.Error;
        else if (O.Violations)
          Why = "auditor violations (" + std::string(Matrix[C].Name) +
                ", mutation " + (Mut ? "on" : "off") + "):\n" + O.AuditReport;
        else if (C == 0)
          Base[Mut] = O;
        else if (fingerprint(O) != fingerprint(Base[Mut]) ||
                 O.Output != Base[Mut].Output)
          Why = "divergence vs " + std::string(Matrix[0].Name) +
                " (mutation " + (Mut ? "on" : "off") + ", " +
                Matrix[C].Name + "):\n  base: " + fingerprint(Base[Mut]) +
                "\n  this: " + fingerprint(O);
        if (!Why.empty()) {
          const HostConfig &HC = Matrix[C];
          bool M1 = Mut == 1;
          return reportFailure(
              G, Seed, Source, Why, [&](const std::string &S) {
                RunOutcome A = runOne(S, Matrix[0], M1, Stride, {});
                RunOutcome B = runOne(S, HC, M1, Stride, {});
                if (!A.Ok || !B.Ok)
                  return true; // still broken (now at assembly/setup)
                if (A.Violations || B.Violations)
                  return true;
                return fingerprint(A) != fingerprint(B) ||
                       A.Output != B.Output;
              });
        }
      }
    }
    // Transparency: mutation must not change what the program computes.
    if (Base[0].Ok && Base[1].Ok &&
        (Base[0].Output != Base[1].Output ||
         Base[0].Result != Base[1].Result)) {
      return reportFailure(
          G, Seed, Source,
          "mutation changed program output:\n  off: " + Base[0].Output +
              "\n  on:  " + Base[1].Output,
          [&](const std::string &S) {
            RunOutcome A = runOne(S, Matrix[0], false, Stride, {});
            RunOutcome B = runOne(S, Matrix[0], true, Stride, {});
            if (!A.Ok || !B.Ok)
              return true;
            return A.Output != B.Output || A.Result != B.Result;
          });
    }
  }
  std::printf("fuzz: %llu programs, %llu runs, %zu-config matrix%s: all "
              "consistent\n",
              static_cast<unsigned long long>(N),
              static_cast<unsigned long long>(Runs), Matrix.size(),
              Inject.any() ? " (fault injection)" : "");
  return 0;
}
