//===-- examples/online.cpp - Fully-online mutation ----------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// The paper's section 9 future work, running: no offline profiling step at
// all. A single VM starts cold, profiles itself, derives state fields and
// hot states in-flight, and flips mutation on mid-run. The example prints
// the phase timeline and the cycles-per-batch curve, which visibly drops
// after activation.
//
//===----------------------------------------------------------------------===//

#include "online/OnlineController.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace dchm;

int main() {
  std::printf("DCHM online example: the section-9 'complete online Java "
              "solution'\n");
  std::printf("----------------------------------------------------------\n");

  auto W = makeSalaryDb();
  auto P = W->buildProgram();
  VirtualMachine VM(*P, {});

  OnlineMutationController::Config Cfg;
  Cfg.Analysis.HotStateMinFraction = 0.05;
  Cfg.HotProfileCycles = 1'500'000;
  Cfg.ValueProfileCycles = 1'500'000;
  OnlineMutationController Ctl(VM, Cfg);

  ProgramIds Ids(*P);
  VM.call(Ids.method("TestDriver", "init"), {valueI(400)});
  MethodId RunBatch = Ids.method("TestDriver", "runBatch");

  auto PhaseName = [](OnlineMutationController::Phase Ph) {
    switch (Ph) {
    case OnlineMutationController::Phase::HotProfiling:
      return "hot-profiling";
    case OnlineMutationController::Phase::ValueProfiling:
      return "value-profiling";
    case OnlineMutationController::Phase::Active:
      return "ACTIVE";
    case OnlineMutationController::Phase::Degrading:
      return "DEGRADING";
    case OnlineMutationController::Phase::Inert:
      return "inert";
    }
    return "?";
  };

  auto LastPhase = Ctl.phase();
  uint64_t WindowStart = VM.totalCycles();
  const int BatchesPerWindow = 40;
  std::printf("\n%-8s %-16s %s\n", "window", "phase", "cycles/batch");
  for (int Window = 0; Window < 12; ++Window) {
    for (int B = 0; B < BatchesPerWindow; ++B) {
      VM.call(RunBatch, {valueI(4)});
      Ctl.poll();
      if (Ctl.phase() != LastPhase) {
        std::printf("   >>> phase transition: %s -> %s (cycle %llu)\n",
                    PhaseName(LastPhase), PhaseName(Ctl.phase()),
                    static_cast<unsigned long long>(VM.totalCycles()));
        LastPhase = Ctl.phase();
      }
    }
    uint64_t Now = VM.totalCycles();
    std::printf("%-8d %-16s %llu\n", Window + 1, PhaseName(Ctl.phase()),
                static_cast<unsigned long long>((Now - WindowStart) /
                                                BatchesPerWindow));
    WindowStart = Now;
  }

  std::printf("\nderived plan: %zu mutable class(es), %zu hot states; "
              "OLC entries: %zu\n",
              Ctl.plan().Classes.size(), Ctl.plan().numHotStates(),
              Ctl.olc().Entries.size());
  std::printf("objects migrated to special TIBs: %llu\n",
              static_cast<unsigned long long>(
                  VM.mutation().stats().ObjectTibSwings));
  return 0;
}
