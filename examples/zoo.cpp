//===-- examples/zoo.cpp - The hungry polar bear ---------------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// The paper's introductory example (Figure 1): a zoo class hierarchy where a
// polar bear's hunger is run-time state. Conventional languages cannot move
// Quinn between `Polar` and an implicit `Hungry Polar Bear` class — dynamic
// class hierarchy mutation does exactly that: when `hungry` flips, Quinn's
// TIB pointer moves between special TIBs, and the overloaded openCage()
// dispatches to code specialized for the current state with no value test.
//
// This example builds the hierarchy by hand (no offline pipeline) to show
// the plan API, and inspects the TIBs as the state changes.
//
//===----------------------------------------------------------------------===//

#include "core/VM.h"
#include "ir/Builder.h"

#include <cstdio>

using namespace dchm;

int main() {
  std::printf("DCHM zoo example: the hungry polar bear (paper Figure 1)\n");
  std::printf("--------------------------------------------------------\n");

  Program P;
  // ZooAnimal <- Bear <- Polar, with Polar's `hungry` as the state field.
  ClassId ZooAnimal = P.defineClass("ZooAnimal");
  MethodId AnimalCtor =
      P.defineMethod(ZooAnimal, "<init>", Type::Void, {}, {.IsCtor = true});
  {
    FunctionBuilder B("ZooAnimal.<init>", Type::Void);
    B.addArg(Type::Ref);
    B.retVoid();
    P.setBody(AnimalCtor, B.finalize());
  }
  ClassId Bear = P.defineClass("Bear", ZooAnimal);
  ClassId Polar = P.defineClass("Polar", Bear);
  FieldId Hungry =
      P.defineField(Polar, "hungry", Type::I64, false, Access::Private);
  MethodId PolarCtor = P.defineMethod(Polar, "<init>", Type::Void,
                                      {Type::I64}, {.IsCtor = true});
  {
    FunctionBuilder B("Polar.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg H = B.addArg(Type::I64);
    B.callSpecial(AnimalCtor, {This}, Type::Void);
    B.putField(This, Hungry, H);
    B.retVoid();
    P.setBody(PolarCtor, B.finalize());
  }
  // openCage(): returns 1 (door opens) for fed bears, 0 (refused) for
  // hungry ones — the state-dependent method of the paper's story.
  MethodId OpenCage = P.defineMethod(Polar, "openCage", Type::I64, {});
  {
    FunctionBuilder B("Polar.openCage", Type::I64);
    Reg This = B.addArg(Type::Ref);
    Reg H = B.getField(This, Hungry, Type::I64);
    auto LHungry = B.makeLabel();
    B.cbnz(H, LHungry);
    B.ret(B.constI(1));
    B.bind(LHungry);
    B.ret(B.constI(0));
    P.setBody(OpenCage, B.finalize());
  }
  MethodId Feed = P.defineMethod(Polar, "feed", Type::Void, {});
  {
    FunctionBuilder B("Polar.feed", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg Zero = B.constI(0);
    B.putField(This, Hungry, Zero);
    B.retVoid();
    P.setBody(Feed, B.finalize());
  }
  MethodId GetHungry = P.defineMethod(Polar, "getHungry", Type::Void, {});
  {
    FunctionBuilder B("Polar.getHungry", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg One = B.constI(1);
    B.putField(This, Hungry, One);
    B.retVoid();
    P.setBody(GetHungry, B.finalize());
  }
  P.link();

  // Handwritten mutation plan: Polar is mutable on `hungry`, with two hot
  // states — fed (0) and hungry (1). The hungry state *is* the implicit
  // "Hungry Polar Bear" class of Figure 1.
  MutationPlan Plan;
  MutableClassPlan CP;
  CP.Cls = Polar;
  CP.InstanceStateFields = {Hungry};
  HotState Fed, HungryState;
  Fed.InstanceVals = {valueI(0)};
  HungryState.InstanceVals = {valueI(1)};
  CP.HotStates = {Fed, HungryState};
  CP.MutableMethods = {OpenCage};
  Plan.Classes.push_back(CP);

  VMOptions Opts;
  Opts.Adaptive.AcceleratedMutableHotness = true; // specialize right away
  VirtualMachine VM(P, Opts);
  VM.setMutationPlan(&Plan);

  // Quinn is born fed.
  ClassInfo &PolarCls = P.cls(Polar);
  Object *Quinn = VM.heap().allocateInstance(PolarCls, PolarCls.ClassTib);
  VM.call(PolarCtor, {valueR(Quinn), valueI(0)});

  auto Describe = [&](const char *Event) {
    const TIB *T = Quinn->Tib;
    const char *Klass =
        !T->isSpecial()
            ? "Polar (class TIB)"
            : (T->StateIndex == 0 ? "Polar[fed] (special TIB 0)"
                                  : "Hungry Polar Bear (special TIB 1)");
    int64_t Door = VM.call(OpenCage, {valueR(Quinn)}).I;
    std::printf("%-28s -> dynamic class: %-32s cage door: %s\n", Event, Klass,
                Door ? "OPENS" : "refused");
  };

  Describe("Quinn constructed (fed)");
  VM.call(GetHungry, {valueR(Quinn)});
  Describe("feeding time approaches");
  VM.call(Feed, {valueR(Quinn)});
  Describe("zookeeper feeds Quinn");

  std::printf("\nBehind the scenes: openCage() was compiled once per hot "
              "state; the object's TIB pointer moved between the class's "
              "special TIBs at each state-field assignment, so dispatch "
              "needed no hunger test at all (specialized code: %u versions, "
              "TIB re-points: %llu).\n",
              VM.compiler().stats().SpecialCompiles,
              static_cast<unsigned long long>(
                  VM.mutation().stats().ObjectTibSwings));
  return 0;
}
