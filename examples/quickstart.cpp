//===-- examples/quickstart.cpp - Library quickstart ---------------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// Quickstart: build a small program against the MiniVM API, run the offline
// pipeline to derive a mutation plan automatically, and compare a baseline
// run with a mutated run. This is the paper's SalaryDB experiment end to
// end in ~40 lines of driver code.
//
//===----------------------------------------------------------------------===//

#include "analysis/OfflinePipeline.h"
#include "analysis/OlcAnalysis.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace dchm;

int main() {
  std::printf("DCHM quickstart: dynamic class hierarchy mutation on SalaryDB\n");
  std::printf("--------------------------------------------------------------\n");

  // 1. A workload is just a recipe for building a Program (classes, fields,
  //    methods with IR bodies) plus a driver. SalaryDB is the paper's
  //    Figure 2 microbenchmark.
  std::unique_ptr<Workload> W = makeSalaryDb();

  // 2. Offline step (paper Figure 3): profile for hot methods, score state
  //    fields with EQ 1, mine hot states with the value profiler.
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult Offline = runOfflinePipeline(*W, Cfg);
  {
    auto P = W->buildProgram();
    std::printf("\nderived mutation plan:\n");
    for (const MutableClassPlan &CP : Offline.Plan.Classes) {
      std::printf("  mutable class %s, state fields:",
                  P->cls(CP.Cls).Name.c_str());
      for (FieldId F : CP.InstanceStateFields)
        std::printf(" %s", P->field(F).Name.c_str());
      std::printf(", %zu hot states, mutable methods:",
                  CP.HotStates.size());
      for (MethodId M : CP.MutableMethods)
        std::printf(" %s", P->method(M).Name.c_str());
      std::printf("\n");
    }
  }

  // 3. Baseline run: mutation disabled.
  RunMetrics Base;
  {
    auto P = W->buildProgram();
    VMOptions Opts;
    Opts.EnableMutation = false;
    VirtualMachine VM(*P, Opts);
    W->drive(VM);
    Base = VM.metrics();
    std::printf("\nbaseline:  %12llu cycles (output: %s)\n",
                static_cast<unsigned long long>(Base.TotalCycles),
                VM.interp().output().c_str());
  }

  // 4. Mutated run: install the plan (and OLC results) and run again.
  RunMetrics Mut;
  {
    auto P = W->buildProgram();
    VirtualMachine VM(*P, {});
    VM.setMutationPlan(&Offline.Plan);
    OlcDatabase Olc = analyzeObjectLifetimeConstants(*P, Offline.Plan);
    VM.setOlcDatabase(&Olc);
    W->drive(VM);
    Mut = VM.metrics();
    std::printf("mutated:   %12llu cycles (output: %s)\n",
                static_cast<unsigned long long>(Mut.TotalCycles),
                VM.interp().output().c_str());
    std::printf("           %llu object TIB re-points, %zu B of special "
                "TIBs, %u recompilations, %u specialized compiles\n",
                static_cast<unsigned long long>(
                    Mut.Mutation.ObjectTibSwings),
                Mut.SpecialTibBytes, Mut.Adaptive.Recompilations,
                VM.compiler().stats().SpecialCompiles);
  }

  double Speedup = 100.0 * (static_cast<double>(Base.TotalCycles) /
                                static_cast<double>(Mut.TotalCycles) -
                            1.0);
  std::printf("\nspeedup: %.1f%%  (paper reports 31.4%%)  output identical: %s\n",
              Speedup, Base.OutputHash == Mut.OutputHash ? "yes" : "NO");
  return 0;
}
