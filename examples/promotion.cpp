//===-- examples/promotion.cpp - Run-time variant behavior ---------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// The paper's "run-time variant behavior, which cannot be captured using
// source code transformations": objects transition between states over
// their lifetime (a salary employee gets promoted) and are dynamically
// re-classed from one implicit derived class to a peer. This example drives
// a population of employees through promotions and watches the dynamic
// class hierarchy (counts of objects per dynamically mutated class) evolve.
//
//===----------------------------------------------------------------------===//

#include "core/VM.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <map>

using namespace dchm;

int main() {
  std::printf("DCHM promotion example: objects migrating between implicit "
              "derived classes\n");
  std::printf("---------------------------------------------------------------"
              "--------\n");

  // Reuse the SalaryDB program; derive its plan automatically.
  auto W = makeSalaryDb();
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(*W, Cfg);

  auto P = W->buildProgram();
  VMOptions Opts;
  Opts.Adaptive.AcceleratedMutableHotness = true;
  VirtualMachine VM(*P, Opts);
  VM.setMutationPlan(&R.Plan);

  ClassId SalaryEmp = P->findClass("SalaryEmployee");
  MethodId Ctor = P->findMethod(SalaryEmp, "<init>");
  MethodId Raise = P->findMethod(SalaryEmp, "raise");
  FieldId Grade = P->findField(SalaryEmp, "grade");
  ClassInfo &C = P->cls(SalaryEmp);

  // Hire 12 employees at grade 0.
  std::vector<Object *> Staff;
  for (int I = 0; I < 12; ++I) {
    Object *E = VM.heap().allocateInstance(C, C.ClassTib);
    VM.call(Ctor, {valueR(E), valueI(0)});
    Staff.push_back(E);
  }

  auto Census = [&](const char *When) {
    std::map<int, int> ByState; // -1 = class TIB (cold state)
    for (Object *E : Staff)
      ByState[E->Tib->StateIndex]++;
    std::printf("%-26s dynamic hierarchy:", When);
    for (auto [State, Count] : ByState) {
      if (State < 0)
        std::printf("  SalaryEmployee x%d", Count);
      else
        std::printf("  SalaryEmployeeGrade%lld x%d",
                    static_cast<long long>(
                        R.Plan.Classes[0].HotStates[static_cast<size_t>(State)]
                            .InstanceVals[0]
                            .I),
                    Count);
    }
    std::printf("\n");
  };

  Census("hired (grade 0):");

  // Yearly cycle: everyone gets a raise; every third year, promotions.
  for (int Year = 1; Year <= 4; ++Year) {
    for (Object *E : Staff)
      VM.call(Raise, {valueR(E)});
    // Promote a third of the staff by one grade (state transition!).
    for (size_t I = 0; I < Staff.size(); I += 3) {
      int64_t G = Staff[I]->get(P->field(Grade).Slot).I;
      // Writing the state field through the interpreter fires part I of
      // the distributed mutation algorithm.
      MethodId SetG = P->findMethod(SalaryEmp, "setGrade");
      if (SetG == NoMethodId) {
        // SalaryDB has no setter; emulate the store + hook like the
        // interpreter would for `emp.grade = g + 1`.
        Staff[I]->set(P->field(Grade).Slot, valueI(G + 1));
        VM.mutation().onInstanceStateStore(Staff[I], P->field(Grade));
      }
    }
    char Label[64];
    std::snprintf(Label, sizeof(Label), "after year %d:", Year);
    Census(Label);
  }

  std::printf("\nEach census line is the paper's 'dynamic class hierarchy': "
              "the original classes plus whichever SalaryEmployeeGrade[g] "
              "classes currently have instances. TIB re-points so far: %llu; "
              "raise() executed via the matching specialized code each time "
              "(specialized compiles: %u).\n",
              static_cast<unsigned long long>(
                  VM.mutation().stats().ObjectTibSwings),
              VM.compiler().stats().SpecialCompiles);
  return 0;
}
