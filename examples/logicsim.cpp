//===-- examples/logicsim.cpp - Metamorphic logic simulation -------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
// The workload that inspired the paper (Maurer's metamorphic programming
// logic simulator): gates whose eval() behavior is decided by a per-gate
// `kind` state field. Runs the SimLogic benchmark with the full automatic
// pipeline and shows what the offline analysis discovered.
//
//===----------------------------------------------------------------------===//

#include "analysis/OfflinePipeline.h"
#include "analysis/OlcAnalysis.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace dchm;

int main() {
  std::printf("DCHM logic simulator example (Maurer-style metamorphic sim)\n");
  std::printf("-----------------------------------------------------------\n");
  auto W = makeSimLogic();

  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(*W, Cfg);

  auto P = W->buildProgram();
  std::printf("\noffline analysis found:\n");
  std::printf("  hottest methods:\n");
  for (int I = 0; I < 4; ++I) {
    MethodId M = R.Profile.Ranked[static_cast<size_t>(I)];
    if (R.Profile.hotness(M) < 0.001)
      break;
    std::printf("    %5.1f%%  %s.%s\n", 100.0 * R.Profile.hotness(M),
                P->cls(P->method(M).Owner).Name.c_str(),
                P->method(M).Name.c_str());
  }
  static const char *KindNames[] = {"AND3", "OR3", "XOR3", "MAJ3"};
  for (const MutableClassPlan &CP : R.Plan.Classes) {
    std::printf("  mutable class %s with %zu hot states:\n",
                P->cls(CP.Cls).Name.c_str(), CP.HotStates.size());
    for (const HotState &HS : CP.HotStates) {
      if (P->cls(CP.Cls).Name == "Gate" && !HS.InstanceVals.empty()) {
        int64_t K = HS.InstanceVals[0].I;
        std::printf("    kind=%lld (%s), %4.1f%% of gates\n",
                    static_cast<long long>(K),
                    K >= 0 && K < 4 ? KindNames[K] : "?", 100.0 * HS.Weight);
      } else {
        std::printf("    (static state), weight %4.1f%%\n", 100.0 * HS.Weight);
      }
    }
  }

  auto Run = [&](bool Mutation) {
    auto Prog = W->buildProgram();
    VMOptions Opts;
    Opts.EnableMutation = Mutation;
    VirtualMachine VM(*Prog, Opts);
    OlcDatabase Db;
    if (Mutation) {
      VM.setMutationPlan(&R.Plan);
      Db = analyzeObjectLifetimeConstants(*Prog, R.Plan);
      VM.setOlcDatabase(&Db);
    }
    W->drive(VM);
    std::printf("  %-9s %12llu cycles, net checksum %s\n",
                Mutation ? "mutated:" : "baseline:",
                static_cast<unsigned long long>(VM.metrics().TotalCycles),
                VM.interp().output().c_str());
    return VM.metrics().TotalCycles;
  };

  std::printf("\nsimulating (each gate's eval() dispatches through its "
              "kind-state TIB):\n");
  uint64_t Base = Run(false);
  uint64_t Mut = Run(true);
  std::printf("\nspeedup: %.1f%% — every gate executes a gate-kernel "
              "specialized to its gate kind, with no kind dispatch chain.\n",
              100.0 * (static_cast<double>(Base) / static_cast<double>(Mut) -
                       1.0));
  return 0;
}
