# Empty compiler generated dependencies file for dchm_tests.
# This may be replaced when dependencies are built.
