
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AdaptiveTest.cpp" "tests/CMakeFiles/dchm_tests.dir/AdaptiveTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/AdaptiveTest.cpp.o.d"
  "/root/repo/tests/AnalysisTest.cpp" "tests/CMakeFiles/dchm_tests.dir/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/AnalysisTest.cpp.o.d"
  "/root/repo/tests/AssemblerFuzzTest.cpp" "tests/CMakeFiles/dchm_tests.dir/AssemblerFuzzTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/AssemblerFuzzTest.cpp.o.d"
  "/root/repo/tests/AssemblerTest.cpp" "tests/CMakeFiles/dchm_tests.dir/AssemblerTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/AssemblerTest.cpp.o.d"
  "/root/repo/tests/CfgTest.cpp" "tests/CMakeFiles/dchm_tests.dir/CfgTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/CfgTest.cpp.o.d"
  "/root/repo/tests/DispatchTest.cpp" "tests/CMakeFiles/dchm_tests.dir/DispatchTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/DispatchTest.cpp.o.d"
  "/root/repo/tests/GuardedInlineTest.cpp" "tests/CMakeFiles/dchm_tests.dir/GuardedInlineTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/GuardedInlineTest.cpp.o.d"
  "/root/repo/tests/HeapGcTest.cpp" "tests/CMakeFiles/dchm_tests.dir/HeapGcTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/HeapGcTest.cpp.o.d"
  "/root/repo/tests/InlinerTest.cpp" "tests/CMakeFiles/dchm_tests.dir/InlinerTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/InlinerTest.cpp.o.d"
  "/root/repo/tests/InterpreterTest.cpp" "tests/CMakeFiles/dchm_tests.dir/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/IrBuilderTest.cpp" "tests/CMakeFiles/dchm_tests.dir/IrBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/IrBuilderTest.cpp.o.d"
  "/root/repo/tests/LinkerTest.cpp" "tests/CMakeFiles/dchm_tests.dir/LinkerTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/LinkerTest.cpp.o.d"
  "/root/repo/tests/MutationManagerTest.cpp" "tests/CMakeFiles/dchm_tests.dir/MutationManagerTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/MutationManagerTest.cpp.o.d"
  "/root/repo/tests/OnlineControllerTest.cpp" "tests/CMakeFiles/dchm_tests.dir/OnlineControllerTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/OnlineControllerTest.cpp.o.d"
  "/root/repo/tests/PassesTest.cpp" "tests/CMakeFiles/dchm_tests.dir/PassesTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/PassesTest.cpp.o.d"
  "/root/repo/tests/RuntimeEdgeTest.cpp" "tests/CMakeFiles/dchm_tests.dir/RuntimeEdgeTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/RuntimeEdgeTest.cpp.o.d"
  "/root/repo/tests/SpecializerTest.cpp" "tests/CMakeFiles/dchm_tests.dir/SpecializerTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/SpecializerTest.cpp.o.d"
  "/root/repo/tests/StaticOnlyMutationTest.cpp" "tests/CMakeFiles/dchm_tests.dir/StaticOnlyMutationTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/StaticOnlyMutationTest.cpp.o.d"
  "/root/repo/tests/VerifierTest.cpp" "tests/CMakeFiles/dchm_tests.dir/VerifierTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/VerifierTest.cpp.o.d"
  "/root/repo/tests/VmPropertyTest.cpp" "tests/CMakeFiles/dchm_tests.dir/VmPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/VmPropertyTest.cpp.o.d"
  "/root/repo/tests/WorkloadsTest.cpp" "tests/CMakeFiles/dchm_tests.dir/WorkloadsTest.cpp.o" "gcc" "tests/CMakeFiles/dchm_tests.dir/WorkloadsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/dchm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dchm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dchm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/online/CMakeFiles/dchm_online.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/dchm_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/mutation/CMakeFiles/dchm_mutation.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptive/CMakeFiles/dchm_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dchm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/dchm_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dchm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dchm_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
