# Empty dependencies file for bench_fig11_compiletime.
# This may be replaced when dependencies are built.
