file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_compiletime.dir/bench_fig11_compiletime.cpp.o"
  "CMakeFiles/bench_fig11_compiletime.dir/bench_fig11_compiletime.cpp.o.d"
  "bench_fig11_compiletime"
  "bench_fig11_compiletime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_compiletime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
