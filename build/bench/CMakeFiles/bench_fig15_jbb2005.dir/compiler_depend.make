# Empty compiler generated dependencies file for bench_fig15_jbb2005.
# This may be replaced when dependencies are built.
