
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig15_jbb2005.cpp" "bench/CMakeFiles/bench_fig15_jbb2005.dir/bench_fig15_jbb2005.cpp.o" "gcc" "bench/CMakeFiles/bench_fig15_jbb2005.dir/bench_fig15_jbb2005.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dchm_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dchm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dchm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dchm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mutation/CMakeFiles/dchm_mutation.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptive/CMakeFiles/dchm_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dchm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/dchm_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dchm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dchm_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
