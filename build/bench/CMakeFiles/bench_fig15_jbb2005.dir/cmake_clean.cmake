file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_jbb2005.dir/bench_fig15_jbb2005.cpp.o"
  "CMakeFiles/bench_fig15_jbb2005.dir/bench_fig15_jbb2005.cpp.o.d"
  "bench_fig15_jbb2005"
  "bench_fig15_jbb2005.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_jbb2005.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
