file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_codesize.dir/bench_fig10_codesize.cpp.o"
  "CMakeFiles/bench_fig10_codesize.dir/bench_fig10_codesize.cpp.o.d"
  "bench_fig10_codesize"
  "bench_fig10_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
