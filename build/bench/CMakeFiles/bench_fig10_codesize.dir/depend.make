# Empty dependencies file for bench_fig10_codesize.
# This may be replaced when dependencies are built.
