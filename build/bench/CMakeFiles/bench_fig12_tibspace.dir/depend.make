# Empty dependencies file for bench_fig12_tibspace.
# This may be replaced when dependencies are built.
