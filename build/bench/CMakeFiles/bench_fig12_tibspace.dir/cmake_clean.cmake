file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_tibspace.dir/bench_fig12_tibspace.cpp.o"
  "CMakeFiles/bench_fig12_tibspace.dir/bench_fig12_tibspace.cpp.o.d"
  "bench_fig12_tibspace"
  "bench_fig12_tibspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_tibspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
