file(REMOVE_RECURSE
  "libdchm_bench_harness.a"
)
