# Empty compiler generated dependencies file for dchm_bench_harness.
# This may be replaced when dependencies are built.
