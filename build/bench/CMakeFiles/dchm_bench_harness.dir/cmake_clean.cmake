file(REMOVE_RECURSE
  "CMakeFiles/dchm_bench_harness.dir/BenchHarness.cpp.o"
  "CMakeFiles/dchm_bench_harness.dir/BenchHarness.cpp.o.d"
  "libdchm_bench_harness.a"
  "libdchm_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
