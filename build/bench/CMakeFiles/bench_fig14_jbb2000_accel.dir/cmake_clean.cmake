file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_jbb2000_accel.dir/bench_fig14_jbb2000_accel.cpp.o"
  "CMakeFiles/bench_fig14_jbb2000_accel.dir/bench_fig14_jbb2000_accel.cpp.o.d"
  "bench_fig14_jbb2000_accel"
  "bench_fig14_jbb2000_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_jbb2000_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
