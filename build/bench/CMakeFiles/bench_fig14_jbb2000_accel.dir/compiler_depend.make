# Empty compiler generated dependencies file for bench_fig14_jbb2000_accel.
# This may be replaced when dependencies are built.
