file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_vm.dir/bench_micro_vm.cpp.o"
  "CMakeFiles/bench_micro_vm.dir/bench_micro_vm.cpp.o.d"
  "bench_micro_vm"
  "bench_micro_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
