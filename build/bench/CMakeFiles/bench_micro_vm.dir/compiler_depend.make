# Empty compiler generated dependencies file for bench_micro_vm.
# This may be replaced when dependencies are built.
