file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_jbb2000.dir/bench_fig13_jbb2000.cpp.o"
  "CMakeFiles/bench_fig13_jbb2000.dir/bench_fig13_jbb2000.cpp.o.d"
  "bench_fig13_jbb2000"
  "bench_fig13_jbb2000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_jbb2000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
