# Empty dependencies file for bench_fig13_jbb2000.
# This may be replaced when dependencies are built.
