# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/dchm_run" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan_salarydb "/root/repo/build/tools/dchm_run" "plan" "SalaryDB")
set_tests_properties(cli_plan_salarydb PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_disasm_raise "/root/repo/build/tools/dchm_run" "disasm" "SalaryDB" "SalaryEmployee.raise" "--state=2")
set_tests_properties(cli_disasm_raise PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_exec_fizzbuzz "/root/repo/build/tools/dchm_run" "exec" "/root/repo/examples/mvm/fizzbuzz.mvm" "15")
set_tests_properties(cli_exec_fizzbuzz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_exec_salarydb_mvm "/root/repo/build/tools/dchm_run" "exec" "/root/repo/examples/mvm/salarydb.mvm" "--entry=TestDriver.main" "100" "20")
set_tests_properties(cli_exec_salarydb_mvm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
