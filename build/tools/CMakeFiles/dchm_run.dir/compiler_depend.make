# Empty compiler generated dependencies file for dchm_run.
# This may be replaced when dependencies are built.
