file(REMOVE_RECURSE
  "CMakeFiles/dchm_run.dir/dchm_run.cpp.o"
  "CMakeFiles/dchm_run.dir/dchm_run.cpp.o.d"
  "dchm_run"
  "dchm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
