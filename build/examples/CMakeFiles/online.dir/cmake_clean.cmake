file(REMOVE_RECURSE
  "CMakeFiles/online.dir/online.cpp.o"
  "CMakeFiles/online.dir/online.cpp.o.d"
  "online"
  "online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
