# Empty dependencies file for online.
# This may be replaced when dependencies are built.
