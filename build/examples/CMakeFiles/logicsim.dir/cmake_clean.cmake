file(REMOVE_RECURSE
  "CMakeFiles/logicsim.dir/logicsim.cpp.o"
  "CMakeFiles/logicsim.dir/logicsim.cpp.o.d"
  "logicsim"
  "logicsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logicsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
