# Empty dependencies file for logicsim.
# This may be replaced when dependencies are built.
