# Empty compiler generated dependencies file for promotion.
# This may be replaced when dependencies are built.
