file(REMOVE_RECURSE
  "CMakeFiles/promotion.dir/promotion.cpp.o"
  "CMakeFiles/promotion.dir/promotion.cpp.o.d"
  "promotion"
  "promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
