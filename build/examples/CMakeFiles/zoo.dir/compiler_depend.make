# Empty compiler generated dependencies file for zoo.
# This may be replaced when dependencies are built.
