file(REMOVE_RECURSE
  "CMakeFiles/zoo.dir/zoo.cpp.o"
  "CMakeFiles/zoo.dir/zoo.cpp.o.d"
  "zoo"
  "zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
