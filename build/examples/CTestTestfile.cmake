# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_zoo "/root/repo/build/examples/zoo")
set_tests_properties(example_zoo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_logicsim "/root/repo/build/examples/logicsim")
set_tests_properties(example_logicsim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_promotion "/root/repo/build/examples/promotion")
set_tests_properties(example_promotion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_online "/root/repo/build/examples/online")
set_tests_properties(example_online PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
