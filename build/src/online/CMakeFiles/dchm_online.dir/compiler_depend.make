# Empty compiler generated dependencies file for dchm_online.
# This may be replaced when dependencies are built.
