file(REMOVE_RECURSE
  "CMakeFiles/dchm_online.dir/OnlineController.cpp.o"
  "CMakeFiles/dchm_online.dir/OnlineController.cpp.o.d"
  "libdchm_online.a"
  "libdchm_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
