file(REMOVE_RECURSE
  "libdchm_online.a"
)
