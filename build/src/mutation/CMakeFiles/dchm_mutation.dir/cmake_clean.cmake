file(REMOVE_RECURSE
  "CMakeFiles/dchm_mutation.dir/MutationManager.cpp.o"
  "CMakeFiles/dchm_mutation.dir/MutationManager.cpp.o.d"
  "libdchm_mutation.a"
  "libdchm_mutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
