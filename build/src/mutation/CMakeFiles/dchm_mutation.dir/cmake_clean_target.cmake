file(REMOVE_RECURSE
  "libdchm_mutation.a"
)
