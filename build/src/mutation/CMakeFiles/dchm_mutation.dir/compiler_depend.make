# Empty compiler generated dependencies file for dchm_mutation.
# This may be replaced when dependencies are built.
