# Empty dependencies file for dchm_workloads.
# This may be replaced when dependencies are built.
