
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Common.cpp" "src/workloads/CMakeFiles/dchm_workloads.dir/Common.cpp.o" "gcc" "src/workloads/CMakeFiles/dchm_workloads.dir/Common.cpp.o.d"
  "/root/repo/src/workloads/CsvToXml.cpp" "src/workloads/CMakeFiles/dchm_workloads.dir/CsvToXml.cpp.o" "gcc" "src/workloads/CMakeFiles/dchm_workloads.dir/CsvToXml.cpp.o.d"
  "/root/repo/src/workloads/Java2Xhtml.cpp" "src/workloads/CMakeFiles/dchm_workloads.dir/Java2Xhtml.cpp.o" "gcc" "src/workloads/CMakeFiles/dchm_workloads.dir/Java2Xhtml.cpp.o.d"
  "/root/repo/src/workloads/Jbb.cpp" "src/workloads/CMakeFiles/dchm_workloads.dir/Jbb.cpp.o" "gcc" "src/workloads/CMakeFiles/dchm_workloads.dir/Jbb.cpp.o.d"
  "/root/repo/src/workloads/SalaryDb.cpp" "src/workloads/CMakeFiles/dchm_workloads.dir/SalaryDb.cpp.o" "gcc" "src/workloads/CMakeFiles/dchm_workloads.dir/SalaryDb.cpp.o.d"
  "/root/repo/src/workloads/SimLogic.cpp" "src/workloads/CMakeFiles/dchm_workloads.dir/SimLogic.cpp.o" "gcc" "src/workloads/CMakeFiles/dchm_workloads.dir/SimLogic.cpp.o.d"
  "/root/repo/src/workloads/WekaMini.cpp" "src/workloads/CMakeFiles/dchm_workloads.dir/WekaMini.cpp.o" "gcc" "src/workloads/CMakeFiles/dchm_workloads.dir/WekaMini.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dchm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dchm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/mutation/CMakeFiles/dchm_mutation.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptive/CMakeFiles/dchm_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dchm_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/dchm_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dchm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dchm_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
