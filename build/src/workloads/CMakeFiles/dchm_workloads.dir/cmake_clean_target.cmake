file(REMOVE_RECURSE
  "libdchm_workloads.a"
)
