file(REMOVE_RECURSE
  "CMakeFiles/dchm_workloads.dir/Common.cpp.o"
  "CMakeFiles/dchm_workloads.dir/Common.cpp.o.d"
  "CMakeFiles/dchm_workloads.dir/CsvToXml.cpp.o"
  "CMakeFiles/dchm_workloads.dir/CsvToXml.cpp.o.d"
  "CMakeFiles/dchm_workloads.dir/Java2Xhtml.cpp.o"
  "CMakeFiles/dchm_workloads.dir/Java2Xhtml.cpp.o.d"
  "CMakeFiles/dchm_workloads.dir/Jbb.cpp.o"
  "CMakeFiles/dchm_workloads.dir/Jbb.cpp.o.d"
  "CMakeFiles/dchm_workloads.dir/SalaryDb.cpp.o"
  "CMakeFiles/dchm_workloads.dir/SalaryDb.cpp.o.d"
  "CMakeFiles/dchm_workloads.dir/SimLogic.cpp.o"
  "CMakeFiles/dchm_workloads.dir/SimLogic.cpp.o.d"
  "CMakeFiles/dchm_workloads.dir/WekaMini.cpp.o"
  "CMakeFiles/dchm_workloads.dir/WekaMini.cpp.o.d"
  "libdchm_workloads.a"
  "libdchm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
