file(REMOVE_RECURSE
  "CMakeFiles/dchm_runtime.dir/Heap.cpp.o"
  "CMakeFiles/dchm_runtime.dir/Heap.cpp.o.d"
  "CMakeFiles/dchm_runtime.dir/Program.cpp.o"
  "CMakeFiles/dchm_runtime.dir/Program.cpp.o.d"
  "libdchm_runtime.a"
  "libdchm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
