# Empty compiler generated dependencies file for dchm_runtime.
# This may be replaced when dependencies are built.
