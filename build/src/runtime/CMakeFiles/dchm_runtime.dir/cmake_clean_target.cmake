file(REMOVE_RECURSE
  "libdchm_runtime.a"
)
