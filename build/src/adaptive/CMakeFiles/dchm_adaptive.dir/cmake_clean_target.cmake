file(REMOVE_RECURSE
  "libdchm_adaptive.a"
)
