# Empty compiler generated dependencies file for dchm_adaptive.
# This may be replaced when dependencies are built.
