file(REMOVE_RECURSE
  "CMakeFiles/dchm_adaptive.dir/AdaptiveSystem.cpp.o"
  "CMakeFiles/dchm_adaptive.dir/AdaptiveSystem.cpp.o.d"
  "libdchm_adaptive.a"
  "libdchm_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
