file(REMOVE_RECURSE
  "CMakeFiles/dchm_core.dir/VM.cpp.o"
  "CMakeFiles/dchm_core.dir/VM.cpp.o.d"
  "libdchm_core.a"
  "libdchm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
