file(REMOVE_RECURSE
  "libdchm_core.a"
)
