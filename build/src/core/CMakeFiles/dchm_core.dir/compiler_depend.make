# Empty compiler generated dependencies file for dchm_core.
# This may be replaced when dependencies are built.
