file(REMOVE_RECURSE
  "CMakeFiles/dchm_exec.dir/Interpreter.cpp.o"
  "CMakeFiles/dchm_exec.dir/Interpreter.cpp.o.d"
  "libdchm_exec.a"
  "libdchm_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
