# Empty compiler generated dependencies file for dchm_exec.
# This may be replaced when dependencies are built.
