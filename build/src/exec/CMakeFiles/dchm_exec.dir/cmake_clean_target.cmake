file(REMOVE_RECURSE
  "libdchm_exec.a"
)
