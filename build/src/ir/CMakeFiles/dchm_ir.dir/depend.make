# Empty dependencies file for dchm_ir.
# This may be replaced when dependencies are built.
