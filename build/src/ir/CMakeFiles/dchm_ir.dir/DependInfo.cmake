
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Builder.cpp" "src/ir/CMakeFiles/dchm_ir.dir/Builder.cpp.o" "gcc" "src/ir/CMakeFiles/dchm_ir.dir/Builder.cpp.o.d"
  "/root/repo/src/ir/CFG.cpp" "src/ir/CMakeFiles/dchm_ir.dir/CFG.cpp.o" "gcc" "src/ir/CMakeFiles/dchm_ir.dir/CFG.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/ir/CMakeFiles/dchm_ir.dir/Function.cpp.o" "gcc" "src/ir/CMakeFiles/dchm_ir.dir/Function.cpp.o.d"
  "/root/repo/src/ir/Opcode.cpp" "src/ir/CMakeFiles/dchm_ir.dir/Opcode.cpp.o" "gcc" "src/ir/CMakeFiles/dchm_ir.dir/Opcode.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/dchm_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/dchm_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
