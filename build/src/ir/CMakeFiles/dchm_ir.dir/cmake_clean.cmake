file(REMOVE_RECURSE
  "CMakeFiles/dchm_ir.dir/Builder.cpp.o"
  "CMakeFiles/dchm_ir.dir/Builder.cpp.o.d"
  "CMakeFiles/dchm_ir.dir/CFG.cpp.o"
  "CMakeFiles/dchm_ir.dir/CFG.cpp.o.d"
  "CMakeFiles/dchm_ir.dir/Function.cpp.o"
  "CMakeFiles/dchm_ir.dir/Function.cpp.o.d"
  "CMakeFiles/dchm_ir.dir/Opcode.cpp.o"
  "CMakeFiles/dchm_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/dchm_ir.dir/Verifier.cpp.o"
  "CMakeFiles/dchm_ir.dir/Verifier.cpp.o.d"
  "libdchm_ir.a"
  "libdchm_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
