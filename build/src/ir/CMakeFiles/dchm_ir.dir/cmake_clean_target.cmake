file(REMOVE_RECURSE
  "libdchm_ir.a"
)
