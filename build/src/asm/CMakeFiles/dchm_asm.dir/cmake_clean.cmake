file(REMOVE_RECURSE
  "CMakeFiles/dchm_asm.dir/Assembler.cpp.o"
  "CMakeFiles/dchm_asm.dir/Assembler.cpp.o.d"
  "libdchm_asm.a"
  "libdchm_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
