# Empty compiler generated dependencies file for dchm_asm.
# This may be replaced when dependencies are built.
