file(REMOVE_RECURSE
  "libdchm_asm.a"
)
