# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("runtime")
subdirs("compiler")
subdirs("exec")
subdirs("adaptive")
subdirs("mutation")
subdirs("analysis")
subdirs("core")
subdirs("online")
subdirs("asm")
subdirs("workloads")
