file(REMOVE_RECURSE
  "CMakeFiles/dchm_compiler.dir/Inliner.cpp.o"
  "CMakeFiles/dchm_compiler.dir/Inliner.cpp.o.d"
  "CMakeFiles/dchm_compiler.dir/OptCompiler.cpp.o"
  "CMakeFiles/dchm_compiler.dir/OptCompiler.cpp.o.d"
  "CMakeFiles/dchm_compiler.dir/Passes.cpp.o"
  "CMakeFiles/dchm_compiler.dir/Passes.cpp.o.d"
  "CMakeFiles/dchm_compiler.dir/Specializer.cpp.o"
  "CMakeFiles/dchm_compiler.dir/Specializer.cpp.o.d"
  "libdchm_compiler.a"
  "libdchm_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
