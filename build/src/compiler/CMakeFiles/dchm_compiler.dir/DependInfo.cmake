
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/Inliner.cpp" "src/compiler/CMakeFiles/dchm_compiler.dir/Inliner.cpp.o" "gcc" "src/compiler/CMakeFiles/dchm_compiler.dir/Inliner.cpp.o.d"
  "/root/repo/src/compiler/OptCompiler.cpp" "src/compiler/CMakeFiles/dchm_compiler.dir/OptCompiler.cpp.o" "gcc" "src/compiler/CMakeFiles/dchm_compiler.dir/OptCompiler.cpp.o.d"
  "/root/repo/src/compiler/Passes.cpp" "src/compiler/CMakeFiles/dchm_compiler.dir/Passes.cpp.o" "gcc" "src/compiler/CMakeFiles/dchm_compiler.dir/Passes.cpp.o.d"
  "/root/repo/src/compiler/Specializer.cpp" "src/compiler/CMakeFiles/dchm_compiler.dir/Specializer.cpp.o" "gcc" "src/compiler/CMakeFiles/dchm_compiler.dir/Specializer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/dchm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dchm_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
