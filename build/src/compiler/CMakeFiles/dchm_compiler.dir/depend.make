# Empty dependencies file for dchm_compiler.
# This may be replaced when dependencies are built.
