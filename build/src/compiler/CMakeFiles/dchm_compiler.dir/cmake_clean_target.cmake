file(REMOVE_RECURSE
  "libdchm_compiler.a"
)
