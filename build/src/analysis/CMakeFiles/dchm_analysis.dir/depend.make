# Empty dependencies file for dchm_analysis.
# This may be replaced when dependencies are built.
