file(REMOVE_RECURSE
  "CMakeFiles/dchm_analysis.dir/OfflinePipeline.cpp.o"
  "CMakeFiles/dchm_analysis.dir/OfflinePipeline.cpp.o.d"
  "CMakeFiles/dchm_analysis.dir/OlcAnalysis.cpp.o"
  "CMakeFiles/dchm_analysis.dir/OlcAnalysis.cpp.o.d"
  "CMakeFiles/dchm_analysis.dir/StateFieldAnalysis.cpp.o"
  "CMakeFiles/dchm_analysis.dir/StateFieldAnalysis.cpp.o.d"
  "CMakeFiles/dchm_analysis.dir/ValueProfiler.cpp.o"
  "CMakeFiles/dchm_analysis.dir/ValueProfiler.cpp.o.d"
  "libdchm_analysis.a"
  "libdchm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dchm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
