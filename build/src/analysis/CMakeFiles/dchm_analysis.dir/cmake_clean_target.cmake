file(REMOVE_RECURSE
  "libdchm_analysis.a"
)
