//===-- tests/RuntimeEdgeTest.cpp - Edge cases across the runtime -------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "compiler/Eval.h"
#include "runtime/CostModel.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace dchm;

namespace {

// --- Eval semantics edge cases ------------------------------------------------

TEST(Eval, CanFoldRejectsTrappingDivision) {
  EXPECT_FALSE(canFoldBinop(Opcode::Div, valueI(1), valueI(0)));
  EXPECT_FALSE(canFoldBinop(Opcode::Rem, valueI(1), valueI(0)));
  EXPECT_FALSE(canFoldBinop(Opcode::Div,
                            valueI(std::numeric_limits<int64_t>::min()),
                            valueI(-1)));
  EXPECT_TRUE(canFoldBinop(Opcode::Div, valueI(10), valueI(3)));
  EXPECT_TRUE(canFoldBinop(Opcode::Add, valueI(1), valueI(0)));
}

TEST(Eval, WrappingMatchesTwosComplement) {
  int64_t Min = std::numeric_limits<int64_t>::min();
  int64_t Max = std::numeric_limits<int64_t>::max();
  EXPECT_EQ(evalBinop(Opcode::Add, valueI(Max), valueI(1)).I, Min);
  EXPECT_EQ(evalBinop(Opcode::Sub, valueI(Min), valueI(1)).I, Max);
  EXPECT_EQ(evalBinop(Opcode::Mul, valueI(Max), valueI(2)).I, -2);
  EXPECT_EQ(evalUnop(Opcode::Neg, valueI(Min)).I, Min); // -INT64_MIN wraps
}

TEST(Eval, ShiftMasking) {
  EXPECT_EQ(evalBinop(Opcode::Shl, valueI(1), valueI(64)).I, 1);
  EXPECT_EQ(evalBinop(Opcode::Shr, valueI(-8), valueI(1)).I, -4);
  EXPECT_EQ(evalBinop(Opcode::Shl, valueI(1), valueI(127)).I,
            std::numeric_limits<int64_t>::min());
}

TEST(Eval, FloatComparisons) {
  EXPECT_EQ(evalBinop(Opcode::FCmpLT, valueF(1.0), valueF(2.0)).I, 1);
  EXPECT_EQ(evalBinop(Opcode::FCmpEQ, valueF(0.5), valueF(0.5)).I, 1);
  double NaN = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(evalBinop(Opcode::FCmpEQ, valueF(NaN), valueF(NaN)).I, 0);
  EXPECT_EQ(evalBinop(Opcode::FCmpLE, valueF(NaN), valueF(1.0)).I, 0);
}

// --- Cost model sanity ---------------------------------------------------

TEST(CostModel, EveryOpcodeHasACost) {
  for (unsigned Op = 0; Op < NumOpcodes; ++Op) {
    Opcode O = static_cast<Opcode>(Op);
    if (isCall(O))
      EXPECT_EQ(opcodeCycles(O), 0u) << opcodeName(O); // charged at dispatch
    else
      EXPECT_GE(opcodeCycles(O), 1u) << opcodeName(O);
  }
}

TEST(CostModel, OpcodeNamesAreUnique) {
  std::set<std::string> Names;
  for (unsigned Op = 0; Op < NumOpcodes; ++Op)
    Names.insert(opcodeName(static_cast<Opcode>(Op)));
  EXPECT_EQ(Names.size(), NumOpcodes);
}

// --- PRNG determinism ------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, RangesAreRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

// --- GC during interpretation (frame registers as roots) -------------------

TEST(GcDuringExecution, FrameRegistersKeepObjectsAlive) {
  // A method that allocates garbage in a loop while holding one live array
  // in a register; the heap is sized so collections happen mid-loop. The
  // live array's contents must survive every collection.
  Program P;
  ClassId C = P.defineClass("C");
  MethodId M = P.defineMethod(C, "churn", Type::I64, {Type::I64},
                              {.IsStatic = true});
  {
    FunctionBuilder B("C.churn", Type::I64);
    Reg N = B.addArg(Type::I64);
    Reg C64 = B.constI(64);
    Reg Live = B.newArray(Type::I64, C64); // held in a register
    Reg Tag = B.constI(424242);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    B.astore(Type::I64, Live, Zero, Tag);
    Reg I = B.newReg(Type::I64);
    B.move(I, Zero);
    auto LHead = B.makeLabel();
    auto LDone = B.makeLabel();
    B.bind(LHead);
    B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
    Reg C4k = B.constI(4096);
    B.newArray(Type::F64, C4k); // ~32 KB of garbage per iteration
    B.move(I, B.add(I, One));
    B.br(LHead);
    B.bind(LDone);
    B.ret(B.aload(Type::I64, Live, Zero));
    P.setBody(M, B.finalize());
  }
  P.link();
  VMOptions Opts;
  Opts.HeapBytes = 1 << 20; // 1 MB: forces many collections
  VirtualMachine VM(P, Opts);
  EXPECT_EQ(VM.call(M, {valueI(200)}).I, 424242);
  EXPECT_GE(VM.heap().stats().GcCount, 2u);
}

TEST(GcDuringExecution, ObjectGraphReachableThroughFields) {
  // Garbage churn with the live data reachable only through a chain
  // static field -> instance field -> array.
  Program P;
  ClassId Node = P.defineClass("Node");
  FieldId Payload = P.defineField(Node, "payload", Type::Ref, false);
  ClassId C = P.defineClass("C");
  FieldId Root = P.defineField(C, "root", Type::Ref, true);
  MethodId Setup = P.defineMethod(C, "setup", Type::Void, {},
                                  {.IsStatic = true});
  {
    FunctionBuilder B("C.setup", Type::Void);
    Reg NObj = B.newObject(Node);
    Reg C8 = B.constI(8);
    Reg Arr = B.newArray(Type::I64, C8);
    Reg Three = B.constI(3);
    Reg V = B.constI(777);
    B.astore(Type::I64, Arr, Three, V);
    B.putField(NObj, Payload, Arr);
    B.putStatic(Root, NObj);
    B.retVoid();
    P.setBody(Setup, B.finalize());
  }
  MethodId Check = P.defineMethod(C, "check", Type::I64, {Type::I64},
                                  {.IsStatic = true});
  {
    FunctionBuilder B("C.check", Type::I64);
    Reg N = B.addArg(Type::I64);
    Reg I = B.newReg(Type::I64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    B.move(I, Zero);
    auto LHead = B.makeLabel();
    auto LDone = B.makeLabel();
    B.bind(LHead);
    B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
    Reg C4k = B.constI(4096);
    B.newArray(Type::Ref, C4k); // garbage
    B.move(I, B.add(I, One));
    B.br(LHead);
    B.bind(LDone);
    Reg NObj = B.getStatic(Root, Type::Ref);
    Reg Arr = B.getField(NObj, Payload, Type::Ref);
    Reg Three = B.constI(3);
    B.ret(B.aload(Type::I64, Arr, Three));
    P.setBody(Check, B.finalize());
  }
  P.link();
  VMOptions Opts;
  Opts.HeapBytes = 1 << 20;
  VirtualMachine VM(P, Opts);
  VM.call(Setup, {});
  EXPECT_EQ(VM.call(Check, {valueI(100)}).I, 777);
  EXPECT_GE(VM.heap().stats().GcCount, 1u);
}

TEST(GcDuringExecution, MutatedObjectsSurviveWithSpecialTibs) {
  // Mutated objects (special TIBs) that live through collections keep both
  // their identity and their mutation state.
  test::CounterFixture Fx;
  VMOptions Opts;
  Opts.HeapBytes = 1 << 20;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  // Root the counters through a static Ref array field? The fixture has no
  // such field; instead allocate churn between uses and rely on the C++
  // side holding the pointer being UNSAFE — so instead churn inside calls:
  Object *O = Fx.makeCounter(VM, 1);
  // Note: O is rooted only while frames reference it. Avoid collections
  // while holding it: use a churn program on the same heap via arrays that
  // fit without crossing the budget... Simplest: verify mark/sweep of
  // special-TIB objects directly through Heap.
  VM.heap().collect(); // O is not rooted: it may be freed; don't touch it.
  // Allocate a fresh one and keep it alive by making it the receiver of
  // interpreted calls during churn.
  Object *P2 = Fx.makeCounter(VM, 0);
  for (int I = 0; I < 5; ++I)
    VM.call(Fx.Bump, {valueR(P2)});
  EXPECT_EQ(VM.call(Fx.Get, {valueR(P2)}).I, 5);
  (void)O;
}

// --- Type tests through the interpreter ------------------------------------

TEST(TypeTests, CheckCastAcceptsNullAndSubtypes) {
  test::CounterFixture Fx;
  // Fixture program is linked; build a fresh program for the IR driver.
  Program P;
  ClassId A = P.defineClass("A");
  MethodId ACtor = P.defineMethod(A, "<init>", Type::Void, {},
                                  {.IsCtor = true});
  {
    FunctionBuilder B("A.<init>", Type::Void);
    B.addArg(Type::Ref);
    B.retVoid();
    P.setBody(ACtor, B.finalize());
  }
  ClassId B2 = P.defineClass("B", A);
  MethodId Driver = P.defineMethod(A, "drive", Type::I64, {},
                                   {.IsStatic = true});
  {
    FunctionBuilder B("A.drive", Type::I64);
    Reg Null = B.constNull();
    B.checkCast(Null, B2); // null passes any checkcast
    Reg O = B.newObject(B2);
    B.callSpecial(ACtor, {O}, Type::Void);
    B.checkCast(O, A); // upcast passes
    B.checkCast(O, B2);
    Reg R = B.instanceOf(Null, A); // instanceof null == 0
    B.ret(R);
    P.setBody(Driver, B.finalize());
  }
  P.link();
  VirtualMachine VM(P, {});
  EXPECT_EQ(VM.call(Driver, {}).I, 0);
}

TEST(TypeTestsDeath, CheckCastTrapsOnWrongClass) {
  Program P;
  ClassId A = P.defineClass("A");
  MethodId ACtor = P.defineMethod(A, "<init>", Type::Void, {},
                                  {.IsCtor = true});
  {
    FunctionBuilder B("A.<init>", Type::Void);
    B.addArg(Type::Ref);
    B.retVoid();
    P.setBody(ACtor, B.finalize());
  }
  ClassId B2 = P.defineClass("B", A);
  MethodId Driver = P.defineMethod(A, "drive", Type::Void, {},
                                   {.IsStatic = true});
  {
    FunctionBuilder B("A.drive", Type::Void);
    Reg O = B.newObject(A);
    B.callSpecial(ACtor, {O}, Type::Void);
    B.checkCast(O, B2); // A is not a B: trap
    B.retVoid();
    P.setBody(Driver, B.finalize());
  }
  P.link();
  VirtualMachine VM(P, {});
  EXPECT_DEATH(VM.call(Driver, {}), "ClassCastException");
}

// --- Multi-field joint hot states ------------------------------------------

TEST(MultiFieldStates, JointTupleMatchingIsExact) {
  // A class with TWO instance state fields: only the exact joint tuple
  // matches a hot state (partially matching tuples fall back to the class
  // TIB) — the paper's "values of a combination of ... state fields".
  Program P;
  ClassId C = P.defineClass("Cfg");
  FieldId FA = P.defineField(C, "a", Type::I64, false);
  FieldId FB = P.defineField(C, "b", Type::I64, false);
  MethodId Ctor = P.defineMethod(C, "<init>", Type::Void,
                                 {Type::I64, Type::I64}, {.IsCtor = true});
  {
    FunctionBuilder B("Cfg.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg A = B.addArg(Type::I64);
    Reg Bv = B.addArg(Type::I64);
    B.putField(This, FA, A);
    B.putField(This, FB, Bv);
    B.retVoid();
    P.setBody(Ctor, B.finalize());
  }
  MethodId Use = P.defineMethod(C, "use", Type::I64, {});
  {
    FunctionBuilder B("Cfg.use", Type::I64);
    Reg This = B.addArg(Type::Ref);
    Reg A = B.getField(This, FA, Type::I64);
    Reg Bv = B.getField(This, FB, Type::I64);
    B.ret(B.add(A, Bv));
    P.setBody(Use, B.finalize());
  }
  MethodId SetA = P.defineMethod(C, "setA", Type::Void, {Type::I64});
  {
    FunctionBuilder B("Cfg.setA", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg A = B.addArg(Type::I64);
    B.putField(This, FA, A);
    B.retVoid();
    P.setBody(SetA, B.finalize());
  }
  P.link();

  MutationPlan Plan;
  MutableClassPlan CP;
  CP.Cls = C;
  CP.InstanceStateFields = {FA, FB};
  HotState S24x80, S25x132;
  S24x80.InstanceVals = {valueI(24), valueI(80)};
  S25x132.InstanceVals = {valueI(25), valueI(132)};
  CP.HotStates = {S24x80, S25x132};
  CP.MutableMethods = {Use};
  Plan.Classes.push_back(CP);

  VirtualMachine VM(P, {});
  VM.setMutationPlan(&Plan);
  ClassInfo &CI = P.cls(C);

  auto Make = [&](int64_t A, int64_t Bv) {
    Object *O = VM.heap().allocateInstance(CI, CI.ClassTib);
    VM.call(Ctor, {valueR(O), valueI(A), valueI(Bv)});
    return O;
  };
  Object *Exact0 = Make(24, 80);
  Object *Exact1 = Make(25, 132);
  Object *PartialA = Make(24, 132); // a matches state 0, b matches state 1
  Object *Neither = Make(1, 2);
  EXPECT_EQ(Exact0->Tib, CI.SpecialTibs[0]);
  EXPECT_EQ(Exact1->Tib, CI.SpecialTibs[1]);
  EXPECT_EQ(PartialA->Tib, CI.ClassTib);
  EXPECT_EQ(Neither->Tib, CI.ClassTib);

  // Transition: completing the partial tuple mutates the object.
  VM.call(SetA, {valueR(PartialA), valueI(25)});
  EXPECT_EQ(PartialA->Tib, CI.SpecialTibs[1]);
  // Behavior stays correct through every shape.
  EXPECT_EQ(VM.call(Use, {valueR(Exact0)}).I, 104);
  EXPECT_EQ(VM.call(Use, {valueR(PartialA)}).I, 157);
}

// --- Heap census (online support) ------------------------------------------

TEST(HeapCensus, VisitsAllAllocatedObjects) {
  test::CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  for (int I = 0; I < 5; ++I)
    Fx.makeCounter(VM, I % 2);
  size_t Instances = 0, Arrays = 0;
  VM.heap().forEachObject([&](Object *O) {
    if (O->IsArray)
      ++Arrays;
    else
      ++Instances;
  });
  EXPECT_EQ(Instances, 5u);
  EXPECT_EQ(Arrays, 0u);
}

} // namespace
