//===-- tests/SafepointTest.cpp - Rendezvous protocol + multi-mutator VM ------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the safepoint subsystem and the multi-mutator VM mode: the
/// manager-level protocol (nested-request rejection, blocked-counts-as-
/// stopped), rendezvous racing the compile pipeline's quarantine publishes,
/// plan retire/re-install cycles racing mutator entry, a mutator blocked in
/// waitFor while another leads a rendezvous, and per-thread determinism of
/// the guest-visible output streams.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "core/VM.h"
#include "runtime/Safepoint.h"
#include "testing/ConsistencyAuditor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace dchm;
using test::CounterFixture;

namespace {

void nap(int Us = 100) {
  std::this_thread::sleep_for(std::chrono::microseconds(Us));
}

//===----------------------------------------------------------------------===//
// Manager-level protocol
//===----------------------------------------------------------------------===//

TEST(SafepointProtocol, NestedExplicitRequestIsRejected) {
  SafepointManager M;
  std::atomic<bool> Stop{false};
  // A peer mutator that does nothing but poll, like an interpreter at its
  // invocation-boundary safepoint.
  std::thread Peer([&] {
    SafepointSlot *S = M.registerThread();
    while (!Stop.load(std::memory_order_relaxed)) {
      S->poll();
      nap();
    }
    M.unregisterThread(S);
  });
  SafepointSlot *Self = M.registerThread();
  while (M.registered() < 2)
    nap();

  ASSERT_TRUE(M.beginRendezvous());
  EXPECT_TRUE(M.currentThreadLeads());
  // The explicit form rejects a nested request outright...
  EXPECT_FALSE(M.beginRendezvous());
  EXPECT_TRUE(M.currentThreadLeads()); // ... without disturbing the open one
  // ... while run() treats the same situation as re-entrant and inlines.
  bool Ran = false;
  M.run([&] { Ran = true; });
  EXPECT_TRUE(Ran);
  EXPECT_TRUE(M.currentThreadLeads());
  M.endRendezvous();
  EXPECT_FALSE(M.currentThreadLeads());
  EXPECT_EQ(M.rendezvousCount(), 1u); // the nested forms granted no leadership

  Stop = true;
  Peer.join();
  M.unregisterThread(Self);
  EXPECT_EQ(M.registered(), 0u);
}

TEST(SafepointProtocol, BlockedThreadCountsAsStopped) {
  SafepointManager M;
  std::atomic<bool> PeerBlocked{false};
  std::atomic<bool> Release{false};
  // The peer sits in a host wait (the waitForCode shape) the whole time; it
  // never polls, so the rendezvous below can only complete if Blocked
  // satisfies the leader.
  std::thread Peer([&] {
    SafepointSlot *S = M.registerThread();
    {
      SafepointBlockedScope Scope(S);
      PeerBlocked = true;
      while (!Release.load(std::memory_order_relaxed))
        nap();
    }
    M.unregisterThread(S);
  });
  while (!PeerBlocked.load())
    nap();
  // From an unregistered host thread (the VM's construction-time GC shape).
  bool Ran = false;
  M.run([&] { Ran = true; });
  EXPECT_TRUE(Ran);
  EXPECT_EQ(M.rendezvousCount(), 1u);
  Release = true;
  Peer.join();
}

//===----------------------------------------------------------------------===//
// Multi-mutator VM
//===----------------------------------------------------------------------===//

TEST(MultiMutator, RetireReinstallCyclesRaceMutatorEntry) {
  // One mutator swings the plan out and back in while the others are mid
  // driveBump loop: every install/retire must rendezvous against mutators
  // that are actively entering methods, and guest results must be exactly
  // the single-threaded arithmetic regardless of which dispatch mode (plan
  // installed or not) any given bump ran under.
  CounterFixture Fx;
  VMOptions Opts;
  Opts.MutatorThreads = 4;
  Opts.Adaptive.Opt1Threshold = 8;
  Opts.Adaptive.Opt2Threshold = 64;
  Opts.AuditConsistency = HostToggle::On;
  VirtualMachine VM(*Fx.P, Opts);
  ConsistencyAuditor Auditor(VM, /*Stride=*/256);
  VM.setAuditHook(&Auditor);
  VM.setMutationPlan(&Fx.Plan);

  LocalRootScope Pin(VM.heap());
  const unsigned N = VM.mutatorThreads();
  ASSERT_EQ(N, 4u);
  for (unsigned T = 0; T < N; ++T)
    Pin.add(Fx.makeCounter(VM, T % 2));

  VM.runMutators([&](unsigned T) {
    Object *O = Pin[T];
    for (int R = 0; R < 40; ++R) {
      VM.callOn(T, Fx.DriveBump, {valueR(O), valueI(25)});
      if (T == 0 && R % 8 == 3) {
        EXPECT_TRUE(VM.retireMutationPlan());
        VM.setMutationPlan(&Fx.Plan);
      }
    }
  });

  for (unsigned T = 0; T < N; ++T)
    EXPECT_EQ(VM.call(Fx.Get, {valueR(Pin[T])}).I, (T % 2) ? 10000 : 1000);
  EXPECT_TRUE(Auditor.clean()) << Auditor.report();
  EXPECT_GT(VM.safepoints().rendezvousCount(), 0u);
  EXPECT_EQ(VM.safepoints().registered(), 0u); // everyone unregistered
}

TEST(MultiMutator, RendezvousWhileQuarantinePublishesHeldBody) {
  // Every async compile attempt faults, so the single worker keeps driving
  // jobs to quarantine — publishing held bodies — while mutators dispatch
  // through the pending shells and one of them periodically stops the
  // world. The rendezvous and the worker's publish are allowed to overlap;
  // correctness of the guest results and a clean audit are the witnesses.
  CounterFixture Fx;
  VMOptions Opts;
  Opts.MutatorThreads = 2;
  Opts.AsyncCompile = HostToggle::On;
  Opts.CompileThreads = 1;
  Opts.Adaptive.Opt1Threshold = 8;
  Opts.Adaptive.Opt2Threshold = 64;
  Opts.AuditConsistency = HostToggle::On;
  VirtualMachine VM(*Fx.P, Opts);
  ConsistencyAuditor Auditor(VM, /*Stride=*/256);
  VM.setAuditHook(&Auditor);
  VM.setMutationPlan(&Fx.Plan);
  VM.compiler().pipeline().setFaultHook(
      [](const MethodInfo &, int, unsigned) { return true; });

  LocalRootScope Pin(VM.heap());
  for (unsigned T = 0; T < 2; ++T)
    Pin.add(Fx.makeCounter(VM, T % 2));

  std::atomic<uint64_t> ExplicitStops{0};
  VM.runMutators([&](unsigned T) {
    Object *O = Pin[T];
    for (int R = 0; R < 30; ++R) {
      VM.callOn(T, Fx.DriveBump, {valueR(O), valueI(20)});
      if (T == 1 && R % 10 == 5)
        VM.atSafepoint([&] { ExplicitStops++; });
    }
  });
  VM.compiler().sync();

  EXPECT_EQ(ExplicitStops.load(), 3u);
  EXPECT_GT(VM.compiler().pipeline().quarantineCount(), 0u);
  for (unsigned T = 0; T < 2; ++T)
    EXPECT_EQ(VM.call(Fx.Get, {valueR(Pin[T])}).I, (T % 2) ? 6000 : 600);
  EXPECT_TRUE(Auditor.clean()) << Auditor.report();
}

TEST(MultiMutator, RendezvousCompletesWhileMutatorBlockedInWaitFor) {
  // Mutator 0 promotes Counter.bump, whose async compile is stalled by the
  // fault hook, and blocks in waitForCode dispatching the pending shell.
  // Mutator 1 then leads a rendezvous: it must complete while 0 is blocked
  // (Blocked counts as stopped), and only afterwards is the compile
  // released. A protocol that waited for 0 to poll would deadlock here.
  CounterFixture Fx;
  VMOptions Opts;
  Opts.MutatorThreads = 2;
  Opts.AsyncCompile = HostToggle::On;
  Opts.CompileThreads = 1;
  Opts.Adaptive.Opt1Threshold = 8;
  Opts.Adaptive.Opt2Threshold = 1 << 28; // one promotion only
  VirtualMachine VM(*Fx.P, Opts);

  std::atomic<bool> CompileStarted{false};
  std::atomic<bool> ReleaseCompile{false};
  const MethodInfo *Bump = &Fx.P->method(Fx.Bump);
  VM.compiler().pipeline().setFaultHook(
      [&](const MethodInfo &M, int Level, unsigned) {
        if (&M == Bump && Level >= 1) {
          CompileStarted = true;
          while (!ReleaseCompile.load(std::memory_order_relaxed))
            nap();
        }
        return false; // never actually fault
      });

  LocalRootScope Pin(VM.heap());
  Pin.add(Fx.makeCounter(VM, 0));

  std::atomic<uint64_t> LeaderRan{0};
  VM.runMutators([&](unsigned T) {
    if (T == 0) {
      VM.callOn(0, Fx.DriveBump, {valueR(Pin[0]), valueI(50)});
      return;
    }
    // Host-side spinning must still poll, like any long host call-out on a
    // mutator thread — a non-polling Running mutator would stall mutator
    // 0's own promotion rendezvous.
    SafepointSlot *S = VM.interp(1).safepointSlot();
    while (!CompileStarted.load(std::memory_order_relaxed)) {
      S->poll();
      nap();
    }
    nap(5000); // give mutator 0 time to reach waitForCode
    VM.atSafepoint([&] { LeaderRan++; });
    ReleaseCompile = true;
  });

  EXPECT_EQ(LeaderRan.load(), 1u);
  EXPECT_TRUE(CompileStarted.load());
  EXPECT_EQ(VM.call(Fx.Get, {valueR(Pin[0])}).I, 50);
}

TEST(MultiMutator, PerThreadOutputHashesAreDeterministic) {
  // N>1 weakens the determinism contract to per-thread: each mutator's own
  // output stream (and hash) must be a pure function of its workload, never
  // of scheduling, and the merged metrics hash is derived from the
  // per-thread hashes in thread order (docs/threads.md).
  auto RunThreaded = [](unsigned N, std::vector<uint64_t> &Hashes) {
    CounterFixture Fx;
    VMOptions Opts;
    Opts.MutatorThreads = N;
    Opts.Adaptive.Opt1Threshold = 8;
    Opts.Adaptive.Opt2Threshold = 64;
    Opts.AuditConsistency = HostToggle::On;
    VirtualMachine VM(*Fx.P, Opts);
    ConsistencyAuditor Auditor(VM, /*Stride=*/512);
    VM.setAuditHook(&Auditor);
    VM.setMutationPlan(&Fx.Plan);
    LocalRootScope Pin(VM.heap());
    for (unsigned T = 0; T < N; ++T)
      Pin.add(Fx.makeCounter(VM, T % 2));
    VM.runMutators([&](unsigned T) {
      for (int R = 0; R < 10; ++R) {
        VM.callOn(T, Fx.DriveBump, {valueR(Pin[T]), valueI(30)});
        VM.callOn(T, Fx.Report, {valueR(Pin[T])});
      }
    });
    for (unsigned T = 0; T < N; ++T)
      Hashes.push_back(VM.interp(T).outputHash());
    Hashes.push_back(VM.metrics().OutputHash);
    EXPECT_TRUE(Auditor.clean()) << Auditor.report();
  };

  // Single-mutator references for the two per-thread workloads (mode 0 and
  // mode 1): a mutator's stream must match the same work run alone.
  uint64_t Ref[2];
  for (int Mode = 0; Mode < 2; ++Mode) {
    CounterFixture Fx;
    VirtualMachine VM(*Fx.P, VMOptions{});
    VM.setMutationPlan(&Fx.Plan);
    LocalRootScope Pin(VM.heap());
    Pin.add(Fx.makeCounter(VM, Mode));
    for (int R = 0; R < 10; ++R) {
      VM.call(Fx.DriveBump, {valueR(Pin[0]), valueI(30)});
      VM.call(Fx.Report, {valueR(Pin[0])});
    }
    Ref[Mode] = VM.interp().outputHash();
  }

  std::vector<uint64_t> A, B;
  RunThreaded(4, A);
  RunThreaded(4, B);
  EXPECT_EQ(A, B); // run-to-run stability, merged hash included
  for (unsigned T = 0; T < 4; ++T)
    EXPECT_EQ(A[T], Ref[T % 2]); // and each stream matches its solo run
}

TEST(MultiMutator, SingleMutatorRunMutatorsIsTheClassicPath) {
  // At MutatorThreads=1 runMutators is Body(0) inline: no threads, no
  // protocol, and bit-identical results to the plain call() sequence.
  auto Run = [](bool ViaRunMutators) {
    CounterFixture Fx;
    VirtualMachine VM(*Fx.P, VMOptions{});
    VM.setMutationPlan(&Fx.Plan);
    LocalRootScope Pin(VM.heap());
    Pin.add(Fx.makeCounter(VM, 0));
    auto Body = [&](unsigned) {
      VM.call(Fx.DriveBump, {valueR(Pin[0]), valueI(100)});
      VM.call(Fx.Report, {valueR(Pin[0])});
    };
    if (ViaRunMutators)
      VM.runMutators(Body);
    else
      Body(0);
    RunMetrics M = VM.metrics();
    EXPECT_EQ(VM.safepoints().rendezvousCount(), 0u);
    return std::make_pair(M.OutputHash, M.TotalCycles);
  };
  EXPECT_EQ(Run(false), Run(true));
}

} // namespace
