//===-- tests/OnlineControllerTest.cpp - In-VM pipeline (paper section 9) -----===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "online/OnlineController.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

/// Drives SalaryDB batch by batch with the controller polled in between —
/// the intended usage pattern (poll at yield-point-like boundaries).
struct OnlineRun {
  RunMetrics Metrics;
  std::string Output;
  MutationPlan Plan;
  OnlineMutationController::Phase FinalPhase;
  uint64_t ActivationCycle;
};

OnlineRun runSalaryDbOnline(OnlineMutationController::Config Cfg,
                            int Batches = 500) {
  auto W = makeSalaryDb();
  auto P = W->buildProgram();
  VirtualMachine VM(*P, {});
  OnlineMutationController Ctl(VM, Cfg);
  ProgramIds Ids(*P);
  VM.call(Ids.method("TestDriver", "init"), {valueI(400)});
  MethodId RunBatch = Ids.method("TestDriver", "runBatch");
  for (int B = 0; B < Batches; ++B) {
    VM.call(RunBatch, {valueI(4)});
    Ctl.poll();
  }
  VM.call(Ids.method("TestDriver", "checkSum"), {});
  return {VM.metrics(), VM.interp().output(), Ctl.plan(), Ctl.phase(),
          Ctl.activationCycle()};
}

TEST(OnlineController, ReachesActivePhaseAndDerivesThePlan) {
  OnlineMutationController::Config Cfg;
  Cfg.Analysis.HotStateMinFraction = 0.05;
  OnlineRun R = runSalaryDbOnline(Cfg);
  EXPECT_EQ(R.FinalPhase, OnlineMutationController::Phase::Active);
  ASSERT_EQ(R.Plan.Classes.size(), 1u);
  EXPECT_EQ(R.Plan.Classes[0].HotStates.size(), 4u); // grades 0..3
  EXPECT_GT(R.ActivationCycle, 0u);
}

TEST(OnlineController, MutationGoesLiveMidRun) {
  OnlineMutationController::Config Cfg;
  Cfg.Analysis.HotStateMinFraction = 0.05;
  OnlineRun R = runSalaryDbOnline(Cfg);
  // Specialized code was generated and objects migrated to special TIBs
  // after activation.
  EXPECT_GT(R.Metrics.SpecialCodeBytes, 0u);
  EXPECT_GT(R.Metrics.SpecialTibBytes, 0u);
  EXPECT_GT(R.Metrics.Mutation.ObjectTibSwings, 0u);
}

TEST(OnlineController, OutputMatchesOfflineAndBaseline) {
  OnlineMutationController::Config Cfg;
  Cfg.Analysis.HotStateMinFraction = 0.05;
  OnlineRun Online = runSalaryDbOnline(Cfg);

  auto W = makeSalaryDb();
  auto P = W->buildProgram();
  VMOptions Opts;
  Opts.EnableMutation = false;
  VirtualMachine VM(*P, Opts);
  ProgramIds Ids(*P);
  VM.call(Ids.method("TestDriver", "init"), {valueI(400)});
  MethodId RunBatch = Ids.method("TestDriver", "runBatch");
  for (int B = 0; B < 500; ++B)
    VM.call(RunBatch, {valueI(4)});
  VM.call(Ids.method("TestDriver", "checkSum"), {});
  EXPECT_EQ(Online.Output, VM.interp().output());
}

TEST(OnlineController, OnlineBeatsBaselineAfterActivation) {
  OnlineMutationController::Config Cfg;
  Cfg.Analysis.HotStateMinFraction = 0.05;
  Cfg.HotProfileCycles = 1'000'000;
  Cfg.ValueProfileCycles = 1'000'000;
  OnlineRun Online = runSalaryDbOnline(Cfg, 800);

  auto W = makeSalaryDb();
  auto P = W->buildProgram();
  VMOptions Opts;
  Opts.EnableMutation = false;
  VirtualMachine VM(*P, Opts);
  ProgramIds Ids(*P);
  VM.call(Ids.method("TestDriver", "init"), {valueI(400)});
  MethodId RunBatch = Ids.method("TestDriver", "runBatch");
  for (int B = 0; B < 800; ++B)
    VM.call(RunBatch, {valueI(4)});
  VM.call(Ids.method("TestDriver", "checkSum"), {});
  // The whole online run (profiling overhead included) still wins.
  EXPECT_LT(Online.Metrics.TotalCycles, VM.metrics().TotalCycles);
}

TEST(OnlineController, StandsDownWhenNothingIsMutable) {
  // A program with no state-dependent branches: the controller must reach
  // Inert without installing anything.
  Program P;
  ClassId C = P.defineClass("C");
  MethodId Work = P.defineMethod(C, "work", Type::I64, {Type::I64},
                                 {.IsStatic = true});
  {
    FunctionBuilder B("C.work", Type::I64);
    Reg N = B.addArg(Type::I64);
    Reg I = B.newReg(Type::I64);
    Reg S = B.newReg(Type::I64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    B.move(I, Zero);
    B.move(S, Zero);
    auto LHead = B.makeLabel();
    auto LDone = B.makeLabel();
    B.bind(LHead);
    B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
    B.move(S, B.add(S, B.mul(I, I)));
    B.move(I, B.add(I, One));
    B.br(LHead);
    B.bind(LDone);
    B.ret(S);
    P.setBody(Work, B.finalize());
  }
  P.link();
  VirtualMachine VM(P, {});
  OnlineMutationController::Config Cfg;
  Cfg.HotProfileCycles = 100'000;
  Cfg.ValueProfileCycles = 100'000;
  OnlineMutationController Ctl(VM, Cfg);
  for (int I = 0; I < 200; ++I) {
    VM.call(Work, {valueI(200)});
    Ctl.poll();
  }
  EXPECT_EQ(Ctl.phase(), OnlineMutationController::Phase::Inert);
  EXPECT_TRUE(Ctl.plan().empty());
  EXPECT_EQ(VM.metrics().SpecialTibBytes, 0u);
}

TEST(OnlineController, PlanMatchesOfflinePipeline) {
  // The online-derived plan should agree with the offline pipeline on the
  // mutable class, its state field, and the hot-state set.
  OnlineMutationController::Config OnCfg;
  OnCfg.Analysis.HotStateMinFraction = 0.05;
  OnlineRun Online = runSalaryDbOnline(OnCfg);

  auto W = makeSalaryDb();
  OfflineConfig OffCfg;
  OffCfg.HotStateMinFraction = 0.05;
  OfflineResult Off = runOfflinePipeline(*W, OffCfg);

  ASSERT_EQ(Online.Plan.Classes.size(), Off.Plan.Classes.size());
  const MutableClassPlan &A = Online.Plan.Classes[0];
  const MutableClassPlan &B = Off.Plan.Classes[0];
  EXPECT_EQ(A.Cls, B.Cls);
  EXPECT_EQ(A.InstanceStateFields, B.InstanceStateFields);
  EXPECT_EQ(A.HotStates.size(), B.HotStates.size());
  EXPECT_EQ(A.MutableMethods, B.MutableMethods);
}

} // namespace
