//===-- tests/AssemblerTest.cpp - MiniVM textual assembler --------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "asm/Assembler.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

int64_t runMain(Program &P, std::vector<Value> Args = {}) {
  VirtualMachine VM(P, {});
  MethodId M = NoMethodId;
  for (size_t C = 0; C < P.numClasses() && M == NoMethodId; ++C)
    M = P.findMethod(static_cast<ClassId>(C), "main");
  EXPECT_NE(M, NoMethodId);
  return VM.call(M, Args).I;
}

TEST(Assembler, MinimalStaticMethod) {
  auto R = assembleProgram(R"(
    class Main {
      method main(%x: i64) -> i64 static {
        %two = consti 2
        %r = mul %x, %two
        ret %r
      }
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(runMain(*R.P, {valueI(21)}), 42);
}

TEST(Assembler, CommentsAndWhitespace) {
  auto R = assembleProgram(R"(
    # a full-line comment
    class Main {   # trailing comment
      method main() -> i64 static {
        %v = consti 7   # another
        ret %v
      }
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(runMain(*R.P), 7);
}

TEST(Assembler, LoopsWithRegisterReassignment) {
  // %i and %sum are reassigned each iteration: the assembler emits Moves.
  auto R = assembleProgram(R"(
    class Main {
      method main(%n: i64) -> i64 static {
        %i = consti 0
        %sum = consti 0
        %one = consti 1
      @head:
        %t = cmplt %i, %n
        cbz %t, @done
        %sum = add %sum, %i
        %i = add %i, %one
        br @head
      @done:
        ret %sum
      }
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(runMain(*R.P, {valueI(10)}), 45);
}

TEST(Assembler, ObjectsFieldsAndVirtualDispatch) {
  auto R = assembleProgram(R"(
    class Animal {
      ctor <init>() { ret }
      method speak() -> i64 { %v = consti 1  ret %v }
    }
    class Dog extends Animal {
      ctor <init>() {
        callspecial Animal.<init>(%this)
        ret
      }
      method speak() -> i64 { %v = consti 2  ret %v }
    }
    class Main {
      method main() -> i64 static {
        %a = new Animal
        callspecial Animal.<init>(%a)
        %d = new Dog
        callspecial Dog.<init>(%d)
        %x = callvirtual Animal.speak(%a)
        %y = callvirtual Animal.speak(%d)
        %ten = consti 10
        %yy = mul %y, %ten
        %r = add %x, %yy
        ret %r
      }
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(runMain(*R.P), 21); // 1 + 2*10
}

TEST(Assembler, FieldsStaticsAndArrays) {
  auto R = assembleProgram(R"(
    class Box {
      field value: i64
      field count: i64 static
      ctor <init>(%v: i64) {
        putfield %this, Box.value, %v
        %c = getstatic Box.count
        %one = consti 1
        %c2 = add %c, %one
        putstatic Box.count, %c2
        ret
      }
    }
    class Main {
      method main() -> i64 static {
        %three = consti 3
        %arr = newarray ref, %three
        %i = consti 0
        %b0 = new Box
        %v0 = consti 5
        callspecial Box.<init>(%b0, %v0)
        astore ref, %arr, %i, %b0
        %b = aload ref, %arr, %i
        %val = getfield %b, Box.value
        %cnt = getstatic Box.count
        %r = add %val, %cnt
        ret %r
      }
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(runMain(*R.P), 6); // 5 + 1 construction
}

TEST(Assembler, FloatsAndConversions) {
  auto R = assembleProgram(R"(
    class Main {
      method main(%x: i64) -> i64 static {
        %f = i2f %x
        %h = constf 0.5
        %p = fmul %f, %h
        %r = f2i %p
        ret %r
      }
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(runMain(*R.P, {valueI(9)}), 4);
}

TEST(Assembler, InterfacesDispatch) {
  auto R = assembleProgram(R"(
    interface Tagged {
      method tag() -> i64
    }
    class A implements Tagged {
      ctor <init>() { ret }
      method tag() -> i64 { %v = consti 9  ret %v }
    }
    class Main {
      method main() -> i64 static {
        %a = new A
        callspecial A.<init>(%a)
        %t = callinterface Tagged.tag(%a)
        ret %t
      }
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(runMain(*R.P), 9);
}

TEST(Assembler, InstanceOfAndPrint) {
  auto R = assembleProgram(R"(
    class A { ctor <init>() { ret } }
    class B extends A { ctor <init>() { ret } }
    class Main {
      method main() -> i64 static {
        %b = new B
        callspecial B.<init>(%b)
        %isa = instanceof %b, A
        print %isa
        ret %isa
      }
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  VirtualMachine VM(*R.P, {});
  MethodId M = R.P->findMethod(R.P->findClass("Main"), "main");
  EXPECT_EQ(VM.call(M, {}).I, 1);
  EXPECT_EQ(VM.interp().output(), "1");
}

TEST(Assembler, AssembledMutableClassWorksWithMutation) {
  // The whole point: author a mutable class in text and mutate it.
  auto R = assembleProgram(R"(
    class Counter {
      field mode: i64 private
      field total: i64
      ctor <init>(%m: i64) {
        putfield %this, Counter.mode, %m
        ret
      }
      method bump() -> void {
        %m = getfield %this, Counter.mode
        %t = getfield %this, Counter.total
        cbnz %m, @big
        %one = consti 1
        %n = add %t, %one
        putfield %this, Counter.total, %n
        ret
      @big:
        %hundred = consti 100
        %n2 = add %t, %hundred
        putfield %this, Counter.total, %n2
        ret
      }
      method get() -> i64 {
        %t = getfield %this, Counter.total
        ret %t
      }
    }
  )");
  ASSERT_TRUE(R.ok()) << R.Error;
  Program &P = *R.P;
  ClassId C = P.findClass("Counter");
  MutationPlan Plan;
  MutableClassPlan CP;
  CP.Cls = C;
  CP.InstanceStateFields = {P.findField(C, "mode")};
  HotState S0;
  S0.InstanceVals = {valueI(0)};
  CP.HotStates = {S0};
  CP.MutableMethods = {P.findMethod(C, "bump")};
  Plan.Classes.push_back(CP);

  VirtualMachine VM(P, {});
  VM.setMutationPlan(&Plan);
  ClassInfo &CI = P.cls(C);
  Object *O = VM.heap().allocateInstance(CI, CI.ClassTib);
  VM.call(P.findMethod(C, "<init>"), {valueR(O), valueI(0)});
  EXPECT_EQ(O->Tib, CI.SpecialTibs[0]);
  for (int I = 0; I < 5000; ++I)
    VM.call(P.findMethod(C, "bump"), {valueR(O)});
  EXPECT_FALSE(P.method(P.findMethod(C, "bump")).Specials.empty());
  EXPECT_EQ(VM.call(P.findMethod(C, "get"), {valueR(O)}).I, 5000);
}

// --- Error reporting --------------------------------------------------------

TEST(AssemblerErrors, UnknownOpcode) {
  auto R = assembleProgram(R"(
    class Main {
      method main() -> void static {
        frobnicate %x
        ret
      }
    }
  )");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("frobnicate"), std::string::npos);
  EXPECT_NE(R.Error.find("line 4"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedRegister) {
  auto R = assembleProgram(R"(
    class Main {
      method main() -> i64 static {
        ret %nope
      }
    }
  )");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("undefined register"), std::string::npos);
}

TEST(AssemblerErrors, UnknownClassInExtends) {
  auto R = assembleProgram("class A extends Ghost { }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("Ghost"), std::string::npos);
}

TEST(AssemblerErrors, UnknownField) {
  auto R = assembleProgram(R"(
    class Main {
      method main() -> i64 static {
        %v = getstatic Main.missing
        ret %v
      }
    }
  )");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("missing"), std::string::npos);
}

TEST(AssemblerErrors, VoidCallWithDestination) {
  auto R = assembleProgram(R"(
    class Main {
      method helper() -> void static { ret }
      method main() -> i64 static {
        %v = callstatic Main.helper()
        ret %v
      }
    }
  )");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("void call"), std::string::npos);
}

TEST(AssemblerErrors, UnterminatedBody) {
  auto R = assembleProgram("class Main { method main() -> void static { ret ");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unterminated"), std::string::npos);
}

TEST(AssemblerErrors, DuplicateClass) {
  auto R = assembleProgram("class A { }\nclass A { }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("duplicate"), std::string::npos);
}

TEST(AssemblerErrors, CtorWithReturnType) {
  auto R = assembleProgram(R"(
    class A {
      ctor <init>() -> i64 { %v = consti 0 ret %v }
    }
  )");
  EXPECT_FALSE(R.ok());
}

} // namespace
