//===-- tests/AdaptiveTest.cpp - Adaptive optimization system -----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace dchm;
using dchm::test::CounterFixture;

namespace {

TEST(Adaptive, LazyOpt0OnFirstInvocation) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  const MethodInfo &M = Fx.P->method(Fx.Get);
  EXPECT_EQ(M.CurOptLevel, -1);
  Object *O = Fx.makeCounter(VM, 0);
  VM.call(Fx.Get, {valueR(O)});
  EXPECT_EQ(M.CurOptLevel, 0);
  EXPECT_GE(VM.adaptive().stats().InitialCompiles, 2u); // ctor + get
}

TEST(Adaptive, LadderClimbsAtThresholds) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.Adaptive.Opt1Threshold = 50;
  Opts.Adaptive.Opt2Threshold = 200;
  VirtualMachine VM(*Fx.P, Opts);
  Object *O = Fx.makeCounter(VM, 0);
  const MethodInfo &M = Fx.P->method(Fx.Bump);
  for (int I = 0; I < 40; ++I)
    VM.call(Fx.Bump, {valueR(O)});
  EXPECT_EQ(M.CurOptLevel, 0);
  for (int I = 0; I < 30; ++I)
    VM.call(Fx.Bump, {valueR(O)});
  EXPECT_EQ(M.CurOptLevel, 1);
  for (int I = 0; I < 200; ++I)
    VM.call(Fx.Bump, {valueR(O)});
  EXPECT_EQ(M.CurOptLevel, 2);
}

TEST(Adaptive, BackedgesCountAsSamples) {
  // A method invoked once with a long loop still gets promoted (so the
  // NEXT invocation runs optimized code).
  Program P;
  ClassId C = P.defineClass("C");
  MethodId Loopy = P.defineMethod(C, "loopy", Type::I64, {Type::I64},
                                  {.IsStatic = true});
  {
    FunctionBuilder B("C.loopy", Type::I64);
    Reg N = B.addArg(Type::I64);
    Reg I = B.newReg(Type::I64);
    Reg S = B.newReg(Type::I64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    B.move(I, Zero);
    B.move(S, Zero);
    auto LHead = B.makeLabel();
    auto LDone = B.makeLabel();
    B.bind(LHead);
    B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
    B.move(S, B.add(S, I));
    B.move(I, B.add(I, One));
    B.br(LHead);
    B.bind(LDone);
    B.ret(S);
    P.setBody(Loopy, B.finalize());
  }
  P.link();
  VMOptions Opts;
  Opts.Adaptive.Opt1Threshold = 100;
  Opts.Adaptive.Opt2Threshold = 1000000; // out of reach
  VirtualMachine VM(P, Opts);
  VM.call(Loopy, {valueI(500)});
  EXPECT_EQ(P.method(Loopy).CurOptLevel, 1);
  EXPECT_GE(P.method(Loopy).SampleCount, 500u);
}

TEST(Adaptive, Opt1RunsThePipeline) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.Adaptive.Opt1Threshold = 10;
  Opts.Adaptive.Opt2Threshold = 1000000;
  VirtualMachine VM(*Fx.P, Opts);
  Object *O = Fx.makeCounter(VM, 0);
  for (int I = 0; I < 50; ++I)
    VM.call(Fx.Get, {valueR(O)});
  const MethodInfo &M = Fx.P->method(Fx.Get);
  ASSERT_EQ(M.CurOptLevel, 1);
  VM.compiler().sync(); // async default: settle bodies before reading them
  // The opt0 version is a verbatim translation; opt1 at least as compact.
  ASSERT_GE(M.CompiledVersions.size(), 2u);
  EXPECT_EQ(M.CompiledVersions[0]->code().Insts.size(),
            M.Bytecode.Insts.size());
  EXPECT_LE(M.CompiledVersions.back()->code().Insts.size(),
            M.Bytecode.Insts.size());
}

TEST(Adaptive, NoMutationMeansNoSpecials) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.EnableMutation = false;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan); // ignored
  Object *O = Fx.makeCounter(VM, 0);
  for (int I = 0; I < 6000; ++I)
    VM.call(Fx.Bump, {valueR(O)});
  EXPECT_EQ(Fx.P->method(Fx.Bump).CurOptLevel, 2);
  EXPECT_TRUE(Fx.P->method(Fx.Bump).Specials.empty());
  EXPECT_EQ(VM.compiler().stats().SpecialCompiles, 0u);
}

TEST(Adaptive, AcceleratedModeCompilesMutableMethodsImmediately) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.Adaptive.AcceleratedMutableHotness = true;
  // Normal thresholds far away: only acceleration can reach opt2.
  Opts.Adaptive.Opt1Threshold = 1000000;
  Opts.Adaptive.Opt2Threshold = 2000000;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 0);
  VM.call(Fx.Bump, {valueR(O)}); // first call triggers opt0+opt1+opt2
  const MethodInfo &M = Fx.P->method(Fx.Bump);
  EXPECT_EQ(M.CurOptLevel, 2);
  EXPECT_EQ(M.Specials.size(), 2u);
  // Non-mutable methods are unaffected by acceleration.
  VM.call(Fx.Get, {valueR(O)});
  EXPECT_EQ(Fx.P->method(Fx.Get).CurOptLevel, 0);
}

TEST(Adaptive, CompileCyclesAccumulateInMetrics) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.Adaptive.Opt1Threshold = 10;
  Opts.Adaptive.Opt2Threshold = 50;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 0);
  for (int I = 0; I < 100; ++I)
    VM.call(Fx.Bump, {valueR(O)});
  RunMetrics M = VM.metrics();
  EXPECT_GT(M.CompileCycles, 0u);
  EXPECT_GT(M.SpecialCompileCycles, 0u);
  EXPECT_GT(M.CodeBytes, 0u);
  EXPECT_GT(M.SpecialCodeBytes, 0u);
  EXPECT_EQ(M.TotalCycles,
            M.ExecCycles + M.CompileCycles + M.GcCycles + M.MutationCycles);
  // Special code is cheaper to produce than a from-scratch compile
  // (generated "at the same time" as the opt2 general compile).
  EXPECT_LT(M.SpecialCompileCycles, M.CompileCycles);
}

} // namespace
