//===-- tests/InterpreterTest.cpp - Interpreter semantics ---------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace dchm;
using dchm::test::SingleFunctionProgram;

namespace {

/// Builds a two-argument i64 function applying one binary opcode.
int64_t evalOp(Opcode Op, int64_t X, int64_t Y) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg Bb = B.addArg(Type::I64);
  Reg R = B.arith(Op, A, Bb);
  B.ret(R);
  SingleFunctionProgram S = SingleFunctionProgram::create(B.finalize());
  return S.run({valueI(X), valueI(Y)}).I;
}

TEST(Interp, IntegerArithmetic) {
  EXPECT_EQ(evalOp(Opcode::Add, 40, 2), 42);
  EXPECT_EQ(evalOp(Opcode::Sub, 40, 2), 38);
  EXPECT_EQ(evalOp(Opcode::Mul, -6, 7), -42);
  EXPECT_EQ(evalOp(Opcode::Div, 43, 7), 6);
  EXPECT_EQ(evalOp(Opcode::Div, -43, 7), -6); // C-style truncation
  EXPECT_EQ(evalOp(Opcode::Rem, 43, 7), 1);
  EXPECT_EQ(evalOp(Opcode::Rem, -43, 7), -1);
  EXPECT_EQ(evalOp(Opcode::And, 0b1100, 0b1010), 0b1000);
  EXPECT_EQ(evalOp(Opcode::Or, 0b1100, 0b1010), 0b1110);
  EXPECT_EQ(evalOp(Opcode::Xor, 0b1100, 0b1010), 0b0110);
  EXPECT_EQ(evalOp(Opcode::Shl, 3, 4), 48);
  EXPECT_EQ(evalOp(Opcode::Shr, -16, 2), -4); // arithmetic shift
}

TEST(Interp, ShiftCountsAreMasked) {
  EXPECT_EQ(evalOp(Opcode::Shl, 1, 64), 1);
  EXPECT_EQ(evalOp(Opcode::Shl, 1, 65), 2);
}

TEST(Interp, IntegerOverflowWraps) {
  int64_t Max = std::numeric_limits<int64_t>::max();
  EXPECT_EQ(evalOp(Opcode::Add, Max, 1), std::numeric_limits<int64_t>::min());
}

TEST(Interp, Comparisons) {
  EXPECT_EQ(evalOp(Opcode::CmpLT, 1, 2), 1);
  EXPECT_EQ(evalOp(Opcode::CmpLT, 2, 1), 0);
  EXPECT_EQ(evalOp(Opcode::CmpLE, 2, 2), 1);
  EXPECT_EQ(evalOp(Opcode::CmpEQ, 5, 5), 1);
  EXPECT_EQ(evalOp(Opcode::CmpNE, 5, 5), 0);
  EXPECT_EQ(evalOp(Opcode::CmpGT, 3, 2), 1);
  EXPECT_EQ(evalOp(Opcode::CmpGE, 2, 3), 0);
}

TEST(Interp, FloatArithmeticAndConversion) {
  FunctionBuilder B("f", Type::F64);
  Reg A = B.addArg(Type::I64);
  Reg F = B.i2f(A);
  Reg H = B.constF(0.5);
  Reg R = B.fmul(F, H);
  B.ret(R);
  SingleFunctionProgram S = SingleFunctionProgram::create(B.finalize());
  EXPECT_DOUBLE_EQ(S.run({valueI(5)}).F, 2.5);
}

TEST(Interp, F2ITruncates) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::F64);
  B.ret(B.f2i(A));
  SingleFunctionProgram S = SingleFunctionProgram::create(B.finalize());
  EXPECT_EQ(S.run({valueF(2.9)}).I, 2);
  EXPECT_EQ(S.run({valueF(-2.9)}).I, -2);
}

TEST(Interp, LoopComputesSum) {
  // sum of 0..n-1
  FunctionBuilder B("f", Type::I64);
  Reg N = B.addArg(Type::I64);
  Reg I = B.newReg(Type::I64);
  Reg Sum = B.newReg(Type::I64);
  Reg Zero = B.constI(0);
  Reg One = B.constI(1);
  B.move(I, Zero);
  B.move(Sum, Zero);
  auto LHead = B.makeLabel();
  auto LDone = B.makeLabel();
  B.bind(LHead);
  B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
  B.move(Sum, B.add(Sum, I));
  B.move(I, B.add(I, One));
  B.br(LHead);
  B.bind(LDone);
  B.ret(Sum);
  SingleFunctionProgram S = SingleFunctionProgram::create(B.finalize());
  EXPECT_EQ(S.run({valueI(10)}).I, 45);
  EXPECT_EQ(S.run({valueI(0)}).I, 0);
}

TEST(Interp, ArraysRoundTrip) {
  FunctionBuilder B("f", Type::I64);
  Reg N = B.addArg(Type::I64);
  Reg Arr = B.newArray(Type::I64, N);
  Reg Two = B.constI(2);
  Reg V = B.constI(99);
  B.astore(Type::I64, Arr, Two, V);
  Reg L = B.alen(Arr);
  Reg X = B.aload(Type::I64, Arr, Two);
  B.ret(B.add(L, X));
  SingleFunctionProgram S = SingleFunctionProgram::create(B.finalize());
  EXPECT_EQ(S.run({valueI(5)}).I, 104);
}

TEST(Interp, PrintProducesOutputAndHash) {
  FunctionBuilder B("f", Type::Void);
  Reg V = B.constI(1234);
  B.printNum(V, Type::I64);
  Reg Ch = B.constI('!');
  B.printChar(Ch);
  B.retVoid();
  SingleFunctionProgram S = SingleFunctionProgram::create(B.finalize());
  VirtualMachine VM(*S.P, {});
  VM.call(S.Main, {});
  EXPECT_EQ(VM.interp().output(), "1234!");
  uint64_t H1 = VM.interp().outputHash();
  VM.call(S.Main, {});
  EXPECT_NE(VM.interp().outputHash(), H1); // hash is cumulative
}

TEST(Interp, StatsCountInstructionsAndCycles) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg S = B.add(A, A);
  B.ret(S);
  SingleFunctionProgram SP = SingleFunctionProgram::create(B.finalize());
  VirtualMachine VM(*SP.P, {});
  VM.call(SP.Main, {valueI(1)});
  EXPECT_EQ(VM.interp().stats().Invocations, 1u);
  EXPECT_GE(VM.interp().stats().Insts, 2u);
  EXPECT_GT(VM.interp().stats().Cycles, 0u);
}

TEST(Interp, RecursionWorks) {
  // fib via recursion exercises the frame stack.
  Program P;
  ClassId C = P.defineClass("C");
  MethodId Fib = P.defineMethod(C, "fib", Type::I64, {Type::I64},
                                {.IsStatic = true});
  {
    FunctionBuilder B("C.fib", Type::I64);
    Reg N = B.addArg(Type::I64);
    auto LRec = B.makeLabel();
    Reg Two = B.constI(2);
    B.cbnz(B.cmp(Opcode::CmpGE, N, Two), LRec);
    B.ret(N);
    B.bind(LRec);
    Reg One = B.constI(1);
    Reg A = B.callStatic(Fib, {B.sub(N, One)}, Type::I64);
    Reg Bb = B.callStatic(Fib, {B.sub(N, Two)}, Type::I64);
    B.ret(B.add(A, Bb));
    P.setBody(Fib, B.finalize());
  }
  P.link();
  VirtualMachine VM(P, {});
  EXPECT_EQ(VM.call(Fib, {valueI(10)}).I, 55);
}

TEST(Interp, InstanceOfUsesTypeInfoNotTibIdentity) {
  // Build a mutable class, a driver method computing a bit mask of
  // instanceOf results, and check that a *mutated* object (whose TIB is a
  // special TIB, not the class TIB) still type-tests as its class.
  Program P;
  ClassId Iface = P.defineInterface("I");
  MethodId IfM = P.defineMethod(Iface, "m", Type::Void, {});
  ClassId A = P.defineClass("A");
  P.addInterface(A, Iface);
  FieldId Mode = P.defineField(A, "mode", Type::I64, false);
  MethodId Am = P.defineMethod(A, "m", Type::Void, {});
  {
    FunctionBuilder B("A.m", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg M = B.getField(This, Mode, Type::I64);
    auto L = B.makeLabel();
    B.cbz(M, L);
    B.bind(L);
    B.retVoid();
    P.setBody(Am, B.finalize());
  }
  ClassId Sub = P.defineClass("Sub", A);
  MethodId Isa = P.defineMethod(A, "isa", Type::I64, {Type::Ref},
                                {.IsStatic = true});
  {
    FunctionBuilder B("A.isa", Type::I64);
    Reg O = B.addArg(Type::Ref);
    Reg R1 = B.instanceOf(O, A);
    Reg R2 = B.instanceOf(O, Iface);
    Reg R3 = B.instanceOf(O, Sub);
    Reg Two = B.constI(2);
    Reg Four = B.constI(4);
    B.ret(B.add(R1, B.add(B.mul(R2, Two), B.mul(R3, Four))));
    P.setBody(Isa, B.finalize());
  }
  P.link();
  (void)IfM;

  MutationPlan Plan;
  MutableClassPlan CP;
  CP.Cls = A;
  CP.InstanceStateFields = {Mode};
  HotState S0;
  S0.InstanceVals = {valueI(0)};
  CP.HotStates = {S0};
  CP.MutableMethods = {Am};
  Plan.Classes.push_back(CP);

  VirtualMachine VM(P, {});
  VM.setMutationPlan(&Plan);
  ClassInfo &CA = P.cls(A);
  Object *O = VM.heap().allocateInstance(CA, CA.ClassTib);
  // Store mode = 0 through a state-field write: the object mutates.
  FieldInfo &ModeF = P.field(Mode);
  O->set(ModeF.Slot, valueI(0));
  VM.mutation().onInstanceStateStore(O, ModeF);
  ASSERT_TRUE(O->Tib->isSpecial());
  // instanceOf A: yes; instanceOf I: yes; instanceOf Sub: no => 1+2+0 = 3.
  EXPECT_EQ(VM.call(Isa, {valueR(O)}).I, 3);
}

TEST(InterpDeath, NullFieldAccessTraps) {
  FunctionBuilder B("f", Type::I64);
  Reg O = B.constNull();
  Reg V = B.getField(O, 0, Type::I64);
  B.ret(V);
  IRFunction F = B.finalize();
  // FieldId 0 must exist; build a program with one instance field.
  Program P;
  ClassId C = P.defineClass("C");
  P.defineField(C, "x", Type::I64, false);
  MethodId M = P.defineMethod(C, "m", Type::I64, {}, {.IsStatic = true});
  P.setBody(M, std::move(F));
  P.link();
  VirtualMachine VM(P, {});
  EXPECT_DEATH(VM.call(M, {}), "null pointer");
}

TEST(InterpDeath, ArrayBoundsTrap) {
  FunctionBuilder B("f", Type::I64);
  Reg N = B.constI(4);
  Reg Arr = B.newArray(Type::I64, N);
  Reg Nine = B.constI(9);
  B.ret(B.aload(Type::I64, Arr, Nine));
  SingleFunctionProgram S = SingleFunctionProgram::create(B.finalize());
  VirtualMachine VM(*S.P, {});
  EXPECT_DEATH(VM.call(S.Main, {}), "out of bounds");
}

TEST(InterpDeath, DivisionByZeroTraps) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg Z = B.constI(0);
  B.ret(B.div(A, Z));
  SingleFunctionProgram S = SingleFunctionProgram::create(B.finalize());
  VirtualMachine VM(*S.P, {});
  EXPECT_DEATH(VM.call(S.Main, {valueI(1)}), "division by zero");
}

TEST(InterpDeath, StackOverflowTraps) {
  Program P;
  ClassId C = P.defineClass("C");
  MethodId M = P.defineMethod(C, "inf", Type::Void, {}, {.IsStatic = true});
  FunctionBuilder B("C.inf", Type::Void);
  B.callStatic(M, {}, Type::Void);
  B.retVoid();
  P.setBody(M, B.finalize());
  P.link();
  VirtualMachine VM(P, {});
  // The trap is diagnosable: it names the method being invoked and the
  // frame depth at which the MaxFrames limit was hit.
  EXPECT_DEATH(VM.call(M, {}),
               "VM stack overflow invoking 'C\\.inf': frame depth 512 "
               "reached the MaxFrames limit \\(512\\)");
}

TEST(Interp, DeepRecursionNearFrameLimitSucceeds) {
  // sum(n) = n + sum(n - 1); depth 500 sits just under MaxFrames (512) and
  // forces the register arena through several geometric growths (each frame
  // re-derives its register window after the nested call returns).
  for (bool Arena : {false, true}) {
    Program P;
    ClassId C = P.defineClass("C");
    MethodId M = P.defineMethod(C, "sum", Type::I64, {Type::I64},
                                {.IsStatic = true});
    FunctionBuilder B("C.sum", Type::I64);
    Reg N = B.addArg(Type::I64);
    auto Rec = B.makeLabel();
    B.cbnz(N, Rec);
    B.ret(B.constI(0));
    B.bind(Rec);
    Reg One = B.constI(1);
    Reg Rest = B.callStatic(M, {B.sub(N, One)}, Type::I64);
    B.ret(B.add(N, Rest));
    P.setBody(M, B.finalize());
    P.link();
    VMOptions Opts;
    Opts.FrameArena = Arena;
    VirtualMachine VM(P, Opts);
    EXPECT_EQ(VM.call(M, {valueI(500)}).I, 500 * 501 / 2);
  }
}

} // namespace
