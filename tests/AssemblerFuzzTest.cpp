//===-- tests/AssemblerFuzzTest.cpp - Assembler robustness sweeps -------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// Robustness property: assembleProgram never crashes or aborts — malformed
/// input always comes back as a diagnostic. The sweep mutates a valid
/// program with random deletions/truncations/character flips.
///
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

const char *ValidProgram = R"(
class Pair {
  field a: i64
  field b: f64 private
  ctor <init>(%x: i64) {
    putfield %this, Pair.a, %x
    %z = constf 0.5
    putfield %this, Pair.b, %z
    ret
  }
  method sum() -> i64 {
    %a = getfield %this, Pair.a
    %bf = getfield %this, Pair.b
    %bi = f2i %bf
    %s = add %a, %bi
    ret %s
  }
}
class Main {
  method main(%n: i64) -> i64 static {
    %p = new Pair
    callspecial Pair.<init>(%p, %n)
    %acc = consti 0
    %i = consti 0
    %one = consti 1
  @head:
    %t = cmplt %i, %n
    cbz %t, @done
    %v = callvirtual Pair.sum(%p)
    %acc = add %acc, %v
    %i = add %i, %one
    br @head
  @done:
    ret %acc
  }
}
)";

TEST(AssemblerFuzz, ValidBaselineAssembles) {
  auto R = assembleProgram(ValidProgram);
  ASSERT_TRUE(R.ok()) << R.Error;
}

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, TruncationsNeverCrash) {
  std::string Src = ValidProgram;
  Rng R(GetParam());
  size_t Cut = R.nextBelow(Src.size());
  auto Res = assembleProgram(Src.substr(0, Cut));
  // Either it still assembles (cut fell between items) or it reports an
  // error with a line number; it must never crash.
  if (!Res.ok()) {
    EXPECT_NE(Res.Error.find("line"), std::string::npos) << Res.Error;
  }
}

TEST_P(FuzzSweep, CharacterFlipsNeverCrash) {
  std::string Src = ValidProgram;
  Rng R(GetParam() * 7919 + 3);
  for (int Flip = 0; Flip < 4; ++Flip) {
    size_t At = R.nextBelow(Src.size());
    Src[At] = static_cast<char>(' ' + R.nextBelow(95));
  }
  auto Res = assembleProgram(Src);
  (void)Res; // ok or error: both fine, crashing is not
  SUCCEED();
}

TEST_P(FuzzSweep, LineDeletionsNeverCrash) {
  std::string Src = ValidProgram;
  Rng R(GetParam() * 31 + 17);
  // Delete one random line.
  std::vector<std::string> Lines;
  size_t Start = 0;
  for (size_t I = 0; I <= Src.size(); ++I) {
    if (I == Src.size() || Src[I] == '\n') {
      Lines.push_back(Src.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  Lines.erase(Lines.begin() +
              static_cast<long>(R.nextBelow(Lines.size())));
  std::string Out;
  for (const std::string &L : Lines)
    Out += L + "\n";
  auto Res = assembleProgram(Out);
  (void)Res;
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range<uint64_t>(1, 26));

TEST(AssemblerFuzz, GarbageInputsReportErrors) {
  const char *Garbage[] = {
      "",
      "}}}}{{{{",
      "class",
      "class A extends",
      "class A { field }",
      "class A { method m( { ret } }",
      "interface I { method m() -> i64 { ret } }",
      "class A { method m() -> i64 static { %x = consti } }",
      "class A { method m() -> void static { br @nowhere ret } }",
      "\xff\xfe\x01\x02",
  };
  for (const char *G : Garbage) {
    auto R = assembleProgram(G);
    EXPECT_FALSE(R.ok()) << "accepted garbage: " << G;
    EXPECT_FALSE(R.Error.empty());
  }
}

} // namespace
