//===-- tests/SpecializerTest.cpp - State-field specialization ----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "compiler/Passes.h"
#include "compiler/Specializer.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

size_t countOp(const IRFunction &F, Opcode Op) {
  size_t N = 0;
  for (const Instruction &I : F.Insts)
    if (I.Op == Op)
      ++N;
  return N;
}

struct SpecFixture : ::testing::Test {
  test::CounterFixture Fx{/*WithStaticField=*/true};
  const MutableClassPlan &plan() { return Fx.Plan.Classes[0]; }
};

TEST_F(SpecFixture, FoldsReceiverStateFieldLoad) {
  IRFunction F = Fx.P->method(Fx.Bump).Bytecode;
  unsigned Folded = specializeForState(F, Fx.P->method(Fx.Bump), plan(), 0);
  EXPECT_GE(Folded, 1u);
  // The mode load is gone; a ConstI 0 replaced it.
  for (const Instruction &I : F.Insts) {
    if (I.Op == Opcode::GetField) {
      EXPECT_NE(static_cast<FieldId>(I.Imm), Fx.Mode);
    }
  }
}

TEST_F(SpecFixture, PipelineCollapsesSpecializedChain) {
  IRFunction F = Fx.P->method(Fx.Bump).Bytecode;
  size_t Before = F.Insts.size();
  specializeForState(F, Fx.P->method(Fx.Bump), plan(), 1); // mode == 1
  runOptPipeline(F);
  EXPECT_LT(F.Insts.size(), Before);
  EXPECT_EQ(countOp(F, Opcode::Cbnz), 0u); // branch chain folded away
  // Only the +10 arm survives.
  bool FoundTen = false;
  for (const Instruction &I : F.Insts)
    if (I.Op == Opcode::ConstI && I.Imm == 10)
      FoundTen = true;
  EXPECT_TRUE(FoundTen);
}

TEST_F(SpecFixture, StaticStateFieldsFoldEverywhere) {
  IRFunction F = Fx.P->method(Fx.StaticScale).Bytecode;
  unsigned Folded =
      specializeForState(F, Fx.P->method(Fx.StaticScale), plan(), 0);
  EXPECT_EQ(Folded, 1u);
  EXPECT_EQ(countOp(F, Opcode::GetStatic), 0u);
  runOptPipeline(F);
  // globalMode == 0 in state 0, so the whole method folds to return 0.
  bool FoundZero = false;
  for (const Instruction &I : F.Insts)
    if (I.Op == Opcode::ConstI && I.Imm == 0)
      FoundZero = true;
  EXPECT_TRUE(FoundZero);
  EXPECT_EQ(countOp(F, Opcode::Mul), 0u);
}

TEST_F(SpecFixture, NonReceiverLoadIsNotFolded) {
  // A method loading the state field off *another* object must keep the
  // load: the special TIB only encodes the receiver's state.
  Program &P = *Fx.P;
  IRFunction F = [&] {
    FunctionBuilder B("other", Type::I64);
    B.addArg(Type::Ref);          // this
    Reg Other = B.addArg(Type::Ref); // some other Counter
    Reg V = B.getField(Other, Fx.Mode, Type::I64);
    B.ret(V);
    return B.finalize();
  }();
  // Treat it as a body of Bump's method record for receiver typing.
  unsigned Folded = specializeForState(F, P.method(Fx.Bump), plan(), 0);
  EXPECT_EQ(Folded, 0u);
  EXPECT_EQ(countOp(F, Opcode::GetField), 1u);
}

TEST_F(SpecFixture, CountSpecializableReadsMatchesM) {
  const MethodInfo &M = Fx.P->method(Fx.Bump);
  // bump() reads `mode` once.
  EXPECT_EQ(countSpecializableReads(M.Bytecode, M, plan()), 1u);
  const MethodInfo &S = Fx.P->method(Fx.StaticScale);
  EXPECT_EQ(countSpecializableReads(S.Bytecode, S, plan()), 1u);
}

TEST_F(SpecFixture, SpecializedCodeBehavesLikeGeneralInState) {
  // The core no-guards guarantee: for an object in hot state k, the
  // specialized body computes exactly what the general body computes.
  for (size_t State = 0; State < plan().HotStates.size(); ++State) {
    int64_t ModeV = plan().HotStates[State].InstanceVals[0].I;

    VMOptions Opts;
    Opts.EnableMutation = false;
    test::CounterFixture FreshG; // general run
    VirtualMachine VMG(*FreshG.P, Opts);
    Object *OG = FreshG.makeCounter(VMG, ModeV);
    VMG.call(FreshG.Bump, {valueR(OG)});
    int64_t General = VMG.call(FreshG.Get, {valueR(OG)}).I;

    test::CounterFixture FreshS; // specialized run (mutation on)
    VirtualMachine VMS(*FreshS.P, {});
    VMS.setMutationPlan(&FreshS.Plan);
    Object *OS = FreshS.makeCounter(VMS, ModeV);
    // Force opt2 so the dispatch really lands in specialized code.
    for (int I = 0; I < 5000; ++I)
      VMS.call(FreshS.Bump, {valueR(OS)});
    VMS.call(FreshS.Bump, {valueR(OS)});
    int64_t Specialized = VMS.call(FreshS.Get, {valueR(OS)}).I;
    EXPECT_EQ(Specialized % 10, General % 10)
        << "state " << State; // same increment arm
  }
}

TEST_F(SpecFixture, FloatStateValuesFoldToConstF) {
  Program P;
  ClassId C = P.defineClass("C");
  FieldId Rate = P.defineField(C, "rate", Type::F64, false);
  MethodId Apply = P.defineMethod(C, "apply", Type::F64, {Type::F64});
  {
    FunctionBuilder B("C.apply", Type::F64);
    Reg This = B.addArg(Type::Ref);
    Reg X = B.addArg(Type::F64);
    Reg R = B.getField(This, Rate, Type::F64);
    B.ret(B.fmul(X, R));
    P.setBody(Apply, B.finalize());
  }
  P.link();
  MutableClassPlan CP;
  CP.Cls = C;
  CP.InstanceStateFields = {Rate};
  HotState S;
  S.InstanceVals = {valueF(1.5)};
  CP.HotStates = {S};
  CP.MutableMethods = {Apply};

  IRFunction F = P.method(Apply).Bytecode;
  EXPECT_EQ(specializeForState(F, P.method(Apply), CP, 0), 1u);
  bool FoundConstF = false;
  for (const Instruction &I : F.Insts)
    if (I.Op == Opcode::ConstF && I.FImm == 1.5)
      FoundConstF = true;
  EXPECT_TRUE(FoundConstF);
}

} // namespace
