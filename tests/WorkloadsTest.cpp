//===-- tests/WorkloadsTest.cpp - Benchmark program integration tests ---------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// Integration tests over the seven Table 1 programs. The central property
/// is semantic transparency: a run with dynamic class hierarchy mutation
/// enabled produces byte-identical program output to a run without it.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/OlcAnalysis.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

struct WorkloadRun {
  RunMetrics Metrics;
  std::string Output;
};

WorkloadRun runOnce(Workload &W, bool Mutation, const MutationPlan *Plan,
                    double Scale = 0.3) {
  auto P = W.buildProgram();
  VMOptions Opts;
  Opts.EnableMutation = Mutation;
  VirtualMachine VM(*P, Opts);
  OlcDatabase Db;
  if (Mutation && Plan) {
    VM.setMutationPlan(Plan);
    Db = analyzeObjectLifetimeConstants(*P, *Plan);
    VM.setOlcDatabase(&Db);
  }
  W.driveScaled(VM, Scale);
  return {VM.metrics(), VM.interp().output()};
}

class WorkloadParity : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadParity, MutationPreservesOutput) {
  auto All = makeAllWorkloads();
  Workload &W = *All[static_cast<size_t>(GetParam())];
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(W, Cfg);
  WorkloadRun Base = runOnce(W, false, nullptr);
  WorkloadRun Mut = runOnce(W, true, &R.Plan);
  EXPECT_EQ(Base.Output, Mut.Output) << W.name();
  EXPECT_EQ(Base.Metrics.OutputHash, Mut.Metrics.OutputHash);
  EXPECT_FALSE(Base.Output.empty()) << "workload produced no output";
}

TEST_P(WorkloadParity, MutationFindsAPlan) {
  auto All = makeAllWorkloads();
  Workload &W = *All[static_cast<size_t>(GetParam())];
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(W, Cfg);
  EXPECT_FALSE(R.Plan.Classes.empty()) << W.name();
  EXPECT_GE(R.Plan.numHotStates(), 1u);
}

TEST_P(WorkloadParity, DeterministicAcrossRuns) {
  auto All = makeAllWorkloads();
  Workload &W = *All[static_cast<size_t>(GetParam())];
  WorkloadRun A = runOnce(W, false, nullptr, 0.1);
  WorkloadRun B = runOnce(W, false, nullptr, 0.1);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Metrics.TotalCycles, B.Metrics.TotalCycles);
  EXPECT_EQ(A.Metrics.Insts, B.Metrics.Insts);
}

const char *const WorkloadNames[] = {"SalaryDB",   "SimLogic", "CSVToXML",
                                     "Java2XHTML", "Weka",     "Jbb2000",
                                     "Jbb2005"};

std::string workloadTestName(const ::testing::TestParamInfo<int> &Info) {
  return WorkloadNames[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllSeven, WorkloadParity, ::testing::Range(0, 7),
                         workloadTestName);

TEST(WorkloadSpeedup, SalaryDbGainsAreLarge) {
  auto W = makeSalaryDb();
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(*W, Cfg);
  WorkloadRun Base = runOnce(*W, false, nullptr, 1.0);
  WorkloadRun Mut = runOnce(*W, true, &R.Plan, 1.0);
  double Speedup = static_cast<double>(Base.Metrics.TotalCycles) /
                   static_cast<double>(Mut.Metrics.TotalCycles);
  EXPECT_GT(Speedup, 1.15) << "paper reports 31.4%";
  EXPECT_LT(Speedup, 1.6);
}

TEST(WorkloadSpeedup, EveryBenchmarkGains) {
  // Figure 9's sign: mutation never loses on the studied applications.
  auto All = makeAllWorkloads();
  for (auto &W : All) {
    OfflineConfig Cfg;
    Cfg.HotStateMinFraction = 0.05;
    OfflineResult R = runOfflinePipeline(*W, Cfg);
    WorkloadRun Base = runOnce(*W, false, nullptr, 1.0);
    WorkloadRun Mut = runOnce(*W, true, &R.Plan, 1.0);
    EXPECT_LT(Mut.Metrics.TotalCycles, Base.Metrics.TotalCycles) << W->name();
  }
}

TEST(WorkloadOverheads, CodeSizeIncreaseIsBounded) {
  // Figure 10: compiled code growth stays small (paper: < 8% for the
  // applications; our micro-scale programs allow a little more headroom).
  auto All = makeAllWorkloads();
  for (auto &W : All) {
    OfflineConfig Cfg;
    Cfg.HotStateMinFraction = 0.05;
    OfflineResult R = runOfflinePipeline(*W, Cfg);
    WorkloadRun Base = runOnce(*W, false, nullptr, 1.0);
    WorkloadRun Mut = runOnce(*W, true, &R.Plan, 1.0);
    double Inc = static_cast<double>(Mut.Metrics.CodeBytes) /
                     static_cast<double>(Base.Metrics.CodeBytes) -
                 1.0;
    EXPECT_GE(Inc, 0.0) << W->name();
    EXPECT_LT(Inc, 0.30) << W->name();
  }
}

TEST(WorkloadOverheads, TibSpaceIsBytesScale) {
  // Figure 12: special TIB space is tens of bytes to ~1 KB.
  auto All = makeAllWorkloads();
  for (auto &W : All) {
    OfflineConfig Cfg;
    Cfg.HotStateMinFraction = 0.05;
    OfflineResult R = runOfflinePipeline(*W, Cfg);
    WorkloadRun Mut = runOnce(*W, true, &R.Plan, 0.3);
    EXPECT_LE(Mut.Metrics.SpecialTibBytes, 2048u) << W->name();
  }
}

TEST(JbbWindows, MutationGainGrowsIntoSteadyState) {
  // Figures 13-15's shape: comparing mutated vs baseline *per window*, the
  // early windows (before the mutable methods are detected hot and while
  // specialized code is being generated) show less gain than the steady
  // state. Each run uses identical seeds, so per-window transaction mixes
  // line up between the two runs.
  auto W = makeJbb(JbbVariant::Jbb2000);
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(*W, Cfg);
  auto Run = [&](bool Mutation) {
    auto P = W->buildProgram();
    VMOptions Opts;
    Opts.EnableMutation = Mutation;
    Opts.Adaptive.SampleInterval = 70; // sparse, Jikes-timer-like sampling
    VirtualMachine VM(*P, Opts);
    OlcDatabase Db;
    if (Mutation) {
      VM.setMutationPlan(&R.Plan);
      Db = analyzeObjectLifetimeConstants(*P, R.Plan);
      VM.setOlcDatabase(&Db);
    }
    W->initVm(VM);
    return W->runWarehouseWindows(VM, 6, 3'000'000, 0);
  };
  auto Base = Run(false);
  auto Mut = Run(true);
  ASSERT_EQ(Base.size(), 6u);
  double FirstDelta = Mut[0].Throughput / Base[0].Throughput - 1.0;
  double SteadyDelta = (Mut[4].Throughput + Mut[5].Throughput) /
                           (Base[4].Throughput + Base[5].Throughput) -
                       1.0;
  EXPECT_GT(SteadyDelta, 0.0);         // steady-state gain exists
  EXPECT_GT(SteadyDelta, FirstDelta);  // ...and exceeds the warm-up window
  for (const JbbWindow &Win : Mut) {
    EXPECT_GT(Win.Transactions, 0u);
    EXPECT_GT(Win.Throughput, 0.0);
  }
}

TEST(JbbWindows, DeterministicThroughput) {
  auto W = makeJbb(JbbVariant::Jbb2005);
  auto Run = [&] {
    auto P = W->buildProgram();
    VirtualMachine VM(*P, {});
    W->initVm(VM);
    return W->runWarehouseWindows(VM, 3, 2'000'000, 500'000);
  };
  auto A = Run();
  auto B = Run();
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Transactions, B[I].Transactions);
}

TEST(JbbVariants, Jbb2005AllocatesMore) {
  auto Run = [](JbbVariant V) {
    auto W = makeJbb(V);
    auto P = W->buildProgram();
    VMOptions Opts;
    Opts.HeapBytes = 256u << 20; // big heap: no GC, pure allocation volume
    VirtualMachine VM(*P, Opts);
    W->initVm(VM);
    W->runTransactions(VM, 3000);
    return VM.heap().stats().BytesAllocated;
  };
  EXPECT_GT(Run(JbbVariant::Jbb2005), Run(JbbVariant::Jbb2000));
}

TEST(JbbVariants, Jbb2005RunsCustomerReport) {
  // The 2005 mix includes the heavyweight CustomerReport; 2000's does not.
  auto CyclesIn = [](JbbVariant V, const char *Method) {
    auto W = makeJbb(V);
    auto P = W->buildProgram();
    VirtualMachine VM(*P, {});
    VM.interp().setProfiling(true);
    W->initVm(VM);
    W->runTransactions(VM, 2000);
    MethodId M = P->findMethod(P->findClass("CustomerReportTx"), Method);
    return VM.interp().methodCycles()[M];
  };
  EXPECT_EQ(CyclesIn(JbbVariant::Jbb2000, "process"), 0u);
  EXPECT_GT(CyclesIn(JbbVariant::Jbb2005, "process"), 0u);
}

TEST(Table1, InventoryMatchesExpectations) {
  // Our Table 1: class/method counts per program (stability check so the
  // bench table stays truthful).
  auto All = makeAllWorkloads();
  for (auto &W : All) {
    auto P = W->buildProgram();
    EXPECT_GE(P->numClasses(), 2u) << W->name();
    EXPECT_GE(P->numMethods(), 5u) << W->name();
  }
  auto Salary = makeSalaryDb()->buildProgram();
  EXPECT_EQ(Salary->numClasses(), 4u);
  auto Jbb = makeJbb(JbbVariant::Jbb2000)->buildProgram();
  EXPECT_GE(Jbb->numClasses(), 12u);
}

} // namespace
