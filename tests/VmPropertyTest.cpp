//===-- tests/VmPropertyTest.cpp - Randomized invariant sweeps ----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// Property tests over the mutation engine:
///
///  1. TIB invariant — after any sequence of constructions, state stores,
///     and method calls, every mutable-class object's TIB pointer is the
///     special TIB of the hot state its fields currently match (or the
///     class TIB when no hot state matches).
///  2. Transparency — mutation on vs off computes identical results for
///     random operation sequences, across adaptive thresholds (so the
///     sequence crosses opt0/opt1/opt2 and the mutation point).
///  3. GC rooting — objects held in host storage are registered as real
///     roots (LocalRootScope) and survive collections mid-test.
///  4. JTOC / IMT sweeps — code-pointer correctness under random static
///     state stores, and IMT-routed interface dispatch under random hot
///     state swings, both with the consistency auditor attached.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "support/Random.h"
#include "testing/ConsistencyAuditor.h"

#include <gtest/gtest.h>

using namespace dchm;
using dchm::test::CounterFixture;

namespace {

/// Checks the part I invariant for one object.
void expectTibInvariant(CounterFixture &Fx, Object *O) {
  const ClassInfo &C = Fx.P->cls(Fx.Counter);
  int64_t Mode = O->get(Fx.P->field(Fx.Mode).Slot).I;
  TIB *Expected = C.ClassTib;
  for (size_t S = 0; S < Fx.Plan.Classes[0].HotStates.size(); ++S)
    if (Fx.Plan.Classes[0].HotStates[S].InstanceVals[0].I == Mode)
      Expected = C.SpecialTibs[S];
  EXPECT_EQ(O->Tib, Expected) << "mode=" << Mode;
}

class TibInvariant : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TibInvariant, HoldsUnderRandomTransitions) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  Rng R(GetParam());
  LocalRootScope Objs(VM.heap());
  for (int Step = 0; Step < 300; ++Step) {
    switch (R.nextBelow(Objs.empty() ? 1 : 4)) {
    case 0: // construct with a random mode, hot or cold
      Objs.add(Fx.makeCounter(VM, R.nextInRange(0, 3)));
      break;
    case 1: { // random transition
      Object *O = Objs[R.nextBelow(Objs.size())];
      VM.call(Fx.SetMode, {valueR(O), valueI(R.nextInRange(0, 3))});
      break;
    }
    case 2: { // call the mutable method
      Object *O = Objs[R.nextBelow(Objs.size())];
      VM.call(Fx.Bump, {valueR(O)});
      break;
    }
    default: { // call the non-mutable method
      Object *O = Objs[R.nextBelow(Objs.size())];
      VM.call(Fx.Get, {valueR(O)});
      break;
    }
    }
    for (Object *O : Objs.objects())
      expectTibInvariant(Fx, O);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TibInvariant,
                         ::testing::Range<uint64_t>(1, 13));

/// One random scenario executed with or without mutation; returns the
/// final checksum over all objects.
int64_t runScenario(uint64_t Seed, bool Mutation, uint64_t Opt1, uint64_t Opt2) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.EnableMutation = Mutation;
  Opts.Adaptive.Opt1Threshold = Opt1;
  Opts.Adaptive.Opt2Threshold = Opt2;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  Rng R(Seed);
  LocalRootScope Objs(VM.heap());
  for (int Step = 0; Step < 500; ++Step) {
    switch (R.nextBelow(Objs.empty() ? 1 : 4)) {
    case 0:
      Objs.add(Fx.makeCounter(VM, R.nextInRange(0, 4)));
      break;
    case 1:
      VM.call(Fx.SetMode,
              {valueR(Objs[R.nextBelow(Objs.size())]),
               valueI(R.nextInRange(0, 4))});
      break;
    default:
      VM.call(Fx.Bump, {valueR(Objs[R.nextBelow(Objs.size())])});
      break;
    }
  }
  int64_t Sum = 0;
  for (Object *O : Objs.objects())
    Sum = Sum * 31 + VM.call(Fx.Get, {valueR(O)}).I;
  return Sum;
}

struct TransparencyCase {
  uint64_t Seed;
  uint64_t Opt1, Opt2;
};

class Transparency : public ::testing::TestWithParam<TransparencyCase> {};

TEST_P(Transparency, MutationInvisibleToSemantics) {
  TransparencyCase TC = GetParam();
  EXPECT_EQ(runScenario(TC.Seed, false, TC.Opt1, TC.Opt2),
            runScenario(TC.Seed, true, TC.Opt1, TC.Opt2));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThresholds, Transparency,
    ::testing::Values(TransparencyCase{1, 300, 3000},
                      TransparencyCase{2, 300, 3000},
                      TransparencyCase{3, 10, 50},   // early mutation point
                      TransparencyCase{4, 10, 50},
                      TransparencyCase{5, 1, 2},     // immediate opt2
                      TransparencyCase{6, 1, 2},
                      TransparencyCase{7, 100000, 200000}, // never promoted
                      TransparencyCase{8, 50, 100},
                      TransparencyCase{9, 5, 500},
                      TransparencyCase{10, 5, 10}));

TEST(GcRooting, LocalRootScopeSurvivesCollectionsMidSweep) {
  // Regression for the old rooting hazard: test objects used to be held
  // only in a host-side vector the collector could not see, and the tests
  // had to size the heap so no GC ever ran. With LocalRootScope the pinned
  // set must survive collections forced mid-sweep by a deliberately tiny
  // heap and heavy garbage churn.
  CounterFixture Fx;
  VMOptions Opts;
  Opts.HeapBytes = 16u << 10;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  uint32_t ModeSlot = Fx.P->field(Fx.Mode).Slot;
  LocalRootScope Roots(VM.heap());
  std::vector<int64_t> Modes;
  for (int I = 0; I < 10; ++I) {
    Roots.add(Fx.makeCounter(VM, I % 4));
    Modes.push_back(I % 4);
    VM.call(Fx.Bump, {valueR(Roots[I])});
  }
  // Churn: every discarded counter is garbage, so the 16 KB heap forces
  // repeated collections while Roots pins the live set.
  for (int I = 0; I < 600; ++I) {
    Fx.makeCounter(VM, I % 4);
    if (I % 50 == 0)
      for (size_t J = 0; J < Roots.size(); ++J)
        expectTibInvariant(Fx, Roots[J]);
  }
  EXPECT_GT(VM.heap().stats().GcCount, 0u);
  for (size_t I = 0; I < Roots.size(); ++I) {
    EXPECT_EQ(Roots[I]->get(ModeSlot).I, Modes[I]) << "object " << I;
    expectTibInvariant(Fx, Roots[I]);
    // Pinned objects stay fully usable after collections.
    int64_t Before = VM.call(Fx.Get, {valueR(Roots[I])}).I;
    VM.call(Fx.Bump, {valueR(Roots[I])});
    EXPECT_GT(VM.call(Fx.Get, {valueR(Roots[I])}).I, Before);
  }
}

class JtocSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JtocSweep, CodePointerTracksStaticState) {
  // Random static-state stores: after every store the JTOC entry for the
  // static mutable method must hold the special code iff the static state
  // matches a hot state with compiled special code, and calls through the
  // CallStatic site must compute globalMode * 7 regardless.
  CounterFixture Fx(true);
  VMOptions Opts;
  Opts.Adaptive.Opt1Threshold = 5;
  Opts.Adaptive.Opt2Threshold = 20;
  Opts.AuditConsistency = HostToggle::On;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  ConsistencyAuditor Auditor(VM);
  VM.setAuditHook(&Auditor);
  ASSERT_TRUE(VM.auditEnabled());
  FieldInfo &GF = Fx.P->field(Fx.GlobalMode);
  const MethodInfo &M = Fx.P->method(Fx.StaticScale);
  Rng R(GetParam());
  // Warm the static method past the specialization point so the JTOC has
  // special code to swing to.
  VM.call(Fx.DriveStatic, {valueI(64)});
  for (int Step = 0; Step < 200; ++Step) {
    int64_t G = R.nextInRange(0, 3);
    Fx.P->setStaticSlot(GF.Slot, valueI(G));
    VM.onStaticStateStore(GF);
    if (!M.Specials.empty()) {
      // Both hot states pin globalMode == 0, so state 0 is the first (and
      // only) static match; anything else must route general code.
      CompiledMethod *Want =
          (G == 0 && M.Specials[0]) ? M.Specials[0] : M.General;
      EXPECT_EQ(Fx.P->staticEntry(Fx.StaticScale), Want)
          << "globalMode=" << G << " step=" << Step;
    }
    int64_t N = R.nextInRange(1, 8);
    EXPECT_EQ(VM.call(Fx.DriveStatic, {valueI(N)}).I, N * G * 7)
        << "globalMode=" << G << " step=" << Step;
  }
  EXPECT_GT(Auditor.auditsRun(), 0u);
  EXPECT_TRUE(Auditor.clean()) << Auditor.report();
}

INSTANTIATE_TEST_SUITE_P(Seeds, JtocSweep,
                         ::testing::Range<uint64_t>(20, 28));

class ImtSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ImtSweep, InterfaceDispatchTracksHotStateSwings) {
  // Interface calls route through the IMT, whose entries for mutable
  // classes are rewired to TibOffset dispatch. Random hot-state swings
  // interleaved with IMT-dispatched call loops must be invisible to
  // semantics (mutation on == mutation off) and leave the runtime
  // consistent under the auditor.
  auto Run = [](uint64_t Seed, bool Mutation) {
    CounterFixture Fx;
    VMOptions Opts;
    Opts.EnableMutation = Mutation;
    Opts.Adaptive.Opt1Threshold = 10;
    Opts.Adaptive.Opt2Threshold = 40;
    Opts.AuditConsistency = HostToggle::On;
    VirtualMachine VM(*Fx.P, Opts);
    VM.setMutationPlan(&Fx.Plan);
    ConsistencyAuditor Auditor(VM);
    VM.setAuditHook(&Auditor);
    Rng R(Seed);
    LocalRootScope Objs(VM.heap());
    for (int I = 0; I < 6; ++I)
      Objs.add(Fx.makeCounter(VM, I % 3));
    for (int Step = 0; Step < 120; ++Step) {
      Object *O = Objs[R.nextBelow(Objs.size())];
      if (R.nextBool(0.4))
        VM.call(Fx.SetMode, {valueR(O), valueI(R.nextInRange(0, 3))});
      VM.call(Fx.DriveIface, {valueR(O), valueI(R.nextInRange(1, 16))});
    }
    int64_t Sum = 0;
    for (Object *O : Objs.objects())
      Sum = Sum * 31 + VM.call(Fx.Get, {valueR(O)}).I;
    EXPECT_GT(Auditor.auditsRun(), 0u);
    EXPECT_TRUE(Auditor.clean()) << Auditor.report();
    return Sum;
  };
  EXPECT_EQ(Run(GetParam(), true), Run(GetParam(), false));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImtSweep,
                         ::testing::Range<uint64_t>(40, 48));

TEST(TransparencyAccelerated, MatchesBaseline) {
  // Accelerated hotness detection (Figure 14's mode) is also transparent.
  auto Run = [](bool Accel) {
    CounterFixture Fx;
    VMOptions Opts;
    Opts.Adaptive.AcceleratedMutableHotness = Accel;
    VirtualMachine VM(*Fx.P, Opts);
    VM.setMutationPlan(&Fx.Plan);
    Object *O = Fx.makeCounter(VM, 0);
    for (int I = 0; I < 100; ++I) {
      VM.call(Fx.SetMode, {valueR(O), valueI(I % 3)});
      VM.call(Fx.Bump, {valueR(O)});
    }
    return VM.call(Fx.Get, {valueR(O)}).I;
  };
  EXPECT_EQ(Run(false), Run(true));
}

} // namespace
