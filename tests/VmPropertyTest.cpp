//===-- tests/VmPropertyTest.cpp - Randomized invariant sweeps ----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// Property tests over the mutation engine:
///
///  1. TIB invariant — after any sequence of constructions, state stores,
///     and method calls, every mutable-class object's TIB pointer is the
///     special TIB of the hot state its fields currently match (or the
///     class TIB when no hot state matches).
///  2. Transparency — mutation on vs off computes identical results for
///     random operation sequences, across adaptive thresholds (so the
///     sequence crosses opt0/opt1/opt2 and the mutation point).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace dchm;
using dchm::test::CounterFixture;

namespace {

/// Checks the part I invariant for one object.
void expectTibInvariant(CounterFixture &Fx, Object *O) {
  const ClassInfo &C = Fx.P->cls(Fx.Counter);
  int64_t Mode = O->get(Fx.P->field(Fx.Mode).Slot).I;
  TIB *Expected = C.ClassTib;
  for (size_t S = 0; S < Fx.Plan.Classes[0].HotStates.size(); ++S)
    if (Fx.Plan.Classes[0].HotStates[S].InstanceVals[0].I == Mode)
      Expected = C.SpecialTibs[S];
  EXPECT_EQ(O->Tib, Expected) << "mode=" << Mode;
}

class TibInvariant : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TibInvariant, HoldsUnderRandomTransitions) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  Rng R(GetParam());
  std::vector<Object *> Objs;
  // Note: test objects are rooted only by this vector; keep the heap large
  // enough that no GC runs (the VM would not see these as roots).
  for (int Step = 0; Step < 300; ++Step) {
    switch (R.nextBelow(Objs.empty() ? 1 : 4)) {
    case 0: // construct with a random mode, hot or cold
      Objs.push_back(Fx.makeCounter(VM, R.nextInRange(0, 3)));
      break;
    case 1: { // random transition
      Object *O = Objs[R.nextBelow(Objs.size())];
      VM.call(Fx.SetMode, {valueR(O), valueI(R.nextInRange(0, 3))});
      break;
    }
    case 2: { // call the mutable method
      Object *O = Objs[R.nextBelow(Objs.size())];
      VM.call(Fx.Bump, {valueR(O)});
      break;
    }
    default: { // call the non-mutable method
      Object *O = Objs[R.nextBelow(Objs.size())];
      VM.call(Fx.Get, {valueR(O)});
      break;
    }
    }
    for (Object *O : Objs)
      expectTibInvariant(Fx, O);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TibInvariant,
                         ::testing::Range<uint64_t>(1, 13));

/// One random scenario executed with or without mutation; returns the
/// final checksum over all objects.
int64_t runScenario(uint64_t Seed, bool Mutation, uint64_t Opt1, uint64_t Opt2) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.EnableMutation = Mutation;
  Opts.Adaptive.Opt1Threshold = Opt1;
  Opts.Adaptive.Opt2Threshold = Opt2;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  Rng R(Seed);
  std::vector<Object *> Objs;
  for (int Step = 0; Step < 500; ++Step) {
    switch (R.nextBelow(Objs.empty() ? 1 : 4)) {
    case 0:
      Objs.push_back(Fx.makeCounter(VM, R.nextInRange(0, 4)));
      break;
    case 1:
      VM.call(Fx.SetMode,
              {valueR(Objs[R.nextBelow(Objs.size())]),
               valueI(R.nextInRange(0, 4))});
      break;
    default:
      VM.call(Fx.Bump, {valueR(Objs[R.nextBelow(Objs.size())])});
      break;
    }
  }
  int64_t Sum = 0;
  for (Object *O : Objs)
    Sum = Sum * 31 + VM.call(Fx.Get, {valueR(O)}).I;
  return Sum;
}

struct TransparencyCase {
  uint64_t Seed;
  uint64_t Opt1, Opt2;
};

class Transparency : public ::testing::TestWithParam<TransparencyCase> {};

TEST_P(Transparency, MutationInvisibleToSemantics) {
  TransparencyCase TC = GetParam();
  EXPECT_EQ(runScenario(TC.Seed, false, TC.Opt1, TC.Opt2),
            runScenario(TC.Seed, true, TC.Opt1, TC.Opt2));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThresholds, Transparency,
    ::testing::Values(TransparencyCase{1, 300, 3000},
                      TransparencyCase{2, 300, 3000},
                      TransparencyCase{3, 10, 50},   // early mutation point
                      TransparencyCase{4, 10, 50},
                      TransparencyCase{5, 1, 2},     // immediate opt2
                      TransparencyCase{6, 1, 2},
                      TransparencyCase{7, 100000, 200000}, // never promoted
                      TransparencyCase{8, 50, 100},
                      TransparencyCase{9, 5, 500},
                      TransparencyCase{10, 5, 10}));

TEST(TransparencyAccelerated, MatchesBaseline) {
  // Accelerated hotness detection (Figure 14's mode) is also transparent.
  auto Run = [](bool Accel) {
    CounterFixture Fx;
    VMOptions Opts;
    Opts.Adaptive.AcceleratedMutableHotness = Accel;
    VirtualMachine VM(*Fx.P, Opts);
    VM.setMutationPlan(&Fx.Plan);
    Object *O = Fx.makeCounter(VM, 0);
    for (int I = 0; I < 100; ++I) {
      VM.call(Fx.SetMode, {valueR(O), valueI(I % 3)});
      VM.call(Fx.Bump, {valueR(O)});
    }
    return VM.call(Fx.Get, {valueR(O)}).I;
  };
  EXPECT_EQ(Run(false), Run(true));
}

} // namespace
