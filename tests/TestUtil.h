//===-- tests/TestUtil.h - Shared test fixtures ---------------*- C++ -*-===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for building small programs in tests: a SalaryDB-like mutable
/// class ("Counter" with a mode state field), and utilities to run IR
/// functions standalone through a VM.
///
//===----------------------------------------------------------------------===//

#ifndef DCHM_TESTS_TESTUTIL_H
#define DCHM_TESTS_TESTUTIL_H

#include "core/VM.h"
#include "ir/Builder.h"
#include "mutation/MutationPlan.h"
#include "runtime/Program.h"

#include <memory>

namespace dchm {
namespace test {

/// A tiny program with one static method "main" whose body is supplied by
/// the caller. Useful for interpreter and pass semantics tests.
struct SingleFunctionProgram {
  std::unique_ptr<Program> P;
  MethodId Main = NoMethodId;

  /// Builds a program holding F as static method Holder.main.
  static SingleFunctionProgram create(IRFunction F) {
    SingleFunctionProgram S;
    S.P = std::make_unique<Program>();
    ClassId Holder = S.P->defineClass("Holder");
    MethodFlags Flags;
    Flags.IsStatic = true;
    std::vector<Type> Params(F.RegTypes.begin(),
                             F.RegTypes.begin() + F.NumArgs);
    S.Main = S.P->defineMethod(Holder, "main", F.RetTy, Params, Flags);
    S.P->setBody(S.Main, std::move(F));
    S.P->link();
    return S;
  }

  /// Runs main with the given arguments on a fresh VM.
  Value run(const std::vector<Value> &Args, const VMOptions &Opts = {}) {
    VirtualMachine VM(*P, Opts);
    return VM.call(Main, Args);
  }
};

/// The canonical mutable-class fixture used across mutation tests: a
/// Counter class whose bump() behavior depends on its `mode` state field
/// (0: +1, 1: +10, otherwise +100), plus a subclass, an interface, and a
/// driver class. Mirrors the structure of the paper's SalaryDB example.
struct CounterFixture {
  std::unique_ptr<Program> P;
  ClassId Iface, Counter, SubCounter, Driver;
  FieldId Mode, Total, GlobalMode;
  MethodId IfaceBump, CounterCtor, Bump, Get, SetMode, SubBump, StaticScale;
  /// Interpreted driver bodies: unlike VM.call (which resolves through
  /// invoke()), these execute real CallVirtual/CallInterface/CallStatic
  /// instructions, so per-call-site inline caches are on the path.
  MethodId DriveBump, DriveIface, DriveStatic, Report;
  MutationPlan Plan;

  /// Builds the fixture. WithStaticField adds a static state field
  /// (GlobalMode) to the plan, exercising the static branches of the
  /// distributed mutation algorithm.
  explicit CounterFixture(bool WithStaticField = false) {
    P = std::make_unique<Program>();
    Iface = P->defineInterface("Bumpable");
    IfaceBump = P->defineMethod(Iface, "bump", Type::Void, {});

    Counter = P->defineClass("Counter");
    P->addInterface(Counter, Iface);
    Mode = P->defineField(Counter, "mode", Type::I64, false, Access::Private);
    Total = P->defineField(Counter, "total", Type::I64, false);
    GlobalMode =
        P->defineField(Counter, "globalMode", Type::I64, true, Access::Private);

    CounterCtor = P->defineMethod(Counter, "<init>", Type::Void, {Type::I64},
                                  {.IsCtor = true});
    {
      FunctionBuilder B("Counter.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg M = B.addArg(Type::I64);
      B.putField(This, Mode, M);
      Reg Zero = B.constI(0);
      B.putField(This, Total, Zero);
      B.retVoid();
      P->setBody(CounterCtor, B.finalize());
    }

    Bump = P->defineMethod(Counter, "bump", Type::Void, {});
    {
      FunctionBuilder B("Counter.bump", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg M = B.getField(This, Mode, Type::I64);
      Reg T = B.getField(This, Total, Type::I64);
      auto L1 = B.makeLabel();
      auto L2 = B.makeLabel();
      auto LEnd = B.makeLabel();
      Reg Zero = B.constI(0);
      B.cbnz(B.cmp(Opcode::CmpNE, M, Zero), L1);
      Reg One = B.constI(1);
      B.putField(This, Total, B.add(T, One));
      B.br(LEnd);
      B.bind(L1);
      Reg C1 = B.constI(1);
      B.cbnz(B.cmp(Opcode::CmpNE, M, C1), L2);
      Reg Ten = B.constI(10);
      B.putField(This, Total, B.add(T, Ten));
      B.br(LEnd);
      B.bind(L2);
      Reg Hundred = B.constI(100);
      B.putField(This, Total, B.add(T, Hundred));
      B.br(LEnd);
      B.bind(LEnd);
      B.retVoid();
      P->setBody(Bump, B.finalize());
    }

    Get = P->defineMethod(Counter, "get", Type::I64, {});
    {
      FunctionBuilder B("Counter.get", Type::I64);
      Reg This = B.addArg(Type::Ref);
      B.ret(B.getField(This, Total, Type::I64));
      P->setBody(Get, B.finalize());
    }

    SetMode = P->defineMethod(Counter, "setMode", Type::Void, {Type::I64});
    {
      FunctionBuilder B("Counter.setMode", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg M = B.addArg(Type::I64);
      B.putField(This, Mode, M);
      B.retVoid();
      P->setBody(SetMode, B.finalize());
    }

    // StaticScale: a static method reading only the static state field
    // (JTOC mutation path): returns globalMode * 7.
    StaticScale = P->defineMethod(Counter, "staticScale", Type::I64, {},
                                  {.IsStatic = true});
    {
      FunctionBuilder B("Counter.staticScale", Type::I64);
      Reg G = B.getStatic(GlobalMode, Type::I64);
      Reg Seven = B.constI(7);
      B.ret(B.mul(G, Seven));
      P->setBody(StaticScale, B.finalize());
    }

    SubCounter = P->defineClass("SubCounter", Counter);
    MethodId SubCtor = P->defineMethod(SubCounter, "<init>", Type::Void,
                                       {Type::I64}, {.IsCtor = true});
    {
      FunctionBuilder B("SubCounter.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg M = B.addArg(Type::I64);
      B.callSpecial(CounterCtor, {This, M}, Type::Void);
      B.retVoid();
      P->setBody(SubCtor, B.finalize());
    }
    // SubCounter overrides get() (but not bump()).
    SubBump = P->defineMethod(SubCounter, "get", Type::I64, {});
    {
      FunctionBuilder B("SubCounter.get", Type::I64);
      Reg This = B.addArg(Type::Ref);
      Reg T = B.getField(This, Total, Type::I64);
      Reg Neg = B.neg(T);
      B.ret(Neg);
      P->setBody(SubBump, B.finalize());
    }

    Driver = P->defineClass("TestDriver");

    // driveBump(o, n): n virtual bump() calls from one loop — a single
    // CallVirtual site that keeps re-reading the receiver's current TIB.
    DriveBump = P->defineMethod(Driver, "driveBump", Type::Void,
                                {Type::Ref, Type::I64}, {.IsStatic = true});
    {
      FunctionBuilder B("TestDriver.driveBump", Type::Void);
      Reg O = B.addArg(Type::Ref);
      Reg N = B.addArg(Type::I64);
      Reg I = B.newReg(Type::I64);
      B.move(I, B.constI(0));
      Reg One = B.constI(1);
      auto Head = B.makeLabel();
      auto Exit = B.makeLabel();
      B.bind(Head);
      B.cbz(B.cmp(Opcode::CmpLT, I, N), Exit);
      B.callVirtual(Bump, {O}, Type::Void);
      B.move(I, B.add(I, One));
      B.br(Head);
      B.bind(Exit);
      B.retVoid();
      P->setBody(DriveBump, B.finalize());
    }

    // driveIface(o, n): same loop through the interface (IMT dispatch).
    DriveIface = P->defineMethod(Driver, "driveIface", Type::Void,
                                 {Type::Ref, Type::I64}, {.IsStatic = true});
    {
      FunctionBuilder B("TestDriver.driveIface", Type::Void);
      Reg O = B.addArg(Type::Ref);
      Reg N = B.addArg(Type::I64);
      Reg I = B.newReg(Type::I64);
      B.move(I, B.constI(0));
      Reg One = B.constI(1);
      auto Head = B.makeLabel();
      auto Exit = B.makeLabel();
      B.bind(Head);
      B.cbz(B.cmp(Opcode::CmpLT, I, N), Exit);
      B.callInterface(IfaceBump, {O}, Type::Void);
      B.move(I, B.add(I, One));
      B.br(Head);
      B.bind(Exit);
      B.retVoid();
      P->setBody(DriveIface, B.finalize());
    }

    // driveStatic(n): accumulates n staticScale() results through one
    // CallStatic site (JTOC dispatch).
    DriveStatic = P->defineMethod(Driver, "driveStatic", Type::I64,
                                  {Type::I64}, {.IsStatic = true});
    {
      FunctionBuilder B("TestDriver.driveStatic", Type::I64);
      Reg N = B.addArg(Type::I64);
      Reg Acc = B.newReg(Type::I64);
      B.move(Acc, B.constI(0));
      Reg I = B.newReg(Type::I64);
      B.move(I, B.constI(0));
      Reg One = B.constI(1);
      auto Head = B.makeLabel();
      auto Exit = B.makeLabel();
      B.bind(Head);
      B.cbz(B.cmp(Opcode::CmpLT, I, N), Exit);
      B.move(Acc, B.add(Acc, B.callStatic(StaticScale, {}, Type::I64)));
      B.move(I, B.add(I, One));
      B.br(Head);
      B.bind(Exit);
      B.ret(Acc);
      P->setBody(DriveStatic, B.finalize());
    }

    // report(o): prints get(o), feeding the output hash (the semantic
    // equivalence witness for mutation-on vs mutation-off runs).
    Report = P->defineMethod(Driver, "report", Type::Void, {Type::Ref},
                             {.IsStatic = true});
    {
      FunctionBuilder B("TestDriver.report", Type::Void);
      Reg O = B.addArg(Type::Ref);
      B.printNum(B.callVirtual(Get, {O}, Type::I64), Type::I64);
      B.retVoid();
      P->setBody(Report, B.finalize());
    }
    P->link();

    // The mutation plan: Counter is mutable on `mode` with hot states
    // {0, 1}; optionally also on the static globalMode (hot value 0).
    MutableClassPlan CP;
    CP.Cls = Counter;
    CP.InstanceStateFields = {Mode};
    if (WithStaticField)
      CP.StaticStateFields = {GlobalMode};
    HotState S0, S1;
    S0.InstanceVals = {valueI(0)};
    S1.InstanceVals = {valueI(1)};
    if (WithStaticField) {
      S0.StaticVals = {valueI(0)};
      S1.StaticVals = {valueI(0)};
    }
    CP.HotStates = {S0, S1};
    CP.MutableMethods = {Bump};
    if (WithStaticField)
      CP.MutableMethods.push_back(StaticScale);
    Plan.Classes.push_back(CP);
  }

  /// Creates a Counter instance with the given mode on VM's heap, running
  /// the constructor through the interpreter (fires the ctor-exit hook).
  Object *makeCounter(VirtualMachine &VM, int64_t ModeV) {
    ClassInfo &C = VM.program().cls(Counter);
    Object *O = VM.heap().allocateInstance(C, C.ClassTib);
    VM.call(CounterCtor, {valueR(O), valueI(ModeV)});
    return O;
  }
};

} // namespace test
} // namespace dchm

#endif // DCHM_TESTS_TESTUTIL_H
