//===-- tests/InlinerTest.cpp - Inliner + specialization inlining -------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "compiler/Inliner.h"
#include "compiler/Passes.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

size_t countCalls(const IRFunction &F) {
  size_t N = 0;
  for (const Instruction &I : F.Insts)
    if (isCall(I.Op))
      ++N;
  return N;
}

/// Program with a static helper, a virtual method with a single
/// implementation (effectively final), and callers.
struct InlineFixture : ::testing::Test {
  Program P;
  ClassId C = NoClassId;
  MethodId Helper = NoMethodId, Twice = NoMethodId, CallerStatic = NoMethodId,
           CallerVirtual = NoMethodId, Recurse = NoMethodId;

  InlineFixture() {
    C = P.defineClass("C");
    Helper = P.defineMethod(C, "helper", Type::I64, {Type::I64},
                            {.IsStatic = true});
    {
      FunctionBuilder B("C.helper", Type::I64);
      Reg X = B.addArg(Type::I64);
      Reg Three = B.constI(3);
      B.ret(B.mul(X, Three));
      P.setBody(Helper, B.finalize());
    }
    Twice = P.defineMethod(C, "twice", Type::I64, {Type::I64});
    {
      FunctionBuilder B("C.twice", Type::I64);
      B.addArg(Type::Ref);
      Reg X = B.addArg(Type::I64);
      B.ret(B.add(X, X));
      P.setBody(Twice, B.finalize());
    }
    CallerStatic = P.defineMethod(C, "callerStatic", Type::I64, {Type::I64},
                                  {.IsStatic = true});
    {
      FunctionBuilder B("C.callerStatic", Type::I64);
      Reg X = B.addArg(Type::I64);
      Reg R = B.callStatic(Helper, {X}, Type::I64);
      Reg One = B.constI(1);
      B.ret(B.add(R, One));
      P.setBody(CallerStatic, B.finalize());
    }
    CallerVirtual = P.defineMethod(C, "callerVirtual", Type::I64,
                                   {Type::Ref, Type::I64}, {.IsStatic = true});
    {
      FunctionBuilder B("C.callerVirtual", Type::I64);
      Reg O = B.addArg(Type::Ref);
      Reg X = B.addArg(Type::I64);
      B.ret(B.callVirtual(Twice, {O, X}, Type::I64));
      P.setBody(CallerVirtual, B.finalize());
    }
    Recurse = P.defineMethod(C, "recurse", Type::I64, {Type::I64},
                             {.IsStatic = true});
    {
      FunctionBuilder B("C.recurse", Type::I64);
      Reg X = B.addArg(Type::I64);
      auto LBase = B.makeLabel();
      B.cbz(X, LBase);
      Reg One = B.constI(1);
      Reg R = B.callStatic(Recurse, {B.sub(X, One)}, Type::I64);
      B.ret(B.add(R, One));
      B.bind(LBase);
      Reg Zero = B.constI(0);
      B.ret(Zero);
      P.setBody(Recurse, B.finalize());
    }
    P.link();
  }

  InlineStats runInliner(MethodId Root, const InlinerConfig &Cfg = {},
                         const OlcDatabase *Olc = nullptr,
                         const MutationPlan *Plan = nullptr) {
    Inliner Inl(P, Cfg, Olc, Plan);
    return Inl.run(P.method(Root).Bytecode, P.method(Root));
  }
};

TEST_F(InlineFixture, InlinesStaticCall) {
  InlineStats S = runInliner(CallerStatic);
  EXPECT_EQ(S.SitesInlined, 1u);
  const IRFunction &F = P.method(CallerStatic).Bytecode;
  EXPECT_EQ(countCalls(F), 0u);
  EXPECT_EQ(verifyFunction(F), "");
  // Behavior preserved: helper(x)+1 = 3x+1.
  runOptPipeline(P.method(CallerStatic).Bytecode);
  VirtualMachine VM(P, {});
  EXPECT_EQ(VM.call(CallerStatic, {valueI(5)}).I, 16);
}

TEST_F(InlineFixture, InlinesEffectivelyFinalVirtual) {
  InlineStats S = runInliner(CallerVirtual);
  EXPECT_EQ(S.SitesInlined, 1u);
  EXPECT_EQ(countCalls(P.method(CallerVirtual).Bytecode), 0u);
}

TEST_F(InlineFixture, SizeBoundRejectsLargeCallee) {
  InlinerConfig Cfg;
  Cfg.MaxCalleeInsts = 1;
  InlineStats S = runInliner(CallerStatic, Cfg);
  EXPECT_EQ(S.SitesInlined, 0u);
  EXPECT_EQ(countCalls(P.method(CallerStatic).Bytecode), 1u);
}

TEST_F(InlineFixture, RecursionIsNotInlinedForever) {
  InlineStats S = runInliner(Recurse);
  // Self-recursion is rejected outright.
  EXPECT_EQ(S.SitesInlined, 0u);
  VirtualMachine VM(P, {});
  EXPECT_EQ(VM.call(Recurse, {valueI(4)}).I, 4);
}

TEST_F(InlineFixture, GrowthBudgetCapsTotalInlining) {
  // A caller with many call sites: the growth budget must stop inlining.
  Program P2;
  ClassId D = P2.defineClass("D");
  MethodId H = P2.defineMethod(D, "h", Type::I64, {Type::I64},
                               {.IsStatic = true});
  {
    FunctionBuilder B("D.h", Type::I64);
    Reg X = B.addArg(Type::I64);
    // ~20 instructions of filler.
    Reg Acc = B.newReg(Type::I64);
    B.move(Acc, X);
    for (int I = 0; I < 9; ++I)
      B.move(Acc, B.add(Acc, X));
    B.ret(Acc);
    P2.setBody(H, B.finalize());
  }
  MethodId Caller = P2.defineMethod(D, "caller", Type::I64, {Type::I64},
                                    {.IsStatic = true});
  {
    FunctionBuilder B("D.caller", Type::I64);
    Reg X = B.addArg(Type::I64);
    Reg Acc = B.newReg(Type::I64);
    B.move(Acc, X);
    for (int I = 0; I < 20; ++I)
      B.move(Acc, B.add(Acc, B.callStatic(H, {Acc}, Type::I64)));
    B.ret(Acc);
    P2.setBody(Caller, B.finalize());
  }
  P2.link();
  InlinerConfig Cfg;
  Cfg.MaxFunctionGrowth = 60; // only a few sites fit
  Inliner Inl(P2, Cfg, nullptr, nullptr);
  InlineStats S = Inl.run(P2.method(Caller).Bytecode, P2.method(Caller));
  EXPECT_GT(S.SitesInlined, 0u);
  EXPECT_LT(S.SitesInlined, 20u);
  EXPECT_LE(S.InstsAdded, 60u + 25u); // budget plus one callee of slack
}

TEST_F(InlineFixture, PolymorphicVirtualIsNotInlined) {
  // Add an override of twice() in a subclass: the slot root now has two
  // implementations and the unguarded inline must stop.
  Program P2;
  ClassId A2 = P2.defineClass("A2");
  MethodId T2 = P2.defineMethod(A2, "twice", Type::I64, {Type::I64});
  {
    FunctionBuilder B("A2.twice", Type::I64);
    B.addArg(Type::Ref);
    Reg X = B.addArg(Type::I64);
    B.ret(B.add(X, X));
    P2.setBody(T2, B.finalize());
  }
  ClassId B2 = P2.defineClass("B2", A2);
  MethodId T3 = P2.defineMethod(B2, "twice", Type::I64, {Type::I64});
  {
    FunctionBuilder B("B2.twice", Type::I64);
    B.addArg(Type::Ref);
    Reg X = B.addArg(Type::I64);
    Reg Four = B.constI(4);
    B.ret(B.mul(X, Four));
    P2.setBody(T3, B.finalize());
  }
  MethodId Caller2 = P2.defineMethod(A2, "go", Type::I64,
                                     {Type::Ref, Type::I64},
                                     {.IsStatic = true});
  {
    FunctionBuilder B("A2.go", Type::I64);
    Reg O = B.addArg(Type::Ref);
    Reg X = B.addArg(Type::I64);
    B.ret(B.callVirtual(T2, {O, X}, Type::I64));
    P2.setBody(Caller2, B.finalize());
  }
  P2.link();
  Inliner Inl(P2, {}, nullptr, nullptr);
  InlineStats S = Inl.run(P2.method(Caller2).Bytecode, P2.method(Caller2));
  EXPECT_EQ(S.SitesInlined, 0u);
}

// --- The N > M + k trade-off (paper section 5) -------------------------------

/// Caller passes K constant arguments to a mutable method reading one state
/// field (M = 1): inlining happens iff N > M + k.
struct TradeoffCase {
  unsigned ConstArgs;
  int K;
  bool ExpectInline;
};

class TradeoffTest : public ::testing::TestWithParam<TradeoffCase> {};

TEST_P(TradeoffTest, InlineVsSpecialize) {
  TradeoffCase TC = GetParam();
  Program P;
  ClassId C = P.defineClass("C");
  FieldId Mode = P.defineField(C, "mode", Type::I64, false);
  // Mutable method with 3 params reading one state field.
  MethodId M = P.defineMethod(C, "m", Type::I64,
                              {Type::I64, Type::I64, Type::I64});
  {
    FunctionBuilder B("C.m", Type::I64);
    Reg This = B.addArg(Type::Ref);
    Reg X = B.addArg(Type::I64);
    Reg Y = B.addArg(Type::I64);
    Reg Z = B.addArg(Type::I64);
    Reg St = B.getField(This, Mode, Type::I64);
    B.ret(B.add(B.add(X, Y), B.add(Z, St)));
    P.setBody(M, B.finalize());
  }
  MethodId Caller = P.defineMethod(C, "caller", Type::I64, {Type::Ref},
                                   {.IsStatic = true});
  {
    FunctionBuilder B("C.caller", Type::I64);
    Reg O = B.addArg(Type::Ref);
    // ConstArgs of the three arguments are constants; the rest come from a
    // (non-constant) field read.
    std::vector<Reg> Args{O};
    for (unsigned I = 0; I < 3; ++I) {
      if (I < TC.ConstArgs)
        Args.push_back(B.constI(static_cast<int64_t>(I)));
      else
        Args.push_back(B.getField(O, Mode, Type::I64));
    }
    B.ret(B.call(Opcode::CallVirtual, M, Args, Type::I64));
    P.setBody(Caller, B.finalize());
  }
  P.link();

  MutationPlan Plan;
  MutableClassPlan CP;
  CP.Cls = C;
  CP.InstanceStateFields = {Mode};
  HotState S;
  S.InstanceVals = {valueI(0)};
  CP.HotStates = {S};
  CP.MutableMethods = {M};
  Plan.Classes.push_back(CP);
  // Mark mutability as installPlan would.
  P.method(M).IsMutable = true;

  InlinerConfig Cfg;
  Cfg.TradeoffK = TC.K;
  Inliner Inl(P, Cfg, nullptr, &Plan);
  InlineStats St = Inl.run(P.method(Caller).Bytecode, P.method(Caller));
  EXPECT_EQ(St.SitesInlined > 0, TC.ExpectInline)
      << "N=" << TC.ConstArgs << " k=" << TC.K;
  if (!TC.ExpectInline) {
    EXPECT_EQ(St.TradeoffRejections, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TradeoffTest,
    ::testing::Values(
        // M = 1 state field. Inline iff N > 1 + k.
        TradeoffCase{0, 0, false}, TradeoffCase{1, 0, false},
        TradeoffCase{2, 0, true}, TradeoffCase{3, 0, true},
        TradeoffCase{2, 1, false}, TradeoffCase{3, 1, true},
        // Very negative k: inlining always wins (paper's discussion).
        TradeoffCase{0, -5, true},
        // Very positive k: specialization always wins.
        TradeoffCase{3, 5, false}));

// --- OLC specialization inlining ---------------------------------------------

TEST(OlcInline, SubstitutesConstantsWithoutGuards) {
  // DeliveryTransaction-style: caller loads a private exact-type field and
  // invokes a method on it; the OLC database supplies rows/cols constants.
  Program P;
  ClassId Screen = P.defineClass("Screen");
  FieldId Rows = P.defineField(Screen, "rows", Type::I64, false);
  MethodId Area = P.defineMethod(Screen, "area", Type::I64, {});
  {
    FunctionBuilder B("Screen.area", Type::I64);
    Reg This = B.addArg(Type::Ref);
    Reg R = B.getField(This, Rows, Type::I64);
    B.ret(B.mul(R, R));
    P.setBody(Area, B.finalize());
  }
  ClassId Tx = P.defineClass("Tx");
  FieldId ScreenRef =
      P.defineField(Tx, "screen", Type::Ref, false, Access::Private);
  MethodId Process = P.defineMethod(Tx, "process", Type::I64, {});
  {
    FunctionBuilder B("Tx.process", Type::I64);
    Reg This = B.addArg(Type::Ref);
    Reg S = B.getField(This, ScreenRef, Type::Ref);
    B.ret(B.callVirtual(Area, {S}, Type::I64));
    P.setBody(Process, B.finalize());
  }
  P.link();

  OlcDatabase Db;
  OlcEntry E;
  E.RefField = ScreenRef;
  E.TargetClass = Screen;
  E.Constants.push_back({Rows, valueI(24)});
  Db.Entries.push_back(E);

  Inliner Inl(P, {}, &Db, nullptr);
  IRFunction &F = P.method(Process).Bytecode;
  InlineStats St = Inl.run(F, P.method(Process));
  EXPECT_EQ(St.SpecializationInlines, 1u);
  // After the pipeline the 24*24 folds to 576 — no guard, no field load of
  // rows, no call.
  runOptPipeline(F);
  bool Found576 = false;
  size_t FieldLoadsOfRows = 0;
  for (const Instruction &I : F.Insts) {
    if (I.Op == Opcode::ConstI && I.Imm == 576)
      Found576 = true;
    if (I.Op == Opcode::GetField && static_cast<FieldId>(I.Imm) == Rows)
      ++FieldLoadsOfRows;
    EXPECT_FALSE(isCall(I.Op));
  }
  EXPECT_TRUE(Found576);
  EXPECT_EQ(FieldLoadsOfRows, 0u);
}

TEST(OlcInline, PartialSpecializationKeepsUnprovenFields) {
  // Only one of two fields has an OLC proof: the other stays a load
  // (partial specialization inlining, paper section 5).
  Program P;
  ClassId Screen = P.defineClass("Screen");
  FieldId Rows = P.defineField(Screen, "rows", Type::I64, false);
  FieldId Cols = P.defineField(Screen, "cols", Type::I64, false);
  MethodId Area = P.defineMethod(Screen, "area", Type::I64, {});
  {
    FunctionBuilder B("Screen.area", Type::I64);
    Reg This = B.addArg(Type::Ref);
    Reg R = B.getField(This, Rows, Type::I64);
    Reg C = B.getField(This, Cols, Type::I64);
    B.ret(B.mul(R, C));
    P.setBody(Area, B.finalize());
  }
  ClassId Tx = P.defineClass("Tx");
  FieldId ScreenRef =
      P.defineField(Tx, "screen", Type::Ref, false, Access::Private);
  MethodId Process = P.defineMethod(Tx, "process", Type::I64, {});
  {
    FunctionBuilder B("Tx.process", Type::I64);
    Reg This = B.addArg(Type::Ref);
    Reg S = B.getField(This, ScreenRef, Type::Ref);
    B.ret(B.callVirtual(Area, {S}, Type::I64));
    P.setBody(Process, B.finalize());
  }
  P.link();

  OlcDatabase Db;
  OlcEntry E;
  E.RefField = ScreenRef;
  E.TargetClass = Screen;
  E.Constants.push_back({Rows, valueI(24)}); // cols unproven
  Db.Entries.push_back(E);

  Inliner Inl(P, {}, &Db, nullptr);
  IRFunction &F = P.method(Process).Bytecode;
  Inl.run(F, P.method(Process));
  runOptPipeline(F);
  size_t RowLoads = 0, ColLoads = 0;
  for (const Instruction &I : F.Insts) {
    if (I.Op == Opcode::GetField && static_cast<FieldId>(I.Imm) == Rows)
      ++RowLoads;
    if (I.Op == Opcode::GetField && static_cast<FieldId>(I.Imm) == Cols)
      ++ColLoads;
  }
  EXPECT_EQ(RowLoads, 0u);
  EXPECT_EQ(ColLoads, 1u);
}

TEST(OlcInline, DevirtualizesThroughExactTypeDespiteOverride) {
  // Screen has a subclass overriding area(): a plain virtual call cannot be
  // inlined, but the OLC exact type devirtualizes to Screen.area.
  Program P;
  ClassId Screen = P.defineClass("Screen");
  FieldId Rows = P.defineField(Screen, "rows", Type::I64, false);
  MethodId Area = P.defineMethod(Screen, "area", Type::I64, {});
  {
    FunctionBuilder B("Screen.area", Type::I64);
    Reg This = B.addArg(Type::Ref);
    B.ret(B.getField(This, Rows, Type::I64));
    P.setBody(Area, B.finalize());
  }
  ClassId Big = P.defineClass("BigScreen", Screen);
  MethodId Area2 = P.defineMethod(Big, "area", Type::I64, {});
  {
    FunctionBuilder B("BigScreen.area", Type::I64);
    B.addArg(Type::Ref);
    B.ret(B.constI(-1));
    P.setBody(Area2, B.finalize());
  }
  ClassId Tx = P.defineClass("Tx");
  FieldId ScreenRef =
      P.defineField(Tx, "screen", Type::Ref, false, Access::Private);
  MethodId Process = P.defineMethod(Tx, "process", Type::I64, {});
  {
    FunctionBuilder B("Tx.process", Type::I64);
    Reg This = B.addArg(Type::Ref);
    Reg S = B.getField(This, ScreenRef, Type::Ref);
    B.ret(B.callVirtual(Area, {S}, Type::I64));
    P.setBody(Process, B.finalize());
  }
  P.link();

  // Without OLC: two implementations, no inline.
  {
    Inliner Inl(P, {}, nullptr, nullptr);
    IRFunction F = P.method(Process).Bytecode;
    EXPECT_EQ(Inl.run(F, P.method(Process)).SitesInlined, 0u);
  }
  // With OLC: exact type Screen, inlined with rows = 24.
  OlcDatabase Db;
  OlcEntry E;
  E.RefField = ScreenRef;
  E.TargetClass = Screen;
  E.Constants.push_back({Rows, valueI(24)});
  Db.Entries.push_back(E);
  Inliner Inl(P, {}, &Db, nullptr);
  IRFunction &F = P.method(Process).Bytecode;
  EXPECT_EQ(Inl.run(F, P.method(Process)).SpecializationInlines, 1u);
  runOptPipeline(F);
  bool Found24 = false;
  for (const Instruction &I : F.Insts)
    if (I.Op == Opcode::ConstI && I.Imm == 24)
      Found24 = true;
  EXPECT_TRUE(Found24);
}

TEST(InlineSemantics, LoopAroundInlinedBodyReinitializesLocals) {
  // A callee local that is conditionally assigned must see its zero-init
  // on every inlined "invocation", even when the caller loops around the
  // splice. (regsNeedingInit coverage.)
  Program P;
  ClassId C = P.defineClass("C");
  MethodId Callee = P.defineMethod(C, "pickOrZero", Type::I64, {Type::I64},
                                   {.IsStatic = true});
  {
    FunctionBuilder B("C.pickOrZero", Type::I64);
    Reg X = B.addArg(Type::I64);
    Reg L = B.newReg(Type::I64); // zero unless x != 0
    auto LSkip = B.makeLabel();
    B.cbz(X, LSkip);
    Reg C9 = B.constI(9);
    B.move(L, C9);
    B.bind(LSkip);
    B.ret(L);
    P.setBody(Callee, B.finalize());
  }
  MethodId Caller = P.defineMethod(C, "sumBoth", Type::I64, {},
                                   {.IsStatic = true});
  {
    // Calls pickOrZero(1) then pickOrZero(0) inside a loop; result must be
    // 9 + 0 each iteration, not 9 + 9 (stale local).
    FunctionBuilder B("C.sumBoth", Type::I64);
    Reg Sum = B.newReg(Type::I64);
    Reg I = B.newReg(Type::I64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    Reg Two = B.constI(2);
    B.move(Sum, Zero);
    B.move(I, Zero);
    auto LHead = B.makeLabel();
    auto LDone = B.makeLabel();
    B.bind(LHead);
    B.cbz(B.cmp(Opcode::CmpLT, I, Two), LDone);
    Reg A = B.callStatic(Callee, {One}, Type::I64);
    Reg Bb = B.callStatic(Callee, {Zero}, Type::I64);
    B.move(Sum, B.add(Sum, B.add(A, Bb)));
    B.move(I, B.add(I, One));
    B.br(LHead);
    B.bind(LDone);
    B.ret(Sum);
    P.setBody(Caller, B.finalize());
  }
  P.link();
  Inliner Inl(P, {}, nullptr, nullptr);
  IRFunction &F = P.method(Caller).Bytecode;
  InlineStats St = Inl.run(F, P.method(Caller));
  ASSERT_EQ(St.SitesInlined, 2u);
  ASSERT_EQ(verifyFunction(F), "");
  VirtualMachine VM(P, {});
  EXPECT_EQ(VM.call(Caller, {}).I, 18); // 2 * (9 + 0)
}

} // namespace
