//===-- tests/PassesTest.cpp - Optimizer pass unit + property tests -----------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "compiler/Passes.h"
#include "ir/Verifier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace dchm;
using dchm::test::SingleFunctionProgram;

namespace {

size_t countOp(const IRFunction &F, Opcode Op) {
  size_t N = 0;
  for (const Instruction &I : F.Insts)
    if (I.Op == Op)
      ++N;
  return N;
}

TEST(ConstProp, FoldsConstantArithmetic) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.constI(6);
  Reg Bb = B.constI(7);
  Reg M = B.mul(A, Bb);
  B.ret(M);
  IRFunction F = B.finalize();
  EXPECT_TRUE(runConstantPropagation(F));
  // The multiply becomes a constant 42.
  bool Found42 = false;
  for (const Instruction &I : F.Insts)
    if (I.Op == Opcode::ConstI && I.Imm == 42)
      Found42 = true;
  EXPECT_TRUE(Found42);
  EXPECT_EQ(verifyFunction(F), "");
}

TEST(ConstProp, FoldsThroughDiamond) {
  // Both diamond arms assign the same constant; after the join the value is
  // still constant and the final add folds.
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg X = B.newReg(Type::I64);
  auto LElse = B.makeLabel();
  auto LJoin = B.makeLabel();
  B.cbz(A, LElse);
  Reg C1 = B.constI(5);
  B.move(X, C1);
  B.br(LJoin);
  B.bind(LElse);
  Reg C2 = B.constI(5);
  B.move(X, C2);
  B.br(LJoin);
  B.bind(LJoin);
  Reg C3 = B.constI(1);
  Reg S = B.add(X, C3);
  B.ret(S);
  IRFunction F = B.finalize();
  runOptPipeline(F);
  bool Found6 = false;
  for (const Instruction &I : F.Insts)
    if (I.Op == Opcode::ConstI && I.Imm == 6)
      Found6 = true;
  EXPECT_TRUE(Found6);
}

TEST(ConstProp, DivergentJoinIsNotFolded) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg X = B.newReg(Type::I64);
  auto LElse = B.makeLabel();
  auto LJoin = B.makeLabel();
  B.cbz(A, LElse);
  Reg C1 = B.constI(5);
  B.move(X, C1);
  B.br(LJoin);
  B.bind(LElse);
  Reg C2 = B.constI(9);
  B.move(X, C2);
  B.br(LJoin);
  B.bind(LJoin);
  B.ret(X);
  IRFunction F = B.finalize();
  SingleFunctionProgram S0 = SingleFunctionProgram::create(F);
  EXPECT_EQ(S0.run({valueI(1)}).I, 5);
  runOptPipeline(F);
  SingleFunctionProgram S1 = SingleFunctionProgram::create(F);
  EXPECT_EQ(S1.run({valueI(1)}).I, 5);
  EXPECT_EQ(S1.run({valueI(0)}).I, 9);
}

TEST(ConstProp, NonArgRegistersStartAtZero) {
  // Reading a never-written register yields 0 (zero-initialized frames);
  // constant propagation exploits exactly that.
  FunctionBuilder B("f", Type::I64);
  B.addArg(Type::I64);
  Reg X = B.newReg(Type::I64);
  Reg C = B.constI(3);
  Reg S = B.add(X, C); // X is always 0
  B.ret(S);
  IRFunction F = B.finalize();
  runOptPipeline(F);
  bool Found3 = false;
  for (const Instruction &I : F.Insts)
    if (I.Op == Opcode::ConstI && I.Imm == 3 && I.Dst == S)
      Found3 = true;
  EXPECT_TRUE(Found3);
}

TEST(ConstProp, FoldsConditionalBranch) {
  FunctionBuilder B("f", Type::I64);
  Reg C = B.constI(1);
  auto LDead = B.makeLabel();
  B.cbz(C, LDead); // never taken
  Reg R1 = B.constI(10);
  B.ret(R1);
  B.bind(LDead);
  Reg R2 = B.constI(20);
  B.ret(R2);
  IRFunction F = B.finalize();
  runOptPipeline(F);
  // The dead arm disappears entirely.
  bool Found20 = false;
  for (const Instruction &I : F.Insts)
    if (I.Op == Opcode::ConstI && I.Imm == 20)
      Found20 = true;
  EXPECT_FALSE(Found20);
  EXPECT_EQ(countOp(F, Opcode::Cbz), 0u);
  SingleFunctionProgram S = SingleFunctionProgram::create(F);
  EXPECT_EQ(S.run({}).I, 10);
}

TEST(ConstProp, DoesNotFoldTrappingDivision) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.constI(5);
  Reg Z = B.constI(0);
  Reg D = B.div(A, Z); // would trap; must not fold
  B.ret(D);
  IRFunction F = B.finalize();
  runConstantPropagation(F);
  EXPECT_EQ(countOp(F, Opcode::Div), 1u);
}

TEST(Dce, RemovesDeadArithmetic) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg Dead = B.mul(A, A);
  (void)Dead;
  B.ret(A);
  IRFunction F = B.finalize();
  EXPECT_TRUE(runDeadCodeElimination(F));
  EXPECT_EQ(countOp(F, Opcode::Mul), 0u);
  EXPECT_EQ(verifyFunction(F), "");
}

TEST(Dce, KeepsSideEffects) {
  FunctionBuilder B("f", Type::Void);
  Reg O = B.addArg(Type::Ref);
  Reg V = B.constI(1);
  B.putField(O, 0, V); // side effect: must stay even though nothing reads it
  B.retVoid();
  IRFunction F = B.finalize();
  runDeadCodeElimination(F);
  EXPECT_EQ(countOp(F, Opcode::PutField), 1u);
}

TEST(Dce, RemovesDeadFieldLoad) {
  FunctionBuilder B("f", Type::Void);
  Reg O = B.addArg(Type::Ref);
  B.getField(O, 0, Type::I64); // dead load
  B.retVoid();
  IRFunction F = B.finalize();
  runDeadCodeElimination(F);
  EXPECT_EQ(countOp(F, Opcode::GetField), 0u);
}

TEST(Dce, RemovesUnreachableCode) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  B.ret(A);
  Reg D1 = B.constI(1); // unreachable
  Reg D2 = B.mul(D1, D1);
  Reg D3 = B.add(D2, D1);
  B.ret(D3);
  IRFunction F = B.finalize();
  runDeadCodeElimination(F);
  // The unreachable tail shrinks; only the guaranteed final terminator (and
  // anything it transitively references) may survive.
  EXPECT_LE(F.Insts.size(), 4u);
  EXPECT_EQ(F.Insts[0].Op, Opcode::Ret);
}

TEST(Dce, TransitiveLiveness) {
  // c feeds b feeds a feeds ret: all live. An independent chain dies.
  FunctionBuilder B("f", Type::I64);
  Reg X = B.addArg(Type::I64);
  Reg C = B.add(X, X);
  Reg Bb = B.add(C, X);
  Reg A = B.add(Bb, C);
  Reg D1 = B.mul(X, X);
  Reg D2 = B.mul(D1, D1);
  (void)D2;
  B.ret(A);
  IRFunction F = B.finalize();
  runDeadCodeElimination(F);
  EXPECT_EQ(countOp(F, Opcode::Add), 3u);
  EXPECT_EQ(countOp(F, Opcode::Mul), 0u);
}

TEST(BranchFold, RemovesBranchToNext) {
  FunctionBuilder B("f", Type::Void);
  auto L = B.makeLabel();
  B.br(L);
  B.bind(L);
  B.retVoid();
  IRFunction F = B.finalize();
  EXPECT_TRUE(runBranchFolding(F));
  EXPECT_EQ(F.Insts.size(), 1u);
  EXPECT_EQ(F.Insts[0].Op, Opcode::Ret);
}

TEST(BranchFold, ThreadsBranchChains) {
  FunctionBuilder B("f", Type::Void);
  Reg A = B.addArg(Type::I64);
  auto LHop = B.makeLabel();
  auto LEnd = B.makeLabel();
  B.cbnz(A, LHop);
  B.retVoid();
  B.bind(LHop);
  B.br(LEnd); // the cbnz should end up pointing straight at LEnd
  B.bind(LEnd);
  B.retVoid();
  IRFunction F = B.finalize();
  runBranchFolding(F);
  // After threading + folding, the cbnz target is the final ret.
  ASSERT_EQ(F.Insts[0].Op, Opcode::Cbnz);
  EXPECT_EQ(F.Insts[static_cast<size_t>(F.Insts[0].Imm)].Op, Opcode::Ret);
}

TEST(StrengthReduce, MulByZeroAndOne) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg Zero = B.constI(0);
  Reg One = B.constI(1);
  Reg M0 = B.mul(A, Zero);
  Reg M1 = B.mul(A, One);
  Reg S = B.add(M0, M1);
  B.ret(S);
  IRFunction F = B.finalize();
  EXPECT_TRUE(runStrengthReduction(F));
  EXPECT_EQ(countOp(F, Opcode::Mul), 0u);
  SingleFunctionProgram S2 = SingleFunctionProgram::create(F);
  EXPECT_EQ(S2.run({valueI(9)}).I, 9);
}

TEST(StrengthReduce, AddZeroIdentity) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg Zero = B.constI(0);
  Reg S = B.add(A, Zero);
  B.ret(S);
  IRFunction F = B.finalize();
  EXPECT_TRUE(runStrengthReduction(F));
  EXPECT_EQ(countOp(F, Opcode::Add), 0u);
}

TEST(StrengthReduce, MulByTwoBecomesAdd) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg Two = B.constI(2);
  Reg M = B.mul(A, Two);
  B.ret(M);
  IRFunction F = B.finalize();
  EXPECT_TRUE(runStrengthReduction(F));
  EXPECT_EQ(countOp(F, Opcode::Mul), 0u);
  EXPECT_EQ(countOp(F, Opcode::Add), 1u);
  SingleFunctionProgram S = SingleFunctionProgram::create(F);
  EXPECT_EQ(S.run({valueI(21)}).I, 42);
}

TEST(StrengthReduce, RemByOneIsZero) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg One = B.constI(1);
  Reg R = B.rem(A, One);
  B.ret(R);
  IRFunction F = B.finalize();
  runStrengthReduction(F);
  EXPECT_EQ(countOp(F, Opcode::Rem), 0u);
  SingleFunctionProgram S = SingleFunctionProgram::create(F);
  EXPECT_EQ(S.run({valueI(77)}).I, 0);
}

TEST(CopyProp, ForwardsMoveSources) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg X = B.newReg(Type::I64);
  B.move(X, A);
  Reg S = B.add(X, X);
  B.ret(S);
  IRFunction F = B.finalize();
  EXPECT_TRUE(runCopyPropagation(F));
  // The add now reads A directly.
  bool AddUsesA = false;
  for (const Instruction &I : F.Insts)
    if (I.Op == Opcode::Add && I.A == A && I.B == A)
      AddUsesA = true;
  EXPECT_TRUE(AddUsesA);
}

TEST(CopyProp, InvalidatedByRedefinition) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg X = B.newReg(Type::I64);
  B.move(X, A);
  Reg C = B.constI(7);
  B.move(X, C); // X no longer a copy of A
  Reg S = B.add(X, X);
  B.ret(S);
  IRFunction F = B.finalize();
  runCopyPropagation(F);
  SingleFunctionProgram S2 = SingleFunctionProgram::create(F);
  EXPECT_EQ(S2.run({valueI(100)}).I, 14);
}

TEST(Pipeline, SalaryDbStyleIfChainCollapses) {
  // Mirrors what the Specializer + pipeline do to raise(): a constant mode
  // selector folds the chain to a single arm.
  FunctionBuilder B("f", Type::I64);
  Reg X = B.addArg(Type::I64);
  Reg Mode = B.constI(2);
  Reg Out = B.newReg(Type::I64);
  auto L1 = B.makeLabel();
  auto L2 = B.makeLabel();
  auto LEnd = B.makeLabel();
  Reg C0 = B.constI(0);
  B.cbnz(B.cmp(Opcode::CmpNE, Mode, C0), L1);
  B.move(Out, B.add(X, C0));
  B.br(LEnd);
  B.bind(L1);
  Reg C1 = B.constI(1);
  B.cbnz(B.cmp(Opcode::CmpNE, Mode, C1), L2);
  B.move(Out, B.mul(X, X));
  B.br(LEnd);
  B.bind(L2);
  Reg C7 = B.constI(7);
  B.move(Out, B.add(X, C7));
  B.br(LEnd);
  B.bind(LEnd);
  B.ret(Out);
  IRFunction F = B.finalize();
  size_t Before = F.Insts.size();
  runOptPipeline(F);
  EXPECT_LT(F.Insts.size(), Before / 2);
  EXPECT_EQ(countOp(F, Opcode::Cbnz), 0u);
  SingleFunctionProgram S = SingleFunctionProgram::create(F);
  EXPECT_EQ(S.run({valueI(5)}).I, 12);
}

TEST(Pipeline, IsIdempotent) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg C = B.constI(3);
  Reg S = B.add(A, C);
  Reg M = B.mul(S, C);
  B.ret(M);
  IRFunction F = B.finalize();
  runOptPipeline(F);
  std::string Once = F.toString();
  runOptPipeline(F);
  EXPECT_EQ(F.toString(), Once);
}

// --- Property sweep: optimized code behaves exactly like the original ------

/// Generates a random function of two i64 arguments with arithmetic, an
/// if/else on a comparison, and a bounded counted loop. Division only ever
/// uses nonzero constant divisors.
IRFunction randomFunction(uint64_t Seed) {
  Rng R(Seed);
  FunctionBuilder B("rand", Type::I64);
  Reg A0 = B.addArg(Type::I64);
  Reg A1 = B.addArg(Type::I64);
  std::vector<Reg> Pool{A0, A1};
  auto Pick = [&] { return Pool[R.nextBelow(Pool.size())]; };
  auto RandomArith = [&](unsigned N) {
    for (unsigned I = 0; I < N; ++I) {
      switch (R.nextBelow(7)) {
      case 0:
        Pool.push_back(B.add(Pick(), Pick()));
        break;
      case 1:
        Pool.push_back(B.sub(Pick(), Pick()));
        break;
      case 2:
        Pool.push_back(B.mul(Pick(), Pick()));
        break;
      case 3:
        Pool.push_back(B.xorI(Pick(), Pick()));
        break;
      case 4:
        Pool.push_back(B.constI(R.nextInRange(-8, 8)));
        break;
      case 5: {
        Reg D = B.constI(R.nextInRange(1, 9));
        Pool.push_back(B.div(Pick(), D));
        break;
      }
      default:
        Pool.push_back(
            B.cmp(Opcode::CmpLT, Pick(), Pick()));
        break;
      }
    }
  };
  RandomArith(4);
  // Diamond.
  Reg Out = B.newReg(Type::I64);
  auto LElse = B.makeLabel();
  auto LJoin = B.makeLabel();
  B.cbz(B.cmp(Opcode::CmpLT, Pick(), Pick()), LElse);
  RandomArith(3);
  B.move(Out, Pick());
  B.br(LJoin);
  B.bind(LElse);
  RandomArith(3);
  B.move(Out, Pick());
  B.br(LJoin);
  B.bind(LJoin);
  // Counted loop accumulating into Out.
  Reg I = B.newReg(Type::I64);
  Reg Zero = B.constI(0);
  Reg One = B.constI(1);
  Reg N = B.constI(static_cast<int64_t>(R.nextBelow(6)));
  B.move(I, Zero);
  auto LHead = B.makeLabel();
  auto LDone = B.makeLabel();
  B.bind(LHead);
  B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
  B.move(Out, B.add(B.mul(Out, B.constI(3)), I));
  B.move(I, B.add(I, One));
  B.br(LHead);
  B.bind(LDone);
  B.ret(Out);
  return B.finalize();
}

class PipelineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineEquivalence, OptimizedMatchesOriginal) {
  IRFunction Original = randomFunction(GetParam());
  ASSERT_EQ(verifyFunction(Original), "");
  IRFunction Optimized = Original;
  runOptPipeline(Optimized);
  ASSERT_EQ(verifyFunction(Optimized), "");
  SingleFunctionProgram SO = SingleFunctionProgram::create(Original);
  SingleFunctionProgram SP = SingleFunctionProgram::create(Optimized);
  Rng R(GetParam() * 33 + 1);
  for (int Trial = 0; Trial < 8; ++Trial) {
    int64_t X = R.nextInRange(-100, 100);
    int64_t Y = R.nextInRange(-100, 100);
    Value VO = SO.run({valueI(X), valueI(Y)});
    Value VP = SP.run({valueI(X), valueI(Y)});
    EXPECT_EQ(VO.I, VP.I) << "seed=" << GetParam() << " x=" << X << " y=" << Y;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFunctions, PipelineEquivalence,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
