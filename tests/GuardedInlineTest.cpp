//===-- tests/GuardedInlineTest.cpp - Guarded inlining + ClassEq --------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// Tests for the Jikes-style guarded inlining extension (paper section 3.2.1
/// mentions Jikes supports it when "there is not a single precise target
/// callee"): a polymorphic virtual call inlines its predicted target under
/// an exact-class test, with the original call as the slow path.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "compiler/Inliner.h"
#include "compiler/Passes.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

/// A/B hierarchy where tag() is polymorphic (A returns 1, B returns 2),
/// plus a static caller dispatching on an arbitrary receiver.
struct PolyFixture {
  Program P;
  ClassId A, B;
  MethodId ACtor, BCtor, ATag, BTag, Caller;

  PolyFixture() {
    A = P.defineClass("A");
    ACtor = P.defineMethod(A, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder F("A.<init>", Type::Void);
      F.addArg(Type::Ref);
      F.retVoid();
      P.setBody(ACtor, F.finalize());
    }
    ATag = P.defineMethod(A, "tag", Type::I64, {});
    {
      FunctionBuilder F("A.tag", Type::I64);
      F.addArg(Type::Ref);
      F.ret(F.constI(1));
      P.setBody(ATag, F.finalize());
    }
    B = P.defineClass("B", A);
    BCtor = P.defineMethod(B, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder F("B.<init>", Type::Void);
      Reg This = F.addArg(Type::Ref);
      F.callSpecial(ACtor, {This}, Type::Void);
      F.retVoid();
      P.setBody(BCtor, F.finalize());
    }
    BTag = P.defineMethod(B, "tag", Type::I64, {});
    {
      FunctionBuilder F("B.tag", Type::I64);
      F.addArg(Type::Ref);
      F.ret(F.constI(2));
      P.setBody(BTag, F.finalize());
    }
    Caller = P.defineMethod(A, "go", Type::I64, {Type::Ref},
                            {.IsStatic = true});
    {
      FunctionBuilder F("A.go", Type::I64);
      Reg O = F.addArg(Type::Ref);
      Reg V = F.callVirtual(ATag, {O}, Type::I64);
      Reg Ten = F.constI(10);
      F.ret(F.add(V, Ten));
      P.setBody(Caller, F.finalize());
    }
    P.link();
  }

  Object *make(VirtualMachine &VM, ClassId C, MethodId Ctor) {
    ClassInfo &CI = P.cls(C);
    Object *O = VM.heap().allocateInstance(CI, CI.ClassTib);
    VM.call(Ctor, {valueR(O)});
    return O;
  }
};

TEST(GuardedInline, OffByDefault) {
  PolyFixture Fx;
  Inliner Inl(Fx.P, {}, nullptr, nullptr);
  IRFunction F = Fx.P.method(Fx.Caller).Bytecode;
  InlineStats S = Inl.run(F, Fx.P.method(Fx.Caller));
  EXPECT_EQ(S.GuardedInlines, 0u);
  EXPECT_EQ(S.SitesInlined, 0u);
}

TEST(GuardedInline, EmitsGuardAndSlowPath) {
  PolyFixture Fx;
  InlinerConfig Cfg;
  Cfg.EnableGuardedInlining = true;
  Inliner Inl(Fx.P, Cfg, nullptr, nullptr);
  IRFunction &F = Fx.P.method(Fx.Caller).Bytecode;
  InlineStats S = Inl.run(F, Fx.P.method(Fx.Caller));
  EXPECT_EQ(S.GuardedInlines, 1u);
  ASSERT_EQ(verifyFunction(F), "");
  size_t Guards = 0, SlowCalls = 0;
  for (const Instruction &I : F.Insts) {
    if (I.Op == Opcode::ClassEq)
      ++Guards;
    if (I.Op == Opcode::CallVirtual)
      ++SlowCalls;
  }
  EXPECT_EQ(Guards, 1u);
  EXPECT_EQ(SlowCalls, 1u); // the original call survives as the slow path
}

TEST(GuardedInline, FastAndSlowPathsBothCorrect) {
  PolyFixture Fx;
  // Inline before any execution so compiled code contains the guard.
  InlinerConfig Cfg;
  Cfg.EnableGuardedInlining = true;
  Inliner Inl(Fx.P, Cfg, nullptr, nullptr);
  Inl.run(Fx.P.method(Fx.Caller).Bytecode, Fx.P.method(Fx.Caller));

  VirtualMachine VM(Fx.P, {});
  Object *OA = Fx.make(VM, Fx.A, Fx.ACtor); // guard hits: inlined body
  Object *OB = Fx.make(VM, Fx.B, Fx.BCtor); // guard misses: slow path
  EXPECT_EQ(VM.call(Fx.Caller, {valueR(OA)}).I, 11);
  EXPECT_EQ(VM.call(Fx.Caller, {valueR(OB)}).I, 12);
}

TEST(GuardedInline, GuardSeesThroughSpecialTibs) {
  // The exact-class guard must use the type-information entry: a mutated
  // object (special TIB) of the predicted class still takes the fast path,
  // i.e. ClassEq(A-instance-with-special-TIB, A) == 1.
  test::CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 0);
  ASSERT_TRUE(O->Tib->isSpecial());
  // Execute a ClassEq through a fresh single-method program sharing the
  // object: hand-check via the mutation fixture's program.
  // (ClassEq is interpreter-level; emulate its semantics check directly.)
  EXPECT_EQ(O->Tib->Cls->Id, Fx.Counter);
}

TEST(GuardedInline, PipelineKeepsGuardIntact) {
  PolyFixture Fx;
  InlinerConfig Cfg;
  Cfg.EnableGuardedInlining = true;
  Inliner Inl(Fx.P, Cfg, nullptr, nullptr);
  IRFunction &F = Fx.P.method(Fx.Caller).Bytecode;
  Inl.run(F, Fx.P.method(Fx.Caller));
  runOptPipeline(F);
  ASSERT_EQ(verifyFunction(F), "");
  size_t Guards = 0;
  for (const Instruction &I : F.Insts)
    if (I.Op == Opcode::ClassEq)
      ++Guards;
  EXPECT_EQ(Guards, 1u); // the guard cannot be folded away

  VirtualMachine VM(Fx.P, {});
  Object *OB = Fx.make(VM, Fx.B, Fx.BCtor);
  EXPECT_EQ(VM.call(Fx.Caller, {valueR(OB)}).I, 12);
}

TEST(GuardedInline, RespectsTradeoffForMutableMethods) {
  // A polymorphic *mutable* method: guarded inlining of the general body
  // would bypass specialization, so the N > M + k trade-off must reject the
  // guarded inline exactly like the unguarded one.
  Program P;
  ClassId A = P.defineClass("A");
  FieldId Mode = P.defineField(A, "mode", Type::I64, false);
  MethodId Am = P.defineMethod(A, "m", Type::I64, {});
  {
    FunctionBuilder F("A.m", Type::I64);
    Reg This = F.addArg(Type::Ref);
    F.ret(F.getField(This, Mode, Type::I64));
    P.setBody(Am, F.finalize());
  }
  ClassId B = P.defineClass("B", A);
  MethodId Bm = P.defineMethod(B, "m", Type::I64, {}); // makes m polymorphic
  {
    FunctionBuilder F("B.m", Type::I64);
    F.addArg(Type::Ref);
    F.ret(F.constI(-1));
    P.setBody(Bm, F.finalize());
  }
  MethodId Caller = P.defineMethod(A, "go", Type::I64, {Type::Ref},
                                   {.IsStatic = true});
  {
    FunctionBuilder F("A.go", Type::I64);
    Reg O = F.addArg(Type::Ref);
    F.ret(F.callVirtual(Am, {O}, Type::I64));
    P.setBody(Caller, F.finalize());
  }
  P.link();

  MutationPlan Plan;
  MutableClassPlan CP;
  CP.Cls = A;
  CP.InstanceStateFields = {Mode};
  HotState S0;
  S0.InstanceVals = {valueI(0)};
  CP.HotStates = {S0};
  CP.MutableMethods = {Am};
  Plan.Classes.push_back(CP);
  P.method(Am).IsMutable = true;

  InlinerConfig Cfg;
  Cfg.EnableGuardedInlining = true;
  Inliner Inl(P, Cfg, nullptr, &Plan);
  IRFunction &F = P.method(Caller).Bytecode;
  InlineStats S = Inl.run(F, P.method(Caller));
  EXPECT_EQ(S.GuardedInlines, 0u);
  EXPECT_EQ(S.SitesInlined, 0u);
  EXPECT_EQ(S.TradeoffRejections, 1u); // N=0 <= M=1 + k=0
}

} // namespace
