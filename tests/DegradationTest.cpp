//===-- tests/DegradationTest.cpp - Graceful degradation ----------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// Tests for the graceful-degradation subsystem (docs/degradation.md): plan
/// retirement as the stop-the-world reverse of installation, epoch-based
/// reclamation of retired special TIBs and specialized bodies, the
/// code/TIB budget with benefit-ranked state eviction, fault-tolerant
/// background compilation with quarantine, and the recoverable VMError
/// channel on input-validation and resource paths.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "testing/ConsistencyAuditor.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace dchm;
using dchm::test::CounterFixture;

namespace {

/// Drives Bump hot enough to reach opt2 (where specialization happens).
void makeHot(CounterFixture &Fx, VirtualMachine &VM, Object *O,
             int Calls = 5000) {
  for (int I = 0; I < Calls; ++I)
    VM.call(Fx.Bump, {valueR(O)});
}

int64_t get(CounterFixture &Fx, VirtualMachine &VM, Object *O) {
  return VM.call(Fx.Get, {valueR(O)}).I;
}

// --- Plan retirement ---------------------------------------------------------

TEST(Retirement, RestoresPristineHierarchy) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  LocalRootScope Pin(VM.heap());
  Object *O0 = Fx.makeCounter(VM, 0);
  Pin.add(O0);
  Object *O1 = Fx.makeCounter(VM, 1);
  Pin.add(O1);
  makeHot(Fx, VM, O0);
  const ClassInfo &C = Fx.P->cls(Fx.Counter);
  ASSERT_EQ(O0->Tib, C.SpecialTibs[0]);

  ASSERT_TRUE(VM.retireMutationPlan());
  // The hierarchy looks as if no plan had ever been installed.
  EXPECT_TRUE(C.SpecialTibs.empty());
  EXPECT_FALSE(Fx.P->field(Fx.Mode).IsStateField);
  EXPECT_FALSE(Fx.P->method(Fx.Bump).IsMutable);
  EXPECT_EQ(O0->Tib, C.ClassTib);
  EXPECT_EQ(O1->Tib, C.ClassTib);
  ASSERT_NE(C.Imt, nullptr);
  for (const ImtEntry &E : C.Imt->Slots)
    EXPECT_NE(E.K, ImtEntry::Kind::TibOffset); // un-rewired to Direct
  EXPECT_EQ(VM.mutation().stats().PlanRetirements, 1u);
  EXPECT_EQ(VM.mutation().plan(), nullptr);
  // Nothing references the retired TIBs and no frame is live, so the
  // epoch-based reclamation list drained on the spot.
  EXPECT_EQ(Fx.P->retiredTibCount(), 0u);
  EXPECT_GE(Fx.P->reclaimedTibCount(), 2u);
  // Retiring twice is a recoverable no-op.
  EXPECT_FALSE(VM.retireMutationPlan());

  // Behavior stays correct through general code: mode 7 is cold, +100/bump.
  VM.call(Fx.SetMode, {valueR(O0), valueI(7)});
  int64_t Before = get(Fx, VM, O0);
  VM.call(Fx.DriveBump, {valueR(O0), valueI(10)});
  EXPECT_EQ(get(Fx, VM, O0), Before + 1000);
}

TEST(Retirement, ReinstallAfterRetireWorks) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  LocalRootScope Pin(VM.heap());
  Object *O = Fx.makeCounter(VM, 0);
  Pin.add(O);
  makeHot(Fx, VM, O);
  ASSERT_TRUE(VM.retireMutationPlan());

  VM.setMutationPlan(&Fx.Plan);
  const ClassInfo &C = Fx.P->cls(Fx.Counter);
  ASSERT_EQ(C.SpecialTibs.size(), 2u);
  EXPECT_TRUE(Fx.P->field(Fx.Mode).IsStateField);
  // Installation migrated the old object back onto a special TIB...
  EXPECT_EQ(O->Tib, C.SpecialTibs[0]);
  // ...and part I fires again for new objects and state stores.
  Object *O2 = Fx.makeCounter(VM, 1);
  Pin.add(O2);
  EXPECT_EQ(O2->Tib, C.SpecialTibs[1]);
  int64_t Before = get(Fx, VM, O2);
  VM.call(Fx.DriveBump, {valueR(O2), valueI(10)});
  EXPECT_EQ(get(Fx, VM, O2), Before + 100); // mode 1: +10 each
}

TEST(Retirement, StaleInlineCacheRetargetsAfterRetire) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  LocalRootScope Pin(VM.heap());
  Object *O = Fx.makeCounter(VM, 0);
  Pin.add(O);
  // Specialize bump for state 0, then warm the DriveBump call-site inline
  // cache while the plan is active.
  makeHot(Fx, VM, O);
  VM.call(Fx.DriveBump, {valueR(O), valueI(100)});
  int64_t Total = get(Fx, VM, O); // 5000 + 100, all +1 in mode 0
  ASSERT_EQ(Total, 5100);

  uint64_t EpochBefore = Fx.P->codeEpoch();
  ASSERT_TRUE(VM.retireMutationPlan());
  // Retirement bumps the code epoch so the warmed cache entry misses...
  EXPECT_GT(Fx.P->codeEpoch(), EpochBefore);

  // ...which matters now: mode is no longer a state field, so this store
  // fires no part I hook, and only the epoch check keeps the stale entry
  // (general receiver TIB -> state-0 specialized code) from being reused.
  VM.call(Fx.SetMode, {valueR(O), valueI(5)});
  VM.call(Fx.DriveBump, {valueR(O), valueI(50)});
  // Correct dispatch runs general code: mode 5 is cold, +100 per bump. The
  // state-0 specialization would have added +1.
  EXPECT_EQ(get(Fx, VM, O), 5100 + 50 * 100);
}

/// Runs the canonical fixture workload and returns the simulated-state
/// fingerprint. With RoundTrip the plan is installed, retired, and
/// re-installed before any execution — the prologue round-trip the
/// acceptance gate requires to be bit-identical to a fresh install.
std::string runFingerprint(const VMOptions &Opts, bool RoundTrip) {
  CounterFixture Fx; // fresh Program: MethodInfo hotness must not leak
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  if (RoundTrip) {
    EXPECT_TRUE(VM.retireMutationPlan());
    VM.setMutationPlan(&Fx.Plan);
  }
  LocalRootScope Pin(VM.heap());
  Object *O0 = Fx.makeCounter(VM, 0);
  Pin.add(O0);
  Object *O1 = Fx.makeCounter(VM, 1);
  Pin.add(O1);
  makeHot(Fx, VM, O0);
  VM.call(Fx.DriveBump, {valueR(O1), valueI(500)});
  VM.call(Fx.Report, {valueR(O0)});
  VM.call(Fx.Report, {valueR(O1)});
  RunMetrics M = VM.metrics();
  std::ostringstream S;
  S << "out=" << VM.interp().output() << " hash=" << M.OutputHash
    << " insts=" << M.Insts << " inv=" << M.Invocations
    << " exec=" << M.ExecCycles << " compile=" << M.CompileCycles
    << " special=" << M.SpecialCompileCycles << " gc=" << M.GcCycles
    << " mut=" << M.MutationCycles << " total=" << M.TotalCycles
    << " swings=" << M.Mutation.ObjectTibSwings
    << " repoints=" << M.Mutation.CodePointerUpdates
    << " requests=" << M.SpecialCompileRequests;
  return S.str();
}

TEST(Retirement, PrologueRoundTripIsFingerprintIdentical) {
  // Both dispatch modes and async worker counts 0/2/4: every configuration
  // must agree with itself across fresh vs round-trip, and with config 0.
  std::vector<VMOptions> Configs(4);
  Configs[0].Dispatch = DispatchMode::Switch;
  Configs[0].AsyncCompile = HostToggle::Off;
  Configs[1].Dispatch = DispatchMode::Threaded;
  Configs[1].AsyncCompile = HostToggle::Off;
  Configs[2].Dispatch = DispatchMode::Switch;
  Configs[2].AsyncCompile = HostToggle::On;
  Configs[2].CompileThreads = 2;
  Configs[3].Dispatch = DispatchMode::Threaded;
  Configs[3].AsyncCompile = HostToggle::On;
  Configs[3].CompileThreads = 4;

  std::string Reference = runFingerprint(Configs[0], /*RoundTrip=*/false);
  for (size_t I = 0; I < Configs.size(); ++I) {
    EXPECT_EQ(runFingerprint(Configs[I], false), Reference) << "config " << I;
    EXPECT_EQ(runFingerprint(Configs[I], true), Reference)
        << "round-trip config " << I;
  }
}

TEST(Retirement, MidRunRetireReinstallKeepsOutput) {
  // The same call sequence on a mutation-off VM is the semantic oracle.
  auto Drive = [](CounterFixture &Fx, VirtualMachine &VM,
                  bool WithRetire) -> std::string {
    LocalRootScope Pin(VM.heap());
    Object *O = Fx.makeCounter(VM, 0);
    Pin.add(O);
    makeHot(Fx, VM, O, 2000);
    if (WithRetire) {
      VM.retireMutationPlan();
      VM.setMutationPlan(&Fx.Plan); // re-install migrates existing objects
    }
    VM.call(Fx.SetMode, {valueR(O), valueI(1)});
    VM.call(Fx.DriveBump, {valueR(O), valueI(300)});
    VM.call(Fx.DriveIface, {valueR(O), valueI(300)});
    VM.call(Fx.Report, {valueR(O)});
    return VM.interp().output();
  };

  std::string Baseline;
  {
    CounterFixture Fx;
    VMOptions Opts;
    Opts.EnableMutation = false;
    VirtualMachine VM(*Fx.P, Opts);
    Baseline = Drive(Fx, VM, false);
  }
  {
    CounterFixture Fx;
    VMOptions Opts;
    Opts.AuditConsistency = HostToggle::On;
    VirtualMachine VM(*Fx.P, Opts);
    VM.setMutationPlan(&Fx.Plan);
    ConsistencyAuditor Auditor(VM);
    VM.setAuditHook(&Auditor);
    EXPECT_EQ(Drive(Fx, VM, true), Baseline);
    Auditor.auditNow("end of test");
    EXPECT_TRUE(Auditor.clean()) << Auditor.report();
  }
}

// --- Epoch-based reclamation -------------------------------------------------

TEST(Reclamation, StrandedObjectsBlockReclaimAndTripAuditor) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.AuditConsistency = HostToggle::On;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  ConsistencyAuditor Auditor(VM);
  VM.setAuditHook(&Auditor);
  LocalRootScope Pin(VM.heap());
  Object *O = Fx.makeCounter(VM, 0);
  Pin.add(O);
  makeHot(Fx, VM, O); // specialized bodies exist and are TIB-referenced
  TIB *Special = O->Tib;
  ASSERT_TRUE(Special->isSpecial());

  // Inject the partial-retire fault: the heap pass that swings objects off
  // their special TIBs is skipped, stranding O on a retired TIB.
  VM.mutation().debugFlags().SkipRetireSwing = true;
  ASSERT_TRUE(VM.retireMutationPlan());
  EXPECT_EQ(O->Tib, Special);

  // The stranded object pins its TIB on the reclamation list, and while any
  // retired TIB is heap-referenced no specialized body is released either
  // (its code is still reachable through the stranded TIB's slots).
  EXPECT_GE(Fx.P->retiredTibCount(), 1u);
  EXPECT_EQ(Fx.P->reclaimedBodyCount(), 0u);
  VM.reclaimRetired(); // still stranded: must stay a no-op for the TIB
  EXPECT_GE(Fx.P->retiredTibCount(), 1u);

  // The stranded TIB still dispatches correctly (bodies were not freed)...
  int64_t Before = get(Fx, VM, O);
  VM.call(Fx.DriveBump, {valueR(O), valueI(10)});
  EXPECT_EQ(get(Fx, VM, O), Before + 10);
  // ...and the auditor reports the break the fuzzer's
  // --inject-partial-retire mode hunts for.
  Auditor.auditNow("after faulty retire");
  EXPECT_GT(Auditor.violationCount(), 0u);
}

// --- Code/TIB budget and benefit-ranked eviction -----------------------------

TEST(Degradation, BudgetEvictsDownToFitAndStaysCorrect) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.CodeBudgetBytes = 1; // below any special TIB: everything must go
  Opts.AuditConsistency = HostToggle::On;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  ConsistencyAuditor Auditor(VM);
  VM.setAuditHook(&Auditor);
  LocalRootScope Pin(VM.heap());
  Object *O = Fx.makeCounter(VM, 0);
  Pin.add(O);
  makeHot(Fx, VM, O);
  VM.call(Fx.DriveBump, {valueR(O), valueI(100)});

  EXPECT_GE(VM.mutation().stats().StateEvictions, 2u);
  EXPECT_LE(VM.mutation().specialFootprintBytes(), Opts.CodeBudgetBytes);
  // Evicted states resolve through the class TIB; results are unchanged.
  EXPECT_EQ(get(Fx, VM, O), 5100);
  Auditor.auditNow("end of test");
  EXPECT_TRUE(Auditor.clean()) << Auditor.report();
}

TEST(Degradation, UnlimitedBudgetNeverEvicts) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {}); // CodeBudgetBytes = 0 = unlimited
  VM.setMutationPlan(&Fx.Plan);
  LocalRootScope Pin(VM.heap());
  Object *O = Fx.makeCounter(VM, 0);
  Pin.add(O);
  makeHot(Fx, VM, O);
  EXPECT_EQ(VM.mutation().stats().StateEvictions, 0u);
  EXPECT_GT(VM.mutation().specialFootprintBytes(), 0u);
}

TEST(Degradation, ColdestStateEvictedFirst) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  LocalRootScope Pin(VM.heap());
  Object *O0 = Fx.makeCounter(VM, 0); // 1 swing-in for state 0
  Pin.add(O0);
  Object *O1 = Fx.makeCounter(VM, 1); // 1 swing-in for state 1
  Pin.add(O1);
  // Two more swing-ins for state 0: it is now the hotter state.
  VM.call(Fx.SetMode, {valueR(O0), valueI(0)});
  VM.call(Fx.SetMode, {valueR(O0), valueI(0)});

  ASSERT_TRUE(VM.mutation().evictColdestState());
  const ClassInfo &C = Fx.P->cls(Fx.Counter);
  ASSERT_EQ(C.SpecialTibs.size(), 2u); // indices stay stable
  EXPECT_NE(C.SpecialTibs[0], nullptr);
  EXPECT_EQ(C.SpecialTibs[1], nullptr); // the cold one was demoted
  EXPECT_EQ(O1->Tib, C.ClassTib);      // its resident came along
  EXPECT_EQ(O0->Tib, C.SpecialTibs[0]);
  // Part I now parks state-1 objects on the class TIB instead.
  Object *O2 = Fx.makeCounter(VM, 1);
  Pin.add(O2);
  EXPECT_EQ(O2->Tib, C.ClassTib);
}

// --- Fault-tolerant compilation ----------------------------------------------

TEST(FaultTolerance, TransientFaultsRetryAndHeal) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.AsyncCompile = HostToggle::On;
  Opts.CompileThreads = 1;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  // Fail every first attempt; the retry (attempt 1) succeeds.
  VM.compiler().pipeline().setFaultHook(
      [](const MethodInfo &, int, unsigned Attempt) { return Attempt == 0; });
  LocalRootScope Pin(VM.heap());
  Object *O = Fx.makeCounter(VM, 0);
  Pin.add(O);
  makeHot(Fx, VM, O);
  RunMetrics M = VM.metrics(); // drains the pipeline
  (void)M;
  EXPECT_GT(VM.compiler().pipeline().stats().Retries, 0u);
  EXPECT_EQ(VM.compiler().pipeline().quarantineCount(), 0u);
  EXPECT_FALSE(VM.compiler().pipeline().quarantined(Fx.P->method(Fx.Bump)));
  EXPECT_EQ(get(Fx, VM, O), 5000);
}

TEST(FaultTolerance, PersistentFaultQuarantinesWithoutWedging) {
  // Baseline: same drive, no faults, synchronous.
  int64_t Expected;
  std::string ExpectedOut;
  {
    CounterFixture Fx;
    VMOptions Opts;
    Opts.AsyncCompile = HostToggle::Off;
    VirtualMachine VM(*Fx.P, Opts);
    VM.setMutationPlan(&Fx.Plan);
    LocalRootScope Pin(VM.heap());
    Object *O = Fx.makeCounter(VM, 0);
    Pin.add(O);
    makeHot(Fx, VM, O);
    VM.call(Fx.Report, {valueR(O)});
    Expected = get(Fx, VM, O);
    ExpectedOut = VM.interp().output();
  }

  CounterFixture Fx;
  VMOptions Opts;
  Opts.AsyncCompile = HostToggle::On;
  Opts.CompileThreads = 1;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  // Every attempt fails: each job exhausts its attempts and the method is
  // quarantined to general code. The held unoptimized body is published at
  // quarantine time, so safepoint waiters (waitForCode) never wedge — the
  // run completing at all is the property under test.
  VM.compiler().pipeline().setFaultHook(
      [](const MethodInfo &, int, unsigned) { return true; });
  LocalRootScope Pin(VM.heap());
  Object *O = Fx.makeCounter(VM, 0);
  Pin.add(O);
  makeHot(Fx, VM, O);
  VM.call(Fx.Report, {valueR(O)});
  RunMetrics M = VM.metrics();
  (void)M;
  EXPECT_GT(VM.compiler().pipeline().quarantineCount(), 0u);
  EXPECT_GT(VM.compiler().pipeline().stats().FailedAttempts, 0u);
  // Quarantined methods still produce correct results via general code.
  EXPECT_EQ(get(Fx, VM, O), Expected);
  EXPECT_EQ(VM.interp().output(), ExpectedOut);
}

// --- Recoverable errors ------------------------------------------------------

TEST(RecoverableErrors, RunValidatesEntryAndArguments) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  LocalRootScope Pin(VM.heap());
  Object *O = Fx.makeCounter(VM, 0);
  Pin.add(O);

  Expected<Value> Bad = VM.run(static_cast<MethodId>(1u << 20), {});
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_NE(Bad.takeError().message().find("no such method"),
            std::string::npos);

  Expected<Value> WrongArity = VM.run(Fx.Get, {}); // needs the receiver
  ASSERT_FALSE(static_cast<bool>(WrongArity));
  EXPECT_NE(WrongArity.takeError().message().find("argument"),
            std::string::npos);

  Expected<Value> Good = VM.run(Fx.Get, {valueR(O)});
  ASSERT_TRUE(static_cast<bool>(Good));
  EXPECT_EQ((*Good).I, 0);
}

TEST(RecoverableErrors, HeapBudgetOverrunSurfacesWithoutAborting) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.HeapBytes = 4096; // the smallest soft budget the heap accepts
  VirtualMachine VM(*Fx.P, Opts);
  LocalRootScope Pin(VM.heap());
  ClassInfo &C = Fx.P->cls(Fx.Counter);
  // Pinned live objects: collection cannot free them, so allocation goes
  // over budget — the soft allocator proceeds but records the overrun.
  for (int I = 0; I < 256; ++I)
    Pin.add(VM.heap().allocateInstance(C, C.ClassTib));
  ASSERT_TRUE(static_cast<bool>(VM.heap().budgetError()));

  Expected<Value> V = VM.run(Fx.Get, {valueR(Pin[0])});
  ASSERT_FALSE(static_cast<bool>(V));
  EXPECT_FALSE(V.takeError().message().empty());

  // The error is sticky but clearable; afterwards run() succeeds again.
  VM.heap().clearBudgetError();
  Expected<Value> Ok = VM.run(Fx.Get, {valueR(Pin[0])});
  EXPECT_TRUE(static_cast<bool>(Ok));
}

} // namespace
