//===-- tests/MutationManagerTest.cpp - Distributed mutation algorithm --------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// Tests for the paper's core machinery: special TIB creation, part I of the
/// distributed dynamic class mutation algorithm (state-field assignments and
/// constructor exits re-pointing object TIBs and code pointers), part II
/// (recompilation routing specialized code), and the interactions the paper
/// calls out (subclass propagation, invokespecial, IMT rewiring).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "testing/ConsistencyAuditor.h"

#include <gtest/gtest.h>

using namespace dchm;
using dchm::test::CounterFixture;

namespace {

/// Drives Bump hot enough to reach opt2 (where mutation happens).
void makeHot(CounterFixture &Fx, VirtualMachine &VM, Object *O,
             int Calls = 5000) {
  for (int I = 0; I < Calls; ++I)
    VM.call(Fx.Bump, {valueR(O)});
}

TEST(MutationInstall, CreatesOneSpecialTibPerHotState) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  const ClassInfo &C = Fx.P->cls(Fx.Counter);
  ASSERT_EQ(C.SpecialTibs.size(), 2u);
  EXPECT_EQ(C.SpecialTibs[0]->StateIndex, 0);
  EXPECT_EQ(C.SpecialTibs[1]->StateIndex, 1);
  // Replicants: same type info, same IMT, same slot count.
  for (TIB *ST : C.SpecialTibs) {
    EXPECT_EQ(ST->Cls, C.ClassTib->Cls);
    EXPECT_EQ(ST->Imt, C.ClassTib->Imt);
    EXPECT_EQ(ST->Slots.size(), C.ClassTib->Slots.size());
  }
  EXPECT_GT(Fx.P->specialTibBytes(), 0u);
}

TEST(MutationInstall, MarksStateFieldsAndMutableMethods) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  EXPECT_TRUE(Fx.P->field(Fx.Mode).IsStateField);
  EXPECT_TRUE(Fx.P->method(Fx.Bump).IsMutable);
  EXPECT_FALSE(Fx.P->method(Fx.Get).IsMutable);
}

TEST(MutationInstall, RewiresImtSlotsToTibOffsets) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  const IMT *Imt = Fx.P->cls(Fx.Counter).Imt;
  ASSERT_NE(Imt, nullptr);
  bool SawTibOffset = false;
  for (const ImtEntry &E : Imt->Slots) {
    EXPECT_NE(E.K, ImtEntry::Kind::Direct); // all Direct entries converted
    if (E.K == ImtEntry::Kind::TibOffset)
      SawTibOffset = true;
  }
  EXPECT_TRUE(SawTibOffset);
}

TEST(MutationInstall, DisabledVmIgnoresPlan) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.EnableMutation = false;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  EXPECT_TRUE(Fx.P->cls(Fx.Counter).SpecialTibs.empty());
  EXPECT_FALSE(Fx.P->field(Fx.Mode).IsStateField);
}

// --- Part I: constructor exits and instance state stores ----------------------

TEST(MutationPartI, ConstructorExitMutatesMatchingObject) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  Object *O0 = Fx.makeCounter(VM, 0);
  Object *O1 = Fx.makeCounter(VM, 1);
  const ClassInfo &C = Fx.P->cls(Fx.Counter);
  EXPECT_EQ(O0->Tib, C.SpecialTibs[0]);
  EXPECT_EQ(O1->Tib, C.SpecialTibs[1]);
}

TEST(MutationPartI, NonHotStateKeepsClassTib) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 42); // not a hot state
  EXPECT_EQ(O->Tib, Fx.P->cls(Fx.Counter).ClassTib);
  EXPECT_GE(VM.mutation().stats().StateMisses, 1u);
}

TEST(MutationPartI, StateTransitionRetargetsTib) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 0);
  const ClassInfo &C = Fx.P->cls(Fx.Counter);
  ASSERT_EQ(O->Tib, C.SpecialTibs[0]);
  // setMode(1): hot -> hot transition.
  VM.call(Fx.SetMode, {valueR(O), valueI(1)});
  EXPECT_EQ(O->Tib, C.SpecialTibs[1]);
  // setMode(9): hot -> cold falls back to the class TIB.
  VM.call(Fx.SetMode, {valueR(O), valueI(9)});
  EXPECT_EQ(O->Tib, C.ClassTib);
  // setMode(0): cold -> hot again.
  VM.call(Fx.SetMode, {valueR(O), valueI(0)});
  EXPECT_EQ(O->Tib, C.SpecialTibs[0]);
  EXPECT_GE(VM.mutation().stats().ObjectTibSwings, 3u);
}

TEST(MutationPartI, SubclassInstancesNeverMutate) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  // SubCounter extends Counter but is not itself mutable (Figure 6).
  ClassInfo &Sub = Fx.P->cls(Fx.SubCounter);
  Object *O = VM.heap().allocateInstance(Sub, Sub.ClassTib);
  MethodId SubCtor = Fx.P->findMethod(Fx.SubCounter, "<init>");
  VM.call(SubCtor, {valueR(O), valueI(0)}); // mode 0 = hot for Counter
  EXPECT_EQ(O->Tib, Sub.ClassTib);
  // Writing the state field on the subclass instance also does nothing.
  VM.call(Fx.SetMode, {valueR(O), valueI(1)});
  EXPECT_EQ(O->Tib, Sub.ClassTib);
}

// --- Part II: recompilation routes special code -------------------------------

TEST(MutationPartII, Opt2CompilesSpecialVersionsIntoSpecialTibs) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 0);
  makeHot(Fx, VM, O);
  const MethodInfo &M = Fx.P->method(Fx.Bump);
  ASSERT_EQ(M.CurOptLevel, 2);
  ASSERT_EQ(M.Specials.size(), 2u);
  const ClassInfo &C = Fx.P->cls(Fx.Counter);
  // Special TIBs hold the state-matching specialized code; the class TIB
  // holds the general code.
  EXPECT_EQ(C.SpecialTibs[0]->Slots[M.VSlot], M.Specials[0]);
  EXPECT_EQ(C.SpecialTibs[1]->Slots[M.VSlot], M.Specials[1]);
  EXPECT_EQ(C.ClassTib->Slots[M.VSlot], M.General);
  VM.compiler().sync(); // async default: settle bodies before reading them
  // The specialized body is smaller than the general one.
  EXPECT_LT(M.Specials[0]->code().Insts.size(),
            M.General->code().Insts.size());
}

TEST(MutationPartII, NonMutableMethodsUntouched) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 0);
  makeHot(Fx, VM, O);
  for (int I = 0; I < 5000; ++I)
    VM.call(Fx.Get, {valueR(O)});
  const MethodInfo &G = Fx.P->method(Fx.Get);
  EXPECT_TRUE(G.Specials.empty());
  const ClassInfo &C = Fx.P->cls(Fx.Counter);
  // get() shares one compiled method across class TIB and special TIBs.
  EXPECT_EQ(C.SpecialTibs[0]->Slots[G.VSlot], C.ClassTib->Slots[G.VSlot]);
}

TEST(MutationPartII, GeneralCodePropagatesToSubclassNotSpecial) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 0);
  makeHot(Fx, VM, O);
  const MethodInfo &M = Fx.P->method(Fx.Bump);
  // "The general compiled code instead of the special compiled code is
  // propagated to the sub classes" — SubCounter inherits bump().
  EXPECT_EQ(Fx.P->cls(Fx.SubCounter).ClassTib->Slots[M.VSlot], M.General);
}

TEST(MutationPartII, SpecializedExecutionPreservesBehavior) {
  // Mutation on vs off: identical results after many bumps + transitions.
  auto RunScenario = [](bool Mut) {
    CounterFixture Fx;
    VMOptions Opts;
    Opts.EnableMutation = Mut;
    VirtualMachine VM(*Fx.P, Opts);
    VM.setMutationPlan(&Fx.Plan);
    Object *O = Fx.makeCounter(VM, 0);
    int64_t Sum = 0;
    for (int Round = 0; Round < 4; ++Round) {
      VM.call(Fx.SetMode, {valueR(O), valueI(Round % 3)});
      for (int I = 0; I < 2000; ++I)
        VM.call(Fx.Bump, {valueR(O)});
      Sum += VM.call(Fx.Get, {valueR(O)}).I;
    }
    return Sum;
  };
  EXPECT_EQ(RunScenario(false), RunScenario(true));
}

TEST(MutationPartII, MutatedDispatchIsCheaper) {
  // The central performance claim: in a hot state, execution through the
  // special TIB costs fewer cycles than general execution.
  auto CyclesFor = [](bool Mut) {
    CounterFixture Fx;
    VMOptions Opts;
    Opts.EnableMutation = Mut;
    VirtualMachine VM(*Fx.P, Opts);
    VM.setMutationPlan(&Fx.Plan);
    Object *O = Fx.makeCounter(VM, 1);
    makeHot(Fx, VM, O, 6000); // warm to opt2 either way
    uint64_t Before = VM.interp().stats().Cycles;
    for (int I = 0; I < 2000; ++I)
      VM.call(Fx.Bump, {valueR(O)});
    return VM.interp().stats().Cycles - Before;
  };
  EXPECT_LT(CyclesFor(true), CyclesFor(false));
}

// --- Static state fields (Figure 4's static branch) ---------------------------

struct StaticStateFixture : ::testing::Test {
  CounterFixture Fx{/*WithStaticField=*/true};
  VMOptions Opts;

  void warm(VirtualMachine &VM, Object *O) {
    for (int I = 0; I < 5000; ++I)
      VM.call(Fx.Bump, {valueR(O)});
    for (int I = 0; I < 5000; ++I)
      VM.call(Fx.StaticScale, {});
  }
};

TEST_F(StaticStateFixture, StaticMethodJtocSwitches) {
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 0);
  warm(VM, O);
  const MethodInfo &S = Fx.P->method(Fx.StaticScale);
  ASSERT_FALSE(S.Specials.empty());
  // globalMode == 0 matches the hot state: the JTOC holds special code.
  EXPECT_TRUE(Fx.P->staticEntry(Fx.StaticScale)->isSpecialized());
  // Write a non-matching value: the JTOC must revert to general code.
  MethodId Setter = NoMethodId;
  (void)Setter;
  FieldInfo &GF = Fx.P->field(Fx.GlobalMode);
  Fx.P->setStaticSlot(GF.Slot, valueI(5));
  VM.mutation().onStaticStateStore(GF);
  EXPECT_FALSE(Fx.P->staticEntry(Fx.StaticScale)->isSpecialized());
  EXPECT_EQ(Fx.P->staticEntry(Fx.StaticScale), S.General);
  // And back.
  Fx.P->setStaticSlot(GF.Slot, valueI(0));
  VM.mutation().onStaticStateStore(GF);
  EXPECT_TRUE(Fx.P->staticEntry(Fx.StaticScale)->isSpecialized());
}

TEST_F(StaticStateFixture, SpecialTibsHoldGeneralCodeWhenStaticMismatch) {
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 0);
  warm(VM, O);
  const MethodInfo &M = Fx.P->method(Fx.Bump);
  const ClassInfo &C = Fx.P->cls(Fx.Counter);
  ASSERT_EQ(C.SpecialTibs[0]->Slots[M.VSlot], M.Specials[0]);
  // Static mismatch: special TIBs must fall back to general code, but the
  // object TIB pointers stay on the special TIBs (Figure 4's discussion).
  FieldInfo &GF = Fx.P->field(Fx.GlobalMode);
  Fx.P->setStaticSlot(GF.Slot, valueI(5));
  VM.mutation().onStaticStateStore(GF);
  EXPECT_EQ(C.SpecialTibs[0]->Slots[M.VSlot], M.General);
  EXPECT_EQ(C.SpecialTibs[1]->Slots[M.VSlot], M.General);
  EXPECT_EQ(O->Tib, C.SpecialTibs[0]);
  // Behavior stays correct through the fallback.
  int64_t T0 = VM.call(Fx.Get, {valueR(O)}).I;
  VM.call(Fx.Bump, {valueR(O)});
  EXPECT_EQ(VM.call(Fx.Get, {valueR(O)}).I, T0 + 1);
  // Match again: specials return.
  Fx.P->setStaticSlot(GF.Slot, valueI(0));
  VM.mutation().onStaticStateStore(GF);
  EXPECT_EQ(C.SpecialTibs[0]->Slots[M.VSlot], M.Specials[0]);
}

TEST_F(StaticStateFixture, StaticStoreThroughInterpreterFiresHook) {
  // End-to-end: a PutStatic executed by interpreted code triggers the
  // static branch of algorithm part I.
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 0);
  warm(VM, O);
  ASSERT_TRUE(Fx.P->staticEntry(Fx.StaticScale)->isSpecialized());
  uint64_t UpdatesBefore = VM.mutation().stats().CodePointerUpdates;
  // Build is closed; drive the store through an existing method? The
  // fixture has none, so emulate the interpreter's exact behavior:
  FieldInfo &GF = Fx.P->field(Fx.GlobalMode);
  ASSERT_TRUE(GF.IsStateField);
  Fx.P->setStaticSlot(GF.Slot, valueI(9));
  VM.onStaticStateStore(GF);
  EXPECT_GT(VM.mutation().stats().CodePointerUpdates, UpdatesBefore);
  EXPECT_EQ(VM.call(Fx.StaticScale, {}).I, 63);
}

// --- Interface dispatch through special TIBs ----------------------------------

TEST(MutationImt, InterfaceCallReachesSpecializedCode) {
  CounterFixture Fx;
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 1);
  makeHot(Fx, VM, O);
  const MethodInfo &M = Fx.P->method(Fx.Bump);
  ASSERT_FALSE(M.Specials.empty());
  // Dispatch bump() through the interface: the TibOffset IMT entry must
  // route through the object's special TIB.
  int64_t Before = VM.call(Fx.Get, {valueR(O)}).I;
  VM.call(Fx.IfaceBump, {valueR(O)});
  EXPECT_EQ(VM.call(Fx.Get, {valueR(O)}).I, Before + 10);
}

// --- Interleaved mutation / fast-path stress (docs/dispatch.md) ---------------
//
// The inline caches key on the receiver's TIB pointer and on the Program's
// code epoch. These tests interleave part I (object TIB swings on state
// stores) and part II (special code installation on recompilation) with hot
// cached call sites, across every dispatch configuration, and demand
// bit-identical observable behavior: a single stale-cache dispatch would
// change the printed totals and hence the output hash.

namespace {
struct StressOutcome {
  uint64_t Hash = 0;
  uint64_t Insts = 0;
  uint64_t IcHits = 0;
  uint64_t TibSwings = 0;
};

struct FastPathConfig {
  DispatchMode DM;
  bool ICs, Arena;
};

constexpr FastPathConfig FastPathConfigs[] = {
    {DispatchMode::Switch, false, false}, // the seed interpreter
    {DispatchMode::Switch, true, true},
    {DispatchMode::Threaded, false, false},
    {DispatchMode::Threaded, true, true},
};

/// Runs the interleaved scenario: two counters cycling hot(0) -> hot(1) ->
/// cold(2) states while the same driveBump/driveIface call sites dispatch
/// on both receivers, with promotion thresholds low enough that special
/// code installs (and bumps the epoch) mid-stress.
StressOutcome runInterleaved(const FastPathConfig &C, bool Mut) {
  CounterFixture Fx;
  VMOptions Opts;
  Opts.EnableMutation = Mut;
  Opts.Adaptive.Opt1Threshold = 40;
  Opts.Adaptive.Opt2Threshold = 160;
  Opts.Dispatch = C.DM;
  Opts.InlineCaches = C.ICs;
  Opts.FrameArena = C.Arena;
  Opts.AuditConsistency = HostToggle::On;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  ConsistencyAuditor Auditor(VM, /*Stride=*/16);
  VM.setAuditHook(&Auditor);
  Object *O = Fx.makeCounter(VM, 0);
  Object *Q = Fx.makeCounter(VM, 1);
  for (int Round = 0; Round < 30; ++Round) {
    VM.call(Fx.SetMode, {valueR(O), valueI(Round % 3)});
    VM.call(Fx.SetMode, {valueR(Q), valueI((Round + 1) % 3)});
    VM.call(Fx.DriveBump, {valueR(O), valueI(20)});
    VM.call(Fx.DriveIface, {valueR(Q), valueI(20)});
    // Cross the receivers over the same two call sites: each site now sees
    // the other object's (special or class) TIB.
    VM.call(Fx.DriveBump, {valueR(Q), valueI(5)});
    VM.call(Fx.DriveIface, {valueR(O), valueI(5)});
    VM.call(Fx.Report, {valueR(O)});
    VM.call(Fx.Report, {valueR(Q)});
  }
  Auditor.auditNow("end of stress run");
  EXPECT_GT(Auditor.auditsRun(), 0u);
  EXPECT_TRUE(Auditor.clean()) << Auditor.report();
  StressOutcome R;
  R.Hash = VM.interp().outputHash();
  R.Insts = VM.interp().stats().Insts;
  R.IcHits = VM.interp().stats().IcHits;
  R.TibSwings = VM.mutation().stats().ObjectTibSwings;
  return R;
}
} // namespace

TEST(MutationStress, InterleavedTibSwapsNeverDispatchStale) {
  uint64_t RefHash = 0;
  bool SawContention = false;
  for (const FastPathConfig &C : FastPathConfigs) {
    StressOutcome Off = runInterleaved(C, false);
    StressOutcome On = runInterleaved(C, true);
    // Mutation on vs off: identical printed totals.
    EXPECT_EQ(On.Hash, Off.Hash);
    // Every dispatch configuration prints the same totals as every other.
    if (RefHash == 0)
      RefHash = Off.Hash;
    EXPECT_EQ(Off.Hash, RefHash);
    EXPECT_EQ(On.Hash, RefHash);
    if (C.ICs && On.IcHits > 0 && On.TibSwings > 0)
      SawContention = true;
  }
  // The race was real: at least one configuration had warm caches while
  // object TIBs were swinging underneath them.
  EXPECT_TRUE(SawContention);
}

TEST(MutationStress, InterleavedRunsChargeIdenticalSimulatedCost) {
  // For a fixed mutation setting, the fast-path knobs must not change the
  // simulated instruction count by even one instruction.
  for (bool Mut : {false, true}) {
    uint64_t BaseInsts = 0;
    for (const FastPathConfig &C : FastPathConfigs) {
      StressOutcome R = runInterleaved(C, Mut);
      if (BaseInsts == 0)
        BaseInsts = R.Insts;
      EXPECT_EQ(R.Insts, BaseInsts) << "mutation=" << Mut;
    }
  }
}

TEST(MutationStress, StaticStateFlipInvalidatesWarmStaticCaches) {
  // staticScale()'s specialized body folds globalMode to the hot value 0
  // (returns 0); the general body reads the live slot. After the static
  // state flips, a stale cached JTOC entry would keep returning 0 — the
  // epoch bump from the code-pointer update must force a re-miss.
  for (const FastPathConfig &C : FastPathConfigs) {
    CounterFixture Fx{/*WithStaticField=*/true};
    VMOptions Opts;
    Opts.Adaptive.Opt1Threshold = 40;
    Opts.Adaptive.Opt2Threshold = 160;
    Opts.Dispatch = C.DM;
    Opts.InlineCaches = C.ICs;
    Opts.FrameArena = C.Arena;
    VirtualMachine VM(*Fx.P, Opts);
    VM.setMutationPlan(&Fx.Plan);
    Object *O = Fx.makeCounter(VM, 0);
    for (int I = 0; I < 400; ++I)
      VM.call(Fx.Bump, {valueR(O)});
    for (int I = 0; I < 400; ++I)
      VM.call(Fx.StaticScale, {});
    // Warm the CallStatic site itself on the specialized entry.
    ASSERT_TRUE(Fx.P->staticEntry(Fx.StaticScale)->isSpecialized());
    EXPECT_EQ(VM.call(Fx.DriveStatic, {valueI(50)}).I, 0);
    uint64_t Epoch = Fx.P->codeEpoch();
    // Flip the static state: part I reverts the JTOC to general code.
    FieldInfo &GF = Fx.P->field(Fx.GlobalMode);
    Fx.P->setStaticSlot(GF.Slot, valueI(9));
    VM.onStaticStateStore(GF);
    EXPECT_GT(Fx.P->codeEpoch(), Epoch);
    // The same warm site must now reach the general code: 9 * 7 per call.
    EXPECT_EQ(VM.call(Fx.DriveStatic, {valueI(50)}).I, 50 * 63);
    // And back to the hot state: specialized again.
    Fx.P->setStaticSlot(GF.Slot, valueI(0));
    VM.onStaticStateStore(GF);
    EXPECT_EQ(VM.call(Fx.DriveStatic, {valueI(50)}).I, 0);
    EXPECT_GT(VM.mutation().stats().CodePointerUpdates, 0u);
  }
}

TEST(MutationStats, TibSpaceGrowsOnlyWithSpecialTibs) {
  CounterFixture Fx;
  size_t ClassBytes = Fx.P->classTibBytes();
  VirtualMachine VM(*Fx.P, {});
  VM.setMutationPlan(&Fx.Plan);
  EXPECT_EQ(Fx.P->classTibBytes(), ClassBytes); // unchanged
  // Two special TIBs, each a replicant of Counter's class TIB.
  EXPECT_EQ(Fx.P->specialTibBytes(),
            2 * Fx.P->cls(Fx.Counter).ClassTib->sizeBytes());
}

} // namespace
