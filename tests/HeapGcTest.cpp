//===-- tests/HeapGcTest.cpp - Heap and mark-sweep GC tests -------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "runtime/Heap.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

/// Root provider backed by an explicit vector.
class VectorRoots : public RootProvider {
public:
  std::vector<Object *> Objects;
  void enumerateRoots(std::vector<Object *> &Roots) override {
    for (Object *O : Objects)
      Roots.push_back(O);
  }
};

struct HeapFixture : ::testing::Test {
  test::CounterFixture Fx;
  Heap H{1 << 20};
  VectorRoots Roots;

  HeapFixture() { H.setRootProvider(&Roots); }

  Object *makeCounter() {
    ClassInfo &C = Fx.P->cls(Fx.Counter);
    return H.allocateInstance(C, C.ClassTib);
  }
};

TEST_F(HeapFixture, InstanceFieldsZeroInitialized) {
  Object *O = makeCounter();
  EXPECT_EQ(O->get(0).I, 0);
  EXPECT_EQ(O->get(1).I, 0);
  EXPECT_FALSE(O->IsArray);
  EXPECT_EQ(O->Tib, Fx.P->cls(Fx.Counter).ClassTib);
}

TEST_F(HeapFixture, ArrayAllocationAndLength) {
  Object *A = H.allocateArray(Type::I64, 17);
  EXPECT_TRUE(A->IsArray);
  EXPECT_EQ(A->NumSlots, 17u);
  for (uint32_t I = 0; I < 17; ++I)
    EXPECT_EQ(A->get(I).I, 0);
}

TEST_F(HeapFixture, CollectFreesUnreachable) {
  size_t Before = H.stats().UsedBytes;
  for (int I = 0; I < 100; ++I)
    makeCounter(); // all garbage
  EXPECT_GT(H.stats().UsedBytes, Before);
  H.collect();
  EXPECT_EQ(H.stats().UsedBytes, Before);
  EXPECT_EQ(H.stats().GcCount, 1u);
  EXPECT_GT(H.stats().GcCycles, 0u);
}

TEST_F(HeapFixture, CollectKeepsRoots) {
  Object *Live = makeCounter();
  Live->set(1, valueI(77));
  Roots.Objects.push_back(Live);
  for (int I = 0; I < 50; ++I)
    makeCounter();
  H.collect();
  EXPECT_EQ(Live->get(1).I, 77); // still intact
}

TEST_F(HeapFixture, CollectTracesInstanceReferences) {
  // Build a linked structure via a Ref-typed array so the trace must go
  // through array elements and then instance slots.
  Object *Arr = H.allocateArray(Type::Ref, 4);
  Roots.Objects.push_back(Arr);
  Object *C = makeCounter();
  C->set(1, valueI(123));
  Arr->set(2, valueR(C));
  for (int I = 0; I < 50; ++I)
    makeCounter();
  size_t LiveBytes = H.stats().UsedBytes;
  (void)LiveBytes;
  H.collect();
  EXPECT_EQ(Arr->get(2).R, C);
  EXPECT_EQ(C->get(1).I, 123);
}

TEST_F(HeapFixture, MarkBitsAreResetBetweenCollections) {
  Object *Live = makeCounter();
  Roots.Objects.push_back(Live);
  H.collect();
  H.collect();
  // Surviving two collections proves the mark bit was cleared (otherwise
  // the second sweep would free a marked-looking-but-unmarked object or
  // keep garbage alive).
  EXPECT_EQ(H.stats().GcCount, 2u);
  EXPECT_EQ(Live->Mark, 0);
}

TEST_F(HeapFixture, AllocationTriggersCollection) {
  // Fill past the 1 MB budget with garbage arrays; the heap must collect
  // by itself rather than grow unboundedly.
  for (int I = 0; I < 200; ++I)
    H.allocateArray(Type::I64, 4096); // ~32 KB each
  EXPECT_GE(H.stats().GcCount, 1u);
  EXPECT_LE(H.stats().UsedBytes, (1u << 20) + 64 * 1024);
}

TEST_F(HeapFixture, SpecialTibPointerSurvivesCollection) {
  // An object re-pointed at a special TIB must keep that TIB across GC
  // (mutation state is not lost to collection).
  TIB *Special = Fx.P->createSpecialTib(Fx.Counter, 0);
  Object *O = makeCounter();
  O->Tib = Special;
  Roots.Objects.push_back(O);
  for (int I = 0; I < 20; ++I)
    makeCounter();
  H.collect();
  EXPECT_EQ(O->Tib, Special);
  EXPECT_EQ(O->Tib->Cls->Id, Fx.Counter);
}

TEST_F(HeapFixture, StatsAccumulate) {
  uint64_t N0 = H.stats().ObjectsAllocated;
  makeCounter();
  H.allocateArray(Type::F64, 8);
  EXPECT_EQ(H.stats().ObjectsAllocated, N0 + 2);
  EXPECT_GT(H.stats().BytesAllocated, 0u);
  EXPECT_GE(H.stats().PeakBytes, H.stats().UsedBytes);
}

TEST(Heap, CyclicGarbageIsCollected) {
  test::CounterFixture Fx;
  Heap H(1 << 20);
  VectorRoots Roots;
  H.setRootProvider(&Roots);
  // Two ref arrays pointing at each other, unreachable from roots.
  Object *A = H.allocateArray(Type::Ref, 1);
  Object *B = H.allocateArray(Type::Ref, 1);
  A->set(0, valueR(B));
  B->set(0, valueR(A));
  size_t Used = H.stats().UsedBytes;
  H.collect();
  EXPECT_LT(H.stats().UsedBytes, Used); // the cycle was freed
}

} // namespace
