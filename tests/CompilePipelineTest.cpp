//===-- tests/CompilePipelineTest.cpp - Background compilation ----------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the asynchronous compile pipeline and the content-keyed
/// specialization cache: body equivalence with the synchronous compiler,
/// cache sharing across hot states that a method cannot distinguish,
/// bit-identical simulated metrics across every async/cache/thread-count
/// configuration, and a compile/mutate/dispatch stress run (the TSan
/// target).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "compiler/OptCompiler.h"
#include "core/VM.h"
#include "testing/ConsistencyAuditor.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace dchm;
using test::CounterFixture;

namespace {

/// VirtualMachines now own compile worker threads by default, and gtest's
/// "fast" death-test style forks the whole process: the child inherits the
/// pipeline's mutex/queue state but none of its workers, so any wait in the
/// child deadlocks. Switch the whole binary to the re-exec ("threadsafe")
/// style. Done from a test Environment because these run after
/// InitGoogleTest has initialized the flag, unlike static initializers.
class ThreadsafeDeathTests : public ::testing::Environment {
public:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

const ::testing::Environment *const RegisterDeathStyle =
    ::testing::AddGlobalTestEnvironment(new ThreadsafeDeathTests);

//===----------------------------------------------------------------------===//
// Pipeline basics (standalone OptCompiler)
//===----------------------------------------------------------------------===//

TEST(CompilePipeline, AsyncBodyMatchesSyncBody) {
  CounterFixture FxSync, FxAsync;
  OptCompiler Sync(*FxSync.P); // default: synchronous, no cache
  OptCompiler Async(*FxAsync.P);
  Async.configure(/*Async=*/true, /*Threads=*/2, /*SpecializationCache=*/false);

  CompiledMethod *CS = Sync.compileGeneral(FxSync.P->method(FxSync.Bump), 2);
  EXPECT_TRUE(CS->ready()); // sync-created code is born ready

  CompiledMethod *CA = Async.compileGeneral(FxAsync.P->method(FxAsync.Bump), 2);
  Async.waitFor(*CA);
  ASSERT_TRUE(CA->ready());
  EXPECT_EQ(CA->code().Insts.size(), CS->code().Insts.size());
  EXPECT_EQ(CA->codeBytes(), CS->codeBytes());

  // Modeled cycles are charged at request time; bytes settle after sync().
  Async.sync();
  EXPECT_EQ(Async.stats().TotalCompileCycles, Sync.stats().TotalCompileCycles);
  EXPECT_EQ(Async.stats().TotalCodeBytes, Sync.stats().TotalCodeBytes);
}

TEST(CompilePipeline, Opt0RunsInlineEvenWhenAsync) {
  CounterFixture Fx;
  OptCompiler OC(*Fx.P);
  OC.configure(true, 2, false);
  // Opt0 is a verbatim translation with no pipeline to run off-thread; it
  // must be ready on return because the caller is about to execute it.
  CompiledMethod *CM = OC.compileGeneral(Fx.P->method(Fx.Get), 0);
  EXPECT_TRUE(CM->ready());
  EXPECT_EQ(CM->code().Insts.size(), Fx.P->method(Fx.Get).Bytecode.Insts.size());
}

TEST(CompilePipeline, DrainLeavesNothingPending) {
  CounterFixture Fx;
  OptCompiler OC(*Fx.P);
  OC.configure(true, 4, false);
  std::vector<CompiledMethod *> CMs;
  for (MethodId M : {Fx.Bump, Fx.Get, Fx.SetMode, Fx.StaticScale})
    CMs.push_back(OC.compileGeneral(Fx.P->method(M), 1));
  OC.sync();
  EXPECT_FALSE(OC.pipeline().hasPending());
  for (CompiledMethod *CM : CMs)
    EXPECT_TRUE(CM->ready());
}

TEST(CompilePipeline, ConfigFromEnvParsesToggles) {
  CompilePipeline::Config Def;
  Def.Async = true;
  Def.Threads = 2;

  setenv("DCHM_ASYNC_COMPILE", "OFF", 1);
  setenv("DCHM_COMPILE_THREADS", "4", 1);
  CompilePipeline::Config C = CompilePipeline::configFromEnv(Def);
  EXPECT_FALSE(C.Async);
  EXPECT_EQ(C.Threads, 4u);

  setenv("DCHM_ASYNC_COMPILE", "1", 1);
  C = CompilePipeline::configFromEnv(Def);
  EXPECT_TRUE(C.Async);

  unsetenv("DCHM_ASYNC_COMPILE");
  unsetenv("DCHM_COMPILE_THREADS");
  C = CompilePipeline::configFromEnv(Def);
  EXPECT_TRUE(C.Async);
  EXPECT_EQ(C.Threads, 2u);
}

//===----------------------------------------------------------------------===//
// Content-keyed specialization cache
//===----------------------------------------------------------------------===//

TEST(SpecCache, UnreadFieldDoesNotSplitTheCache) {
  CounterFixture Fx(/*WithStaticField=*/true);
  OptCompiler OC(*Fx.P);
  OC.configure(false, 1, /*SpecializationCache=*/true);
  OC.setPlan(&Fx.Plan);
  const MutableClassPlan &CP = Fx.Plan.Classes[0];

  // staticScale reads only globalMode, which both hot states pin to 0: the
  // states are indistinguishable to it, so the cache must hand back the
  // same CompiledMethod.
  MethodInfo &SS = Fx.P->method(Fx.StaticScale);
  CompiledMethod *S0 = OC.compileSpecial(SS, 2, CP, 0);
  CompiledMethod *S1 = OC.compileSpecial(SS, 2, CP, 1);
  EXPECT_EQ(S0, S1);
  EXPECT_EQ(S0->shareCount(), 2u);

  // bump folds mode, which the hot states disagree on: distinct bodies.
  MethodInfo &B = Fx.P->method(Fx.Bump);
  CompiledMethod *B0 = OC.compileSpecial(B, 2, CP, 0);
  CompiledMethod *B1 = OC.compileSpecial(B, 2, CP, 1);
  EXPECT_NE(B0, B1);
  EXPECT_EQ(B0->shareCount(), 1u);

  EXPECT_EQ(OC.stats().SpecialCompileRequests, 4u);
  EXPECT_EQ(OC.stats().SpecialCompiles, 3u);
  EXPECT_EQ(OC.stats().SpecialCacheHits, 1u);
  EXPECT_GT(OC.stats().SpecialCyclesSharedWork, 0u);
}

TEST(SpecCache, InvalidatedEntriesAreNotServed) {
  CounterFixture Fx(/*WithStaticField=*/true);
  OptCompiler OC(*Fx.P);
  OC.configure(false, 1, true);
  OC.setPlan(&Fx.Plan);
  const MutableClassPlan &CP = Fx.Plan.Classes[0];
  MethodInfo &SS = Fx.P->method(Fx.StaticScale);

  CompiledMethod *S0 = OC.compileSpecial(SS, 2, CP, 0);
  S0->invalidate();
  CompiledMethod *S1 = OC.compileSpecial(SS, 2, CP, 1);
  EXPECT_NE(S0, S1); // stale code must not be resurrected
  EXPECT_EQ(OC.stats().SpecialCacheHits, 0u);
  EXPECT_EQ(OC.stats().SpecialCompiles, 2u);
}

TEST(SpecCache, HitsChargeIdenticalModeledCycles) {
  // The cache trades host work and code bytes, never simulated time: a run
  // with the cache on must report the exact cycles of a run with it off.
  CounterFixture FxOn(true), FxOff(true);
  OptCompiler On(*FxOn.P), Off(*FxOff.P);
  On.configure(false, 1, true);
  Off.configure(false, 1, false);
  On.setPlan(&FxOn.Plan);
  Off.setPlan(&FxOff.Plan);

  for (size_t S = 0; S < 2; ++S) {
    On.compileSpecial(FxOn.P->method(FxOn.StaticScale), 2,
                      FxOn.Plan.Classes[0], S);
    Off.compileSpecial(FxOff.P->method(FxOff.StaticScale), 2,
                       FxOff.Plan.Classes[0], S);
  }
  EXPECT_EQ(On.stats().SpecialCacheHits, 1u);
  EXPECT_EQ(Off.stats().SpecialCacheHits, 0u);
  EXPECT_EQ(On.stats().SpecialCompileCycles, Off.stats().SpecialCompileCycles);
  EXPECT_EQ(On.stats().TotalCompileCycles, Off.stats().TotalCompileCycles);
  // ... but it does save real code bytes.
  EXPECT_LT(On.stats().SpecialCodeBytes, Off.stats().SpecialCodeBytes);
}

TEST(SpecCache, EndToEndSharesStaticOnlyReader) {
  // Through the full VM: accelerated hotness compiles the mutable methods
  // at opt2 on first call, producing one special per hot state. staticScale
  // cannot tell the states apart, so its Specials slots alias one body.
  CounterFixture Fx(/*WithStaticField=*/true);
  VMOptions Opts;
  Opts.Adaptive.AcceleratedMutableHotness = true;
  Opts.AsyncCompile = HostToggle::On;
  Opts.CompileThreads = 2;
  Opts.SpecializationCache = HostToggle::On;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  Object *O = Fx.makeCounter(VM, 0);
  VM.call(Fx.Bump, {valueR(O)});
  VM.call(Fx.StaticScale, {});
  VM.compiler().sync();

  const MethodInfo &SS = Fx.P->method(Fx.StaticScale);
  ASSERT_EQ(SS.Specials.size(), 2u);
  EXPECT_EQ(SS.Specials[0], SS.Specials[1]);
  EXPECT_EQ(SS.Specials[0]->shareCount(), 2u);

  const MethodInfo &B = Fx.P->method(Fx.Bump);
  ASSERT_EQ(B.Specials.size(), 2u);
  EXPECT_NE(B.Specials[0], B.Specials[1]);

  RunMetrics M = VM.metrics();
  EXPECT_EQ(M.SpecialCacheHits, 1u);
  EXPECT_EQ(M.SpecialCompileRequests, M.SpecialCompiles + M.SpecialCacheHits);
}

//===----------------------------------------------------------------------===//
// Determinism across configurations
//===----------------------------------------------------------------------===//

struct WorkloadResult {
  int64_t Sum = 0;
  RunMetrics Metrics;
};

/// A mutation-heavy workload: two counters swinging through hot states 0/1
/// and the cold state 2 while the adaptive system recompiles mid-loop, with
/// virtual, interface, and static dispatch all on the path.
WorkloadResult runCounterWorkload(HostToggle Async, unsigned Threads,
                                  HostToggle Cache, int64_t Reps = 400) {
  CounterFixture Fx(/*WithStaticField=*/true);
  VMOptions Opts;
  Opts.Adaptive.Opt1Threshold = 20;
  Opts.Adaptive.Opt2Threshold = 200;
  Opts.AsyncCompile = Async;
  Opts.CompileThreads = Threads;
  Opts.SpecializationCache = Cache;
  Opts.AuditConsistency = HostToggle::On;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setMutationPlan(&Fx.Plan);
  ConsistencyAuditor Auditor(VM, /*Stride=*/16);
  VM.setAuditHook(&Auditor);

  Object *A = Fx.makeCounter(VM, 0);
  Object *B = Fx.makeCounter(VM, 1);
  WorkloadResult R;
  for (int64_t Mode : {0, 1, 2, 1, 0}) {
    VM.call(Fx.SetMode, {valueR(A), valueI(Mode)});
    VM.call(Fx.DriveBump, {valueR(A), valueI(Reps)});
    VM.call(Fx.DriveIface, {valueR(B), valueI(Reps / 2)});
    R.Sum += VM.call(Fx.DriveStatic, {valueI(Reps / 2)}).I;
  }
  VM.call(Fx.Report, {valueR(A)});
  VM.call(Fx.Report, {valueR(B)});
  R.Sum += VM.call(Fx.Get, {valueR(A)}).I;
  R.Sum += VM.call(Fx.Get, {valueR(B)}).I;
  Auditor.auditNow("end of workload");
  EXPECT_GT(Auditor.auditsRun(), 0u);
  EXPECT_TRUE(Auditor.clean()) << Auditor.report();
  R.Metrics = VM.metrics();
  return R;
}

TEST(CompileDeterminism, BitIdenticalAcrossConfigs) {
  const WorkloadResult Base =
      runCounterWorkload(HostToggle::Off, 1, HostToggle::Off);
  struct Cfg {
    HostToggle Async;
    unsigned Threads;
    HostToggle Cache;
  };
  const Cfg Cfgs[] = {
      {HostToggle::Off, 1, HostToggle::On},
      {HostToggle::On, 1, HostToggle::On},
      {HostToggle::On, 4, HostToggle::On},
      {HostToggle::On, 4, HostToggle::Off},
  };
  for (const Cfg &C : Cfgs) {
    WorkloadResult R = runCounterWorkload(C.Async, C.Threads, C.Cache);
    // Everything the simulated machine observes is identical...
    EXPECT_EQ(R.Sum, Base.Sum);
    EXPECT_EQ(R.Metrics.OutputHash, Base.Metrics.OutputHash);
    EXPECT_EQ(R.Metrics.Insts, Base.Metrics.Insts);
    EXPECT_EQ(R.Metrics.Invocations, Base.Metrics.Invocations);
    EXPECT_EQ(R.Metrics.ExecCycles, Base.Metrics.ExecCycles);
    EXPECT_EQ(R.Metrics.CompileCycles, Base.Metrics.CompileCycles);
    EXPECT_EQ(R.Metrics.SpecialCompileCycles,
              Base.Metrics.SpecialCompileCycles);
    EXPECT_EQ(R.Metrics.MutationCycles, Base.Metrics.MutationCycles);
    EXPECT_EQ(R.Metrics.GcCycles, Base.Metrics.GcCycles);
    EXPECT_EQ(R.Metrics.TotalCycles, Base.Metrics.TotalCycles);
    EXPECT_EQ(R.Metrics.SpecialCompileRequests,
              Base.Metrics.SpecialCompileRequests);
    // ... while the cache may only shrink host-side code footprint.
    EXPECT_LE(R.Metrics.SpecialCodeBytes, Base.Metrics.SpecialCodeBytes);
    if (C.Cache == HostToggle::On)
      EXPECT_GT(R.Metrics.SpecialCacheHits, 0u);
    else
      EXPECT_EQ(R.Metrics.SpecialCacheHits, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Compile/mutate/dispatch stress (the TSan target)
//===----------------------------------------------------------------------===//

TEST(CompileStress, AsyncCompileMutateDispatchStress) {
  // Hammer the racy surface: workers publishing bodies while the app thread
  // swings TIBs between states, dispatches through pending shells (blocking
  // at the safepoint), boosts queued specials, and recompiles. Repeated so
  // pool startup/shutdown is covered too; results must match the fully
  // synchronous schedule exactly.
  const WorkloadResult Base =
      runCounterWorkload(HostToggle::Off, 1, HostToggle::Off, 600);
  for (int Round = 0; Round < 3; ++Round) {
    WorkloadResult R =
        runCounterWorkload(HostToggle::On, 4, HostToggle::On, 600);
    EXPECT_EQ(R.Sum, Base.Sum);
    EXPECT_EQ(R.Metrics.OutputHash, Base.Metrics.OutputHash);
    EXPECT_EQ(R.Metrics.Insts, Base.Metrics.Insts);
    EXPECT_EQ(R.Metrics.TotalCycles, Base.Metrics.TotalCycles);
  }
}

} // namespace
